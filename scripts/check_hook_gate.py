#!/usr/bin/env python3
"""Hook-path fast-path regression gate for CI (docs/HOOKPATH.md).

Validates the `hook_path` section that schema herd-bench-hotpath-v4 added
to every live-measured trace, comparing a fresh bench_hotpath run against
the checked-in baseline:

 * every trace the baseline measured live must carry a complete
   `hook_path` object in the current run;
 * the counter-reconciliation identity must hold, recomputed here rather
   than trusted: every access event either died in the L0 filter or was
   delivered to the detector, so
       access_events == filter_hits + events_delivered
   exactly, and the probe counters can never exceed the event count
   (filter_hits + filter_misses <= access_events — probes are skipped
   for a thread's first-ever event, before its state exists);
 * the unfiltered live path must not regress vs the baseline's absolute
   throughput (loose factor: cross-run timing absorbs machine speed);
 * on the hook-bound synthetic trace (`hotfield`, the one workload whose
   live run is dominated by hook cost rather than interpretation) the
   filtered/unfiltered speedup must stay near the baseline's and above an
   absolute floor — the filter doing strictly less work than the
   unfiltered path makes a speedup below 1.0 a correctness smell, not
   noise;
 * a full (non-smoke) run must demonstrate the headline >= 1.3x speedup
   on the hook-bound trace — this is the acceptance bar the checked-in
   BENCH_hotpath.json proves; smoke runs on shared CI runners are only
   held to the loose clauses above;
 * (v6) every live-measured trace must carry a `provenance_ab` section
   whose race sets agree — provenance capture is a pure listener, and a
   disagreement means the store perturbed the run.  The provenance-off
   row IS the filtered default path, so the off-throughput no-regression
   is already enforced by the clauses above; the on-row only has to be a
   real measurement (positive throughput, accesses observed).

Usage: check_hook_gate.py CURRENT.json BASELINE.json
"""

import json
import sys

# Current unfiltered live events/sec may be this fraction of the
# baseline's before the gate trips (same spirit as check_dispatch_gate's
# THREADED_LIVE_LENIENCY: loose enough for a slower runner, tight enough
# to catch the hook path falling off a cliff).
UNFILTERED_LENIENCY = 0.4
# The hook-bound trace's speedup may be this fraction of the baseline's.
SPEEDUP_LENIENCY = 0.6
# ... but never below this absolute floor on any run.
SPEEDUP_FLOOR = 0.95
# Full (non-smoke) runs must demonstrate the headline speedup here.
HOOKBOUND_TRACE = "hotfield"
FULL_RUN_SPEEDUP = 1.3

HOOK_KEYS = ("live_unfiltered_events_per_sec", "live_filtered_events_per_sec",
             "speedup", "access_events", "filter_hits", "filter_misses",
             "filter_hit_rate", "events_delivered", "counters_reconcile")


def hook_traces(report):
    return {t["name"]: t for t in report["traces"] if "hook_path" in t}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)
    for report, arg in ((current, sys.argv[1]), (baseline, sys.argv[2])):
        if report.get("schema") not in ("herd-bench-hotpath-v4",
                                        "herd-bench-hotpath-v5",
                                        "herd-bench-hotpath-v6"):
            print(f"{arg}: unexpected schema {report.get('schema')!r}",
                  file=sys.stderr)
            return 2

    cur, base = hook_traces(current), hook_traces(baseline)
    failed = False
    for name, b in base.items():
        t = cur.get(name)
        if t is None:
            print(f"FAIL {name}: no hook_path in current run",
                  file=sys.stderr)
            failed = True
            continue
        hp = t["hook_path"]
        missing = [k for k in HOOK_KEYS if k not in hp]
        if missing:
            print(f"FAIL {name}: hook_path missing {missing}",
                  file=sys.stderr)
            failed = True
            continue

        # Counter coherence, recomputed from the raw counters.
        events = hp["access_events"]
        hits, misses = hp["filter_hits"], hp["filter_misses"]
        delivered = hp["events_delivered"]
        if events != hits + delivered:
            print(f"FAIL {name}: access_events {events} != filter_hits "
                  f"{hits} + events_delivered {delivered}", file=sys.stderr)
            failed = True
        elif hits + misses > events:
            print(f"FAIL {name}: probe counters exceed the event count "
                  f"({hits} + {misses} > {events})", file=sys.stderr)
            failed = True
        elif not hp["counters_reconcile"]:
            print(f"FAIL {name}: harness reported counters_reconcile false",
                  file=sys.stderr)
            failed = True
        else:
            print(f"ok   {name:10} counters reconcile "
                  f"({events} == {hits} + {delivered})")

        unf = hp["live_unfiltered_events_per_sec"]
        base_unf = b["hook_path"]["live_unfiltered_events_per_sec"]
        floor = base_unf * UNFILTERED_LENIENCY
        status = "ok" if unf >= floor else "FAIL"
        print(f"{status:4} {name:10} unfiltered live {unf:.0f} ev/s vs "
              f"baseline {base_unf:.0f} (floor {floor:.0f})")
        if unf < floor:
            failed = True

        # v6: provenance capture must be a pure listener.  Only enforced
        # when the current run's schema carries the section (older
        # baselines stay usable for the hook clauses above).
        if current.get("schema") == "herd-bench-hotpath-v6":
            pa = t.get("provenance_ab")
            if pa is None:
                print(f"FAIL {name}: no provenance_ab in v6 run",
                      file=sys.stderr)
                failed = True
            elif not pa.get("agreement"):
                print(f"FAIL {name}: provenance run changed the race set",
                      file=sys.stderr)
                failed = True
            elif pa.get("on_events_per_sec", 0) <= 0 or \
                    pa.get("accesses_observed", 0) <= 0:
                print(f"FAIL {name}: provenance_ab is not a real "
                      f"measurement ({pa})", file=sys.stderr)
                failed = True
            else:
                print(f"ok   {name:10} provenance on/off agree, "
                      f"{pa['overhead_ratio']:.2f}x overhead "
                      f"({pa['accesses_observed']} accesses observed)")

        if name == HOOKBOUND_TRACE:
            speedup = hp["speedup"]
            base_speedup = b["hook_path"]["speedup"]
            floor = max(SPEEDUP_FLOOR, base_speedup * SPEEDUP_LENIENCY)
            status = "ok" if speedup >= floor else "FAIL"
            print(f"{status:4} {name:10} filtered speedup {speedup:.2f}x "
                  f"(baseline {base_speedup:.2f}x, floor {floor:.2f}x)")
            if speedup < floor:
                failed = True
            if not current.get("smoke", True):
                status = "ok" if speedup >= FULL_RUN_SPEEDUP else "FAIL"
                print(f"{status:4} {name:10} full-run headline speedup "
                      f"{speedup:.2f}x (required {FULL_RUN_SPEEDUP:.1f}x)")
                if speedup < FULL_RUN_SPEEDUP:
                    failed = True

    if HOOKBOUND_TRACE not in base:
        print(f"FAIL: baseline has no hook_path for {HOOKBOUND_TRACE}",
              file=sys.stderr)
        failed = True
    if failed:
        print("hook-path regression detected", file=sys.stderr)
        return 1
    print("hook-path fast path within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
