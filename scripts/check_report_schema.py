#!/usr/bin/env python3
"""Validates a `herd --report=json` document (and optionally a
`--report=sarif` document) against the stable report schemas.

This is the reference consumer of the contract declared in
src/herd/ReportExport.h: the envelope ("schema", "version") is checked
first and the script refuses documents it does not understand; within a
version, required keys may gain siblings but never disappear or change
type.  Fingerprints must be 16-digit lowercase hex strings — the reason
they are strings at all is that JSON number parsers are doubles and would
silently corrupt 64-bit values.  CI runs this against the report artifacts
of the observability smoke job, so a field rename, a numeric fingerprint,
or an unknown result kind fails the build instead of silently breaking
downstream consumers.

Usage:
  check_report_schema.py report.json [--sarif report.sarif]

Exit status: 0 when everything validates, 1 on any violation (each is
printed), 2 on usage/IO errors.
"""

import json
import re
import sys

SCHEMA_NAME = "herd-report"
SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"

FINGERPRINT_RE = re.compile(r"^[0-9a-f]{16}$")

RESULT_KINDS = {"race", "racy-location", "deadlock", "deadlock-candidate"}
RULE_IDS = {"herd/datarace", "herd/racy-location", "herd/deadlock",
            "herd/deadlock-candidate"}

errors = []


def fail(msg):
    errors.append(msg)


def check_keys(obj, spec, where):
    for key, types in spec.items():
        if key not in obj:
            fail(f"{where}: missing required key '{key}'")
        elif not isinstance(obj[key], types):
            fail(f"{where}.{key}: expected {types}, got "
                 f"{type(obj[key]).__name__}")
        elif types is int and isinstance(obj[key], bool):
            fail(f"{where}.{key}: expected int, got bool")


def check_fingerprint(value, where):
    if not isinstance(value, str) or not FINGERPRINT_RE.match(value):
        fail(f"{where}: expected 16-digit lowercase hex string, got "
             f"{value!r}")


def check_site(value, where):
    if value is None:
        return
    if not isinstance(value, dict):
        fail(f"{where}: expected object or null")
        return
    check_keys(value, {"label": str, "line": int}, where)


def check_report(doc):
    if doc.get("schema") != SCHEMA_NAME:
        fail(f"schema: expected '{SCHEMA_NAME}', got {doc.get('schema')!r}")
        return
    if doc.get("version") != SCHEMA_VERSION:
        fail(f"version: this checker understands version {SCHEMA_VERSION}, "
             f"got {doc.get('version')!r}")
        return
    check_keys(doc, {"schema": str, "version": int, "tool": dict,
                     "source": str, "summary": dict, "results": list,
                     "provenance": dict}, "$")
    if isinstance(doc.get("tool"), dict):
        check_keys(doc["tool"], {"name": str, "detector": str}, "tool")
        if doc["tool"].get("detector") not in ("herd", "epoch"):
            fail(f"tool.detector: expected 'herd' or 'epoch', got "
                 f"{doc['tool'].get('detector')!r}")
    if isinstance(doc.get("summary"), dict):
        check_keys(doc["summary"],
                   {"distinct_races": int, "racy_locations": int,
                    "deadlock_cycles": int, "deadlock_candidates": int,
                    "total_reported": int, "dropped_records": int,
                    "reporter_capacity": int},
                   "summary")
    for i, result in enumerate(doc.get("results", [])):
        where = f"results[{i}]"
        if not isinstance(result, dict):
            fail(f"{where}: expected object")
            continue
        check_keys(result, {"kind": str, "rule": str, "fingerprint": str,
                            "occurrences": int, "message": str}, where)
        if result.get("kind") not in RESULT_KINDS:
            fail(f"{where}.kind: unknown kind {result.get('kind')!r}")
        if result.get("rule") not in RULE_IDS:
            fail(f"{where}.rule: unknown rule {result.get('rule')!r}")
        check_fingerprint(result.get("fingerprint"), f"{where}.fingerprint")
        if result.get("occurrences") == 0:
            fail(f"{where}.occurrences: must be at least 1")
        check_site(result.get("site"), f"{where}.site")
        check_site(result.get("prior_site"), f"{where}.prior_site")
    if isinstance(doc.get("provenance"), dict):
        check_keys(doc["provenance"],
                   {"enabled": bool, "threads_tracked": int,
                    "locks_tracked": int, "accesses_observed": int},
                   "provenance")
    # Cross-field consistency: the summary must count the results.
    if isinstance(doc.get("summary"), dict) and \
            isinstance(doc.get("results"), list):
        counted = {"race": 0, "racy-location": 0, "deadlock": 0,
                   "deadlock-candidate": 0}
        for result in doc["results"]:
            if isinstance(result, dict) and result.get("kind") in counted:
                counted[result["kind"]] += 1
        summary = doc["summary"]
        for kind, key in (("race", "distinct_races"),
                          ("racy-location", "racy_locations"),
                          ("deadlock", "deadlock_cycles"),
                          ("deadlock-candidate", "deadlock_candidates")):
            if summary.get(key) != counted[kind]:
                fail(f"summary.{key}: says {summary.get(key)!r} but results "
                     f"contain {counted[kind]} of kind '{kind}'")


def check_sarif(doc):
    if doc.get("version") != SARIF_VERSION:
        fail(f"sarif version: expected '{SARIF_VERSION}', got "
             f"{doc.get('version')!r}")
        return
    if "$schema" not in doc:
        fail("sarif: missing '$schema'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("sarif: 'runs' must be a non-empty array")
        return
    for r, run in enumerate(runs):
        where = f"runs[{r}]"
        if not isinstance(run, dict):
            fail(f"{where}: expected object")
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict):
            fail(f"{where}.tool.driver: missing")
        else:
            check_keys(driver, {"name": str, "rules": list},
                       f"{where}.tool.driver")
            declared = set()
            for j, rule in enumerate(driver.get("rules", [])):
                if isinstance(rule, dict):
                    check_keys(rule, {"id": str, "shortDescription": dict},
                               f"{where}.tool.driver.rules[{j}]")
                    declared.add(rule.get("id"))
        for i, result in enumerate(run.get("results", [])):
            rwhere = f"{where}.results[{i}]"
            if not isinstance(result, dict):
                fail(f"{rwhere}: expected object")
                continue
            check_keys(result, {"ruleId": str, "level": str,
                                "message": dict,
                                "partialFingerprints": dict,
                                "occurrenceCount": int}, rwhere)
            if result.get("ruleId") not in RULE_IDS:
                fail(f"{rwhere}.ruleId: unknown rule "
                     f"{result.get('ruleId')!r}")
            elif isinstance(driver, dict) and \
                    result["ruleId"] not in declared:
                fail(f"{rwhere}.ruleId: {result['ruleId']!r} not declared "
                     f"in tool.driver.rules")
            msg = result.get("message")
            if isinstance(msg, dict) and \
                    not isinstance(msg.get("text"), str):
                fail(f"{rwhere}.message.text: missing")
            prints = result.get("partialFingerprints")
            if isinstance(prints, dict):
                check_fingerprint(prints.get("herdRace/v1"),
                                  f"{rwhere}.partialFingerprints.herdRace/v1")
            for k, loc in enumerate(result.get("locations", [])):
                lwhere = f"{rwhere}.locations[{k}]"
                phys = loc.get("physicalLocation") \
                    if isinstance(loc, dict) else None
                if not isinstance(phys, dict):
                    fail(f"{lwhere}.physicalLocation: missing")
                    continue
                art = phys.get("artifactLocation")
                if not isinstance(art, dict) or \
                        not isinstance(art.get("uri"), str):
                    fail(f"{lwhere}.physicalLocation.artifactLocation.uri: "
                         f"missing")
                region = phys.get("region")
                if not isinstance(region, dict) or \
                        not isinstance(region.get("startLine"), int) or \
                        region.get("startLine") < 1:
                    fail(f"{lwhere}.physicalLocation.region.startLine: "
                         f"expected positive int")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main(argv):
    if len(argv) < 2 or len(argv) not in (2, 4):
        print(__doc__, file=sys.stderr)
        return 2
    check_report(load(argv[1]))
    if len(argv) == 4:
        if argv[2] != "--sarif":
            print(__doc__, file=sys.stderr)
            return 2
        check_sarif(load(argv[3]))
    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    suffix = " + sarif" if len(argv) == 4 else ""
    print(f"ok: {argv[1]}{suffix} validates "
          f"({SCHEMA_NAME} v{SCHEMA_VERSION})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
