#!/usr/bin/env python3
"""Cold-pass allocation regression gate for CI.

Compares a fresh bench_hotpath smoke run (herd-bench-hotpath-v3 JSON)
against the checked-in smoke baseline and fails when any trace's
cold-pass allocations/event regressed by more than the threshold, or
when the planned cold pass exceeds the absolute ceiling the capacity
planner is supposed to guarantee.

Alloc counts on the serial replay path are deterministic (the counting
allocator measures structure growth, not timing), so a modest threshold
only has to absorb allocator-library differences between environments,
not run-to-run noise.

Usage: check_cold_allocs.py CURRENT.json BASELINE.json
"""

import json
import sys

# Fail when cold allocs/event exceed baseline by more than this factor.
REGRESSION_FACTOR = 1.25
# Tiny traces divide a handful of fixed allocations by a small event
# count; allow this much absolute slack so a single extra allocation in
# a 300-event trace does not trip the gate.
ABSOLUTE_SLACK = 0.02
# The planner's contract on the detector-bound reference stream.
PLANNED_CEILING = 0.2


def cold_ab(report):
    return {t["name"]: t["cold_ab"] for t in report["traces"]}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)
    for report, arg in ((current, sys.argv[1]), (baseline, sys.argv[2])):
        # v4 added the per-trace hook_path section (docs/HOOKPATH.md);
        # the cold-pass surface this gate reads is unchanged from v3.
        if report.get("schema") not in ("herd-bench-hotpath-v3",
                                        "herd-bench-hotpath-v4",
                                        "herd-bench-hotpath-v5",
                                        "herd-bench-hotpath-v6"):
            print(f"{arg}: unexpected schema {report.get('schema')!r}",
                  file=sys.stderr)
            return 2

    cur, base = cold_ab(current), cold_ab(baseline)
    failed = False
    for name, b in base.items():
        if name not in cur:
            print(f"FAIL {name}: missing from current run", file=sys.stderr)
            failed = True
            continue
        c = cur[name]
        for key in ("allocs_per_event", "allocs_per_event_planned"):
            limit = b[key] * REGRESSION_FACTOR + ABSOLUTE_SLACK
            status = "ok" if c[key] <= limit else "FAIL"
            print(f"{status:4} {name:10} {key:26} "
                  f"{c[key]:.4f} (baseline {b[key]:.4f}, limit {limit:.4f})")
            if c[key] > limit:
                failed = True

    refhot = cur.get("refhot")
    if refhot is None:
        print("FAIL refhot: missing from current run", file=sys.stderr)
        failed = True
    elif refhot["allocs_per_event_planned"] > PLANNED_CEILING:
        print(f"FAIL refhot: planned cold pass "
              f"{refhot['allocs_per_event_planned']:.4f} allocs/event "
              f"exceeds the {PLANNED_CEILING} ceiling", file=sys.stderr)
        failed = True

    if failed:
        print("cold-pass allocation regression detected", file=sys.stderr)
        return 1
    print("cold-pass allocations within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
