#!/usr/bin/env python3
"""Validates a `herd --stats=json` document (and optionally a
`--trace-json` timeline) against the stable herd-stats schema.

This is the reference consumer of the schema contract declared in
src/herd/StatsJson.h: the envelope pair ("schema", "version") is checked
first and the script refuses documents it does not understand; within a
version, the required keys below may gain siblings but never disappear or
change type.  CI runs this against the artifacts of the observability
smoke job, so a field rename or type change fails the build instead of
silently breaking downstream dashboards.

Usage:
  check_stats_schema.py stats.json [--trace trace.json]

Exit status: 0 when everything validates, 1 on any violation (each is
printed), 2 on usage/IO errors.
"""

import json
import sys

SCHEMA_NAME = "herd-stats"
SCHEMA_VERSION = 1

# Required key -> type (or tuple of types) per section.  Lists map each
# element against the given element spec.
DETECTOR_KEYS = {
    "events_in": int,
    "owned_filtered": int,
    "weaker_filtered": int,
    "races_reported": int,
    "locations_tracked": int,
    "locations_shared": int,
    "trie_nodes": int,
    "lockset_memo_hits": int,
    "lockset_memo_misses": int,
    "lockset_memo_evictions": int,
}

TOP_LEVEL_KEYS = {
    "schema": str,
    "version": int,
    "run": dict,
    "timings": dict,
    "static": dict,
    "instrumentation": dict,
    "dispatch": dict,
    "runtime": dict,
    "shards": list,
    "races": list,
    "deadlocks": list,
    "trace": dict,
    "report": dict,
}

SECTION_KEYS = {
    "run": {
        "ok": bool,
        "error": str,
        "instructions": int,
        "access_events": int,
        "context_switches": int,
        "threads_created": int,
        "output_values": int,
    },
    "timings": {"analysis_seconds": (int, float),
                "exec_seconds": (int, float)},
    "static": {
        "reachable_access_statements": int,
        "thread_local_filtered": int,
        "thread_specific_filtered": int,
        "same_thread_filtered": int,
        "common_sync_filtered": int,
        "race_set_size": int,
        "may_race_pairs": int,
    },
    "instrumentation": {
        "traces_inserted": int,
        "traces_removed": int,
        "loops_peeled": int,
    },
    "dispatch": {
        "mode": str,
        "fused_sites": dict,
        "fused_exec": dict,
        "batch_retirement": dict,
    },
    "runtime": {
        "events_seen": int,
        "cache_hits": int,
        "cache_misses": int,
        "cache_evictions": int,
        "hook": dict,
        "detector": dict,
        "per_thread_cache": list,
    },
    "trace": {"ok": bool, "error": str, "records": int, "bytes": int},
    "report": {
        "entries": int,
        "total_reported": int,
        "distinct_fingerprints": int,
        "dropped_records": int,
        "reporter_capacity": int,
        "provenance_enabled": bool,
        "provenance_threads": int,
        "provenance_locks": int,
        "provenance_accesses": int,
    },
}

errors = []


def fail(msg):
    errors.append(msg)


def check_keys(obj, spec, where):
    for key, types in spec.items():
        if key not in obj:
            fail(f"{where}: missing required key '{key}'")
        elif not isinstance(obj[key], types):
            # bool is an int subclass in Python; don't let True pass as int.
            fail(f"{where}.{key}: expected {types}, got "
                 f"{type(obj[key]).__name__}")
        elif types is int and isinstance(obj[key], bool):
            fail(f"{where}.{key}: expected int, got bool")


def check_stats(doc):
    if doc.get("schema") != SCHEMA_NAME:
        fail(f"schema: expected '{SCHEMA_NAME}', got {doc.get('schema')!r}")
        return
    if doc.get("version") != SCHEMA_VERSION:
        fail(f"version: this checker understands version {SCHEMA_VERSION}, "
             f"got {doc.get('version')!r}")
        return
    check_keys(doc, TOP_LEVEL_KEYS, "$")
    for section, spec in SECTION_KEYS.items():
        if isinstance(doc.get(section), dict):
            check_keys(doc[section], spec, section)
    dispatch = doc.get("dispatch", {})
    if isinstance(dispatch, dict):
        if dispatch.get("mode") not in ("switch", "threaded"):
            fail(f"dispatch.mode: expected 'switch' or 'threaded', got "
                 f"{dispatch.get('mode')!r}")
        for sub in ("fused_sites", "fused_exec"):
            if isinstance(dispatch.get(sub), dict):
                check_keys(dispatch[sub],
                           {"const_binop": int, "const_putfield": int,
                            "get_binop_put": int, "binop_branch": int,
                            "getfield_binop": int, "binop_putfield": int,
                            "binop_move": int, "total": int},
                           f"dispatch.{sub}")
        if isinstance(dispatch.get("batch_retirement"), dict):
            check_keys(dispatch["batch_retirement"],
                       {"planned_blocks": int, "planned_steps": int,
                        "hits": int, "retired_steps": int},
                       "dispatch.batch_retirement")
    runtime = doc.get("runtime", {})
    if isinstance(runtime.get("detector"), dict):
        check_keys(runtime["detector"], DETECTOR_KEYS, "runtime.detector")
    if isinstance(runtime.get("hook"), dict):
        check_keys(runtime["hook"],
                   {"filter_enabled": bool, "filter_hits": int,
                    "filter_misses": int, "epoch_bumps": int,
                    "key_invalidations": int, "batch_flushes": int,
                    "batched_events": int},
                   "runtime.hook")
    for i, shard in enumerate(doc.get("shards", [])):
        where = f"shards[{i}]"
        if not isinstance(shard, dict):
            fail(f"{where}: expected object")
            continue
        check_keys(shard, {"events_ingested": int, "batches_ingested": int,
                           "max_queue_depth_batches": int, "detector": dict},
                   where)
        if isinstance(shard.get("detector"), dict):
            check_keys(shard["detector"], DETECTOR_KEYS, f"{where}.detector")
    for section in ("races", "deadlocks"):
        for i, entry in enumerate(doc.get(section, [])):
            if not isinstance(entry, str):
                fail(f"{section}[{i}]: expected string report")
    # Optional sections, validated when present.
    if "epoch" in doc:
        check_keys(doc["epoch"],
                   {"events": int, "reads": int, "writes": int,
                    "same_epoch_reads": int, "same_epoch_writes": int,
                    "read_inflations": int, "shared_collapses": int,
                    "races_reported": int, "locations_tracked": int,
                    "threads_seen": int, "clock_rows_fresh": int,
                    "clock_rows_reused": int},
                   "epoch")
    if "metrics" in doc:
        m = doc["metrics"]
        check_keys(m, {"counters": dict, "gauges": dict, "histograms": dict},
                   "metrics")
    if "profile" in doc:
        check_keys(doc["profile"],
                   {"sample_every": int, "total_dispatches": int,
                    "instrumented_dispatches": int, "total_samples": int,
                    "sampled_nanos": int, "hook_nanos": int, "opcodes": list,
                    "pairs": list},
                   "profile")
        for i, pair in enumerate(doc["profile"].get("pairs", [])):
            if isinstance(pair, dict):
                check_keys(pair, {"first": str, "second": str, "count": int},
                           f"profile.pairs[{i}]")


def check_trace(doc):
    if not isinstance(doc.get("traceEvents"), list):
        fail("trace: missing traceEvents array")
        return
    if not doc["traceEvents"]:
        fail("trace: traceEvents is empty")
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: expected object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"{where}: missing '{key}'")
        if ev.get("ph") not in ("X", "C", "M"):
            fail(f"{where}: unexpected phase {ev.get('ph')!r}")
        if ev.get("ph") == "X" and ("ts" not in ev or "dur" not in ev):
            fail(f"{where}: complete span without ts/dur")


def load(path):
    try:
        with open(path, "rb") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_stats_schema: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    args = argv[1:]
    trace_path = None
    if "--trace" in args:
        i = args.index("--trace")
        if i + 1 >= len(args):
            print("check_stats_schema: --trace needs a path",
                  file=sys.stderr)
            return 2
        trace_path = args[i + 1]
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    check_stats(load(args[0]))
    if trace_path:
        check_trace(load(trace_path))

    for e in errors:
        print(f"check_stats_schema: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_stats_schema: {args[0]} conforms to "
          f"{SCHEMA_NAME} v{SCHEMA_VERSION}"
          + (f"; {trace_path} is a valid trace timeline" if trace_path
             else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
