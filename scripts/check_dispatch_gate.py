#!/usr/bin/env python3
"""Dispatch-mode live-vs-replay regression gate for CI.

Compares a fresh bench_hotpath smoke run (herd-bench-hotpath-v3 or -v4
JSON) against the checked-in smoke baseline and fails when the threaded
fast path (docs/INTERPRETER.md) lost ground:

 * every trace the baseline measured live must carry both dispatch modes
   ("switch" and "threaded") in `live_by_dispatch`, and the legacy
   `live` entry must be the threaded one;
 * the threaded live-vs-replay ratio must not fall below the baseline's
   by more than the leniency factor — the ratio divides two timings from
   the same process on the same box, so it absorbs machine speed but not
   a dispatch-loop regression;
 * threaded live throughput must stay above the floor fraction of switch
   live throughput in the current run — the fast path is allowed to tie
   the reference interpreter on tiny smoke traces, not to lose to it
   outright;
 * threaded live throughput must stay above the leniency fraction of the
   baseline's absolute threaded throughput — unlike the two ratio gates
   this compares across runs, so the factor is loose enough to absorb a
   slower runner but still trips on the fast path falling off a cliff;
 * the dispatch-mechanics counters must be coherent: switch dispatch
   reports zero fused executions and zero batch retirement, threaded
   dispatch on the fused-heavy replicas reports fused executions > 0.

Timing on shared CI runners is noisy even after best-of-N, hence the
deliberately loose constants: this gate catches "the fast path stopped
being fast", not single-digit-percent drift.

Usage: check_dispatch_gate.py CURRENT.json BASELINE.json
"""

import json
import sys

# Current threaded ratio_vs_replay_cold may be this fraction of the
# baseline's before the gate trips.
RATIO_LENIENCY = 0.4
# Threaded live events/sec must be at least this fraction of switch's.
THREADED_VS_SWITCH_FLOOR = 0.5
# Current threaded live events/sec may be this fraction of the
# baseline's before the gate trips.  Cross-run absolute timing absorbs
# machine-speed differences, so this is the loosest constant here.
THREADED_LIVE_LENIENCY = 0.4

MODES = ("switch", "threaded")
LIVE_KEYS = ("seconds", "events_per_sec", "allocs_per_event",
             "ratio_vs_replay_cold", "fused_execs", "block_retire_hits",
             "block_retired_steps")
COUNTER_KEYS = ("fused_execs", "block_retire_hits", "block_retired_steps")


def live_traces(report):
    return {t["name"]: t for t in report["traces"]
            if "live_by_dispatch" in t}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)
    for report, arg in ((current, sys.argv[1]), (baseline, sys.argv[2])):
        # v4 added the per-trace hook_path section (docs/HOOKPATH.md,
        # gated by check_hook_gate.py); everything this gate reads is
        # unchanged from v3, so both versions are accepted.
        if report.get("schema") not in ("herd-bench-hotpath-v3",
                                        "herd-bench-hotpath-v4",
                                        "herd-bench-hotpath-v5",
                                        "herd-bench-hotpath-v6"):
            print(f"{arg}: unexpected schema {report.get('schema')!r}",
                  file=sys.stderr)
            return 2

    cur, base = live_traces(current), live_traces(baseline)
    failed = False
    for name, b in base.items():
        t = cur.get(name)
        if t is None:
            print(f"FAIL {name}: no live_by_dispatch in current run",
                  file=sys.stderr)
            failed = True
            continue
        lbd = t["live_by_dispatch"]
        shape_ok = True
        for mode in MODES:
            missing = [k for k in LIVE_KEYS if k not in lbd.get(mode, {})]
            if missing:
                print(f"FAIL {name}: live_by_dispatch[{mode!r}] missing "
                      f"{missing}", file=sys.stderr)
                failed = True
                shape_ok = False
        if not shape_ok:
            continue
        if t.get("live") != lbd["threaded"]:
            print(f"FAIL {name}: legacy 'live' entry is not the threaded "
                  f"result", file=sys.stderr)
            failed = True
        if not t.get("agreement", False):
            print(f"FAIL {name}: runtimes disagreed on reported races",
                  file=sys.stderr)
            failed = True

        cur_ratio = lbd["threaded"]["ratio_vs_replay_cold"]
        base_ratio = b["live_by_dispatch"]["threaded"]["ratio_vs_replay_cold"]
        limit = base_ratio * RATIO_LENIENCY
        status = "ok" if cur_ratio >= limit else "FAIL"
        print(f"{status:4} {name:10} threaded ratio_vs_replay_cold "
              f"{cur_ratio:.3f} (baseline {base_ratio:.3f}, "
              f"floor {limit:.3f})")
        if cur_ratio < limit:
            failed = True

        th_eps = lbd["threaded"]["events_per_sec"]
        sw_eps = lbd["switch"]["events_per_sec"]
        floor = sw_eps * THREADED_VS_SWITCH_FLOOR
        status = "ok" if th_eps >= floor else "FAIL"
        print(f"{status:4} {name:10} threaded live {th_eps:.0f} ev/s vs "
              f"switch {sw_eps:.0f} (floor {floor:.0f})")
        if th_eps < floor:
            failed = True

        base_eps = b["live_by_dispatch"]["threaded"]["events_per_sec"]
        floor = base_eps * THREADED_LIVE_LENIENCY
        status = "ok" if th_eps >= floor else "FAIL"
        print(f"{status:4} {name:10} threaded live {th_eps:.0f} ev/s vs "
              f"baseline {base_eps:.0f} (floor {floor:.0f})")
        if th_eps < floor:
            failed = True

        # Dispatch-mechanics counters: switch must report none, and the
        # replicas are fused-heavy by construction, so a threaded run
        # with zero fused executions means the shadow code went missing.
        for key in COUNTER_KEYS:
            if lbd["switch"][key] != 0:
                print(f"FAIL {name}: switch dispatch reports nonzero "
                      f"{key} ({lbd['switch'][key]})", file=sys.stderr)
                failed = True
        if lbd["threaded"]["fused_execs"] == 0:
            print(f"FAIL {name}: threaded dispatch executed no "
                  f"superinstructions", file=sys.stderr)
            failed = True

    if not base:
        print("FAIL: baseline has no live_by_dispatch traces",
              file=sys.stderr)
        failed = True
    if failed:
        print("dispatch-mode live regression detected", file=sys.stderr)
        return 1
    print("dispatch-mode live performance within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
