#!/usr/bin/env python3
"""Epoch-backend regression gate for CI (docs/DETECTORS.md).

Validates the `epoch_ab` section that schema herd-bench-hotpath-v5 added
to every bench_hotpath trace, comparing a fresh run against the
checked-in baseline:

 * every trace the baseline measured must carry a complete `epoch_ab`
   object in the current run;
 * `agreement` must be true on every trace — the epoch backend and the
   vector-clock baseline implement the same happens-before relation, so
   any divergence in their racy-location sets is a correctness bug, not
   noise, and fails the gate unconditionally;
 * the epoch backend must not fall behind the vector-clock baseline:
   both detectors are timed inside the same process on the same trace,
   so their ratio is robust to machine speed and only a small noise
   floor is allowed;
 * the steady-state allocation rate (second replay into the same
   detector instance, pooled ClockStore recycling rows) must stay near
   zero;
 * a full (non-smoke) run must demonstrate the headline >= 3x speedup
   over the vector-clock baseline on the detector-bound synthetic trace
   (`refhot`) with steady allocs/event <= 0.001 — the acceptance bar the
   checked-in BENCH_hotpath.json proves; smoke runs on shared CI runners
   are only held to the loose clauses above.

Usage: check_epoch_gate.py CURRENT.json BASELINE.json
"""

import json
import sys

# Epoch cold / vector-clock cold are measured in the same run, so the
# ratio is machine-independent; still allow a noise floor for the tiny
# smoke traces (a handful of microseconds per replay).
SPEEDUP_FLOOR = 0.9
# ... and the current speedup may be this fraction of the baseline's.
SPEEDUP_LENIENCY = 0.5
# Steady allocs/event ceiling on any run: the smoke traces are small
# enough that the TraceReader's own handful of allocations registers.
STEADY_ALLOCS_CEILING = 0.02
# Full (non-smoke) runs must demonstrate the headline numbers here.
DETECTOR_BOUND_TRACE = "refhot"
FULL_RUN_SPEEDUP = 3.0
FULL_RUN_STEADY_ALLOCS = 0.001

AB_KEYS = ("vc_events_per_sec", "epoch_cold_events_per_sec",
           "epoch_steady_events_per_sec", "speedup",
           "steady_allocs_per_event", "racy_locations", "agreement")


def ab_traces(report):
    return {t["name"]: t for t in report["traces"] if "epoch_ab" in t}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)
    for report, arg in ((current, sys.argv[1]), (baseline, sys.argv[2])):
        if report.get("schema") not in ("herd-bench-hotpath-v5",
                                        "herd-bench-hotpath-v6"):
            print(f"{arg}: unexpected schema {report.get('schema')!r}",
                  file=sys.stderr)
            return 2

    cur, base = ab_traces(current), ab_traces(baseline)
    failed = False
    for name, b in base.items():
        t = cur.get(name)
        if t is None:
            print(f"FAIL {name}: no epoch_ab in current run",
                  file=sys.stderr)
            failed = True
            continue
        ab = t["epoch_ab"]
        missing = [k for k in AB_KEYS if k not in ab]
        if missing:
            print(f"FAIL {name}: epoch_ab missing {missing}",
                  file=sys.stderr)
            failed = True
            continue

        # Race-set agreement is correctness, not performance: no leniency.
        if not ab["agreement"]:
            print(f"FAIL {name}: epoch and vector-clock disagree on the "
                  f"racy-location set", file=sys.stderr)
            failed = True
        else:
            print(f"ok   {name:10} race sets agree "
                  f"({ab['racy_locations']} racy location(s))")

        speedup = ab["speedup"]
        base_speedup = b["epoch_ab"]["speedup"]
        floor = max(SPEEDUP_FLOOR, base_speedup * SPEEDUP_LENIENCY)
        status = "ok" if speedup >= floor else "FAIL"
        print(f"{status:4} {name:10} epoch {speedup:.2f}x vs vclock "
              f"(baseline {base_speedup:.2f}x, floor {floor:.2f}x)")
        if speedup < floor:
            failed = True

        steady = ab["steady_allocs_per_event"]
        status = "ok" if steady <= STEADY_ALLOCS_CEILING else "FAIL"
        print(f"{status:4} {name:10} steady {steady:.4f} allocs/event "
              f"(ceiling {STEADY_ALLOCS_CEILING})")
        if steady > STEADY_ALLOCS_CEILING:
            failed = True

        if name == DETECTOR_BOUND_TRACE and not current.get("smoke", True):
            status = "ok" if speedup >= FULL_RUN_SPEEDUP else "FAIL"
            print(f"{status:4} {name:10} full-run headline speedup "
                  f"{speedup:.2f}x (required {FULL_RUN_SPEEDUP:.1f}x)")
            if speedup < FULL_RUN_SPEEDUP:
                failed = True
            status = "ok" if steady <= FULL_RUN_STEADY_ALLOCS else "FAIL"
            print(f"{status:4} {name:10} full-run steady allocs/event "
                  f"{steady:.4f} (required <= {FULL_RUN_STEADY_ALLOCS})")
            if steady > FULL_RUN_STEADY_ALLOCS:
                failed = True

    if DETECTOR_BOUND_TRACE not in base:
        print(f"FAIL: baseline has no epoch_ab for {DETECTOR_BOUND_TRACE}",
              file=sys.stderr)
        failed = True
    if failed:
        print("epoch-backend regression detected", file=sys.stderr)
        return 1
    print("epoch gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
