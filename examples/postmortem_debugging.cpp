//===- examples/postmortem_debugging.cpp - The Section 2.6 workflow -------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks the paper's debugging workflow end to end (Section 2.6):
///
///   1. run the program with the cheap online detector while recording
///      the schedule (the DejaVu role) and the event log;
///   2. the online detector reports *one* access per racy location
///      (Definition 1) — enough to know something is wrong and where;
///   3. replay the identical interleaving offline and reconstruct the
///      full set of racing pairs (FullRace), "the expensive
///      reconstruction" the paper defers to replay time;
///   4. show that the event log alone (post-mortem mode) reaches the same
///      conclusions without re-running the program at all.
///
//===----------------------------------------------------------------------===//

#include "baselines/NaiveDetector.h"
#include "detect/EventLog.h"
#include "detect/RaceRuntime.h"
#include "ir/IRBuilder.h"
#include "runtime/Interpreter.h"

#include <cstdio>

using namespace herd;

namespace {

/// Two workers hammer a shared configuration object: `generation` is
/// racy, `settings` is properly locked.
Program buildWorkload() {
  Program P;
  IRBuilder B(P);
  ClassId Config = B.makeClass("Config");
  FieldId Gen = B.makeField(Config, "generation");
  FieldId Setting = B.makeField(Config, "setting");
  ClassId Worker = B.makeClass("Refresher");
  FieldId Target = B.makeField(Worker, "config");

  B.startMethod(Worker, "run", 1);
  {
    RegId Cfg = B.emitGetField(B.thisReg(), Target);
    RegId N = B.emitConst(12);
    B.forLoop(0, N, 1, [&](RegId I) {
      B.site("refresh:generation");
      RegId G = B.emitGetField(Cfg, Gen); // unsynchronized read
      B.emitPutField(Cfg, Gen,
                     B.emitBinOp(BinOpKind::Add, G, B.emitConst(1)));
      B.sync(Cfg, [&] {
        B.site("refresh:setting");
        B.emitPutField(Cfg, Setting, I);
      });
    });
    B.emitReturn();
  }
  B.startMain();
  RegId Cfg = B.emitNew(Config);
  RegId W1 = B.emitNew(Worker);
  RegId W2 = B.emitNew(Worker);
  B.emitPutField(W1, Target, Cfg);
  B.emitPutField(W2, Target, Cfg);
  B.emitThreadStart(W1);
  B.emitThreadStart(W2);
  B.emitThreadJoin(W1);
  B.emitThreadJoin(W2);
  B.emitPrint(B.emitGetField(Cfg, Gen));
  B.emitReturn();
  return P;
}

} // namespace

int main() {
  std::printf("Post-mortem debugging workflow (paper Section 2.6)\n\n");
  Program P = buildWorkload();

  // Step 1: online detection + recording.
  RaceRuntime Online;
  EventLog Log;
  ScheduleTrace Trace;
  FanoutHooks Fanout{&Online, &Log};
  InterpOptions Opts;
  Opts.Seed = 11;
  Opts.TraceEveryAccess = true;
  Opts.Record = &Trace;
  Interpreter Recorder(P, &Fanout, Opts);
  InterpResult R = Recorder.run();
  if (!R.Ok) {
    std::printf("run failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("[1] online run: %llu events observed, %zu race report(s), "
              "%zu schedule slices recorded, %zu log records\n",
              (unsigned long long)R.AccessEvents, Online.reporter().size(),
              Trace.Slices.size(), Log.size());
  for (const RaceRecord &Rec : Online.reporter().records())
    std::printf("    racy location raw=%llx (thread %u)\n",
                (unsigned long long)Rec.Location.raw(),
                Rec.CurrentThread.index());

  // Step 2+3: replay the exact interleaving; reconstruct FullRace.
  NaiveDetector Oracle;
  InterpOptions ReplayOpts;
  ReplayOpts.Replay = &Trace;
  ReplayOpts.TraceEveryAccess = true;
  Interpreter Replayer(P, &Oracle, ReplayOpts);
  InterpResult R2 = Replayer.run();
  std::printf("\n[2] replay: %s, identical instruction count: %s\n",
              R2.Ok ? "ok" : "FAILED",
              R2.InstructionsExecuted == R.InstructionsExecuted ? "yes"
                                                                : "no");
  std::printf("[3] FullRace reconstruction on the replayed run:\n");
  for (LocationKey Loc : Oracle.racyLocations())
    std::printf("    location raw=%llx participates in %zu racing pair(s)\n",
                (unsigned long long)Loc.raw(), Oracle.memRaceSize(Loc));
  std::printf("    (the online detector reported each location once — "
              "Definition 1 —\n     while replay enumerates every pair)\n");

  // Step 4: pure post-mortem from the serialized log.
  std::vector<uint8_t> Bytes = Log.serialize();
  EventLog Restored;
  TraceResult Decoded = EventLog::deserialize(Bytes, Restored);
  if (!Decoded.Ok) {
    std::printf("log corrupt: %s\n", Decoded.Error.c_str());
    return 1;
  }
  RaceRuntime Offline;
  Restored.replayInto(Offline);
  std::printf("\n[4] post-mortem from a %zu-byte log (no re-execution): "
              "%zu report(s), locations %s the online run\n",
              Bytes.size(), Offline.reporter().size(),
              Offline.reporter().reportedLocations() ==
                      Online.reporter().reportedLocations()
                  ? "match"
                  : "DIFFER FROM");
  return 0;
}
