//===- examples/bank_accounts.cpp - Classic transfer race -----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A domain example: two teller threads move money between accounts.  The
/// buggy version updates balances with no locking — the detector pinpoints
/// the racy field and the statement label, and the lost-update corruption
/// is visible in the final balances.  The fixed version wraps each
/// transfer in synchronized(bank) and is verified silent across many
/// schedules.
///
//===----------------------------------------------------------------------===//

#include "herd/Pipeline.h"
#include "ir/IRBuilder.h"

#include <cstdio>

using namespace herd;

namespace {

Program buildBank(bool Locked, int64_t TransfersPerTeller) {
  Program P;
  IRBuilder B(P);
  ClassId Account = B.makeClass("Account");
  FieldId Balance = B.makeField(Account, "balance");
  ClassId Bank = B.makeClass("Bank");
  FieldId BankA = B.makeField(Bank, "checking");
  FieldId BankB = B.makeField(Bank, "savings");
  ClassId Teller = B.makeClass("Teller");
  FieldId TBank = B.makeField(Teller, "bank");
  FieldId TAmount = B.makeField(Teller, "amount");

  MethodId Transfer = B.startMethod(Teller, "transfer", 4);
  {
    RegId From = B.param(1);
    RegId To = B.param(2);
    RegId Amount = B.param(3);
    B.site("Teller.transfer");
    RegId FromBal = B.emitGetField(From, Balance);
    B.emitPutField(From, Balance,
                   B.emitBinOp(BinOpKind::Sub, FromBal, Amount));
    RegId ToBal = B.emitGetField(To, Balance);
    B.emitPutField(To, Balance, B.emitBinOp(BinOpKind::Add, ToBal, Amount));
    B.emitReturn();
  }

  B.startMethod(Teller, "run", 1);
  {
    RegId This = B.thisReg();
    RegId BankObj = B.emitGetField(This, TBank);
    RegId A = B.emitGetField(BankObj, BankA);
    RegId Bv = B.emitGetField(BankObj, BankB);
    RegId Amount = B.emitGetField(This, TAmount);
    RegId N = B.emitConst(TransfersPerTeller);
    B.forLoop(0, N, 1, [&](RegId I) {
      RegId Two = B.emitConst(2);
      RegId Even = B.emitBinOp(BinOpKind::CmpEq,
                               B.emitBinOp(BinOpKind::Mod, I, Two),
                               B.emitConst(0));
      auto DoTransfer = [&] {
        B.ifThenElse(
            Even,
            [&] { B.emitCallVoid(Transfer, {This, A, Bv, Amount}); },
            [&] { B.emitCallVoid(Transfer, {This, Bv, A, Amount}); });
      };
      if (Locked)
        B.sync(BankObj, DoTransfer);
      else
        DoTransfer();
    });
    B.emitReturn();
  }

  B.startMain();
  {
    RegId BankObj = B.emitNew(Bank);
    RegId A = B.emitNew(Account);
    RegId Bv = B.emitNew(Account);
    B.emitPutField(A, Balance, B.emitConst(1000));
    B.emitPutField(Bv, Balance, B.emitConst(1000));
    B.emitPutField(BankObj, BankA, A);
    B.emitPutField(BankObj, BankB, Bv);
    RegId T1 = B.emitNew(Teller);
    RegId T2 = B.emitNew(Teller);
    B.emitPutField(T1, TBank, BankObj);
    B.emitPutField(T1, TAmount, B.emitConst(10));
    B.emitPutField(T2, TBank, BankObj);
    B.emitPutField(T2, TAmount, B.emitConst(25));
    B.emitThreadStart(T1);
    B.emitThreadStart(T2);
    B.emitThreadJoin(T1);
    B.emitThreadJoin(T2);
    // Total must be conserved: print both balances and the sum.
    RegId FinalA = B.emitGetField(A, Balance);
    RegId FinalB = B.emitGetField(Bv, Balance);
    B.emitPrint(FinalA);
    B.emitPrint(FinalB);
    B.emitPrint(B.emitBinOp(BinOpKind::Add, FinalA, FinalB));
    B.emitReturn();
  }
  return P;
}

} // namespace

int main() {
  std::printf("Bank-accounts example: lost updates and their detection\n\n");

  std::printf("--- buggy version (no locking) ---\n");
  int SchedulesWithCorruption = 0;
  int SchedulesReported = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Program P = buildBank(/*Locked=*/false, 50);
    // The detector misses nothing if peeling's first-iteration-only traces
    // would suppress the race, so run the robust no-peeling configuration
    // (see DESIGN.md on the Section 7.2 interaction).
    ToolConfig Config = ToolConfig::noPeeling();
    Config.Seed = Seed;
    PipelineResult R = runPipeline(P, Config);
    if (!R.Run.Ok) {
      std::printf("run failed: %s\n", R.Run.Error.c_str());
      return 1;
    }
    int64_t Total = R.Run.Output[2];
    if (Total != 2000)
      ++SchedulesWithCorruption;
    if (!R.Reports.empty())
      ++SchedulesReported;
    if (Seed == 1)
      for (const std::string &Line : R.FormattedRaces)
        std::printf("  %s\n", Line.c_str());
  }
  std::printf("10 schedules: race reported in %d, money actually lost or "
              "created in %d\n",
              SchedulesReported, SchedulesWithCorruption);
  std::printf("(the detector flags every schedule; the corruption only "
              "strikes in some — that is why dataraces are so hard to "
              "debug by testing)\n\n");

  std::printf("--- fixed version (synchronized(bank)) ---\n");
  int Silent = 0, Conserved = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Program P = buildBank(/*Locked=*/true, 50);
    ToolConfig Config = ToolConfig::full();
    Config.Seed = Seed;
    PipelineResult R = runPipeline(P, Config);
    if (!R.Run.Ok) {
      std::printf("run failed: %s\n", R.Run.Error.c_str());
      return 1;
    }
    if (R.Reports.empty())
      ++Silent;
    if (R.Run.Output[2] == 2000)
      ++Conserved;
  }
  std::printf("10 schedules: %d silent, %d conserve the total of 2000\n",
              Silent, Conserved);
  return 0;
}
