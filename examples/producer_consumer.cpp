//===- examples/producer_consumer.cpp - Pipeline over a locked queue ------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A producer/consumer pipeline over a bounded ring buffer protected by a
/// monitor.  Demonstrates the two mechanisms that keep correct concurrent
/// code cheap to monitor:
///   - the ownership model absorbs the producer's item initialization (the
///     item is created and filled before it is published);
///   - the per-thread caches absorb repeated accesses within each
///     critical section.
/// It also shows the detector's statistics API, and flips a single flag —
/// the consumer peeking at the ring's writeIndex without the lock — to
/// demonstrate how one missing monitorenter turns into a report.
///
//===----------------------------------------------------------------------===//

#include "herd/Pipeline.h"
#include "ir/IRBuilder.h"

#include <cstdio>

using namespace herd;

namespace {

Program buildPipeline(bool BuggyPeek, int64_t NumItems) {
  Program P;
  IRBuilder B(P);
  ClassId Item = B.makeClass("Item");
  FieldId ItemVal = B.makeField(Item, "value");
  ClassId Ring = B.makeClass("Ring");
  FieldId RingSlots = B.makeField(Ring, "slots");
  FieldId RingWrite = B.makeField(Ring, "writeIndex");
  FieldId RingRead = B.makeField(Ring, "readIndex");
  ClassId Producer = B.makeClass("Producer");
  FieldId PRing = B.makeField(Producer, "ring");
  FieldId PCount = B.makeField(Producer, "count");
  ClassId Consumer = B.makeClass("Consumer");
  FieldId CRing = B.makeField(Consumer, "ring");
  FieldId CCount = B.makeField(Consumer, "count");
  FieldId CSum = B.makeField(Consumer, "sum");

  B.startMethod(Producer, "run", 1);
  {
    RegId This = B.thisReg();
    RegId RingObj = B.emitGetField(This, PRing);
    RegId N = B.emitGetField(This, PCount);
    B.forLoop(0, N, 1, [&](RegId I) {
      // Initialize the item BEFORE publication: ownership covers this.
      RegId It = B.emitNew(Item);
      B.site("produce:init");
      B.emitPutField(It, ItemVal, B.emitBinOp(BinOpKind::Mul, I,
                                              B.emitConst(3)));
      // Publish under the ring's monitor, spinning while full.
      RegId Stored = B.emitConst(0);
      B.whileLoop(
          [&] {
            return B.emitBinOp(BinOpKind::CmpEq, Stored, B.emitConst(0));
          },
          [&] {
            B.sync(RingObj, [&] {
              B.site("produce:publish");
              RegId Wr = B.emitGetField(RingObj, RingWrite);
              RegId Rd = B.emitGetField(RingObj, RingRead);
              RegId Slots = B.emitGetField(RingObj, RingSlots);
              RegId Cap = B.emitArrayLen(Slots);
              RegId Used = B.emitBinOp(BinOpKind::Sub, Wr, Rd);
              RegId HasRoom = B.emitBinOp(BinOpKind::CmpLt, Used, Cap);
              B.ifThen(HasRoom, [&] {
                RegId Slot = B.emitBinOp(BinOpKind::Mod, Wr, Cap);
                B.emitAStore(Slots, Slot, It);
                B.emitPutField(RingObj, RingWrite,
                               B.emitBinOp(BinOpKind::Add, Wr,
                                           B.emitConst(1)));
                B.emitAssign(Stored, B.emitConst(1));
              });
            });
            B.emitYield();
          });
    });
    B.emitReturn();
  }

  B.startMethod(Consumer, "run", 1);
  {
    RegId This = B.thisReg();
    RegId RingObj = B.emitGetField(This, CRing);
    RegId N = B.emitGetField(This, CCount);
    B.forLoop(0, N, 1, [&](RegId) {
      RegId Taken = B.emitConst(0);
      B.whileLoop(
          [&] {
            return B.emitBinOp(BinOpKind::CmpEq, Taken, B.emitConst(0));
          },
          [&] {
            if (BuggyPeek) {
              // BUG: peek at writeIndex without the lock.
              B.site("consume:unsafe-peek");
              RegId Wr = B.emitGetField(RingObj, RingWrite);
              B.ifThen(B.emitBinOp(BinOpKind::CmpEq, Wr, B.emitConst(0)),
                       [&] { B.emitYield(); });
            }
            B.sync(RingObj, [&] {
              B.site("consume:take");
              RegId Wr = B.emitGetField(RingObj, RingWrite);
              RegId Rd = B.emitGetField(RingObj, RingRead);
              RegId HasItem = B.emitBinOp(BinOpKind::CmpLt, Rd, Wr);
              B.ifThen(HasItem, [&] {
                RegId Slots = B.emitGetField(RingObj, RingSlots);
                RegId Cap = B.emitArrayLen(Slots);
                RegId Slot = B.emitBinOp(BinOpKind::Mod, Rd, Cap);
                RegId It = B.emitALoad(Slots, Slot);
                B.emitPutField(RingObj, RingRead,
                               B.emitBinOp(BinOpKind::Add, Rd,
                                           B.emitConst(1)));
                B.site("consume:use");
                RegId V = B.emitGetField(It, ItemVal);
                RegId Sum = B.emitGetField(This, CSum);
                B.emitPutField(This, CSum,
                               B.emitBinOp(BinOpKind::Add, Sum, V));
                B.emitAssign(Taken, B.emitConst(1));
              });
            });
            B.emitYield();
          });
    });
    B.emitReturn();
  }

  B.startMain();
  {
    RegId RingObj = B.emitNew(Ring);
    RegId Slots = B.emitNewArray(B.emitConst(4));
    B.emitPutField(RingObj, RingSlots, Slots);
    B.emitPutField(RingObj, RingWrite, B.emitConst(0));
    B.emitPutField(RingObj, RingRead, B.emitConst(0));
    RegId Prod = B.emitNew(Producer);
    B.emitPutField(Prod, PRing, RingObj);
    B.emitPutField(Prod, PCount, B.emitConst(NumItems));
    RegId Cons = B.emitNew(Consumer);
    B.emitPutField(Cons, CRing, RingObj);
    B.emitPutField(Cons, CCount, B.emitConst(NumItems));
    B.emitPutField(Cons, CSum, B.emitConst(0));
    B.emitThreadStart(Prod);
    B.emitThreadStart(Cons);
    B.emitThreadJoin(Prod);
    B.emitThreadJoin(Cons);
    B.emitPrint(B.emitGetField(Cons, CSum));
    B.emitReturn();
  }
  return P;
}

void report(const char *Title, const Program &P) {
  std::printf("--- %s ---\n", Title);
  PipelineResult R = runPipeline(P, ToolConfig::full());
  if (!R.Run.Ok) {
    std::printf("run failed: %s\n", R.Run.Error.c_str());
    return;
  }
  std::printf("consumed sum = %lld; %llu events, %llu cache hits "
              "(%.1f%%), %llu absorbed by ownership, %zu report(s)\n",
              (long long)R.Run.Output[0],
              (unsigned long long)R.Stats.EventsSeen,
              (unsigned long long)R.Stats.CacheHits,
              R.Stats.EventsSeen
                  ? 100.0 * double(R.Stats.CacheHits) /
                        double(R.Stats.EventsSeen)
                  : 0.0,
              (unsigned long long)R.Stats.Detector.OwnedFiltered,
              R.Reports.size());
  for (const std::string &Line : R.FormattedRaces)
    std::printf("  %s\n", Line.c_str());
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Producer/consumer example: monitors done right (and one "
              "peek done wrong)\n\n");
  report("correct ring buffer", buildPipeline(false, 25));
  std::printf("The item handoff (produce:init -> consume:use) is silent:\n"
              "the ownership model treats the pre-publication writes as\n"
              "initialization, and the post-publication reads share the\n"
              "ring's monitor ordering.\n\n");
  report("consumer peeks writeIndex without the lock",
         buildPipeline(true, 25));
  return 0;
}
