//===- examples/minij_tour.cpp - The MiniJ surface language ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a MiniJ source program — a worker pool with one deliberately
/// missing lock — and runs the full detection pipeline on it.  Race
/// reports point at MiniJ source lines.  Also demonstrates the compiler's
/// diagnostics on a broken program.
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "herd/Pipeline.h"

#include <cstdio>

using namespace herd;

namespace {

const char *const PoolSource = R"minij(
class Stats {
  var processed: int;    // guarded by `this`... supposedly
  var maxSeen: int;
}

class Job {
  var payload: int;
  var done: int;
}

class Worker {
  var jobs: Job[];
  var lo: int;
  var hi: int;
  var stats: Stats;

  def run() {
    var i = lo;
    while (i < hi) {
      var j: Job = jobs[i];
      j.payload = j.payload * 2 + 1;
      j.done = 1;
      synchronized (stats) {
        stats.processed = stats.processed + 1;
      }
      // BUG: maxSeen is updated OUTSIDE the critical section.
      if (j.payload > stats.maxSeen) {
        stats.maxSeen = j.payload;
      }
      i = i + 1;
    }
  }
}

def main() {
  var jobs: Job[] = new Job[16];
  var i = 0;
  while (i < jobs.length) {
    var j: Job = new Job();
    j.payload = i * 3;
    jobs[i] = j;
    i = i + 1;
  }
  var stats: Stats = new Stats();
  var w1: Worker = new Worker();
  var w2: Worker = new Worker();
  w1.jobs = jobs; w1.lo = 0; w1.hi = 8;  w1.stats = stats;
  w2.jobs = jobs; w2.lo = 8; w2.hi = 16; w2.stats = stats;
  start w1;
  start w2;
  join w1;
  join w2;
  print stats.processed;
  print stats.maxSeen;
}
)minij";

const char *const BrokenSource = R"minij(
class Account {
  var balance: int;
}
def main() {
  var a: Account = new Account();
  a.balence = 10;     // typo
  print a.withdraw(); // no such method
}
)minij";

} // namespace

int main() {
  std::printf("MiniJ tour: source -> compile -> detect\n\n");
  std::printf("%s\n", PoolSource);

  CompileResult R = compileMiniJ(PoolSource);
  if (!R.Ok) {
    for (const Diagnostic &D : R.Diags)
      std::printf("error: %s\n", D.str().c_str());
    return 1;
  }
  std::printf("compiled: %zu classes, %zu methods, %zu IR statements\n\n",
              R.P.numClasses(), R.P.numMethods(), R.P.countInstructions());

  PipelineResult Res = runPipeline(R.P, ToolConfig::full());
  if (!Res.Run.Ok) {
    std::printf("execution failed: %s\n", Res.Run.Error.c_str());
    return 1;
  }
  std::printf("program output: processed=%lld maxSeen=%lld\n",
              (long long)Res.Run.Output[0], (long long)Res.Run.Output[1]);
  std::printf("%zu race report(s):\n", Res.Reports.size());
  for (const std::string &Line : Res.FormattedRaces)
    std::printf("  %s\n", Line.c_str());
  std::printf("\n(`L<k>` labels are MiniJ source lines: the maxSeen\n"
              "update at the unsynchronized if-statement.)\n\n");

  std::printf("--- diagnostics on a broken program ---\n");
  CompileResult Bad = compileMiniJ(BrokenSource);
  for (const Diagnostic &D : Bad.Diags)
    std::printf("error: %s\n", D.str().c_str());
  return 0;
}
