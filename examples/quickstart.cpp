//===- examples/quickstart.cpp - Figure 2 walked through ------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: builds the paper's Figure 2 program with the IRBuilder API,
/// runs the full Figure 1 pipeline, and prints what each phase did and the
/// resulting race report.  Then re-runs the Section 2.2 variant (the two
/// synchronized blocks use the same lock object) and shows that the
/// lockset detector still reports the *feasible* race while a pure
/// happens-before (vector clock) detector stays silent.
///
//===----------------------------------------------------------------------===//

#include "baselines/VectorClockDetector.h"
#include "herd/Pipeline.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"

#include <cstdio>

using namespace herd;

namespace {

/// Figure 2 of the paper: main writes x.f, then starts T1 (synchronized
/// foo writing a.f and, under lock p, b.g = b.f) and T2 (under lock q,
/// d.f = 10), where a, b, d, x alias one object.
Program buildFigure2(bool SamePQ) {
  Program P;
  IRBuilder B(P);
  ClassId Data = B.makeClass("Data");
  FieldId F = B.makeField(Data, "f");
  FieldId G = B.makeField(Data, "g");
  ClassId LockCls = B.makeClass("LockObj");

  ClassId Child1 = B.makeClass("Child1");
  FieldId C1A = B.makeField(Child1, "a");
  FieldId C1B = B.makeField(Child1, "b");
  FieldId C1P = B.makeField(Child1, "p");
  MethodId Foo = B.startMethod(Child1, "foo", 1, /*IsStatic=*/false,
                               /*IsSynchronized=*/true); // T10
  {
    B.site("T11");
    RegId A = B.emitGetField(B.thisReg(), C1A);
    B.emitPutField(A, F, B.emitConst(50));
    RegId Pl = B.emitGetField(B.thisReg(), C1P);
    B.sync(Pl, [&] { // T13
      B.site("T14");
      RegId Bo = B.emitGetField(B.thisReg(), C1B);
      B.emitPutField(Bo, G, B.emitGetField(Bo, F));
    });
    B.emitReturn();
  }
  B.startMethod(Child1, "run", 1);
  B.emitCallVoid(Foo, {B.thisReg()});
  B.emitReturn();

  ClassId Child2 = B.makeClass("Child2");
  FieldId C2D = B.makeField(Child2, "d");
  FieldId C2Q = B.makeField(Child2, "q");
  B.startMethod(Child2, "run", 1);
  {
    RegId Q = B.emitGetField(B.thisReg(), C2Q);
    B.sync(Q, [&] { // T20
      B.site("T21");
      RegId D = B.emitGetField(B.thisReg(), C2D);
      B.emitPutField(D, F, B.emitConst(10));
    });
    B.emitReturn();
  }

  B.startMain();
  RegId X = B.emitNew(Data);
  B.site("T01");
  B.emitPutField(X, F, B.emitConst(100));
  B.site("");
  RegId T1 = B.emitNew(Child1);
  RegId T2 = B.emitNew(Child2);
  RegId PLock = B.emitNew(LockCls);
  RegId QLock = SamePQ ? PLock : B.emitNew(LockCls);
  B.emitPutField(T1, C1A, X);
  B.emitPutField(T1, C1B, X);
  B.emitPutField(T1, C1P, PLock);
  B.emitPutField(T2, C2D, X);
  B.emitPutField(T2, C2Q, QLock);
  B.emitThreadStart(T1); // T04
  B.emitThreadStart(T2); // T05
  B.emitReturn();
  return P;
}

void runAndReport(const Program &P, const char *Title) {
  std::printf("=== %s ===\n", Title);
  PipelineResult R = runPipeline(P, ToolConfig::full());
  if (!R.Run.Ok) {
    std::printf("execution failed: %s\n", R.Run.Error.c_str());
    return;
  }
  std::printf("phase 1  static analysis: %zu access statements, "
              "%zu in the static datarace set (%zu may-race pairs)\n",
              R.Static.ReachableAccessStatements, R.Static.RaceSetSize,
              R.Static.MayRacePairs);
  std::printf("phase 2  instrumentation: %zu traces inserted, "
              "%zu removed by static weaker-than, %zu loops peeled\n",
              R.Instr.TracesInserted, R.Instr.TracesRemoved,
              R.Instr.LoopsPeeled);
  std::printf("phase 3  runtime optimizer: %llu events, %llu cache hits\n",
              (unsigned long long)R.Stats.EventsSeen,
              (unsigned long long)R.Stats.CacheHits);
  std::printf("phase 4  detector: %llu filtered as owned, %llu as weaker; "
              "%zu race report(s)\n",
              (unsigned long long)R.Stats.Detector.OwnedFiltered,
              (unsigned long long)R.Stats.Detector.WeakerFiltered,
              R.Reports.size());
  for (const std::string &Line : R.FormattedRaces)
    std::printf("  %s\n", Line.c_str());
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("HERD quickstart: the paper's Figure 2 example\n\n");
  Program P = buildFigure2(/*SamePQ=*/false);
  std::printf("The example program (MiniJ IR):\n\n%s\n",
              printProgram(P).c_str());

  runAndReport(P, "Figure 2 as printed in the paper (p != q)");
  std::printf("Note: T01's write by main is NOT implicated — the ownership\n"
              "model absorbs initialization that start() orders before the\n"
              "children (Section 2.3).\n\n");

  Program P2 = buildFigure2(/*SamePQ=*/true);
  runAndReport(P2, "Section 2.2 variant: p and q are the same lock");
  std::printf("The race between T11 and T21 is *feasible*: it did not\n"
              "manifest in this schedule (the common lock ordered the two\n"
              "critical sections), but it would under another schedule.\n"
              "A happens-before detector cannot see it:\n\n");

  // Drive the happens-before baseline over the same execution.
  VectorClockDetector VC;
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(P2, &VC, Opts);
  InterpResult R = Interp.run();
  std::printf("vector-clock detector on the same program: %zu report(s) "
              "(run %s)\n",
              VC.reportedLocations().size(), R.Ok ? "ok" : "failed");
  std::printf("\nThis is the paper's core precision argument (Section 2.2):\n"
              "lockset-based detection reports the bug in every schedule.\n");
  return 0;
}
