//===- tools/herd.cpp - The herd command-line driver ----------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `herd` command-line tool: compile a MiniJ source file, run it under
/// the detection pipeline, and print race reports.
///
///   herd prog.mj                    # full pipeline, defaults
///   herd prog.mj --seed=7           # a different schedule
///   herd prog.mj --config=nocache   # a Table 2 ablation
///   herd prog.mj --stats            # pipeline statistics
///   herd prog.mj --stats=json       # machine-readable statistics
///   herd prog.mj --trace-json=t.json# Chrome trace_event timeline
///   herd prog.mj --profile          # interpreter opcode profile
///   herd prog.mj --dump-ir          # print the MiniJ IR and exit
///   herd prog.mj --sweep=20         # run 20 seeds; summarize reports
///
/// Argument parsing lives in herd/HerdOptions.{h,cpp} so the flag grammar
/// and its error paths are unit-tested (tests/cli_test.cpp); this file is
/// only the I/O shell around the pipeline.
///
//===----------------------------------------------------------------------===//

#include "baselines/EraserDetector.h"
#include "baselines/NaiveDetector.h"
#include "baselines/VectorClockDetector.h"
#include "detect/TraceFile.h"
#include "frontend/Frontend.h"
#include "herd/HerdOptions.h"
#include "herd/Pipeline.h"
#include "herd/ReportExport.h"
#include "herd/StatsJson.h"
#include "ir/Printer.h"
#include "runtime/InterpProfiler.h"
#include "support/Metrics.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

using namespace herd;

namespace {

void printStats(const PipelineResult &R) {
  std::printf("-- statistics --\n");
  std::printf("static:   %zu access statements, %zu in race set, "
              "%zu may-race pairs\n",
              R.Static.ReachableAccessStatements, R.Static.RaceSetSize,
              R.Static.MayRacePairs);
  std::printf("instr:    %zu traces inserted, %zu removed, %zu loops "
              "peeled\n",
              R.Instr.TracesInserted, R.Instr.TracesRemoved,
              R.Instr.LoopsPeeled);
  std::printf("dispatch: %s, %llu fused sites "
              "(%llu const+binop, %llu const+putfield, %llu get+binop+put), "
              "%llu fused executions\n",
              dispatchModeName(R.Dispatch),
              (unsigned long long)R.Fusion.sites(),
              (unsigned long long)R.Fusion.ConstBinOpSites,
              (unsigned long long)R.Fusion.ConstPutFieldSites,
              (unsigned long long)R.Fusion.GetBinPutSites,
              (unsigned long long)R.Run.Fused.total());
  std::printf("run:      %llu instructions, %u threads, %.4fs\n",
              (unsigned long long)R.Run.InstructionsExecuted,
              R.Run.ThreadsCreated, R.ExecSeconds);
  if (R.EpochBackend) {
    // The epoch backend has no cache/ownership/trie machinery; its own
    // counters replace the herd detector sections (docs/DETECTORS.md).
    const EpochStats &E = R.Epoch;
    std::printf("epoch:    %llu events (%llu reads, %llu writes), "
                "%llu same-epoch reads, %llu same-epoch writes\n",
                (unsigned long long)E.Events, (unsigned long long)E.Reads,
                (unsigned long long)E.Writes,
                (unsigned long long)E.SameEpochReads,
                (unsigned long long)E.SameEpochWrites);
    std::printf("epoch:    %llu read inflations, %llu shared collapses, "
                "%llu clock rows (%llu reused)\n",
                (unsigned long long)E.ReadInflations,
                (unsigned long long)E.SharedCollapses,
                (unsigned long long)E.ClockRowsFresh,
                (unsigned long long)E.ClockRowsReused);
    std::printf("epoch:    %llu locations tracked, %llu threads, %llu racy "
                "locations\n",
                (unsigned long long)E.LocationsTracked,
                (unsigned long long)E.ThreadsSeen,
                (unsigned long long)E.RacesReported);
    if (R.TraceRecords != 0 || R.TraceBytes != 0)
      std::printf("trace:    %llu records, %llu bytes\n",
                  (unsigned long long)R.TraceRecords,
                  (unsigned long long)R.TraceBytes);
    return;
  }
  std::printf("events:   %llu seen, %llu cache hits, %llu to detector\n",
              (unsigned long long)R.Stats.EventsSeen,
              (unsigned long long)R.Stats.CacheHits,
              (unsigned long long)R.Stats.Detector.EventsIn);
  if (R.Stats.Hook.FilterEnabled) {
    uint64_t Probes = R.Stats.Hook.FilterHits + R.Stats.Hook.FilterMisses;
    double Rate =
        Probes ? 100.0 * double(R.Stats.Hook.FilterHits) / double(Probes)
               : 0.0;
    std::printf("hook:     %llu/%llu L0 filter hits (%.1f%%), %llu epoch "
                "bumps, %llu key invalidations\n",
                (unsigned long long)R.Stats.Hook.FilterHits,
                (unsigned long long)Probes, Rate,
                (unsigned long long)R.Stats.Hook.EpochBumps,
                (unsigned long long)R.Stats.Hook.KeyInvalidations);
    if (R.Stats.Hook.BatchFlushes)
      std::printf("hook:     %llu events staged across %llu batch flushes "
                  "(%.1f events/flush)\n",
                  (unsigned long long)R.Stats.Hook.BatchedEvents,
                  (unsigned long long)R.Stats.Hook.BatchFlushes,
                  double(R.Stats.Hook.BatchedEvents) /
                      double(R.Stats.Hook.BatchFlushes));
  }
  std::printf("detector: %llu owned-filtered, %llu weaker-filtered, "
              "%zu locations tracked, %zu trie nodes\n",
              (unsigned long long)R.Stats.Detector.OwnedFiltered,
              (unsigned long long)R.Stats.Detector.WeakerFiltered,
              R.Stats.Detector.LocationsTracked,
              R.Stats.Detector.TrieNodes);
  if (R.Stats.Detector.LocksetMemoHits || R.Stats.Detector.LocksetMemoMisses)
    std::printf("interner: %llu memo hits, %llu misses, %llu evictions\n",
                (unsigned long long)R.Stats.Detector.LocksetMemoHits,
                (unsigned long long)R.Stats.Detector.LocksetMemoMisses,
                (unsigned long long)R.Stats.Detector.LocksetMemoEvictions);
  for (const ThreadCacheStats &TC : R.Stats.PerThreadCache) {
    double Rate = TC.lookups()
                      ? 100.0 * double(TC.hits()) / double(TC.lookups())
                      : 0.0;
    std::printf("cache t%-2u %llu/%llu hits (%.1f%%), read %llu/%llu, "
                "write %llu/%llu\n",
                TC.Thread, (unsigned long long)TC.hits(),
                (unsigned long long)TC.lookups(), Rate,
                (unsigned long long)TC.ReadHits,
                (unsigned long long)(TC.ReadHits + TC.ReadMisses),
                (unsigned long long)TC.WriteHits,
                (unsigned long long)(TC.WriteHits + TC.WriteMisses));
  }
  for (size_t I = 0; I != R.ShardBreakdown.size(); ++I) {
    const ShardStats &S = R.ShardBreakdown[I];
    std::printf("shard %zu:  %llu events in %llu batches, max queue depth "
                "%zu, %zu trie nodes, %llu races\n",
                I, (unsigned long long)S.EventsIngested,
                (unsigned long long)S.BatchesIngested,
                S.MaxQueueDepthBatches, S.Detector.TrieNodes,
                (unsigned long long)S.Detector.RacesReported);
  }
  if (R.TraceRecords != 0 || R.TraceBytes != 0)
    std::printf("trace:    %llu records, %llu bytes\n",
                (unsigned long long)R.TraceRecords,
                (unsigned long long)R.TraceBytes);
}

/// Renders a racy location for the baseline replay report (the baselines
/// report per-location, not per-access-pair).
std::string formatLocation(const Program &P, LocationKey Loc) {
  std::string Out = "race on object #";
  Out += std::to_string(Loc.object().index());
  uint32_t FieldBits = uint32_t(Loc.raw() & 0xFFFFFFFF);
  if (FieldBits < P.numFields()) {
    Out += " field ";
    Out += P.Names.text(P.field(FieldId(FieldBits)).Name);
  }
  return Out;
}

/// `herd --replay --detector=<baseline>`: feed the trace to one of the
/// comparison detectors and report its racy locations.
int replayBaseline(const Program &P, const std::string &TracePath,
                   const std::string &Detector) {
  std::set<LocationKey> Racy;
  TraceReader Reader;
  TraceResult TR = Reader.open(TracePath);
  if (TR.Ok) {
    if (Detector == "eraser") {
      EraserDetector D;
      TR = Reader.replayInto(D);
      D.onRunEnd();
      Racy = D.reportedLocations();
    } else if (Detector == "vectorclock") {
      VectorClockDetector D;
      TR = Reader.replayInto(D);
      D.onRunEnd();
      Racy = D.reportedLocations();
    } else { // naive
      NaiveDetector D;
      TR = Reader.replayInto(D);
      D.onRunEnd();
      Racy = D.racyLocations();
    }
  }
  if (!TR.Ok) {
    std::fprintf(stderr, "herd: trace replay failed: %s\n", TR.Error.c_str());
    return 2;
  }
  std::printf("replayed %llu trace records through %s\n",
              (unsigned long long)Reader.recordsRead(), Detector.c_str());
  if (Racy.empty()) {
    std::printf("no dataraces reported\n");
    return 0;
  }
  std::printf("-- dataraces --\n");
  for (LocationKey Loc : Racy)
    std::printf("%s\n", formatLocation(P, Loc).c_str());
  return 1;
}

/// Writes the Chrome trace JSON behind `--trace-json=`.  IO failure is a
/// usage-class error (exit 2), like an unreadable input file.
bool writeTraceJson(const MetricsRegistry &Registry,
                    const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (Out)
    Out << renderChromeTraceJson(Registry);
  if (!Out) {
    std::fprintf(stderr, "herd: cannot write trace JSON to '%s'\n",
                 Path.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  HerdParse Parse = parseHerdCommandLine(Args);
  if (Parse.St == HerdParse::Status::Help) {
    std::fprintf(stderr, "%s", herdUsageText());
    return 0;
  }
  if (Parse.St == HerdParse::Status::Error) {
    if (!Parse.Error.empty())
      std::fprintf(stderr, "%s\n", Parse.Error.c_str());
    if (Parse.ShowUsage || Parse.Error.empty())
      std::fprintf(stderr, "%s", herdUsageText());
    return 2;
  }
  HerdOptions &Opts = Parse.Opts;
  ToolConfig &Config = Opts.Config;

  // Observability: one registry per process when any consumer wants it,
  // otherwise the pipeline sees nullptr and records nothing.
  MetricsRegistry Registry;
  MetricsRegistry *Metrics =
      (!Opts.TraceJsonPath.empty() || Opts.StatsJson) ? &Registry : nullptr;
  InterpProfiler Profiler;
  InterpProfiler *Prof = Opts.Profile ? &Profiler : nullptr;
  Config.Metrics = Metrics;
  Config.Profiler = Prof;

  CompileResult Compiled;
  if (!Opts.WorkloadName.empty()) {
    bool Found = false;
    for (Workload &W : buildAllWorkloads())
      if (W.Name == Opts.WorkloadName) {
        Compiled.Ok = true;
        Compiled.P = std::move(W.P);
        Found = true;
        break;
      }
    if (!Found) {
      std::fprintf(stderr, "herd: unknown workload '%s'\n",
                   Opts.WorkloadName.c_str());
      return 2;
    }
  } else {
    std::ifstream File(Opts.Path);
    if (!File) {
      std::fprintf(stderr, "herd: cannot open '%s'\n", Opts.Path.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << File.rdbuf();
    Compiled = compileMiniJ(Buffer.str(), Metrics);
    if (!Compiled.Ok) {
      for (const Diagnostic &D : Compiled.Diags)
        std::fprintf(stderr, "%s: %s\n", Opts.Path.c_str(), D.str().c_str());
      return 1;
    }
  }

  // Stamp the source artifact for the report renderers: the .mj path for
  // frontend programs, the workload name otherwise (docs/REPORTS.md).
  Compiled.P.SourceName =
      Opts.WorkloadName.empty() ? Opts.Path : Opts.WorkloadName;

  if (Opts.DumpIR) {
    std::printf("%s", printProgram(Compiled.P).c_str());
    return 0;
  }

  if (!Opts.ReplayPath.empty()) {
    // The epoch backend replays through the pipeline (Config.Backend was
    // set by the parser); only the comparison baselines bypass it.
    if (Opts.Detector != "herd" && Opts.Detector != "epoch")
      return replayBaseline(Compiled.P, Opts.ReplayPath, Opts.Detector);
    PipelineResult R =
        replayTracePipeline(Compiled.P, Config, Opts.ReplayPath);
    if (!R.Trace.Ok) {
      std::fprintf(stderr, "herd: trace replay failed: %s\n",
                   R.Trace.Error.c_str());
      return 2;
    }
    if (!Opts.TraceJsonPath.empty() &&
        !writeTraceJson(Registry, Opts.TraceJsonPath))
      return 2;
    bool Clean = R.FormattedRaces.empty() && R.FormattedDeadlocks.empty();
    if (Opts.StatsJson) {
      std::printf("%s", renderStatsJson(R, Metrics, Prof).c_str());
      return Clean ? 0 : 1;
    }
    if (Opts.Report != "human") {
      // Document-only stdout, like --stats=json: scripts parse this.
      std::printf("%s", Opts.Report == "sarif"
                            ? renderReportSarif(Compiled.P, R).c_str()
                            : renderReportJson(Compiled.P, R).c_str());
      return Clean ? 0 : 1;
    }
    if (Opts.Detector == "epoch")
      std::printf("replayed %llu trace records through epoch\n",
                  (unsigned long long)R.TraceRecords);
    else
      std::printf("replayed %llu trace records\n",
                  (unsigned long long)R.TraceRecords);
    if (R.FormattedRaces.empty()) {
      std::printf("no dataraces reported\n");
    } else {
      std::printf("-- dataraces --\n");
      for (const std::string &Line : R.FormattedRaces)
        std::printf("%s\n", Line.c_str());
    }
    if (!R.FormattedDeadlocks.empty()) {
      std::printf("-- potential deadlocks --\n");
      for (const std::string &Line : R.FormattedDeadlocks)
        std::printf("%s\n", Line.c_str());
    }
    if (Opts.Stats)
      printStats(R);
    return Clean ? 0 : 1;
  }

  if (Opts.Sweep > 0) {
    std::set<std::string> AllRaces;
    int SchedulesWithReports = 0;
    for (int I = 0; I != Opts.Sweep; ++I) {
      Config.Seed = Opts.Seed + uint64_t(I);
      PipelineResult R = runPipeline(Compiled.P, Config);
      if (!R.Run.Ok) {
        std::fprintf(stderr, "herd: seed %llu: %s\n",
                     (unsigned long long)Config.Seed, R.Run.Error.c_str());
        return 1;
      }
      if (!R.FormattedRaces.empty())
        ++SchedulesWithReports;
      AllRaces.insert(R.FormattedRaces.begin(), R.FormattedRaces.end());
    }
    std::printf("%d/%d schedules produced reports; distinct reports:\n",
                SchedulesWithReports, Opts.Sweep);
    for (const std::string &Line : AllRaces)
      std::printf("  %s\n", Line.c_str());
    return AllRaces.empty() ? 0 : 1;
  }

  PipelineResult R = runPipeline(Compiled.P, Config);
  if (!R.Trace.Ok) {
    std::fprintf(stderr, "herd: trace recording failed: %s\n",
                 R.Trace.Error.c_str());
    return 2;
  }
  if (!R.Run.Ok) {
    std::fprintf(stderr, "herd: runtime error: %s\n", R.Run.Error.c_str());
    return 1;
  }
  if (!Opts.TraceJsonPath.empty() &&
      !writeTraceJson(Registry, Opts.TraceJsonPath))
    return 2;
  bool Clean = R.FormattedRaces.empty() && R.FormattedDeadlocks.empty();
  if (Opts.StatsJson) {
    // JSON-only stdout: scripts pipe this straight into a parser.
    std::printf("%s", renderStatsJson(R, Metrics, Prof).c_str());
    return Clean ? 0 : 1;
  }
  if (Opts.Report != "human") {
    // Document-only stdout, like --stats=json: scripts parse this.
    std::printf("%s", Opts.Report == "sarif"
                          ? renderReportSarif(Compiled.P, R).c_str()
                          : renderReportJson(Compiled.P, R).c_str());
    return Clean ? 0 : 1;
  }
  if (!Opts.RecordPath.empty())
    std::printf("recorded %llu trace records (%llu bytes) to %s\n",
                (unsigned long long)R.TraceRecords,
                (unsigned long long)R.TraceBytes, Opts.RecordPath.c_str());
  if (!R.Run.Output.empty()) {
    std::printf("-- program output --\n");
    for (int64_t V : R.Run.Output)
      std::printf("%lld\n", (long long)V);
  }
  if (R.FormattedRaces.empty()) {
    std::printf("no dataraces reported\n");
  } else {
    std::printf("-- dataraces --\n");
    for (const std::string &Line : R.FormattedRaces)
      std::printf("%s\n", Line.c_str());
  }
  if (!R.FormattedDeadlocks.empty()) {
    std::printf("-- potential deadlocks --\n");
    for (const std::string &Line : R.FormattedDeadlocks)
      std::printf("%s\n", Line.c_str());
  }
  if (Opts.Stats)
    printStats(R);
  if (Prof)
    std::printf("%s", renderProfileTable(Profiler).c_str());
  return Clean ? 0 : 1;
}
