//===- tools/herd.cpp - The herd command-line driver ----------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `herd` command-line tool: compile a MiniJ source file, run it under
/// the detection pipeline, and print race reports.
///
///   herd prog.mj                    # full pipeline, defaults
///   herd prog.mj --seed=7           # a different schedule
///   herd prog.mj --config=nocache   # a Table 2 ablation
///   herd prog.mj --stats            # pipeline statistics
///   herd prog.mj --dump-ir          # print the MiniJ IR and exit
///   herd prog.mj --sweep=20         # run 20 seeds; summarize reports
///
//===----------------------------------------------------------------------===//

#include "baselines/EraserDetector.h"
#include "baselines/NaiveDetector.h"
#include "baselines/VectorClockDetector.h"
#include "detect/TraceFile.h"
#include "frontend/Frontend.h"
#include "herd/Pipeline.h"
#include "ir/Printer.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

using namespace herd;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: herd <file.mj> [options]\n"
      "  --config=<name>   full | nostatic | nodominators | nopeeling |\n"
      "                    nocache | fieldsmerged | noownership | base\n"
      "  --seed=<n>        schedule seed (default 1)\n"
      "  --shards=<n>      run the sharded detection runtime with n shard\n"
      "                    workers (default: serial runtime)\n"
      "  --cache-size=<n>  entries per per-thread access cache; power of\n"
      "                    two (default 256, the paper's Section 4.3)\n"
      "  --plan=<mode>     detector capacity planning: auto (default;\n"
      "                    pre-size from the static race set) | off (grow\n"
      "                    on demand, for A/B) | <n> (size for n expected\n"
      "                    locations; the only mode --replay can honour)\n"
      "  --sweep=<n>       run n seeds and summarize the reports\n"
      "  --record=<file>   also stream the run's events to a trace file\n"
      "                    (docs/REPLAY.md)\n"
      "  --replay=<file>   re-detect a recorded trace instead of executing\n"
      "                    the program (the program is still needed for\n"
      "                    report formatting)\n"
      "  --detector=<name> detector fed during --replay: herd (default) |\n"
      "                    eraser | vectorclock | naive\n"
      "  --deadlocks       also run the lock-order deadlock detector\n"
      "  --stats           print pipeline statistics\n"
      "  --dump-ir         print the lowered MiniJ IR and exit\n"
      "  --workload=<name> analyse a built-in benchmark replica instead\n"
      "                    of a file: mtrt | tsp | sor2 | elevator | hedc\n");
}

bool pickConfig(const std::string &Name, ToolConfig &Out) {
  if (Name == "full")
    Out = ToolConfig::full();
  else if (Name == "nostatic")
    Out = ToolConfig::noStatic();
  else if (Name == "nodominators")
    Out = ToolConfig::noDominators();
  else if (Name == "nopeeling")
    Out = ToolConfig::noPeeling();
  else if (Name == "nocache")
    Out = ToolConfig::noCache();
  else if (Name == "fieldsmerged")
    Out = ToolConfig::fieldsMerged();
  else if (Name == "noownership")
    Out = ToolConfig::noOwnership();
  else if (Name == "base")
    Out = ToolConfig::base();
  else
    return false;
  return true;
}

void printStats(const PipelineResult &R) {
  std::printf("-- statistics --\n");
  std::printf("static:   %zu access statements, %zu in race set, "
              "%zu may-race pairs\n",
              R.Static.ReachableAccessStatements, R.Static.RaceSetSize,
              R.Static.MayRacePairs);
  std::printf("instr:    %zu traces inserted, %zu removed, %zu loops "
              "peeled\n",
              R.Instr.TracesInserted, R.Instr.TracesRemoved,
              R.Instr.LoopsPeeled);
  std::printf("run:      %llu instructions, %u threads, %.4fs\n",
              (unsigned long long)R.Run.InstructionsExecuted,
              R.Run.ThreadsCreated, R.ExecSeconds);
  std::printf("events:   %llu seen, %llu cache hits, %llu to detector\n",
              (unsigned long long)R.Stats.EventsSeen,
              (unsigned long long)R.Stats.CacheHits,
              (unsigned long long)R.Stats.Detector.EventsIn);
  std::printf("detector: %llu owned-filtered, %llu weaker-filtered, "
              "%zu locations tracked, %zu trie nodes\n",
              (unsigned long long)R.Stats.Detector.OwnedFiltered,
              (unsigned long long)R.Stats.Detector.WeakerFiltered,
              R.Stats.Detector.LocationsTracked,
              R.Stats.Detector.TrieNodes);
  if (R.Stats.Detector.LocksetMemoHits || R.Stats.Detector.LocksetMemoMisses)
    std::printf("interner: %llu memo hits, %llu misses, %llu evictions\n",
                (unsigned long long)R.Stats.Detector.LocksetMemoHits,
                (unsigned long long)R.Stats.Detector.LocksetMemoMisses,
                (unsigned long long)R.Stats.Detector.LocksetMemoEvictions);
  for (const ThreadCacheStats &TC : R.Stats.PerThreadCache) {
    double Rate = TC.lookups()
                      ? 100.0 * double(TC.hits()) / double(TC.lookups())
                      : 0.0;
    std::printf("cache t%-2u %llu/%llu hits (%.1f%%), read %llu/%llu, "
                "write %llu/%llu\n",
                TC.Thread, (unsigned long long)TC.hits(),
                (unsigned long long)TC.lookups(), Rate,
                (unsigned long long)TC.ReadHits,
                (unsigned long long)(TC.ReadHits + TC.ReadMisses),
                (unsigned long long)TC.WriteHits,
                (unsigned long long)(TC.WriteHits + TC.WriteMisses));
  }
  for (size_t I = 0; I != R.ShardBreakdown.size(); ++I) {
    const ShardStats &S = R.ShardBreakdown[I];
    std::printf("shard %zu:  %llu events in %llu batches, max queue depth "
                "%zu, %zu trie nodes, %llu races\n",
                I, (unsigned long long)S.EventsIngested,
                (unsigned long long)S.BatchesIngested,
                S.MaxQueueDepthBatches, S.Detector.TrieNodes,
                (unsigned long long)S.Detector.RacesReported);
  }
  if (R.TraceRecords != 0 || R.TraceBytes != 0)
    std::printf("trace:    %llu records, %llu bytes\n",
                (unsigned long long)R.TraceRecords,
                (unsigned long long)R.TraceBytes);
}

/// Renders a racy location for the baseline replay report (the baselines
/// report per-location, not per-access-pair).
std::string formatLocation(const Program &P, LocationKey Loc) {
  std::string Out = "race on object #";
  Out += std::to_string(Loc.object().index());
  uint32_t FieldBits = uint32_t(Loc.raw() & 0xFFFFFFFF);
  if (FieldBits < P.numFields()) {
    Out += " field ";
    Out += P.Names.text(P.field(FieldId(FieldBits)).Name);
  }
  return Out;
}

/// `herd --replay --detector=<baseline>`: feed the trace to one of the
/// comparison detectors and report its racy locations.
int replayBaseline(const Program &P, const std::string &TracePath,
                   const std::string &Detector) {
  std::set<LocationKey> Racy;
  TraceReader Reader;
  TraceResult TR = Reader.open(TracePath);
  if (TR.Ok) {
    if (Detector == "eraser") {
      EraserDetector D;
      TR = Reader.replayInto(D);
      D.onRunEnd();
      Racy = D.reportedLocations();
    } else if (Detector == "vectorclock") {
      VectorClockDetector D;
      TR = Reader.replayInto(D);
      D.onRunEnd();
      Racy = D.reportedLocations();
    } else { // naive
      NaiveDetector D;
      TR = Reader.replayInto(D);
      D.onRunEnd();
      Racy = D.racyLocations();
    }
  }
  if (!TR.Ok) {
    std::fprintf(stderr, "herd: trace replay failed: %s\n", TR.Error.c_str());
    return 2;
  }
  std::printf("replayed %llu trace records through %s\n",
              (unsigned long long)Reader.recordsRead(), Detector.c_str());
  if (Racy.empty()) {
    std::printf("no dataraces reported\n");
    return 0;
  }
  std::printf("-- dataraces --\n");
  for (LocationKey Loc : Racy)
    std::printf("%s\n", formatLocation(P, Loc).c_str());
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 2;
  }

  std::string Path;
  std::string WorkloadName;
  std::string RecordPath;
  std::string ReplayPath;
  std::string Detector = "herd";
  ToolConfig Config = ToolConfig::full();
  uint64_t Seed = 1;
  uint32_t Shards = 0;
  uint32_t CacheSize = 0; // 0 = keep the config's default
  std::string PlanArg;    // empty = keep the config's default (auto)
  int Sweep = 0;
  bool Stats = false;
  bool DumpIR = false;
  bool Deadlocks = false;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--config=", 0) == 0) {
      if (!pickConfig(Arg.substr(9), Config)) {
        std::fprintf(stderr, "herd: unknown config '%s'\n",
                     Arg.substr(9).c_str());
        return 2;
      }
    } else if (Arg.rfind("--seed=", 0) == 0) {
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    } else if (Arg.rfind("--shards=", 0) == 0) {
      char *End = nullptr;
      Shards = uint32_t(std::strtoul(Arg.c_str() + 9, &End, 10));
      if (End == Arg.c_str() + 9 || *End != '\0') {
        std::fprintf(stderr, "herd: --shards expects a number, got '%s'\n",
                     Arg.c_str() + 9);
        return 2;
      }
    } else if (Arg.rfind("--cache-size=", 0) == 0) {
      char *End = nullptr;
      unsigned long N = std::strtoul(Arg.c_str() + 13, &End, 10);
      if (End == Arg.c_str() + 13 || *End != '\0' || N == 0 ||
          N > (1u << 20) || (N & (N - 1)) != 0) {
        std::fprintf(stderr,
                     "herd: --cache-size expects a power of two in "
                     "[1, 2^20], got '%s'\n",
                     Arg.c_str() + 13);
        return 2;
      }
      CacheSize = uint32_t(N);
    } else if (Arg.rfind("--plan=", 0) == 0) {
      PlanArg = Arg.substr(7);
      if (PlanArg != "auto" && PlanArg != "off") {
        char *End = nullptr;
        unsigned long long N = std::strtoull(PlanArg.c_str(), &End, 10);
        if (PlanArg.empty() || End == PlanArg.c_str() || *End != '\0' ||
            N == 0) {
          std::fprintf(stderr,
                       "herd: --plan expects auto, off, or a positive "
                       "location count, got '%s'\n",
                       PlanArg.c_str());
          return 2;
        }
      }
    } else if (Arg.rfind("--sweep=", 0) == 0) {
      Sweep = std::atoi(Arg.c_str() + 8);
    } else if (Arg.rfind("--workload=", 0) == 0) {
      WorkloadName = Arg.substr(11);
    } else if (Arg.rfind("--record=", 0) == 0) {
      RecordPath = Arg.substr(9);
      if (RecordPath.empty()) {
        std::fprintf(stderr, "herd: --record expects a file path\n");
        return 2;
      }
    } else if (Arg.rfind("--replay=", 0) == 0) {
      ReplayPath = Arg.substr(9);
      if (ReplayPath.empty()) {
        std::fprintf(stderr, "herd: --replay expects a file path\n");
        return 2;
      }
    } else if (Arg.rfind("--detector=", 0) == 0) {
      Detector = Arg.substr(11);
      if (Detector != "herd" && Detector != "eraser" &&
          Detector != "vectorclock" && Detector != "naive") {
        std::fprintf(stderr, "herd: unknown detector '%s'\n",
                     Detector.c_str());
        return 2;
      }
    } else if (Arg == "--deadlocks") {
      Deadlocks = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--dump-ir") {
      DumpIR = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "herd: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty() && WorkloadName.empty()) {
    usage();
    return 2;
  }
  if (!ReplayPath.empty() && (Sweep > 0 || !RecordPath.empty())) {
    std::fprintf(stderr,
                 "herd: --replay cannot be combined with --sweep/--record\n");
    return 2;
  }
  if (!RecordPath.empty() && Sweep > 0) {
    std::fprintf(stderr, "herd: --record cannot be combined with --sweep\n");
    return 2;
  }
  if (Detector != "herd" && ReplayPath.empty()) {
    std::fprintf(stderr, "herd: --detector requires --replay\n");
    return 2;
  }
  Config.Shards = Shards;
  Config.RecordTracePath = RecordPath;
  if (CacheSize != 0) // after --config: presets must not clobber the flag
    Config.CacheEntries = CacheSize;
  if (!PlanArg.empty()) { // after --config, like --cache-size
    if (PlanArg == "auto") {
      Config.Plan = ToolConfig::PlanMode::Auto;
    } else if (PlanArg == "off") {
      Config.Plan = ToolConfig::PlanMode::Off;
    } else {
      Config.Plan = ToolConfig::PlanMode::Explicit;
      Config.PlanLocations = std::strtoull(PlanArg.c_str(), nullptr, 10);
    }
  }

  CompileResult Compiled;
  if (!WorkloadName.empty()) {
    bool Found = false;
    for (Workload &W : buildAllWorkloads())
      if (W.Name == WorkloadName) {
        Compiled.Ok = true;
        Compiled.P = std::move(W.P);
        Found = true;
        break;
      }
    if (!Found) {
      std::fprintf(stderr, "herd: unknown workload '%s'\n",
                   WorkloadName.c_str());
      return 2;
    }
  } else {
    std::ifstream File(Path);
    if (!File) {
      std::fprintf(stderr, "herd: cannot open '%s'\n", Path.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << File.rdbuf();
    Compiled = compileMiniJ(Buffer.str());
    if (!Compiled.Ok) {
      for (const Diagnostic &D : Compiled.Diags)
        std::fprintf(stderr, "%s: %s\n", Path.c_str(), D.str().c_str());
      return 1;
    }
  }

  if (DumpIR) {
    std::printf("%s", printProgram(Compiled.P).c_str());
    return 0;
  }

  if (!ReplayPath.empty()) {
    if (Detector != "herd")
      return replayBaseline(Compiled.P, ReplayPath, Detector);
    Config.Seed = Seed;
    Config.DetectDeadlocks = Deadlocks;
    PipelineResult R = replayTracePipeline(Compiled.P, Config, ReplayPath);
    if (!R.Trace.Ok) {
      std::fprintf(stderr, "herd: trace replay failed: %s\n",
                   R.Trace.Error.c_str());
      return 2;
    }
    std::printf("replayed %llu trace records\n",
                (unsigned long long)R.TraceRecords);
    if (R.FormattedRaces.empty()) {
      std::printf("no dataraces reported\n");
    } else {
      std::printf("-- dataraces --\n");
      for (const std::string &Line : R.FormattedRaces)
        std::printf("%s\n", Line.c_str());
    }
    if (!R.FormattedDeadlocks.empty()) {
      std::printf("-- potential deadlocks --\n");
      for (const std::string &Line : R.FormattedDeadlocks)
        std::printf("%s\n", Line.c_str());
    }
    if (Stats)
      printStats(R);
    bool Clean = R.FormattedRaces.empty() && R.FormattedDeadlocks.empty();
    return Clean ? 0 : 1;
  }

  if (Sweep > 0) {
    std::set<std::string> AllRaces;
    int SchedulesWithReports = 0;
    for (int I = 0; I != Sweep; ++I) {
      Config.Seed = Seed + uint64_t(I);
      PipelineResult R = runPipeline(Compiled.P, Config);
      if (!R.Run.Ok) {
        std::fprintf(stderr, "herd: seed %llu: %s\n",
                     (unsigned long long)Config.Seed, R.Run.Error.c_str());
        return 1;
      }
      if (!R.FormattedRaces.empty())
        ++SchedulesWithReports;
      AllRaces.insert(R.FormattedRaces.begin(), R.FormattedRaces.end());
    }
    std::printf("%d/%d schedules produced reports; distinct reports:\n",
                SchedulesWithReports, Sweep);
    for (const std::string &Line : AllRaces)
      std::printf("  %s\n", Line.c_str());
    return AllRaces.empty() ? 0 : 1;
  }

  Config.Seed = Seed;
  Config.DetectDeadlocks = Deadlocks;
  PipelineResult R = runPipeline(Compiled.P, Config);
  if (!R.Trace.Ok) {
    std::fprintf(stderr, "herd: trace recording failed: %s\n",
                 R.Trace.Error.c_str());
    return 2;
  }
  if (!R.Run.Ok) {
    std::fprintf(stderr, "herd: runtime error: %s\n", R.Run.Error.c_str());
    return 1;
  }
  if (!RecordPath.empty())
    std::printf("recorded %llu trace records (%llu bytes) to %s\n",
                (unsigned long long)R.TraceRecords,
                (unsigned long long)R.TraceBytes, RecordPath.c_str());
  if (!R.Run.Output.empty()) {
    std::printf("-- program output --\n");
    for (int64_t V : R.Run.Output)
      std::printf("%lld\n", (long long)V);
  }
  if (R.FormattedRaces.empty()) {
    std::printf("no dataraces reported\n");
  } else {
    std::printf("-- dataraces --\n");
    for (const std::string &Line : R.FormattedRaces)
      std::printf("%s\n", Line.c_str());
  }
  if (!R.FormattedDeadlocks.empty()) {
    std::printf("-- potential deadlocks --\n");
    for (const std::string &Line : R.FormattedDeadlocks)
      std::printf("%s\n", Line.c_str());
  }
  if (Stats)
    printStats(R);
  bool Clean = R.FormattedRaces.empty() && R.FormattedDeadlocks.empty();
  return Clean ? 0 : 1;
}
