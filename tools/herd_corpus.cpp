//===- tools/herd_corpus.cpp - Regenerate the checked-in trace corpus -----==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records each benchmark replica at corpus scale through the interpreter,
/// RLE-compresses the trace (support/ByteRle.h) and writes it plus a
/// MANIFEST into the corpus directory.  tests/corpus_test.cpp replays the
/// checked-in corpus differentially (serial vs sharded) every CI run, so
/// the corpus only needs regenerating when the trace format or the
/// workload programs change:
///
///   ./build/tools/herd_corpus tests/corpus [scale]
///
/// MANIFEST columns: file workload scale records raw_bytes
/// compressed_bytes racy_locations.  racy_locations is what the serial
/// runtime reports at record time; the test treats it as ground truth.
///
//===----------------------------------------------------------------------===//

#include "detect/RaceRuntime.h"
#include "detect/TraceFile.h"
#include "runtime/Interpreter.h"
#include "support/ByteRle.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace herd;

namespace {

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  Out.resize(Size > 0 ? size_t(Size) : 0);
  size_t Read = Out.empty() ? 0 : std::fread(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  return Read == Out.size();
}

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written =
      Data.empty() ? 0 : std::fwrite(Data.data(), 1, Data.size(), F);
  std::fclose(F);
  return Written == Data.size();
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s CORPUS_DIR [SCALE]\n", argv[0]);
    return 2;
  }
  std::string Dir = argv[1];
  uint32_t Scale = 6;
  if (argc == 3) {
    long N = std::atol(argv[2]);
    if (N < 1 || N > 64) {
      std::fprintf(stderr, "SCALE must be in [1, 64]\n");
      return 2;
    }
    Scale = uint32_t(N);
  }

  std::string Manifest;
  for (Workload &W : buildAllWorkloads(Scale)) {
    std::string RawPath = "/tmp/herd_corpus_" + W.Name + ".trace";
    TraceWriter Writer;
    if (TraceResult TR = Writer.open(RawPath); !TR.Ok) {
      std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), TR.Error.c_str());
      return 1;
    }
    InterpOptions Opts;
    Opts.TraceEveryAccess = true;
    Interpreter Interp(W.P, &Writer, Opts);
    InterpResult R = Interp.run();
    if (TraceResult TR = Writer.close(); !R.Ok || !TR.Ok) {
      std::fprintf(stderr, "%s failed: %s%s\n", W.Name.c_str(),
                   R.Error.c_str(), TR.Error.c_str());
      return 1;
    }

    // Ground-truth racy-location count: replay through the serial runtime.
    RaceRuntime Serial;
    TraceReader Reader;
    if (TraceResult TR = Reader.open(RawPath); !TR.Ok) {
      std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), TR.Error.c_str());
      return 1;
    }
    if (TraceResult TR = Reader.replayInto(Serial); !TR.Ok) {
      std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), TR.Error.c_str());
      return 1;
    }
    Serial.onRunEnd();
    size_t RacyLocations = Serial.reporter().reportedLocations().size();

    std::vector<uint8_t> Raw;
    if (!readFile(RawPath, Raw)) {
      std::fprintf(stderr, "%s: cannot re-read %s\n", W.Name.c_str(),
                   RawPath.c_str());
      return 1;
    }
    std::vector<uint8_t> Packed = rleCompress(Raw);
    std::string File = W.Name + ".trace.rle";
    if (!writeFile(Dir + "/" + File, Packed)) {
      std::fprintf(stderr, "%s: cannot write %s/%s\n", W.Name.c_str(),
                   Dir.c_str(), File.c_str());
      return 1;
    }
    std::remove(RawPath.c_str());

    char Line[256];
    std::snprintf(Line, sizeof(Line), "%s %s %u %llu %zu %zu %zu\n",
                  File.c_str(), W.Name.c_str(), Scale,
                  (unsigned long long)Writer.recordsWritten(), Raw.size(),
                  Packed.size(), RacyLocations);
    Manifest += Line;
    std::printf("%-10s %8llu records  %9zu -> %8zu bytes (%.1f%%)  "
                "%zu racy locations\n",
                W.Name.c_str(), (unsigned long long)Writer.recordsWritten(),
                Raw.size(), Packed.size(),
                Raw.empty() ? 0.0 : 100.0 * double(Packed.size()) /
                                        double(Raw.size()),
                RacyLocations);
  }

  std::FILE *F = std::fopen((Dir + "/MANIFEST").c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s/MANIFEST\n", Dir.c_str());
    return 1;
  }
  std::fputs(Manifest.c_str(), F);
  std::fclose(F);
  std::printf("wrote %s/MANIFEST\n", Dir.c_str());
  return 0;
}
