//===- baselines/EpochDetector.h - Epoch happens-before detector -*- C++ -*-=//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An epoch-optimized happens-before race detector in the FastTrack
/// lineage (PAPERS.md, arXiv 1905.00494): the drop-in replacement for
/// VectorClockDetector that turns the O(T) vector-clock comparison on
/// every access into an O(1) epoch comparison in the overwhelmingly
/// common case.
///
/// A location's last write is a single *epoch* — `(thread-slot, clock)`
/// packed into one 64-bit word — because writes to a race-free location
/// are totally ordered.  Reads keep a single epoch too until two reads
/// are genuinely concurrent, at which point the read state *inflates*
/// into a pooled vector clock (support/ClockStore.h) and collapses back
/// to an epoch at the next ordered write.  Same-epoch repeats (thread
/// re-accesses a location with no intervening sync) return after one
/// 64-bit compare.
///
/// Race reporting is location-set equivalent to VectorClockDetector on
/// every event stream the hooks can deliver: both insert a location into
/// a reported set at its first race, and the FastTrack argument (writes
/// totally ordered until the first racing write, which is itself
/// reported) carries over — pinned by the differential suites in
/// tests/baselines_test.cpp, tests/corpus_test.cpp, and
/// tests/fuzz_test.cpp, and by the docs/DETECTORS.md discussion.
///
/// Epoch encoding: bits [0,20) hold a dense thread slot assigned in
/// first-appearance order (so arbitrary ThreadIds cost nothing), bits
/// [20,63) hold the clock, and bit 63 distinguishes an inflated read
/// state (low 32 bits then hold a ClockStore row handle).  The zero
/// epoch — slot 0 at clock 0 — is a natural bottom: it is ordered
/// before everything, exactly like the all-zero vector clock the
/// baseline starts from, so no sentinel is needed.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_BASELINES_EPOCHDETECTOR_H
#define HERD_BASELINES_EPOCHDETECTOR_H

#include "detect/DetectorPlan.h"
#include "runtime/Hooks.h"
#include "support/ClockStore.h"
#include "support/FlatTable.h"
#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <set>
#include <vector>

namespace herd {

/// Counters behind the `epoch` stats section (`--stats[=json]`).
struct EpochStats {
  uint64_t Events = 0;          ///< accesses seen
  uint64_t Reads = 0;           ///< read accesses
  uint64_t Writes = 0;          ///< write accesses
  uint64_t SameEpochReads = 0;  ///< reads retired by the one-compare path
  uint64_t SameEpochWrites = 0; ///< writes retired by the one-compare path
  uint64_t ReadInflations = 0;  ///< read epoch -> shared vector clock
  uint64_t SharedCollapses = 0; ///< shared read state released by a write
  uint64_t RacesReported = 0;   ///< distinct racy locations
  uint64_t LocationsTracked = 0;
  uint64_t ThreadsSeen = 0;
  uint64_t ClockRowsFresh = 0;  ///< ClockStore rows allocated from new storage
  uint64_t ClockRowsReused = 0; ///< ClockStore rows recycled via the free list
};

/// The epoch-based happens-before detector (`--detector=epoch`).
class EpochDetector : public RuntimeHooks {
public:
  /// Bits of the packed epoch word holding the dense thread slot.
  static constexpr uint32_t SlotBits = 20;
  /// Flag bit marking an inflated (vector-clock) read state.
  static constexpr uint64_t SharedBit = uint64_t(1) << 63;
  /// Largest representable clock (43 bits — comfortably past 2^32).
  static constexpr uint64_t MaxClock = (uint64_t(1) << (63 - SlotBits)) - 1;

  /// Packs a (slot, clock) pair into one epoch word.
  static uint64_t packEpoch(uint32_t Slot, uint64_t Clock) {
    assert(Slot < (uint32_t(1) << SlotBits) && "thread slot overflow");
    assert(Clock <= MaxClock && "clock overflow");
    return (Clock << SlotBits) | Slot;
  }
  static uint32_t epochSlot(uint64_t Epoch) {
    return uint32_t(Epoch) & ((uint32_t(1) << SlotBits) - 1);
  }
  static uint64_t epochClock(uint64_t Epoch) { return Epoch >> SlotBits; }

  EpochDetector() = default;
  explicit EpochDetector(const DetectorPlan &Plan) { reserve(Plan); }

  /// Pre-sizes every structure from the plan's capacity hints so the
  /// steady state never touches the global allocator (hints, not limits).
  void reserve(const DetectorPlan &Plan);

  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId ThreadObj,
                      SiteId Site = SiteId::invalid()) override;
  void onThreadExit(ThreadId Dying) override;
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;

  const std::set<LocationKey> &reportedLocations() const { return Reported; }

  /// The first racing access observed per reported location, in report
  /// order — the epoch backend's contribution to the report document
  /// (docs/REPORTS.md).  Happens-before detection only knows the *second*
  /// access of a racing pair when it trips, so one access per location is
  /// what this backend can attribute precisely.
  struct RacyAccess {
    LocationKey Location;
    ThreadId Thread;
    AccessKind Access = AccessKind::Read;
    SiteId Site;
  };
  const std::vector<RacyAccess> &racyAccesses() const { return Racy; }

  EpochStats stats() const;

private:
  /// Per-location shadow state: the last-write epoch plus the adaptive
  /// read state (epoch, or SharedBit | ClockStore handle once inflated).
  struct VarState {
    uint64_t WriteEpoch = 0;
    uint64_t Read = 0;
  };

  /// Per-thread state, indexed by dense slot.
  struct PerThread {
    uint32_t Slot = 0;
    uint32_t VC = ClockStore::None;     ///< this thread's clock row
    uint32_t ExitVC = ClockStore::None; ///< snapshot taken at onThreadExit
    uint64_t Epoch = 0;                 ///< cached packEpoch(Slot, VC[Slot])
  };

  /// Insert-only open-addressed map from LockId index to the lock's
  /// ClockStore row (dummy join-lock ids live near 2^30, far outside any
  /// dense array).
  class LockClockMap {
  public:
    static constexpr uint32_t EmptyKey = 0xFFFFFFFF;

    /// Returns the row mapped to \p Key, or ClockStore::None.
    uint32_t find(uint32_t Key) const {
      if (Slots.empty())
        return ClockStore::None;
      for (size_t I = probeOf(Key);; I = (I + 1) & (Slots.size() - 1)) {
        if (Slots[I].Key == Key)
          return Slots[I].Row;
        if (Slots[I].Key == EmptyKey)
          return ClockStore::None;
      }
    }

    /// Maps \p Key to \p Row (must not already be present).
    void insert(uint32_t Key, uint32_t Row) {
      if (Count + 1 > (Slots.size() / 4) * 3)
        grow();
      size_t I = probeOf(Key);
      while (Slots[I].Key != EmptyKey) {
        assert(Slots[I].Key != Key && "duplicate lock key");
        I = (I + 1) & (Slots.size() - 1);
      }
      Slots[I] = {Key, Row};
      ++Count;
    }

    void reserve(size_t Expected) {
      size_t Target = 64;
      while (Expected > (Target / 4) * 3)
        Target *= 2;
      if (Target > Slots.size())
        rehash(Target);
    }

  private:
    struct Slot {
      uint32_t Key = EmptyKey;
      uint32_t Row = ClockStore::None;
    };

    size_t probeOf(uint32_t Key) const {
      uint64_t X = Key; // SplitMix64 finalizer, as in FlatTable.h
      X ^= X >> 30;
      X *= 0xbf58476d1ce4e5b9ull;
      X ^= X >> 27;
      X *= 0x94d049bb133111ebull;
      X ^= X >> 31;
      return size_t(X) & (Slots.size() - 1);
    }

    void grow() { rehash(Slots.empty() ? 64 : Slots.size() * 2); }

    void rehash(size_t NewCapacity) {
      std::vector<Slot> Old = std::move(Slots);
      Slots.assign(NewCapacity, Slot());
      for (const Slot &S : Old) {
        if (S.Key == EmptyKey)
          continue;
        size_t I = probeOf(S.Key);
        while (Slots[I].Key != EmptyKey)
          I = (I + 1) & (Slots.size() - 1);
        Slots[I] = S;
      }
    }

    std::vector<Slot> Slots;
    size_t Count = 0;
  };

  PerThread &threadState(ThreadId Thread);

  /// True when epoch \p E happened before (or equals) thread \p T's
  /// current time: Now_T[slot(E)] >= clock(E).
  bool epochOrderedBefore(uint64_t E, const PerThread &T) const {
    return Store.get(T.VC, epochSlot(E)) >= epochClock(E);
  }

  void report(LocationKey Location, ThreadId Thread, AccessKind Access,
              SiteId Site) {
    if (Reported.insert(Location).second) {
      ++Races;
      Racy.push_back(RacyAccess{Location, Thread, Access, Site});
    }
  }

  ClockStore Store;
  LocationTable<VarState> Table;
  LockClockMap LockClocks;
  std::vector<uint32_t> SlotByThread; ///< ThreadId index -> dense slot
  std::vector<PerThread> Threads;     ///< indexed by dense slot
  std::set<LocationKey> Reported;
  std::vector<RacyAccess> Racy;
  uint64_t Races = 0;
  EpochStats Counters; ///< event counters (structure sizes filled by stats())
};

} // namespace herd

#endif // HERD_BASELINES_EPOCHDETECTOR_H
