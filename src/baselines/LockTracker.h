//===- baselines/LockTracker.h - Per-thread lockset bookkeeping -*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helper for the baseline detectors: tracks each thread's held
/// lockset from monitor hook events.  Unlike detect/RaceRuntime it does not
/// model join with dummy locks — Eraser and object race detection have no
/// comparable mechanism (Section 8.3), which is exactly the difference the
/// accuracy experiments show.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_BASELINES_LOCKTRACKER_H
#define HERD_BASELINES_LOCKTRACKER_H

#include "detect/AccessEvent.h"

#include <vector>

namespace herd {

/// Tracks the lockset of each thread from monitor enter/exit callbacks.
class LockTracker {
public:
  void enter(ThreadId Thread, LockId Lock, bool Recursive) {
    if (Recursive)
      return;
    locksOf(Thread).insert(Lock);
  }

  void exit(ThreadId Thread, LockId Lock, bool StillHeld) {
    if (StillHeld)
      return;
    locksOf(Thread).erase(Lock);
  }

  const LockSet &held(ThreadId Thread) const {
    static const LockSet Empty;
    size_t Index = Thread.index();
    return Index < Sets.size() ? Sets[Index] : Empty;
  }

private:
  LockSet &locksOf(ThreadId Thread) {
    size_t Index = Thread.index();
    if (Index >= Sets.size())
      Sets.resize(Index + 1);
    return Sets[Index];
  }

  std::vector<LockSet> Sets;
};

} // namespace herd

#endif // HERD_BASELINES_LOCKTRACKER_H
