//===- baselines/VectorClockDetector.cpp - Happens-before baseline --------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "baselines/VectorClockDetector.h"

using namespace herd;

VectorClock &VectorClockDetector::clockOf(ThreadId Thread) {
  size_t Index = Thread.index();
  if (Index >= ThreadClocks.size()) {
    ThreadClocks.resize(Index + 1);
    ExitClocks.resize(Index + 1);
  }
  return ThreadClocks[Index];
}

void VectorClockDetector::onThreadCreate(ThreadId Child, ThreadId Parent,
                                         ObjectId ThreadObj, SiteId Site) {
  (void)ThreadObj;
  (void)Site;
  VectorClock &ChildClock = clockOf(Child);
  if (Parent.isValid()) {
    // Everything the parent did before start() happens-before the child.
    ChildClock.joinWith(clockOf(Parent));
    clockOf(Parent).tick(Parent);
  }
  // A thread's own component starts positive so its events are visibly
  // unordered with other fresh threads.
  ChildClock.tick(Child);
}

void VectorClockDetector::onThreadExit(ThreadId Dying) {
  ExitClocks[Dying.index()] = clockOf(Dying);
}

void VectorClockDetector::onThreadJoin(ThreadId Joiner, ThreadId Joined) {
  // Everything the joined thread did happens-before the joiner's
  // continuation.
  clockOf(Joiner).joinWith(ExitClocks[Joined.index()]);
}

void VectorClockDetector::onMonitorEnter(ThreadId Thread, LockId Lock,
                                         bool Recursive, SiteId Site) {
  (void)Site;
  if (Recursive)
    return;
  auto It = LockClocks.find(Lock);
  if (It != LockClocks.end())
    clockOf(Thread).joinWith(It->second);
}

void VectorClockDetector::onMonitorExit(ThreadId Thread, LockId Lock,
                                        bool StillHeld) {
  if (StillHeld)
    return;
  LockClocks[Lock] = clockOf(Thread);
  clockOf(Thread).tick(Thread);
}

void VectorClockDetector::onAccess(ThreadId Thread, LocationKey Location,
                                   AccessKind Access, SiteId Site) {
  (void)Site;
  const VectorClock &Now = clockOf(Thread);
  PerLocation &L = Table[Location];
  bool Raced = !L.Writes.isOrderedBefore(Now);
  if (Access == AccessKind::Write) {
    Raced = Raced || !L.Reads.isOrderedBefore(Now);
    L.Writes.set(Thread, Now.get(Thread));
  } else {
    L.Reads.set(Thread, Now.get(Thread));
  }
  if (Raced)
    Reported.insert(Location);
}
