//===- baselines/NaiveDetector.cpp - Exact O(N^2) race oracle -------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "baselines/NaiveDetector.h"

#include "detect/RaceRuntime.h"

using namespace herd;

void NaiveDetector::onThreadCreate(ThreadId Child, ThreadId Parent,
                                   ObjectId ThreadObj, SiteId Site) {
  (void)Parent;
  (void)ThreadObj;
  (void)Site;
  if (!Opts.ModelJoin)
    return;
  size_t Index = Child.index();
  if (Index >= ExtraLocks.size())
    ExtraLocks.resize(Index + 1);
  ExtraLocks[Index].insert(RaceRuntime::dummyLockOf(Child));
}

void NaiveDetector::onThreadExit(ThreadId Dying) {
  if (!Opts.ModelJoin || Dying.index() >= ExtraLocks.size())
    return;
  ExtraLocks[Dying.index()].erase(RaceRuntime::dummyLockOf(Dying));
}

void NaiveDetector::onThreadJoin(ThreadId Joiner, ThreadId Joined) {
  if (!Opts.ModelJoin)
    return;
  size_t Index = Joiner.index();
  if (Index >= ExtraLocks.size())
    ExtraLocks.resize(Index + 1);
  ExtraLocks[Index].insert(RaceRuntime::dummyLockOf(Joined));
}

void NaiveDetector::onMonitorEnter(ThreadId Thread, LockId Lock,
                                   bool Recursive, SiteId Site) {
  (void)Site;
  Locks.enter(Thread, Lock, Recursive);
}

void NaiveDetector::onMonitorExit(ThreadId Thread, LockId Lock,
                                  bool StillHeld) {
  Locks.exit(Thread, Lock, StillHeld);
}

void NaiveDetector::onAccess(ThreadId Thread, LocationKey Location,
                             AccessKind Access, SiteId Site) {
  AccessEvent Event;
  Event.Location = Location;
  Event.Thread = Thread;
  Event.Locks = Locks.held(Thread);
  if (Thread.index() < ExtraLocks.size())
    Event.Locks.unionWith(ExtraLocks[Thread.index()]);
  Event.Access = Access;
  Event.Site = Site;
  addEvent(Event);
}

void NaiveDetector::addEvent(const AccessEvent &Event) {
  PerLocation &State = Table[Event.Location];
  if (Opts.UseOwnership && !State.Shared) {
    if (State.Events.empty() && !State.Owner.isValid()) {
      State.Owner = Event.Thread;
      return;
    }
    if (State.Owner == Event.Thread)
      return;
    State.Shared = true;
  }
  State.Events.push_back(Event);
}

std::set<LocationKey> NaiveDetector::racyLocations() const {
  std::set<LocationKey> Result;
  for (const auto &[Location, State] : Table) {
    const std::vector<AccessEvent> &Events = State.Events;
    bool Racy = false;
    for (size_t I = 0; I != Events.size() && !Racy; ++I)
      for (size_t J = I + 1; J != Events.size() && !Racy; ++J)
        Racy = isRace(Events[I], Events[J]);
    if (Racy)
      Result.insert(Location);
  }
  return Result;
}

size_t NaiveDetector::memRaceSize(LocationKey Location) const {
  auto It = Table.find(Location);
  if (It == Table.end())
    return 0;
  const std::vector<AccessEvent> &Events = It->second.Events;
  size_t Count = 0;
  for (size_t I = 0; I != Events.size(); ++I)
    for (size_t J = I + 1; J != Events.size(); ++J)
      Count += isRace(Events[I], Events[J]);
  return Count;
}

size_t NaiveDetector::numEventsStored() const {
  size_t Count = 0;
  for (const auto &[Location, State] : Table)
    Count += State.Events.size();
  return Count;
}
