//===- baselines/NaiveDetector.h - Exact O(N^2) race oracle -----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exact reference detector: stores every access event and computes the
/// full set FullRace = { (e_i, e_j) | IsRace(e_i, e_j) } of Section 2.5 by
/// brute force.  Worst-case O(N²) time and O(N) space — the cost the
/// paper's algorithm exists to avoid — so it is used only as the oracle in
/// property tests and in microbenchmarks, never in the main pipeline.
///
/// Definition 1's guarantee is checked against this oracle: the trie
/// detector must report at least one access for *every* location with a
/// non-empty MemRace(m), and (precision) report nothing for other
/// locations.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_BASELINES_NAIVEDETECTOR_H
#define HERD_BASELINES_NAIVEDETECTOR_H

#include "baselines/LockTracker.h"
#include "detect/AccessEvent.h"
#include "runtime/Hooks.h"

#include <map>
#include <set>
#include <vector>

namespace herd {

/// Collects the full event stream and answers exact race queries.
class NaiveDetector : public RuntimeHooks {
public:
  struct Options {
    /// Apply the same ownership filtering as the real detector: drop
    /// accesses until a second thread touches the location, then keep the
    /// sharing access and everything after.
    bool UseOwnership = true;

    /// Model join ordering with the same dummy locks as RaceRuntime.
    bool ModelJoin = true;
  };

  NaiveDetector() : NaiveDetector(Options()) {}
  explicit NaiveDetector(Options Opts) : Opts(Opts) {}

  // RuntimeHooks:
  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId ThreadObj,
                      SiteId Site = SiteId::invalid()) override;
  void onThreadExit(ThreadId Dying) override;
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;

  /// Feeds one pre-built event (for tests that drive the oracle without an
  /// interpreter).  Ownership filtering still applies.
  void addEvent(const AccessEvent &Event);

  /// The exact set of locations with a non-empty MemRace(m).
  std::set<LocationKey> racyLocations() const;

  /// The number of racing pairs on \p Location (|MemRace(m)|).
  size_t memRaceSize(LocationKey Location) const;

  size_t numEventsStored() const;

private:
  Options Opts;
  LockTracker Locks;
  std::vector<LockSet> ExtraLocks; ///< dummy join locks per thread

  struct PerLocation {
    ThreadId Owner;
    bool Shared = false;
    std::vector<AccessEvent> Events;
  };
  std::map<LocationKey, PerLocation> Table;
};

} // namespace herd

#endif // HERD_BASELINES_NAIVEDETECTOR_H
