//===- baselines/VectorClockDetector.h - Happens-before baseline -*- C++ -*-=//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pure happens-before race detector using vector clocks (in the style
/// of DJIT/TRaDe — the class of detectors Section 2.2 and the related-work
/// discussion contrast against).
///
/// Lock releases publish the releasing thread's clock into the lock;
/// acquires join it into the acquiring thread, so two critical sections on
/// the same lock are *ordered* if one observes the other's release.  That
/// ordering is exactly why a happens-before detector misses the *feasible*
/// race of Figure 2 when T13:p and T20:q collide: had the threads acquired
/// the lock in the other order the accesses would race, but the witnessed
/// schedule hides it.  The paper's lockset approach reports it in every
/// schedule (Section 2.2); the tests demonstrate the difference.
///
/// Thread start copies the parent's clock into the child; join joins the
/// child's clock into the joiner — the precise modelling of condition 4.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_BASELINES_VECTORCLOCKDETECTOR_H
#define HERD_BASELINES_VECTORCLOCKDETECTOR_H

#include "runtime/Hooks.h"
#include "support/Ids.h"

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace herd {

/// A vector clock: per-thread logical timestamps.
class VectorClock {
public:
  uint64_t get(ThreadId Thread) const {
    size_t Index = Thread.index();
    return Index < Clocks.size() ? Clocks[Index] : 0;
  }

  void set(ThreadId Thread, uint64_t Value) {
    size_t Index = Thread.index();
    if (Index >= Clocks.size())
      Clocks.resize(Index + 1, 0);
    Clocks[Index] = Value;
  }

  void tick(ThreadId Thread) { set(Thread, get(Thread) + 1); }

  /// Pointwise maximum.
  void joinWith(const VectorClock &Other) {
    if (Other.Clocks.size() > Clocks.size())
      Clocks.resize(Other.Clocks.size(), 0);
    for (size_t I = 0; I != Other.Clocks.size(); ++I)
      Clocks[I] = std::max(Clocks[I], Other.Clocks[I]);
  }

  /// True when this clock is pointwise <= Other ("happened before or
  /// equal").
  bool isOrderedBefore(const VectorClock &Other) const {
    for (size_t I = 0; I != Clocks.size(); ++I)
      if (Clocks[I] > Other.get(ThreadId(uint32_t(I))))
        return false;
    return true;
  }

private:
  std::vector<uint64_t> Clocks;
};

/// The happens-before detector.
class VectorClockDetector : public RuntimeHooks {
public:
  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId ThreadObj,
                      SiteId Site = SiteId::invalid()) override;
  void onThreadExit(ThreadId Dying) override;
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;

  const std::set<LocationKey> &reportedLocations() const { return Reported; }

private:
  VectorClock &clockOf(ThreadId Thread);

  struct PerLocation {
    VectorClock Writes; ///< join of all write timestamps
    VectorClock Reads;  ///< join of all read timestamps
  };

  std::vector<VectorClock> ThreadClocks;
  std::vector<VectorClock> ExitClocks; ///< snapshot at thread exit
  std::map<LockId, VectorClock> LockClocks;
  std::map<LocationKey, PerLocation> Table;
  std::set<LocationKey> Reported;
};

} // namespace herd

#endif // HERD_BASELINES_VECTORCLOCKDETECTOR_H
