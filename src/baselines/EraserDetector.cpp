//===- baselines/EraserDetector.cpp - Eraser lockset baseline -------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "baselines/EraserDetector.h"

using namespace herd;

EraserDetector::State EraserDetector::stateOf(LocationKey Location) const {
  if (ObjectGranularity)
    Location = Location.withFieldsMerged();
  auto It = Table.find(Location);
  return It == Table.end() ? State::Virgin : It->second.St;
}

void EraserDetector::onAccess(ThreadId Thread, LocationKey Location,
                              AccessKind Access, SiteId Site) {
  (void)Site;
  if (ObjectGranularity)
    Location = Location.withFieldsMerged();
  PerLocation &L = Table[Location];

  switch (L.St) {
  case State::Virgin:
    L.St = State::Exclusive;
    L.FirstThread = Thread;
    return;
  case State::Exclusive:
    if (Thread == L.FirstThread)
      return; // still in the initialization phase: no refinement
    L.St = Access == AccessKind::Write ? State::SharedModified
                                       : State::Shared;
    break;
  case State::Shared:
    if (Access == AccessKind::Write)
      L.St = State::SharedModified;
    break;
  case State::SharedModified:
    break;
  }

  // Refine the candidate set with the current lockset.
  const LockSet &Held = Locks.held(Thread);
  if (!L.CandidatesInitialized) {
    L.Candidates = Held;
    L.CandidatesInitialized = true;
  } else {
    L.Candidates.intersectWith(Held);
  }

  // Report in Shared-Modified with an empty candidate set (Eraser only
  // warns once per location).
  if (L.St == State::SharedModified && L.Candidates.empty())
    Reported.insert(Location);
}
