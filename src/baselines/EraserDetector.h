//===- baselines/EraserDetector.h - Eraser lockset baseline -----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch implementation of Eraser's lockset algorithm (Savage et
/// al., TOCS 1997) as the comparison baseline of Sections 8.3 and 9.
///
/// Eraser enforces a *single common lock* discipline: per location it
/// refines a candidate set C(v) to the intersection of the locksets of all
/// (post-initialization) accesses, and reports when C(v) becomes empty in
/// the Shared-Modified state.  The two differences from the paper's
/// detector that the experiments expose:
///   - mutually-intersecting locksets with no single common lock (the mtrt
///     join statistics idiom) are reported by Eraser, not by the trie;
///   - Eraser has no join modelling at all.
/// Hence Eraser's reports are a superset of the paper's (Section 9).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_BASELINES_ERASERDETECTOR_H
#define HERD_BASELINES_ERASERDETECTOR_H

#include "baselines/LockTracker.h"
#include "runtime/Hooks.h"

#include <map>
#include <set>

namespace herd {

/// Eraser per-location state machine.
class EraserDetector : public RuntimeHooks {
public:
  /// Per-location lifecycle: Virgin -> Exclusive (one thread) -> Shared
  /// (read-shared) / SharedModified.
  enum class State : uint8_t { Virgin, Exclusive, Shared, SharedModified };

  /// When true, collapse all fields of one object into a single monitored
  /// location — the object-granularity variant used by object race
  /// detection [21].
  explicit EraserDetector(bool ObjectGranularity = false)
      : ObjectGranularity(ObjectGranularity) {}

  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override {
    (void)Site;
    Locks.enter(Thread, Lock, Recursive);
  }
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override {
    Locks.exit(Thread, Lock, StillHeld);
  }
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;

  const std::set<LocationKey> &reportedLocations() const { return Reported; }

  size_t countDistinctObjects() const {
    std::set<ObjectId> Objects;
    for (LocationKey Loc : Reported)
      Objects.insert(Loc.object());
    return Objects.size();
  }

  State stateOf(LocationKey Location) const;

private:
  struct PerLocation {
    State St = State::Virgin;
    ThreadId FirstThread;
    LockSet Candidates;
    bool CandidatesInitialized = false;
  };

  bool ObjectGranularity;
  LockTracker Locks;
  std::map<LocationKey, PerLocation> Table;
  std::set<LocationKey> Reported;
};

} // namespace herd

#endif // HERD_BASELINES_ERASERDETECTOR_H
