//===- baselines/EpochDetector.cpp - Epoch happens-before detector --------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchronization modelling mirrors VectorClockDetector exactly — create
/// joins the parent's clock into the child then ticks both, exit snapshots
/// the dying thread's clock, join merges the snapshot, release publishes
/// into the lock's clock then ticks, acquire joins the lock's clock — so
/// the two backends induce the same happens-before relation and differ
/// only in how per-location access history is represented and compared.
///
/// The same-epoch fast paths rely on this codebase's tick discipline:
/// every channel that publishes a thread's current clock component
/// (monitor exit, thread create) ticks the thread immediately afterwards,
/// and thread exit is terminal.  Hence no other thread can observe clock
/// component c while the owner is still at epoch (t, c), so an access
/// that repeats at an unchanged epoch cannot have raced with anything the
/// previous same-epoch access did not already check — any intervening
/// conflicting access was flagged at its own check (docs/DETECTORS.md
/// spells out the argument).
///
//===----------------------------------------------------------------------===//

#include "baselines/EpochDetector.h"

#include <algorithm>

using namespace herd;

void EpochDetector::reserve(const DetectorPlan &PlanIn) {
  DetectorPlan Plan = PlanIn.clamped();
  if (Plan.ExpectedLocations)
    Table.reserve(Plan.ExpectedLocations);
  uint64_t ThreadsHint = std::max<uint64_t>(Plan.ExpectedThreads, 16);
  // Rows: a clock and an exit snapshot per thread, a clock per lock (the
  // lockset hint is the best in-plan proxy for distinct locks), and an
  // inflated read clock per shared location.
  size_t Rows = size_t(ThreadsHint) * 2 + size_t(Plan.ExpectedLocksets) +
                size_t(Plan.ExpectedSharedLocations);
  Store.reserve(Rows, uint32_t(std::min<uint64_t>(
                          ThreadsHint, uint64_t(1) << SlotBits)));
  if (Plan.ExpectedThreads) {
    SlotByThread.reserve(Plan.ExpectedThreads);
    Threads.reserve(Plan.ExpectedThreads);
  }
  if (Plan.ExpectedLocksets)
    LockClocks.reserve(Plan.ExpectedLocksets);
}

EpochDetector::PerThread &EpochDetector::threadState(ThreadId Thread) {
  size_t Index = Thread.index();
  if (Index >= SlotByThread.size())
    SlotByThread.resize(Index + 1, ClockStore::None);
  uint32_t Slot = SlotByThread[Index];
  if (Slot == ClockStore::None) {
    Slot = uint32_t(Threads.size());
    assert(Slot < (uint32_t(1) << SlotBits) && "thread-slot space exhausted");
    SlotByThread[Index] = Slot;
    Store.ensureSlots(Slot + 1);
    PerThread T;
    T.Slot = Slot;
    T.VC = Store.alloc();
    T.Epoch = packEpoch(Slot, 0);
    Threads.push_back(T);
  }
  return Threads[Slot];
}

void EpochDetector::onThreadCreate(ThreadId Child, ThreadId Parent,
                                   ObjectId ThreadObj, SiteId Site) {
  (void)ThreadObj;
  (void)Site;
  // Materialize both states before taking references: threadState may
  // grow the Threads vector.
  uint32_t ChildSlot = threadState(Child).Slot;
  if (Parent.isValid()) {
    uint32_t ParentSlot = threadState(Parent).Slot;
    PerThread &P = Threads[ParentSlot];
    // Everything the parent did before start() happens-before the child.
    Store.joinInto(Threads[ChildSlot].VC, P.VC);
    uint64_t PClock = Store.get(P.VC, P.Slot) + 1;
    Store.set(P.VC, P.Slot, PClock);
    P.Epoch = packEpoch(P.Slot, PClock);
  }
  // The child's own component starts positive so its events are visibly
  // unordered with other fresh threads.
  PerThread &C = Threads[ChildSlot];
  uint64_t CClock = Store.get(C.VC, C.Slot) + 1;
  Store.set(C.VC, C.Slot, CClock);
  C.Epoch = packEpoch(C.Slot, CClock);
}

void EpochDetector::onThreadExit(ThreadId Dying) {
  PerThread &T = threadState(Dying);
  if (T.ExitVC == ClockStore::None)
    T.ExitVC = Store.alloc();
  Store.assign(T.ExitVC, T.VC);
}

void EpochDetector::onThreadJoin(ThreadId Joiner, ThreadId Joined) {
  uint32_t JoinerSlot = threadState(Joiner).Slot;
  // A join on a thread never seen or never exited merges nothing — the
  // vector-clock baseline's snapshot would be the empty (all-zero) clock.
  size_t JoinedIndex = Joined.index();
  uint32_t JoinedSlot = JoinedIndex < SlotByThread.size()
                            ? SlotByThread[JoinedIndex]
                            : ClockStore::None;
  if (JoinedSlot == ClockStore::None)
    return;
  const PerThread &D = Threads[JoinedSlot];
  if (D.ExitVC == ClockStore::None)
    return;
  PerThread &J = Threads[JoinerSlot];
  // Everything the joined thread did happens-before the joiner's
  // continuation.
  Store.joinInto(J.VC, D.ExitVC);
  J.Epoch = packEpoch(J.Slot, Store.get(J.VC, J.Slot));
}

void EpochDetector::onMonitorEnter(ThreadId Thread, LockId Lock,
                                   bool Recursive, SiteId Site) {
  (void)Site;
  if (Recursive)
    return;
  PerThread &T = threadState(Thread);
  uint32_t LockRow = LockClocks.find(Lock.index());
  if (LockRow == ClockStore::None)
    return;
  Store.joinInto(T.VC, LockRow);
  T.Epoch = packEpoch(T.Slot, Store.get(T.VC, T.Slot));
}

void EpochDetector::onMonitorExit(ThreadId Thread, LockId Lock,
                                  bool StillHeld) {
  if (StillHeld)
    return;
  PerThread &T = threadState(Thread);
  uint32_t LockRow = LockClocks.find(Lock.index());
  if (LockRow == ClockStore::None) {
    LockRow = Store.alloc();
    LockClocks.insert(Lock.index(), LockRow);
  }
  Store.assign(LockRow, T.VC);
  uint64_t Clock = Store.get(T.VC, T.Slot) + 1;
  Store.set(T.VC, T.Slot, Clock);
  T.Epoch = packEpoch(T.Slot, Clock);
}

void EpochDetector::onAccess(ThreadId Thread, LocationKey Location,
                             AccessKind Access, SiteId Site) {
  PerThread &T = threadState(Thread);
  ++Counters.Events;
  VarState *V = Table.tryEmplace(Location).first;
  const uint64_t E = T.Epoch;

  if (Access == AccessKind::Read) {
    ++Counters.Reads;
    if (V->Read == E) {
      // Same-epoch read: the previous read at this exact epoch already
      // performed the write check, and any write landing in between was
      // flagged at its own read check (see the file comment).
      ++Counters.SameEpochReads;
      return;
    }
    if (V->Read & SharedBit) {
      uint32_t Row = uint32_t(V->Read);
      if (Store.get(Row, T.Slot) == epochClock(E)) {
        ++Counters.SameEpochReads; // same-epoch repeat inside a shared clock
        return;
      }
      Store.set(Row, T.Slot, epochClock(E));
      if (!epochOrderedBefore(V->WriteEpoch, T))
        report(Location, Thread, Access, Site);
      return;
    }
    bool Raced = !epochOrderedBefore(V->WriteEpoch, T);
    if (epochOrderedBefore(V->Read, T)) {
      V->Read = E; // reads still totally ordered: the new one subsumes
    } else {
      // Genuinely concurrent reads: inflate to a pooled vector clock
      // holding both readers.
      uint32_t Row = Store.alloc();
      Store.set(Row, epochSlot(V->Read), epochClock(V->Read));
      Store.set(Row, T.Slot, epochClock(E));
      V->Read = SharedBit | Row;
      ++Counters.ReadInflations;
    }
    if (Raced)
      report(Location, Thread, Access, Site);
    return;
  }

  ++Counters.Writes;
  if (V->WriteEpoch == E) {
    // Same-epoch write: an intervening foreign write would have changed
    // the epoch, and an intervening foreign read was flagged at its own
    // write check if unordered.
    ++Counters.SameEpochWrites;
    return;
  }
  bool Raced = !epochOrderedBefore(V->WriteEpoch, T);
  if (V->Read & SharedBit) {
    uint32_t Row = uint32_t(V->Read);
    // One full-width check against the inflated read clock, then collapse
    // back to the bottom epoch: every surviving read is ordered before
    // this write, so any later access conflicting with one of them also
    // conflicts with this write and is caught by the epoch alone.
    Raced = Raced || !Store.orderedBefore(Row, T.VC);
    Store.release(Row);
    V->Read = 0;
    ++Counters.SharedCollapses;
  } else {
    Raced = Raced || !epochOrderedBefore(V->Read, T);
  }
  V->WriteEpoch = E;
  if (Raced)
    report(Location, Thread, Access, Site);
}

EpochStats EpochDetector::stats() const {
  EpochStats S = Counters;
  S.RacesReported = Races;
  S.LocationsTracked = Table.size();
  S.ThreadsSeen = Threads.size();
  S.ClockRowsFresh = Store.freshAllocs();
  S.ClockRowsReused = Store.reusedAllocs();
  return S;
}
