//===- frontend/Token.h - MiniJ surface-language tokens ---------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of the MiniJ surface language — the small Java-like language
/// whose programs the pipeline analyses (see frontend/Parser.h for the
/// grammar).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_FRONTEND_TOKEN_H
#define HERD_FRONTEND_TOKEN_H

#include <cstdint>
#include <string_view>

namespace herd {

enum class TokenKind : uint8_t {
  // Literals and identifiers.
  Integer,
  Identifier,
  // Keywords.
  KwClass,
  KwVar,
  KwDef,
  KwStatic,
  KwSynchronized,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwPrint,
  KwYield,
  KwStart,
  KwJoin,
  KwNew,
  KwThis,
  KwNull,
  KwInt,
  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Colon,
  Dot,
  Assign,     // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,       // !
  EqEq,
  BangEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  // Sentinels.
  EndOfFile,
  Error,
};

/// Returns a human-readable name for diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string_view Text;  ///< slice of the source buffer
  int64_t IntValue = 0;   ///< for Integer tokens
  uint32_t Line = 0;      ///< 1-based
  uint32_t Column = 0;    ///< 1-based

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace herd

#endif // HERD_FRONTEND_TOKEN_H
