//===- frontend/Ast.h - MiniJ abstract syntax trees -------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the MiniJ surface language.  Nodes are owned by unique_ptr and
/// carry the source line for diagnostics and race-report site labels.
///
/// MiniJ is deliberately small but covers everything the paper's analyses
/// care about: classes with (typed) fields, instance/static/synchronized
/// methods, object and array allocation, monitors, thread start/join, and
/// structured control flow.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_FRONTEND_AST_H
#define HERD_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace herd {

/// A (syntactic) type reference: int, a class, or arrays of either.
/// Null is the type of the `null` literal, assignable to any class type.
struct TypeRef {
  enum class Kind : uint8_t { Int, Class, IntArray, ClassArray, Null };
  Kind K = Kind::Int;
  std::string ClassName; ///< for Class / ClassArray

  static TypeRef intType() { return TypeRef(); }
  static TypeRef nullType() {
    TypeRef T;
    T.K = Kind::Null;
    return T;
  }
  static TypeRef classType(std::string Name) {
    TypeRef T;
    T.K = Kind::Class;
    T.ClassName = std::move(Name);
    return T;
  }

  bool isInt() const { return K == Kind::Int; }
  bool isClass() const { return K == Kind::Class; }
  bool isArray() const {
    return K == Kind::IntArray || K == Kind::ClassArray;
  }
  bool isNull() const { return K == Kind::Null; }

  std::string str() const {
    switch (K) {
    case Kind::Int:
      return "int";
    case Kind::Class:
      return ClassName;
    case Kind::IntArray:
      return "int[]";
    case Kind::ClassArray:
      return ClassName + "[]";
    case Kind::Null:
      return "null";
    }
    return "?";
  }
};

//===----------------------------------------------------------------------===
// Expressions.
//===----------------------------------------------------------------------===

struct Expr {
  enum class Kind : uint8_t {
    IntLit,
    NullLit,
    This,
    Name,       ///< local / parameter, or a class name in qualified refs
    Unary,      ///< ! or unary -
    Binary,
    Field,      ///< base.field, ClassName.staticField, or array.length
    Index,      ///< base[index]
    Call,       ///< base.method(args) or ClassName.staticMethod(args)
    NewObject,
    NewArray,
  };

  Kind K;
  uint32_t Line = 0;

  // Payload (union-of-everything style; only the fields for K are used).
  int64_t IntValue = 0;
  std::string Name;       ///< identifier / field / method / class name
  std::string OpText;     ///< for Unary/Binary
  std::unique_ptr<Expr> LHS, RHS; ///< operands / base / index / length
  std::vector<std::unique_ptr<Expr>> Args;
  TypeRef ElemType;       ///< for NewArray

  explicit Expr(Kind K, uint32_t Line) : K(K), Line(Line) {}
};

using ExprPtr = std::unique_ptr<Expr>;

//===----------------------------------------------------------------------===
// Statements.
//===----------------------------------------------------------------------===

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : uint8_t {
    VarDecl,      ///< var x[: T] = init;
    Assign,       ///< lvalue = expr;
    If,
    While,
    Synchronized,
    Return,
    Print,
    Yield,
    Start,
    Join,
    ExprStmt,
    Block,
  };

  Kind K;
  uint32_t Line = 0;

  std::string Name;       ///< VarDecl variable name
  TypeRef DeclType;       ///< VarDecl declared type (defaults to int)
  bool HasDeclType = false;
  ExprPtr Target;         ///< Assign lvalue / If-While cond / sync obj /
                          ///< Return-Print-Start-Join operand / ExprStmt
  ExprPtr Value;          ///< Assign rhs / VarDecl init
  std::vector<StmtPtr> Body;     ///< If-then / While / Sync / Block
  std::vector<StmtPtr> ElseBody; ///< If-else

  explicit Stmt(Kind K, uint32_t Line) : K(K), Line(Line) {}
};

//===----------------------------------------------------------------------===
// Declarations.
//===----------------------------------------------------------------------===

struct ParamAst {
  std::string Name;
  TypeRef Type;
};

struct FieldAst {
  std::string Name;
  TypeRef Type;
  bool IsStatic = false;
  uint32_t Line = 0;
};

struct MethodAst {
  std::string Name;
  std::vector<ParamAst> Params; ///< not counting the implicit `this`
  TypeRef RetType;              ///< `def f(...): T`; defaults to int
  bool HasRetType = false;
  bool IsStatic = false;
  bool IsSynchronized = false;
  std::vector<StmtPtr> Body;
  uint32_t Line = 0;
};

struct ClassAst {
  std::string Name;
  std::vector<FieldAst> Fields;
  std::vector<MethodAst> Methods;
  uint32_t Line = 0;
};

struct ProgramAst {
  std::vector<ClassAst> Classes;
  /// The entry point: a top-level `def main() { ... }`.
  std::unique_ptr<MethodAst> Main;
};

/// A diagnostic with 1-based source position.
struct Diagnostic {
  uint32_t Line = 0;
  uint32_t Column = 0;
  std::string Message;

  std::string str() const {
    return "line " + std::to_string(Line) + ":" + std::to_string(Column) +
           ": " + Message;
  }
};

} // namespace herd

#endif // HERD_FRONTEND_AST_H
