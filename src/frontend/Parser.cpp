//===- frontend/Parser.cpp - MiniJ recursive-descent parser ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

// GCC 12's optimizer emits a well-known false-positive -Wrestrict for
// inlined std::string concatenations (GCC PR105651); the string code in
// this file is conventional.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

using namespace herd;

Parser::Parser(std::string_view Source, std::vector<Diagnostic> &Diags)
    : Tokens(Lexer::tokenizeAll(Source)), Diags(Diags) {}

Token Parser::consume() {
  Token T = cur();
  if (!T.is(TokenKind::EndOfFile))
    ++Index;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  consume();
  return true;
}

void Parser::error(const std::string &Message) {
  Diagnostic D;
  D.Line = cur().Line;
  D.Column = cur().Column;
  D.Message = Message;
  Diags.push_back(std::move(D));
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  std::string Message = "expected ";
  Message += tokenKindName(K);
  Message += ' ';
  Message += Context;
  Message += ", found ";
  Message += tokenKindName(cur().Kind);
  error(Message);
  return false;
}

void Parser::recoverToStatementBoundary() {
  while (!check(TokenKind::EndOfFile) && !check(TokenKind::Semicolon) &&
         !check(TokenKind::RBrace))
    consume();
  accept(TokenKind::Semicolon);
}

ProgramAst Parser::parseProgram() {
  ProgramAst P;
  while (!check(TokenKind::EndOfFile)) {
    if (check(TokenKind::KwClass)) {
      P.Classes.push_back(parseClass());
      continue;
    }
    if (check(TokenKind::KwDef)) {
      MethodAst Main = parseMethod(/*IsStatic=*/true,
                                   /*IsSynchronized=*/false);
      if (Main.Name != "main")
        error("only 'main' may be declared at the top level");
      if (!Main.Params.empty())
        error("'main' takes no parameters");
      P.Main = std::make_unique<MethodAst>(std::move(Main));
      continue;
    }
    std::string Message = "expected 'class' or 'def main', found ";
    Message += tokenKindName(cur().Kind);
    error(Message);
    consume();
  }
  if (!P.Main && Diags.empty())
    error("program has no 'def main()'");
  return P;
}

ClassAst Parser::parseClass() {
  ClassAst C;
  C.Line = cur().Line;
  expect(TokenKind::KwClass, "to begin a class");
  if (check(TokenKind::Identifier))
    C.Name = std::string(consume().Text);
  else
    error("expected a class name");
  expect(TokenKind::LBrace, "after the class name");
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    bool IsStatic = accept(TokenKind::KwStatic);
    bool IsSynchronized = accept(TokenKind::KwSynchronized);
    if (check(TokenKind::KwVar)) {
      if (IsSynchronized)
        error("fields cannot be synchronized");
      C.Fields.push_back(parseField(IsStatic));
    } else if (check(TokenKind::KwDef)) {
      C.Methods.push_back(parseMethod(IsStatic, IsSynchronized));
    } else {
      std::string Message = "expected 'var' or 'def' in class body, found ";
      Message += tokenKindName(cur().Kind);
      error(Message);
      recoverToStatementBoundary();
    }
  }
  expect(TokenKind::RBrace, "to close the class body");
  return C;
}

FieldAst Parser::parseField(bool IsStatic) {
  FieldAst F;
  F.IsStatic = IsStatic;
  F.Line = cur().Line;
  expect(TokenKind::KwVar, "to begin a field");
  if (check(TokenKind::Identifier))
    F.Name = std::string(consume().Text);
  else
    error("expected a field name");
  if (accept(TokenKind::Colon))
    F.Type = parseType();
  expect(TokenKind::Semicolon, "after the field declaration");
  return F;
}

MethodAst Parser::parseMethod(bool IsStatic, bool IsSynchronized) {
  MethodAst M;
  M.IsStatic = IsStatic;
  M.IsSynchronized = IsSynchronized;
  M.Line = cur().Line;
  expect(TokenKind::KwDef, "to begin a method");
  if (check(TokenKind::Identifier))
    M.Name = std::string(consume().Text);
  else
    error("expected a method name");
  expect(TokenKind::LParen, "after the method name");
  while (!check(TokenKind::RParen) && !check(TokenKind::EndOfFile)) {
    ParamAst Param;
    if (check(TokenKind::Identifier))
      Param.Name = std::string(consume().Text);
    else {
      error("expected a parameter name");
      break;
    }
    if (accept(TokenKind::Colon))
      Param.Type = parseType();
    M.Params.push_back(std::move(Param));
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RParen, "to close the parameter list");
  if (accept(TokenKind::Colon)) {
    M.RetType = parseType();
    M.HasRetType = true;
  }
  M.Body = parseBlock();
  return M;
}

TypeRef Parser::parseType() {
  TypeRef T;
  if (accept(TokenKind::KwInt)) {
    T.K = TypeRef::Kind::Int;
  } else if (check(TokenKind::Identifier)) {
    T.K = TypeRef::Kind::Class;
    T.ClassName = std::string(consume().Text);
  } else {
    error("expected a type ('int' or a class name)");
    return T;
  }
  if (accept(TokenKind::LBracket)) {
    expect(TokenKind::RBracket, "in array type");
    T.K = T.K == TypeRef::Kind::Int ? TypeRef::Kind::IntArray
                                    : TypeRef::Kind::ClassArray;
  }
  return T;
}

std::vector<StmtPtr> Parser::parseBlock() {
  std::vector<StmtPtr> Body;
  expect(TokenKind::LBrace, "to begin a block");
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    StmtPtr S = parseStatement();
    if (S)
      Body.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to close the block");
  return Body;
}

StmtPtr Parser::parseStatement() {
  uint32_t Line = cur().Line;

  if (accept(TokenKind::KwVar)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::VarDecl, Line);
    if (check(TokenKind::Identifier))
      S->Name = std::string(consume().Text);
    else
      error("expected a variable name after 'var'");
    if (accept(TokenKind::Colon)) {
      S->DeclType = parseType();
      S->HasDeclType = true;
    }
    if (accept(TokenKind::Assign))
      S->Value = parseExpr();
    expect(TokenKind::Semicolon, "after the variable declaration");
    return S;
  }

  if (accept(TokenKind::KwIf)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::If, Line);
    expect(TokenKind::LParen, "after 'if'");
    S->Target = parseExpr();
    expect(TokenKind::RParen, "after the condition");
    S->Body = parseBlock();
    if (accept(TokenKind::KwElse)) {
      if (check(TokenKind::KwIf)) {
        // `else if` chains: the else body is the nested if statement.
        StmtPtr Nested = parseStatement();
        if (Nested)
          S->ElseBody.push_back(std::move(Nested));
      } else {
        S->ElseBody = parseBlock();
      }
    }
    return S;
  }

  if (accept(TokenKind::KwWhile)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::While, Line);
    expect(TokenKind::LParen, "after 'while'");
    S->Target = parseExpr();
    expect(TokenKind::RParen, "after the condition");
    S->Body = parseBlock();
    return S;
  }

  if (accept(TokenKind::KwSynchronized)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Synchronized, Line);
    expect(TokenKind::LParen, "after 'synchronized'");
    S->Target = parseExpr();
    expect(TokenKind::RParen, "after the monitor expression");
    S->Body = parseBlock();
    return S;
  }

  if (accept(TokenKind::KwReturn)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Return, Line);
    if (!check(TokenKind::Semicolon))
      S->Target = parseExpr();
    expect(TokenKind::Semicolon, "after 'return'");
    return S;
  }

  if (accept(TokenKind::KwPrint)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Print, Line);
    S->Target = parseExpr();
    expect(TokenKind::Semicolon, "after 'print'");
    return S;
  }

  if (accept(TokenKind::KwYield)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Yield, Line);
    expect(TokenKind::Semicolon, "after 'yield'");
    return S;
  }

  if (accept(TokenKind::KwStart)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Start, Line);
    S->Target = parseExpr();
    expect(TokenKind::Semicolon, "after 'start'");
    return S;
  }

  if (accept(TokenKind::KwJoin)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Join, Line);
    S->Target = parseExpr();
    expect(TokenKind::Semicolon, "after 'join'");
    return S;
  }

  // Expression or assignment.
  ExprPtr E = parseExpr();
  if (!E) {
    recoverToStatementBoundary();
    return nullptr;
  }
  if (accept(TokenKind::Assign)) {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Assign, Line);
    S->Target = std::move(E);
    S->Value = parseExpr();
    expect(TokenKind::Semicolon, "after the assignment");
    return S;
  }
  auto S = std::make_unique<Stmt>(Stmt::Kind::ExprStmt, Line);
  S->Target = std::move(E);
  expect(TokenKind::Semicolon, "after the expression");
  return S;
}

ExprPtr Parser::parseExpr() { return parseOr(); }

namespace {

ExprPtr makeBinary(std::string Op, ExprPtr L, ExprPtr R, uint32_t Line) {
  auto E = std::make_unique<Expr>(Expr::Kind::Binary, Line);
  E->OpText = std::move(Op);
  E->LHS = std::move(L);
  E->RHS = std::move(R);
  return E;
}

} // namespace

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (check(TokenKind::PipePipe)) {
    uint32_t Line = consume().Line;
    L = makeBinary("||", std::move(L), parseAnd(), Line);
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseEquality();
  while (check(TokenKind::AmpAmp)) {
    uint32_t Line = consume().Line;
    L = makeBinary("&&", std::move(L), parseEquality(), Line);
  }
  return L;
}

ExprPtr Parser::parseEquality() {
  ExprPtr L = parseRelational();
  while (check(TokenKind::EqEq) || check(TokenKind::BangEq)) {
    Token T = consume();
    L = makeBinary(T.is(TokenKind::EqEq) ? "==" : "!=", std::move(L),
                   parseRelational(), T.Line);
  }
  return L;
}

ExprPtr Parser::parseRelational() {
  ExprPtr L = parseAdditive();
  while (check(TokenKind::Less) || check(TokenKind::LessEq) ||
         check(TokenKind::Greater) || check(TokenKind::GreaterEq)) {
    Token T = consume();
    const char *Op = T.is(TokenKind::Less)      ? "<"
                     : T.is(TokenKind::LessEq)  ? "<="
                     : T.is(TokenKind::Greater) ? ">"
                                                : ">=";
    L = makeBinary(Op, std::move(L), parseAdditive(), T.Line);
  }
  return L;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr L = parseMultiplicative();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    Token T = consume();
    L = makeBinary(T.is(TokenKind::Plus) ? "+" : "-", std::move(L),
                   parseMultiplicative(), T.Line);
  }
  return L;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr L = parseUnary();
  while (check(TokenKind::Star) || check(TokenKind::Slash) ||
         check(TokenKind::Percent)) {
    Token T = consume();
    const char *Op = T.is(TokenKind::Star)    ? "*"
                     : T.is(TokenKind::Slash) ? "/"
                                              : "%";
    L = makeBinary(Op, std::move(L), parseUnary(), T.Line);
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  if (check(TokenKind::Bang) || check(TokenKind::Minus)) {
    Token T = consume();
    auto E = std::make_unique<Expr>(Expr::Kind::Unary, T.Line);
    E->OpText = T.is(TokenKind::Bang) ? "!" : "-";
    E->LHS = parseUnary();
    return E;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (E) {
    if (accept(TokenKind::Dot)) {
      if (!check(TokenKind::Identifier)) {
        error("expected a member name after '.'");
        return E;
      }
      Token Member = consume();
      if (check(TokenKind::LParen)) {
        auto Call = std::make_unique<Expr>(Expr::Kind::Call, Member.Line);
        Call->Name = std::string(Member.Text);
        Call->LHS = std::move(E);
        Call->Args = parseArgs();
        E = std::move(Call);
      } else {
        auto Field = std::make_unique<Expr>(Expr::Kind::Field, Member.Line);
        Field->Name = std::string(Member.Text);
        Field->LHS = std::move(E);
        E = std::move(Field);
      }
      continue;
    }
    if (check(TokenKind::LBracket)) {
      uint32_t Line = consume().Line;
      auto Idx = std::make_unique<Expr>(Expr::Kind::Index, Line);
      Idx->LHS = std::move(E);
      Idx->RHS = parseExpr();
      expect(TokenKind::RBracket, "to close the index");
      E = std::move(Idx);
      continue;
    }
    break;
  }
  return E;
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  expect(TokenKind::LParen, "to begin the argument list");
  if (!check(TokenKind::RParen)) {
    do {
      Args.push_back(parseExpr());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close the argument list");
  return Args;
}

ExprPtr Parser::parsePrimary() {
  uint32_t Line = cur().Line;

  if (check(TokenKind::Integer)) {
    Token T = consume();
    auto E = std::make_unique<Expr>(Expr::Kind::IntLit, Line);
    E->IntValue = T.IntValue;
    return E;
  }
  if (accept(TokenKind::KwNull))
    return std::make_unique<Expr>(Expr::Kind::NullLit, Line);
  if (accept(TokenKind::KwThis))
    return std::make_unique<Expr>(Expr::Kind::This, Line);

  if (accept(TokenKind::KwNew)) {
    if (accept(TokenKind::KwInt)) {
      expect(TokenKind::LBracket, "in 'new int[...]'");
      auto E = std::make_unique<Expr>(Expr::Kind::NewArray, Line);
      E->ElemType = TypeRef::intType();
      E->LHS = parseExpr();
      expect(TokenKind::RBracket, "to close the array size");
      return E;
    }
    if (!check(TokenKind::Identifier)) {
      error("expected a class name after 'new'");
      return nullptr;
    }
    Token Cls = consume();
    if (accept(TokenKind::LBracket)) {
      auto E = std::make_unique<Expr>(Expr::Kind::NewArray, Line);
      E->ElemType = TypeRef::classType(std::string(Cls.Text));
      E->LHS = parseExpr();
      expect(TokenKind::RBracket, "to close the array size");
      return E;
    }
    auto E = std::make_unique<Expr>(Expr::Kind::NewObject, Line);
    E->Name = std::string(Cls.Text);
    expect(TokenKind::LParen, "after the class name in 'new'");
    expect(TokenKind::RParen, "MiniJ classes have no constructors");
    return E;
  }

  if (check(TokenKind::Identifier)) {
    Token Name = consume();
    auto E = std::make_unique<Expr>(Expr::Kind::Name, Line);
    E->Name = std::string(Name.Text);
    return E;
  }

  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "to close the parenthesized expression");
    return E;
  }

  std::string Message = "expected an expression, found ";
  Message += tokenKindName(cur().Kind);
  error(Message);
  consume();
  return nullptr;
}
