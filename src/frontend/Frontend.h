//===- frontend/Frontend.h - MiniJ compilation entry point ------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call frontend: compiles MiniJ source text to a verified MiniJ
/// Program ready for the detection pipeline.
///
/// \code
///   CompileResult R = compileMiniJ(Source);
///   if (!R.Ok) { for (auto &D : R.Diags) ...; }
///   else runPipeline(R.P, ToolConfig::full());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef HERD_FRONTEND_FRONTEND_H
#define HERD_FRONTEND_FRONTEND_H

#include "frontend/Ast.h"
#include "ir/Program.h"

#include <string_view>
#include <vector>

namespace herd {

class MetricsRegistry;

struct CompileResult {
  bool Ok = false;
  Program P;                      ///< valid only when Ok
  std::vector<Diagnostic> Diags;  ///< parse and semantic errors
};

/// Compiles MiniJ source; on success the returned program passes
/// verifyProgram().  With a registry, records "parse" / "lower" / "verify"
/// phase spans (`herd --trace-json`); null costs nothing.
CompileResult compileMiniJ(std::string_view Source,
                           MetricsRegistry *Metrics = nullptr);

} // namespace herd

#endif // HERD_FRONTEND_FRONTEND_H
