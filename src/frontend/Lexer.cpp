//===- frontend/Lexer.cpp - MiniJ lexer -----------------------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace herd;

const char *herd::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Integer:
    return "integer literal";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwDef:
    return "'def'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::KwSynchronized:
    return "'synchronized'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwYield:
    return "'yield'";
  case TokenKind::KwStart:
    return "'start'";
  case TokenKind::KwJoin:
    return "'join'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::EndOfFile:
    return "end of input";
  case TokenKind::Error:
    return "invalid character";
  }
  return "?";
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::make(TokenKind Kind, size_t Start) {
  Token T;
  T.Kind = Kind;
  T.Text = Source.substr(Start, Pos - Start);
  T.Line = Line;
  T.Column = Column - uint32_t(Pos - Start);
  return T;
}

Token Lexer::next() {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"class", TokenKind::KwClass},
      {"var", TokenKind::KwVar},
      {"def", TokenKind::KwDef},
      {"static", TokenKind::KwStatic},
      {"synchronized", TokenKind::KwSynchronized},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"return", TokenKind::KwReturn},
      {"print", TokenKind::KwPrint},
      {"yield", TokenKind::KwYield},
      {"start", TokenKind::KwStart},
      {"join", TokenKind::KwJoin},
      {"new", TokenKind::KwNew},
      {"this", TokenKind::KwThis},
      {"null", TokenKind::KwNull},
      {"int", TokenKind::KwInt},
  };

  skipTrivia();
  if (Pos >= Source.size()) {
    Token T;
    T.Kind = TokenKind::EndOfFile;
    T.Line = Line;
    T.Column = Column;
    return T;
  }

  size_t Start = Pos;
  char C = advance();

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = C - '0';
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (advance() - '0');
    Token T = make(TokenKind::Integer, Start);
    T.IntValue = Value;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      advance();
    Token T = make(TokenKind::Identifier, Start);
    auto It = Keywords.find(T.Text);
    if (It != Keywords.end())
      T.Kind = It->second;
    return T;
  }

  auto Two = [&](char Next, TokenKind IfTwo, TokenKind IfOne) {
    if (peek() == Next) {
      advance();
      return make(IfTwo, Start);
    }
    return make(IfOne, Start);
  };

  switch (C) {
  case '{':
    return make(TokenKind::LBrace, Start);
  case '}':
    return make(TokenKind::RBrace, Start);
  case '(':
    return make(TokenKind::LParen, Start);
  case ')':
    return make(TokenKind::RParen, Start);
  case '[':
    return make(TokenKind::LBracket, Start);
  case ']':
    return make(TokenKind::RBracket, Start);
  case ';':
    return make(TokenKind::Semicolon, Start);
  case ',':
    return make(TokenKind::Comma, Start);
  case ':':
    return make(TokenKind::Colon, Start);
  case '.':
    return make(TokenKind::Dot, Start);
  case '+':
    return make(TokenKind::Plus, Start);
  case '-':
    return make(TokenKind::Minus, Start);
  case '*':
    return make(TokenKind::Star, Start);
  case '/':
    return make(TokenKind::Slash, Start);
  case '%':
    return make(TokenKind::Percent, Start);
  case '=':
    return Two('=', TokenKind::EqEq, TokenKind::Assign);
  case '!':
    return Two('=', TokenKind::BangEq, TokenKind::Bang);
  case '<':
    return Two('=', TokenKind::LessEq, TokenKind::Less);
  case '>':
    return Two('=', TokenKind::GreaterEq, TokenKind::Greater);
  case '&':
    if (peek() == '&') {
      advance();
      return make(TokenKind::AmpAmp, Start);
    }
    return make(TokenKind::Error, Start);
  case '|':
    if (peek() == '|') {
      advance();
      return make(TokenKind::PipePipe, Start);
    }
    return make(TokenKind::Error, Start);
  default:
    return make(TokenKind::Error, Start);
  }
}

std::vector<Token> Lexer::tokenizeAll(std::string_view Source) {
  Lexer L(Source);
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(L.next());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}
