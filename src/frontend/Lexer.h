//===- frontend/Lexer.h - MiniJ lexer ---------------------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniJ.  Supports `//` line comments and decimal
/// integer literals; reports malformed input as Error tokens carrying the
/// offending text.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_FRONTEND_LEXER_H
#define HERD_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string_view>
#include <vector>

namespace herd {

class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Produces the next token (EndOfFile forever once exhausted).
  Token next();

  /// Lexes the whole buffer; the last token is EndOfFile.
  static std::vector<Token> tokenizeAll(std::string_view Source);

private:
  void skipTrivia();
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  Token make(TokenKind Kind, size_t Start);

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace herd

#endif // HERD_FRONTEND_LEXER_H
