//===- frontend/Parser.h - MiniJ recursive-descent parser -------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniJ.  Grammar sketch:
///
///   program   := (classDecl | mainDecl)*
///   classDecl := "class" IDENT "{" (fieldDecl | methodDecl)* "}"
///   fieldDecl := ("static")? "var" IDENT (":" type)? ";"
///   methodDecl:= ("static")? ("synchronized")? "def" IDENT
///                "(" params ")" block
///   mainDecl  := "def" IDENT "(" ")" block          -- must be "main"
///   type      := "int" | IDENT | ("int"|IDENT) "[" "]"
///   stmt      := "var" IDENT (":" type)? ("=" expr)? ";"
///              | lvalue "=" expr ";"
///              | "if" "(" expr ")" block ("else" (block | ifStmt))?
///              | "while" "(" expr ")" block
///              | "synchronized" "(" expr ")" block
///              | "return" (expr)? ";"  | "print" expr ";"
///              | "yield" ";"  | "start" expr ";"  | "join" expr ";"
///              | expr ";"
///   expr      := usual precedence: || && (==|!=) (<|<=|>|>=) (+|-)
///                (*|/|%) unary(! -) postfix
///   postfix   := primary ( "." IDENT ("(" args ")")? | "[" expr "]" )*
///   primary   := INT | "null" | "this" | IDENT ("(" args ")")?
///              | "new" IDENT "(" ")" | "new" type "[" expr "]"
///              | "(" expr ")"
///
/// Notes: `&&` and `||` are lowered eagerly (both sides evaluate); `.length`
/// on an array is the length operator.  Errors are collected with panic
/// recovery to the next ';' or '}'.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_FRONTEND_PARSER_H
#define HERD_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"

#include <string_view>
#include <vector>

namespace herd {

class Parser {
public:
  Parser(std::string_view Source, std::vector<Diagnostic> &Diags);

  /// Parses a whole program; check \p Diags for errors afterwards.
  ProgramAst parseProgram();

private:
  const Token &cur() const { return Tokens[Index]; }
  const Token &peekAhead(size_t N = 1) const {
    return Tokens[std::min(Index + N, Tokens.size() - 1)];
  }
  Token consume();
  bool check(TokenKind K) const { return cur().is(K); }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Message);
  void recoverToStatementBoundary();

  ClassAst parseClass();
  FieldAst parseField(bool IsStatic);
  MethodAst parseMethod(bool IsStatic, bool IsSynchronized);
  TypeRef parseType();
  std::vector<StmtPtr> parseBlock();
  StmtPtr parseStatement();
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  std::vector<Token> Tokens;
  size_t Index = 0;
  std::vector<Diagnostic> &Diags;
};

} // namespace herd

#endif // HERD_FRONTEND_PARSER_H
