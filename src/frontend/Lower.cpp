//===- frontend/Lower.cpp - MiniJ AST-to-IR lowering ----------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the MiniJ AST to the MiniJ IR through the IRBuilder, with a
/// pragmatic type checker: every expression carries a TypeRef so that
/// method calls resolve statically (the IR has only direct calls), field
/// and array accesses are shape-checked, and `null` is assignable to any
/// class type.  Statements carry `L<line>` site labels, which is what race
/// reports print.
///
/// Restrictions (diagnosed, not silently miscompiled):
///   - `return` is not allowed inside a `synchronized` block (the IR's
///     monitor regions are strictly structured);
///   - `&&` and `||` evaluate both operands (no short circuit);
///   - code after a `return` in the same block is rejected as unreachable.
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Metrics.h"

#include <map>
#include <optional>

using namespace herd;

namespace {

/// A typed value produced by expression lowering.  An invalid Reg with
/// IsClassRef set denotes a class name used as a qualifier.
struct TypedValue {
  RegId Reg;
  TypeRef Type;
  bool IsClassRef = false;
  ClassId Class; ///< for class refs
  bool Ok = false;

  static TypedValue value(RegId R, TypeRef T) {
    TypedValue V;
    V.Reg = R;
    V.Type = std::move(T);
    V.Ok = true;
    return V;
  }
  static TypedValue classRef(ClassId C, std::string Name) {
    TypedValue V;
    V.IsClassRef = true;
    V.Class = C;
    V.Type = TypeRef::classType(std::move(Name));
    V.Ok = true;
    return V;
  }
  static TypedValue invalid() { return TypedValue(); }
};

struct FieldInfo {
  FieldId Id;
  TypeRef Type;
  bool IsStatic = false;
};

struct MethodInfo {
  MethodId Id;
  const MethodAst *Ast = nullptr;
  ClassId Owner;
};

class Lowering {
public:
  Lowering(Program &P, std::vector<Diagnostic> &Diags)
      : P(P), B(P), Diags(Diags) {}

  void run(const ProgramAst &Ast);

private:
  void declare(const ProgramAst &Ast);
  void lowerMethod(const MethodAst &M, MethodId Id, ClassId Owner);
  void lowerStmts(const std::vector<StmtPtr> &Stmts);
  void lowerStmt(const Stmt &S);
  void lowerAssign(const Stmt &S);
  TypedValue lowerExpr(const Expr &E);
  TypedValue lowerBinary(const Expr &E);
  TypedValue lowerField(const Expr &E);
  TypedValue lowerCall(const Expr &E);

  void error(uint32_t Line, const std::string &Message) {
    Diagnostic D;
    D.Line = Line;
    D.Column = 1;
    D.Message = Message;
    Diags.push_back(std::move(D));
  }

  /// Checks that a value of type \p From may flow into a slot of type
  /// \p To (exact match, or null into any reference type).
  bool assignable(const TypeRef &From, const TypeRef &To) const {
    if (From.isNull())
      return To.isClass() || To.isArray();
    if (From.K != To.K)
      return false;
    if (From.K == TypeRef::Kind::Class ||
        From.K == TypeRef::Kind::ClassArray)
      return From.ClassName == To.ClassName;
    return true;
  }

  bool resolveType(const TypeRef &T, uint32_t Line) {
    if ((T.K == TypeRef::Kind::Class || T.K == TypeRef::Kind::ClassArray) &&
        !Classes.count(T.ClassName)) {
      error(Line, "unknown class '" + T.ClassName + "'");
      return false;
    }
    return true;
  }

  RegId emitNullConst() {
    // MiniJ unifies `null` with the integer zero value: fields, array
    // elements and fresh registers all zero-initialize, so `x == null`
    // after `x = arr[i]` on an unset slot works out of the box.  The cost
    // is that dereferencing null reports a type error ("expected a
    // reference") rather than a dedicated NPE message — same program
    // point, same halt.
    return B.emitConst(0);
  }

  struct Local {
    RegId Reg;
    TypeRef Type;
  };

  Local *findLocal(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  Program &P;
  IRBuilder B;
  std::vector<Diagnostic> &Diags;

  std::map<std::string, ClassId> Classes;
  std::map<std::pair<uint32_t, std::string>, FieldInfo> Fields; ///< (class)
  std::map<std::pair<uint32_t, std::string>, MethodInfo> Methods;

  // Per-method lowering state.
  std::vector<std::map<std::string, Local>> Scopes;
  ClassId CurClass;
  const MethodAst *CurMethod = nullptr;
  uint32_t SyncDepth = 0;
};

void Lowering::declare(const ProgramAst &Ast) {
  for (const ClassAst &C : Ast.Classes) {
    if (Classes.count(C.Name)) {
      error(C.Line, "duplicate class '" + C.Name + "'");
      continue;
    }
    Classes.emplace(C.Name, B.makeClass(C.Name));
  }
  for (const ClassAst &C : Ast.Classes) {
    auto ClsIt = Classes.find(C.Name);
    if (ClsIt == Classes.end())
      continue;
    ClassId Cls = ClsIt->second;
    for (const FieldAst &F : C.Fields) {
      if (!resolveType(F.Type, F.Line))
        continue;
      auto Key = std::make_pair(Cls.index(), F.Name);
      if (Fields.count(Key)) {
        error(F.Line, "duplicate field '" + F.Name + "'");
        continue;
      }
      FieldInfo Info;
      Info.Id = F.IsStatic ? B.makeStaticField(Cls, F.Name)
                           : B.makeField(Cls, F.Name);
      Info.Type = F.Type;
      Info.IsStatic = F.IsStatic;
      Fields.emplace(Key, Info);
    }
    for (const MethodAst &M : C.Methods) {
      auto Key = std::make_pair(Cls.index(), M.Name);
      if (Methods.count(Key)) {
        error(M.Line, "duplicate method '" + M.Name + "'");
        continue;
      }
      for (const ParamAst &Param : M.Params)
        resolveType(Param.Type, M.Line);
      if (M.HasRetType)
        resolveType(M.RetType, M.Line);
      if (M.IsSynchronized && M.IsStatic)
        error(M.Line, "static methods cannot be synchronized in MiniJ");
      uint32_t NumParams =
          uint32_t(M.Params.size()) + (M.IsStatic ? 0u : 1u);
      MethodInfo Info;
      Info.Id = P.addMethod(Cls, M.Name, NumParams, M.IsStatic,
                            M.IsSynchronized);
      Info.Ast = &M;
      Info.Owner = Cls;
      Methods.emplace(Key, Info);
    }
  }
}

void Lowering::run(const ProgramAst &Ast) {
  declare(Ast);
  if (!Diags.empty())
    return;

  for (const ClassAst &C : Ast.Classes) {
    ClassId Cls = Classes.at(C.Name);
    for (const MethodAst &M : C.Methods)
      lowerMethod(M, Methods.at({Cls.index(), M.Name}).Id, Cls);
  }
  if (Ast.Main) {
    MethodId Main = P.addMethod(ClassId::invalid(), "main", 0, true, false);
    P.MainMethod = Main;
    lowerMethod(*Ast.Main, Main, ClassId::invalid());
  }
}

void Lowering::lowerMethod(const MethodAst &M, MethodId Id, ClassId Owner) {
  // Position the builder in the (already declared) method.
  Method &Body = P.method(Id);
  Body.Blocks.clear();
  Body.Blocks.emplace_back();
  Body.NumRegs = Body.NumParams;
  // IRBuilder has no re-entry API; emulate startMethod's positioning.
  struct BuilderReset {
    IRBuilder &B;
    BuilderReset(IRBuilder &B, MethodId Id) : B(B) { B.resumeMethod(Id); }
  } Reset(B, Id);

  CurClass = Owner;
  CurMethod = &M;
  SyncDepth = 0;
  Scopes.clear();
  Scopes.emplace_back();
  uint32_t ParamBase = M.IsStatic ? 0 : 1;
  if (!M.IsStatic)
    Scopes.back().emplace(
        "this", Local{RegId(0), TypeRef::classType(std::string(
                                    P.Names.text(P.classDecl(Owner).Name)))});
  for (size_t I = 0; I != M.Params.size(); ++I)
    Scopes.back().emplace(
        M.Params[I].Name,
        Local{RegId(uint32_t(ParamBase + I)), M.Params[I].Type});

  lowerStmts(M.Body);
  if (!P.method(Id).block(B.currentBlock()).hasTerminator())
    B.emitReturn();
  Scopes.clear();
}

void Lowering::lowerStmts(const std::vector<StmtPtr> &Stmts) {
  Scopes.emplace_back();
  for (const StmtPtr &S : Stmts) {
    if (P.method(B.currentMethod()).block(B.currentBlock()).hasTerminator()) {
      error(S->Line, "unreachable code after 'return'");
      break;
    }
    lowerStmt(*S);
  }
  Scopes.pop_back();
}

void Lowering::lowerStmt(const Stmt &S) {
  B.site("L" + std::to_string(S.Line), S.Line);
  switch (S.K) {
  case Stmt::Kind::VarDecl: {
    TypeRef Type = S.HasDeclType ? S.DeclType : TypeRef::intType();
    if (!resolveType(Type, S.Line))
      return;
    RegId Reg;
    if (S.Value) {
      TypedValue Init = lowerExpr(*S.Value);
      if (!Init.Ok)
        return;
      if (!S.HasDeclType && !Init.Type.isNull())
        Type = Init.Type;
      if (!assignable(Init.Type, Type)) {
        error(S.Line, "cannot initialize '" + S.Name + "' of type " +
                          Type.str() + " with a " + Init.Type.str());
        return;
      }
      Reg = B.emitMove(Init.Reg);
    } else {
      Reg = B.emitConst(0);
    }
    if (Scopes.back().count(S.Name)) {
      error(S.Line, "redeclaration of '" + S.Name + "'");
      return;
    }
    Scopes.back().emplace(S.Name, Local{Reg, Type});
    return;
  }

  case Stmt::Kind::Assign:
    lowerAssign(S);
    return;

  case Stmt::Kind::If: {
    TypedValue Cond = lowerExpr(*S.Target);
    if (!Cond.Ok)
      return;
    if (S.ElseBody.empty())
      B.ifThen(Cond.Reg, [&] { lowerStmts(S.Body); });
    else
      B.ifThenElse(
          Cond.Reg, [&] { lowerStmts(S.Body); },
          [&] { lowerStmts(S.ElseBody); });
    return;
  }

  case Stmt::Kind::While:
    B.whileLoop(
        [&]() -> RegId {
          TypedValue Cond = lowerExpr(*S.Target);
          return Cond.Ok ? Cond.Reg : B.emitConst(0);
        },
        [&] { lowerStmts(S.Body); });
    return;

  case Stmt::Kind::Synchronized: {
    TypedValue Obj = lowerExpr(*S.Target);
    if (!Obj.Ok)
      return;
    if (!Obj.Type.isClass() && !Obj.Type.isArray()) {
      error(S.Line, "synchronized requires an object, got " +
                        Obj.Type.str());
      return;
    }
    ++SyncDepth;
    B.sync(Obj.Reg, [&] { lowerStmts(S.Body); });
    --SyncDepth;
    return;
  }

  case Stmt::Kind::Return: {
    if (SyncDepth > 0) {
      error(S.Line, "'return' inside 'synchronized' is not supported");
      return;
    }
    if (S.Target) {
      TypedValue V = lowerExpr(*S.Target);
      if (!V.Ok)
        return;
      if (CurMethod && CurMethod->HasRetType &&
          !assignable(V.Type, CurMethod->RetType))
        error(S.Line, "returning a " + V.Type.str() + " from a method "
                          "declared to return " + CurMethod->RetType.str());
      B.emitReturn(V.Reg);
    } else {
      B.emitReturn();
    }
    return;
  }

  case Stmt::Kind::Print: {
    TypedValue V = lowerExpr(*S.Target);
    if (V.Ok)
      B.emitPrint(V.Reg);
    return;
  }

  case Stmt::Kind::Yield:
    B.emitYield();
    return;

  case Stmt::Kind::Start: {
    TypedValue V = lowerExpr(*S.Target);
    if (!V.Ok)
      return;
    if (!V.Type.isClass()) {
      error(S.Line, "'start' requires an object");
      return;
    }
    ClassId Cls = Classes.at(V.Type.ClassName);
    if (!P.classDecl(Cls).RunMethod.isValid())
      error(S.Line, "class '" + V.Type.ClassName + "' has no run() method");
    B.emitThreadStart(V.Reg);
    return;
  }

  case Stmt::Kind::Join: {
    TypedValue V = lowerExpr(*S.Target);
    if (!V.Ok)
      return;
    if (!V.Type.isClass()) {
      error(S.Line, "'join' requires an object");
      return;
    }
    B.emitThreadJoin(V.Reg);
    return;
  }

  case Stmt::Kind::ExprStmt:
    lowerExpr(*S.Target);
    return;

  case Stmt::Kind::Block:
    lowerStmts(S.Body);
    return;
  }
}

void Lowering::lowerAssign(const Stmt &S) {
  const Expr &Target = *S.Target;

  if (Target.K == Expr::Kind::Name) {
    // Local, or an implicit `this.field` / static field of this class.
    if (Local *L = findLocal(Target.Name)) {
      TypedValue V = lowerExpr(*S.Value);
      if (!V.Ok)
        return;
      if (!assignable(V.Type, L->Type)) {
        error(S.Line, "cannot assign a " + V.Type.str() + " to '" +
                          Target.Name + "' of type " + L->Type.str());
        return;
      }
      B.emitAssign(L->Reg, V.Reg);
      return;
    }
    if (CurClass.isValid()) {
      auto It = Fields.find({CurClass.index(), Target.Name});
      if (It != Fields.end()) {
        TypedValue V = lowerExpr(*S.Value);
        if (!V.Ok)
          return;
        if (!assignable(V.Type, It->second.Type)) {
          error(S.Line, "cannot assign a " + V.Type.str() + " to field '" +
                            Target.Name + "' of type " +
                            It->second.Type.str());
          return;
        }
        if (It->second.IsStatic) {
          B.emitPutStatic(It->second.Id, V.Reg);
        } else if (CurMethod && !CurMethod->IsStatic) {
          B.emitPutField(RegId(0), It->second.Id, V.Reg);
        } else {
          error(S.Line, "cannot access instance field '" + Target.Name +
                            "' from a static method");
        }
        return;
      }
    }
    error(S.Line, "unknown variable '" + Target.Name + "'");
    return;
  }

  if (Target.K == Expr::Kind::Field) {
    TypedValue Base = lowerExpr(*Target.LHS);
    if (!Base.Ok)
      return;
    TypedValue V = lowerExpr(*S.Value);
    if (!V.Ok)
      return;
    if (Base.IsClassRef) {
      auto It = Fields.find({Base.Class.index(), Target.Name});
      if (It == Fields.end() || !It->second.IsStatic) {
        error(S.Line, "no static field '" + Target.Name + "' in class " +
                          Base.Type.ClassName);
        return;
      }
      if (!assignable(V.Type, It->second.Type)) {
        error(S.Line, "type mismatch assigning to static field '" +
                          Target.Name + "'");
        return;
      }
      B.emitPutStatic(It->second.Id, V.Reg);
      return;
    }
    if (!Base.Type.isClass()) {
      error(S.Line, "field assignment on a non-object (" +
                        Base.Type.str() + ")");
      return;
    }
    ClassId Cls = Classes.at(Base.Type.ClassName);
    auto It = Fields.find({Cls.index(), Target.Name});
    if (It == Fields.end() || It->second.IsStatic) {
      error(S.Line, "no field '" + Target.Name + "' in class " +
                        Base.Type.ClassName);
      return;
    }
    if (!assignable(V.Type, It->second.Type)) {
      error(S.Line, "type mismatch assigning to field '" + Target.Name +
                        "' (expected " + It->second.Type.str() + ", got " +
                        V.Type.str() + ")");
      return;
    }
    B.emitPutField(Base.Reg, It->second.Id, V.Reg);
    return;
  }

  if (Target.K == Expr::Kind::Index) {
    TypedValue Arr = lowerExpr(*Target.LHS);
    TypedValue Idx = lowerExpr(*Target.RHS);
    if (!Arr.Ok || !Idx.Ok)
      return;
    if (!Arr.Type.isArray()) {
      error(S.Line, "indexing a non-array (" + Arr.Type.str() + ")");
      return;
    }
    if (!Idx.Type.isInt()) {
      error(S.Line, "array index must be an int");
      return;
    }
    TypedValue V = lowerExpr(*S.Value);
    if (!V.Ok)
      return;
    TypeRef Elem = Arr.Type.K == TypeRef::Kind::IntArray
                       ? TypeRef::intType()
                       : TypeRef::classType(Arr.Type.ClassName);
    if (!assignable(V.Type, Elem)) {
      error(S.Line, "type mismatch storing a " + V.Type.str() +
                        " into a " + Arr.Type.str());
      return;
    }
    B.emitAStore(Arr.Reg, Idx.Reg, V.Reg);
    return;
  }

  error(S.Line, "expression is not assignable");
}

TypedValue Lowering::lowerExpr(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    return TypedValue::value(B.emitConst(E.IntValue), TypeRef::intType());

  case Expr::Kind::NullLit:
    return TypedValue::value(emitNullConst(), TypeRef::nullType());

  case Expr::Kind::This:
    if (!CurClass.isValid() || !CurMethod || CurMethod->IsStatic) {
      error(E.Line, "'this' outside an instance method");
      return TypedValue::invalid();
    }
    return TypedValue::value(
        RegId(0), TypeRef::classType(std::string(
                      P.Names.text(P.classDecl(CurClass).Name))));

  case Expr::Kind::Name: {
    if (Local *L = findLocal(E.Name))
      return TypedValue::value(L->Reg, L->Type);
    // Implicit this.field / static field of the current class.
    if (CurClass.isValid()) {
      auto It = Fields.find({CurClass.index(), E.Name});
      if (It != Fields.end()) {
        if (It->second.IsStatic)
          return TypedValue::value(B.emitGetStatic(It->second.Id),
                                   It->second.Type);
        if (CurMethod && !CurMethod->IsStatic)
          return TypedValue::value(
              B.emitGetField(RegId(0), It->second.Id), It->second.Type);
      }
    }
    auto ClsIt = Classes.find(E.Name);
    if (ClsIt != Classes.end())
      return TypedValue::classRef(ClsIt->second, E.Name);
    error(E.Line, "unknown name '" + E.Name + "'");
    return TypedValue::invalid();
  }

  case Expr::Kind::Unary: {
    TypedValue V = lowerExpr(*E.LHS);
    if (!V.Ok)
      return TypedValue::invalid();
    if (!V.Type.isInt()) {
      error(E.Line, "unary '" + E.OpText + "' requires an int");
      return TypedValue::invalid();
    }
    RegId Zero = B.emitConst(0);
    if (E.OpText == "!")
      return TypedValue::value(B.emitBinOp(BinOpKind::CmpEq, V.Reg, Zero),
                               TypeRef::intType());
    return TypedValue::value(B.emitBinOp(BinOpKind::Sub, Zero, V.Reg),
                             TypeRef::intType());
  }

  case Expr::Kind::Binary:
    return lowerBinary(E);

  case Expr::Kind::Field:
    return lowerField(E);

  case Expr::Kind::Index: {
    TypedValue Arr = lowerExpr(*E.LHS);
    TypedValue Idx = lowerExpr(*E.RHS);
    if (!Arr.Ok || !Idx.Ok)
      return TypedValue::invalid();
    if (!Arr.Type.isArray()) {
      error(E.Line, "indexing a non-array (" + Arr.Type.str() + ")");
      return TypedValue::invalid();
    }
    if (!Idx.Type.isInt()) {
      error(E.Line, "array index must be an int");
      return TypedValue::invalid();
    }
    TypeRef Elem = Arr.Type.K == TypeRef::Kind::IntArray
                       ? TypeRef::intType()
                       : TypeRef::classType(Arr.Type.ClassName);
    return TypedValue::value(B.emitALoad(Arr.Reg, Idx.Reg), Elem);
  }

  case Expr::Kind::Call:
    return lowerCall(E);

  case Expr::Kind::NewObject: {
    auto It = Classes.find(E.Name);
    if (It == Classes.end()) {
      error(E.Line, "unknown class '" + E.Name + "'");
      return TypedValue::invalid();
    }
    return TypedValue::value(B.emitNew(It->second),
                             TypeRef::classType(E.Name));
  }

  case Expr::Kind::NewArray: {
    TypedValue Len = lowerExpr(*E.LHS);
    if (!Len.Ok)
      return TypedValue::invalid();
    if (!Len.Type.isInt()) {
      error(E.Line, "array size must be an int");
      return TypedValue::invalid();
    }
    if (!resolveType(E.ElemType, E.Line))
      return TypedValue::invalid();
    TypeRef ArrType;
    if (E.ElemType.isInt()) {
      ArrType.K = TypeRef::Kind::IntArray;
    } else {
      ArrType.K = TypeRef::Kind::ClassArray;
      ArrType.ClassName = E.ElemType.ClassName;
    }
    return TypedValue::value(B.emitNewArray(Len.Reg), ArrType);
  }
  }
  return TypedValue::invalid();
}

TypedValue Lowering::lowerBinary(const Expr &E) {
  // An integer-literal RHS is materialized before the LHS.  A literal is
  // pure, so evaluation order is unobservable — but this leaves the LHS's
  // final instruction (often a field load) directly adjacent to the BinOp,
  // the shape the superinstruction peephole fuses (instr/Superinstr.cpp):
  // `x.f + 1` lowers to Const; GetField; BinOp instead of the unfusible
  // GetField; Const; BinOp.
  TypedValue L, R;
  if (E.RHS->K == Expr::Kind::IntLit) {
    R = lowerExpr(*E.RHS);
    L = lowerExpr(*E.LHS);
  } else {
    L = lowerExpr(*E.LHS);
    R = lowerExpr(*E.RHS);
  }
  if (!L.Ok || !R.Ok)
    return TypedValue::invalid();

  const std::string &Op = E.OpText;
  if (Op == "==" || Op == "!=") {
    // References and ints alike; null comparisons included.
    RegId Res = B.emitBinOp(Op == "==" ? BinOpKind::CmpEq : BinOpKind::CmpNe,
                            L.Reg, R.Reg);
    return TypedValue::value(Res, TypeRef::intType());
  }

  if (!L.Type.isInt() || !R.Type.isInt()) {
    error(E.Line, "operator '" + Op + "' requires ints (got " +
                      L.Type.str() + " and " + R.Type.str() + ")");
    return TypedValue::invalid();
  }

  BinOpKind Kind;
  if (Op == "+")
    Kind = BinOpKind::Add;
  else if (Op == "-")
    Kind = BinOpKind::Sub;
  else if (Op == "*")
    Kind = BinOpKind::Mul;
  else if (Op == "/")
    Kind = BinOpKind::Div;
  else if (Op == "%")
    Kind = BinOpKind::Mod;
  else if (Op == "<")
    Kind = BinOpKind::CmpLt;
  else if (Op == "<=")
    Kind = BinOpKind::CmpLe;
  else if (Op == ">")
    Kind = BinOpKind::CmpGt;
  else if (Op == ">=")
    Kind = BinOpKind::CmpGe;
  else if (Op == "&&" || Op == "||") {
    // Eager evaluation: normalize both sides to 0/1 and combine.
    RegId Zero = B.emitConst(0);
    RegId LB = B.emitBinOp(BinOpKind::CmpNe, L.Reg, Zero);
    RegId RB = B.emitBinOp(BinOpKind::CmpNe, R.Reg, Zero);
    RegId Res = B.emitBinOp(Op == "&&" ? BinOpKind::And : BinOpKind::Or,
                            LB, RB);
    return TypedValue::value(Res, TypeRef::intType());
  } else {
    error(E.Line, "unknown operator '" + Op + "'");
    return TypedValue::invalid();
  }
  return TypedValue::value(B.emitBinOp(Kind, L.Reg, R.Reg),
                           TypeRef::intType());
}

TypedValue Lowering::lowerField(const Expr &E) {
  TypedValue Base = lowerExpr(*E.LHS);
  if (!Base.Ok)
    return TypedValue::invalid();

  if (Base.IsClassRef) {
    auto It = Fields.find({Base.Class.index(), E.Name});
    if (It == Fields.end() || !It->second.IsStatic) {
      error(E.Line, "no static field '" + E.Name + "' in class " +
                        Base.Type.ClassName);
      return TypedValue::invalid();
    }
    return TypedValue::value(B.emitGetStatic(It->second.Id),
                             It->second.Type);
  }

  if (Base.Type.isArray() && E.Name == "length")
    return TypedValue::value(B.emitArrayLen(Base.Reg), TypeRef::intType());

  if (!Base.Type.isClass()) {
    error(E.Line, "field access on a non-object (" + Base.Type.str() + ")");
    return TypedValue::invalid();
  }
  ClassId Cls = Classes.at(Base.Type.ClassName);
  auto It = Fields.find({Cls.index(), E.Name});
  if (It == Fields.end() || It->second.IsStatic) {
    error(E.Line, "no field '" + E.Name + "' in class " +
                      Base.Type.ClassName);
    return TypedValue::invalid();
  }
  return TypedValue::value(B.emitGetField(Base.Reg, It->second.Id),
                           It->second.Type);
}

TypedValue Lowering::lowerCall(const Expr &E) {
  TypedValue Base = lowerExpr(*E.LHS);
  if (!Base.Ok)
    return TypedValue::invalid();

  ClassId Cls;
  bool IsStaticCall = Base.IsClassRef;
  if (IsStaticCall) {
    Cls = Base.Class;
  } else if (Base.Type.isClass()) {
    Cls = Classes.at(Base.Type.ClassName);
  } else {
    error(E.Line, "method call on a non-object (" + Base.Type.str() + ")");
    return TypedValue::invalid();
  }

  auto It = Methods.find({Cls.index(), E.Name});
  if (It == Methods.end()) {
    error(E.Line, "no method '" + E.Name + "' in class " +
                      std::string(P.Names.text(P.classDecl(Cls).Name)));
    return TypedValue::invalid();
  }
  const MethodInfo &Info = It->second;
  if (IsStaticCall && !Info.Ast->IsStatic) {
    error(E.Line, "'" + E.Name + "' is an instance method; call it on an "
                      "object");
    return TypedValue::invalid();
  }
  if (!IsStaticCall && Info.Ast->IsStatic) {
    error(E.Line, "'" + E.Name + "' is static; call it as " +
                      std::string(P.Names.text(P.classDecl(Cls).Name)) +
                      "." + E.Name + "(...)");
    return TypedValue::invalid();
  }
  if (E.Args.size() != Info.Ast->Params.size()) {
    error(E.Line, "'" + E.Name + "' expects " +
                      std::to_string(Info.Ast->Params.size()) +
                      " argument(s), got " + std::to_string(E.Args.size()));
    return TypedValue::invalid();
  }

  std::vector<RegId> Args;
  if (!IsStaticCall)
    Args.push_back(Base.Reg);
  for (size_t I = 0; I != E.Args.size(); ++I) {
    TypedValue V = lowerExpr(*E.Args[I]);
    if (!V.Ok)
      return TypedValue::invalid();
    if (!assignable(V.Type, Info.Ast->Params[I].Type)) {
      error(E.Line, "argument " + std::to_string(I + 1) + " of '" + E.Name +
                        "' expects " + Info.Ast->Params[I].Type.str() +
                        ", got " + V.Type.str());
      return TypedValue::invalid();
    }
    Args.push_back(V.Reg);
  }

  RegId Ret = B.emitCallArgs(Info.Id, Args);
  TypeRef RetType =
      Info.Ast->HasRetType ? Info.Ast->RetType : TypeRef::intType();
  return TypedValue::value(Ret, RetType);
}

} // namespace

CompileResult herd::compileMiniJ(std::string_view Source,
                                 MetricsRegistry *Metrics) {
  CompileResult Result;
  Parser P(Source, Result.Diags);
  ProgramAst Ast;
  {
    Span ParseSpan(Metrics, "parse", "frontend");
    Ast = P.parseProgram();
  }
  if (!Result.Diags.empty())
    return Result;

  Lowering Lower(Result.P, Result.Diags);
  {
    Span LowerSpan(Metrics, "lower", "frontend");
    Lower.run(Ast);
  }
  if (!Result.Diags.empty())
    return Result;

  Span VerifySpan(Metrics, "verify", "frontend");
  std::vector<std::string> Problems = verifyProgram(Result.P);
  for (const std::string &Problem : Problems) {
    Diagnostic D;
    D.Message = "internal: lowered program failed verification: " + Problem;
    Result.Diags.push_back(std::move(D));
  }
  Result.Ok = Result.Diags.empty();
  return Result;
}
