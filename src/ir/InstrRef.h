//===- ir/InstrRef.h - Reference to one instruction -------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable reference to one instruction: (method, block, index).  Valid
/// only against the Program it was created from and only until that method
/// is transformed (instrumentation rebuilds instruction lists).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_IR_INSTRREF_H
#define HERD_IR_INSTRREF_H

#include "ir/Program.h"
#include "support/Ids.h"

#include <functional>

namespace herd {

struct InstrRef {
  MethodId Method;
  BlockId Block;
  uint32_t Index = 0;

  const Instr &get(const Program &P) const {
    return P.method(Method).block(Block).Instrs[Index];
  }

  friend bool operator==(const InstrRef &A, const InstrRef &B) {
    return A.Method == B.Method && A.Block == B.Block && A.Index == B.Index;
  }
  friend bool operator<(const InstrRef &A, const InstrRef &B) {
    if (A.Method != B.Method)
      return A.Method < B.Method;
    if (A.Block != B.Block)
      return A.Block < B.Block;
    return A.Index < B.Index;
  }
};

} // namespace herd

namespace std {
template <> struct hash<herd::InstrRef> {
  size_t operator()(const herd::InstrRef &Ref) const {
    uint64_t Key = (uint64_t(Ref.Method.index()) << 40) ^
                   (uint64_t(Ref.Block.index()) << 20) ^ Ref.Index;
    return hash<uint64_t>()(Key);
  }
};
} // namespace std

#endif // HERD_IR_INSTRREF_H
