//===- ir/Verifier.cpp - MiniJ structural verifier ------------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <deque>
#include <map>
#include <optional>

using namespace herd;

namespace {

/// Collects problems for one method.
class MethodVerifier {
public:
  MethodVerifier(const Program &P, MethodId Id,
                 std::vector<std::string> &Problems)
      : P(P), Id(Id), M(P.method(Id)), Problems(Problems) {}

  void run() {
    if (M.Blocks.empty()) {
      report("method has no blocks");
      return;
    }
    for (size_t BI = 0, BE = M.Blocks.size(); BI != BE; ++BI)
      verifyBlock(BlockId(uint32_t(BI)));
    verifyMonitorNesting();
  }

private:
  void report(const std::string &Message) {
    std::string Out = "in method ";
    Out += P.Names.text(M.Name);
    Out += ": ";
    Out += Message;
    Problems.push_back(std::move(Out));
  }

  bool regInRange(RegId Reg) const {
    return !Reg.isValid() || Reg.index() < M.NumRegs;
  }

  void checkReg(RegId Reg, const char *What) {
    if (!regInRange(Reg))
      report(std::string("register out of range (") + What + ")");
  }

  void checkTarget(BlockId Target) {
    if (!Target.isValid() || Target.index() >= M.Blocks.size())
      report("branch target out of range");
  }

  void verifyBlock(BlockId BId) {
    const BasicBlock &Block = M.block(BId);
    if (!Block.hasTerminator()) {
      report("block bb" + std::to_string(BId.index()) +
             " does not end in a terminator");
      return;
    }
    for (size_t II = 0, IE = Block.Instrs.size(); II != IE; ++II) {
      const Instr &I = Block.Instrs[II];
      if (I.isTerminator() && II + 1 != IE) {
        report("terminator in the middle of bb" +
               std::to_string(BId.index()));
        return;
      }
      checkReg(I.Dst, "dst");
      checkReg(I.A, "a");
      checkReg(I.B, "b");
      checkReg(I.C, "c");
      for (RegId Arg : I.Args)
        checkReg(Arg, "arg");
      switch (I.Op) {
      case Opcode::Branch:
        checkTarget(I.Target);
        checkTarget(I.AltTarget);
        break;
      case Opcode::Jump:
        checkTarget(I.Target);
        break;
      case Opcode::Call:
        if (!I.Callee.isValid() || I.Callee.index() >= P.numMethods())
          report("call to invalid method");
        else if (I.Args.size() != P.method(I.Callee).NumParams)
          report("call arity mismatch for callee " +
                 std::string(P.Names.text(P.method(I.Callee).Name)));
        break;
      default:
        break;
      }
    }
  }

  /// Forward dataflow over the CFG checking that the monitor-region stack is
  /// the same along every path into a block and balanced at returns.
  void verifyMonitorNesting() {
    using Stack = std::vector<uint32_t>;
    std::map<uint32_t, Stack> EntryState;
    std::deque<BlockId> Worklist;
    EntryState[0] = {};
    Worklist.push_back(BlockId(0));

    while (!Worklist.empty()) {
      BlockId BId = Worklist.front();
      Worklist.pop_front();
      const BasicBlock &Block = M.block(BId);
      if (!Block.hasTerminator())
        continue; // already reported
      Stack State = EntryState[BId.index()];
      bool Broken = false;
      for (const Instr &I : Block.Instrs) {
        if (I.Op == Opcode::MonitorEnter) {
          State.push_back(I.SyncRegion);
        } else if (I.Op == Opcode::MonitorExit) {
          if (State.empty() || State.back() != I.SyncRegion) {
            report("monitorexit #" + std::to_string(I.SyncRegion) +
                   " does not match the innermost open region in bb" +
                   std::to_string(BId.index()));
            Broken = true;
            break;
          }
          State.pop_back();
        } else if (I.Op == Opcode::Return && !State.empty()) {
          report("return with open monitor region in bb" +
                 std::to_string(BId.index()));
        }
      }
      if (Broken)
        continue;
      std::vector<BlockId> Succs;
      Block.appendSuccessors(Succs);
      for (BlockId Succ : Succs) {
        auto It = EntryState.find(Succ.index());
        if (It == EntryState.end()) {
          EntryState[Succ.index()] = State;
          Worklist.push_back(Succ);
        } else if (It->second != State) {
          report("inconsistent monitor nesting at entry of bb" +
                 std::to_string(Succ.index()));
        }
      }
    }
  }

  const Program &P;
  [[maybe_unused]] MethodId Id;
  const Method &M;
  std::vector<std::string> &Problems;
};

} // namespace

std::vector<std::string> herd::verifyMethod(const Program &P, MethodId Id) {
  std::vector<std::string> Problems;
  MethodVerifier(P, Id, Problems).run();
  return Problems;
}

std::vector<std::string> herd::verifyProgram(const Program &P) {
  std::vector<std::string> Problems;
  if (!P.MainMethod.isValid()) {
    Problems.push_back("program has no main method");
  } else {
    const Method &Main = P.method(P.MainMethod);
    if (!Main.IsStatic || Main.NumParams != 0)
      Problems.push_back("main must be static and take no parameters");
  }
  for (size_t MI = 0, ME = P.numMethods(); MI != ME; ++MI)
    MethodVerifier(P, MethodId(uint32_t(MI)), Problems).run();
  return Problems;
}
