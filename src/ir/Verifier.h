//===- ir/Verifier.h - MiniJ structural verifier ----------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for MiniJ programs.  The verifier runs
/// after IR construction and after each transformation (instrumentation,
/// loop peeling), catching builder bugs before they become wrong detector
/// results.
///
/// Checked invariants:
///   - every reachable block ends in exactly one terminator;
///   - branch/jump targets are in range;
///   - registers are within the method's register count;
///   - call arities match callee parameter counts;
///   - monitor regions are balanced and well nested along every path and
///     consistent at control-flow joins (Java's structured locking, which
///     Section 4.2's LIFO cache eviction depends on);
///   - the entry method exists, is static, and takes no parameters.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_IR_VERIFIER_H
#define HERD_IR_VERIFIER_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace herd {

/// Verifies \p P; returns a list of human-readable problems (empty when the
/// program is well formed).
std::vector<std::string> verifyProgram(const Program &P);

/// Verifies a single method.
std::vector<std::string> verifyMethod(const Program &P, MethodId Id);

} // namespace herd

#endif // HERD_IR_VERIFIER_H
