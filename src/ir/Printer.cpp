//===- ir/Printer.cpp - Textual MiniJ dump --------------------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include <string>

using namespace herd;

namespace {

void appendReg(std::string &Out, RegId Reg) {
  Out += 'r';
  Out += std::to_string(Reg.index());
}

void appendBlock(std::string &Out, BlockId Block) {
  Out += "bb";
  Out += std::to_string(Block.index());
}

std::string fieldName(const Program &P, FieldId Field) {
  const FieldDecl &Decl = P.field(Field);
  std::string Out(P.Names.text(P.classDecl(Decl.Owner).Name));
  Out += '.';
  Out += P.Names.text(Decl.Name);
  return Out;
}

} // namespace

std::string herd::printInstr(const Program &P, const Instr &I) {
  std::string Out;
  auto Dst = [&] {
    appendReg(Out, I.Dst);
    Out += " = ";
  };
  switch (I.Op) {
  case Opcode::Const:
    Dst();
    Out += std::to_string(I.Imm);
    break;
  case Opcode::Move:
    Dst();
    appendReg(Out, I.A);
    break;
  case Opcode::BinOp:
    Dst();
    Out += binOpName(I.BinKind);
    Out += ' ';
    appendReg(Out, I.A);
    Out += ", ";
    appendReg(Out, I.B);
    break;
  case Opcode::New:
    Dst();
    Out += "new ";
    Out += P.Names.text(P.classDecl(I.Class).Name);
    break;
  case Opcode::NewArray:
    Dst();
    Out += "newarray ";
    appendReg(Out, I.A);
    break;
  case Opcode::ArrayLen:
    Dst();
    Out += "arraylen ";
    appendReg(Out, I.A);
    break;
  case Opcode::GetField:
    Dst();
    appendReg(Out, I.A);
    Out += '.';
    Out += fieldName(P, I.Field);
    break;
  case Opcode::PutField:
    appendReg(Out, I.A);
    Out += '.';
    Out += fieldName(P, I.Field);
    Out += " = ";
    appendReg(Out, I.B);
    break;
  case Opcode::GetStatic:
    Dst();
    Out += fieldName(P, I.Field);
    break;
  case Opcode::PutStatic:
    Out += fieldName(P, I.Field);
    Out += " = ";
    appendReg(Out, I.A);
    break;
  case Opcode::ALoad:
    Dst();
    appendReg(Out, I.A);
    Out += '[';
    appendReg(Out, I.B);
    Out += ']';
    break;
  case Opcode::AStore:
    appendReg(Out, I.A);
    Out += '[';
    appendReg(Out, I.B);
    Out += "] = ";
    appendReg(Out, I.C);
    break;
  case Opcode::Call: {
    if (I.Dst.isValid())
      Dst();
    Out += "call ";
    Out += P.Names.text(P.method(I.Callee).Name);
    Out += '(';
    for (size_t N = 0; N != I.Args.size(); ++N) {
      if (N)
        Out += ", ";
      appendReg(Out, I.Args[N]);
    }
    Out += ')';
    break;
  }
  case Opcode::Branch:
    Out += "branch ";
    appendReg(Out, I.A);
    Out += ", ";
    appendBlock(Out, I.Target);
    Out += ", ";
    appendBlock(Out, I.AltTarget);
    break;
  case Opcode::Jump:
    Out += "jump ";
    appendBlock(Out, I.Target);
    break;
  case Opcode::Return:
    Out += "return";
    if (I.A.isValid()) {
      Out += ' ';
      appendReg(Out, I.A);
    }
    break;
  case Opcode::MonitorEnter:
    Out += "monitorenter ";
    appendReg(Out, I.A);
    Out += " #";
    Out += std::to_string(I.SyncRegion);
    break;
  case Opcode::MonitorExit:
    Out += "monitorexit ";
    appendReg(Out, I.A);
    Out += " #";
    Out += std::to_string(I.SyncRegion);
    break;
  case Opcode::ThreadStart:
    Out += "start ";
    appendReg(Out, I.A);
    break;
  case Opcode::ThreadJoin:
    Out += "join ";
    appendReg(Out, I.A);
    break;
  case Opcode::Print:
    Out += "print ";
    appendReg(Out, I.A);
    break;
  case Opcode::Yield:
    Out += "yield";
    break;
  case Opcode::Trace:
    Out += "trace ";
    switch (I.TraceWhat) {
    case TraceWhatKind::Field:
      appendReg(Out, I.A);
      Out += '.';
      Out += fieldName(P, I.Field);
      break;
    case TraceWhatKind::Array:
      appendReg(Out, I.A);
      Out += "[]";
      break;
    case TraceWhatKind::Static:
      Out += fieldName(P, I.Field);
      break;
    }
    Out += I.Access == AccessKind::Write ? ", W" : ", R";
    break;
  }
  if (I.Site.isValid()) {
    Out += "  ; @";
    Out += P.Names.text(P.site(I.Site).Label);
  }
  return Out;
}

std::string herd::printMethod(const Program &P, MethodId Id) {
  const Method &M = P.method(Id);
  std::string Out;
  Out += "method ";
  if (M.Owner.isValid()) {
    Out += P.Names.text(P.classDecl(M.Owner).Name);
    Out += '.';
  }
  Out += P.Names.text(M.Name);
  Out += " (params=";
  Out += std::to_string(M.NumParams);
  Out += ", regs=";
  Out += std::to_string(M.NumRegs);
  if (M.IsSynchronized)
    Out += ", synchronized";
  Out += ")\n";
  for (size_t BI = 0, BE = M.Blocks.size(); BI != BE; ++BI) {
    Out += "  bb";
    Out += std::to_string(BI);
    Out += ":\n";
    for (const Instr &I : M.Blocks[BI].Instrs) {
      Out += "    ";
      Out += printInstr(P, I);
      Out += '\n';
    }
  }
  return Out;
}

std::string herd::printProgram(const Program &P) {
  std::string Out;
  for (size_t MI = 0, ME = P.numMethods(); MI != ME; ++MI)
    Out += printMethod(P, MethodId(uint32_t(MI)));
  return Out;
}
