//===- ir/Instr.h - MiniJ IR instructions -----------------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJ instruction set.  MiniJ is the small object-oriented concurrent
/// IR that stands in for Java bytecode: it has classes with fields, arrays,
/// monitors (synchronized regions), thread start/join, and potentially
/// excepting instructions (PEIs) — everything the paper's static and dynamic
/// analyses need to observe.
///
/// The `Trace` pseudo-instruction corresponds to the paper's
/// trace(o, f, L, a) (Section 6.1): it is inserted by the instrumentation
/// phase after memory accesses and generates an access event at runtime.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_IR_INSTR_H
#define HERD_IR_INSTR_H

#include "support/Ids.h"

#include <cstdint>
#include <vector>

namespace herd {

/// Whether an access event reads or writes its location.  WRITE is the
/// bottom of the access lattice: WRITE ⊑ READ and WRITE ⊑ WRITE (Defn 2).
enum class AccessKind : uint8_t { Read, Write };

/// Meet on access kinds: equal kinds stay, differing kinds go to WRITE
/// (WRITE is the bottom of the two-point access lattice).
constexpr AccessKind meet(AccessKind A, AccessKind B) {
  return A == B ? A : AccessKind::Write;
}

/// a_i is weaker than or equal to a_j iff a_i = a_j or a_i = WRITE
/// (Definition 2's access-kind component).
constexpr bool isWeakerOrEqual(AccessKind A, AccessKind B) {
  return A == B || A == AccessKind::Write;
}

/// MiniJ opcodes.
enum class Opcode : uint8_t {
  // Data movement and arithmetic.
  Const,     ///< Dst := Imm
  Move,      ///< Dst := A
  BinOp,     ///< Dst := A <BinKind> B   (Div/Mod are PEIs)
  // Allocation.
  New,       ///< Dst := new Class   (an allocation site)
  NewArray,  ///< Dst := new int[A]  (an allocation site)
  ArrayLen,  ///< Dst := A.length    (PEI: null)
  // Heap accesses (all object/array accesses are PEIs: null / bounds).
  GetField,  ///< Dst := A.Field
  PutField,  ///< A.Field := B
  GetStatic, ///< Dst := Class.Field
  PutStatic, ///< Class.Field := A
  ALoad,     ///< Dst := A[B]
  AStore,    ///< A[B] := C
  // Control.
  Call,      ///< Dst := Callee(Args...)   (direct call)
  Branch,    ///< if A != 0 goto Target else goto AltTarget
  Jump,      ///< goto Target
  Return,    ///< return [A]
  // Synchronization and threads.
  MonitorEnter, ///< enter monitor of object A (SyncRegion tags the region)
  MonitorExit,  ///< exit monitor of object A
  ThreadStart,  ///< start thread object A (invokes A's class's run())
  ThreadJoin,   ///< join thread object A
  // Misc.
  Print,     ///< observable output of A (keeps workload results live)
  Yield,     ///< scheduler hint: allow preemption here
  // Instrumentation (inserted by the instr/ phase, never by frontends).
  Trace,     ///< emit access event for A.Field / A[] / Class.Field
};

/// Arithmetic and comparison operators for BinOp.
enum class BinOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  And,
  Or,
  Xor,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
};

/// What kind of location a Trace instruction observes.
enum class TraceWhatKind : uint8_t {
  Field,  ///< instance field A.Field
  Array,  ///< array element of A (one location per array)
  Static, ///< static field Class.Field
};

/// A single MiniJ instruction.  A plain struct: analyses match on Op and
/// read the operand fields relevant to that opcode.
struct Instr {
  Opcode Op = Opcode::Const;
  BinOpKind BinKind = BinOpKind::Add;
  AccessKind Access = AccessKind::Read; ///< for Trace
  TraceWhatKind TraceWhat = TraceWhatKind::Field;

  RegId Dst;
  RegId A;
  RegId B;
  RegId C;
  int64_t Imm = 0;

  ClassId Class;
  FieldId Field;
  MethodId Callee;
  AllocSiteId AllocSite; ///< for New/NewArray

  BlockId Target;
  BlockId AltTarget;

  SiteId Site; ///< source label for reports; no effect on detection

  /// Static synchronized-region id for MonitorEnter/Exit pairs.  Regions
  /// are well nested within a method (Java's structured locking, which the
  /// cache eviction policy of Section 4.2 relies on).
  uint32_t SyncRegion = 0;

  std::vector<RegId> Args; ///< for Call

  /// Returns true if this instruction may throw (a PEI).  PEIs block naive
  /// hoisting of instrumentation out of loops (Section 6.3) and make
  /// post-dominance almost useless in Java-like languages (Section 7.2).
  bool isPEI() const {
    switch (Op) {
    case Opcode::GetField:
    case Opcode::PutField:
    case Opcode::ALoad:
    case Opcode::AStore:
    case Opcode::ArrayLen:
    case Opcode::MonitorEnter:
    case Opcode::MonitorExit:
    case Opcode::ThreadStart:
    case Opcode::ThreadJoin:
      return true;
    case Opcode::BinOp:
      return BinKind == BinOpKind::Div || BinKind == BinOpKind::Mod;
    default:
      return false;
    }
  }

  /// Returns true if this instruction transfers control out of the method
  /// (a call) or crosses a thread-ordering boundary.  These are the kill
  /// points of the static weaker-than analysis: Defn 4 requires no method
  /// invocation between S_i and S_j, and Defn 3 requires no start()/join().
  bool killsStaticWeakerFacts() const {
    return Op == Opcode::Call || Op == Opcode::ThreadStart ||
           Op == Opcode::ThreadJoin;
  }

  /// Returns true if this instruction ends a basic block.
  bool isTerminator() const {
    return Op == Opcode::Branch || Op == Opcode::Jump || Op == Opcode::Return;
  }

  /// Returns true if this instruction defines register Dst.
  bool definesValue() const {
    switch (Op) {
    case Opcode::Const:
    case Opcode::Move:
    case Opcode::BinOp:
    case Opcode::New:
    case Opcode::NewArray:
    case Opcode::ArrayLen:
    case Opcode::GetField:
    case Opcode::GetStatic:
    case Opcode::ALoad:
      return true;
    case Opcode::Call:
      return Dst.isValid();
    default:
      return false;
    }
  }
};

/// Returns a printable mnemonic for an opcode.
const char *opcodeName(Opcode Op);

/// Returns a printable mnemonic for a binary operator.
const char *binOpName(BinOpKind Kind);

} // namespace herd

#endif // HERD_IR_INSTR_H
