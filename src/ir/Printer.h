//===- ir/Printer.h - Textual MiniJ dump ------------------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a MiniJ Program (or a single method) to text for debugging and
/// for the golden-output tests of the instrumentation phase.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_IR_PRINTER_H
#define HERD_IR_PRINTER_H

#include "ir/Program.h"

#include <string>

namespace herd {

/// Renders one method as text, one instruction per line.
std::string printMethod(const Program &P, MethodId Id);

/// Renders the whole program.
std::string printProgram(const Program &P);

/// Renders one instruction (without trailing newline).
std::string printInstr(const Program &P, const Instr &I);

} // namespace herd

#endif // HERD_IR_PRINTER_H
