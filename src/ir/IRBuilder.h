//===- ir/IRBuilder.h - Fluent MiniJ construction API -----------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A builder for constructing MiniJ programs directly in C++.  Workload
/// replicas and unit tests use this API; the textual frontend lowers to the
/// same Program representation.
///
/// Structured-control helpers (ifThen / whileLoop / sync) keep the larger
/// workloads readable and guarantee the well-nested monitor regions that the
/// cache eviction policy of Section 4.2 depends on.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_IR_IRBUILDER_H
#define HERD_IR_IRBUILDER_H

#include "ir/Program.h"

#include <functional>
#include <initializer_list>
#include <string_view>

namespace herd {

/// Stateful builder: positions at a (method, block) insertion point and
/// appends instructions.
class IRBuilder {
public:
  explicit IRBuilder(Program &P) : P(P) {}

  Program &program() { return P; }

  //===--------------------------------------------------------------------===
  // Declarations.
  //===--------------------------------------------------------------------===

  ClassId makeClass(std::string_view Name) { return P.addClass(Name); }

  FieldId makeField(ClassId Cls, std::string_view Name) {
    return P.addField(Cls, Name, /*IsStatic=*/false);
  }

  FieldId makeStaticField(ClassId Cls, std::string_view Name) {
    return P.addField(Cls, Name, /*IsStatic=*/true);
  }

  /// Begins a new method and positions the builder at its entry block.
  /// Parameters occupy r0..r(NumParams-1); r0 is `this` for instance
  /// methods.
  MethodId startMethod(ClassId Cls, std::string_view Name, uint32_t NumParams,
                       bool IsStatic = false, bool IsSynchronized = false);

  /// Begins the program entry point `main` (static, no parameters).
  MethodId startMain();

  /// Repositions the builder at the entry block of an already-declared
  /// method (used by the frontend, which declares signatures first and
  /// lowers bodies later).  The method must have at least its entry block.
  void resumeMethod(MethodId Id);

  /// Returns the i-th parameter register of the current method.
  RegId param(uint32_t I) const;

  /// Returns `this` (r0) of the current instance method.
  RegId thisReg() const { return param(0); }

  //===--------------------------------------------------------------------===
  // Position control.
  //===--------------------------------------------------------------------===

  BlockId newBlock();
  void setBlock(BlockId Block) { CurBlock = Block; }
  BlockId currentBlock() const { return CurBlock; }
  MethodId currentMethod() const { return CurMethod; }

  /// Sets the source label attached to subsequently emitted instructions
  /// (the paper's statement labels such as "T11").  \p Line is the 1-based
  /// source line when known (frontend-lowered programs); 0 otherwise.
  void site(std::string_view Label, uint32_t Line = 0);

  RegId newReg();

  //===--------------------------------------------------------------------===
  // Instructions.
  //===--------------------------------------------------------------------===

  RegId emitConst(int64_t Value);
  RegId emitMove(RegId Src);

  /// Copies \p Src into the *existing* register \p Dst (unlike emitMove,
  /// which allocates a fresh destination).  Used for loop induction
  /// variables and accumulators that must name one register.
  void emitAssign(RegId Dst, RegId Src);
  RegId emitBinOp(BinOpKind Kind, RegId A, RegId B);
  RegId emitNew(ClassId Cls);
  RegId emitNewArray(RegId Length);
  RegId emitArrayLen(RegId Array);
  RegId emitGetField(RegId Obj, FieldId Field);
  void emitPutField(RegId Obj, FieldId Field, RegId Value);
  RegId emitGetStatic(FieldId Field);
  void emitPutStatic(FieldId Field, RegId Value);
  RegId emitALoad(RegId Array, RegId Index);
  void emitAStore(RegId Array, RegId Index, RegId Value);
  RegId emitCall(MethodId Callee, std::initializer_list<RegId> Args);
  RegId emitCallArgs(MethodId Callee, const std::vector<RegId> &Args);
  void emitCallVoid(MethodId Callee, std::initializer_list<RegId> Args);
  void emitThreadStart(RegId ThreadObj);
  void emitThreadJoin(RegId ThreadObj);
  void emitBranch(RegId Cond, BlockId IfTrue, BlockId IfFalse);
  void emitJump(BlockId Target);
  void emitReturn();
  void emitReturn(RegId Value);
  void emitPrint(RegId Value);
  void emitYield();

  /// Raw monitor operations; prefer sync() which guarantees nesting.
  uint32_t emitMonitorEnter(RegId Obj);
  void emitMonitorExit(RegId Obj, uint32_t Region);

  //===--------------------------------------------------------------------===
  // Structured-control helpers.
  //===--------------------------------------------------------------------===

  /// Emits `if (Cond) { Then(); }` and repositions after the join block.
  void ifThen(RegId Cond, const std::function<void()> &Then);

  /// Emits `if (Cond) { Then(); } else { Else(); }`.
  void ifThenElse(RegId Cond, const std::function<void()> &Then,
                  const std::function<void()> &Else);

  /// Emits `while (<EmitCond>() != 0) { Body(); }`.  EmitCond runs in the
  /// loop header block (re-evaluated each iteration) and returns the
  /// condition register.
  void whileLoop(const std::function<RegId()> &EmitCond,
                 const std::function<void()> &Body);

  /// Emits a counted loop `for (IVar = Lo; IVar < Hi; IVar += Step)`.
  /// \p Body receives the induction-variable register.
  void forLoop(int64_t Lo, RegId Hi, int64_t Step,
               const std::function<void(RegId)> &Body);

  /// Emits `synchronized (Obj) { Body(); }` with a fresh region id.
  void sync(RegId Obj, const std::function<void()> &Body);

private:
  Instr &append(Instr I);
  Method &curMethod();

  Program &P;
  MethodId CurMethod;
  BlockId CurBlock;
  SiteId CurSite;
  uint32_t NextSyncRegion = 1;
};

} // namespace herd

#endif // HERD_IR_IRBUILDER_H
