//===- ir/Program.h - MiniJ program container -------------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJ program representation: classes, fields, methods, basic blocks
/// and source sites.  A Program owns everything and hands out dense ids.
///
/// MiniJ deliberately has no inheritance: the paper's analyses dispatch on
/// allocation sites and direct calls, and its benchmarks' races do not
/// depend on virtual dispatch.  A class whose name has a `run` method can be
/// started as a thread (ThreadStart performs the only dynamic dispatch).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_IR_PROGRAM_H
#define HERD_IR_PROGRAM_H

#include "ir/Instr.h"
#include "support/Ids.h"
#include "support/StringInterner.h"

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

namespace herd {

/// A basic block: straight-line instructions ending in one terminator.
class BasicBlock {
public:
  std::vector<Instr> Instrs;

  bool hasTerminator() const {
    return !Instrs.empty() && Instrs.back().isTerminator();
  }

  const Instr &terminator() const {
    assert(hasTerminator() && "block lacks a terminator");
    return Instrs.back();
  }

  /// Appends this block's successors to \p Out (0, 1 or 2 of them).
  void appendSuccessors(std::vector<BlockId> &Out) const {
    if (!hasTerminator())
      return;
    const Instr &Term = terminator();
    if (Term.Op == Opcode::Jump) {
      Out.push_back(Term.Target);
    } else if (Term.Op == Opcode::Branch) {
      Out.push_back(Term.Target);
      if (Term.AltTarget != Term.Target)
        Out.push_back(Term.AltTarget);
    }
  }
};

/// A field declaration.  Static fields live on a per-class pseudo-object at
/// runtime; instance fields live in each object's slot vector.
struct FieldDecl {
  Symbol Name;
  ClassId Owner;
  uint32_t SlotIndex = 0; ///< index into the object's (or class's) slots
  bool IsStatic = false;
};

/// A method: registers r0..rN; parameters arrive in r0.. (r0 = this for
/// instance methods).  Block 0 is the entry block.
struct Method {
  Symbol Name;
  ClassId Owner;               ///< invalid for free functions (main)
  uint32_t NumParams = 0;      ///< including `this` when non-static
  uint32_t NumRegs = 0;
  bool IsStatic = false;
  bool IsSynchronized = false; ///< synchronized instance method
  std::vector<BasicBlock> Blocks;

  BasicBlock &block(BlockId Id) { return Blocks[Id.index()]; }
  const BasicBlock &block(BlockId Id) const { return Blocks[Id.index()]; }
};

/// A class declaration: a bag of instance fields plus methods.
struct ClassDecl {
  Symbol Name;
  std::vector<FieldId> InstanceFields;
  std::vector<FieldId> StaticFields;
  std::vector<MethodId> Methods;
  MethodId RunMethod; ///< resolved `run()` if present (thread entry point)
};

/// A source site: the statement label used when reporting races (the paper's
/// T01/T11/... labels in Figure 2).  Line is the 1-based source line when
/// the site came from the MiniJ frontend; 0 for synthetic/workload sites,
/// whose symbolic labels are the only location they have.
struct SourceSite {
  Symbol Label;
  MethodId InMethod;
  uint32_t Line = 0;
};

/// An allocation site: `new C` / `new int[n]`.  Abstract objects of the
/// points-to analysis are allocation sites (Section 5.3).
struct AllocSite {
  ClassId Class;      ///< invalid for arrays
  MethodId InMethod;
  bool IsArray = false;
};

/// The whole-program container.
class Program {
public:
  StringInterner Names;

  ClassId addClass(std::string_view Name) {
    ClassId Id(uint32_t(Classes.size()));
    Classes.push_back(ClassDecl{Names.intern(Name), {}, {}, {}, {}});
    return Id;
  }

  FieldId addField(ClassId Owner, std::string_view Name, bool IsStatic) {
    FieldId Id(uint32_t(Fields.size()));
    ClassDecl &Cls = Classes[Owner.index()];
    auto &List = IsStatic ? Cls.StaticFields : Cls.InstanceFields;
    Fields.push_back(
        FieldDecl{Names.intern(Name), Owner, uint32_t(List.size()), IsStatic});
    List.push_back(Id);
    return Id;
  }

  MethodId addMethod(ClassId Owner, std::string_view Name, uint32_t NumParams,
                     bool IsStatic, bool IsSynchronized) {
    MethodId Id(uint32_t(Methods.size()));
    Method M;
    M.Name = Names.intern(Name);
    M.Owner = Owner;
    M.NumParams = NumParams;
    M.NumRegs = NumParams;
    M.IsStatic = IsStatic;
    M.IsSynchronized = IsSynchronized;
    Methods.push_back(std::move(M));
    if (Owner.isValid()) {
      Classes[Owner.index()].Methods.push_back(Id);
      if (Name == "run")
        Classes[Owner.index()].RunMethod = Id;
    }
    return Id;
  }

  SiteId addSite(std::string_view Label, MethodId InMethod,
                 uint32_t Line = 0) {
    SiteId Id(uint32_t(Sites.size()));
    Sites.push_back(SourceSite{Names.intern(Label), InMethod, Line});
    return Id;
  }

  AllocSiteId addAllocSite(ClassId Class, MethodId InMethod, bool IsArray) {
    AllocSiteId Id(uint32_t(AllocSites.size()));
    AllocSites.push_back(AllocSite{Class, InMethod, IsArray});
    return Id;
  }

  ClassDecl &classDecl(ClassId Id) { return Classes[Id.index()]; }
  const ClassDecl &classDecl(ClassId Id) const { return Classes[Id.index()]; }

  FieldDecl &field(FieldId Id) { return Fields[Id.index()]; }
  const FieldDecl &field(FieldId Id) const { return Fields[Id.index()]; }

  Method &method(MethodId Id) { return Methods[Id.index()]; }
  const Method &method(MethodId Id) const { return Methods[Id.index()]; }

  const SourceSite &site(SiteId Id) const { return Sites[Id.index()]; }
  const AllocSite &allocSite(AllocSiteId Id) const {
    return AllocSites[Id.index()];
  }

  size_t numClasses() const { return Classes.size(); }
  size_t numFields() const { return Fields.size(); }
  size_t numMethods() const { return Methods.size(); }
  size_t numSites() const { return Sites.size(); }
  size_t numAllocSites() const { return AllocSites.size(); }

  /// Looks up a method by name within a class; returns invalid if absent.
  MethodId findMethod(ClassId Cls, std::string_view Name) const;

  /// Looks up a class by name; returns invalid if absent.
  ClassId findClass(std::string_view Name) const;

  /// Looks up a field by name within a class; returns invalid if absent.
  FieldId findField(ClassId Cls, std::string_view Name) const;

  /// Counts all instructions across all methods (the "statements" measure
  /// used for Table 1 program characteristics).
  size_t countInstructions() const;

  /// The designated entry point; must be a static method with no params.
  MethodId MainMethod;

  /// The source artifact this program came from (a .mj path for frontend
  /// programs, a workload name otherwise).  Purely diagnostic: report
  /// renderers use it as the artifact URI; empty means unknown.
  std::string SourceName;

private:
  std::vector<ClassDecl> Classes;
  std::vector<FieldDecl> Fields;
  std::vector<Method> Methods;
  std::vector<SourceSite> Sites;
  std::vector<AllocSite> AllocSites;
};

} // namespace herd

#endif // HERD_IR_PROGRAM_H
