//===- ir/Program.cpp - MiniJ program container ---------------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "support/Compiler.h"

using namespace herd;

MethodId Program::findMethod(ClassId Cls, std::string_view Name) const {
  if (!Cls.isValid())
    return MethodId::invalid();
  for (MethodId Id : Classes[Cls.index()].Methods)
    if (Names.text(Methods[Id.index()].Name) == Name)
      return Id;
  return MethodId::invalid();
}

ClassId Program::findClass(std::string_view Name) const {
  for (size_t I = 0, E = Classes.size(); I != E; ++I)
    if (Names.text(Classes[I].Name) == Name)
      return ClassId(uint32_t(I));
  return ClassId::invalid();
}

FieldId Program::findField(ClassId Cls, std::string_view Name) const {
  if (!Cls.isValid())
    return FieldId::invalid();
  const ClassDecl &Decl = Classes[Cls.index()];
  for (FieldId Id : Decl.InstanceFields)
    if (Names.text(Fields[Id.index()].Name) == Name)
      return Id;
  for (FieldId Id : Decl.StaticFields)
    if (Names.text(Fields[Id.index()].Name) == Name)
      return Id;
  return FieldId::invalid();
}

size_t Program::countInstructions() const {
  size_t Count = 0;
  for (const Method &M : Methods)
    for (const BasicBlock &Block : M.Blocks)
      Count += Block.Instrs.size();
  return Count;
}

const char *herd::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Move:
    return "move";
  case Opcode::BinOp:
    return "binop";
  case Opcode::New:
    return "new";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::ArrayLen:
    return "arraylen";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::GetStatic:
    return "getstatic";
  case Opcode::PutStatic:
    return "putstatic";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::Call:
    return "call";
  case Opcode::Branch:
    return "branch";
  case Opcode::Jump:
    return "jump";
  case Opcode::Return:
    return "return";
  case Opcode::MonitorEnter:
    return "monitorenter";
  case Opcode::MonitorExit:
    return "monitorexit";
  case Opcode::ThreadStart:
    return "start";
  case Opcode::ThreadJoin:
    return "join";
  case Opcode::Print:
    return "print";
  case Opcode::Yield:
    return "yield";
  case Opcode::Trace:
    return "trace";
  }
  HERD_UNREACHABLE("unknown opcode");
}

const char *herd::binOpName(BinOpKind Kind) {
  switch (Kind) {
  case BinOpKind::Add:
    return "add";
  case BinOpKind::Sub:
    return "sub";
  case BinOpKind::Mul:
    return "mul";
  case BinOpKind::Div:
    return "div";
  case BinOpKind::Mod:
    return "mod";
  case BinOpKind::And:
    return "and";
  case BinOpKind::Or:
    return "or";
  case BinOpKind::Xor:
    return "xor";
  case BinOpKind::CmpEq:
    return "cmpeq";
  case BinOpKind::CmpNe:
    return "cmpne";
  case BinOpKind::CmpLt:
    return "cmplt";
  case BinOpKind::CmpLe:
    return "cmple";
  case BinOpKind::CmpGt:
    return "cmpgt";
  case BinOpKind::CmpGe:
    return "cmpge";
  }
  HERD_UNREACHABLE("unknown binop");
}
