//===- ir/IRBuilder.cpp - Fluent MiniJ construction API -------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include "support/Compiler.h"

using namespace herd;

Method &IRBuilder::curMethod() {
  assert(CurMethod.isValid() && "no current method");
  return P.method(CurMethod);
}

Instr &IRBuilder::append(Instr I) {
  I.Site = CurSite;
  Method &M = curMethod();
  BasicBlock &Block = M.block(CurBlock);
  assert(!Block.hasTerminator() && "appending past a terminator");
  Block.Instrs.push_back(std::move(I));
  return Block.Instrs.back();
}

MethodId IRBuilder::startMethod(ClassId Cls, std::string_view Name,
                                uint32_t NumParams, bool IsStatic,
                                bool IsSynchronized) {
  assert((IsStatic || NumParams >= 1) &&
         "instance methods take `this` as their first parameter");
  CurMethod = P.addMethod(Cls, Name, NumParams, IsStatic, IsSynchronized);
  curMethod().Blocks.emplace_back();
  CurBlock = BlockId(0);
  CurSite = SiteId::invalid();
  return CurMethod;
}

MethodId IRBuilder::startMain() {
  MethodId Main = startMethod(ClassId::invalid(), "main", /*NumParams=*/0,
                              /*IsStatic=*/true);
  P.MainMethod = Main;
  return Main;
}

void IRBuilder::resumeMethod(MethodId Id) {
  assert(Id.isValid() && !P.method(Id).Blocks.empty() &&
         "resumeMethod requires a declared method with an entry block");
  CurMethod = Id;
  CurBlock = BlockId(0);
  CurSite = SiteId::invalid();
}

RegId IRBuilder::param(uint32_t I) const {
  assert(CurMethod.isValid() && I < P.method(CurMethod).NumParams &&
         "parameter index out of range");
  return RegId(I);
}

BlockId IRBuilder::newBlock() {
  Method &M = curMethod();
  M.Blocks.emplace_back();
  return BlockId(uint32_t(M.Blocks.size() - 1));
}

void IRBuilder::site(std::string_view Label, uint32_t Line) {
  CurSite = P.addSite(Label, CurMethod, Line);
}

RegId IRBuilder::newReg() { return RegId(curMethod().NumRegs++); }

RegId IRBuilder::emitConst(int64_t Value) {
  Instr I;
  I.Op = Opcode::Const;
  I.Dst = newReg();
  I.Imm = Value;
  return append(I).Dst;
}

RegId IRBuilder::emitMove(RegId Src) {
  Instr I;
  I.Op = Opcode::Move;
  I.Dst = newReg();
  I.A = Src;
  return append(I).Dst;
}

void IRBuilder::emitAssign(RegId Dst, RegId Src) {
  Instr I;
  I.Op = Opcode::Move;
  I.Dst = Dst;
  I.A = Src;
  append(I);
}

RegId IRBuilder::emitBinOp(BinOpKind Kind, RegId A, RegId B) {
  Instr I;
  I.Op = Opcode::BinOp;
  I.BinKind = Kind;
  I.Dst = newReg();
  I.A = A;
  I.B = B;
  return append(I).Dst;
}

RegId IRBuilder::emitNew(ClassId Cls) {
  Instr I;
  I.Op = Opcode::New;
  I.Dst = newReg();
  I.Class = Cls;
  I.AllocSite = P.addAllocSite(Cls, CurMethod, /*IsArray=*/false);
  return append(I).Dst;
}

RegId IRBuilder::emitNewArray(RegId Length) {
  Instr I;
  I.Op = Opcode::NewArray;
  I.Dst = newReg();
  I.A = Length;
  I.AllocSite =
      P.addAllocSite(ClassId::invalid(), CurMethod, /*IsArray=*/true);
  return append(I).Dst;
}

RegId IRBuilder::emitArrayLen(RegId Array) {
  Instr I;
  I.Op = Opcode::ArrayLen;
  I.Dst = newReg();
  I.A = Array;
  return append(I).Dst;
}

RegId IRBuilder::emitGetField(RegId Obj, FieldId Field) {
  assert(!P.field(Field).IsStatic && "use emitGetStatic for static fields");
  Instr I;
  I.Op = Opcode::GetField;
  I.Dst = newReg();
  I.A = Obj;
  I.Field = Field;
  return append(I).Dst;
}

void IRBuilder::emitPutField(RegId Obj, FieldId Field, RegId Value) {
  assert(!P.field(Field).IsStatic && "use emitPutStatic for static fields");
  Instr I;
  I.Op = Opcode::PutField;
  I.A = Obj;
  I.B = Value;
  I.Field = Field;
  append(I);
}

RegId IRBuilder::emitGetStatic(FieldId Field) {
  assert(P.field(Field).IsStatic && "emitGetStatic requires a static field");
  Instr I;
  I.Op = Opcode::GetStatic;
  I.Dst = newReg();
  I.Class = P.field(Field).Owner;
  I.Field = Field;
  return append(I).Dst;
}

void IRBuilder::emitPutStatic(FieldId Field, RegId Value) {
  assert(P.field(Field).IsStatic && "emitPutStatic requires a static field");
  Instr I;
  I.Op = Opcode::PutStatic;
  I.Class = P.field(Field).Owner;
  I.Field = Field;
  I.A = Value;
  append(I);
}

RegId IRBuilder::emitALoad(RegId Array, RegId Index) {
  Instr I;
  I.Op = Opcode::ALoad;
  I.Dst = newReg();
  I.A = Array;
  I.B = Index;
  return append(I).Dst;
}

void IRBuilder::emitAStore(RegId Array, RegId Index, RegId Value) {
  Instr I;
  I.Op = Opcode::AStore;
  I.A = Array;
  I.B = Index;
  I.C = Value;
  append(I);
}

RegId IRBuilder::emitCall(MethodId Callee, std::initializer_list<RegId> Args) {
  assert(Args.size() == P.method(Callee).NumParams &&
         "call arity mismatch");
  Instr I;
  I.Op = Opcode::Call;
  I.Dst = newReg();
  I.Callee = Callee;
  I.Args.assign(Args.begin(), Args.end());
  return append(I).Dst;
}

RegId IRBuilder::emitCallArgs(MethodId Callee,
                              const std::vector<RegId> &Args) {
  assert(Args.size() == P.method(Callee).NumParams && "call arity mismatch");
  Instr I;
  I.Op = Opcode::Call;
  I.Dst = newReg();
  I.Callee = Callee;
  I.Args = Args;
  return append(I).Dst;
}

void IRBuilder::emitCallVoid(MethodId Callee,
                             std::initializer_list<RegId> Args) {
  assert(Args.size() == P.method(Callee).NumParams &&
         "call arity mismatch");
  Instr I;
  I.Op = Opcode::Call;
  I.Callee = Callee;
  I.Args.assign(Args.begin(), Args.end());
  append(I);
}

void IRBuilder::emitThreadStart(RegId ThreadObj) {
  Instr I;
  I.Op = Opcode::ThreadStart;
  I.A = ThreadObj;
  append(I);
}

void IRBuilder::emitThreadJoin(RegId ThreadObj) {
  Instr I;
  I.Op = Opcode::ThreadJoin;
  I.A = ThreadObj;
  append(I);
}

void IRBuilder::emitBranch(RegId Cond, BlockId IfTrue, BlockId IfFalse) {
  Instr I;
  I.Op = Opcode::Branch;
  I.A = Cond;
  I.Target = IfTrue;
  I.AltTarget = IfFalse;
  append(I);
}

void IRBuilder::emitJump(BlockId Target) {
  Instr I;
  I.Op = Opcode::Jump;
  I.Target = Target;
  append(I);
}

void IRBuilder::emitReturn() {
  Instr I;
  I.Op = Opcode::Return;
  append(I);
}

void IRBuilder::emitReturn(RegId Value) {
  Instr I;
  I.Op = Opcode::Return;
  I.A = Value;
  append(I);
}

void IRBuilder::emitPrint(RegId Value) {
  Instr I;
  I.Op = Opcode::Print;
  I.A = Value;
  append(I);
}

void IRBuilder::emitYield() {
  Instr I;
  I.Op = Opcode::Yield;
  append(I);
}

uint32_t IRBuilder::emitMonitorEnter(RegId Obj) {
  Instr I;
  I.Op = Opcode::MonitorEnter;
  I.A = Obj;
  I.SyncRegion = NextSyncRegion++;
  return append(I).SyncRegion;
}

void IRBuilder::emitMonitorExit(RegId Obj, uint32_t Region) {
  Instr I;
  I.Op = Opcode::MonitorExit;
  I.A = Obj;
  I.SyncRegion = Region;
  append(I);
}

void IRBuilder::ifThen(RegId Cond, const std::function<void()> &Then) {
  BlockId ThenBlock = newBlock();
  BlockId JoinBlock = newBlock();
  emitBranch(Cond, ThenBlock, JoinBlock);
  setBlock(ThenBlock);
  Then();
  if (!curMethod().block(CurBlock).hasTerminator())
    emitJump(JoinBlock);
  setBlock(JoinBlock);
}

void IRBuilder::ifThenElse(RegId Cond, const std::function<void()> &Then,
                           const std::function<void()> &Else) {
  BlockId ThenBlock = newBlock();
  BlockId ElseBlock = newBlock();
  BlockId JoinBlock = newBlock();
  emitBranch(Cond, ThenBlock, ElseBlock);
  setBlock(ThenBlock);
  Then();
  if (!curMethod().block(CurBlock).hasTerminator())
    emitJump(JoinBlock);
  setBlock(ElseBlock);
  Else();
  if (!curMethod().block(CurBlock).hasTerminator())
    emitJump(JoinBlock);
  setBlock(JoinBlock);
}

void IRBuilder::whileLoop(const std::function<RegId()> &EmitCond,
                          const std::function<void()> &Body) {
  BlockId Header = newBlock();
  emitJump(Header);
  setBlock(Header);
  RegId Cond = EmitCond();
  BlockId BodyBlock = newBlock();
  BlockId ExitBlock = newBlock();
  emitBranch(Cond, BodyBlock, ExitBlock);
  setBlock(BodyBlock);
  Body();
  if (!curMethod().block(CurBlock).hasTerminator())
    emitJump(Header);
  setBlock(ExitBlock);
}

void IRBuilder::forLoop(int64_t Lo, RegId Hi, int64_t Step,
                        const std::function<void(RegId)> &Body) {
  assert(Step != 0 && "zero loop step never terminates");
  // The induction variable lives in a dedicated register that the loop
  // updates in place, so `IVar` names the same value in every iteration.
  RegId IVar = emitConst(Lo);
  whileLoop(
      [&] { return emitBinOp(BinOpKind::CmpLt, IVar, Hi); },
      [&] {
        Body(IVar);
        RegId StepReg = emitConst(Step);
        emitAssign(IVar, emitBinOp(BinOpKind::Add, IVar, StepReg));
      });
}

void IRBuilder::sync(RegId Obj, const std::function<void()> &Body) {
  uint32_t Region = emitMonitorEnter(Obj);
  Body();
  emitMonitorExit(Obj, Region);
}
