//===- support/SmallSortedIdSet.h - Inline-buffer sorted set ----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted id set with an inline small buffer: the first InlineCapacity
/// elements live inside the object, and only larger sets spill to the heap.
/// Race records carry two locksets each, and Section 4.2's observation that
/// programs hold 0-2 locks at a time means virtually every reported lockset
/// fits inline — so building and copying race records stops touching the
/// allocator, which profiling showed was the entire cold-pass allocation
/// wall (race-heavy streams paid ~2 allocations per event just copying
/// SortedIdSets into RaceRecord and AccessTrie::Outcome).
///
/// The API is the read-side subset of SortedIdSet (insert / contains /
/// iteration) that race reporting needs; it is not a drop-in replacement
/// for the full set type, which the detector's per-thread lockset
/// maintenance still uses.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_SMALLSORTEDIDSET_H
#define HERD_SUPPORT_SMALLSORTEDIDSET_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace herd {

/// A sorted, duplicate-free set of \p Id with inline storage for up to
/// \p InlineCapacity elements.  Invariant: while size() <= InlineCapacity
/// every element lives in the inline array; once a set outgrows it, all
/// elements move to the heap vector (and stay there until clear()).
template <typename Id, uint32_t InlineCapacity> class SmallSortedIdSet {
public:
  using value_type = Id;
  using const_iterator = const Id *;

  SmallSortedIdSet() = default;

  /// Inserts \p Value, keeping the set sorted; no-op if already present.
  void insert(Id Value) {
    Id *First = data();
    Id *Last = First + Count;
    Id *Pos = std::lower_bound(First, Last, Value);
    if (Pos != Last && *Pos == Value)
      return;
    if (Count < InlineCapacity) {
      std::move_backward(Pos, Last, Last + 1);
      *Pos = Value;
      ++Count;
      return;
    }
    if (Count == InlineCapacity)
      Spill.assign(Inline.begin(), Inline.end());
    Spill.insert(Spill.begin() + (Pos - First), Value);
    ++Count;
  }

  bool contains(Id Value) const {
    const Id *First = data();
    const Id *Last = First + Count;
    const Id *Pos = std::lower_bound(First, Last, Value);
    return Pos != Last && *Pos == Value;
  }

  /// Replaces the contents with sorted range \p R (any container of Id
  /// iterated in ascending order, e.g. a SortedIdSet).
  template <typename Range> void assign(const Range &R) {
    clear();
    for (Id Value : R)
      insert(Value);
  }

  void clear() {
    Count = 0;
    Spill.clear();
  }

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + Count; }

  friend bool operator==(const SmallSortedIdSet &A, const SmallSortedIdSet &B) {
    return A.Count == B.Count && std::equal(A.begin(), A.end(), B.begin());
  }
  friend bool operator!=(const SmallSortedIdSet &A, const SmallSortedIdSet &B) {
    return !(A == B);
  }

private:
  const Id *data() const {
    return Count <= InlineCapacity ? Inline.data() : Spill.data();
  }
  Id *data() { return Count <= InlineCapacity ? Inline.data() : Spill.data(); }

  std::array<Id, InlineCapacity> Inline{};
  std::vector<Id> Spill; ///< holds all elements once Count > InlineCapacity
  uint32_t Count = 0;
};

} // namespace herd

#endif // HERD_SUPPORT_SMALLSORTEDIDSET_H
