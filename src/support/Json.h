//===- support/Json.h - Minimal deterministic JSON writer -------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny streaming JSON writer used by the observability layer (`herd
/// --stats=json`, `--trace-json`).  No reflection, no DOM: callers open
/// objects/arrays and emit members in order, and the writer inserts commas
/// and escapes strings.  Output is deterministic byte-for-byte for a
/// deterministic call sequence, which is what the golden-file tests pin.
///
/// Doubles are printed with "%.17g"-free shortest-round-trip formatting is
/// deliberately avoided: observability values are either integers or
/// fixed-precision seconds, so value(double) uses "%.6f" with trailing-zero
/// trimming — stable across libc versions.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_JSON_H
#define HERD_SUPPORT_JSON_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace herd {

/// Streaming JSON writer building into a std::string.
class JsonWriter {
public:
  explicit JsonWriter(std::string &Out) : Out(Out) {}

  void beginObject() {
    preValue();
    Out += '{';
    Stack.push_back(State::ObjectFirst);
  }
  void endObject() {
    assert(!Stack.empty() && (Stack.back() == State::ObjectFirst ||
                              Stack.back() == State::ObjectNext));
    Stack.pop_back();
    Out += '}';
  }
  void beginArray() {
    preValue();
    Out += '[';
    Stack.push_back(State::ArrayFirst);
  }
  void endArray() {
    assert(!Stack.empty() && (Stack.back() == State::ArrayFirst ||
                              Stack.back() == State::ArrayNext));
    Stack.pop_back();
    Out += ']';
  }

  /// Emits `"Name":`; the next value() / begin*() call supplies the value.
  void key(std::string_view Name) {
    assert(!Stack.empty() && (Stack.back() == State::ObjectFirst ||
                              Stack.back() == State::ObjectNext) &&
           "key() outside an object");
    if (Stack.back() == State::ObjectNext)
      Out += ',';
    Stack.back() = State::ObjectNext;
    appendEscaped(Name);
    Out += ':';
    PendingKey = true;
  }

  void value(std::string_view S) {
    preValue();
    appendEscaped(S);
  }
  void value(const char *S) { value(std::string_view(S)); }
  void value(uint64_t V) {
    preValue();
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
    Out += Buf;
  }
  void value(int64_t V) {
    preValue();
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%lld", (long long)V);
    Out += Buf;
  }
  void value(uint32_t V) { value(uint64_t(V)); }
  void value(int V) { value(int64_t(V)); }
  void value(bool B) {
    preValue();
    Out += B ? "true" : "false";
  }
  void null() {
    preValue();
    Out += "null";
  }
  /// Fixed six-decimal formatting with trailing zeros trimmed ("0.125",
  /// "3.0", "0.000001"): stable across platforms, enough resolution for
  /// second-valued timings.
  void value(double V) {
    preValue();
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", V);
    std::string S(Buf);
    while (S.size() > 1 && S.back() == '0' &&
           S[S.size() - 2] != '.') // keep one digit after the point
      S.pop_back();
    Out += S;
  }

  /// key() + value() in one call, for scalar members.
  template <typename T> void member(std::string_view Name, T V) {
    key(Name);
    value(V);
  }

  bool done() const { return Stack.empty(); }

private:
  enum class State : uint8_t { ObjectFirst, ObjectNext, ArrayFirst, ArrayNext };

  void preValue() {
    if (PendingKey) { // value directly after key(): comma already emitted
      PendingKey = false;
      return;
    }
    if (Stack.empty())
      return; // the root value
    assert((Stack.back() == State::ArrayFirst ||
            Stack.back() == State::ArrayNext) &&
           "object members need key() first");
    if (Stack.back() == State::ArrayNext)
      Out += ',';
    Stack.back() = State::ArrayNext;
  }

  void appendEscaped(std::string_view S) {
    Out += '"';
    for (char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\r':
        Out += "\\r";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
  }

  std::string &Out;
  std::vector<State> Stack;
  bool PendingKey = false;
};

} // namespace herd

#endif // HERD_SUPPORT_JSON_H
