//===- support/FlatTable.h - Open-addressed location table ------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An open-addressed hash table from LocationKey to a mapped value, replacing
/// the std::unordered_map in the detector's per-event path.  One contiguous
/// slot array (power-of-two capacity, linear probing, SplitMix64-mixed keys)
/// turns the old two-cache-miss node-based lookup into a single probe that
/// usually stays within one cache line, and inserting never allocates except
/// at the rare capacity doublings.
///
/// The table is insert-only — the detector never forgets a location — which
/// keeps growth tombstone-free: rehash simply re-probes every live slot into
/// the doubled array.  The all-ones key (a default-constructed LocationKey,
/// which no real (object, field) pair produces) marks empty slots, so there
/// is no per-slot occupancy byte.
///
/// Mapped values must be default-constructible and movable.  References
/// returned by find()/tryEmplace() are invalidated by the next insertion
/// that grows the table, like every open-addressed map.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_FLATTABLE_H
#define HERD_SUPPORT_FLATTABLE_H

#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace herd {

/// Insert-only open-addressed map from LocationKey to \p Value.
template <typename Value> class LocationTable {
public:
  LocationTable() = default;

  /// Looks up \p Key, inserting a default-constructed value if absent.
  /// Returns the mapped value and whether an insertion happened.
  std::pair<Value *, bool> tryEmplace(LocationKey Key) {
    assert(Key != LocationKey() && "the empty-slot sentinel cannot be a key");
    if (Count + 1 > (Slots.size() / 4) * 3)
      grow();
    size_t Index = probeOf(Key);
    while (Slots[Index].Key != LocationKey()) {
      if (Slots[Index].Key == Key)
        return {&Slots[Index].Mapped, false};
      Index = (Index + 1) & (Slots.size() - 1);
    }
    Slots[Index].Key = Key;
    ++Count;
    return {&Slots[Index].Mapped, true};
  }

  /// Returns the value mapped to \p Key, or nullptr.
  Value *find(LocationKey Key) {
    if (Slots.empty())
      return nullptr;
    size_t Index = probeOf(Key);
    while (Slots[Index].Key != LocationKey()) {
      if (Slots[Index].Key == Key)
        return &Slots[Index].Mapped;
      Index = (Index + 1) & (Slots.size() - 1);
    }
    return nullptr;
  }
  const Value *find(LocationKey Key) const {
    return const_cast<LocationTable *>(this)->find(Key);
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn> void forEach(Fn Visit) const {
    for (const Slot &S : Slots)
      if (S.Key != LocationKey())
        Visit(S.Key, S.Mapped);
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return Slots.size(); }

  /// Smallest valid slot-array capacity that holds \p Expected entries
  /// without triggering growth: power of two, at least the 64-slot floor,
  /// load factor kept under the 3/4 growth threshold.  Saturates at the
  /// largest power-of-two capacity instead of overflowing for absurd
  /// requests.
  static size_t capacityFor(size_t Expected) {
    const size_t MaxCapacity = ~(~size_t(0) >> 1); // largest power of two
    size_t Capacity = 64;
    while (Expected > (Capacity / 4) * 3) {
      if (Capacity >= MaxCapacity)
        return MaxCapacity;
      Capacity *= 2;
    }
    return Capacity;
  }

  /// Pre-sizes the table for \p Expected entries so inserting that many
  /// keys never rehashes.  Never shrinks; safe to call on a live table.
  void reserve(size_t Expected) {
    size_t Target = capacityFor(Expected);
    if (Target > Slots.size())
      rehash(Target);
  }

private:
  struct Slot {
    LocationKey Key; ///< default-constructed (all-ones raw) == empty
    Value Mapped;
  };

  size_t probeOf(LocationKey Key) const {
    // SplitMix64 finalizer (same mix as std::hash<LocationKey>): the raw
    // keys pack small dense integers whose low bits collide badly with a
    // plain power-of-two mask.
    uint64_t X = Key.raw();
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ull;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebull;
    X ^= X >> 31;
    return size_t(X) & (Slots.size() - 1);
  }

  void grow() { rehash(Slots.empty() ? 64 : Slots.size() * 2); }

  void rehash(size_t NewCapacity) {
    std::vector<Slot> Old = std::move(Slots);
    Slots = std::vector<Slot>();
    Slots.resize(NewCapacity); // default-inserts; Value may be move-only
    for (Slot &S : Old) {
      if (S.Key == LocationKey())
        continue;
      size_t Index = probeOf(S.Key);
      while (Slots[Index].Key != LocationKey())
        Index = (Index + 1) & (Slots.size() - 1);
      Slots[Index] = std::move(S);
    }
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

} // namespace herd

#endif // HERD_SUPPORT_FLATTABLE_H
