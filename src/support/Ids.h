//===- support/Ids.h - Strong identifier types ------------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly-typed integer identifiers for the entities that flow between the
/// IR, the runtime and the detector.  Using distinct types (rather than bare
/// `unsigned`) catches category errors such as passing a lock id where a
/// thread id is expected at compile time.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_IDS_H
#define HERD_SUPPORT_IDS_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace herd {

/// CRTP base for strongly-typed dense ids.  Each id wraps a 32-bit index and
/// exposes an explicit invalid state.
template <typename Derived> class StrongId {
public:
  static constexpr uint32_t InvalidIndex =
      std::numeric_limits<uint32_t>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(uint32_t Index) : Index(Index) {}

  /// Returns the raw dense index; only valid ids may be unwrapped.
  constexpr uint32_t index() const { return Index; }
  constexpr bool isValid() const { return Index != InvalidIndex; }

  static constexpr Derived invalid() { return Derived(InvalidIndex); }

  friend constexpr bool operator==(Derived A, Derived B) {
    return A.Index == B.Index;
  }
  friend constexpr bool operator!=(Derived A, Derived B) {
    return A.Index != B.Index;
  }
  friend constexpr bool operator<(Derived A, Derived B) {
    return A.Index < B.Index;
  }

private:
  uint32_t Index = InvalidIndex;
};

/// Identifies a class declaration in a Program.
struct ClassId : StrongId<ClassId> {
  using StrongId::StrongId;
};

/// Identifies a field declaration; field ids are global across the Program
/// so that `field(x) = field(y)` checks are a single integer compare.
struct FieldId : StrongId<FieldId> {
  using StrongId::StrongId;
};

/// Identifies a method in a Program.
struct MethodId : StrongId<MethodId> {
  using StrongId::StrongId;
};

/// Identifies a basic block within a method.
struct BlockId : StrongId<BlockId> {
  using StrongId::StrongId;
};

/// Identifies a virtual register within a method.
struct RegId : StrongId<RegId> {
  using StrongId::StrongId;
};

/// Identifies an allocation site (a `new` instruction).  Abstract objects in
/// the points-to analysis are allocation sites (Section 5.3 of the paper).
struct AllocSiteId : StrongId<AllocSiteId> {
  using StrongId::StrongId;
};

/// Identifies a source location (statement label such as "T11") used in race
/// reports; it has no bearing on detection itself (Section 2.4).
struct SiteId : StrongId<SiteId> {
  using StrongId::StrongId;
};

/// Identifies a runtime thread.  ThreadId 0 is always the main thread.
struct ThreadId : StrongId<ThreadId> {
  using StrongId::StrongId;
};

/// Identifies a runtime lock.  Every heap object can act as a monitor; the
/// detector additionally allocates per-thread dummy locks S_j to model join
/// (Section 2.3).
struct LockId : StrongId<LockId> {
  using StrongId::StrongId;
};

/// Identifies a heap object instance at runtime.
struct ObjectId : StrongId<ObjectId> {
  using StrongId::StrongId;
};

/// Identifies a canonical (interned) lockset in a LockSetInterner.  Id 0 is
/// always the empty set.  Passing this 4-byte id per event instead of a
/// SortedIdSet copy is what keeps the detector hot path allocation-free.
struct LockSetId : StrongId<LockSetId> {
  using StrongId::StrongId;
};

/// A logical memory location: a (object, field) pair, or the whole array for
/// array element accesses (the paper associates one location with all
/// elements of an array, Section 2.1 footnote 1).
class LocationKey {
public:
  constexpr LocationKey() = default;

  static constexpr LocationKey forField(ObjectId Obj, FieldId Field) {
    return LocationKey((uint64_t(Obj.index()) << 32) | Field.index());
  }

  /// All elements of an array share a single logical location.
  static constexpr LocationKey forArray(ObjectId Obj) {
    return LocationKey((uint64_t(Obj.index()) << 32) | ArrayFieldMark);
  }

  /// Static fields live on a per-class pseudo-object; the caller supplies
  /// that object's id.
  static constexpr LocationKey forStatic(ObjectId ClassObj, FieldId Field) {
    return forField(ClassObj, Field);
  }

  /// Collapses the field component so that all fields of one object map to
  /// the same location (the "FieldsMerged" accuracy variant of Table 3).
  constexpr LocationKey withFieldsMerged() const {
    return LocationKey(Raw | 0xFFFFFFFFull);
  }

  constexpr uint64_t raw() const { return Raw; }

  /// Rebuilds a key from raw() output (event-log deserialization).
  static constexpr LocationKey fromRaw(uint64_t Raw) {
    return LocationKey(Raw);
  }

  constexpr ObjectId object() const { return ObjectId(uint32_t(Raw >> 32)); }

  friend constexpr bool operator==(LocationKey A, LocationKey B) {
    return A.Raw == B.Raw;
  }
  friend constexpr bool operator!=(LocationKey A, LocationKey B) {
    return A.Raw != B.Raw;
  }
  friend constexpr bool operator<(LocationKey A, LocationKey B) {
    return A.Raw < B.Raw;
  }

private:
  static constexpr uint32_t ArrayFieldMark = 0xFFFFFFFE;

  constexpr explicit LocationKey(uint64_t Raw) : Raw(Raw) {}

  uint64_t Raw = ~0ull;
};

} // namespace herd

namespace std {
template <> struct hash<herd::LocationKey> {
  size_t operator()(herd::LocationKey Key) const {
    // SplitMix64 finalizer: cheap and well distributed for (obj, field)
    // packed keys whose low bits are small integers.
    uint64_t X = Key.raw();
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ull;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebull;
    X ^= X >> 31;
    return size_t(X);
  }
};

#define HERD_DEFINE_ID_HASH(TYPE)                                              \
  template <> struct hash<herd::TYPE> {                                        \
    size_t operator()(herd::TYPE Id) const {                                   \
      return hash<uint32_t>()(Id.index());                                     \
    }                                                                          \
  }

HERD_DEFINE_ID_HASH(ClassId);
HERD_DEFINE_ID_HASH(FieldId);
HERD_DEFINE_ID_HASH(MethodId);
HERD_DEFINE_ID_HASH(BlockId);
HERD_DEFINE_ID_HASH(RegId);
HERD_DEFINE_ID_HASH(AllocSiteId);
HERD_DEFINE_ID_HASH(SiteId);
HERD_DEFINE_ID_HASH(ThreadId);
HERD_DEFINE_ID_HASH(LockId);
HERD_DEFINE_ID_HASH(ObjectId);
HERD_DEFINE_ID_HASH(LockSetId);

#undef HERD_DEFINE_ID_HASH
} // namespace std

#endif // HERD_SUPPORT_IDS_H
