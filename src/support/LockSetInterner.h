//===- support/LockSetInterner.h - Canonical lockset ids --------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalizes locksets to dense 4-byte LockSetIds so that the per-event
/// hot path passes an id instead of copying a SortedIdSet.  Threads hold few
/// distinct locksets over a run (Section 2.4: typically 0-3 locks, and the
/// set only changes at monitorenter/exit, not per access), so interning at
/// lockset-change time amortizes to nothing while removing the per-event
/// vector copy the old AccessEvent path paid.
///
/// Each interned set also carries a 64-bit membership mask over the first 64
/// distinct locks seen (dense-remapped), making subset and intersection
/// queries single AND/ANDN instructions whenever both sets live inside that
/// universe — which covers every workload in this repo.  Sets that spill past
/// the 64-lock universe fall back to the SortedIdSet merge walk, memoized in
/// a fixed-size 2-way set-associative table keyed by the id pair.  The memo
/// is bounded by construction (MemoSets * 2 entries per query kind): on a
/// set conflict the older way is evicted round-robin, so a long run with a
/// churning lockset population can never grow the memo without bound
/// (previously an unbounded unordered_map — see ROADMAP).  Eviction only
/// costs a recompute on the next repeat query, never correctness.
///
/// Thread-safety contract (mirrors BoundedBatchQueue's producer contract):
/// intern(), isSubsetOf() and intersects() are producer-thread-only.
/// resolve() may be called concurrently from other threads for any id that
/// reached them through a synchronizing channel (the sharded runtime's batch
/// queue mutex): entries are fully constructed before their id is published,
/// and the chunk directory is a fixed-size array so no resolve() ever
/// observes a reallocating std::vector spine.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_LOCKSETINTERNER_H
#define HERD_SUPPORT_LOCKSETINTERNER_H

#include "support/Ids.h"
#include "support/SortedIdSet.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace herd {

using LockSet = SortedIdSet<LockId>;

class LockSetInterner {
public:
  /// Interned sets per chunk; chunks never move once allocated.
  static constexpr uint32_t ChunkSize = 1024;

  /// Fixed chunk-directory capacity: up to MaxChunks * ChunkSize distinct
  /// locksets per run.  A fixed array (not a vector) is what makes
  /// concurrent resolve() safe against intern() growing the store.
  static constexpr uint32_t MaxChunks = 4096;

  LockSetInterner() {
    LockSetId Empty = intern(LockSet());
    (void)Empty;
    assert(Empty.index() == 0 && "empty set must intern as id 0");
  }

  LockSetInterner(const LockSetInterner &) = delete;
  LockSetInterner &operator=(const LockSetInterner &) = delete;

  /// The canonical id of the empty lockset.
  static constexpr LockSetId emptySet() { return LockSetId(0); }

  /// Returns the canonical id for \p Set, interning it on first sight.
  /// Producer-thread-only.
  LockSetId intern(const LockSet &Set) {
    uint64_t H = hashSet(Set);
    std::vector<uint32_t> &Bucket = Lookup[H];
    for (uint32_t Id : Bucket)
      if (entry(Id).Set == Set)
        return LockSetId(Id);

    uint32_t Id = NumSets.load(std::memory_order_relaxed);
    uint32_t Chunk = Id / ChunkSize;
    assert(Chunk < MaxChunks && "lockset interner capacity exhausted");
    if (!Chunks[Chunk])
      Chunks[Chunk] = std::make_unique<Entry[]>(ChunkSize);
    Entry &E = Chunks[Chunk][Id % ChunkSize];
    E.Set = Set;
    E.Mask = 0;
    E.Exact = true;
    for (LockId Lock : Set) {
      auto [It, Inserted] =
          DenseLocks.try_emplace(Lock.index(), uint32_t(DenseLocks.size()));
      (void)Inserted;
      if (It->second < 64)
        E.Mask |= uint64_t(1) << It->second;
      else
        E.Exact = false;
    }
    // Publish only after E is fully constructed; release pairs with the
    // acquire in entry() so concurrent resolvers see the entry complete
    // (the batch-queue mutex already orders this for the sharded runtime,
    // the atomic keeps the interner correct on its own terms too).
    NumSets.store(Id + 1, std::memory_order_release);
    Bucket.push_back(Id);
    return LockSetId(Id);
  }

  /// The set behind \p Id.  Safe to call concurrently with intern() for any
  /// published id (see file comment).
  const LockSet &resolve(LockSetId Id) const { return entry(Id.index()).Set; }

  /// Returns true if set \p A is a subset of (or equal to) set \p B.
  /// Producer-thread-only (consults the memo on the rare inexact path).
  bool isSubsetOf(LockSetId A, LockSetId B) const {
    if (A == B || A.index() == 0)
      return true;
    if (B.index() == 0)
      return false; // A != 0 is non-empty by canonicality
    const Entry &EA = entry(A.index()), &EB = entry(B.index());
    // With EA exact, every member of A has a mask bit, and every member of
    // B inside the 64-lock universe has one too — so mask containment is
    // conclusive regardless of EB's spill.
    if (EA.Exact)
      return (EA.Mask & ~EB.Mask) == 0;
    if (EB.Exact)
      return false; // A holds a lock outside the universe that B cannot
    return memoQuery(SubsetMemo, A, B,
                     [&] { return EA.Set.isSubsetOf(EB.Set); });
  }

  /// Returns true if sets \p A and \p B share at least one lock.
  /// Producer-thread-only (consults the memo on the rare inexact path).
  bool intersects(LockSetId A, LockSetId B) const {
    if (A.index() == 0 || B.index() == 0)
      return false;
    const Entry &EA = entry(A.index()), &EB = entry(B.index());
    if ((EA.Mask & EB.Mask) != 0)
      return true; // mask bits are real members on both sides
    // No mask overlap: if either side is exact, any common lock would have
    // had a bit in both masks, so the sets are disjoint.
    if (EA.Exact || EB.Exact)
      return false;
    return memoQuery(IntersectMemo, A, B,
                     [&] { return EA.Set.intersects(EB.Set); });
  }

  /// Number of distinct locksets interned so far (>= 1: the empty set).
  size_t size() const { return NumSets.load(std::memory_order_acquire); }

  /// Number of distinct locks seen across all interned sets.
  size_t lockUniverse() const { return DenseLocks.size(); }

  /// Memo observability for DetectorStats: hits, misses (computed and
  /// cached), and entries evicted by the 2-way replacement.
  uint64_t memoHits() const { return MemoHitCount; }
  uint64_t memoMisses() const { return MemoMissCount; }
  uint64_t memoEvictions() const { return MemoEvictionCount; }

  /// Pre-sizes the lookup structures for \p ExpectedSets distinct locksets
  /// so a plan-sized run interns without rehashing or chunk allocation.
  /// Producer-thread-only, like intern().
  void reserve(size_t ExpectedSets) {
    Lookup.reserve(ExpectedSets);
    size_t WantChunks = (ExpectedSets + ChunkSize - 1) / ChunkSize;
    if (WantChunks > MaxChunks)
      WantChunks = MaxChunks;
    for (size_t Chunk = 0; Chunk != WantChunks; ++Chunk)
      if (!Chunks[Chunk])
        Chunks[Chunk] = std::make_unique<Entry[]>(ChunkSize);
  }

private:
  struct Entry {
    LockSet Set;
    uint64_t Mask = 0; ///< membership over dense lock indices < 64
    bool Exact = false; ///< Mask covers every member of Set
  };

  const Entry &entry(uint32_t Id) const {
    assert(Id < NumSets.load(std::memory_order_acquire) &&
           "resolve of an unpublished lockset id");
    return Chunks[Id / ChunkSize][Id % ChunkSize];
  }

  static uint64_t hashSet(const LockSet &Set) {
    // FNV-1a over the 32-bit lock indices; sets are sorted, so equal sets
    // hash equally.
    uint64_t H = 0xcbf29ce484222325ull;
    for (LockId Lock : Set) {
      H ^= Lock.index();
      H *= 0x100000001b3ull;
    }
    return H;
  }

  /// Sets per memo table (power of two).  512 sets * 2 ways bounds each
  /// table at 1024 cached verdicts — far above the live inexact-pair
  /// population any workload here produces, and ~16 KB total.
  static constexpr size_t MemoSets = 512;

  /// Bounded memo for one query kind: 2-way set-associative over the id
  /// pair, MemoSets * 2 entries, round-robin victim within a set.  The
  /// all-ones key never arises from real id pairs (it would need both ids
  /// >= 2^32 - 1), so it doubles as the empty-entry sentinel.
  struct MemoTable {
    static constexpr uint64_t EmptyKey = ~uint64_t(0);
    struct Way {
      uint64_t Key = EmptyKey;
      bool Result = false;
    };
    struct Set {
      std::array<Way, 2> Ways;
      uint8_t NextVictim = 0;
    };
    std::array<Set, MemoSets> Sets{};
  };

  template <typename Fn>
  bool memoQuery(MemoTable &Memo, LockSetId A, LockSetId B,
                 Fn Compute) const {
    uint64_t Key = (uint64_t(A.index()) << 32) | B.index();
    // SplitMix64 finalizer: adjacent interner ids otherwise map to
    // adjacent sets and thrash under sequential churn.
    uint64_t H = Key;
    H ^= H >> 30;
    H *= 0xbf58476d1ce4e5b9ull;
    H ^= H >> 27;
    typename MemoTable::Set &S = Memo.Sets[size_t(H) & (MemoSets - 1)];
    for (auto &W : S.Ways)
      if (W.Key == Key) {
        ++MemoHitCount;
        return W.Result;
      }
    ++MemoMissCount;
    bool Result = Compute();
    auto &Victim = S.Ways[S.NextVictim];
    if (Victim.Key != MemoTable::EmptyKey)
      ++MemoEvictionCount;
    Victim.Key = Key;
    Victim.Result = Result;
    S.NextVictim ^= 1;
    return Result;
  }

  std::array<std::unique_ptr<Entry[]>, MaxChunks> Chunks;
  std::atomic<uint32_t> NumSets{0};
  std::unordered_map<uint64_t, std::vector<uint32_t>> Lookup;
  std::unordered_map<uint32_t, uint32_t> DenseLocks; ///< LockId -> dense
  mutable MemoTable SubsetMemo;
  mutable MemoTable IntersectMemo;
  mutable uint64_t MemoHitCount = 0;
  mutable uint64_t MemoMissCount = 0;
  mutable uint64_t MemoEvictionCount = 0;
};

} // namespace herd

#endif // HERD_SUPPORT_LOCKSETINTERNER_H
