//===- support/ClockStore.h - Pooled vector-clock storage -------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pooled store of fixed-width vector clocks addressed by dense 32-bit
/// handles, built for the epoch detector (docs/DETECTORS.md).  All rows
/// live in one contiguous uint64_t buffer with a power-of-two stride, so
/// the per-event hot path touches cache-friendly flat memory and the
/// steady state never calls the global allocator: allocating a row is a
/// free-list pop (or a bump inside reserved storage), releasing one is a
/// free-list push, and joins/orderings are straight-line loops over one
/// row.
///
/// The slot width (threads per clock) grows by rebuilding the buffer with
/// a doubled stride; handles are preserved across rebuilds, so holders
/// never need to re-index.  `reserve()` pre-commits both dimensions from
/// DetectorPlan capacity hints.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_CLOCKSTORE_H
#define HERD_SUPPORT_CLOCKSTORE_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace herd {

/// A pool of vector-clock rows with a shared, growable slot width.
class ClockStore {
public:
  /// Sentinel for "no row"; never returned by alloc().
  static constexpr uint32_t None = 0xFFFFFFFF;

  explicit ClockStore(uint32_t InitialSlots = 16)
      : Stride(slotCapacityFor(InitialSlots)) {}

  /// Current slot capacity (the stride every row shares).
  uint32_t slots() const { return Stride; }

  /// Rows currently allocated.
  size_t liveRows() const { return Rows - FreeList.size(); }

  /// Rows handed out fresh (never through the free list).
  uint64_t freshAllocs() const { return FreshAllocs; }

  /// Rows recycled through the free list.
  uint64_t reusedAllocs() const { return ReusedAllocs; }

  /// Allocates a zeroed row and returns its handle.
  uint32_t alloc() {
    if (!FreeList.empty()) {
      uint32_t Handle = FreeList.back();
      FreeList.pop_back();
      std::fill_n(rowPtr(Handle), Stride, uint64_t(0));
      ++ReusedAllocs;
      return Handle;
    }
    uint32_t Handle = Rows++;
    Buf.resize(size_t(Rows) * Stride, 0);
    ++FreshAllocs;
    return Handle;
  }

  /// Returns \p Handle's row to the free list.  The caller must not use
  /// the handle again until alloc() hands it back out.
  void release(uint32_t Handle) {
    assert(Handle < Rows && "release of a handle never allocated");
    FreeList.push_back(Handle);
  }

  uint64_t get(uint32_t Handle, uint32_t Slot) const {
    assert(Handle < Rows && "clock handle out of range");
    return Slot < Stride ? Buf[size_t(Handle) * Stride + Slot] : 0;
  }

  void set(uint32_t Handle, uint32_t Slot, uint64_t Value) {
    assert(Handle < Rows && "clock handle out of range");
    assert(Slot < Stride && "slot beyond stride; call ensureSlots first");
    Buf[size_t(Handle) * Stride + Slot] = Value;
  }

  /// Copies \p Src's row over \p Dst's.
  void assign(uint32_t Dst, uint32_t Src) {
    assert(Dst < Rows && Src < Rows && "clock handle out of range");
    std::copy_n(rowPtr(Src), Stride, rowPtr(Dst));
  }

  /// Pointwise maximum: Dst = max(Dst, Src).
  void joinInto(uint32_t Dst, uint32_t Src) {
    assert(Dst < Rows && Src < Rows && "clock handle out of range");
    const uint64_t *S = rowPtr(Src);
    uint64_t *D = rowPtr(Dst);
    for (uint32_t I = 0; I != Stride; ++I)
      D[I] = std::max(D[I], S[I]);
  }

  /// True when row \p A is pointwise <= row \p B ("happened before or
  /// equal").
  bool orderedBefore(uint32_t A, uint32_t B) const {
    assert(A < Rows && B < Rows && "clock handle out of range");
    const uint64_t *RA = rowPtr(A), *RB = rowPtr(B);
    for (uint32_t I = 0; I != Stride; ++I)
      if (RA[I] > RB[I])
        return false;
    return true;
  }

  /// Grows the shared slot width to hold \p SlotCount slots, rebuilding
  /// the buffer with a doubled (power-of-two) stride.  Handles survive;
  /// new slots read as zero.  No-op when the stride already suffices.
  void ensureSlots(uint32_t SlotCount) {
    if (SlotCount <= Stride)
      return;
    uint32_t NewStride = slotCapacityFor(SlotCount);
    std::vector<uint64_t> NewBuf(size_t(Rows) * NewStride, 0);
    for (uint32_t R = 0; R != Rows; ++R)
      std::copy_n(Buf.data() + size_t(R) * Stride, Stride,
                  NewBuf.data() + size_t(R) * NewStride);
    Buf = std::move(NewBuf);
    Stride = NewStride;
  }

  /// Pre-commits storage for \p ExpectedRows rows of \p ExpectedSlots
  /// slots so that many alloc() calls proceed without touching the global
  /// allocator.  Hints, not limits: the store still grows on demand.
  void reserve(size_t ExpectedRows, uint32_t ExpectedSlots) {
    ensureSlots(ExpectedSlots);
    Buf.reserve(std::max(Buf.size(), ExpectedRows * size_t(Stride)));
    FreeList.reserve(std::max(FreeList.capacity(), ExpectedRows));
  }

  /// Smallest power-of-two stride holding \p Slots slots (16 floor).
  static uint32_t slotCapacityFor(uint32_t Slots) {
    uint32_t Capacity = 16;
    while (Capacity < Slots)
      Capacity *= 2;
    return Capacity;
  }

private:
  uint64_t *rowPtr(uint32_t Handle) {
    return Buf.data() + size_t(Handle) * Stride;
  }
  const uint64_t *rowPtr(uint32_t Handle) const {
    return Buf.data() + size_t(Handle) * Stride;
  }

  std::vector<uint64_t> Buf;
  std::vector<uint32_t> FreeList;
  uint32_t Stride;
  uint32_t Rows = 0;
  uint64_t FreshAllocs = 0;
  uint64_t ReusedAllocs = 0;
};

} // namespace herd

#endif // HERD_SUPPORT_CLOCKSTORE_H
