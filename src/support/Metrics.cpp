//===- support/Metrics.cpp - Metrics registry, spans, clocks --------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <algorithm>
#include <chrono>

using namespace herd;

MetricsClock::~MetricsClock() = default;

uint64_t SteadyClock::nowNanos() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

static SteadyClock &processSteadyClock() {
  static SteadyClock C;
  return C;
}

MetricsRegistry::MetricsRegistry(MetricsClock *Clock)
    : Clock(Clock ? Clock : &processSteadyClock()) {}

template <typename T>
T &MetricsRegistry::named(std::map<std::string, T *, std::less<>> &Index,
                          std::deque<T> &Storage, std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Name);
  if (It != Index.end())
    return *It->second;
  Storage.emplace_back();
  Index.emplace(std::string(Name), &Storage.back());
  return Storage.back();
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  return named(CounterIndex, Counters, Name);
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  return named(GaugeIndex, Gauges, Name);
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  return named(HistogramIndex, Histograms, Name);
}

void MetricsRegistry::recordSpan(std::string_view Name,
                                 std::string_view Category, uint32_t Tid,
                                 uint64_t StartNanos, uint64_t DurNanos) {
  TraceEvent E;
  E.Name = std::string(Name);
  E.Category = std::string(Category);
  E.Phase = 'X';
  E.Tid = Tid;
  E.StartNanos = StartNanos;
  E.DurNanos = DurNanos;
  std::lock_guard<std::mutex> Lock(M);
  Timeline.push_back(std::move(E));
}

void MetricsRegistry::recordCounterSample(std::string_view Name, uint32_t Tid,
                                          int64_t Value) {
  TraceEvent E;
  E.Name = std::string(Name);
  E.Category = "counter";
  E.Phase = 'C';
  E.Tid = Tid;
  E.StartNanos = Clock->nowNanos();
  E.Value = Value;
  std::lock_guard<std::mutex> Lock(M);
  Timeline.push_back(std::move(E));
}

void MetricsRegistry::nameThread(uint32_t Tid, std::string_view Name) {
  TraceEvent E;
  E.Name = std::string(Name);
  E.Category = "__metadata";
  E.Phase = 'M';
  E.Tid = Tid;
  std::lock_guard<std::mutex> Lock(M);
  Timeline.push_back(std::move(E));
}

std::vector<TraceEvent> MetricsRegistry::traceEvents() const {
  std::lock_guard<std::mutex> Lock(M);
  return Timeline;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counterValues() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(CounterIndex.size());
  for (const auto &[Name, C] : CounterIndex)
    Out.emplace_back(Name, C->value());
  return Out; // std::map iteration is already name-sorted
}

std::vector<MetricsRegistry::GaugeValue> MetricsRegistry::gaugeValues() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<GaugeValue> Out;
  Out.reserve(GaugeIndex.size());
  for (const auto &[Name, G] : GaugeIndex)
    Out.push_back({Name, G->value(), G->maxSeen()});
  return Out;
}

std::vector<MetricsRegistry::HistogramValue>
MetricsRegistry::histogramValues() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<HistogramValue> Out;
  Out.reserve(HistogramIndex.size());
  for (const auto &[Name, H] : HistogramIndex) {
    HistogramValue V;
    V.Name = Name;
    V.Count = H->count();
    V.Sum = H->sum();
    V.Min = H->min();
    V.Max = H->max();
    for (size_t B = 0; B != Histogram::NumBuckets; ++B)
      if (uint64_t N = H->bucket(B))
        V.Buckets.emplace_back(uint32_t(B), N);
    Out.push_back(std::move(V));
  }
  return Out;
}

namespace {

/// Microsecond timestamp with nanosecond fraction, as a JSON number
/// ("12.345"); trace_event "ts"/"dur" are microsecond-valued.
void microsValue(JsonWriter &W, uint64_t Nanos) {
  W.value(double(Nanos) / 1000.0);
}

} // namespace

std::string herd::renderChromeTraceJson(const MetricsRegistry &Reg) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("displayTimeUnit", "ms");
  W.key("traceEvents");
  W.beginArray();

  // Stable order: metadata first, then the timeline sorted by start time
  // (ties keep recording order, so nested spans stay parent-first).
  std::vector<TraceEvent> Events = Reg.traceEvents();
  std::stable_sort(Events.begin(), Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     bool AMeta = A.Phase == 'M', BMeta = B.Phase == 'M';
                     if (AMeta != BMeta)
                       return AMeta;
                     if (AMeta)
                       return false; // metadata keeps recording order
                     return A.StartNanos < B.StartNanos;
                   });
  for (const TraceEvent &E : Events) {
    W.beginObject();
    if (E.Phase == 'M') {
      W.member("name", "thread_name");
      W.member("ph", "M");
      W.member("pid", 1);
      W.member("tid", E.Tid);
      W.key("args");
      W.beginObject();
      W.member("name", E.Name);
      W.endObject();
      W.endObject();
      continue;
    }
    W.member("name", E.Name);
    W.member("cat", E.Category);
    W.member("ph", std::string_view(&E.Phase, 1));
    W.member("pid", 1);
    W.member("tid", E.Tid);
    W.key("ts");
    microsValue(W, E.StartNanos);
    if (E.Phase == 'X') {
      W.key("dur");
      microsValue(W, E.DurNanos);
    } else if (E.Phase == 'C') {
      W.key("args");
      W.beginObject();
      W.member("value", E.Value);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();

  // Final metric totals, so a trace file alone carries the run's counters
  // (chrome://tracing ignores unknown top-level keys).
  W.key("metrics");
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const auto &[Name, Value] : Reg.counterValues())
    W.member(Name, Value);
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const auto &G : Reg.gaugeValues()) {
    W.key(G.Name);
    W.beginObject();
    W.member("value", G.Value);
    W.member("max", G.Max);
    W.endObject();
  }
  W.endObject();
  W.endObject();

  W.endObject();
  Out += '\n';
  return Out;
}

void herd::writeChromeTraceJson(const MetricsRegistry &Reg,
                                std::ostream &OS) {
  OS << renderChromeTraceJson(Reg);
}
