//===- support/Metrics.h - Metrics registry, spans, clocks ------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability primitives of the pipeline (docs/OBSERVABILITY.md):
///
///  * MetricsRegistry — named counters, gauges and log2-bucketed
///    histograms with exact-value accessors for tests, plus a timeline of
///    spans and counter samples that serializes to Chrome `trace_event`
///    JSON (`herd --trace-json=<f>`, loadable in chrome://tracing or
///    Perfetto).
///  * Span — an RAII timer recording a complete ("ph":"X") trace event.
///  * MetricsClock — the injectable time source; SteadyClock for real
///    runs, VirtualClock for deterministic tests and golden files.
///
/// Everything is opt-in by pointer: the pipeline threads a
/// `MetricsRegistry *` that defaults to null, and every recording call
/// no-ops on null (`Span` degrades to a zero-cost guard, gauge/counter
/// updates sit behind one predictable branch).  Per-event hot paths keep
/// using the exact counters of detect/DetectorStats.h — the registry is
/// for phase- and batch-granularity signals, so disabled observability
/// costs nothing measurable (the `bench_hotpath` ≤2% gate).
///
/// Metric objects are thread-safe (relaxed atomics) and the registry's
/// name tables and timeline are mutex-protected: shard workers record
/// batch spans concurrently with producer-side phase spans.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_METRICS_H
#define HERD_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace herd {

//===----------------------------------------------------------------------===
// Clocks
//===----------------------------------------------------------------------===

/// Injectable monotonic time source for all observability timing.
class MetricsClock {
public:
  virtual ~MetricsClock();
  virtual uint64_t nowNanos() = 0;
};

/// Wall-clock time from std::chrono::steady_clock.
class SteadyClock final : public MetricsClock {
public:
  uint64_t nowNanos() override;
};

/// Deterministic clock for tests: starts at zero and advances only when
/// told to — either explicitly via advance(), or by \p TickNanos on every
/// nowNanos() read (so consecutive span begin/end pairs get distinct,
/// reproducible timestamps without any test bookkeeping).
class VirtualClock final : public MetricsClock {
public:
  explicit VirtualClock(uint64_t TickNanos = 0) : Tick(TickNanos) {}

  uint64_t nowNanos() override {
    uint64_t V = Now;
    Now += Tick;
    return V;
  }
  void advance(uint64_t Nanos) { Now += Nanos; }

private:
  uint64_t Now = 0;
  uint64_t Tick = 0;
};

//===----------------------------------------------------------------------===
// Metric kinds
//===----------------------------------------------------------------------===

/// Monotonic counter.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Point-in-time value with a high-water mark.
class Gauge {
public:
  void set(int64_t NewValue) {
    V.store(NewValue, std::memory_order_relaxed);
    int64_t Prev = Max.load(std::memory_order_relaxed);
    while (NewValue > Prev &&
           !Max.compare_exchange_weak(Prev, NewValue,
                                      std::memory_order_relaxed))
      ;
  }
  void add(int64_t Delta) {
    set(V.load(std::memory_order_relaxed) + Delta);
  }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  int64_t maxSeen() const { return Max.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
  std::atomic<int64_t> Max{0};
};

/// Histogram over log2 buckets: bucket B counts recorded values V with
/// log2Bucket(V) == B, i.e. bucket 0 holds {0}, bucket B>0 holds
/// [2^(B-1), 2^B).  Exact count/sum/min/max ride along so tests can assert
/// precise values, not just shapes.
class Histogram {
public:
  static constexpr size_t NumBuckets = 65; ///< {0} plus one per bit of 2^64

  /// The bucket index \p V lands in.
  static size_t log2Bucket(uint64_t V) {
    size_t B = 0;
    while (V != 0) {
      ++B;
      V >>= 1;
    }
    return B;
  }

  void record(uint64_t V) {
    Buckets[log2Bucket(V)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    updateMin(V);
    updateMax(V);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const {
    return count() ? MinV.load(std::memory_order_relaxed) : 0;
  }
  uint64_t max() const { return MaxV.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t B) const {
    return Buckets[B].load(std::memory_order_relaxed);
  }

private:
  void updateMin(uint64_t V) {
    uint64_t Prev = MinV.load(std::memory_order_relaxed);
    while (V < Prev &&
           !MinV.compare_exchange_weak(Prev, V, std::memory_order_relaxed))
      ;
  }
  void updateMax(uint64_t V) {
    uint64_t Prev = MaxV.load(std::memory_order_relaxed);
    while (V > Prev &&
           !MaxV.compare_exchange_weak(Prev, V, std::memory_order_relaxed))
      ;
  }

  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> MinV{UINT64_MAX};
  std::atomic<uint64_t> MaxV{0};
};

//===----------------------------------------------------------------------===
// Timeline events
//===----------------------------------------------------------------------===

/// One event on the trace timeline; maps 1:1 onto the Chrome trace_event
/// format's "X" (complete span), "C" (counter sample) and "M" (metadata)
/// phases.
struct TraceEvent {
  std::string Name;
  std::string Category;
  char Phase = 'X';
  uint32_t Tid = 0;        ///< trace row; 0 = the pipeline (host) thread
  uint64_t StartNanos = 0;
  uint64_t DurNanos = 0;   ///< spans only
  int64_t Value = 0;       ///< counter samples only
};

//===----------------------------------------------------------------------===
// Registry
//===----------------------------------------------------------------------===

/// The per-run registry: named metrics plus the span/counter timeline.
/// Metric references returned by counter()/gauge()/histogram() are stable
/// for the registry's lifetime (deque storage), so call sites can cache
/// them and skip the name lookup.
class MetricsRegistry {
public:
  /// \p Clock is borrowed and must outlive the registry; null uses a
  /// process-wide SteadyClock.
  explicit MetricsRegistry(MetricsClock *Clock = nullptr);

  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  uint64_t nowNanos() { return Clock->nowNanos(); }

  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Records one complete span on the timeline.
  void recordSpan(std::string_view Name, std::string_view Category,
                  uint32_t Tid, uint64_t StartNanos, uint64_t DurNanos);

  /// Records a timestamped counter sample (a "C" event: Perfetto renders
  /// these as a stepped area chart, e.g. per-shard queue depth).
  void recordCounterSample(std::string_view Name, uint32_t Tid,
                           int64_t Value);

  /// Names a trace row; emitted as thread_name metadata so chrome://tracing
  /// shows "shard 0" instead of "tid 1".
  void nameThread(uint32_t Tid, std::string_view Name);

  /// Snapshot of the timeline, in recording order.
  std::vector<TraceEvent> traceEvents() const;

  /// Name-sorted snapshots of every registered metric (deterministic
  /// serialization order, independent of registration order).
  std::vector<std::pair<std::string, uint64_t>> counterValues() const;
  struct GaugeValue {
    std::string Name;
    int64_t Value;
    int64_t Max;
  };
  std::vector<GaugeValue> gaugeValues() const;
  struct HistogramValue {
    std::string Name;
    uint64_t Count, Sum, Min, Max;
    /// (log2 bucket index, count) for every non-empty bucket.
    std::vector<std::pair<uint32_t, uint64_t>> Buckets;
  };
  std::vector<HistogramValue> histogramValues() const;

private:
  template <typename T>
  T &named(std::map<std::string, T *, std::less<>> &Index,
           std::deque<T> &Storage, std::string_view Name);

  MetricsClock *Clock;
  mutable std::mutex M;
  std::map<std::string, Counter *, std::less<>> CounterIndex;
  std::map<std::string, Gauge *, std::less<>> GaugeIndex;
  std::map<std::string, Histogram *, std::less<>> HistogramIndex;
  std::deque<Counter> Counters;
  std::deque<Gauge> Gauges;
  std::deque<Histogram> Histograms;
  std::vector<TraceEvent> Timeline;
};

//===----------------------------------------------------------------------===
// Span
//===----------------------------------------------------------------------===

/// RAII span: records a complete trace event from construction to
/// destruction.  A null registry makes every operation a no-op, which is
/// how "observability off" compiles down to a pointer test.
class Span {
public:
  Span(MetricsRegistry *Reg, std::string_view Name,
       std::string_view Category = "phase", uint32_t Tid = 0)
      : Reg(Reg), Name(Name), Category(Category), Tid(Tid),
        Start(Reg ? Reg->nowNanos() : 0) {}

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  ~Span() { end(); }

  /// Ends the span early (idempotent).
  void end() {
    if (!Reg)
      return;
    uint64_t End = Reg->nowNanos();
    Reg->recordSpan(Name, Category, Tid, Start,
                    End >= Start ? End - Start : 0);
    Reg = nullptr;
  }

private:
  MetricsRegistry *Reg;
  std::string_view Name;
  std::string_view Category;
  uint32_t Tid;
  uint64_t Start;
};

/// Serializes the registry's timeline as Chrome trace_event JSON
/// ({"traceEvents":[...]}, the JSON Object Format), with counters and
/// metric totals attached.  Timestamps are microseconds with nanosecond
/// fraction, as chrome://tracing / Perfetto expect.
void writeChromeTraceJson(const MetricsRegistry &Reg, std::ostream &OS);

/// renderChromeTraceJson into a string (the golden-file tests diff this).
std::string renderChromeTraceJson(const MetricsRegistry &Reg);

} // namespace herd

#endif // HERD_SUPPORT_METRICS_H
