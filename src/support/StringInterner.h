//===- support/StringInterner.h - Name interning ----------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns names (class, field, method and statement-label strings) so the
/// IR and the detector can carry 32-bit symbols instead of strings.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_STRINGINTERNER_H
#define HERD_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace herd {

/// An interned string handle; 0 is the empty string.
struct Symbol {
  uint32_t Id = 0;

  bool isEmpty() const { return Id == 0; }
  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }
};

/// Maps strings to dense Symbol handles and back.  Not thread-safe; the
/// frontend and IR construction are single-threaded by design (the simulated
/// program's concurrency lives in the runtime scheduler, not in host
/// threads).
class StringInterner {
public:
  StringInterner() { Storage.emplace_back(); }

  /// Returns the symbol for \p Text, interning it on first sight.
  Symbol intern(std::string_view Text) {
    if (Text.empty())
      return Symbol{0};
    auto It = Lookup.find(std::string(Text));
    if (It != Lookup.end())
      return Symbol{It->second};
    uint32_t Id = uint32_t(Storage.size());
    Storage.emplace_back(Text);
    Lookup.emplace(Storage.back(), Id);
    return Symbol{Id};
  }

  /// Returns the text for a previously interned symbol.
  std::string_view text(Symbol Sym) const {
    return Sym.Id < Storage.size() ? std::string_view(Storage[Sym.Id])
                                   : std::string_view();
  }

  size_t size() const { return Storage.size(); }

private:
  std::vector<std::string> Storage;
  std::unordered_map<std::string, uint32_t> Lookup;
};

} // namespace herd

#endif // HERD_SUPPORT_STRINGINTERNER_H
