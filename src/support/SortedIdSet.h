//===- support/SortedIdSet.h - Sorted-vector set of ids ---------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set represented as a sorted vector, tuned for the small sets that
/// dominate this system: locksets (typically 0-3 locks, Section 2.4) and
/// abstract-object points-to sets (Section 5.3).  Sorted vectors give cheap
/// subset / intersection tests, deterministic iteration order, and cache
/// friendliness.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_SORTEDIDSET_H
#define HERD_SUPPORT_SORTEDIDSET_H

#include <algorithm>
#include <cassert>
#include <vector>

namespace herd {

/// A sorted, duplicate-free vector of values ordered by operator<.
template <typename T> class SortedIdSet {
public:
  SortedIdSet() = default;

  /// Builds a set from an arbitrary list, sorting and deduplicating.
  SortedIdSet(std::initializer_list<T> Init) : Items(Init) {
    std::sort(Items.begin(), Items.end());
    Items.erase(std::unique(Items.begin(), Items.end()), Items.end());
  }

  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }

  auto begin() const { return Items.begin(); }
  auto end() const { return Items.end(); }

  bool contains(T Value) const {
    return std::binary_search(Items.begin(), Items.end(), Value);
  }

  /// Inserts a value; returns true if it was not already present.
  bool insert(T Value) {
    auto It = std::lower_bound(Items.begin(), Items.end(), Value);
    if (It != Items.end() && *It == Value)
      return false;
    Items.insert(It, Value);
    return true;
  }

  /// Removes a value; returns true if it was present.
  bool erase(T Value) {
    auto It = std::lower_bound(Items.begin(), Items.end(), Value);
    if (It == Items.end() || *It != Value)
      return false;
    Items.erase(It);
    return true;
  }

  void clear() { Items.clear(); }

  /// Returns true if this set is a subset of (or equal to) \p Other.
  bool isSubsetOf(const SortedIdSet &Other) const {
    return std::includes(Other.Items.begin(), Other.Items.end(),
                         Items.begin(), Items.end());
  }

  /// Returns true if this set shares at least one element with \p Other.
  bool intersects(const SortedIdSet &Other) const {
    auto A = Items.begin(), AE = Items.end();
    auto B = Other.Items.begin(), BE = Other.Items.end();
    while (A != AE && B != BE) {
      if (*A == *B)
        return true;
      if (*A < *B)
        ++A;
      else
        ++B;
    }
    return false;
  }

  /// Replaces this set with its intersection with \p Other; returns true if
  /// the set changed.  Used by the must-analyses, whose meet is intersection
  /// (Section 5.3, dataflow equations for MustSync).
  bool intersectWith(const SortedIdSet &Other) {
    std::vector<T> Result;
    Result.reserve(std::min(Items.size(), Other.Items.size()));
    std::set_intersection(Items.begin(), Items.end(), Other.Items.begin(),
                          Other.Items.end(), std::back_inserter(Result));
    if (Result.size() == Items.size())
      return false;
    Items = std::move(Result);
    return true;
  }

  /// Inserts every element of \p Other; returns true if the set grew.  Used
  /// by the may points-to analysis, whose join is union.
  bool unionWith(const SortedIdSet &Other) {
    if (Other.empty())
      return false;
    std::vector<T> Result;
    Result.reserve(Items.size() + Other.Items.size());
    std::set_union(Items.begin(), Items.end(), Other.Items.begin(),
                   Other.Items.end(), std::back_inserter(Result));
    if (Result.size() == Items.size())
      return false;
    Items = std::move(Result);
    return true;
  }

  const std::vector<T> &items() const { return Items; }

  friend bool operator==(const SortedIdSet &A, const SortedIdSet &B) {
    return A.Items == B.Items;
  }
  friend bool operator!=(const SortedIdSet &A, const SortedIdSet &B) {
    return A.Items != B.Items;
  }

  /// Lexicographic order, so sets can key ordered maps.
  friend bool operator<(const SortedIdSet &A, const SortedIdSet &B) {
    return A.Items < B.Items;
  }

private:
  std::vector<T> Items;
};

} // namespace herd

#endif // HERD_SUPPORT_SORTEDIDSET_H
