//===- support/Compiler.h - Common compiler support macros ------*- C++ -*-==//
//
// Part of the HERD project: a reproduction of Choi et al., "Efficient and
// Precise Datarace Detection for Multithreaded Object-Oriented Programs"
// (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler-support macros used across the project: an unreachable
/// marker and a likely/unlikely hint pair.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_COMPILER_H
#define HERD_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Marks a point in the code that must never be reached.  Prints the message
/// and aborts in all build modes; a race detector that silently continues
/// past a broken invariant would produce wrong reports.
#define HERD_UNREACHABLE(MSG)                                                  \
  do {                                                                         \
    std::fprintf(stderr, "herd: unreachable executed at %s:%d: %s\n",          \
                 __FILE__, __LINE__, (MSG));                                   \
    std::abort();                                                              \
  } while (false)

#if defined(__GNUC__) || defined(__clang__)
#define HERD_LIKELY(X) __builtin_expect(!!(X), 1)
#define HERD_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define HERD_LIKELY(X) (X)
#define HERD_UNLIKELY(X) (X)
#endif

/// Threaded interpreter dispatch (docs/INTERPRETER.md): 1 when the GNU
/// labels-as-values extension is available, so the dispatch loop can jump
/// handler-to-handler through a table of label addresses.  Defining
/// HERD_PORTABLE_DISPATCH (CMake -DHERD_PORTABLE_DISPATCH=ON) forces the
/// portable fallback — the same handler bodies behind a dense jump table
/// the compiler builds from a switch — which is also what non-GNU
/// compilers get.  Semantics are identical either way; only the branch
/// predictor's view of the dispatch changes.
#if !defined(HERD_PORTABLE_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define HERD_COMPUTED_GOTO 1
#else
#define HERD_COMPUTED_GOTO 0
#endif

#endif // HERD_SUPPORT_COMPILER_H
