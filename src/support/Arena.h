//===- support/Arena.h - Index-stable bump allocator ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer pool of fixed-size objects addressed by dense 32-bit
/// indices.  The detector's access-history tries store their nodes here
/// (one arena per Detector, hence per shard in the sharded runtime) so
/// that the per-event hot path never touches the global allocator: node
/// allocation is a bump of the chunk cursor, node release pushes onto an
/// intrusive free list, and steady-state churn recycles freed slots
/// without any malloc traffic.
///
/// Indices are stable for the lifetime of the arena: storage grows in
/// fixed-size chunks that are never moved or reallocated, so a node index
/// held across later allocations stays valid (the property the trie's
/// parent/child links rely on).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_ARENA_H
#define HERD_SUPPORT_ARENA_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace herd {

/// A chunked pool of default-constructible \p T addressed by uint32_t
/// indices, with a free list for slot reuse.
template <typename T> class Arena {
public:
  /// Sentinel for "no node"; never returned by allocate().
  static constexpr uint32_t None = 0xFFFFFFFF;

  /// Slots per chunk.  4096 nodes per chunk keeps growth coarse enough to
  /// be rare and fine enough not to waste memory on small detectors.
  static constexpr uint32_t ChunkSize = 4096;

  Arena() = default;
  Arena(Arena &&) noexcept = default;
  Arena &operator=(Arena &&) noexcept = default;

  /// Allocates a slot and returns its index.  The slot is reset to a
  /// default-constructed T whether it is fresh or recycled.
  uint32_t allocate() {
    if (FreeHead != None) {
      uint32_t Index = FreeHead;
      T &Slot = (*this)[Index];
      FreeHead = FreeLinks[Index];
      Slot = T();
      ++Live;
      return Index;
    }
    uint32_t Index = Size;
    if (Index / ChunkSize >= Chunks.size())
      Chunks.push_back(std::make_unique<T[]>(ChunkSize));
    else
      Chunks[Index / ChunkSize][Index % ChunkSize] =
          T(); // chunk retained across reset(): re-default the stale slot
    ++Size;
    ++Live;
    FreeLinks.push_back(None);
    return Index;
  }

  /// Returns \p Index's slot to the free list.  The caller must not use
  /// the index again until allocate() hands it back out.
  void release(uint32_t Index) {
    assert(Index < Size && "release of an index never allocated");
    assert(Live > 0 && "release without a matching allocate");
    FreeLinks[Index] = FreeHead;
    FreeHead = Index;
    --Live;
  }

  T &operator[](uint32_t Index) {
    assert(Index < Size && "arena index out of range");
    return Chunks[Index / ChunkSize][Index % ChunkSize];
  }
  const T &operator[](uint32_t Index) const {
    assert(Index < Size && "arena index out of range");
    return Chunks[Index / ChunkSize][Index % ChunkSize];
  }

  /// Number of chunks needed to hold \p Slots slots, with the request
  /// clamped to the 32-bit index space (None is reserved, so the largest
  /// addressable slot count is 0xFFFFFFFE).
  static size_t chunksFor(size_t Slots) {
    const size_t MaxSlots = 0xFFFFFFFE;
    if (Slots > MaxSlots)
      Slots = MaxSlots;
    return (Slots + ChunkSize - 1) / ChunkSize;
  }

  /// Pre-allocates chunk storage for at least \p Slots slots so that many
  /// allocate() calls proceed without touching the global allocator.
  /// allocate() already re-defaults slots in pre-existing chunks, so the
  /// reserved storage needs no further initialization.
  void reserve(size_t Slots) {
    size_t Want = chunksFor(Slots);
    FreeLinks.reserve(Want * size_t(ChunkSize));
    while (Chunks.size() < Want)
      Chunks.push_back(std::make_unique<T[]>(ChunkSize));
  }

  /// Slots backed by already-allocated chunk storage.
  size_t reservedSlots() const { return Chunks.size() * size_t(ChunkSize); }

  /// Slots currently allocated (allocate() minus release()).  The detector
  /// reports this as its trie-node count, O(1) instead of the old
  /// walk-every-location recomputation.
  size_t live() const { return Live; }

  /// High-water mark: slots ever created, recycled or not.
  size_t capacityUsed() const { return Size; }

  /// Drops every allocation (indices become invalid) but keeps the chunk
  /// storage for reuse.
  void reset() {
    Size = 0;
    Live = 0;
    FreeHead = None;
    FreeLinks.clear();
  }

private:
  std::vector<std::unique_ptr<T[]>> Chunks;
  std::vector<uint32_t> FreeLinks; ///< per-slot next-free link
  uint32_t FreeHead = None;
  uint32_t Size = 0;
  size_t Live = 0;
};

} // namespace herd

#endif // HERD_SUPPORT_ARENA_H
