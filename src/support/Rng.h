//===- support/Rng.h - Deterministic pseudo-random generator ----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic SplitMix64 generator.  The scheduler and the
/// property-based tests must replay identically from a seed, so we do not
/// depend on std::mt19937's unspecified seeding behaviour across platforms.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_RNG_H
#define HERD_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace herd {

/// SplitMix64: a 64-bit generator with a single word of state.  Passes
/// BigCrush when used as a stream; more than adequate for schedule jitter
/// and test-input generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the small bounds used by the scheduler and tests.
    return uint64_t((__uint128_t(next()) * Bound) >> 64);
  }

  /// Returns a value uniformly distributed in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + int64_t(nextBelow(uint64_t(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool nextChance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

private:
  uint64_t State;
};

} // namespace herd

#endif // HERD_SUPPORT_RNG_H
