//===- support/ByteRle.h - Byte-oriented RLE codec --------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny packbits-style run-length codec for the checked-in trace corpus
/// (tests/corpus/).  Trace files are fixed-width binary records whose high
/// bytes are overwhelmingly zero, so plain byte RLE recovers most of the
/// redundancy without pulling a compression library into the build (the
/// repo deliberately has no zlib dependency).
///
/// Format: a stream of tokens.  A token byte T encodes
///
///   T < 128   — literal run: the next T + 1 bytes are copied verbatim.
///   T >= 128  — repeat run: the next byte is repeated (T - 128) + 2 times
///               (runs of 2..129).
///
/// The encoder emits repeat runs only for runs of length >= 3 (a 2-run
/// costs the same encoded either way, and folding it into a literal run
/// avoids breaking surrounding literals), so decode(encode(x)) == x for
/// every input and the encoded size never exceeds input + ceil(input/128).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_SUPPORT_BYTERLE_H
#define HERD_SUPPORT_BYTERLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace herd {

/// Compresses \p Size bytes at \p Data.  Never fails.
inline std::vector<uint8_t> rleCompress(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Out;
  Out.reserve(Size / 4 + 16);
  size_t I = 0;
  size_t LitStart = 0; // first byte of the pending literal run
  auto flushLiterals = [&](size_t End) {
    while (LitStart < End) {
      size_t N = End - LitStart;
      if (N > 128)
        N = 128;
      Out.push_back(uint8_t(N - 1));
      Out.insert(Out.end(), Data + LitStart, Data + LitStart + N);
      LitStart += N;
    }
  };
  while (I < Size) {
    size_t Run = 1;
    while (I + Run < Size && Data[I + Run] == Data[I] && Run < 129)
      ++Run;
    if (Run >= 3) {
      flushLiterals(I);
      Out.push_back(uint8_t(128 + (Run - 2)));
      Out.push_back(Data[I]);
      I += Run;
      LitStart = I;
    } else {
      I += Run; // short run: leave it to the literal accumulator
    }
  }
  flushLiterals(Size);
  return Out;
}

inline std::vector<uint8_t> rleCompress(const std::vector<uint8_t> &In) {
  return rleCompress(In.data(), In.size());
}

/// Decompresses \p In into \p Out (overwritten).  Returns false on a
/// truncated stream (a token promising more bytes than remain).
inline bool rleDecompress(const uint8_t *Data, size_t Size,
                          std::vector<uint8_t> &Out) {
  Out.clear();
  size_t I = 0;
  while (I < Size) {
    uint8_t T = Data[I++];
    if (T < 128) {
      size_t N = size_t(T) + 1;
      if (Size - I < N)
        return false;
      Out.insert(Out.end(), Data + I, Data + I + N);
      I += N;
    } else {
      if (I == Size)
        return false;
      size_t N = size_t(T - 128) + 2;
      Out.insert(Out.end(), N, Data[I++]);
    }
  }
  return true;
}

inline bool rleDecompress(const std::vector<uint8_t> &In,
                          std::vector<uint8_t> &Out) {
  return rleDecompress(In.data(), In.size(), Out);
}

} // namespace herd

#endif // HERD_SUPPORT_BYTERLE_H
