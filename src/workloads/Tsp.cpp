//===- workloads/Tsp.cpp - tsp replica (ETH branch-and-bound) -------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replica of the ETH traveling-salesman solver (Table 1: 3 threads).
///
/// Ground truth per Section 8.3:
///   - TspSolver.MinTourLen, the shared branch-and-bound bound, is read
///     for pruning and written on improvement by both solver threads with
///     no lock — "a serious datarace ... which can lead to incorrect
///     output";
///   - TourElement objects are handed between threads through a locked
///     work queue and then mutated without locks: protected by
///     higher-level synchronization the detector cannot see, so they are
///     reported although "they cannot in fact happen" — the paper's
///     feasible-but-benign tsp reports;
///   - the distance matrix is initialized by main and only read by the
///     workers.
///
/// The recursive search with method calls on every node is what makes the
/// access cache essential: calls kill the static weaker-than facts, so
/// nearly every dynamic access produces an event, and without the cache
/// each goes through the trie (NoCache was 3722% in the paper).
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "workloads/Workloads.h"

using namespace herd;

Workload herd::buildTsp(uint32_t Scale) {
  Workload W;
  W.Name = "tsp";
  W.Description = "traveling salesman branch-and-bound (ETH tsp replica)";
  W.DynamicThreads = 3;
  W.CpuBound = true;
  W.ExpectedRacyObjectsFull = 5; // MinTourLen statics + 4 TourElements

  Program &P = W.P;
  IRBuilder B(P);

  ClassId TspSolver = B.makeClass("TspSolver");
  FieldId MinTourLen = B.makeStaticField(TspSolver, "MinTourLen");

  ClassId TourElement = B.makeClass("TourElement");
  FieldId TePrefix = B.makeField(TourElement, "prefixLen");
  FieldId TeLast = B.makeField(TourElement, "lastCity");

  ClassId Queue = B.makeClass("WorkQueue");
  FieldId QSlots = B.makeField(Queue, "slots");
  FieldId QTake = B.makeField(Queue, "takeIndex");

  ClassId Solver = B.makeClass("SolverThread");
  FieldId SDist = B.makeField(Solver, "distance");
  FieldId SQueue = B.makeField(Solver, "queue");
  FieldId SCities = B.makeField(Solver, "numCities");
  FieldId SBits = B.makeField(Solver, "bitOf"); // bitOf[i] = 1 << i
  FieldId SRounds = B.makeField(Solver, "rounds");

  // SolverThread.search(this, dist, city, visitedMask, len, depth):
  // recursive branch-and-bound; prunes on the shared bound and publishes
  // improvements without a lock (the real race).  Reads the distance
  // matrix and the bit-lookup table on every node: the access-dense,
  // call-heavy profile that makes the runtime cache essential.
  MethodId Search = B.startMethod(Solver, "search", 6);
  {
    RegId Dist = B.param(1);
    RegId City = B.param(2);
    RegId Visited = B.param(3);
    RegId Len = B.param(4);
    RegId Depth = B.param(5);
    RegId N = B.emitGetField(B.thisReg(), SCities);
    RegId Bits = B.emitGetField(B.thisReg(), SBits);

    // Prune: if len >= MinTourLen, give up this branch.
    B.site("tsp:bound-read");
    RegId Bound = B.emitGetStatic(MinTourLen);
    RegId Pruned = B.emitBinOp(BinOpKind::CmpGe, Len, Bound);
    B.ifThen(Pruned, [&] { B.emitReturn(); });

    // Complete tour: maybe improve the bound (unsynchronized write).
    RegId Done = B.emitBinOp(BinOpKind::CmpGe, Depth, N);
    B.ifThen(Done, [&] {
      B.site("tsp:bound-read2");
      RegId Best = B.emitGetStatic(MinTourLen);
      RegId Improves = B.emitBinOp(BinOpKind::CmpLt, Len, Best);
      B.ifThen(Improves, [&] {
        B.site("tsp:bound-write");
        B.emitPutStatic(MinTourLen, Len);
      });
      B.emitReturn();
    });

    // Recurse over unvisited cities.
    B.forLoop(0, N, 1, [&](RegId Next) {
      B.site("tsp:bit-read");
      RegId Mask = B.emitALoad(Bits, Next);
      RegId Seen = B.emitBinOp(BinOpKind::And, Visited, Mask);
      RegId Unseen = B.emitBinOp(BinOpKind::CmpEq, Seen, B.emitConst(0));
      B.ifThen(Unseen, [&] {
        // edge = dist[city * n + next]  (read-only shared matrix).
        RegId RowBase = B.emitBinOp(BinOpKind::Mul, City, N);
        RegId Index = B.emitBinOp(BinOpKind::Add, RowBase, Next);
        B.site("tsp:dist-read");
        RegId Edge = B.emitALoad(Dist, Index);
        RegId NewLen = B.emitBinOp(BinOpKind::Add, Len, Edge);
        RegId NewVisited = B.emitBinOp(BinOpKind::Or, Visited, Mask);
        RegId NewDepth = B.emitBinOp(BinOpKind::Add, Depth, B.emitConst(1));
        B.emitCallVoid(Search, {B.thisReg(), Dist, Next, NewVisited,
                                NewLen, NewDepth});
      });
    });
    B.emitReturn();
  }

  // SolverThread.run: repeatedly take a TourElement from the locked
  // queue, mutate it WITHOUT the lock (higher-level protocol), and solve
  // from its prefix.
  B.startMethod(Solver, "run", 1);
  {
    RegId This = B.thisReg();
    RegId Dist = B.emitGetField(This, SDist);
    RegId QueueObj = B.emitGetField(This, SQueue);
    RegId Slots = B.emitGetField(QueueObj, QSlots);
    RegId Rounds = B.emitGetField(This, SRounds);
    B.forLoop(0, Rounds, 1, [&](RegId) {
      // Take under the queue lock.
      RegId Elem = B.emitMove(Slots); // placeholder ref; overwritten below
      B.sync(QueueObj, [&] {
        B.site("tsp:queue-take");
        RegId Take = B.emitGetField(QueueObj, QTake);
        RegId SlotCount = B.emitArrayLen(Slots);
        RegId Wrapped = B.emitBinOp(BinOpKind::Mod, Take, SlotCount);
        B.emitAssign(Elem, B.emitALoad(Slots, Wrapped));
        B.emitPutField(QueueObj, QTake,
                       B.emitBinOp(BinOpKind::Add, Take, B.emitConst(1)));
      });
      // Mutate the element outside the lock: the benign-but-reported
      // TourElement accesses.
      B.site("tsp:element-update");
      RegId Steps = B.emitGetField(Elem, TePrefix);
      B.emitPutField(Elem, TePrefix,
                     B.emitBinOp(BinOpKind::Add, Steps, B.emitConst(1)));
      RegId Start = B.emitGetField(Elem, TeLast);

      // Solve from this start city.
      RegId Bits = B.emitGetField(This, SBits);
      RegId StartMask = B.emitALoad(Bits, Start);
      B.emitCallVoid(Search, {This, Dist, Start, StartMask, B.emitConst(0),
                              B.emitConst(1)});
    });
    // Final audit sweep over every element, again without the queue lock
    // (the higher-level protocol "knows" the rounds are over); ensures
    // both workers touch all four TourElements, as in the original tsp
    // where every element's fields are reported.
    RegId SlotCount = B.emitArrayLen(Slots);
    B.forLoop(0, SlotCount, 1, [&](RegId I) {
      RegId Elem2 = B.emitALoad(Slots, I);
      B.site("tsp:element-audit");
      RegId Steps2 = B.emitGetField(Elem2, TePrefix);
      B.emitPutField(Elem2, TePrefix,
                     B.emitBinOp(BinOpKind::Add, Steps2, B.emitConst(0)));
    });
    B.emitReturn();
  }

  // main.
  B.startMain();
  {
    int64_t NumCities = 6;    // recursion breadth (6 keeps 5! leaf tours)
    int64_t NumElements = 4;
    int64_t Rounds = 6 * int64_t(Scale); // work scales with rounds

    RegId N = B.emitConst(NumCities);
    RegId MatrixSize = B.emitBinOp(BinOpKind::Mul, N, N);
    RegId Dist = B.emitNewArray(MatrixSize);
    B.site("tsp:matrix-init");
    B.forLoop(0, MatrixSize, 1, [&](RegId I) {
      RegId Seven = B.emitConst(7);
      RegId Thirteen = B.emitConst(13);
      RegId V = B.emitBinOp(BinOpKind::Mod,
                            B.emitBinOp(BinOpKind::Mul, I, Seven), Thirteen);
      B.emitAStore(Dist, I, B.emitBinOp(BinOpKind::Add, V, B.emitConst(1)));
    });

    B.emitPutStatic(MinTourLen, B.emitConst(1'000'000));

    RegId Bits = B.emitNewArray(B.emitConst(NumCities + 1));
    RegId BitVal = B.emitConst(1);
    B.site("tsp:bits-init");
    B.forLoop(0, B.emitArrayLen(Bits), 1, [&](RegId I) {
      B.emitAStore(Bits, I, BitVal);
      B.emitAssign(BitVal, B.emitBinOp(BinOpKind::Add, BitVal, BitVal));
    });

    RegId QueueObj = B.emitNew(Queue);
    RegId Slots = B.emitNewArray(B.emitConst(NumElements));
    B.emitPutField(QueueObj, QSlots, Slots);
    B.emitPutField(QueueObj, QTake, B.emitConst(0));
    B.site("tsp:elements-init");
    B.forLoop(0, B.emitConst(NumElements), 1, [&](RegId I) {
      RegId Elem = B.emitNew(TourElement);
      B.emitPutField(Elem, TePrefix, B.emitConst(0));
      RegId City = B.emitBinOp(BinOpKind::Mod, I, N);
      B.emitPutField(Elem, TeLast, City);
      B.emitAStore(Slots, I, Elem);
    });

    auto MakeSolver = [&] {
      RegId S = B.emitNew(Solver);
      B.emitPutField(S, SDist, Dist);
      B.emitPutField(S, SQueue, QueueObj);
      B.emitPutField(S, SCities, N);
      B.emitPutField(S, SBits, Bits);
      B.emitPutField(S, SRounds, B.emitConst(Rounds));
      return S;
    };
    RegId S1 = MakeSolver();
    RegId S2 = MakeSolver();
    B.emitThreadStart(S1);
    B.emitThreadStart(S2);
    B.emitThreadJoin(S1);
    B.emitThreadJoin(S2);
    B.emitPrint(B.emitGetStatic(MinTourLen));
    B.emitReturn();
  }

  return W;
}
