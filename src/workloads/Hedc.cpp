//===- workloads/Hedc.cpp - hedc replica (web-crawler kernel) -------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replica of the ETH hedc web-crawler application kernel (Table 1: 8
/// dynamic threads), built on a Doug-Lea-style task pool.
///
/// Ground truth per Section 8.3:
///   - the thread pool's size field is "read and written without
///     appropriate locking" — a real race on the pool object;
///   - Task.thread_ is assigned null by the completing worker with no
///     lock, racing with cancel()'s read from another thread — the
///     NullPointerException bug previous work misclassified as benign
///     (4 Task objects -> 4 reported objects; with the pool that makes
///     the paper's 5);
///   - LinkedQueue mixes immutable fields read lock-free with mutable
///     head/tail guarded by the queue lock: correct per-field discipline
///     that FieldsMerged conflates into spurious reports;
///   - MetaSearchRequest objects mix thread-local scratch with properly
///     locked shared results — likewise conflated by FieldsMerged.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "workloads/Workloads.h"

using namespace herd;

Workload herd::buildHedc(uint32_t Scale) {
  Workload W;
  W.Name = "hedc";
  W.Description = "web crawler task-pool kernel (ETH hedc replica)";
  W.DynamicThreads = 8;
  W.CpuBound = false;
  W.ExpectedRacyObjectsFull = 5; // pool + 4 tasks

  Program &P = W.P;
  IRBuilder B(P);

  ClassId Pool = B.makeClass("ThreadPool");
  FieldId PoolSize = B.makeField(Pool, "size");
  FieldId PoolQueue = B.makeField(Pool, "queue");

  ClassId LinkedQueue = B.makeClass("LinkedQueue");
  FieldId QCapacity = B.makeField(LinkedQueue, "capacity"); // immutable
  FieldId QItems = B.makeField(LinkedQueue, "items");       // immutable ref
  FieldId QHead = B.makeField(LinkedQueue, "head");         // locked
  FieldId QTail = B.makeField(LinkedQueue, "tail");         // locked

  ClassId Task = B.makeClass("Task");
  FieldId TaskThread = B.makeField(Task, "thread_");
  FieldId TaskDone = B.makeField(Task, "done");
  FieldId TaskRequest = B.makeField(Task, "request");

  ClassId Request = B.makeClass("MetaSearchRequest");
  FieldId ReqResult = B.makeField(Request, "result");   // locked
  FieldId ReqLock = B.makeField(Request, "lock");
  FieldId ReqScratch = B.makeField(Request, "scratch"); // effectively local

  ClassId LockCls = B.makeClass("LockObj");

  ClassId WorkerCls = B.makeClass("PoolWorker");
  FieldId WPool = B.makeField(WorkerCls, "pool");
  FieldId WSelfId = B.makeField(WorkerCls, "selfId");

  ClassId Canceller = B.makeClass("Canceller");
  FieldId CTask = B.makeField(Canceller, "task");

  // LinkedQueue.poll(this): take the next task under the queue lock;
  // capacity is read lock-free (immutable after construction).
  MethodId QueuePoll = B.startMethod(LinkedQueue, "poll", 1);
  {
    RegId This = B.thisReg();
    B.site("hedc:capacity-read");
    RegId Capacity = B.emitGetField(This, QCapacity); // lock-free read
    RegId Result = B.emitConst(0);
    RegId NullRef = B.newReg(); // stays integer 0; reassigned below
    B.emitAssign(NullRef, Result);
    B.sync(This, [&] {
      B.site("hedc:queue-poll");
      RegId Head = B.emitGetField(This, QHead);
      RegId Tail = B.emitGetField(This, QTail);
      RegId HasWork = B.emitBinOp(BinOpKind::CmpLt, Head, Tail);
      B.ifThen(HasWork, [&] {
        RegId Items = B.emitGetField(This, QItems);
        RegId Wrapped = B.emitBinOp(BinOpKind::Mod, Head, Capacity);
        B.emitAssign(NullRef, B.emitALoad(Items, Wrapped));
        B.emitPutField(This, QHead,
                       B.emitBinOp(BinOpKind::Add, Head, B.emitConst(1)));
      });
    });
    B.emitReturn(NullRef);
  }

  // Task.process(this, workerId): record the claiming worker, do the
  // search work, publish the result under the request's lock, then clear
  // thread_ WITHOUT a lock — the Task.thread_ race.
  MethodId TaskProcess = B.startMethod(Task, "process", 2);
  {
    RegId This = B.thisReg();
    RegId WorkerId = B.param(1);
    B.site("hedc:thread_-assign");
    B.emitPutField(This, TaskThread, WorkerId);

    RegId Req = B.emitGetField(This, TaskRequest);
    // Thread-local-ish scratch work on the request.
    B.site("hedc:scratch");
    RegId N = B.emitConst(12);
    B.forLoop(0, N, 1, [&](RegId I) {
      RegId S = B.emitGetField(Req, ReqScratch);
      B.emitPutField(Req, ReqScratch, B.emitBinOp(BinOpKind::Add, S, I));
    });
    // Publish under the request lock.
    RegId Lock = B.emitGetField(Req, ReqLock);
    B.sync(Lock, [&] {
      B.site("hedc:result-publish");
      RegId R = B.emitGetField(Req, ReqResult);
      RegId S = B.emitGetField(Req, ReqScratch);
      B.emitPutField(Req, ReqResult, B.emitBinOp(BinOpKind::Add, R, S));
    });
    // Completion: null out thread_ with no lock (the real race with
    // cancel()).
    B.site("hedc:thread_-nullout");
    B.emitPutField(This, TaskThread, B.emitConst(0));
    B.emitPutField(This, TaskDone, B.emitConst(1));
    B.emitReturn();
  }

  // PoolWorker.run: poll tasks; adjust pool.size without the lock (the
  // real pool race); process each task.
  B.startMethod(WorkerCls, "run", 1);
  {
    RegId This = B.thisReg();
    RegId PoolObj = B.emitGetField(This, WPool);
    RegId QueueObj = B.emitGetField(PoolObj, PoolQueue);
    RegId SelfId = B.emitGetField(This, WSelfId);
    RegId Busy = B.emitConst(1);
    B.whileLoop(
        [&] { return B.emitMove(Busy); },
        [&] {
          RegId TaskRef = B.emitCall(QueuePoll, {QueueObj});
          RegId None = B.emitBinOp(BinOpKind::CmpEq, TaskRef,
                                   B.emitConst(0));
          B.ifThenElse(
              None, [&] { B.emitAssign(Busy, B.emitConst(0)); },
              [&] {
                // pool.size++ ... pool.size-- with NO lock: the real race
                // ("the size of a thread pool is read and written without
                // appropriate locking").
                B.site("hedc:poolsize++");
                RegId Sz = B.emitGetField(PoolObj, PoolSize);
                B.emitPutField(PoolObj, PoolSize,
                               B.emitBinOp(BinOpKind::Add, Sz,
                                           B.emitConst(1)));
                B.emitCallVoid(TaskProcess, {TaskRef, SelfId});
                B.site("hedc:poolsize--");
                RegId Sz2 = B.emitGetField(PoolObj, PoolSize);
                B.emitPutField(PoolObj, PoolSize,
                               B.emitBinOp(BinOpKind::Sub, Sz2,
                                           B.emitConst(1)));
              });
        });
    B.emitReturn();
  }

  // Canceller.run: Task.cancel() — read thread_ with no lock and "would
  // interrupt" the worker if it is still set.
  B.startMethod(Canceller, "run", 1);
  {
    RegId This = B.thisReg();
    RegId TaskRef = B.emitGetField(This, CTask);
    RegId Tries = B.emitConst(6);
    B.forLoop(0, Tries, 1, [&](RegId) {
      B.site("hedc:cancel-read");
      RegId Th = B.emitGetField(TaskRef, TaskThread);
      B.ifThen(Th, [&] { B.emitYield(); });
      B.emitYield();
    });
    // Inspect the result under the request's lock: correct per-field
    // locking on MetaSearchRequest (result locked, scratch single-owner)
    // that FieldsMerged conflates into a spurious report.
    RegId Req = B.emitGetField(TaskRef, TaskRequest);
    RegId Lock = B.emitGetField(Req, ReqLock);
    B.sync(Lock, [&] {
      B.site("hedc:result-inspect");
      RegId R = B.emitGetField(Req, ReqResult);
      B.ifThen(R, [&] { B.emitYield(); });
    });
    B.emitReturn();
  }

  // main: 1 + 3 workers + 4 cancellers = 8 threads.
  B.startMain();
  {
    int64_t NumTasks = 4;
    int64_t Capacity = 8;
    (void)Scale;

    RegId QueueObj = B.emitNew(LinkedQueue);
    RegId Items = B.emitNewArray(B.emitConst(Capacity));
    B.emitPutField(QueueObj, QItems, Items);
    B.emitPutField(QueueObj, QCapacity, B.emitConst(Capacity));
    B.emitPutField(QueueObj, QHead, B.emitConst(0));

    RegId PoolObj = B.emitNew(Pool);
    B.emitPutField(PoolObj, PoolQueue, QueueObj);
    B.emitPutField(PoolObj, PoolSize, B.emitConst(0));

    // Tasks and their requests.
    RegId TaskRefs[4];
    for (int64_t I = 0; I != NumTasks; ++I) {
      RegId Req = B.emitNew(Request);
      B.emitPutField(Req, ReqLock, B.emitNew(LockCls));
      B.emitPutField(Req, ReqResult, B.emitConst(0));
      B.emitPutField(Req, ReqScratch, B.emitConst(0));
      RegId T = B.emitNew(Task);
      B.emitPutField(T, TaskRequest, Req);
      B.emitPutField(T, TaskThread, B.emitConst(0));
      B.emitPutField(T, TaskDone, B.emitConst(0));
      B.emitAStore(Items, B.emitConst(I), T);
      TaskRefs[I] = T;
    }
    B.emitPutField(QueueObj, QTail, B.emitConst(NumTasks));

    // Three pool workers.
    RegId Workers[3];
    for (int64_t I = 0; I != 3; ++I) {
      RegId Wk = B.emitNew(WorkerCls);
      B.emitPutField(Wk, WPool, PoolObj);
      B.emitPutField(Wk, WSelfId, B.emitConst(I + 1));
      Workers[I] = Wk;
    }
    // Four cancellers, one per task.
    RegId Cancellers[4];
    for (int64_t I = 0; I != NumTasks; ++I) {
      RegId C = B.emitNew(Canceller);
      B.emitPutField(C, CTask, TaskRefs[I]);
      Cancellers[I] = C;
    }

    for (RegId Wk : Workers)
      B.emitThreadStart(Wk);
    for (RegId C : Cancellers)
      B.emitThreadStart(C);
    for (RegId Wk : Workers)
      B.emitThreadJoin(Wk);
    for (RegId C : Cancellers)
      B.emitThreadJoin(C);

    B.emitPrint(B.emitGetField(PoolObj, PoolSize));
    for (RegId T : TaskRefs)
      B.emitPrint(B.emitGetField(T, TaskDone));
    B.emitReturn();
  }

  return W;
}
