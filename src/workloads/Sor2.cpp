//===- workloads/Sor2.cpp - sor2 replica (ETH over-relaxation) ------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replica of the ETH sor2 benchmark (Table 1: 3 threads) — the variant
/// the paper derived "by manually hoisting loop invariant array subscript
/// expressions out of inner loops", which is precisely what lets the
/// dominator-based weaker-than elimination plus loop peeling remove the
/// per-element instrumentation (sor2 was the benchmark where NoDominators
/// cost 316% and NoPeeling 226%).
///
/// Two worker threads relax disjoint row ranges of a grid, synchronizing
/// between phases with a spin barrier.  Ground truth per Section 8.3: the
/// reported races "are not truly unsynchronized accesses; the program uses
/// barrier synchronization, which is not captured by our algorithm":
///   - the barrier generation field is written under the barrier's lock
///     but spun on with no lock;
///   - the boundary rows are written by one worker and read by the other
///     with only the barrier ordering them;
///   - a shared `converged` flag is written by both workers lock-free.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "workloads/Workloads.h"

using namespace herd;

Workload herd::buildSor2(uint32_t Scale) {
  Workload W;
  W.Name = "sor2";
  W.Description = "successive over-relaxation with barriers (ETH sor2)";
  W.DynamicThreads = 3;
  W.CpuBound = true;
  // Barrier object + converged holder + the two boundary row arrays.
  W.ExpectedRacyObjectsFull = 4;

  Program &P = W.P;
  IRBuilder B(P);

  ClassId Barrier = B.makeClass("SpinBarrier");
  FieldId BarCount = B.makeField(Barrier, "count");
  FieldId BarGen = B.makeField(Barrier, "generation");
  FieldId BarParties = B.makeField(Barrier, "parties");

  ClassId Grid = B.makeClass("Grid");
  FieldId GridRows = B.makeField(Grid, "rows");     // array of row arrays
  FieldId GridConverged = B.makeField(Grid, "converged");

  ClassId Worker = B.makeClass("SorWorker");
  FieldId WGrid = B.makeField(Worker, "grid");
  FieldId WBarrier = B.makeField(Worker, "barrier");
  FieldId WLo = B.makeField(Worker, "lo");
  FieldId WHi = B.makeField(Worker, "hi");
  FieldId WPhases = B.makeField(Worker, "phases");

  // SpinBarrier.await(this): arrive under the barrier's monitor, then spin
  // (with yields) on the generation field WITHOUT the lock — the
  // barrier-internal race the detector reports.
  MethodId Await = B.startMethod(Barrier, "await", 1);
  {
    RegId This = B.thisReg();
    RegId MyGen = B.newReg();
    B.sync(This, [&] {
      B.site("sor2:barrier-arrive");
      B.emitAssign(MyGen, B.emitGetField(This, BarGen));
      RegId C = B.emitGetField(This, BarCount);
      RegId C1 = B.emitBinOp(BinOpKind::Add, C, B.emitConst(1));
      B.emitPutField(This, BarCount, C1);
      RegId Parties = B.emitGetField(This, BarParties);
      RegId Last = B.emitBinOp(BinOpKind::CmpGe, C1, Parties);
      B.ifThen(Last, [&] {
        B.emitPutField(This, BarCount, B.emitConst(0));
        B.site("sor2:barrier-advance");
        RegId G = B.emitGetField(This, BarGen);
        B.emitPutField(This, BarGen,
                       B.emitBinOp(BinOpKind::Add, G, B.emitConst(1)));
      });
    });
    // Spin until the generation advances (unsynchronized read).
    B.whileLoop(
        [&] {
          B.site("sor2:barrier-spin");
          RegId G = B.emitGetField(This, BarGen);
          return B.emitBinOp(BinOpKind::CmpEq, G, MyGen);
        },
        [&] { B.emitYield(); });
    B.emitReturn();
  }

  // SorWorker.relaxRow(this, row, up, down): the hand-hoisted inner loop —
  // the row references are loop-invariant registers, so after peeling the
  // weaker-than elimination removes every per-element trace.
  MethodId RelaxRow = B.startMethod(Worker, "relaxRow", 4);
  {
    RegId Row = B.param(1);
    RegId Up = B.param(2);
    RegId Down = B.param(3);
    RegId Len = B.emitArrayLen(Row);
    B.site("sor2:relax-loop");
    B.forLoop(0, Len, 1, [&](RegId J) {
      RegId A = B.emitALoad(Row, J);
      RegId Bv = B.emitALoad(Up, J);
      RegId Cv = B.emitALoad(Down, J);
      RegId Sum = B.emitBinOp(BinOpKind::Add, A, B.emitBinOp(BinOpKind::Add,
                                                             Bv, Cv));
      RegId Avg = B.emitBinOp(BinOpKind::Div, Sum, B.emitConst(3));
      B.emitAStore(Row, J, Avg);
    });
    B.emitReturn();
  }

  // SorWorker.run.
  B.startMethod(Worker, "run", 1);
  {
    RegId This = B.thisReg();
    RegId GridObj = B.emitGetField(This, WGrid);
    RegId Rows = B.emitGetField(GridObj, GridRows);
    RegId BarrierObj = B.emitGetField(This, WBarrier);
    RegId Lo = B.emitGetField(This, WLo);
    RegId Hi = B.emitGetField(This, WHi);
    RegId Phases = B.emitGetField(This, WPhases);

    B.forLoop(0, Phases, 1, [&](RegId) {
      // Relax own rows; neighbours may be the other worker's rows (the
      // boundary reads the barrier is supposed to order).
      RegId I = B.emitMove(Lo);
      B.whileLoop(
          [&] { return B.emitBinOp(BinOpKind::CmpLt, I, Hi); },
          [&] {
            RegId Row = B.emitALoad(Rows, I);
            RegId IM1 = B.emitBinOp(BinOpKind::Sub, I, B.emitConst(1));
            RegId IP1 = B.emitBinOp(BinOpKind::Add, I, B.emitConst(1));
            RegId Up = B.emitALoad(Rows, IM1);
            RegId Down = B.emitALoad(Rows, IP1);
            B.emitCallVoid(RelaxRow, {This, Row, Up, Down});
            B.emitAssign(I, B.emitBinOp(BinOpKind::Add, I, B.emitConst(1)));
          });
      // Signal progress lock-free (the converged-flag race).
      B.site("sor2:converged-write");
      RegId Flag = B.emitGetField(GridObj, GridConverged);
      B.emitPutField(GridObj, GridConverged,
                     B.emitBinOp(BinOpKind::Add, Flag, B.emitConst(1)));
      // Phase barrier.
      B.emitCallVoid(Await, {BarrierObj});
    });
    B.emitReturn();
  }

  // main.
  B.startMain();
  {
    int64_t NumRows = 10;
    int64_t RowLen = 24 * int64_t(Scale);
    int64_t Phases = 4;

    RegId GridObj = B.emitNew(Grid);
    RegId Rows = B.emitNewArray(B.emitConst(NumRows));
    B.emitPutField(GridObj, GridRows, Rows);
    B.emitPutField(GridObj, GridConverged, B.emitConst(0));
    B.site("sor2:grid-init");
    B.forLoop(0, B.emitConst(NumRows), 1, [&](RegId I) {
      RegId Row = B.emitNewArray(B.emitConst(RowLen));
      RegId Len = B.emitArrayLen(Row);
      B.forLoop(0, Len, 1, [&](RegId J) {
        RegId V = B.emitBinOp(BinOpKind::Add, B.emitBinOp(BinOpKind::Mul, I,
                                                          B.emitConst(31)),
                              J);
        B.emitAStore(Row, J, V);
      });
      B.emitAStore(Rows, I, Row);
    });

    RegId BarrierObj = B.emitNew(Barrier);
    B.emitPutField(BarrierObj, BarParties, B.emitConst(2));
    B.emitPutField(BarrierObj, BarCount, B.emitConst(0));
    B.emitPutField(BarrierObj, BarGen, B.emitConst(0));

    int64_t Mid = NumRows / 2;
    auto MakeWorker = [&](int64_t Lo, int64_t Hi) {
      RegId Wk = B.emitNew(Worker);
      B.emitPutField(Wk, WGrid, GridObj);
      B.emitPutField(Wk, WBarrier, BarrierObj);
      B.emitPutField(Wk, WLo, B.emitConst(Lo));
      B.emitPutField(Wk, WHi, B.emitConst(Hi));
      B.emitPutField(Wk, WPhases, B.emitConst(Phases));
      return Wk;
    };
    RegId W1 = MakeWorker(1, Mid);
    RegId W2 = MakeWorker(Mid, NumRows - 1);
    B.emitThreadStart(W1);
    B.emitThreadStart(W2);
    B.emitThreadJoin(W1);
    B.emitThreadJoin(W2);

    // Print a checksum row element to keep the computation observable.
    RegId MidRow = B.emitALoad(Rows, B.emitConst(Mid));
    B.emitPrint(B.emitALoad(MidRow, B.emitConst(0)));
    B.emitReturn();
  }

  return W;
}
