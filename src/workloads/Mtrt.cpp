//===- workloads/Mtrt.cpp - mtrt replica (SPECJVM98 ray tracer) -----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replica of SPECJVM98 mtrt's sharing structure (Table 1: 3 threads).
///
/// Ground truth engineered to match Section 8.3's findings:
///   - RayTrace.threadCount (a static) is incremented and decremented by
///     both render threads without synchronization — a real race whose
///     value "is fortunately not actually used";
///   - the shared output stream's startOfLine flag is toggled by both
///     threads without synchronization — a real race;
///   - I/O statistics are updated by the children under a common lock and
///     read by the parent after join() with no lock: locksets {S1, c},
///     {S2, c}, {S1, S2} are mutually intersecting, so the paper's
///     detector is silent while Eraser (no join model) reports;
///   - the scene geometry is initialized by main and only *read* by the
///     workers, and each worker renders into its own canvas: no races;
///   - per-pixel scratch Vec objects are thread-local, so the static
///     escape analysis removes their (numerous) accesses — the reason
///     mtrt without static analysis exhausted memory in the paper.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "workloads/Workloads.h"

using namespace herd;

Workload herd::buildMtrt(uint32_t Scale) {
  Workload W;
  W.Name = "mtrt";
  W.Description = "multithreaded ray tracer (SPECJVM98 mtrt replica)";
  W.DynamicThreads = 3;
  W.CpuBound = true;
  W.ExpectedRacyObjectsFull = 2; // threadCount statics + stream

  Program &P = W.P;
  IRBuilder B(P);

  ClassId Scene = B.makeClass("Scene");
  FieldId SceneGeom = B.makeField(Scene, "geom");
  FieldId SceneSize = B.makeField(Scene, "size");

  ClassId RayTrace = B.makeClass("RayTrace");
  FieldId ThreadCount = B.makeStaticField(RayTrace, "threadCount");

  ClassId Stream = B.makeClass("ValidityCheckOutputStream");
  FieldId StartOfLine = B.makeField(Stream, "startOfLine");

  ClassId Stats = B.makeClass("IOStats");
  FieldId StatsRays = B.makeField(Stats, "raysTraced");
  FieldId StatsHits = B.makeField(Stats, "hits");

  ClassId LockCls = B.makeClass("SyncObject");

  ClassId Vec = B.makeClass("Vec");
  FieldId VecX = B.makeField(Vec, "x");
  FieldId VecY = B.makeField(Vec, "y");
  FieldId VecZ = B.makeField(Vec, "z");

  ClassId Render = B.makeClass("RenderThread");
  FieldId RScene = B.makeField(Render, "scene");
  FieldId RStream = B.makeField(Render, "stream");
  FieldId RStats = B.makeField(Render, "stats");
  FieldId RSync = B.makeField(Render, "syncObject");
  FieldId RCanvas = B.makeField(Render, "canvas");
  FieldId RLo = B.makeField(Render, "lo");
  FieldId RHi = B.makeField(Render, "hi");

  // Stream.print(this): toggle startOfLine with no lock (the real race on
  // ValidityCheckOutputStream.startOfLine).
  MethodId StreamPrint = B.startMethod(Stream, "print", 1);
  {
    B.site("mtrt:Stream.print");
    RegId S = B.emitGetField(B.thisReg(), StartOfLine);
    RegId One = B.emitConst(1);
    B.emitPutField(B.thisReg(), StartOfLine,
                   B.emitBinOp(BinOpKind::Sub, One, S));
    B.emitReturn();
  }

  // RenderThread.shade(this, v, geomArr, i): per-pixel inner work over the
  // read-only geometry; v is a thread-local scratch Vec.
  MethodId Shade = B.startMethod(Render, "shade", 4);
  {
    RegId V = B.param(1);
    RegId Geom = B.param(2);
    RegId I = B.param(3);
    RegId Len = B.emitArrayLen(Geom);
    RegId Acc = B.emitConst(0);
    B.site("mtrt:shade-loop");
    B.forLoop(0, Len, 1, [&](RegId K) {
      RegId G = B.emitALoad(Geom, K);
      RegId X = B.emitGetField(V, VecX);
      RegId Mix = B.emitBinOp(BinOpKind::Add, G, X);
      RegId Mask = B.emitConst(1023);
      RegId Wrapped = B.emitBinOp(BinOpKind::And, Mix, Mask);
      B.emitPutField(V, VecY, Wrapped);
      // Accumulate into the scratch register via the Vec (thread-local).
      RegId Prev = B.emitGetField(V, VecZ);
      B.emitPutField(V, VecZ, B.emitBinOp(BinOpKind::Add, Prev, Wrapped));
      (void)Acc;
      (void)I;
    });
    B.emitReturn(B.emitGetField(V, VecZ));
  }

  // RenderThread.run.
  B.startMethod(Render, "run", 1);
  {
    RegId This = B.thisReg();
    // threadCount++ at thread start: the real unsynchronized race.
    B.site("mtrt:threadCount++");
    RegId TC = B.emitGetStatic(ThreadCount);
    B.emitPutStatic(ThreadCount, B.emitBinOp(BinOpKind::Add, TC,
                                             B.emitConst(1)));

    RegId SceneObj = B.emitGetField(This, RScene);
    RegId SharedGeom = B.emitGetField(SceneObj, SceneGeom);
    // Copy the scene into a thread-local array first (the real tracer's
    // hot data is per-thread); shade() then runs entirely on thread-local
    // storage, which the static escape analysis proves race-free — the
    // bulk of mtrt's accesses, and the reason NoStatic explodes.
    RegId GeomLen = B.emitArrayLen(SharedGeom);
    RegId Geom = B.emitNewArray(GeomLen);
    B.site("mtrt:geom-copy");
    B.forLoop(0, GeomLen, 1, [&](RegId K) {
      B.emitAStore(Geom, K, B.emitALoad(SharedGeom, K));
    });
    RegId Canvas = B.emitGetField(This, RCanvas);
    RegId StreamObj = B.emitGetField(This, RStream);
    RegId StatsObj = B.emitGetField(This, RStats);
    RegId SyncObj = B.emitGetField(This, RSync);
    RegId Lo = B.emitGetField(This, RLo);
    RegId Hi = B.emitGetField(This, RHi);

    RegId Pixel = B.emitMove(Lo);
    B.whileLoop(
        [&] { return B.emitBinOp(BinOpKind::CmpLt, Pixel, Hi); },
        [&] {
          // Thread-local scratch: statically filtered by escape analysis.
          RegId V = B.emitNew(Vec);
          B.emitPutField(V, VecX, Pixel);
          B.emitPutField(V, VecZ, B.emitConst(0));
          RegId Color = B.emitCall(Shade, {This, V, Geom, Pixel});
          RegId Offset = B.emitBinOp(BinOpKind::Sub, Pixel, Lo);
          B.site("mtrt:canvas-store");
          B.emitAStore(Canvas, Offset, Color);

          // Every 16th pixel: update shared stats under the common lock
          // and emit progress output (the startOfLine race).
          RegId Sixteen = B.emitConst(16);
          RegId Rem = B.emitBinOp(BinOpKind::Mod, Pixel, Sixteen);
          RegId IsTick = B.emitBinOp(BinOpKind::CmpEq, Rem, B.emitConst(0));
          B.ifThen(IsTick, [&] {
            B.sync(SyncObj, [&] {
              B.site("mtrt:stats-update");
              RegId R = B.emitGetField(StatsObj, StatsRays);
              B.emitPutField(StatsObj, StatsRays,
                             B.emitBinOp(BinOpKind::Add, R, Sixteen));
              RegId H = B.emitGetField(StatsObj, StatsHits);
              B.emitPutField(StatsObj, StatsHits,
                             B.emitBinOp(BinOpKind::Add, H, B.emitConst(1)));
            });
            B.emitCallVoid(StreamPrint, {StreamObj});
          });

          // Pixel += 1 (write back into the loop register).
          B.emitAssign(Pixel,
                       B.emitBinOp(BinOpKind::Add, Pixel, B.emitConst(1)));
        });

    // threadCount-- at thread end.
    B.site("mtrt:threadCount--");
    RegId TC2 = B.emitGetStatic(ThreadCount);
    B.emitPutStatic(ThreadCount, B.emitBinOp(BinOpKind::Sub, TC2,
                                             B.emitConst(1)));
    B.emitReturn();
  }

  // main.
  B.startMain();
  {
    int64_t GeomSize = 32;
    int64_t PixelsPerThread = 48 * int64_t(Scale);

    RegId SceneObj = B.emitNew(Scene);
    RegId Geom = B.emitNewArray(B.emitConst(GeomSize));
    B.emitPutField(SceneObj, SceneGeom, Geom);
    B.emitPutField(SceneObj, SceneSize, B.emitConst(GeomSize));
    RegId GLen = B.emitArrayLen(Geom);
    B.site("mtrt:scene-init");
    B.forLoop(0, GLen, 1, [&](RegId K) {
      RegId Val = B.emitBinOp(BinOpKind::Mul, K, B.emitConst(7));
      B.emitAStore(Geom, K, Val);
    });

    RegId StreamObj = B.emitNew(Stream);
    RegId StatsObj = B.emitNew(Stats);
    RegId SyncObj = B.emitNew(LockCls);

    auto MakeWorker = [&](int64_t Lo, int64_t Hi) {
      RegId Worker = B.emitNew(Render);
      B.emitPutField(Worker, RScene, SceneObj);
      B.emitPutField(Worker, RStream, StreamObj);
      B.emitPutField(Worker, RStats, StatsObj);
      B.emitPutField(Worker, RSync, SyncObj);
      RegId Canvas = B.emitNewArray(B.emitConst(Hi - Lo));
      B.emitPutField(Worker, RCanvas, Canvas);
      B.emitPutField(Worker, RLo, B.emitConst(Lo));
      B.emitPutField(Worker, RHi, B.emitConst(Hi));
      return Worker;
    };
    RegId W1 = MakeWorker(0, PixelsPerThread);
    RegId W2 = MakeWorker(PixelsPerThread, 2 * PixelsPerThread);
    B.emitThreadStart(W1);
    B.emitThreadStart(W2);
    B.emitThreadJoin(W1);
    B.emitThreadJoin(W2);

    // Parent reads the statistics after join with no lock: the Section
    // 8.3 idiom Eraser reports spuriously and we do not.
    B.site("mtrt:parent-stats-read");
    B.emitPrint(B.emitGetField(StatsObj, StatsRays));
    B.emitPrint(B.emitGetField(StatsObj, StatsHits));
    B.emitPrint(B.emitGetStatic(ThreadCount));
    B.emitReturn();
  }

  return W;
}
