//===- workloads/Workloads.h - Benchmark program replicas -------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJ replicas of the paper's Table 1 benchmarks.  The originals
/// (SPECJVM98 mtrt and the ETH tsp / sor2 / elevator / hedc programs) are
/// Java programs we do not have; each replica reproduces the *sharing and
/// synchronization structure* that drives the paper's results:
///
///   mtrt     — two render threads over a read-only scene; the real races
///              on RayTrace.threadCount and the output stream's
///              startOfLine flag; I/O statistics accessed by the children
///              under a common lock and by the parent after join (the
///              Eraser-spurious idiom of Section 8.3); plenty of
///              thread-local scratch allocation so the static phase
///              matters (NoStatic exploded on mtrt).
///   tsp      — recursive branch-and-bound with a genuine race on the
///              shared MinTourLen bound, plus TourElement objects guarded
///              by higher-level (queue handoff) synchronization that the
///              detector cannot see — the paper's feasible-but-benign
///              reports.  Deep call chains make the cache essential
///              (NoCache was 3722% on tsp).
///   sor2     — red/black successive over-relaxation with a spin barrier;
///              array subscripts hoisted out of inner loops exactly as
///              the paper's hand-modified sor2, which is what lets the
///              dominator/peeling optimizations remove the array traces
///              (NoDominators was 316%, NoPeeling 226% on sor2).
///   elevator — a discrete-event simulator with fully correct locking:
///              zero races with ownership, many spurious ones without.
///   hedc     — a task-pool web-crawler kernel: unsynchronized pool-size
///              updates and the Task.thread_ null-out race (both real),
///              plus LinkedQueue/MetaSearchRequest objects with per-field
///              disciplines that FieldsMerged conflates.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_WORKLOADS_WORKLOADS_H
#define HERD_WORKLOADS_WORKLOADS_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace herd {

/// A benchmark replica plus the metadata Table 1 reports.
struct Workload {
  std::string Name;
  std::string Description;
  Program P;
  uint32_t DynamicThreads = 0;  ///< including main
  bool CpuBound = true;         ///< elevator/hedc are interactive in the
                                ///< paper and excluded from Table 2
  /// Objects expected to be reported by the Full configuration (the
  /// Table 3 "Full" column of the replica, validated by tests).
  size_t ExpectedRacyObjectsFull = 0;
};

/// Scale factors so benches can trade runtime for fidelity.
struct WorkloadScale {
  uint32_t Small = 1; ///< multiplier on the inner work loops
};

Workload buildMtrt(uint32_t Scale = 1);
Workload buildTsp(uint32_t Scale = 1);
Workload buildSor2(uint32_t Scale = 1);
Workload buildElevator(uint32_t Scale = 1);
Workload buildHedc(uint32_t Scale = 1);

/// All five, in the paper's Table 1 order.
std::vector<Workload> buildAllWorkloads(uint32_t Scale = 1);

} // namespace herd

#endif // HERD_WORKLOADS_WORKLOADS_H
