//===- workloads/Registry.cpp - Workload registry -------------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace herd;

std::vector<Workload> herd::buildAllWorkloads(uint32_t Scale) {
  std::vector<Workload> All;
  All.push_back(buildMtrt(Scale));
  All.push_back(buildTsp(Scale));
  All.push_back(buildSor2(Scale));
  All.push_back(buildElevator(Scale));
  All.push_back(buildHedc(Scale));
  return All;
}
