//===- workloads/Elevator.cpp - elevator replica (event simulator) --------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replica of the `elevator` real-time discrete event simulator (Table 1:
/// 5 dynamic threads).  Every shared structure — the floor request table
/// and the global controls — is accessed strictly under the Controls
/// monitor, so the Full configuration reports nothing (Table 3: 0).
///
/// Everything the elevators touch was initialized by the main thread
/// before start() with no locks held, so the NoOwnership variant floods
/// with spurious initialization-vs-use reports (Table 3: 16) — the
/// pattern "data is initialized in one thread and passed into a child
/// thread for processing".
///
/// The paper excludes elevator from Table 2 (interactive, not CPU-bound);
/// we keep the flag so the performance harness skips it too.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "workloads/Workloads.h"

using namespace herd;

Workload herd::buildElevator(uint32_t Scale) {
  Workload W;
  W.Name = "elevator";
  W.Description = "real-time discrete event simulator (elevator replica)";
  W.DynamicThreads = 5;
  W.CpuBound = false;
  W.ExpectedRacyObjectsFull = 0;

  Program &P = W.P;
  IRBuilder B(P);

  ClassId Controls = B.makeClass("Controls");
  FieldId CUp = B.makeField(Controls, "upRequests");     // array
  FieldId CDown = B.makeField(Controls, "downRequests"); // array
  FieldId CServed = B.makeField(Controls, "served");
  FieldId CPending = B.makeField(Controls, "pending");

  ClassId Lift = B.makeClass("Lift");
  FieldId LControls = B.makeField(Lift, "controls");
  FieldId LFloor = B.makeField(Lift, "floor");      // thread-specific
  FieldId LDir = B.makeField(Lift, "direction");    // thread-specific
  FieldId LTrips = B.makeField(Lift, "trips");

  // Lift.claimJob(this): under the Controls monitor, find and clear a
  // pending request; returns the floor or -1.
  MethodId ClaimJob = B.startMethod(Lift, "claimJob", 1);
  {
    RegId This = B.thisReg();
    RegId Ctl = B.emitGetField(This, LControls);
    RegId Result = B.emitConst(-1);
    B.sync(Ctl, [&] {
      B.site("elevator:claim");
      RegId Up = B.emitGetField(Ctl, CUp);
      RegId Floors = B.emitArrayLen(Up);
      B.forLoop(0, Floors, 1, [&](RegId F) {
        RegId Req = B.emitALoad(Up, F);
        B.ifThen(Req, [&] {
          B.emitAStore(Up, F, B.emitConst(0));
          RegId Pending = B.emitGetField(Ctl, CPending);
          B.emitPutField(Ctl, CPending,
                         B.emitBinOp(BinOpKind::Sub, Pending,
                                     B.emitConst(1)));
          RegId Served = B.emitGetField(Ctl, CServed);
          B.emitPutField(Ctl, CServed,
                         B.emitBinOp(BinOpKind::Add, Served,
                                     B.emitConst(1)));
          B.emitAssign(Result, F);
        });
      });
    });
    B.emitReturn(Result);
  }

  // Lift.run: keep claiming jobs until none are pending; movement state is
  // thread-specific (floor/direction touched only via `this`).
  B.startMethod(Lift, "run", 1);
  {
    RegId This = B.thisReg();
    RegId Ctl = B.emitGetField(This, LControls);
    RegId Busy = B.emitConst(1);
    B.whileLoop(
        [&] { return B.emitMove(Busy); },
        [&] {
          RegId Job = B.emitCall(ClaimJob, {This});
          RegId Got = B.emitBinOp(BinOpKind::CmpGe, Job, B.emitConst(0));
          B.ifThenElse(
              Got,
              [&] {
                // Simulate travel: pure thread-specific state updates.
                B.site("elevator:travel");
                RegId Here = B.emitGetField(This, LFloor);
                RegId Delta = B.emitBinOp(BinOpKind::Sub, Job, Here);
                B.emitPutField(This, LFloor, Job);
                RegId Dir = B.emitBinOp(BinOpKind::CmpGe, Delta,
                                        B.emitConst(0));
                B.emitPutField(This, LDir, Dir);
                RegId Trips = B.emitGetField(This, LTrips);
                B.emitPutField(This, LTrips,
                               B.emitBinOp(BinOpKind::Add, Trips,
                                           B.emitConst(1)));
                B.emitYield();
              },
              [&] {
                // Check for remaining work under the monitor; stop when
                // none (the paper notes they modified elevator to
                // terminate when the simulation finishes).
                B.sync(Ctl, [&] {
                  RegId Pending = B.emitGetField(Ctl, CPending);
                  RegId Empty = B.emitBinOp(BinOpKind::CmpLe, Pending,
                                            B.emitConst(0));
                  B.ifThen(Empty, [&] { B.emitAssign(Busy, B.emitConst(0)); });
                });
                B.emitYield();
              });
        });
    B.emitReturn();
  }

  // main: build the request table, start four lifts, join, report.
  B.startMain();
  {
    int64_t Floors = 8 * int64_t(Scale);

    RegId Ctl = B.emitNew(Controls);
    RegId Up = B.emitNewArray(B.emitConst(Floors));
    RegId Down = B.emitNewArray(B.emitConst(Floors));
    B.emitPutField(Ctl, CUp, Up);
    B.emitPutField(Ctl, CDown, Down);
    B.site("elevator:requests-init");
    RegId UpLen = B.emitArrayLen(Up);
    RegId Pending = B.emitConst(0);
    B.forLoop(0, UpLen, 1, [&](RegId F) {
      RegId Want = B.emitBinOp(BinOpKind::Mod, F, B.emitConst(2));
      B.ifThen(Want, [&] {
        B.emitAStore(Up, F, B.emitConst(1));
        B.emitAssign(Pending,
                     B.emitBinOp(BinOpKind::Add, Pending, B.emitConst(1)));
      });
    });
    B.emitPutField(Ctl, CPending, Pending);
    B.emitPutField(Ctl, CServed, B.emitConst(0));

    RegId Lifts[4];
    for (auto &L : Lifts) {
      L = B.emitNew(Lift);
      B.emitPutField(L, LControls, Ctl);
      B.emitPutField(L, LFloor, B.emitConst(0));
      B.emitPutField(L, LDir, B.emitConst(1));
      B.emitPutField(L, LTrips, B.emitConst(0));
    }
    for (RegId L : Lifts)
      B.emitThreadStart(L);
    for (RegId L : Lifts)
      B.emitThreadJoin(L);

    B.sync(Ctl, [&] { B.emitPrint(B.emitGetField(Ctl, CServed)); });
    for (RegId L : Lifts)
      B.emitPrint(B.emitGetField(L, LTrips));
    B.emitReturn();
  }

  return W;
}
