//===- runtime/ThreadedCode.h - Superinstruction shadow code ----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shadow code for the threaded interpreter (docs/INTERPRETER.md).
///
/// Superinstruction fusion never rewrites the verified IR.  Instead the
/// peephole pass (instr/Superinstr.h) produces a per-run *shadow copy* of
/// every method's blocks in which the head instruction of each fusible
/// sequence has its opcode replaced by a fused pseudo-opcode; the
/// constituent instructions stay at ip+1.. with all operand fields intact.
/// The threaded dispatch loop executes the shadow blocks; the switch
/// (reference) interpreter, the verifier, the printer and every analysis
/// keep seeing the original program, so fused opcodes can never leak into
/// IR, traces or reports.
///
/// Keeping constituents in place is also what makes partial execution
/// trivial: when a quantum ends (or a fault hits) mid-sequence, the thread
/// resumes at ip+k, which holds an ordinary instruction.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_RUNTIME_THREADEDCODE_H
#define HERD_RUNTIME_THREADEDCODE_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace herd {

// Fused pseudo-opcodes.  Deliberately NOT members of the Opcode enum:
// every exhaustive switch over Opcode in the analyses stays exhaustive,
// and the verifier never has to reject values that cannot be constructed
// from a frontend.  The values extend the enum's underlying range just
// past Opcode::Trace; only shadow code ever stores them, and only the
// threaded dispatch table ever indexes by them.
static_assert(uint8_t(Opcode::Trace) == 22,
              "dispatch-table layout depends on the opcode numbering; "
              "update the fused constants and the threaded dispatch table");

/// Const feeding a BinOp (loop arithmetic: `i + 1`, `x * 2`).
constexpr Opcode OpFusedConstBinOp = Opcode(uint8_t(Opcode::Trace) + 1);
/// Const feeding a PutField (field initialization: `o.f = k`).
constexpr Opcode OpFusedConstPutField = Opcode(uint8_t(Opcode::Trace) + 2);
/// GetField; BinOp; PutField read-modify-write (`o.f = o.f + n`).
constexpr Opcode OpFusedGetBinPut = Opcode(uint8_t(Opcode::Trace) + 3);
/// BinOp feeding a conditional Branch (`if (i < n)` loop back-edges).
constexpr Opcode OpFusedBinOpBranch = Opcode(uint8_t(Opcode::Trace) + 4);
/// GetField feeding a BinOp (`o.f + n` without a PutField tail).
constexpr Opcode OpFusedGetFieldBinOp = Opcode(uint8_t(Opcode::Trace) + 5);
/// BinOp feeding a PutField (`o.f = a + b` computed stores).
constexpr Opcode OpFusedBinOpPutField = Opcode(uint8_t(Opcode::Trace) + 6);
/// BinOp feeding a Move (`x = a + b` into a named local).
constexpr Opcode OpFusedBinOpMove = Opcode(uint8_t(Opcode::Trace) + 7);

/// Size of the threaded dispatch table: all real opcodes plus the seven
/// fused pseudo-opcodes.
constexpr size_t NumDispatchOpcodes = size_t(Opcode::Trace) + 8;

/// Returns true for a fused pseudo-opcode (shadow code only).
constexpr bool isFusedOpcode(Opcode Op) {
  return uint8_t(Op) > uint8_t(Opcode::Trace);
}

/// How many constituent instructions a fused opcode covers.
constexpr uint32_t fusedLength(Opcode Op) {
  return Op == OpFusedGetBinPut ? 3 : 2;
}

/// Printable mnemonic for a fused pseudo-opcode (stats output).
inline const char *fusedOpcodeName(Opcode Op) {
  if (Op == OpFusedConstBinOp)
    return "fused.const+binop";
  if (Op == OpFusedConstPutField)
    return "fused.const+putfield";
  if (Op == OpFusedGetBinPut)
    return "fused.get+binop+put";
  if (Op == OpFusedBinOpBranch)
    return "fused.binop+branch";
  if (Op == OpFusedGetFieldBinOp)
    return "fused.getfield+binop";
  if (Op == OpFusedBinOpPutField)
    return "fused.binop+putfield";
  if (Op == OpFusedBinOpMove)
    return "fused.binop+move";
  return "?";
}

/// Plan-time fusion statistics: how many sequence heads the peephole pass
/// rewrote, per superinstruction kind (`herd --stats=json` "dispatch"),
/// plus the batch-retirement plan (how much straight-line code the
/// threaded loop may retire against the scheduler quantum in one go).
struct FusionStats {
  uint64_t ConstBinOpSites = 0;
  uint64_t ConstPutFieldSites = 0;
  uint64_t GetBinPutSites = 0;
  uint64_t BinOpBranchSites = 0;
  uint64_t GetFieldBinOpSites = 0;
  uint64_t BinOpPutFieldSites = 0;
  uint64_t BinOpMoveSites = 0;

  /// Blocks whose leading straight-line run qualifies for batched quantum
  /// retirement (length >= SuperinstrOptions::MinBatchLen; see
  /// ThreadedCode::BatchLens).
  uint64_t BatchBlocks = 0;
  /// Total instructions covered by those batchable prefixes.
  uint64_t BatchSteps = 0;

  uint64_t sites() const {
    return ConstBinOpSites + ConstPutFieldSites + GetBinPutSites +
           BinOpBranchSites + GetFieldBinOpSites + BinOpPutFieldSites +
           BinOpMoveSites;
  }
};

/// Run-time fusion counters: how often each superinstruction executed its
/// full sequence without an intervening dispatch.  Zero under the switch
/// interpreter and under `--profile` (the profiled threaded variant runs
/// unfused so per-opcode dispatch counts stay exact).
struct FusedExecCounts {
  uint64_t ConstBinOp = 0;
  uint64_t ConstPutField = 0;
  uint64_t GetBinPut = 0;
  uint64_t BinOpBranch = 0;
  uint64_t GetFieldBinOp = 0;
  uint64_t BinOpPutField = 0;
  uint64_t BinOpMove = 0;

  uint64_t total() const {
    return ConstBinOp + ConstPutField + GetBinPut + BinOpBranch +
           GetFieldBinOp + BinOpPutField + BinOpMove;
  }
};

/// The shadow program: one vector of blocks per method, mirroring the
/// Program it was built from instruction-for-instruction except for fused
/// head opcodes.  Build with buildThreadedCode (instr/Superinstr.h) AFTER
/// instrumentation, and keep it alive for the interpreter's whole run.
struct ThreadedCode {
  std::vector<std::vector<BasicBlock>> MethodBlocks; ///< [method][block]

  /// BatchLens[method][block] is the length of the block's *batchable
  /// prefix*: the maximal leading run of straight-line instructions that
  /// provably cannot end a slice, which the threaded loop retires
  /// against the scheduler quantum as one unit — it marks where the
  /// prefix ends and skips the per-step quantum test until then
  /// (docs/INTERPRETER.md).  The prefix stops at the first instruction
  /// that can end a slice or transfer control (calls, branches,
  /// monitors, thread ops, Yield), at any Trace, and at any heap access
  /// a Trace instruments — those always retire per step, so schedules
  /// stay byte-identical.  A fused head counts all its constituents.
  /// Prefixes shorter than SuperinstrOptions::MinBatchLen are reported
  /// as zero; zero means "no batch for this block".
  std::vector<std::vector<uint32_t>> BatchLens; ///< [method][block]

  FusionStats Stats;
};

} // namespace herd

#endif // HERD_RUNTIME_THREADEDCODE_H
