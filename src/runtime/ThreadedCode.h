//===- runtime/ThreadedCode.h - Superinstruction shadow code ----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shadow code for the threaded interpreter (docs/INTERPRETER.md).
///
/// Superinstruction fusion never rewrites the verified IR.  Instead the
/// peephole pass (instr/Superinstr.h) produces a per-run *shadow copy* of
/// every method's blocks in which the head instruction of each fusible
/// sequence has its opcode replaced by a fused pseudo-opcode; the
/// constituent instructions stay at ip+1.. with all operand fields intact.
/// The threaded dispatch loop executes the shadow blocks; the switch
/// (reference) interpreter, the verifier, the printer and every analysis
/// keep seeing the original program, so fused opcodes can never leak into
/// IR, traces or reports.
///
/// Keeping constituents in place is also what makes partial execution
/// trivial: when a quantum ends (or a fault hits) mid-sequence, the thread
/// resumes at ip+k, which holds an ordinary instruction.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_RUNTIME_THREADEDCODE_H
#define HERD_RUNTIME_THREADEDCODE_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace herd {

// Fused pseudo-opcodes.  Deliberately NOT members of the Opcode enum:
// every exhaustive switch over Opcode in the analyses stays exhaustive,
// and the verifier never has to reject values that cannot be constructed
// from a frontend.  The values extend the enum's underlying range just
// past Opcode::Trace; only shadow code ever stores them, and only the
// threaded dispatch table ever indexes by them.
static_assert(uint8_t(Opcode::Trace) == 22,
              "dispatch-table layout depends on the opcode numbering; "
              "update the fused constants and the threaded dispatch table");

/// Const feeding a BinOp (loop arithmetic: `i + 1`, `x * 2`).
constexpr Opcode OpFusedConstBinOp = Opcode(uint8_t(Opcode::Trace) + 1);
/// Const feeding a PutField (field initialization: `o.f = k`).
constexpr Opcode OpFusedConstPutField = Opcode(uint8_t(Opcode::Trace) + 2);
/// GetField; BinOp; PutField read-modify-write (`o.f = o.f + n`).
constexpr Opcode OpFusedGetBinPut = Opcode(uint8_t(Opcode::Trace) + 3);

/// Size of the threaded dispatch table: all real opcodes plus the three
/// fused pseudo-opcodes.
constexpr size_t NumDispatchOpcodes = size_t(Opcode::Trace) + 4;

/// Returns true for a fused pseudo-opcode (shadow code only).
constexpr bool isFusedOpcode(Opcode Op) {
  return uint8_t(Op) > uint8_t(Opcode::Trace);
}

/// How many constituent instructions a fused opcode covers.
constexpr uint32_t fusedLength(Opcode Op) {
  return Op == OpFusedGetBinPut ? 3 : 2;
}

/// Printable mnemonic for a fused pseudo-opcode (stats output).
inline const char *fusedOpcodeName(Opcode Op) {
  if (Op == OpFusedConstBinOp)
    return "fused.const+binop";
  if (Op == OpFusedConstPutField)
    return "fused.const+putfield";
  if (Op == OpFusedGetBinPut)
    return "fused.get+binop+put";
  return "?";
}

/// Plan-time fusion statistics: how many sequence heads the peephole pass
/// rewrote, per superinstruction kind (`herd --stats=json` "dispatch").
struct FusionStats {
  uint64_t ConstBinOpSites = 0;
  uint64_t ConstPutFieldSites = 0;
  uint64_t GetBinPutSites = 0;

  uint64_t sites() const {
    return ConstBinOpSites + ConstPutFieldSites + GetBinPutSites;
  }
};

/// Run-time fusion counters: how often each superinstruction executed its
/// full sequence without an intervening dispatch.  Zero under the switch
/// interpreter and under `--profile` (the profiled threaded variant runs
/// unfused so per-opcode dispatch counts stay exact).
struct FusedExecCounts {
  uint64_t ConstBinOp = 0;
  uint64_t ConstPutField = 0;
  uint64_t GetBinPut = 0;

  uint64_t total() const { return ConstBinOp + ConstPutField + GetBinPut; }
};

/// The shadow program: one vector of blocks per method, mirroring the
/// Program it was built from instruction-for-instruction except for fused
/// head opcodes.  Build with buildThreadedCode (instr/Superinstr.h) AFTER
/// instrumentation, and keep it alive for the interpreter's whole run.
struct ThreadedCode {
  std::vector<std::vector<BasicBlock>> MethodBlocks; ///< [method][block]
  FusionStats Stats;
};

} // namespace herd

#endif // HERD_RUNTIME_THREADEDCODE_H
