//===- runtime/InterpProfiler.cpp - Interpreter sampling profiler ---------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/InterpProfiler.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace herd;

static SteadyClock &profilerSteadyClock() {
  static SteadyClock C;
  return C;
}

InterpProfiler::InterpProfiler(MetricsClock *Clock, uint32_t SampleEvery)
    : Clock(Clock ? Clock : &profilerSteadyClock()),
      SampleMask(SampleEvery - 1) {
  assert(SampleEvery != 0 && (SampleEvery & (SampleEvery - 1)) == 0 &&
         "sample period must be a power of two");
}

uint64_t InterpProfiler::totalSamples() const {
  uint64_t N = 0;
  for (const OpcodeCounts &C : Ops)
    N += C.Samples;
  return N;
}

uint64_t InterpProfiler::totalSampledNanos() const {
  uint64_t N = 0;
  for (const OpcodeCounts &C : Ops)
    N += C.StepNanos;
  return N;
}

uint64_t InterpProfiler::totalHookNanos() const {
  uint64_t N = 0;
  for (const OpcodeCounts &C : Ops)
    N += C.HookNanos;
  return N;
}

std::vector<InterpProfiler::Row> InterpProfiler::rankedRows() const {
  std::vector<Row> Rows;
  for (size_t I = 0; I != NumOpcodes; ++I) {
    const OpcodeCounts &C = Ops[I];
    if (C.Dispatches == 0)
      continue;
    Row R;
    R.Op = Opcode(I);
    R.Dispatches = C.Dispatches;
    R.Samples = C.Samples;
    R.SampledNanos = C.StepNanos;
    R.HookNanos = C.HookNanos;
    R.EstimatedNanos = C.StepNanos * sampleEvery();
    Rows.push_back(R);
  }
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    if (A.SampledNanos != B.SampledNanos)
      return A.SampledNanos > B.SampledNanos;
    if (A.Dispatches != B.Dispatches)
      return A.Dispatches > B.Dispatches;
    return size_t(A.Op) < size_t(B.Op);
  });
  return Rows;
}

std::vector<InterpProfiler::PairRow>
InterpProfiler::rankedPairs(size_t MaxRows) const {
  std::vector<PairRow> Rows;
  for (size_t A = 0; A != NumOpcodes; ++A)
    for (size_t B = 0; B != NumOpcodes; ++B)
      if (Pairs[A][B] != 0)
        Rows.push_back({Opcode(A), Opcode(B), Pairs[A][B]});
  std::sort(Rows.begin(), Rows.end(),
            [](const PairRow &A, const PairRow &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              if (A.First != B.First)
                return size_t(A.First) < size_t(B.First);
              return size_t(A.Second) < size_t(B.Second);
            });
  if (Rows.size() > MaxRows)
    Rows.resize(MaxRows);
  return Rows;
}

std::string herd::renderProfileTable(const InterpProfiler &Prof) {
  std::string Out;
  char Line[256];
  auto Emit = [&Out, &Line] { Out += Line; };

  uint64_t Total = Prof.totalDispatches();
  uint64_t Instrumented = Prof.instrumentedDispatches();
  uint64_t SampledNanos = Prof.totalSampledNanos();
  uint64_t HookNanos = Prof.totalHookNanos();
  double InstrPct = Total ? 100.0 * double(Instrumented) / double(Total) : 0.0;
  double HookPct =
      SampledNanos ? 100.0 * double(HookNanos) / double(SampledNanos) : 0.0;

  std::snprintf(Line, sizeof(Line), "-- interpreter profile --\n");
  Emit();
  std::snprintf(Line, sizeof(Line),
                "dispatches: %llu total, %llu instrumented traces (%.1f%%), "
                "%llu uninstrumented\n",
                (unsigned long long)Total, (unsigned long long)Instrumented,
                InstrPct, (unsigned long long)(Total - Instrumented));
  Emit();
  std::snprintf(Line, sizeof(Line),
                "sampling:   1/%u dispatches timed (%llu samples, %.3f ms "
                "sampled; est. total %.3f ms)\n",
                Prof.sampleEvery(), (unsigned long long)Prof.totalSamples(),
                double(SampledNanos) / 1e6,
                double(SampledNanos) * Prof.sampleEvery() / 1e6);
  Emit();
  std::snprintf(Line, sizeof(Line),
                "attribution: hooks (detector feed) %.3f ms of sampled time "
                "(%.1f%%), interpretation %.3f ms\n",
                double(HookNanos) / 1e6, HookPct,
                double(SampledNanos - HookNanos) / 1e6);
  Emit();
  std::snprintf(Line, sizeof(Line),
                "%4s %-13s %12s %7s %10s %7s %10s\n", "rank", "opcode",
                "dispatches", "disp%", "est.ms", "time%", "hook.ms");
  Emit();

  std::vector<InterpProfiler::Row> Rows = Prof.rankedRows();
  int Rank = 0;
  for (const InterpProfiler::Row &R : Rows) {
    ++Rank;
    double DispPct =
        Total ? 100.0 * double(R.Dispatches) / double(Total) : 0.0;
    double TimePct = SampledNanos
                         ? 100.0 * double(R.SampledNanos) / double(SampledNanos)
                         : 0.0;
    std::snprintf(Line, sizeof(Line),
                  "%4d %-13s %12llu %6.1f%% %10.3f %6.1f%% %10.3f\n", Rank,
                  opcodeName(R.Op), (unsigned long long)R.Dispatches, DispPct,
                  double(R.EstimatedNanos) / 1e6, TimePct,
                  double(R.HookNanos) * Prof.sampleEvery() / 1e6);
    Emit();
  }

  // The adjacent-pair ranking drives superinstruction selection
  // (docs/INTERPRETER.md).  Profiled runs execute unfused code, so the
  // ranking shows the raw instruction stream: already-fused pairs appear
  // alongside fusion candidates, making coverage directly comparable.
  std::vector<InterpProfiler::PairRow> PairRows = Prof.rankedPairs();
  if (!PairRows.empty()) {
    std::snprintf(Line, sizeof(Line),
                  "%4s %-13s %-13s %12s %7s\n", "rank", "first", "second",
                  "pairs", "disp%");
    Emit();
    int PairRank = 0;
    for (const InterpProfiler::PairRow &R : PairRows) {
      ++PairRank;
      double PairPct = Total ? 100.0 * double(R.Count) / double(Total) : 0.0;
      std::snprintf(Line, sizeof(Line), "%4d %-13s %-13s %12llu %6.1f%%\n",
                    PairRank, opcodeName(R.First), opcodeName(R.Second),
                    (unsigned long long)R.Count, PairPct);
      Emit();
    }
  }
  return Out;
}
