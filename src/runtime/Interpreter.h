//===- runtime/Interpreter.h - Deterministic MiniJ interpreter --*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, cooperatively scheduled interpreter for MiniJ programs.
///
/// Threads are simulated: the interpreter round-robins over runnable
/// threads, preempting after a pseudo-random quantum drawn from a seeded
/// generator.  The same seed therefore replays the identical interleaving,
/// which makes race reports and the Table 2/3 experiments reproducible —
/// the role DejaVu record/replay plays for the paper's prototype
/// (Section 2.6).
///
/// The interpreter reports synchronization operations and traced accesses
/// through RuntimeHooks; it is otherwise oblivious to race detection.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_RUNTIME_INTERPRETER_H
#define HERD_RUNTIME_INTERPRETER_H

#include "ir/Program.h"
#include "runtime/Heap.h"
#include "runtime/Hooks.h"
#include "runtime/ThreadedCode.h"
#include "runtime/Value.h"
#include "support/Rng.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace herd {

class InterpProfiler;
class AccessFilter;
class RaceRuntime;
class ShardedRuntime;

/// How the inner loop dispatches instructions (`herd --dispatch=...`,
/// docs/INTERPRETER.md).  Switch is the reference semantics: one switch
/// per step over the original program.  Threaded runs whole scheduling
/// quanta handler-to-handler (computed goto where available) over shadow
/// code with superinstructions and a compiled-out no-hook lane.  Both
/// modes execute byte-identical semantics — schedules, race reports and
/// output match exactly (pinned by tests/dispatch_differential_test.cpp).
enum class DispatchMode : uint8_t {
  Switch,   ///< reference: per-step switch over original code
  Threaded, ///< fast path: threaded dispatch + superinstructions
};

/// Printable name for a dispatch mode ("switch" / "threaded").
const char *dispatchModeName(DispatchMode Mode);

/// A recorded schedule: the exact sequence of (thread, retired
/// instructions) slices of one run.  Plays the role of the DejaVu
/// record/replay tool in the paper's debugging workflow (Section 2.6):
/// detection runs alongside recording, and the expensive FullRace
/// reconstruction happens during replay of the identical interleaving.
struct ScheduleTrace {
  struct Slice {
    uint32_t ThreadIndex;
    uint32_t Steps; ///< instructions actually retired in the slice
  };
  std::vector<Slice> Slices;
};

/// Execution options.
struct InterpOptions {
  /// Seed for the scheduling generator; same seed => same interleaving.
  uint64_t Seed = 1;

  /// Maximum instructions a thread runs before a preemption point.
  uint32_t MaxQuantum = 40;

  /// Fuel limit: total instructions before the run is aborted (guards
  /// against accidentally divergent workloads).
  uint64_t MaxInstructions = 500'000'000;

  /// When true, the interpreter synthesizes an access event at every heap
  /// access, independent of Trace instrumentation.  Used by the baseline
  /// detectors and by the oracle tests, which need the full event stream.
  bool TraceEveryAccess = false;

  /// When set, the executed schedule is appended here (DejaVu-style
  /// recording).
  ScheduleTrace *Record = nullptr;

  /// When set, scheduling decisions are taken from this trace instead of
  /// the seeded generator, reproducing a recorded run exactly.  The
  /// program must be the same one that was recorded; divergence is a
  /// runtime error.
  const ScheduleTrace *Replay = nullptr;

  /// When set, every dispatch is counted and a 1-in-N sample of them is
  /// timed (`herd --profile`).  Profiling never changes execution
  /// semantics; a null profiler costs one predictable branch per step.
  /// Under threaded dispatch the profiled variant runs the original
  /// (unfused) code so per-opcode counts stay exact per constituent.
  InterpProfiler *Profiler = nullptr;

  /// Inner-loop dispatch strategy.  The default is the threaded fast
  /// path; builds configured with -DHERD_DEFAULT_DISPATCH_SWITCH=ON (the
  /// CI reference leg) default to the switch interpreter instead.
#ifdef HERD_DEFAULT_DISPATCH_SWITCH
  DispatchMode Dispatch = DispatchMode::Switch;
#else
  DispatchMode Dispatch = DispatchMode::Threaded;
#endif

  /// Optional superinstruction shadow code (instr/Superinstr.h), built
  /// from the SAME program after instrumentation.  Used only by threaded
  /// dispatch without a profiler; null runs threaded dispatch over the
  /// original blocks.  The caller keeps it alive for the whole run.
  const ThreadedCode *Fused = nullptr;

  /// Devirtualized delivery (docs/HOOKPATH.md): when one of these is set,
  /// traced accesses bypass the virtual RuntimeHooks::onAccess hop and
  /// call the concrete runtime's onAccessFast — which probes the inline
  /// L0 filter — directly.  The pipeline sets at most one, and only when
  /// the detection runtime is the sole access sink (no recorder, no
  /// deadlock detector, no profiler): every other sink would miss events
  /// the filter suppresses.  All non-access events still flow through the
  /// normal Hooks pointer, which must reference the same runtime.
  RaceRuntime *SerialSink = nullptr;
  ShardedRuntime *ShardedSink = nullptr;
};

/// The outcome of a run.
struct InterpResult {
  bool Ok = false;
  std::string Error;                ///< non-empty when !Ok
  std::vector<int64_t> Output;      ///< values printed by Print
  uint64_t InstructionsExecuted = 0;
  uint64_t AccessEvents = 0;        ///< events delivered to hooks
  uint64_t ContextSwitches = 0;
  uint32_t ThreadsCreated = 0;

  /// How often each superinstruction ran its full sequence (threaded
  /// dispatch with shadow code only; always zero under switch dispatch).
  /// Excluded from cross-mode equivalence: it describes how the work was
  /// dispatched, not what the program did.
  FusedExecCounts Fused;

  /// Batched quantum retirement counters (threaded dispatch with shadow
  /// code only; zero under switch dispatch).  Like Fused, these describe
  /// how accounting was performed, not what the program did, and are
  /// excluded from cross-mode equivalence.
  uint64_t BlockRetireHits = 0;   ///< straight-line batches entered
  uint64_t BlockRetiredSteps = 0; ///< instructions retired through batches
};

/// Interprets one program once.  Construct, call run(), inspect the result;
/// the heap remains available afterwards for tests that want to examine
/// final object state.
class Interpreter {
public:
  Interpreter(const Program &P, RuntimeHooks *Hooks, InterpOptions Opts);
  ~Interpreter();

  /// Executes the program's main method to completion (or error).
  InterpResult run();

  Heap &heap() { return TheHeap; }
  const Heap &heap() const { return TheHeap; }

private:
  struct Frame;
  struct SimThread;

  /// One step outcome for the per-thread execution loop.
  enum class StepResult : uint8_t {
    Continue,  ///< instruction retired; keep running this thread
    Blocked,   ///< thread blocked; do not advance its pc
    Switched,  ///< voluntary yield; preempt now
    Finished,  ///< thread ran to completion
    Fault,     ///< runtime error; abort the whole run
  };

  StepResult step(SimThread &Thread);
  StepResult executeInstr(SimThread &Thread, Frame &F, Value *Regs,
                          const Instr &I);
  StepResult enterSynchronizedFrame(SimThread &Thread, Frame &F);

  // Per-opcode executors: the single source of semantic truth, shared by
  // the switch (reference) interpreter and every threaded-dispatch
  // variant.
  //
  // The cached-top calling convention (docs/INTERPRETER.md): every
  // executor receives the thread's top frame's register file \p Regs
  // (= F.Regs.data()) — and, where needed, the frame \p F itself — as
  // pinned parameters instead of re-deriving them from
  // Thread.Stack.back() per operand.  The dispatch loops own the cache
  // and re-resolve it only after a control transfer, so the common
  // Const/BinOp/GetField path never round-trips through the SimThread
  // frame.
  //
  // The pc split: straight-line executors (no Frame parameter) never
  // touch F.Ip — the caller advances the pc on Continue, which lets the
  // threaded loop keep the pc in a register across whole straight-line
  // runs.  Executors that transfer control, can block, or must publish
  // the pc (Call/Branch/Jump/Return, monitors, thread ops, Yield) still
  // own F.Ip; callers flush the cached pc before invoking one that
  // reads it.  Executors that pop or push frames (Call/Return) go back
  // to Thread.Stack for the *new* top.
  //
  // Heap-access executors take EmitAll (= TraceEveryAccess) as a plain
  // parameter; the threaded loop passes a template constant so the
  // no-hook instantiations compile the hook plumbing out entirely.
  StepResult execConst(Value *Regs, const Instr &I);
  StepResult execMove(Value *Regs, const Instr &I);
  StepResult execBinOp(Value *Regs, const Instr &I);
  StepResult execNew(Value *Regs, const Instr &I);
  StepResult execNewArray(Value *Regs, const Instr &I);
  StepResult execArrayLen(Value *Regs, const Instr &I);
  StepResult execGetField(SimThread &Thread, Value *Regs, const Instr &I,
                          bool EmitAll);
  StepResult execPutField(SimThread &Thread, Value *Regs, const Instr &I,
                          bool EmitAll);
  StepResult execGetStatic(SimThread &Thread, Value *Regs, const Instr &I,
                           bool EmitAll);
  StepResult execPutStatic(SimThread &Thread, Value *Regs, const Instr &I,
                           bool EmitAll);
  StepResult execALoad(SimThread &Thread, Value *Regs, const Instr &I,
                       bool EmitAll);
  StepResult execAStore(SimThread &Thread, Value *Regs, const Instr &I,
                        bool EmitAll);
  StepResult execCall(SimThread &Thread, Frame &F, Value *Regs,
                      const Instr &I);
  StepResult execBranch(Frame &F, Value *Regs, const Instr &I);
  StepResult execJump(Frame &F, const Instr &I);
  StepResult execReturn(SimThread &Thread, Frame &F, Value *Regs,
                        const Instr &I);
  StepResult execMonitorEnter(SimThread &Thread, Frame &F, Value *Regs,
                              const Instr &I);
  StepResult execMonitorExit(SimThread &Thread, Frame &F, Value *Regs,
                             const Instr &I);
  StepResult execThreadStart(SimThread &Thread, Frame &F, Value *Regs,
                             const Instr &I);
  StepResult execThreadJoin(SimThread &Thread, Frame &F, Value *Regs,
                            const Instr &I);
  StepResult execPrint(Value *Regs, const Instr &I);
  StepResult execYield(Frame &F, const Instr &I);
  StepResult execTrace(SimThread &Thread, Value *Regs, const Instr &I);

  /// Runs up to \p Quantum steps of \p Thread under threaded dispatch,
  /// reproducing the switch loop's accounting exactly without doing it
  /// per step: the instruction budget folds into the slice's effective
  /// quantum, a block's batchable prefix (ThreadedCode::BatchLens) is
  /// consumed in one decrement, and every exit reconstructs the
  /// InstructionsExecuted/Retired deltas from the quantum consumed —
  /// provably identical because the quantum only ever counts steps that
  /// actually executed and nothing inside a batch can end the slice (see
  /// the derived-accounting comment in Interpreter.cpp).
  template <bool EmitAll, bool Profiled>
  void runSliceThreaded(SimThread &Thread, uint64_t Quantum,
                        uint32_t &Retired);

  bool tryAcquireMonitor(SimThread &Thread, ObjectId Obj, bool &Recursive);
  void exitMonitorOnce(SimThread &Thread, ObjectId Obj);
  void wakeBlockedOn(ObjectId Obj);
  void wakeJoiners(ObjectId ThreadObj);

  void fault(const std::string &Message);
  void emitAccess(ThreadId Thread, LocationKey Loc, AccessKind Kind,
                  SiteId Site);

  bool requireRef(const Value &V, ObjectId &Out, const char *What);
  bool requireInt(const Value &V, int64_t &Out, const char *What);

  const Program &P;
  RuntimeHooks *Hooks;
  InterpProfiler *Prof;
  RaceRuntime *SerialSink;   ///< devirtualized delivery (InterpOptions)
  ShardedRuntime *ShardedSink;
  /// The running thread's L0 filter, refreshed at each quantum start from
  /// the active sink's filterHandle (docs/HOOKPATH.md).  Non-null only on
  /// the devirtualized path with the filter hoistable; emitAccess probes
  /// it through this one pointer before any call into the runtime.
  AccessFilter *CurFilter = nullptr;
  InterpOptions Opts;
  Heap TheHeap;
  Rng ScheduleRng;

  std::vector<std::unique_ptr<SimThread>> Threads;
  std::unordered_map<ObjectId, ThreadId> ThreadByObject;
  InterpResult Result;
  bool Faulted = false;
};

} // namespace herd

#endif // HERD_RUNTIME_INTERPRETER_H
