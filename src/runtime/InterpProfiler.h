//===- runtime/InterpProfiler.h - Interpreter sampling profiler -*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sampling profiler for the interpreter's dispatch loop (`herd
/// --profile`), built to answer the ROADMAP's "live runs are
/// interpreter-bound — profile the dispatch loop" item with in-tree
/// evidence instead of guesses.
///
/// Two signals, both per opcode:
///
///  * an exact dispatch histogram — every executed instruction increments
///    its opcode's counter, so instruction-mix questions ("how much of the
///    stream is Trace instrumentation?") have exact answers;
///  * sampled time attribution — every Nth dispatch (N a power of two,
///    default 64) is timed with the injected clock and charged to its
///    opcode, with the RuntimeHooks::onAccess portion split out so
///    "interpreting the program" and "feeding the detector" are separate
///    columns.  Scaling a 1-in-N uniform sample by N estimates total time
///    per opcode; the report prints both the raw samples and the estimate.
///
/// The profiler is opt-in by pointer (InterpOptions::Profiler): a null
/// profiler costs the dispatch loop one predictable branch, and an
/// attached profiler never changes execution semantics — schedules, race
/// reports and program output are byte-identical with it on or off
/// (tests/stats_test.cpp pins this).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_RUNTIME_INTERPPROFILER_H
#define HERD_RUNTIME_INTERPPROFILER_H

#include "ir/Instr.h"
#include "support/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace herd {

/// Opcode-level dispatch counts and sampled time attribution for one run.
class InterpProfiler {
public:
  static constexpr size_t NumOpcodes = size_t(Opcode::Trace) + 1;
  static constexpr uint32_t DefaultSampleEvery = 64;

  /// Per-opcode accumulators.  StepNanos includes the hook portion;
  /// HookNanos isolates time spent inside RuntimeHooks::onAccess calls
  /// made while executing a sampled dispatch of this opcode.
  struct OpcodeCounts {
    uint64_t Dispatches = 0;
    uint64_t Samples = 0;
    uint64_t StepNanos = 0;
    uint64_t HookNanos = 0;
  };

  /// \p Clock is borrowed (null uses the registry-default steady clock via
  /// a private SteadyClock); \p SampleEvery must be a power of two.
  explicit InterpProfiler(MetricsClock *Clock = nullptr,
                          uint32_t SampleEvery = DefaultSampleEvery);

  /// Hot-path entry: counts one dispatch of \p Op (and the adjacent
  /// opcode pair it completes) and returns true when this dispatch should
  /// be timed (every SampleEvery-th overall).
  bool onDispatch(Opcode Op) {
    ++Ops[size_t(Op)].Dispatches;
    if (PrevOp != NoPrev)
      ++Pairs[PrevOp][size_t(Op)];
    PrevOp = size_t(Op);
    return ((++TotalDispatches) & SampleMask) == 0;
  }

  /// Called by the scheduler at the start of every slice: adjacent-pair
  /// counts never span a context switch, so the pair histogram describes
  /// sequences a superinstruction could actually fuse.
  void onSliceStart() { PrevOp = NoPrev; }

  uint64_t now() { return Clock->nowNanos(); }

  /// Marks the start of a timed dispatch; hook time observed until the
  /// matching endSample is charged to this sample.
  void beginSample() {
    SampleActive = true;
    PendingHookNanos = 0;
  }

  /// True between beginSample and endSample — the window in which the
  /// interpreter times hook calls.
  bool samplingActive() const { return SampleActive; }

  /// Charges \p Nanos of RuntimeHooks::onAccess time to the active sample.
  void addHookNanos(uint64_t Nanos) { PendingHookNanos += Nanos; }

  /// Completes the timed dispatch of \p Op that took \p StepNanos total.
  void endSample(Opcode Op, uint64_t StepNanos) {
    OpcodeCounts &C = Ops[size_t(Op)];
    ++C.Samples;
    C.StepNanos += StepNanos;
    C.HookNanos += PendingHookNanos;
    SampleActive = false;
    PendingHookNanos = 0;
  }

  // --- Reporting accessors ---
  uint32_t sampleEvery() const { return SampleMask + 1; }
  uint64_t totalDispatches() const { return TotalDispatches; }
  const OpcodeCounts &counts(Opcode Op) const { return Ops[size_t(Op)]; }

  /// Dispatches of the Trace pseudo-instruction — pure instrumentation
  /// the uninstrumented program would not execute.
  uint64_t instrumentedDispatches() const {
    return Ops[size_t(Opcode::Trace)].Dispatches;
  }

  uint64_t totalSamples() const;
  uint64_t totalSampledNanos() const;   ///< step time across all samples
  uint64_t totalHookNanos() const;      ///< hook share of the above

  /// One ranked row of the report, precomputed for rendering and JSON.
  struct Row {
    Opcode Op;
    uint64_t Dispatches;
    uint64_t Samples;
    uint64_t SampledNanos;
    uint64_t HookNanos;
    uint64_t EstimatedNanos; ///< SampledNanos * sampleEvery()
  };

  /// All opcodes with at least one dispatch, ranked by sampled time
  /// (dispatch count breaks ties), descending.
  std::vector<Row> rankedRows() const;

  /// One adjacent-dispatch pair (First executed, then Second, within one
  /// scheduling slice) — the raw material for superinstruction selection.
  struct PairRow {
    Opcode First;
    Opcode Second;
    uint64_t Count;
  };

  /// The \p MaxRows most frequent adjacent pairs, descending by count.
  std::vector<PairRow> rankedPairs(size_t MaxRows = 16) const;

private:
  static constexpr size_t NoPrev = NumOpcodes;

  MetricsClock *Clock;
  uint32_t SampleMask;
  uint64_t TotalDispatches = 0;
  bool SampleActive = false;
  uint64_t PendingHookNanos = 0;
  size_t PrevOp = NoPrev;
  OpcodeCounts Ops[NumOpcodes];
  uint64_t Pairs[NumOpcodes][NumOpcodes] = {};
};

/// Renders the `herd --profile` report: a ranked opcode table plus the
/// instrumented-vs-uninstrumented and hook-vs-step summaries.
std::string renderProfileTable(const InterpProfiler &Prof);

} // namespace herd

#endif // HERD_RUNTIME_INTERPPROFILER_H
