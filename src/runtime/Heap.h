//===- runtime/Heap.h - Objects, arrays and monitors ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJ heap: class instances, integer/reference arrays, per-class
/// static storage, and the monitor state attached to every object.
///
/// There is no garbage collector; the paper's prototype likewise sized the
/// heap so GC never ran (Section 3.3), because object addresses identify
/// logical memory locations.  Our ObjectIds are stable by construction.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_RUNTIME_HEAP_H
#define HERD_RUNTIME_HEAP_H

#include "ir/Program.h"
#include "runtime/Value.h"
#include "support/Ids.h"

#include <unordered_map>
#include <vector>

namespace herd {

/// Monitor state carried by every object (Java-style reentrant monitor).
struct Monitor {
  ThreadId Owner;          ///< invalid when unowned
  uint32_t Recursion = 0;  ///< >1 for reentrant acquisitions
};

/// A heap cell: a class instance or an array.
struct HeapObject {
  ClassId Class;          ///< invalid for arrays and class-static objects
  AllocSiteId Site;       ///< invalid for class-static objects
  bool IsArray = false;
  bool IsClassStatics = false;
  std::vector<Value> Slots; ///< instance fields, statics, or array elements
  Monitor Mon;
};

/// The heap.  Objects are never moved or reclaimed, so an ObjectId is a
/// stable identity for the detector's logical memory locations.
class Heap {
public:
  explicit Heap(const Program &P) : P(P) {}

  /// Allocates an instance of \p Cls with zeroed fields.
  ObjectId allocate(ClassId Cls, AllocSiteId Site) {
    ObjectId Id(uint32_t(Objects.size()));
    HeapObject Obj;
    Obj.Class = Cls;
    Obj.Site = Site;
    Obj.Slots.resize(P.classDecl(Cls).InstanceFields.size());
    Objects.push_back(std::move(Obj));
    return Id;
  }

  /// Allocates an integer/reference array of \p Length zeroed elements.
  ObjectId allocateArray(int64_t Length, AllocSiteId Site) {
    ObjectId Id(uint32_t(Objects.size()));
    HeapObject Obj;
    Obj.Site = Site;
    Obj.IsArray = true;
    Obj.Slots.resize(size_t(Length));
    Objects.push_back(std::move(Obj));
    return Id;
  }

  /// Returns the pseudo-object holding \p Cls's static fields, creating it
  /// on first use.
  ObjectId classStatics(ClassId Cls) {
    auto It = StaticsByClass.find(Cls);
    if (It != StaticsByClass.end())
      return It->second;
    ObjectId Id(uint32_t(Objects.size()));
    HeapObject Obj;
    Obj.IsClassStatics = true;
    Obj.Slots.resize(P.classDecl(Cls).StaticFields.size());
    Objects.push_back(std::move(Obj));
    StaticsByClass.emplace(Cls, Id);
    return Id;
  }

  HeapObject &object(ObjectId Id) { return Objects[Id.index()]; }
  const HeapObject &object(ObjectId Id) const { return Objects[Id.index()]; }

  size_t size() const { return Objects.size(); }

  /// Every object can be used as a lock; its LockId is its object index.
  /// (The detector's dummy join locks use a disjoint id range; see
  /// detect/RaceRuntime.)
  static LockId lockOf(ObjectId Obj) { return LockId(Obj.index()); }

private:
  const Program &P;
  std::vector<HeapObject> Objects;
  std::unordered_map<ClassId, ObjectId> StaticsByClass;
};

} // namespace herd

#endif // HERD_RUNTIME_HEAP_H
