//===- runtime/Value.h - Runtime values -------------------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJ runtime value: a 64-bit integer or an object reference.  Null
/// is the reference with an invalid ObjectId.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_RUNTIME_VALUE_H
#define HERD_RUNTIME_VALUE_H

#include "support/Ids.h"

#include <cassert>
#include <cstdint>

namespace herd {

/// A runtime value.  MiniJ is dynamically checked: using an integer where a
/// reference is required (or vice versa) is a runtime error surfaced by the
/// interpreter, mirroring a JVM verifier failure.
class Value {
public:
  /// The default value is the integer 0 (MiniJ zero-initializes registers,
  /// fields and array elements, as Java does).
  constexpr Value() = default;

  static constexpr Value makeInt(int64_t I) { return Value(I); }
  static constexpr Value makeRef(ObjectId Ref) { return Value(Ref); }
  static constexpr Value makeNull() { return Value(ObjectId::invalid()); }

  constexpr bool isRef() const { return IsRef; }
  constexpr bool isNull() const { return IsRef && !Ref.isValid(); }

  constexpr int64_t asInt() const {
    assert(!IsRef && "value is a reference, not an integer");
    return Int;
  }

  constexpr ObjectId asRef() const {
    assert(IsRef && "value is an integer, not a reference");
    return Ref;
  }

  /// Truthiness for Branch: non-zero integer, or non-null reference.
  constexpr bool isTruthy() const { return IsRef ? Ref.isValid() : Int != 0; }

  friend constexpr bool operator==(Value A, Value B) {
    if (A.IsRef != B.IsRef)
      return false;
    return A.IsRef ? A.Ref == B.Ref : A.Int == B.Int;
  }

private:
  constexpr explicit Value(int64_t I) : Int(I) {}
  constexpr explicit Value(ObjectId R) : Ref(R), IsRef(true) {}

  int64_t Int = 0;
  ObjectId Ref;
  bool IsRef = false;
};

} // namespace herd

#endif // HERD_RUNTIME_VALUE_H
