//===- runtime/Interpreter.cpp - Deterministic MiniJ interpreter ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "runtime/InterpProfiler.h"
#include "support/Compiler.h"

using namespace herd;

RuntimeHooks::~RuntimeHooks() = default;

/// A call frame.
struct Interpreter::Frame {
  MethodId Method;
  BlockId Block = BlockId(0);
  uint32_t Ip = 0;
  std::vector<Value> Regs;
  RegId RetDst;        ///< caller register receiving the return value
  ObjectId SyncSelf;   ///< monitor to release on return (synchronized method)
  bool NeedsMonEnter = false; ///< synchronized method not yet entered
};

/// A simulated thread.
struct Interpreter::SimThread {
  enum class State : uint8_t {
    Runnable,
    BlockedOnMonitor,
    BlockedOnJoin,
    Finished,
  };

  ThreadId Id;
  ObjectId ThreadObj;    ///< invalid for the initial thread
  State St = State::Runnable;
  ObjectId WaitObj;      ///< monitor or thread object blocked on
  std::vector<Frame> Stack;
};

Interpreter::Interpreter(const Program &P, RuntimeHooks *Hooks,
                         InterpOptions Opts)
    : P(P), Hooks(Hooks), Prof(Opts.Profiler), Opts(Opts), TheHeap(P),
      ScheduleRng(Opts.Seed) {}

Interpreter::~Interpreter() = default;

Value &Interpreter::reg(SimThread &Thread, RegId Reg) {
  Frame &F = Thread.Stack.back();
  assert(Reg.isValid() && Reg.index() < F.Regs.size() &&
         "register out of range (verifier should have caught this)");
  return F.Regs[Reg.index()];
}

void Interpreter::fault(const std::string &Message) {
  if (Faulted)
    return;
  Faulted = true;
  Result.Ok = false;
  Result.Error = Message;
}

bool Interpreter::requireRef(SimThread &Thread, RegId Reg, ObjectId &Out,
                             const char *What) {
  const Value &V = reg(Thread, Reg);
  if (!V.isRef()) {
    fault(std::string("type error: expected a reference for ") + What);
    return false;
  }
  if (V.isNull()) {
    fault(std::string("null pointer dereference in ") + What);
    return false;
  }
  Out = V.asRef();
  return true;
}

bool Interpreter::requireInt(SimThread &Thread, RegId Reg, int64_t &Out,
                             const char *What) {
  const Value &V = reg(Thread, Reg);
  if (V.isRef()) {
    fault(std::string("type error: expected an integer for ") + What);
    return false;
  }
  Out = V.asInt();
  return true;
}

void Interpreter::emitAccess(ThreadId Thread, LocationKey Loc,
                             AccessKind Kind, SiteId Site) {
  ++Result.AccessEvents;
  if (!Hooks)
    return;
  if (HERD_UNLIKELY(Prof != nullptr) && Prof->samplingActive()) {
    // Time the detector feed so the profile splits "interpreting the
    // program" from "running the hooks" (onAccess dominates hook time).
    uint64_t Begin = Prof->now();
    Hooks->onAccess(Thread, Loc, Kind, Site);
    Prof->addHookNanos(Prof->now() - Begin);
    return;
  }
  Hooks->onAccess(Thread, Loc, Kind, Site);
}

bool Interpreter::tryAcquireMonitor(SimThread &Thread, ObjectId Obj,
                                    bool &Recursive) {
  Monitor &Mon = TheHeap.object(Obj).Mon;
  if (Mon.Owner == Thread.Id) {
    ++Mon.Recursion;
    Recursive = true;
    return true;
  }
  if (!Mon.Owner.isValid()) {
    Mon.Owner = Thread.Id;
    Mon.Recursion = 1;
    Recursive = false;
    return true;
  }
  return false;
}

void Interpreter::exitMonitorOnce(SimThread &Thread, ObjectId Obj) {
  Monitor &Mon = TheHeap.object(Obj).Mon;
  if (Mon.Owner != Thread.Id || Mon.Recursion == 0) {
    fault("monitorexit on a monitor the thread does not own");
    return;
  }
  --Mon.Recursion;
  bool StillHeld = Mon.Recursion > 0;
  if (!StillHeld) {
    Mon.Owner = ThreadId::invalid();
    wakeBlockedOn(Obj);
  }
  if (Hooks)
    Hooks->onMonitorExit(Thread.Id, Heap::lockOf(Obj), StillHeld);
}

void Interpreter::wakeBlockedOn(ObjectId Obj) {
  for (auto &T : Threads)
    if (T->St == SimThread::State::BlockedOnMonitor && T->WaitObj == Obj)
      T->St = SimThread::State::Runnable;
}

void Interpreter::wakeJoiners(ObjectId ThreadObj) {
  for (auto &T : Threads)
    if (T->St == SimThread::State::BlockedOnJoin && T->WaitObj == ThreadObj)
      T->St = SimThread::State::Runnable;
}

Interpreter::StepResult
Interpreter::enterSynchronizedFrame(SimThread &Thread, Frame &F) {
  // The callee is a synchronized instance method; acquire this's monitor
  // before its first instruction runs.
  ObjectId Self = F.Regs[0].asRef();
  bool Recursive = false;
  if (!tryAcquireMonitor(Thread, Self, Recursive)) {
    Thread.St = SimThread::State::BlockedOnMonitor;
    Thread.WaitObj = Self;
    return StepResult::Blocked;
  }
  F.NeedsMonEnter = false;
  F.SyncSelf = Self;
  if (Hooks)
    Hooks->onMonitorEnter(Thread.Id, Heap::lockOf(Self), Recursive);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::step(SimThread &Thread) {
  Frame &F = Thread.Stack.back();
  if (F.NeedsMonEnter) {
    StepResult R = enterSynchronizedFrame(Thread, F);
    if (R != StepResult::Continue)
      return R;
  }

  const Method &M = P.method(F.Method);
  const BasicBlock &Block = M.block(F.Block);
  assert(F.Ip < Block.Instrs.size() && "pc ran off the end of a block");
  const Instr &I = Block.Instrs[F.Ip];

  if (HERD_UNLIKELY(Prof != nullptr)) {
    // Opcode captured up front: executeInstr can grow Thread.Stack, but
    // never mutates the method body I points into.
    Opcode Op = I.Op;
    if (Prof->onDispatch(Op)) {
      Prof->beginSample();
      uint64_t Begin = Prof->now();
      StepResult R = executeInstr(Thread, F, I);
      uint64_t End = Prof->now();
      Prof->endSample(Op, End - Begin);
      return R;
    }
    return executeInstr(Thread, F, I);
  }
  return executeInstr(Thread, F, I);
}

Interpreter::StepResult Interpreter::executeInstr(SimThread &Thread, Frame &F,
                                                  const Instr &I) {
  auto Advance = [&] { ++Thread.Stack.back().Ip; };
  auto JumpTo = [&](BlockId Target) {
    Frame &Top = Thread.Stack.back();
    Top.Block = Target;
    Top.Ip = 0;
  };

  switch (I.Op) {
  case Opcode::Const:
    reg(Thread, I.Dst) = Value::makeInt(I.Imm);
    Advance();
    return StepResult::Continue;

  case Opcode::Move:
    reg(Thread, I.Dst) = reg(Thread, I.A);
    Advance();
    return StepResult::Continue;

  case Opcode::BinOp: {
    const Value &AV = reg(Thread, I.A);
    const Value &BV = reg(Thread, I.B);
    // Eq/Ne compare values of either kind; all other operators require
    // integers.
    if (I.BinKind == BinOpKind::CmpEq || I.BinKind == BinOpKind::CmpNe) {
      bool Eq = AV == BV;
      reg(Thread, I.Dst) =
          Value::makeInt((I.BinKind == BinOpKind::CmpEq) == Eq ? 1 : 0);
      Advance();
      return StepResult::Continue;
    }
    int64_t A = 0, B = 0;
    if (!requireInt(Thread, I.A, A, "binop") ||
        !requireInt(Thread, I.B, B, "binop"))
      return StepResult::Fault;
    int64_t R = 0;
    switch (I.BinKind) {
    case BinOpKind::Add:
      R = A + B;
      break;
    case BinOpKind::Sub:
      R = A - B;
      break;
    case BinOpKind::Mul:
      R = A * B;
      break;
    case BinOpKind::Div:
    case BinOpKind::Mod:
      if (B == 0) {
        fault("division by zero");
        return StepResult::Fault;
      }
      R = I.BinKind == BinOpKind::Div ? A / B : A % B;
      break;
    case BinOpKind::And:
      R = A & B;
      break;
    case BinOpKind::Or:
      R = A | B;
      break;
    case BinOpKind::Xor:
      R = A ^ B;
      break;
    case BinOpKind::CmpLt:
      R = A < B;
      break;
    case BinOpKind::CmpLe:
      R = A <= B;
      break;
    case BinOpKind::CmpGt:
      R = A > B;
      break;
    case BinOpKind::CmpGe:
      R = A >= B;
      break;
    case BinOpKind::CmpEq:
    case BinOpKind::CmpNe:
      HERD_UNREACHABLE("handled above");
    }
    reg(Thread, I.Dst) = Value::makeInt(R);
    Advance();
    return StepResult::Continue;
  }

  case Opcode::New:
    reg(Thread, I.Dst) =
        Value::makeRef(TheHeap.allocate(I.Class, I.AllocSite));
    Advance();
    return StepResult::Continue;

  case Opcode::NewArray: {
    int64_t Len = 0;
    if (!requireInt(Thread, I.A, Len, "newarray length"))
      return StepResult::Fault;
    if (Len < 0) {
      fault("negative array size");
      return StepResult::Fault;
    }
    reg(Thread, I.Dst) = Value::makeRef(TheHeap.allocateArray(Len, I.AllocSite));
    Advance();
    return StepResult::Continue;
  }

  case Opcode::ArrayLen: {
    ObjectId Arr;
    if (!requireRef(Thread, I.A, Arr, "arraylen"))
      return StepResult::Fault;
    reg(Thread, I.Dst) =
        Value::makeInt(int64_t(TheHeap.object(Arr).Slots.size()));
    Advance();
    return StepResult::Continue;
  }

  case Opcode::GetField: {
    ObjectId Obj;
    if (!requireRef(Thread, I.A, Obj, "getfield"))
      return StepResult::Fault;
    reg(Thread, I.Dst) = TheHeap.object(Obj).Slots[P.field(I.Field).SlotIndex];
    if (Opts.TraceEveryAccess)
      emitAccess(Thread.Id, LocationKey::forField(Obj, I.Field),
                 AccessKind::Read, I.Site);
    Advance();
    return StepResult::Continue;
  }

  case Opcode::PutField: {
    ObjectId Obj;
    if (!requireRef(Thread, I.A, Obj, "putfield"))
      return StepResult::Fault;
    TheHeap.object(Obj).Slots[P.field(I.Field).SlotIndex] = reg(Thread, I.B);
    if (Opts.TraceEveryAccess)
      emitAccess(Thread.Id, LocationKey::forField(Obj, I.Field),
                 AccessKind::Write, I.Site);
    Advance();
    return StepResult::Continue;
  }

  case Opcode::GetStatic: {
    ObjectId Statics = TheHeap.classStatics(I.Class);
    reg(Thread, I.Dst) =
        TheHeap.object(Statics).Slots[P.field(I.Field).SlotIndex];
    if (Opts.TraceEveryAccess)
      emitAccess(Thread.Id, LocationKey::forStatic(Statics, I.Field),
                 AccessKind::Read, I.Site);
    Advance();
    return StepResult::Continue;
  }

  case Opcode::PutStatic: {
    ObjectId Statics = TheHeap.classStatics(I.Class);
    TheHeap.object(Statics).Slots[P.field(I.Field).SlotIndex] =
        reg(Thread, I.A);
    if (Opts.TraceEveryAccess)
      emitAccess(Thread.Id, LocationKey::forStatic(Statics, I.Field),
                 AccessKind::Write, I.Site);
    Advance();
    return StepResult::Continue;
  }

  case Opcode::ALoad: {
    ObjectId Arr;
    int64_t Idx = 0;
    if (!requireRef(Thread, I.A, Arr, "aload") ||
        !requireInt(Thread, I.B, Idx, "aload index"))
      return StepResult::Fault;
    HeapObject &ArrObj = TheHeap.object(Arr);
    if (Idx < 0 || size_t(Idx) >= ArrObj.Slots.size()) {
      fault("array index out of bounds");
      return StepResult::Fault;
    }
    reg(Thread, I.Dst) = ArrObj.Slots[size_t(Idx)];
    if (Opts.TraceEveryAccess)
      emitAccess(Thread.Id, LocationKey::forArray(Arr), AccessKind::Read,
                 I.Site);
    Advance();
    return StepResult::Continue;
  }

  case Opcode::AStore: {
    ObjectId Arr;
    int64_t Idx = 0;
    if (!requireRef(Thread, I.A, Arr, "astore") ||
        !requireInt(Thread, I.B, Idx, "astore index"))
      return StepResult::Fault;
    HeapObject &ArrObj = TheHeap.object(Arr);
    if (Idx < 0 || size_t(Idx) >= ArrObj.Slots.size()) {
      fault("array index out of bounds");
      return StepResult::Fault;
    }
    ArrObj.Slots[size_t(Idx)] = reg(Thread, I.C);
    if (Opts.TraceEveryAccess)
      emitAccess(Thread.Id, LocationKey::forArray(Arr), AccessKind::Write,
                 I.Site);
    Advance();
    return StepResult::Continue;
  }

  case Opcode::Call: {
    const Method &Callee = P.method(I.Callee);
    Frame NewFrame;
    NewFrame.Method = I.Callee;
    NewFrame.Regs.resize(Callee.NumRegs);
    for (size_t N = 0; N != I.Args.size(); ++N)
      NewFrame.Regs[N] = reg(Thread, I.Args[N]);
    NewFrame.RetDst = I.Dst;
    if (Callee.IsSynchronized) {
      if (NewFrame.Regs.empty() || !NewFrame.Regs[0].isRef() ||
          NewFrame.Regs[0].isNull()) {
        fault("synchronized call on null receiver");
        return StepResult::Fault;
      }
      NewFrame.NeedsMonEnter = true;
    }
    Advance(); // the caller resumes after the call
    Thread.Stack.push_back(std::move(NewFrame));
    return StepResult::Continue;
  }

  case Opcode::Branch: {
    bool Taken = reg(Thread, I.A).isTruthy();
    JumpTo(Taken ? I.Target : I.AltTarget);
    return StepResult::Continue;
  }

  case Opcode::Jump:
    JumpTo(I.Target);
    return StepResult::Continue;

  case Opcode::Return: {
    Value Ret = I.A.isValid() ? reg(Thread, I.A) : Value();
    ObjectId SyncSelf = F.SyncSelf;
    RegId RetDst = F.RetDst;
    Thread.Stack.pop_back();
    if (SyncSelf.isValid())
      exitMonitorOnce(Thread, SyncSelf);
    if (Faulted)
      return StepResult::Fault;
    if (Thread.Stack.empty()) {
      Thread.St = SimThread::State::Finished;
      if (Hooks)
        Hooks->onThreadExit(Thread.Id);
      if (Thread.ThreadObj.isValid())
        wakeJoiners(Thread.ThreadObj);
      return StepResult::Finished;
    }
    if (RetDst.isValid())
      reg(Thread, RetDst) = Ret;
    return StepResult::Continue;
  }

  case Opcode::MonitorEnter: {
    ObjectId Obj;
    if (!requireRef(Thread, I.A, Obj, "monitorenter"))
      return StepResult::Fault;
    bool Recursive = false;
    if (!tryAcquireMonitor(Thread, Obj, Recursive)) {
      Thread.St = SimThread::State::BlockedOnMonitor;
      Thread.WaitObj = Obj;
      return StepResult::Blocked;
    }
    if (Hooks)
      Hooks->onMonitorEnter(Thread.Id, Heap::lockOf(Obj), Recursive);
    Advance();
    return StepResult::Continue;
  }

  case Opcode::MonitorExit: {
    ObjectId Obj;
    if (!requireRef(Thread, I.A, Obj, "monitorexit"))
      return StepResult::Fault;
    exitMonitorOnce(Thread, Obj);
    if (Faulted)
      return StepResult::Fault;
    Advance();
    return StepResult::Continue;
  }

  case Opcode::ThreadStart: {
    ObjectId Obj;
    if (!requireRef(Thread, I.A, Obj, "thread start"))
      return StepResult::Fault;
    HeapObject &ThreadObj = TheHeap.object(Obj);
    if (!ThreadObj.Class.isValid() ||
        !P.classDecl(ThreadObj.Class).RunMethod.isValid()) {
      fault("start on an object whose class has no run() method");
      return StepResult::Fault;
    }
    if (ThreadByObject.count(Obj)) {
      fault("thread object started twice");
      return StepResult::Fault;
    }
    MethodId Run = P.classDecl(ThreadObj.Class).RunMethod;
    const Method &RunM = P.method(Run);
    auto Child = std::make_unique<SimThread>();
    Child->Id = ThreadId(uint32_t(Threads.size()));
    Child->ThreadObj = Obj;
    Frame RunFrame;
    RunFrame.Method = Run;
    RunFrame.Regs.resize(RunM.NumRegs);
    RunFrame.Regs[0] = Value::makeRef(Obj);
    RunFrame.NeedsMonEnter = RunM.IsSynchronized;
    Child->Stack.push_back(std::move(RunFrame));
    ThreadByObject.emplace(Obj, Child->Id);
    ++Result.ThreadsCreated;
    if (Hooks)
      Hooks->onThreadCreate(Child->Id, Thread.Id, Obj);
    Threads.push_back(std::move(Child));
    Advance();
    return StepResult::Continue;
  }

  case Opcode::ThreadJoin: {
    ObjectId Obj;
    if (!requireRef(Thread, I.A, Obj, "thread join"))
      return StepResult::Fault;
    auto It = ThreadByObject.find(Obj);
    if (It == ThreadByObject.end()) {
      // Joining a never-started thread returns immediately (Java semantics);
      // no ordering is established.
      Advance();
      return StepResult::Continue;
    }
    SimThread &Target = *Threads[It->second.index()];
    if (Target.St != SimThread::State::Finished) {
      Thread.St = SimThread::State::BlockedOnJoin;
      Thread.WaitObj = Obj;
      return StepResult::Blocked;
    }
    if (Hooks)
      Hooks->onThreadJoin(Thread.Id, Target.Id);
    Advance();
    return StepResult::Continue;
  }

  case Opcode::Print: {
    const Value &V = reg(Thread, I.A);
    Result.Output.push_back(V.isRef() ? int64_t(V.asRef().index())
                                      : V.asInt());
    Advance();
    return StepResult::Continue;
  }

  case Opcode::Yield:
    Advance();
    return StepResult::Switched;

  case Opcode::Trace: {
    LocationKey Loc;
    switch (I.TraceWhat) {
    case TraceWhatKind::Field: {
      ObjectId Obj;
      if (!requireRef(Thread, I.A, Obj, "trace"))
        return StepResult::Fault;
      Loc = LocationKey::forField(Obj, I.Field);
      break;
    }
    case TraceWhatKind::Array: {
      ObjectId Obj;
      if (!requireRef(Thread, I.A, Obj, "trace"))
        return StepResult::Fault;
      Loc = LocationKey::forArray(Obj);
      break;
    }
    case TraceWhatKind::Static:
      Loc = LocationKey::forStatic(TheHeap.classStatics(I.Class), I.Field);
      break;
    }
    emitAccess(Thread.Id, Loc, I.Access, I.Site);
    Advance();
    return StepResult::Continue;
  }
  }
  HERD_UNREACHABLE("unknown opcode in interpreter");
}

InterpResult Interpreter::run() {
  Result = InterpResult();
  Result.Ok = true;
  Faulted = false;

  assert(P.MainMethod.isValid() && "program has no main");
  const Method &Main = P.method(P.MainMethod);

  auto MainThread = std::make_unique<SimThread>();
  MainThread->Id = ThreadId(0);
  Frame MainFrame;
  MainFrame.Method = P.MainMethod;
  MainFrame.Regs.resize(Main.NumRegs);
  MainThread->Stack.push_back(std::move(MainFrame));
  Threads.clear();
  ThreadByObject.clear();
  Threads.push_back(std::move(MainThread));
  Result.ThreadsCreated = 1;
  if (Hooks)
    Hooks->onThreadCreate(ThreadId(0), ThreadId::invalid(),
                          ObjectId::invalid());

  size_t Cursor = 0;
  size_t ReplayIndex = 0;
  while (true) {
    SimThread *Current = nullptr;
    uint64_t Quantum = 0;

    if (Opts.Replay) {
      // Replay mode: follow the recorded slices exactly (Section 2.6's
      // DejaVu-style deterministic re-execution).
      if (ReplayIndex >= Opts.Replay->Slices.size())
        break;
      const ScheduleTrace::Slice &Slice = Opts.Replay->Slices[ReplayIndex++];
      if (Slice.ThreadIndex >= Threads.size()) {
        fault("schedule replay diverged: unknown thread in trace");
        break;
      }
      Current = Threads[Slice.ThreadIndex].get();
      if (Current->St != SimThread::State::Runnable) {
        fault("schedule replay diverged: recorded thread not runnable");
        break;
      }
      Quantum = Slice.Steps;
    } else {
      // Round-robin: find the next runnable thread at or after the cursor.
      bool AnyUnfinished = false;
      for (size_t Probe = 0; Probe != Threads.size(); ++Probe) {
        SimThread &T = *Threads[(Cursor + Probe) % Threads.size()];
        if (T.St != SimThread::State::Finished)
          AnyUnfinished = true;
        if (T.St == SimThread::State::Runnable) {
          Current = &T;
          Cursor = (Cursor + Probe) % Threads.size();
          break;
        }
      }
      if (!Current) {
        if (AnyUnfinished)
          fault("deadlock: all live threads are blocked");
        break;
      }
      Quantum = 1 + ScheduleRng.nextBelow(Opts.MaxQuantum);
    }

    uint32_t Retired = 0;
    for (uint64_t Step = 0; Step != Quantum; ++Step) {
      if (++Result.InstructionsExecuted > Opts.MaxInstructions) {
        fault("instruction budget exhausted (runaway workload?)");
        break;
      }
      StepResult R = step(*Current);
      if (R == StepResult::Fault)
        break;
      ++Retired;
      if (R != StepResult::Continue)
        break; // Blocked / Switched / Finished: end the quantum
    }
    if (Faulted)
      break;
    if (Opts.Record && Retired > 0)
      Opts.Record->Slices.push_back({Current->Id.index(), Retired});
    Cursor = (Cursor + 1) % Threads.size();
    ++Result.ContextSwitches;
  }

  if (Hooks)
    Hooks->onRunEnd();

  if (Faulted) {
    Result.Ok = false;
    return Result;
  }
  Result.Ok = true;
  return Result;
}
