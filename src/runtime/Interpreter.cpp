//===- runtime/Interpreter.cpp - Deterministic MiniJ interpreter ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two dispatch strategies share one set of per-opcode executors
// (docs/INTERPRETER.md):
//
//  * Switch (reference): step() is called once per instruction and
//    dispatches through one switch over the original program.
//
//  * Threaded: runSliceThreaded() executes a whole scheduling quantum
//    without returning to the scheduler, jumping handler-to-handler via
//    computed goto (portable fallback: a dense jump table the compiler
//    derives from a switch).  It runs superinstruction shadow code
//    (runtime/ThreadedCode.h) and is instantiated four ways over
//    <EmitAll, Profiled> so the no-hook lane compiles the access-hook
//    plumbing out of the common path entirely.
//
// Equivalence invariant: for the same program, options and seed, both
// strategies retire the same instructions in the same order with the same
// per-step accounting, so schedules, hook streams, race reports and
// output are byte-identical (tests/dispatch_differential_test.cpp).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "runtime/InterpProfiler.h"
#include "support/Compiler.h"

using namespace herd;

RuntimeHooks::~RuntimeHooks() = default;

const char *herd::dispatchModeName(DispatchMode Mode) {
  return Mode == DispatchMode::Switch ? "switch" : "threaded";
}

/// A call frame.
struct Interpreter::Frame {
  MethodId Method;
  BlockId Block = BlockId(0);
  uint32_t Ip = 0;
  std::vector<Value> Regs;
  RegId RetDst;        ///< caller register receiving the return value
  ObjectId SyncSelf;   ///< monitor to release on return (synchronized method)
  bool NeedsMonEnter = false; ///< synchronized method not yet entered
};

/// A simulated thread.
struct Interpreter::SimThread {
  enum class State : uint8_t {
    Runnable,
    BlockedOnMonitor,
    BlockedOnJoin,
    Finished,
  };

  ThreadId Id;
  ObjectId ThreadObj;    ///< invalid for the initial thread
  State St = State::Runnable;
  ObjectId WaitObj;      ///< monitor or thread object blocked on
  std::vector<Frame> Stack;
};

Interpreter::Interpreter(const Program &P, RuntimeHooks *Hooks,
                         InterpOptions Opts)
    : P(P), Hooks(Hooks), Prof(Opts.Profiler), Opts(Opts), TheHeap(P),
      ScheduleRng(Opts.Seed) {}

Interpreter::~Interpreter() = default;

Value &Interpreter::reg(SimThread &Thread, RegId Reg) {
  Frame &F = Thread.Stack.back();
  assert(Reg.isValid() && Reg.index() < F.Regs.size() &&
         "register out of range (verifier should have caught this)");
  return F.Regs[Reg.index()];
}

void Interpreter::fault(const std::string &Message) {
  if (Faulted)
    return;
  Faulted = true;
  Result.Ok = false;
  Result.Error = Message;
}

bool Interpreter::requireRef(SimThread &Thread, RegId Reg, ObjectId &Out,
                             const char *What) {
  const Value &V = reg(Thread, Reg);
  if (!V.isRef()) {
    fault(std::string("type error: expected a reference for ") + What);
    return false;
  }
  if (V.isNull()) {
    fault(std::string("null pointer dereference in ") + What);
    return false;
  }
  Out = V.asRef();
  return true;
}

bool Interpreter::requireInt(SimThread &Thread, RegId Reg, int64_t &Out,
                             const char *What) {
  const Value &V = reg(Thread, Reg);
  if (V.isRef()) {
    fault(std::string("type error: expected an integer for ") + What);
    return false;
  }
  Out = V.asInt();
  return true;
}

void Interpreter::emitAccess(ThreadId Thread, LocationKey Loc,
                             AccessKind Kind, SiteId Site) {
  ++Result.AccessEvents;
  if (!Hooks)
    return;
  if (HERD_UNLIKELY(Prof != nullptr) && Prof->samplingActive()) {
    // Time the detector feed so the profile splits "interpreting the
    // program" from "running the hooks" (onAccess dominates hook time).
    uint64_t Begin = Prof->now();
    Hooks->onAccess(Thread, Loc, Kind, Site);
    Prof->addHookNanos(Prof->now() - Begin);
    return;
  }
  Hooks->onAccess(Thread, Loc, Kind, Site);
}

bool Interpreter::tryAcquireMonitor(SimThread &Thread, ObjectId Obj,
                                    bool &Recursive) {
  Monitor &Mon = TheHeap.object(Obj).Mon;
  if (Mon.Owner == Thread.Id) {
    ++Mon.Recursion;
    Recursive = true;
    return true;
  }
  if (!Mon.Owner.isValid()) {
    Mon.Owner = Thread.Id;
    Mon.Recursion = 1;
    Recursive = false;
    return true;
  }
  return false;
}

void Interpreter::exitMonitorOnce(SimThread &Thread, ObjectId Obj) {
  Monitor &Mon = TheHeap.object(Obj).Mon;
  if (Mon.Owner != Thread.Id || Mon.Recursion == 0) {
    fault("monitorexit on a monitor the thread does not own");
    return;
  }
  --Mon.Recursion;
  bool StillHeld = Mon.Recursion > 0;
  if (!StillHeld) {
    Mon.Owner = ThreadId::invalid();
    wakeBlockedOn(Obj);
  }
  if (Hooks)
    Hooks->onMonitorExit(Thread.Id, Heap::lockOf(Obj), StillHeld);
}

void Interpreter::wakeBlockedOn(ObjectId Obj) {
  for (auto &T : Threads)
    if (T->St == SimThread::State::BlockedOnMonitor && T->WaitObj == Obj)
      T->St = SimThread::State::Runnable;
}

void Interpreter::wakeJoiners(ObjectId ThreadObj) {
  for (auto &T : Threads)
    if (T->St == SimThread::State::BlockedOnJoin && T->WaitObj == ThreadObj)
      T->St = SimThread::State::Runnable;
}

Interpreter::StepResult
Interpreter::enterSynchronizedFrame(SimThread &Thread, Frame &F) {
  // The callee is a synchronized instance method; acquire this's monitor
  // before its first instruction runs.
  ObjectId Self = F.Regs[0].asRef();
  bool Recursive = false;
  if (!tryAcquireMonitor(Thread, Self, Recursive)) {
    Thread.St = SimThread::State::BlockedOnMonitor;
    Thread.WaitObj = Self;
    return StepResult::Blocked;
  }
  F.NeedsMonEnter = false;
  F.SyncSelf = Self;
  if (Hooks)
    Hooks->onMonitorEnter(Thread.Id, Heap::lockOf(Self), Recursive);
  return StepResult::Continue;
}

//===----------------------------------------------------------------------===//
// Per-opcode executors.
//
// Each executor performs exactly one instruction: operand checks, effect,
// pc advance.  Both dispatch strategies call these same functions, so a
// semantic change here changes both modes at once — there is no second
// copy of the semantics to drift.
//===----------------------------------------------------------------------===//

Interpreter::StepResult Interpreter::execConst(SimThread &Thread,
                                               const Instr &I) {
  reg(Thread, I.Dst) = Value::makeInt(I.Imm);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execMove(SimThread &Thread,
                                              const Instr &I) {
  reg(Thread, I.Dst) = reg(Thread, I.A);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execBinOp(SimThread &Thread,
                                               const Instr &I) {
  const Value &AV = reg(Thread, I.A);
  const Value &BV = reg(Thread, I.B);
  // Eq/Ne compare values of either kind; all other operators require
  // integers.
  if (I.BinKind == BinOpKind::CmpEq || I.BinKind == BinOpKind::CmpNe) {
    bool Eq = AV == BV;
    reg(Thread, I.Dst) =
        Value::makeInt((I.BinKind == BinOpKind::CmpEq) == Eq ? 1 : 0);
    ++Thread.Stack.back().Ip;
    return StepResult::Continue;
  }
  int64_t A = 0, B = 0;
  if (!requireInt(Thread, I.A, A, "binop") ||
      !requireInt(Thread, I.B, B, "binop"))
    return StepResult::Fault;
  int64_t R = 0;
  switch (I.BinKind) {
  case BinOpKind::Add:
    R = A + B;
    break;
  case BinOpKind::Sub:
    R = A - B;
    break;
  case BinOpKind::Mul:
    R = A * B;
    break;
  case BinOpKind::Div:
  case BinOpKind::Mod:
    if (B == 0) {
      fault("division by zero");
      return StepResult::Fault;
    }
    R = I.BinKind == BinOpKind::Div ? A / B : A % B;
    break;
  case BinOpKind::And:
    R = A & B;
    break;
  case BinOpKind::Or:
    R = A | B;
    break;
  case BinOpKind::Xor:
    R = A ^ B;
    break;
  case BinOpKind::CmpLt:
    R = A < B;
    break;
  case BinOpKind::CmpLe:
    R = A <= B;
    break;
  case BinOpKind::CmpGt:
    R = A > B;
    break;
  case BinOpKind::CmpGe:
    R = A >= B;
    break;
  case BinOpKind::CmpEq:
  case BinOpKind::CmpNe:
    HERD_UNREACHABLE("handled above");
  }
  reg(Thread, I.Dst) = Value::makeInt(R);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execNew(SimThread &Thread,
                                             const Instr &I) {
  reg(Thread, I.Dst) = Value::makeRef(TheHeap.allocate(I.Class, I.AllocSite));
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execNewArray(SimThread &Thread,
                                                  const Instr &I) {
  int64_t Len = 0;
  if (!requireInt(Thread, I.A, Len, "newarray length"))
    return StepResult::Fault;
  if (Len < 0) {
    fault("negative array size");
    return StepResult::Fault;
  }
  reg(Thread, I.Dst) = Value::makeRef(TheHeap.allocateArray(Len, I.AllocSite));
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execArrayLen(SimThread &Thread,
                                                  const Instr &I) {
  ObjectId Arr;
  if (!requireRef(Thread, I.A, Arr, "arraylen"))
    return StepResult::Fault;
  reg(Thread, I.Dst) =
      Value::makeInt(int64_t(TheHeap.object(Arr).Slots.size()));
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execGetField(SimThread &Thread,
                                                  const Instr &I,
                                                  bool EmitAll) {
  ObjectId Obj;
  if (!requireRef(Thread, I.A, Obj, "getfield"))
    return StepResult::Fault;
  reg(Thread, I.Dst) = TheHeap.object(Obj).Slots[P.field(I.Field).SlotIndex];
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forField(Obj, I.Field),
               AccessKind::Read, I.Site);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execPutField(SimThread &Thread,
                                                  const Instr &I,
                                                  bool EmitAll) {
  ObjectId Obj;
  if (!requireRef(Thread, I.A, Obj, "putfield"))
    return StepResult::Fault;
  TheHeap.object(Obj).Slots[P.field(I.Field).SlotIndex] = reg(Thread, I.B);
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forField(Obj, I.Field),
               AccessKind::Write, I.Site);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execGetStatic(SimThread &Thread,
                                                   const Instr &I,
                                                   bool EmitAll) {
  ObjectId Statics = TheHeap.classStatics(I.Class);
  reg(Thread, I.Dst) =
      TheHeap.object(Statics).Slots[P.field(I.Field).SlotIndex];
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forStatic(Statics, I.Field),
               AccessKind::Read, I.Site);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execPutStatic(SimThread &Thread,
                                                   const Instr &I,
                                                   bool EmitAll) {
  ObjectId Statics = TheHeap.classStatics(I.Class);
  TheHeap.object(Statics).Slots[P.field(I.Field).SlotIndex] =
      reg(Thread, I.A);
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forStatic(Statics, I.Field),
               AccessKind::Write, I.Site);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execALoad(SimThread &Thread,
                                               const Instr &I, bool EmitAll) {
  ObjectId Arr;
  int64_t Idx = 0;
  if (!requireRef(Thread, I.A, Arr, "aload") ||
      !requireInt(Thread, I.B, Idx, "aload index"))
    return StepResult::Fault;
  HeapObject &ArrObj = TheHeap.object(Arr);
  if (Idx < 0 || size_t(Idx) >= ArrObj.Slots.size()) {
    fault("array index out of bounds");
    return StepResult::Fault;
  }
  reg(Thread, I.Dst) = ArrObj.Slots[size_t(Idx)];
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forArray(Arr), AccessKind::Read,
               I.Site);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execAStore(SimThread &Thread,
                                                const Instr &I, bool EmitAll) {
  ObjectId Arr;
  int64_t Idx = 0;
  if (!requireRef(Thread, I.A, Arr, "astore") ||
      !requireInt(Thread, I.B, Idx, "astore index"))
    return StepResult::Fault;
  HeapObject &ArrObj = TheHeap.object(Arr);
  if (Idx < 0 || size_t(Idx) >= ArrObj.Slots.size()) {
    fault("array index out of bounds");
    return StepResult::Fault;
  }
  ArrObj.Slots[size_t(Idx)] = reg(Thread, I.C);
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forArray(Arr), AccessKind::Write,
               I.Site);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execCall(SimThread &Thread,
                                              const Instr &I) {
  const Method &Callee = P.method(I.Callee);
  Frame NewFrame;
  NewFrame.Method = I.Callee;
  NewFrame.Regs.resize(Callee.NumRegs);
  for (size_t N = 0; N != I.Args.size(); ++N)
    NewFrame.Regs[N] = reg(Thread, I.Args[N]);
  NewFrame.RetDst = I.Dst;
  if (Callee.IsSynchronized) {
    if (NewFrame.Regs.empty() || !NewFrame.Regs[0].isRef() ||
        NewFrame.Regs[0].isNull()) {
      fault("synchronized call on null receiver");
      return StepResult::Fault;
    }
    NewFrame.NeedsMonEnter = true;
  }
  ++Thread.Stack.back().Ip; // the caller resumes after the call
  Thread.Stack.push_back(std::move(NewFrame));
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execBranch(SimThread &Thread,
                                                const Instr &I) {
  bool Taken = reg(Thread, I.A).isTruthy();
  Frame &Top = Thread.Stack.back();
  Top.Block = Taken ? I.Target : I.AltTarget;
  Top.Ip = 0;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execJump(SimThread &Thread,
                                              const Instr &I) {
  Frame &Top = Thread.Stack.back();
  Top.Block = I.Target;
  Top.Ip = 0;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execReturn(SimThread &Thread,
                                                const Instr &I) {
  Value Ret = I.A.isValid() ? reg(Thread, I.A) : Value();
  Frame &F = Thread.Stack.back();
  ObjectId SyncSelf = F.SyncSelf;
  RegId RetDst = F.RetDst;
  Thread.Stack.pop_back();
  if (SyncSelf.isValid())
    exitMonitorOnce(Thread, SyncSelf);
  if (Faulted)
    return StepResult::Fault;
  if (Thread.Stack.empty()) {
    Thread.St = SimThread::State::Finished;
    if (Hooks)
      Hooks->onThreadExit(Thread.Id);
    if (Thread.ThreadObj.isValid())
      wakeJoiners(Thread.ThreadObj);
    return StepResult::Finished;
  }
  if (RetDst.isValid())
    reg(Thread, RetDst) = Ret;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execMonitorEnter(SimThread &Thread,
                                                      const Instr &I) {
  ObjectId Obj;
  if (!requireRef(Thread, I.A, Obj, "monitorenter"))
    return StepResult::Fault;
  bool Recursive = false;
  if (!tryAcquireMonitor(Thread, Obj, Recursive)) {
    Thread.St = SimThread::State::BlockedOnMonitor;
    Thread.WaitObj = Obj;
    return StepResult::Blocked;
  }
  if (Hooks)
    Hooks->onMonitorEnter(Thread.Id, Heap::lockOf(Obj), Recursive);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execMonitorExit(SimThread &Thread,
                                                     const Instr &I) {
  ObjectId Obj;
  if (!requireRef(Thread, I.A, Obj, "monitorexit"))
    return StepResult::Fault;
  exitMonitorOnce(Thread, Obj);
  if (Faulted)
    return StepResult::Fault;
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execThreadStart(SimThread &Thread,
                                                     const Instr &I) {
  ObjectId Obj;
  if (!requireRef(Thread, I.A, Obj, "thread start"))
    return StepResult::Fault;
  HeapObject &ThreadObj = TheHeap.object(Obj);
  if (!ThreadObj.Class.isValid() ||
      !P.classDecl(ThreadObj.Class).RunMethod.isValid()) {
    fault("start on an object whose class has no run() method");
    return StepResult::Fault;
  }
  if (ThreadByObject.count(Obj)) {
    fault("thread object started twice");
    return StepResult::Fault;
  }
  MethodId Run = P.classDecl(ThreadObj.Class).RunMethod;
  const Method &RunM = P.method(Run);
  auto Child = std::make_unique<SimThread>();
  Child->Id = ThreadId(uint32_t(Threads.size()));
  Child->ThreadObj = Obj;
  Frame RunFrame;
  RunFrame.Method = Run;
  RunFrame.Regs.resize(RunM.NumRegs);
  RunFrame.Regs[0] = Value::makeRef(Obj);
  RunFrame.NeedsMonEnter = RunM.IsSynchronized;
  Child->Stack.push_back(std::move(RunFrame));
  ThreadByObject.emplace(Obj, Child->Id);
  ++Result.ThreadsCreated;
  if (Hooks)
    Hooks->onThreadCreate(Child->Id, Thread.Id, Obj);
  Threads.push_back(std::move(Child));
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execThreadJoin(SimThread &Thread,
                                                    const Instr &I) {
  ObjectId Obj;
  if (!requireRef(Thread, I.A, Obj, "thread join"))
    return StepResult::Fault;
  auto It = ThreadByObject.find(Obj);
  if (It == ThreadByObject.end()) {
    // Joining a never-started thread returns immediately (Java semantics);
    // no ordering is established.
    ++Thread.Stack.back().Ip;
    return StepResult::Continue;
  }
  SimThread &Target = *Threads[It->second.index()];
  if (Target.St != SimThread::State::Finished) {
    Thread.St = SimThread::State::BlockedOnJoin;
    Thread.WaitObj = Obj;
    return StepResult::Blocked;
  }
  if (Hooks)
    Hooks->onThreadJoin(Thread.Id, Target.Id);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execPrint(SimThread &Thread,
                                               const Instr &I) {
  const Value &V = reg(Thread, I.A);
  Result.Output.push_back(V.isRef() ? int64_t(V.asRef().index()) : V.asInt());
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execYield(SimThread &Thread,
                                               const Instr &I) {
  (void)I;
  ++Thread.Stack.back().Ip;
  return StepResult::Switched;
}

Interpreter::StepResult Interpreter::execTrace(SimThread &Thread,
                                               const Instr &I) {
  LocationKey Loc;
  switch (I.TraceWhat) {
  case TraceWhatKind::Field: {
    ObjectId Obj;
    if (!requireRef(Thread, I.A, Obj, "trace"))
      return StepResult::Fault;
    Loc = LocationKey::forField(Obj, I.Field);
    break;
  }
  case TraceWhatKind::Array: {
    ObjectId Obj;
    if (!requireRef(Thread, I.A, Obj, "trace"))
      return StepResult::Fault;
    Loc = LocationKey::forArray(Obj);
    break;
  }
  case TraceWhatKind::Static:
    Loc = LocationKey::forStatic(TheHeap.classStatics(I.Class), I.Field);
    break;
  }
  emitAccess(Thread.Id, Loc, I.Access, I.Site);
  ++Thread.Stack.back().Ip;
  return StepResult::Continue;
}

//===----------------------------------------------------------------------===//
// Switch (reference) dispatch.
//===----------------------------------------------------------------------===//

Interpreter::StepResult Interpreter::step(SimThread &Thread) {
  Frame &F = Thread.Stack.back();
  if (F.NeedsMonEnter) {
    StepResult R = enterSynchronizedFrame(Thread, F);
    if (R != StepResult::Continue)
      return R;
  }

  const Method &M = P.method(F.Method);
  const BasicBlock &Block = M.block(F.Block);
  assert(F.Ip < Block.Instrs.size() && "pc ran off the end of a block");
  const Instr &I = Block.Instrs[F.Ip];

  if (HERD_UNLIKELY(Prof != nullptr)) {
    // Opcode captured up front: executeInstr can grow Thread.Stack, but
    // never mutates the method body I points into.
    Opcode Op = I.Op;
    if (Prof->onDispatch(Op)) {
      Prof->beginSample();
      uint64_t Begin = Prof->now();
      StepResult R = executeInstr(Thread, F, I);
      uint64_t End = Prof->now();
      Prof->endSample(Op, End - Begin);
      return R;
    }
    return executeInstr(Thread, F, I);
  }
  return executeInstr(Thread, F, I);
}

Interpreter::StepResult Interpreter::executeInstr(SimThread &Thread, Frame &F,
                                                  const Instr &I) {
  (void)F;
  switch (I.Op) {
  case Opcode::Const:
    return execConst(Thread, I);
  case Opcode::Move:
    return execMove(Thread, I);
  case Opcode::BinOp:
    return execBinOp(Thread, I);
  case Opcode::New:
    return execNew(Thread, I);
  case Opcode::NewArray:
    return execNewArray(Thread, I);
  case Opcode::ArrayLen:
    return execArrayLen(Thread, I);
  case Opcode::GetField:
    return execGetField(Thread, I, Opts.TraceEveryAccess);
  case Opcode::PutField:
    return execPutField(Thread, I, Opts.TraceEveryAccess);
  case Opcode::GetStatic:
    return execGetStatic(Thread, I, Opts.TraceEveryAccess);
  case Opcode::PutStatic:
    return execPutStatic(Thread, I, Opts.TraceEveryAccess);
  case Opcode::ALoad:
    return execALoad(Thread, I, Opts.TraceEveryAccess);
  case Opcode::AStore:
    return execAStore(Thread, I, Opts.TraceEveryAccess);
  case Opcode::Call:
    return execCall(Thread, I);
  case Opcode::Branch:
    return execBranch(Thread, I);
  case Opcode::Jump:
    return execJump(Thread, I);
  case Opcode::Return:
    return execReturn(Thread, I);
  case Opcode::MonitorEnter:
    return execMonitorEnter(Thread, I);
  case Opcode::MonitorExit:
    return execMonitorExit(Thread, I);
  case Opcode::ThreadStart:
    return execThreadStart(Thread, I);
  case Opcode::ThreadJoin:
    return execThreadJoin(Thread, I);
  case Opcode::Print:
    return execPrint(Thread, I);
  case Opcode::Yield:
    return execYield(Thread, I);
  case Opcode::Trace:
    return execTrace(Thread, I);
  }
  HERD_UNREACHABLE("unknown opcode in interpreter");
}

//===----------------------------------------------------------------------===//
// Threaded dispatch.
//
// One function body compiles two ways (support/Compiler.h):
//
//   HERD_COMPUTED_GOTO=1   handlers are labels; dispatch is
//                          `goto *Table[op]` — each handler's tail jump is
//                          a separate indirect branch the predictor can
//                          correlate with the opcode stream.
//   HERD_COMPUTED_GOTO=0   handlers are cases of a dense switch inside a
//                          loop — the portable jump-table fallback.
//
// Accounting contract (must mirror run()'s switch-mode inner loop):
//   * quantum check, then one InstructionsExecuted increment + budget
//     check per instruction, BEFORE it executes;
//   * every step that does not Fault increments Retired — including a
//     step that merely blocked;
//   * Blocked/Switched/Finished/Fault end the slice.
// Superinstructions run their constituents back-to-back with this exact
// per-constituent accounting; the only thing fusion removes is the
// dispatch between them.
//===----------------------------------------------------------------------===//

#if HERD_COMPUTED_GOTO
#define HERD_OP(Name) Lbl_##Name:
#define HERD_FUSED_OP(Name) Lbl_##Name:
#else
#define HERD_OP(Name) case size_t(Opcode::Name):
#define HERD_FUSED_OP(Name) case size_t(Op##Name):
#endif

/// One instruction's fuel: charge the global budget before executing.
#define HERD_ACCOUNT_STEP()                                                    \
  do {                                                                         \
    if (HERD_UNLIKELY(++Result.InstructionsExecuted > Opts.MaxInstructions)) { \
      fault("instruction budget exhausted (runaway workload?)");               \
      return;                                                                  \
    }                                                                          \
  } while (false)

/// Common step epilogue: a Fault retires nothing; any other non-Continue
/// outcome retires the step and ends the slice.
#define HERD_FINISH_STEP()                                                     \
  do {                                                                         \
    if (HERD_UNLIKELY(R != StepResult::Continue)) {                            \
      if (R != StepResult::Fault)                                              \
        ++Retired;                                                             \
      return;                                                                  \
    }                                                                          \
    ++Retired;                                                                 \
    --Remaining;                                                               \
  } while (false)

/// Executes one instruction with switch-mode-identical profiling: count
/// the dispatch under the CONSTITUENT opcode (never a fused one) and time
/// the sampled executions.  Compiles to a bare call when !Profiled.
#define HERD_EXEC(Name, Call)                                                  \
  do {                                                                         \
    if constexpr (Profiled) {                                                  \
      if (Prof->onDispatch(Opcode::Name)) {                                    \
        Prof->beginSample();                                                   \
        uint64_t ProfBegin_ = Prof->now();                                     \
        R = (Call);                                                            \
        Prof->endSample(Opcode::Name, Prof->now() - ProfBegin_);               \
      } else {                                                                 \
        R = (Call);                                                            \
      }                                                                        \
    } else {                                                                   \
      R = (Call);                                                              \
    }                                                                          \
  } while (false)

template <bool EmitAll, bool Profiled>
void Interpreter::runSliceThreaded(SimThread &Thread, uint64_t Quantum,
                                   uint32_t &Retired) {
  // The profiled variant runs the ORIGINAL blocks: per-opcode dispatch
  // counts must be exact per constituent, so fusion is compiled out of
  // the histogram's world entirely (docs/INTERPRETER.md).
  const ThreadedCode *Shadow = Profiled ? nullptr : Opts.Fused;

  Frame *F = nullptr;
  const std::vector<Instr> *Code = nullptr;
  const Instr *I = nullptr;
  uint64_t Remaining = Quantum;
  StepResult R = StepResult::Continue;

  // Re-resolve the frame and code pointers after any control transfer
  // (Thread.Stack may reallocate on Call; Branch/Jump change blocks).
  auto Refresh = [&] {
    F = &Thread.Stack.back();
    Code = Shadow
               ? &Shadow->MethodBlocks[F->Method.index()][F->Block.index()]
                      .Instrs
               : &P.method(F->Method).block(F->Block).Instrs;
  };
  Refresh();

#if HERD_COMPUTED_GOTO
  static const void *const DispatchTable[NumDispatchOpcodes] = {
      &&Lbl_Const,        &&Lbl_Move,         &&Lbl_BinOp,
      &&Lbl_New,          &&Lbl_NewArray,     &&Lbl_ArrayLen,
      &&Lbl_GetField,     &&Lbl_PutField,     &&Lbl_GetStatic,
      &&Lbl_PutStatic,    &&Lbl_ALoad,        &&Lbl_AStore,
      &&Lbl_Call,         &&Lbl_Branch,       &&Lbl_Jump,
      &&Lbl_Return,       &&Lbl_MonitorEnter, &&Lbl_MonitorExit,
      &&Lbl_ThreadStart,  &&Lbl_ThreadJoin,   &&Lbl_Print,
      &&Lbl_Yield,        &&Lbl_Trace,        &&Lbl_FusedConstBinOp,
      &&Lbl_FusedConstPutField, &&Lbl_FusedGetBinPut};
#endif

  // A slice begins like a step that may first have to enter a
  // synchronized frame (thread entry into a synchronized run(), or a
  // retry after blocking on it).
  goto EntryStep;

EntryStep:
  // First step of a frame: a pending synchronized-method entry acquires
  // the monitor within the same step as the first instruction (or blocks,
  // which retires the step without advancing the pc) — exactly what
  // step() does when F.NeedsMonEnter is set.
  if (Remaining == 0)
    return;
  HERD_ACCOUNT_STEP();
  if (HERD_UNLIKELY(F->NeedsMonEnter)) {
    R = enterSynchronizedFrame(Thread, *F);
    if (R != StepResult::Continue) {
      ++Retired; // a blocked entry attempt still consumed this step
      return;
    }
  }
  goto DispatchCurrent;

NextStep:
  if (Remaining == 0)
    return;
  HERD_ACCOUNT_STEP();
  // Fallthrough.

DispatchCurrent:
  I = &(*Code)[F->Ip];
#if HERD_COMPUTED_GOTO
  goto *DispatchTable[size_t(I->Op)];
#else
  switch (size_t(I->Op)) {
#endif

  HERD_OP(Const)
PlainConst : {
    HERD_EXEC(Const, execConst(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(Move) {
    HERD_EXEC(Move, execMove(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(BinOp) {
    HERD_EXEC(BinOp, execBinOp(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(New) {
    HERD_EXEC(New, execNew(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(NewArray) {
    HERD_EXEC(NewArray, execNewArray(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(ArrayLen) {
    HERD_EXEC(ArrayLen, execArrayLen(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(GetField)
PlainGetField : {
    HERD_EXEC(GetField, execGetField(Thread, *I, EmitAll));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(PutField) {
    HERD_EXEC(PutField, execPutField(Thread, *I, EmitAll));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(GetStatic) {
    HERD_EXEC(GetStatic, execGetStatic(Thread, *I, EmitAll));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(PutStatic) {
    HERD_EXEC(PutStatic, execPutStatic(Thread, *I, EmitAll));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(ALoad) {
    HERD_EXEC(ALoad, execALoad(Thread, *I, EmitAll));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(AStore) {
    HERD_EXEC(AStore, execAStore(Thread, *I, EmitAll));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(Call) {
    HERD_EXEC(Call, execCall(Thread, *I));
    HERD_FINISH_STEP();
    Refresh();
    goto EntryStep; // the callee may be synchronized
  }

  HERD_OP(Branch) {
    HERD_EXEC(Branch, execBranch(Thread, *I));
    HERD_FINISH_STEP();
    Refresh();
    goto NextStep;
  }

  HERD_OP(Jump) {
    HERD_EXEC(Jump, execJump(Thread, *I));
    HERD_FINISH_STEP();
    Refresh();
    goto NextStep;
  }

  HERD_OP(Return) {
    HERD_EXEC(Return, execReturn(Thread, *I));
    HERD_FINISH_STEP();
    Refresh(); // back in the caller's frame
    goto NextStep;
  }

  HERD_OP(MonitorEnter) {
    HERD_EXEC(MonitorEnter, execMonitorEnter(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(MonitorExit) {
    HERD_EXEC(MonitorExit, execMonitorExit(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(ThreadStart) {
    HERD_EXEC(ThreadStart, execThreadStart(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(ThreadJoin) {
    HERD_EXEC(ThreadJoin, execThreadJoin(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(Print) {
    HERD_EXEC(Print, execPrint(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(Yield) {
    HERD_EXEC(Yield, execYield(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  HERD_OP(Trace) {
    HERD_EXEC(Trace, execTrace(Thread, *I));
    HERD_FINISH_STEP();
    goto NextStep;
  }

  // --- Superinstructions (shadow code only; never under Profiled) ---
  // When the remaining quantum cannot cover the whole sequence, only the
  // head constituent runs via its plain handler: the shadow block keeps
  // constituents at ip+1.., so the tail executes as ordinary code in the
  // thread's next slice.

  HERD_FUSED_OP(FusedConstBinOp) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    if (HERD_UNLIKELY(Remaining < 2))
      goto PlainConst;
    execConst(Thread, *I); // cannot fault
    ++Retired;
    --Remaining;
    HERD_ACCOUNT_STEP();
    I = &(*Code)[F->Ip];
    R = execBinOp(Thread, *I);
    HERD_FINISH_STEP();
    ++Result.Fused.ConstBinOp;
    goto NextStep;
  }

  HERD_FUSED_OP(FusedConstPutField) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    if (HERD_UNLIKELY(Remaining < 2))
      goto PlainConst;
    execConst(Thread, *I); // cannot fault
    ++Retired;
    --Remaining;
    HERD_ACCOUNT_STEP();
    I = &(*Code)[F->Ip];
    R = execPutField(Thread, *I, EmitAll);
    HERD_FINISH_STEP();
    ++Result.Fused.ConstPutField;
    goto NextStep;
  }

  HERD_FUSED_OP(FusedGetBinPut) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    if (HERD_UNLIKELY(Remaining < 3))
      goto PlainGetField;
    R = execGetField(Thread, *I, EmitAll);
    HERD_FINISH_STEP();
    HERD_ACCOUNT_STEP();
    I = &(*Code)[F->Ip];
    R = execBinOp(Thread, *I);
    HERD_FINISH_STEP();
    HERD_ACCOUNT_STEP();
    I = &(*Code)[F->Ip];
    R = execPutField(Thread, *I, EmitAll);
    HERD_FINISH_STEP();
    ++Result.Fused.GetBinPut;
    goto NextStep;
  }

#if !HERD_COMPUTED_GOTO
  default:
    HERD_UNREACHABLE("invalid opcode in threaded dispatch");
  }
#endif
}

#undef HERD_OP
#undef HERD_FUSED_OP
#undef HERD_ACCOUNT_STEP
#undef HERD_FINISH_STEP
#undef HERD_EXEC

//===----------------------------------------------------------------------===//
// The scheduler loop.
//===----------------------------------------------------------------------===//

InterpResult Interpreter::run() {
  Result = InterpResult();
  Result.Ok = true;
  Faulted = false;

  assert(P.MainMethod.isValid() && "program has no main");
  assert((!Opts.Fused ||
          Opts.Fused->MethodBlocks.size() == P.numMethods()) &&
         "shadow code was built from a different program");
  const Method &Main = P.method(P.MainMethod);

  auto MainThread = std::make_unique<SimThread>();
  MainThread->Id = ThreadId(0);
  Frame MainFrame;
  MainFrame.Method = P.MainMethod;
  MainFrame.Regs.resize(Main.NumRegs);
  MainThread->Stack.push_back(std::move(MainFrame));
  Threads.clear();
  ThreadByObject.clear();
  Threads.push_back(std::move(MainThread));
  Result.ThreadsCreated = 1;
  if (Hooks)
    Hooks->onThreadCreate(ThreadId(0), ThreadId::invalid(),
                          ObjectId::invalid());

  // Resolve the threaded slice runner once: the no-hook lane (EmitAll =
  // false) and the profiler are per-run constants, so the hot loop never
  // re-tests them.
  using SliceFn = void (Interpreter::*)(SimThread &, uint64_t, uint32_t &);
  const bool UseThreaded = Opts.Dispatch == DispatchMode::Threaded;
  SliceFn ThreadedSlice =
      Opts.TraceEveryAccess
          ? (Prof ? &Interpreter::runSliceThreaded<true, true>
                  : &Interpreter::runSliceThreaded<true, false>)
          : (Prof ? &Interpreter::runSliceThreaded<false, true>
                  : &Interpreter::runSliceThreaded<false, false>);

  size_t Cursor = 0;
  size_t ReplayIndex = 0;
  while (true) {
    SimThread *Current = nullptr;
    uint64_t Quantum = 0;

    if (Opts.Replay) {
      // Replay mode: follow the recorded slices exactly (Section 2.6's
      // DejaVu-style deterministic re-execution).
      if (ReplayIndex >= Opts.Replay->Slices.size())
        break;
      const ScheduleTrace::Slice &Slice = Opts.Replay->Slices[ReplayIndex++];
      if (Slice.ThreadIndex >= Threads.size()) {
        fault("schedule replay diverged: unknown thread in trace");
        break;
      }
      Current = Threads[Slice.ThreadIndex].get();
      if (Current->St != SimThread::State::Runnable) {
        fault("schedule replay diverged: recorded thread not runnable");
        break;
      }
      Quantum = Slice.Steps;
    } else {
      // Round-robin: find the next runnable thread at or after the cursor.
      bool AnyUnfinished = false;
      for (size_t Probe = 0; Probe != Threads.size(); ++Probe) {
        SimThread &T = *Threads[(Cursor + Probe) % Threads.size()];
        if (T.St != SimThread::State::Finished)
          AnyUnfinished = true;
        if (T.St == SimThread::State::Runnable) {
          Current = &T;
          Cursor = (Cursor + Probe) % Threads.size();
          break;
        }
      }
      if (!Current) {
        if (AnyUnfinished)
          fault("deadlock: all live threads are blocked");
        break;
      }
      Quantum = 1 + ScheduleRng.nextBelow(Opts.MaxQuantum);
    }

    uint32_t Retired = 0;
    if (UseThreaded) {
      (this->*ThreadedSlice)(*Current, Quantum, Retired);
    } else {
      for (uint64_t Step = 0; Step != Quantum; ++Step) {
        if (++Result.InstructionsExecuted > Opts.MaxInstructions) {
          fault("instruction budget exhausted (runaway workload?)");
          break;
        }
        StepResult R = step(*Current);
        if (R == StepResult::Fault)
          break;
        ++Retired;
        if (R != StepResult::Continue)
          break; // Blocked / Switched / Finished: end the quantum
      }
    }
    if (Faulted)
      break;
    if (Opts.Record && Retired > 0)
      Opts.Record->Slices.push_back({Current->Id.index(), Retired});
    Cursor = (Cursor + 1) % Threads.size();
    ++Result.ContextSwitches;
  }

  if (Hooks)
    Hooks->onRunEnd();

  if (Faulted) {
    Result.Ok = false;
    return Result;
  }
  Result.Ok = true;
  return Result;
}
