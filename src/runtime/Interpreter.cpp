//===- runtime/Interpreter.cpp - Deterministic MiniJ interpreter ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two dispatch strategies share one set of per-opcode executors
// (docs/INTERPRETER.md):
//
//  * Switch (reference): step() is called once per instruction and
//    dispatches through one switch over the original program.
//
//  * Threaded: runSliceThreaded() executes a whole scheduling quantum
//    without returning to the scheduler, jumping handler-to-handler via
//    computed goto (portable fallback: a dense jump table the compiler
//    derives from a switch).  It runs superinstruction shadow code
//    (runtime/ThreadedCode.h) and is instantiated four ways over
//    <EmitAll, Profiled> so the no-hook lane compiles the access-hook
//    plumbing out of the common path entirely.
//
// Equivalence invariant: for the same program, options and seed, both
// strategies retire the same instructions in the same order with the same
// per-step accounting, so schedules, hook streams, race reports and
// output are byte-identical (tests/dispatch_differential_test.cpp).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "detect/RaceRuntime.h"
#include "detect/ShardedRuntime.h"
#include "runtime/InterpProfiler.h"
#include "support/Compiler.h"

using namespace herd;

RuntimeHooks::~RuntimeHooks() = default;

const char *herd::dispatchModeName(DispatchMode Mode) {
  return Mode == DispatchMode::Switch ? "switch" : "threaded";
}

/// A call frame.
struct Interpreter::Frame {
  MethodId Method;
  BlockId Block = BlockId(0);
  uint32_t Ip = 0;
  std::vector<Value> Regs;
  RegId RetDst;        ///< caller register receiving the return value
  ObjectId SyncSelf;   ///< monitor to release on return (synchronized method)
  bool NeedsMonEnter = false; ///< synchronized method not yet entered
};

/// A simulated thread.
struct Interpreter::SimThread {
  enum class State : uint8_t {
    Runnable,
    BlockedOnMonitor,
    BlockedOnJoin,
    Finished,
  };

  ThreadId Id;
  ObjectId ThreadObj;    ///< invalid for the initial thread
  State St = State::Runnable;
  ObjectId WaitObj;      ///< monitor or thread object blocked on
  std::vector<Frame> Stack;
};

Interpreter::Interpreter(const Program &P, RuntimeHooks *Hooks,
                         InterpOptions Opts)
    : P(P), Hooks(Hooks), Prof(Opts.Profiler), SerialSink(Opts.SerialSink),
      ShardedSink(Opts.ShardedSink), Opts(Opts), TheHeap(P),
      ScheduleRng(Opts.Seed) {
  assert(!(SerialSink && ShardedSink) &&
         "at most one devirtualized access sink");
  assert((!Prof || (!SerialSink && !ShardedSink)) &&
         "direct sinks bypass the profiler's hook timing");
}

Interpreter::~Interpreter() = default;

/// Register access against a cached register file (the pinned
/// `Regs = F.Regs.data()` parameter of the executor calling convention).
/// Range validity is the verifier's invariant; the assert documents it.
static inline Value &rg(Value *Regs, RegId Reg) {
  assert(Reg.isValid() &&
         "invalid register (verifier should have caught this)");
  return Regs[Reg.index()];
}

void Interpreter::fault(const std::string &Message) {
  if (Faulted)
    return;
  Faulted = true;
  Result.Ok = false;
  Result.Error = Message;
}

bool Interpreter::requireRef(const Value &V, ObjectId &Out,
                             const char *What) {
  if (!V.isRef()) {
    fault(std::string("type error: expected a reference for ") + What);
    return false;
  }
  if (V.isNull()) {
    fault(std::string("null pointer dereference in ") + What);
    return false;
  }
  Out = V.asRef();
  return true;
}

bool Interpreter::requireInt(const Value &V, int64_t &Out,
                             const char *What) {
  if (V.isRef()) {
    fault(std::string("type error: expected an integer for ") + What);
    return false;
  }
  Out = V.asInt();
  return true;
}

void Interpreter::emitAccess(ThreadId Thread, LocationKey Loc,
                             AccessKind Kind, SiteId Site) {
  ++Result.AccessEvents;
  // Hoisted L0 probe (docs/HOOKPATH.md): CurFilter is the running
  // thread's filter, refreshed at quantum start, so the common case — a
  // guaranteed-redundant access — costs one hash and one slot compare
  // through a register-resident pointer.  A hit must be backed by the
  // detector-side cache (the differential oracle, asserted in debug
  // builds); a miss falls through to the full delivery path, which is
  // what seeds the filter.
  if (CurFilter) {
    if (CurFilter->probe(Loc, Kind)) {
      assert((SerialSink ? SerialSink->oracleHolds(Thread, Loc, Kind)
                         : ShardedSink->oracleHolds(Thread, Loc, Kind)) &&
             "hoisted L0 filter hit not backed by the detector-side cache");
      return;
    }
    // Qualified calls: the sink type is concrete, so the miss path stays
    // devirtualized too.
    if (SerialSink) {
      SerialSink->RaceRuntime::onAccess(Thread, Loc, Kind, Site);
      return;
    }
    ShardedSink->ShardedRuntime::onAccess(Thread, Loc, Kind, Site);
    return;
  }
  // Devirtualized delivery without a hoistable filter (filter off, or
  // FieldsMerged): onAccessFast performs the key transform and the probe
  // itself.  The pipeline only sets a sink when no profiler is active, so
  // the profiled hook-timing path below stays exact when profiling.
  if (SerialSink) {
    SerialSink->onAccessFast(Thread, Loc, Kind, Site);
    return;
  }
  if (ShardedSink) {
    ShardedSink->onAccessFast(Thread, Loc, Kind, Site);
    return;
  }
  if (!Hooks)
    return;
  if (HERD_UNLIKELY(Prof != nullptr) && Prof->samplingActive()) {
    // Time the detector feed so the profile splits "interpreting the
    // program" from "running the hooks" (onAccess dominates hook time).
    uint64_t Begin = Prof->now();
    Hooks->onAccess(Thread, Loc, Kind, Site);
    Prof->addHookNanos(Prof->now() - Begin);
    return;
  }
  Hooks->onAccess(Thread, Loc, Kind, Site);
}

bool Interpreter::tryAcquireMonitor(SimThread &Thread, ObjectId Obj,
                                    bool &Recursive) {
  Monitor &Mon = TheHeap.object(Obj).Mon;
  if (Mon.Owner == Thread.Id) {
    ++Mon.Recursion;
    Recursive = true;
    return true;
  }
  if (!Mon.Owner.isValid()) {
    Mon.Owner = Thread.Id;
    Mon.Recursion = 1;
    Recursive = false;
    return true;
  }
  return false;
}

void Interpreter::exitMonitorOnce(SimThread &Thread, ObjectId Obj) {
  Monitor &Mon = TheHeap.object(Obj).Mon;
  if (Mon.Owner != Thread.Id || Mon.Recursion == 0) {
    fault("monitorexit on a monitor the thread does not own");
    return;
  }
  --Mon.Recursion;
  bool StillHeld = Mon.Recursion > 0;
  if (!StillHeld) {
    Mon.Owner = ThreadId::invalid();
    wakeBlockedOn(Obj);
  }
  if (Hooks)
    Hooks->onMonitorExit(Thread.Id, Heap::lockOf(Obj), StillHeld);
}

void Interpreter::wakeBlockedOn(ObjectId Obj) {
  for (auto &T : Threads)
    if (T->St == SimThread::State::BlockedOnMonitor && T->WaitObj == Obj)
      T->St = SimThread::State::Runnable;
}

void Interpreter::wakeJoiners(ObjectId ThreadObj) {
  for (auto &T : Threads)
    if (T->St == SimThread::State::BlockedOnJoin && T->WaitObj == ThreadObj)
      T->St = SimThread::State::Runnable;
}

Interpreter::StepResult
Interpreter::enterSynchronizedFrame(SimThread &Thread, Frame &F) {
  // The callee is a synchronized instance method; acquire this's monitor
  // before its first instruction runs.
  ObjectId Self = F.Regs[0].asRef();
  bool Recursive = false;
  if (!tryAcquireMonitor(Thread, Self, Recursive)) {
    Thread.St = SimThread::State::BlockedOnMonitor;
    Thread.WaitObj = Self;
    return StepResult::Blocked;
  }
  F.NeedsMonEnter = false;
  F.SyncSelf = Self;
  if (Hooks)
    Hooks->onMonitorEnter(Thread.Id, Heap::lockOf(Self), Recursive);
  return StepResult::Continue;
}

//===----------------------------------------------------------------------===//
// Per-opcode executors.
//
// Each executor performs exactly one instruction: operand checks and
// effect.  Both dispatch strategies call these same functions, so a
// semantic change here changes both modes at once — there is no second
// copy of the semantics to drift.
//
// The pc split: straight-line executors (Const..AStore, Print, Trace)
// never touch F.Ip — the CALLER advances the pc on Continue, which lets
// the threaded loop keep the pc in a register for whole straight-line
// runs.  Executors that transfer control, can block, or must publish the
// pc (Call, Branch, Jump, Return, monitors, thread ops, Yield) still own
// F.Ip themselves, and their callers flush the cached pc before invoking
// any of them that reads it.
//===----------------------------------------------------------------------===//

Interpreter::StepResult Interpreter::execConst(Value *Regs, const Instr &I) {
  rg(Regs, I.Dst) = Value::makeInt(I.Imm);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execMove(Value *Regs, const Instr &I) {
  rg(Regs, I.Dst) = rg(Regs, I.A);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execBinOp(Value *Regs, const Instr &I) {
  const Value &AV = rg(Regs, I.A);
  const Value &BV = rg(Regs, I.B);
  // Eq/Ne compare values of either kind; all other operators require
  // integers.
  if (I.BinKind == BinOpKind::CmpEq || I.BinKind == BinOpKind::CmpNe) {
    bool Eq = AV == BV;
    rg(Regs, I.Dst) =
        Value::makeInt((I.BinKind == BinOpKind::CmpEq) == Eq ? 1 : 0);
    return StepResult::Continue;
  }
  int64_t A = 0, B = 0;
  if (!requireInt(AV, A, "binop") || !requireInt(BV, B, "binop"))
    return StepResult::Fault;
  int64_t R = 0;
  switch (I.BinKind) {
  case BinOpKind::Add:
    R = A + B;
    break;
  case BinOpKind::Sub:
    R = A - B;
    break;
  case BinOpKind::Mul:
    R = A * B;
    break;
  case BinOpKind::Div:
  case BinOpKind::Mod:
    if (B == 0) {
      fault("division by zero");
      return StepResult::Fault;
    }
    R = I.BinKind == BinOpKind::Div ? A / B : A % B;
    break;
  case BinOpKind::And:
    R = A & B;
    break;
  case BinOpKind::Or:
    R = A | B;
    break;
  case BinOpKind::Xor:
    R = A ^ B;
    break;
  case BinOpKind::CmpLt:
    R = A < B;
    break;
  case BinOpKind::CmpLe:
    R = A <= B;
    break;
  case BinOpKind::CmpGt:
    R = A > B;
    break;
  case BinOpKind::CmpGe:
    R = A >= B;
    break;
  case BinOpKind::CmpEq:
  case BinOpKind::CmpNe:
    HERD_UNREACHABLE("handled above");
  }
  rg(Regs, I.Dst) = Value::makeInt(R);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execNew(Value *Regs, const Instr &I) {
  rg(Regs, I.Dst) = Value::makeRef(TheHeap.allocate(I.Class, I.AllocSite));
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execNewArray(Value *Regs,
                                                  const Instr &I) {
  int64_t Len = 0;
  if (!requireInt(rg(Regs, I.A), Len, "newarray length"))
    return StepResult::Fault;
  if (Len < 0) {
    fault("negative array size");
    return StepResult::Fault;
  }
  rg(Regs, I.Dst) = Value::makeRef(TheHeap.allocateArray(Len, I.AllocSite));
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execArrayLen(Value *Regs,
                                                  const Instr &I) {
  ObjectId Arr;
  if (!requireRef(rg(Regs, I.A), Arr, "arraylen"))
    return StepResult::Fault;
  rg(Regs, I.Dst) = Value::makeInt(int64_t(TheHeap.object(Arr).Slots.size()));
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execGetField(SimThread &Thread,
                                                  Value *Regs, const Instr &I,
                                                  bool EmitAll) {
  ObjectId Obj;
  if (!requireRef(rg(Regs, I.A), Obj, "getfield"))
    return StepResult::Fault;
  rg(Regs, I.Dst) = TheHeap.object(Obj).Slots[P.field(I.Field).SlotIndex];
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forField(Obj, I.Field),
               AccessKind::Read, I.Site);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execPutField(SimThread &Thread,
                                                  Value *Regs, const Instr &I,
                                                  bool EmitAll) {
  ObjectId Obj;
  if (!requireRef(rg(Regs, I.A), Obj, "putfield"))
    return StepResult::Fault;
  TheHeap.object(Obj).Slots[P.field(I.Field).SlotIndex] = rg(Regs, I.B);
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forField(Obj, I.Field),
               AccessKind::Write, I.Site);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execGetStatic(SimThread &Thread,
                                                   Value *Regs, const Instr &I,
                                                   bool EmitAll) {
  ObjectId Statics = TheHeap.classStatics(I.Class);
  rg(Regs, I.Dst) = TheHeap.object(Statics).Slots[P.field(I.Field).SlotIndex];
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forStatic(Statics, I.Field),
               AccessKind::Read, I.Site);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execPutStatic(SimThread &Thread,
                                                   Value *Regs, const Instr &I,
                                                   bool EmitAll) {
  ObjectId Statics = TheHeap.classStatics(I.Class);
  TheHeap.object(Statics).Slots[P.field(I.Field).SlotIndex] = rg(Regs, I.A);
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forStatic(Statics, I.Field),
               AccessKind::Write, I.Site);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execALoad(SimThread &Thread, Value *Regs,
                                               const Instr &I, bool EmitAll) {
  ObjectId Arr;
  int64_t Idx = 0;
  if (!requireRef(rg(Regs, I.A), Arr, "aload") ||
      !requireInt(rg(Regs, I.B), Idx, "aload index"))
    return StepResult::Fault;
  HeapObject &ArrObj = TheHeap.object(Arr);
  if (Idx < 0 || size_t(Idx) >= ArrObj.Slots.size()) {
    fault("array index out of bounds");
    return StepResult::Fault;
  }
  rg(Regs, I.Dst) = ArrObj.Slots[size_t(Idx)];
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forArray(Arr), AccessKind::Read,
               I.Site);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execAStore(SimThread &Thread, Value *Regs,
                                                const Instr &I, bool EmitAll) {
  ObjectId Arr;
  int64_t Idx = 0;
  if (!requireRef(rg(Regs, I.A), Arr, "astore") ||
      !requireInt(rg(Regs, I.B), Idx, "astore index"))
    return StepResult::Fault;
  HeapObject &ArrObj = TheHeap.object(Arr);
  if (Idx < 0 || size_t(Idx) >= ArrObj.Slots.size()) {
    fault("array index out of bounds");
    return StepResult::Fault;
  }
  ArrObj.Slots[size_t(Idx)] = rg(Regs, I.C);
  if (EmitAll)
    emitAccess(Thread.Id, LocationKey::forArray(Arr), AccessKind::Write,
               I.Site);
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execCall(SimThread &Thread, Frame &F,
                                              Value *Regs, const Instr &I) {
  const Method &Callee = P.method(I.Callee);
  Frame NewFrame;
  NewFrame.Method = I.Callee;
  NewFrame.Regs.resize(Callee.NumRegs);
  for (size_t N = 0; N != I.Args.size(); ++N)
    NewFrame.Regs[N] = rg(Regs, I.Args[N]);
  NewFrame.RetDst = I.Dst;
  if (Callee.IsSynchronized) {
    if (NewFrame.Regs.empty() || !NewFrame.Regs[0].isRef() ||
        NewFrame.Regs[0].isNull()) {
      fault("synchronized call on null receiver");
      return StepResult::Fault;
    }
    NewFrame.NeedsMonEnter = true;
  }
  ++F.Ip; // the caller resumes after the call; push_back invalidates F
  Thread.Stack.push_back(std::move(NewFrame));
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execBranch(Frame &F, Value *Regs,
                                                const Instr &I) {
  bool Taken = rg(Regs, I.A).isTruthy();
  F.Block = Taken ? I.Target : I.AltTarget;
  F.Ip = 0;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execJump(Frame &F, const Instr &I) {
  F.Block = I.Target;
  F.Ip = 0;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execReturn(SimThread &Thread, Frame &F,
                                                Value *Regs, const Instr &I) {
  Value Ret = I.A.isValid() ? rg(Regs, I.A) : Value();
  ObjectId SyncSelf = F.SyncSelf;
  RegId RetDst = F.RetDst;
  Thread.Stack.pop_back(); // F and Regs are dangling from here on
  if (SyncSelf.isValid())
    exitMonitorOnce(Thread, SyncSelf);
  if (Faulted)
    return StepResult::Fault;
  if (Thread.Stack.empty()) {
    Thread.St = SimThread::State::Finished;
    if (Hooks)
      Hooks->onThreadExit(Thread.Id);
    if (Thread.ThreadObj.isValid())
      wakeJoiners(Thread.ThreadObj);
    return StepResult::Finished;
  }
  if (RetDst.isValid())
    rg(Thread.Stack.back().Regs.data(), RetDst) = Ret;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execMonitorEnter(SimThread &Thread,
                                                      Frame &F, Value *Regs,
                                                      const Instr &I) {
  ObjectId Obj;
  if (!requireRef(rg(Regs, I.A), Obj, "monitorenter"))
    return StepResult::Fault;
  bool Recursive = false;
  if (!tryAcquireMonitor(Thread, Obj, Recursive)) {
    Thread.St = SimThread::State::BlockedOnMonitor;
    Thread.WaitObj = Obj;
    return StepResult::Blocked;
  }
  if (Hooks)
    Hooks->onMonitorEnter(Thread.Id, Heap::lockOf(Obj), Recursive, I.Site);
  ++F.Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execMonitorExit(SimThread &Thread,
                                                     Frame &F, Value *Regs,
                                                     const Instr &I) {
  ObjectId Obj;
  if (!requireRef(rg(Regs, I.A), Obj, "monitorexit"))
    return StepResult::Fault;
  exitMonitorOnce(Thread, Obj);
  if (Faulted)
    return StepResult::Fault;
  ++F.Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execThreadStart(SimThread &Thread,
                                                     Frame &F, Value *Regs,
                                                     const Instr &I) {
  ObjectId Obj;
  if (!requireRef(rg(Regs, I.A), Obj, "thread start"))
    return StepResult::Fault;
  HeapObject &ThreadObj = TheHeap.object(Obj);
  if (!ThreadObj.Class.isValid() ||
      !P.classDecl(ThreadObj.Class).RunMethod.isValid()) {
    fault("start on an object whose class has no run() method");
    return StepResult::Fault;
  }
  if (ThreadByObject.count(Obj)) {
    fault("thread object started twice");
    return StepResult::Fault;
  }
  MethodId Run = P.classDecl(ThreadObj.Class).RunMethod;
  const Method &RunM = P.method(Run);
  auto Child = std::make_unique<SimThread>();
  Child->Id = ThreadId(uint32_t(Threads.size()));
  Child->ThreadObj = Obj;
  Frame RunFrame;
  RunFrame.Method = Run;
  RunFrame.Regs.resize(RunM.NumRegs);
  RunFrame.Regs[0] = Value::makeRef(Obj);
  RunFrame.NeedsMonEnter = RunM.IsSynchronized;
  Child->Stack.push_back(std::move(RunFrame));
  ThreadByObject.emplace(Obj, Child->Id);
  ++Result.ThreadsCreated;
  if (Hooks)
    Hooks->onThreadCreate(Child->Id, Thread.Id, Obj, I.Site);
  Threads.push_back(std::move(Child));
  ++F.Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execThreadJoin(SimThread &Thread,
                                                    Frame &F, Value *Regs,
                                                    const Instr &I) {
  ObjectId Obj;
  if (!requireRef(rg(Regs, I.A), Obj, "thread join"))
    return StepResult::Fault;
  auto It = ThreadByObject.find(Obj);
  if (It == ThreadByObject.end()) {
    // Joining a never-started thread returns immediately (Java semantics);
    // no ordering is established.
    ++F.Ip;
    return StepResult::Continue;
  }
  SimThread &Target = *Threads[It->second.index()];
  if (Target.St != SimThread::State::Finished) {
    Thread.St = SimThread::State::BlockedOnJoin;
    Thread.WaitObj = Obj;
    return StepResult::Blocked;
  }
  if (Hooks)
    Hooks->onThreadJoin(Thread.Id, Target.Id);
  ++F.Ip;
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execPrint(Value *Regs, const Instr &I) {
  const Value &V = rg(Regs, I.A);
  Result.Output.push_back(V.isRef() ? int64_t(V.asRef().index()) : V.asInt());
  return StepResult::Continue;
}

Interpreter::StepResult Interpreter::execYield(Frame &F, const Instr &I) {
  (void)I;
  ++F.Ip;
  return StepResult::Switched;
}

Interpreter::StepResult Interpreter::execTrace(SimThread &Thread, Value *Regs,
                                               const Instr &I) {
  LocationKey Loc;
  switch (I.TraceWhat) {
  case TraceWhatKind::Field: {
    ObjectId Obj;
    if (!requireRef(rg(Regs, I.A), Obj, "trace"))
      return StepResult::Fault;
    Loc = LocationKey::forField(Obj, I.Field);
    break;
  }
  case TraceWhatKind::Array: {
    ObjectId Obj;
    if (!requireRef(rg(Regs, I.A), Obj, "trace"))
      return StepResult::Fault;
    Loc = LocationKey::forArray(Obj);
    break;
  }
  case TraceWhatKind::Static:
    Loc = LocationKey::forStatic(TheHeap.classStatics(I.Class), I.Field);
    break;
  }
  emitAccess(Thread.Id, Loc, I.Access, I.Site);
  return StepResult::Continue;
}

//===----------------------------------------------------------------------===//
// Switch (reference) dispatch.
//===----------------------------------------------------------------------===//

Interpreter::StepResult Interpreter::step(SimThread &Thread) {
  Frame &F = Thread.Stack.back();
  if (F.NeedsMonEnter) {
    StepResult R = enterSynchronizedFrame(Thread, F);
    if (R != StepResult::Continue)
      return R;
  }

  const Method &M = P.method(F.Method);
  const BasicBlock &Block = M.block(F.Block);
  assert(F.Ip < Block.Instrs.size() && "pc ran off the end of a block");
  const Instr &I = Block.Instrs[F.Ip];
  Value *Regs = F.Regs.data();

  if (HERD_UNLIKELY(Prof != nullptr)) {
    // Opcode captured up front: executeInstr can grow Thread.Stack, but
    // never mutates the method body I points into.
    Opcode Op = I.Op;
    if (Prof->onDispatch(Op)) {
      Prof->beginSample();
      uint64_t Begin = Prof->now();
      StepResult R = executeInstr(Thread, F, Regs, I);
      uint64_t End = Prof->now();
      Prof->endSample(Op, End - Begin);
      return R;
    }
    return executeInstr(Thread, F, Regs, I);
  }
  return executeInstr(Thread, F, Regs, I);
}

Interpreter::StepResult Interpreter::executeInstr(SimThread &Thread, Frame &F,
                                                  Value *Regs,
                                                  const Instr &I) {
  // Straight-line executors no longer advance the pc themselves (see the
  // section comment); this reference path advances it here on Continue.
  StepResult R;
  switch (I.Op) {
  case Opcode::Const:
    R = execConst(Regs, I);
    break;
  case Opcode::Move:
    R = execMove(Regs, I);
    break;
  case Opcode::BinOp:
    R = execBinOp(Regs, I);
    break;
  case Opcode::New:
    R = execNew(Regs, I);
    break;
  case Opcode::NewArray:
    R = execNewArray(Regs, I);
    break;
  case Opcode::ArrayLen:
    R = execArrayLen(Regs, I);
    break;
  case Opcode::GetField:
    R = execGetField(Thread, Regs, I, Opts.TraceEveryAccess);
    break;
  case Opcode::PutField:
    R = execPutField(Thread, Regs, I, Opts.TraceEveryAccess);
    break;
  case Opcode::GetStatic:
    R = execGetStatic(Thread, Regs, I, Opts.TraceEveryAccess);
    break;
  case Opcode::PutStatic:
    R = execPutStatic(Thread, Regs, I, Opts.TraceEveryAccess);
    break;
  case Opcode::ALoad:
    R = execALoad(Thread, Regs, I, Opts.TraceEveryAccess);
    break;
  case Opcode::AStore:
    R = execAStore(Thread, Regs, I, Opts.TraceEveryAccess);
    break;
  case Opcode::Print:
    R = execPrint(Regs, I);
    break;
  case Opcode::Trace:
    R = execTrace(Thread, Regs, I);
    break;
  case Opcode::Call:
    return execCall(Thread, F, Regs, I);
  case Opcode::Branch:
    return execBranch(F, Regs, I);
  case Opcode::Jump:
    return execJump(F, I);
  case Opcode::Return:
    return execReturn(Thread, F, Regs, I);
  case Opcode::MonitorEnter:
    return execMonitorEnter(Thread, F, Regs, I);
  case Opcode::MonitorExit:
    return execMonitorExit(Thread, F, Regs, I);
  case Opcode::ThreadStart:
    return execThreadStart(Thread, F, Regs, I);
  case Opcode::ThreadJoin:
    return execThreadJoin(Thread, F, Regs, I);
  case Opcode::Yield:
    return execYield(F, I);
  default:
    HERD_UNREACHABLE("unknown opcode in interpreter");
  }
  if (HERD_LIKELY(R == StepResult::Continue))
    ++F.Ip;
  return R;
}

//===----------------------------------------------------------------------===//
// Threaded dispatch.
//
// One function body compiles two ways (support/Compiler.h):
//
//   HERD_COMPUTED_GOTO=1   handlers are labels; dispatch is
//                          `goto *Table[op]` — each handler's tail jump is
//                          a separate indirect branch the predictor can
//                          correlate with the opcode stream.
//   HERD_COMPUTED_GOTO=0   handlers are cases of a dense switch inside a
//                          loop — the portable jump-table fallback.
//
// Accounting contract (must mirror run()'s switch-mode inner loop):
//   * quantum check, then one InstructionsExecuted increment + budget
//     check per instruction, BEFORE it executes;
//   * every step that does not Fault increments Retired — including a
//     step that merely blocked;
//   * Blocked/Switched/Finished/Fault end the slice.
// Superinstructions run their constituents back-to-back with this exact
// per-constituent accounting; the only thing fusion removes is the
// dispatch between them.
//
// The threaded loop produces those exact counts WITHOUT maintaining them
// per step (derived accounting).  The instruction budget folds into the
// slice entry: the effective quantum is min(Quantum, budget left), so a
// per-step budget comparison is redundant — when the effective quantum
// runs dry and the real quantum did not, the next step's charge is
// exactly the one that trips the budget, and the slice faults there with
// the same pc, count (MaxInstructions + 1) and retired steps as charging
// each instruction individually would have produced.  Within the slice
// the only hot-path bookkeeping is one counter decrement; at every exit
// HERD_COMMIT reconstructs InstructionsExecuted and Retired from the
// quantum consumed:
//   * normal end:        consumed charged, consumed retired;
//   * blocked/switched/
//     finished:          the slice-ending step never decremented, so
//                        consumed + 1 charged and retired;
//   * fault:             the faulting instruction stays charged but
//                        retires nothing — consumed + 1 charged,
//                        consumed retired (batches never pre-consume,
//                        so this holds inside one too).
//
// Batched quantum retirement (ThreadedCode::BatchLens): on entering a
// block whose batchable prefix of N instructions fits the effective
// quantum, the loop records where the prefix ends (BatchFloor =
// Remaining - N) and the quantum test stops the slice only at that
// floor — the whole prefix is retired against one block-entry decision,
// and because the test is a compare against the floor it degenerates to
// the ordinary Remaining == 0 check when no batch is active.  This is
// unobservable by construction: nothing in a batch can block, yield,
// finish, or transfer control (instr/Superinstr.cpp isBatchable), so
// the slice cannot end inside it.  When the batch does not fit, the
// block falls back to per-step checks, so quantum-edge behavior
// (including partial superinstruction retirement) is bit-identical to
// switch mode.
//===----------------------------------------------------------------------===//

#if HERD_COMPUTED_GOTO
#define HERD_OP(Name) Lbl_##Name:
#define HERD_FUSED_OP(Name) Lbl_##Name:
#else
#define HERD_OP(Name) case size_t(Opcode::Name):
#define HERD_FUSED_OP(Name) case size_t(Op##Name):
#endif

/// The once-per-exit accounting commit (derived accounting, see the
/// header comment above): reconstructs the per-step counts from the
/// effective quantum consumed.  The adjustments are the slice-ending
/// step's contribution, signed so a fault can refund a pre-charged batch
/// tail; unsigned wraparound makes the negative case exact.
#define HERD_COMMIT(InstrAdj, RetAdj)                                          \
  do {                                                                         \
    const uint64_t Consumed_ = EffRem0 - Remaining;                            \
    Result.InstructionsExecuted += Consumed_ + uint64_t(int64_t(InstrAdj));    \
    Retired += uint32_t(Consumed_ + uint64_t(int64_t(RetAdj)));                \
    Result.BlockRetireHits += BatchHits;                                       \
    Result.BlockRetiredSteps += BatchSteps;                                    \
  } while (false)

/// Common step epilogue: a Fault ends the slice retiring nothing (the
/// commit keeps the faulting instruction charged); any other
/// non-Continue outcome retires the step and ends the slice.  In-batch
/// and per-step execution share the single quantum decrement — a batch
/// changes only where the NextStep test stops (BatchFloor), so this is
/// one register op per step in every mode.  The slice-end commits live
/// behind shared labels so every handler's cold tail is a
/// two-instruction jump, not an inline commit sequence — keeping the
/// hot handlers dense in the instruction cache.
#define HERD_FINISH_STEP()                                                     \
  do {                                                                         \
    if (HERD_UNLIKELY(R != StepResult::Continue))                              \
      goto SliceEnd;                                                           \
    --Remaining;                                                               \
  } while (false)

/// Executes one instruction with switch-mode-identical profiling: count
/// the dispatch under the CONSTITUENT opcode (never a fused one) and time
/// the sampled executions.  Compiles to a bare call when !Profiled.
#define HERD_EXEC(Name, Call)                                                  \
  do {                                                                         \
    if constexpr (Profiled) {                                                  \
      if (Prof->onDispatch(Opcode::Name)) {                                    \
        Prof->beginSample();                                                   \
        uint64_t ProfBegin_ = Prof->now();                                     \
        R = (Call);                                                            \
        Prof->endSample(Opcode::Name, Prof->now() - ProfBegin_);               \
      } else {                                                                 \
        R = (Call);                                                            \
      }                                                                        \
    } else {                                                                   \
      R = (Call);                                                              \
    }                                                                          \
  } while (false)

template <bool EmitAll, bool Profiled>
void Interpreter::runSliceThreaded(SimThread &Thread, uint64_t Quantum,
                                   uint32_t &Retired) {
  // The profiled variant runs the ORIGINAL blocks: per-opcode dispatch
  // counts must be exact per constituent, so fusion (and with it batched
  // retirement) is compiled out of the histogram's world entirely
  // (docs/INTERPRETER.md).
  const ThreadedCode *Shadow = Profiled ? nullptr : Opts.Fused;

  // The cached execution state: top frame, its register file, the
  // current block's instruction array, the method's batch plan, and the
  // program counter.  Everything the common path touches lives in these
  // locals; executors receive F/Regs as pinned parameters instead of
  // re-deriving them from Thread.Stack.back() per operand (the
  // "stack-top cache").
  //
  // The pc cache (Ip) shadows F->Ip for the whole slice: straight-line
  // executors never touch the frame's pc (Interpreter.h), so the loop
  // advances Ip in a register and publishes it to F->Ip only where the
  // frame's copy is observable — before an executor that reads it
  // (Call, monitors, thread ops, Yield), at slice exits that leave the
  // thread mid-block, and on a budget fault.  Branch/Jump overwrite
  // F->Ip and Return pops the frame, so those need no flush; Refresh()
  // re-syncs the cache afterwards.  HERD_FINISH_STEP never flushes: on
  // Finished the frame has been popped and F dangles, and a faulted
  // run's frame pc is unobservable (the run aborts).
  Frame *F = nullptr;
  Value *Regs = nullptr;
  const Instr *CodeBase = nullptr;
  const uint32_t *BatchLens = nullptr; // per-block batchable prefix lengths
  const Instr *I = nullptr;
  uint32_t Ip = 0; // cached F->Ip; see flush discipline above
  // The Remaining value at which the current batch ends (0 when no batch
  // is active).  The quantum check compares Remaining against this, so
  // outside a batch it degenerates to the plain Remaining == 0 test —
  // batch support costs the non-batch hot path nothing.
  uint64_t BatchFloor = 0;
  uint64_t BatchHits = 0, BatchSteps = 0; // stats, committed at slice end
  StepResult R = StepResult::Continue;

  // Derived accounting (see the header comment): the instruction budget
  // folds into the slice's effective quantum, so the loop keeps ONE hot
  // down-counter and every exit path reconstructs the per-step
  // InstructionsExecuted/Retired deltas with HERD_COMMIT.  When the
  // effective quantum was clipped by the budget (BudgetLimited) and runs
  // dry, the next charge is the one that would have tripped the per-step
  // budget check, and the Exhausted exit faults with identical counts.
  const uint64_t BudgetLeft =
      Opts.MaxInstructions - Result.InstructionsExecuted;
  const bool BudgetLimited = Quantum > BudgetLeft;
  uint64_t Remaining = BudgetLimited ? BudgetLeft : Quantum;
  const uint64_t EffRem0 = Remaining;

  // Re-resolve the cache after any control transfer (Thread.Stack may
  // reallocate on Call; Branch/Jump change blocks).
  auto Refresh = [&] {
    F = &Thread.Stack.back();
    Regs = F->Regs.data();
    Ip = F->Ip;
    if (Shadow) {
      CodeBase = Shadow->MethodBlocks[F->Method.index()][F->Block.index()]
                     .Instrs.data();
      BatchLens = Shadow->BatchLens[F->Method.index()].data();
    } else {
      CodeBase = P.method(F->Method).block(F->Block).Instrs.data();
    }
  };
  Refresh();

#if HERD_COMPUTED_GOTO
  static const void *const DispatchTable[NumDispatchOpcodes] = {
      &&Lbl_Const,        &&Lbl_Move,         &&Lbl_BinOp,
      &&Lbl_New,          &&Lbl_NewArray,     &&Lbl_ArrayLen,
      &&Lbl_GetField,     &&Lbl_PutField,     &&Lbl_GetStatic,
      &&Lbl_PutStatic,    &&Lbl_ALoad,        &&Lbl_AStore,
      &&Lbl_Call,         &&Lbl_Branch,       &&Lbl_Jump,
      &&Lbl_Return,       &&Lbl_MonitorEnter, &&Lbl_MonitorExit,
      &&Lbl_ThreadStart,  &&Lbl_ThreadJoin,   &&Lbl_Print,
      &&Lbl_Yield,        &&Lbl_Trace,        &&Lbl_FusedConstBinOp,
      &&Lbl_FusedConstPutField,  &&Lbl_FusedGetBinPut,
      &&Lbl_FusedBinOpBranch,    &&Lbl_FusedGetFieldBinOp,
      &&Lbl_FusedBinOpPutField,  &&Lbl_FusedBinOpMove};
#endif

  // A slice begins like a step that may first have to enter a
  // synchronized frame (thread entry into a synchronized run(), or a
  // retry after blocking on it).
  goto EntryStep;

EntryStep:
  // First step of a frame: a pending synchronized-method entry acquires
  // the monitor within the same step as the first instruction (or blocks,
  // which retires the step without advancing the pc) — exactly what
  // step() does when F.NeedsMonEnter is set.  Monitor entry is never part
  // of a batch; the ordinary case falls through to TryBatch.
  if (HERD_UNLIKELY(F->NeedsMonEnter)) {
    if (HERD_UNLIKELY(Remaining == 0))
      goto Exhausted;
    R = enterSynchronizedFrame(Thread, *F);
    if (R != StepResult::Continue)
      goto SliceEnd; // a blocked entry attempt still retires this step
    goto DispatchCurrent; // first instruction shares the charged step
  }
  // Fallthrough.

TryBatch:
  // Block entry (and slice start): when the block's batchable prefix
  // fits the effective quantum (which already encodes the instruction
  // budget), mark where it ends — the quantum test will not stop the
  // slice before Remaining reaches that floor, so the whole prefix is
  // retired against one planning decision.  The prefix property is
  // suffix-closed, so a thread resuming mid-prefix batches the rest.
  if (BatchLens) {
    uint64_t BatchLen = BatchLens[F->Block.index()];
    if (Ip < BatchLen) {
      uint64_t N = BatchLen - Ip;
      if (Remaining >= N) {
        BatchFloor = Remaining - N;
        ++BatchHits;
        BatchSteps += N;
        goto DispatchCurrent;
      }
    }
  }
  // Fallthrough.

NextStep:
  // The quantum test: outside a batch BatchFloor is 0 and this is the
  // plain exhaustion check; inside one it fires first at the batch
  // boundary (where the floor resets and per-step checking resumes —
  // Remaining == BatchFloor > 0 implies steps are left).  A batch whose
  // floor is 0 ends exactly when the quantum does.
  if (HERD_UNLIKELY(Remaining == BatchFloor)) {
    if (BatchFloor == 0)
      goto Exhausted; // quantum or budget dry (the latter faults there)
    BatchFloor = 0;
  }
  // Fallthrough.

DispatchCurrent:
  I = CodeBase + Ip;
#if HERD_COMPUTED_GOTO
  goto *DispatchTable[size_t(I->Op)];
#else
  switch (size_t(I->Op)) {
#endif

  HERD_OP(Const)
PlainConst : {
    HERD_EXEC(Const, execConst(Regs, *I));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(Move) {
    HERD_EXEC(Move, execMove(Regs, *I));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(BinOp)
PlainBinOp : {
    HERD_EXEC(BinOp, execBinOp(Regs, *I));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(New) {
    HERD_EXEC(New, execNew(Regs, *I));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(NewArray) {
    HERD_EXEC(NewArray, execNewArray(Regs, *I));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(ArrayLen) {
    HERD_EXEC(ArrayLen, execArrayLen(Regs, *I));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(GetField)
PlainGetField : {
    HERD_EXEC(GetField, execGetField(Thread, Regs, *I, EmitAll));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(PutField) {
    HERD_EXEC(PutField, execPutField(Thread, Regs, *I, EmitAll));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(GetStatic) {
    HERD_EXEC(GetStatic, execGetStatic(Thread, Regs, *I, EmitAll));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(PutStatic) {
    HERD_EXEC(PutStatic, execPutStatic(Thread, Regs, *I, EmitAll));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(ALoad) {
    HERD_EXEC(ALoad, execALoad(Thread, Regs, *I, EmitAll));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(AStore) {
    HERD_EXEC(AStore, execAStore(Thread, Regs, *I, EmitAll));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(Call) {
    F->Ip = Ip; // execCall advances the caller's pc past the call
    HERD_EXEC(Call, execCall(Thread, *F, Regs, *I));
    HERD_FINISH_STEP();
    Refresh();
    goto EntryStep; // the callee may be synchronized
  }

  HERD_OP(Branch) {
    HERD_EXEC(Branch, execBranch(*F, Regs, *I));
    HERD_FINISH_STEP();
    Refresh();
    goto TryBatch; // block entry: a new batch may start
  }

  HERD_OP(Jump) {
    HERD_EXEC(Jump, execJump(*F, *I));
    HERD_FINISH_STEP();
    Refresh();
    goto TryBatch; // block entry: a new batch may start
  }

  HERD_OP(Return) {
    HERD_EXEC(Return, execReturn(Thread, *F, Regs, *I));
    HERD_FINISH_STEP();
    Refresh(); // back in the caller's frame
    goto TryBatch;
  }

  HERD_OP(MonitorEnter) {
    F->Ip = Ip; // executor reads and advances the frame's pc
    HERD_EXEC(MonitorEnter, execMonitorEnter(Thread, *F, Regs, *I));
    HERD_FINISH_STEP();
    Ip = F->Ip;
    goto NextStep;
  }

  HERD_OP(MonitorExit) {
    F->Ip = Ip; // executor reads and advances the frame's pc
    HERD_EXEC(MonitorExit, execMonitorExit(Thread, *F, Regs, *I));
    HERD_FINISH_STEP();
    Ip = F->Ip;
    goto NextStep;
  }

  HERD_OP(ThreadStart) {
    F->Ip = Ip; // executor reads and advances the frame's pc
    HERD_EXEC(ThreadStart, execThreadStart(Thread, *F, Regs, *I));
    HERD_FINISH_STEP();
    Ip = F->Ip;
    goto NextStep;
  }

  HERD_OP(ThreadJoin) {
    F->Ip = Ip; // executor reads and advances the frame's pc
    HERD_EXEC(ThreadJoin, execThreadJoin(Thread, *F, Regs, *I));
    HERD_FINISH_STEP();
    Ip = F->Ip;
    goto NextStep;
  }

  HERD_OP(Print) {
    HERD_EXEC(Print, execPrint(Regs, *I));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  HERD_OP(Yield) {
    F->Ip = Ip; // executor advances the frame's pc before yielding
    HERD_EXEC(Yield, execYield(*F, *I));
    HERD_FINISH_STEP();
    Ip = F->Ip;
    goto NextStep;
  }

  HERD_OP(Trace) {
    HERD_EXEC(Trace, execTrace(Thread, Regs, *I));
    HERD_FINISH_STEP();
    ++Ip;
    goto NextStep;
  }

  // --- Superinstructions (shadow code only; never under Profiled) ---
  // When the remaining quantum cannot cover the whole sequence (only
  // possible outside a batch: a batch always spans whole sequences), only
  // the head constituent runs via its plain handler: the shadow block
  // keeps constituents at ip+1.., so the tail executes as ordinary code
  // in the thread's next slice.

  HERD_FUSED_OP(FusedConstBinOp) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    if (HERD_UNLIKELY(Remaining - BatchFloor < 2))
      goto PlainConst;
    execConst(Regs, *I); // cannot fault
    --Remaining;
    ++Ip;
    I = CodeBase + Ip;
    R = execBinOp(Regs, *I);
    HERD_FINISH_STEP();
    ++Result.Fused.ConstBinOp;
    ++Ip;
    goto NextStep;
  }

  HERD_FUSED_OP(FusedConstPutField) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    if (HERD_UNLIKELY(Remaining - BatchFloor < 2))
      goto PlainConst;
    execConst(Regs, *I); // cannot fault
    --Remaining;
    ++Ip;
    I = CodeBase + Ip;
    R = execPutField(Thread, Regs, *I, EmitAll);
    HERD_FINISH_STEP();
    ++Result.Fused.ConstPutField;
    ++Ip;
    goto NextStep;
  }

  HERD_FUSED_OP(FusedGetBinPut) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    if (HERD_UNLIKELY(Remaining - BatchFloor < 3))
      goto PlainGetField;
    R = execGetField(Thread, Regs, *I, EmitAll);
    HERD_FINISH_STEP();
    ++Ip;
    I = CodeBase + Ip;
    R = execBinOp(Regs, *I);
    HERD_FINISH_STEP();
    ++Ip;
    I = CodeBase + Ip;
    R = execPutField(Thread, Regs, *I, EmitAll);
    HERD_FINISH_STEP();
    ++Result.Fused.GetBinPut;
    ++Ip;
    goto NextStep;
  }

  HERD_FUSED_OP(FusedBinOpBranch) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    // The tail transfers control, so this head is never part of a batch
    // (instr/Superinstr.cpp fusedIsBatchable) — no BatchFloor is active.
    assert(BatchFloor == 0 && "control-flow superinstruction inside a batch");
    if (HERD_UNLIKELY(Remaining < 2))
      goto PlainBinOp;
    R = execBinOp(Regs, *I);
    HERD_FINISH_STEP();
    ++Ip;
    I = CodeBase + Ip;
    R = execBranch(*F, Regs, *I); // overwrites F->Ip; Refresh re-syncs
    HERD_FINISH_STEP();
    ++Result.Fused.BinOpBranch;
    Refresh();
    goto TryBatch; // block entry: a new batch may start
  }

  HERD_FUSED_OP(FusedGetFieldBinOp) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    if (HERD_UNLIKELY(Remaining - BatchFloor < 2))
      goto PlainGetField;
    R = execGetField(Thread, Regs, *I, EmitAll);
    HERD_FINISH_STEP();
    ++Ip;
    I = CodeBase + Ip;
    R = execBinOp(Regs, *I);
    HERD_FINISH_STEP();
    ++Result.Fused.GetFieldBinOp;
    ++Ip;
    goto NextStep;
  }

  HERD_FUSED_OP(FusedBinOpPutField) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    if (HERD_UNLIKELY(Remaining - BatchFloor < 2))
      goto PlainBinOp;
    R = execBinOp(Regs, *I);
    HERD_FINISH_STEP();
    ++Ip;
    I = CodeBase + Ip;
    R = execPutField(Thread, Regs, *I, EmitAll);
    HERD_FINISH_STEP();
    ++Result.Fused.BinOpPutField;
    ++Ip;
    goto NextStep;
  }

  HERD_FUSED_OP(FusedBinOpMove) {
    if constexpr (Profiled)
      HERD_UNREACHABLE("fused opcode under profiling (shadow code leaked)");
    if (HERD_UNLIKELY(Remaining - BatchFloor < 2))
      goto PlainBinOp;
    R = execBinOp(Regs, *I);
    HERD_FINISH_STEP();
    ++Ip;
    I = CodeBase + Ip;
    execMove(Regs, *I); // cannot fault
    --Remaining;
    ++Result.Fused.BinOpMove;
    ++Ip;
    goto NextStep;
  }

#if !HERD_COMPUTED_GOTO
  default:
    HERD_UNREACHABLE("invalid opcode in threaded dispatch");
  }
#endif

SliceEnd:
  // A step ended the slice (R != Continue).  Only executed steps ever
  // decremented Remaining — a batch moves the quantum test's stopping
  // point, not the decrements — so the consumed count is exact even for
  // a fault inside a batch: the faulting instruction stays charged
  // (+1) and retires nothing; every other outcome retires the
  // slice-ending step (which never reached its decrement).
  if (R == StepResult::Fault) {
    HERD_COMMIT(1, 0);
  } else {
    assert(BatchFloor == 0 && "slice-ending step inside a batch");
    HERD_COMMIT(1, 1);
  }
  return;

Exhausted:
  // The effective quantum is dry.  If the budget clipped it, the step we
  // are about to NOT take is exactly the one per-step accounting would
  // have charged and faulted on: publish its pc, charge it, fault.
  // Otherwise this is an ordinary end of slice.
  F->Ip = Ip; // slice ends mid-block: publish the resume point
  if (HERD_UNLIKELY(BudgetLimited)) {
    HERD_COMMIT(1, 0);
    fault("instruction budget exhausted (runaway workload?)");
    return;
  }
  HERD_COMMIT(0, 0);
}

#undef HERD_OP
#undef HERD_FUSED_OP
#undef HERD_COMMIT
#undef HERD_FINISH_STEP
#undef HERD_EXEC

//===----------------------------------------------------------------------===//
// The scheduler loop.
//===----------------------------------------------------------------------===//

InterpResult Interpreter::run() {
  Result = InterpResult();
  Result.Ok = true;
  Faulted = false;

  assert(P.MainMethod.isValid() && "program has no main");
  assert((!Opts.Fused ||
          (Opts.Fused->MethodBlocks.size() == P.numMethods() &&
           Opts.Fused->BatchLens.size() == P.numMethods())) &&
         "shadow code was built from a different program");
  const Method &Main = P.method(P.MainMethod);

  auto MainThread = std::make_unique<SimThread>();
  MainThread->Id = ThreadId(0);
  Frame MainFrame;
  MainFrame.Method = P.MainMethod;
  MainFrame.Regs.resize(Main.NumRegs);
  MainThread->Stack.push_back(std::move(MainFrame));
  Threads.clear();
  ThreadByObject.clear();
  Threads.push_back(std::move(MainThread));
  Result.ThreadsCreated = 1;
  if (Hooks)
    Hooks->onThreadCreate(ThreadId(0), ThreadId::invalid(),
                          ObjectId::invalid());

  // Resolve the threaded slice runner once: the no-hook lane (EmitAll =
  // false) and the profiler are per-run constants, so the hot loop never
  // re-tests them.
  using SliceFn = void (Interpreter::*)(SimThread &, uint64_t, uint32_t &);
  const bool UseThreaded = Opts.Dispatch == DispatchMode::Threaded;
  SliceFn ThreadedSlice =
      Opts.TraceEveryAccess
          ? (Prof ? &Interpreter::runSliceThreaded<true, true>
                  : &Interpreter::runSliceThreaded<true, false>)
          : (Prof ? &Interpreter::runSliceThreaded<false, true>
                  : &Interpreter::runSliceThreaded<false, false>);

  size_t Cursor = 0;
  size_t ReplayIndex = 0;
  while (true) {
    SimThread *Current = nullptr;
    uint64_t Quantum = 0;

    if (Opts.Replay) {
      // Replay mode: follow the recorded slices exactly (Section 2.6's
      // DejaVu-style deterministic re-execution).
      if (ReplayIndex >= Opts.Replay->Slices.size())
        break;
      const ScheduleTrace::Slice &Slice = Opts.Replay->Slices[ReplayIndex++];
      if (Slice.ThreadIndex >= Threads.size()) {
        fault("schedule replay diverged: unknown thread in trace");
        break;
      }
      Current = Threads[Slice.ThreadIndex].get();
      if (Current->St != SimThread::State::Runnable) {
        fault("schedule replay diverged: recorded thread not runnable");
        break;
      }
      Quantum = Slice.Steps;
    } else {
      // Round-robin: find the next runnable thread at or after the cursor.
      bool AnyUnfinished = false;
      for (size_t Probe = 0; Probe != Threads.size(); ++Probe) {
        SimThread &T = *Threads[(Cursor + Probe) % Threads.size()];
        if (T.St != SimThread::State::Finished)
          AnyUnfinished = true;
        if (T.St == SimThread::State::Runnable) {
          Current = &T;
          Cursor = (Cursor + Probe) % Threads.size();
          break;
        }
      }
      if (!Current) {
        if (AnyUnfinished)
          fault("deadlock: all live threads are blocked");
        break;
      }
      Quantum = 1 + ScheduleRng.nextBelow(Opts.MaxQuantum);
    }

    // Hoisted hook-path probe (docs/HOOKPATH.md): cache the running
    // thread's L0 filter for the quantum.  The handle's address is stable
    // (the runtimes heap-allocate per-thread state) and every
    // invalidation channel — epoch bumps on the thread's own sync ops,
    // cross-thread shared-transition evictions, cache-conflict
    // displacement — mutates the pointed-to filter in place, so a
    // quantum-long cache of the pointer can never serve a stale hit.
    if (SerialSink)
      CurFilter = SerialSink->filterHandle(Current->Id);
    else if (ShardedSink)
      CurFilter = ShardedSink->filterHandle(Current->Id);

    // Pair counts never chain across a context switch, in either mode.
    if (HERD_UNLIKELY(Prof != nullptr))
      Prof->onSliceStart();

    uint32_t Retired = 0;
    if (UseThreaded) {
      (this->*ThreadedSlice)(*Current, Quantum, Retired);
    } else {
      for (uint64_t Step = 0; Step != Quantum; ++Step) {
        if (++Result.InstructionsExecuted > Opts.MaxInstructions) {
          fault("instruction budget exhausted (runaway workload?)");
          break;
        }
        StepResult R = step(*Current);
        if (R == StepResult::Fault)
          break;
        ++Retired;
        if (R != StepResult::Continue)
          break; // Blocked / Switched / Finished: end the quantum
      }
    }
    if (Faulted)
      break;
    if (Opts.Record && Retired > 0)
      Opts.Record->Slices.push_back({Current->Id.index(), Retired});
    // Quantum boundary: a pacing signal for sinks that stage work (the
    // sharded runtime flushes its per-thread event batch here,
    // docs/HOOKPATH.md).  Purely observational — scheduling has already
    // been decided, so batching can never change the schedule.
    if (Hooks)
      Hooks->onQuantumEnd(Current->Id);
    Cursor = (Cursor + 1) % Threads.size();
    ++Result.ContextSwitches;
  }

  if (Hooks)
    Hooks->onRunEnd();

  if (Faulted) {
    Result.Ok = false;
    return Result;
  }
  Result.Ok = true;
  return Result;
}
