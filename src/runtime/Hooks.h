//===- runtime/Hooks.h - Runtime event observer interface -------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observer interface between the interpreter and a race detector.  The
/// interpreter reports synchronization operations (monitor enter/exit,
/// thread start/join/exit) and access events produced by executed Trace
/// instructions; a detector implements this interface (detect/RaceRuntime
/// for the paper's detector, baselines/* for the comparison algorithms).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_RUNTIME_HOOKS_H
#define HERD_RUNTIME_HOOKS_H

#include "ir/Instr.h"
#include "support/Ids.h"

#include <initializer_list>
#include <utility>
#include <vector>

namespace herd {

/// Observer of runtime events.  All callbacks run on the (single) host
/// thread — the simulated program's concurrency is cooperative — so
/// implementations need no synchronization of their own.
class RuntimeHooks {
public:
  virtual ~RuntimeHooks();

  /// A new thread \p Child exists but has not yet been scheduled; \p Parent
  /// executed the ThreadStart.  Invalid Parent denotes the initial (main)
  /// thread, which has no parent.  \p Site is the ThreadStart statement
  /// (invalid when unknown — the main thread, or traces recorded before
  /// sites were captured on sync records); detection never depends on it,
  /// it only feeds diagnostics (docs/REPORTS.md).
  virtual void onThreadCreate(ThreadId Child, ThreadId Parent,
                              ObjectId ThreadObj,
                              SiteId Site = SiteId::invalid()) {
    (void)Child;
    (void)Parent;
    (void)ThreadObj;
    (void)Site;
  }

  /// Thread \p Dying ran to completion.
  virtual void onThreadExit(ThreadId Dying) { (void)Dying; }

  /// \p Joiner completed a join on \p Joined (which has exited).
  virtual void onThreadJoin(ThreadId Joiner, ThreadId Joined) {
    (void)Joiner;
    (void)Joined;
  }

  /// \p Thread acquired \p Lock.  \p Recursive is true when the monitor was
  /// already held by the same thread (Java reentrancy); the detector's
  /// lockset and cache ignore nested acquisitions (Section 4.2).  \p Site
  /// is the acquiring statement (invalid when unknown); diagnostics-only,
  /// like onThreadCreate's.
  virtual void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                              SiteId Site = SiteId::invalid()) {
    (void)Thread;
    (void)Lock;
    (void)Recursive;
    (void)Site;
  }

  /// \p Thread executed monitorexit on \p Lock.  \p StillHeld is true when
  /// the exit was nested (the lock remains held).
  virtual void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) {
    (void)Thread;
    (void)Lock;
    (void)StillHeld;
  }

  /// \p Thread performed a (traced) access of kind \p Access to logical
  /// location \p Location; \p Site is the source statement for reporting.
  virtual void onAccess(ThreadId Thread, LocationKey Location,
                        AccessKind Access, SiteId Site) {
    (void)Thread;
    (void)Location;
    (void)Access;
    (void)Site;
  }

  /// \p Thread finished a scheduler quantum (one interpreter slice).  A
  /// pure pacing signal — no synchronization semantics — emitted so sinks
  /// that stage work (the sharded runtime's per-thread event batches,
  /// docs/HOOKPATH.md) can flush at schedule boundaries.
  virtual void onQuantumEnd(ThreadId Thread) { (void)Thread; }

  /// The run is over (normally or by fault); no further events will
  /// arrive.  Detectors with asynchronous machinery (detect/ShardedRuntime)
  /// use this to drain their queues before results are read.
  virtual void onRunEnd() {}
};

/// Forwards every event to a list of observers, so several detectors can
/// watch one execution (used by the comparison experiments and the
/// property tests, which must feed the oracle and the detector the same
/// schedule).
class FanoutHooks : public RuntimeHooks {
public:
  explicit FanoutHooks(std::initializer_list<RuntimeHooks *> List)
      : Sinks(List) {}

  /// For callers that assemble the sink list at runtime (e.g. the pipeline
  /// adding a trace recorder next to the detector).
  explicit FanoutHooks(std::vector<RuntimeHooks *> List)
      : Sinks(std::move(List)) {}

  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId ThreadObj,
                      SiteId Site = SiteId::invalid()) override {
    for (RuntimeHooks *H : Sinks)
      H->onThreadCreate(Child, Parent, ThreadObj, Site);
  }
  void onThreadExit(ThreadId Dying) override {
    for (RuntimeHooks *H : Sinks)
      H->onThreadExit(Dying);
  }
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override {
    for (RuntimeHooks *H : Sinks)
      H->onThreadJoin(Joiner, Joined);
  }
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override {
    for (RuntimeHooks *H : Sinks)
      H->onMonitorEnter(Thread, Lock, Recursive, Site);
  }
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override {
    for (RuntimeHooks *H : Sinks)
      H->onMonitorExit(Thread, Lock, StillHeld);
  }
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override {
    for (RuntimeHooks *H : Sinks)
      H->onAccess(Thread, Location, Access, Site);
  }
  void onQuantumEnd(ThreadId Thread) override {
    for (RuntimeHooks *H : Sinks)
      H->onQuantumEnd(Thread);
  }
  void onRunEnd() override {
    for (RuntimeHooks *H : Sinks)
      H->onRunEnd();
  }

private:
  std::vector<RuntimeHooks *> Sinks;
};

} // namespace herd

#endif // HERD_RUNTIME_HOOKS_H
