//===- herd/ReportExport.h - Exportable race report documents ---*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders one pipeline run's deduplicated findings (PipelineResult::
/// Entries) as a machine-readable document (docs/REPORTS.md):
///
///   - `herd --report=json`: a versioned "herd-report" document, the
///     native export.  Fingerprints are 16-digit hex strings (64-bit
///     values do not survive JSON number parsers), occurrence counts make
///     deduplication lossless, and a summary block carries the bounded
///     reporter's totals — including droppedRecords(), so truncation is
///     never silent.
///
///   - `herd --report=sarif`: a SARIF 2.1.0 document for code-scanning
///     UIs.  Results carry partialFingerprints ("herdRace/v1": the same
///     stable fingerprint), and physical locations whenever the frontend
///     recorded source lines (Program::SourceName + SourceSite::Line);
///     workload and replay runs degrade to message-only results.
///
/// Both renderers are pure functions of the already-computed result — no
/// pipeline re-run, no detector access — so every backend (lockset trie,
/// sharded, epoch, replay) exports through the same path.  Consumers check
/// schema/version and refuse what they don't understand
/// (scripts/check_report_schema.py is the in-tree reference consumer);
/// within a version fields are only added, never renamed.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_HERD_REPORTEXPORT_H
#define HERD_HERD_REPORTEXPORT_H

#include "herd/Pipeline.h"

#include <string>

namespace herd {

/// The native document's schema identity.
inline constexpr const char *ReportSchemaName = "herd-report";
inline constexpr int ReportSchemaVersion = 1;

/// The SARIF version the SARIF renderer emits.
inline constexpr const char *ReportSarifVersion = "2.1.0";

/// Renders \p Result as one herd-report JSON document (trailing newline
/// included).  \p P supplies the source artifact name.
std::string renderReportJson(const Program &P, const PipelineResult &Result);

/// Renders \p Result as one SARIF 2.1.0 document (trailing newline
/// included).
std::string renderReportSarif(const Program &P, const PipelineResult &Result);

} // namespace herd

#endif // HERD_HERD_REPORTEXPORT_H
