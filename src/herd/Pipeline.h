//===- herd/Pipeline.h - The end-to-end detection pipeline ------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: Figure 1's full architecture in one call.
///
///   program --> static datarace analysis --> optimized instrumentation
///           --> execution with runtime optimizer (caches) --> detector
///
/// ToolConfig exposes every phase as a switch so the paper's ablations
/// (Base / Full / NoStatic / NoDominators / NoPeeling / NoCache of Table 2,
/// and Full / FieldsMerged / NoOwnership of Table 3) are one-liners.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_HERD_PIPELINE_H
#define HERD_HERD_PIPELINE_H

#include "analysis/LockOrder.h"
#include "analysis/StaticRace.h"
#include "baselines/EpochDetector.h"
#include "detect/DeadlockDetector.h"
#include "detect/Provenance.h"
#include "detect/RaceRuntime.h"
#include "detect/ShardedRuntime.h"
#include "detect/TraceFormat.h"
#include "instr/Instrumenter.h"
#include "runtime/Interpreter.h"

#include <string>
#include <vector>

namespace herd {

/// Configuration of one pipeline run.
struct ToolConfig {
  // --- Compile-time phases (Table 2 ablations) ---
  bool Instrument = true;      ///< false = "Base": run uninstrumented
  bool StaticAnalysis = true;  ///< false = "NoStatic"
  bool StaticWeakerThan = true;///< false = "NoDominators"
  bool LoopPeeling = true;     ///< false = "NoPeeling"

  // --- Runtime phases ---
  bool UseCache = true;        ///< false = "NoCache"
  bool UseOwnership = true;    ///< false = "NoOwnership" (Table 3)
  bool FieldsMerged = false;   ///< true  = "FieldsMerged" (Table 3)
  bool ModelJoin = true;       ///< dummy join locks (Section 2.3)

  /// Entries per (thread, kind) access cache (`herd --cache-size=N`);
  /// must be a power of two.  The paper's Section 4.3 sweeps this; its
  /// experiments settle on 256.
  uint32_t CacheEntries = 256;

  /// Hook-path fast path (`herd --hook-filter=on|off`, docs/HOOKPATH.md):
  /// the per-thread inline L0 access filter, devirtualized event delivery
  /// into the detection runtime, and (sharded) batched submission.  Purely
  /// an optimization — reports, traces, and schedules are byte-identical
  /// either way; `off` reproduces the legacy virtual hook path for A/B
  /// measurement.  The L0 filter additionally requires UseCache (the
  /// detector-side cache is the invariant it borrows).
  bool HookFilter = true;

  /// Shard count for the detection runtime: 0 runs the serial
  /// detect/RaceRuntime; N >= 1 runs detect/ShardedRuntime with N
  /// location-hashed shard workers (docs/SHARDING.md).  Reports are
  /// identical either way; only throughput and statistics layout change.
  uint32_t Shards = 0;

  /// Which detection backend consumes the event stream
  /// (docs/DETECTORS.md).  Herd is the paper's lockset/trie pipeline
  /// (cache + ownership filter + trie detector); Epoch is the
  /// FastTrack-lineage happens-before backend (`--detector=epoch`),
  /// serial only — it reports racy locations rather than full race
  /// records, and ignores the runtime-optimizer knobs (UseCache,
  /// UseOwnership, Shards, HookFilter).
  enum class DetectorBackend : uint8_t { Herd, Epoch };
  DetectorBackend Backend = DetectorBackend::Herd;

  /// Capacity planning for the detection runtime (`herd --plan=auto|off|N`).
  /// Auto derives a DetectorPlan from the static analysis (requires
  /// Instrument && StaticAnalysis; otherwise no plan is applied); Off
  /// disables pre-sizing for A/B comparison; Explicit sizes for
  /// PlanLocations expected locations without consulting the analysis.
  /// Plans never change race reports — only when memory is allocated.
  enum class PlanMode : uint8_t { Auto, Off, Explicit };
  PlanMode Plan = PlanMode::Auto;
  uint64_t PlanLocations = 0; ///< used only with PlanMode::Explicit

  /// Also run the lock-order deadlock detector (the Section 10 extension)
  /// over the same monitor event stream.
  bool DetectDeadlocks = false;

  /// Capture diagnostic provenance (`herd --provenance=on`,
  /// docs/REPORTS.md): thread-spawn sites, lock-acquisition sites, and a
  /// bounded per-thread ring of recent accesses, observed by a
  /// ProvenanceStore sink next to the detector.  Race sets and schedules
  /// are byte-identical either way (the store only listens); human race
  /// lines gain indented provenance detail.  Off costs nothing — the sink
  /// does not exist.  On adds a second sink, which disables the
  /// devirtualized single-sink delivery lane (docs/HOOKPATH.md), so live
  /// throughput drops to the fanout path; the overhead is measured by
  /// bench/bench_hotpath.cpp and documented honestly in docs/REPORTS.md.
  bool Provenance = false;

  /// When non-empty, every runtime event is also streamed to this trace
  /// file (docs/REPLAY.md) while the run executes.  The trace can later be
  /// re-detected offline with replayTracePipeline / `herd --replay`.
  std::string RecordTracePath;

  // --- Execution ---
  uint64_t Seed = 1;
  uint32_t MaxQuantum = 40;
  uint64_t MaxInstructions = 500'000'000;

  /// Interpreter dispatch strategy (`herd --dispatch=switch|threaded`,
  /// docs/INTERPRETER.md).  Threaded is the fast path: computed-goto
  /// dispatch over superinstruction shadow code with a compiled-out
  /// no-hook lane.  Switch is the reference interpreter.  Race reports,
  /// schedules and output are byte-identical across modes.
#ifdef HERD_DEFAULT_DISPATCH_SWITCH
  DispatchMode Dispatch = DispatchMode::Switch;
#else
  DispatchMode Dispatch = DispatchMode::Threaded;
#endif

  /// Superinstruction fusion for threaded dispatch (A/B lever; no CLI
  /// flag).  Ignored under switch dispatch.
  bool Superinstructions = true;

  // --- Observability (docs/OBSERVABILITY.md) ---
  /// When set, every phase records a span here (parse/lower happen in the
  /// caller; this covers static analysis passes, planning, instrumentation,
  /// execution, detection drain, report formatting) and the sharded runtime
  /// adds per-shard batch spans and queue-depth samples.  Null records
  /// nothing; race reports are byte-identical either way.
  MetricsRegistry *Metrics = nullptr;

  /// When set, the interpreter counts every dispatch into this profiler and
  /// times a 1-in-N sample (`herd --profile`).  Null costs one predictable
  /// branch per step and never changes execution.
  InterpProfiler *Profiler = nullptr;

  /// Named presets for the experiment tables.
  static ToolConfig base();
  static ToolConfig full();
  static ToolConfig noStatic();
  static ToolConfig noDominators();
  static ToolConfig noPeeling();
  static ToolConfig noCache();
  static ToolConfig fieldsMerged();
  static ToolConfig noOwnership();
};

/// One deduplicated, exportable finding: the unit the report renderers
/// (herd/ReportExport.h) consume.  Race entries are one-per-fingerprint
/// (occurrence-counted), unlike FormattedRaces which keeps every report to
/// preserve the historical human output byte-for-byte.
struct ReportEntry {
  enum class Kind : uint8_t {
    Race,              ///< a lockset-detector race record group
    RacyLocation,      ///< an epoch-backend racy location
    Deadlock,          ///< a dynamic lock-order cycle
    DeadlockCandidate, ///< a static allocation-site cycle
  };
  Kind EntryKind = Kind::Race;
  std::string Message;      ///< the human-formatted line (no provenance)
  uint64_t Fingerprint = 0; ///< stable identity (detect/RaceReport.h)
  uint64_t Occurrences = 1; ///< reports collapsed into this entry
  std::string SiteLabel;    ///< primary site label; empty when unknown
  uint32_t Line = 0;        ///< primary 1-based source line; 0 unknown
  std::string PriorSiteLabel; ///< earlier access's site (races only)
  uint32_t PriorLine = 0;
};

/// Everything one run produces.
struct PipelineResult {
  InterpResult Run;
  RaceRuntimeStats Stats;
  RaceReporter Reports;

  /// Per-shard counters; empty when the serial runtime ran (Shards == 0).
  std::vector<ShardStats> ShardBreakdown;
  StaticRaceStats Static;    ///< zeroed when StaticAnalysis was off
  InstrumenterStats Instr;   ///< zeroed when Instrument was off
  double AnalysisSeconds = 0.0; ///< static analysis + instrumentation time
  double ExecSeconds = 0.0;     ///< program execution (incl. detection)
  std::vector<std::string> FormattedRaces; ///< human-readable reports

  /// Potential deadlocks (only populated with DetectDeadlocks): the
  /// dynamic lock-order cycles observed in this run, and the static
  /// candidates from the whole-program lock-order analysis (a superset of
  /// what any single run can witness — the co-analysis pairing).
  std::vector<DeadlockCycle> Deadlocks;
  std::vector<StaticLockCycle> StaticDeadlockCandidates;
  std::vector<std::string> FormattedDeadlocks;

  /// Trace-subsystem outcome: the record/replay status (Ok when no trace
  /// was involved), and how many records/bytes were written or read.
  TraceResult Trace;
  uint64_t TraceRecords = 0;
  uint64_t TraceBytes = 0;

  /// Which dispatch strategy executed the run, and what the plan-time
  /// superinstruction pass fused (zeroed under switch dispatch; runtime
  /// fused-execution counts live in Run.Fused).
  DispatchMode Dispatch = DispatchMode::Switch;
  FusionStats Fusion;

  /// True when the epoch backend ran (ToolConfig::DetectorBackend::Epoch):
  /// Stats/Reports/ShardBreakdown stay zeroed (the epoch detector has no
  /// cache/ownership/trie machinery) and Epoch carries its counters;
  /// FormattedRaces holds one line per racy location.
  bool EpochBackend = false;
  EpochStats Epoch;

  /// Deduplicated findings for the report document (`--report=json|sarif`):
  /// one entry per race fingerprint / racy location / deadlock cycle, in
  /// deterministic first-seen order.  Always populated — the document
  /// renderers need no pipeline re-run.
  std::vector<ReportEntry> Entries;

  /// Provenance capture results (only meaningful with ProvenanceOn; the
  /// store is empty otherwise).
  bool ProvenanceOn = false;
  ProvenanceStore Provenance;
};

/// Runs the full pipeline on a copy of \p Input (the input program is not
/// mutated).
PipelineResult runPipeline(const Program &Input, const ToolConfig &Config);

/// Re-runs detection over a previously recorded trace (docs/REPLAY.md)
/// instead of executing the program.  The trace supplies the complete
/// runtime event stream, so the compile-time knobs of \p Config are
/// ignored; the runtime knobs (UseCache, UseOwnership, FieldsMerged,
/// ModelJoin, Shards, DetectDeadlocks) select the detection configuration
/// exactly as in a live run.  \p Input is only consulted for report
/// formatting (field/site names) and the static half of the deadlock
/// co-analysis; pass the same program that was recorded.  On a malformed
/// or unreadable trace the result carries `Trace.Ok == false` with a
/// diagnostic and `Run.Ok == false`.
PipelineResult replayTracePipeline(const Program &Input,
                                   const ToolConfig &Config,
                                   const std::string &TracePath);

} // namespace herd

#endif // HERD_HERD_PIPELINE_H
