//===- herd/HerdOptions.h - herd CLI argument parsing -----------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `herd` tool's command line, factored out of tools/herd.cpp into a
/// unit that parses a vector of argument strings and returns either a
/// validated HerdOptions or a one-line diagnostic — so every flag's error
/// path is unit-testable (tests/cli_test.cpp) instead of only reachable by
/// spawning the binary.
///
/// Parsing preserves the tool's long-standing rules: presets (`--config`)
/// are applied first and never clobber explicit `--cache-size` / `--plan`
/// flags regardless of order; `--replay` excludes `--sweep` and
/// `--record`; `--detector` requires `--replay`; numeric flags are
/// validated eagerly with the same messages the tool always printed.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_HERD_HERDOPTIONS_H
#define HERD_HERD_HERDOPTIONS_H

#include "herd/Pipeline.h"

#include <string>
#include <vector>

namespace herd {

/// Everything the `herd` tool needs to know after argv is parsed.
struct HerdOptions {
  std::string Path;         ///< MiniJ source file (or empty with a workload)
  std::string WorkloadName; ///< built-in workload (`--workload=`)
  std::string RecordPath;   ///< trace output (`--record=`)
  std::string ReplayPath;   ///< trace input (`--replay=`)
  std::string Detector = "herd"; ///< replay detector (`--detector=`)
  std::string TraceJsonPath;     ///< Chrome trace output (`--trace-json=`)
  std::string Report = "human";  ///< report rendering (`--report=`)

  ToolConfig Config = ToolConfig::full();
  uint64_t Seed = 1;
  int Sweep = 0;

  bool Stats = false;     ///< `--stats` / `--stats=human`
  bool StatsJson = false; ///< `--stats=json`: print only the JSON document
  bool DumpIR = false;
  bool Deadlocks = false;
  bool Profile = false;   ///< `--profile`: interpreter sampling profiler
};

/// Outcome of one parse.
struct HerdParse {
  enum class Status : uint8_t {
    Run,   ///< Opts is valid; run the tool
    Help,  ///< `--help`: print usage, exit 0
    Error, ///< bad command line: print Error (and usage if ShowUsage), exit 2
  };

  Status St = Status::Error;
  std::string Error;      ///< one-line diagnostic, no trailing newline
  bool ShowUsage = false; ///< print the usage text after the diagnostic
  HerdOptions Opts;
};

/// Parses the argv tail (everything after argv[0]).  Never prints; the
/// caller owns stderr.
HerdParse parseHerdCommandLine(const std::vector<std::string> &Args);

/// The usage text `herd --help` prints.
const char *herdUsageText();

/// Maps a `--config=` preset name onto \p Out; false for unknown names.
bool pickToolConfig(const std::string &Name, ToolConfig &Out);

} // namespace herd

#endif // HERD_HERD_HERDOPTIONS_H
