//===- herd/StatsJson.h - Machine-readable run statistics -------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes one pipeline run — RaceRuntimeStats, the per-shard
/// breakdown, registry metrics, the interpreter profile, and the formatted
/// race reports — as a single JSON document (`herd --stats=json`), so CI
/// and scripts consume run results without scraping the human output.
///
/// The document carries a stable, versioned envelope:
///
///   { "schema": "herd-stats", "version": 1, ... }
///
/// Consumers check the pair and refuse what they don't understand
/// (scripts/check_stats_schema.py is the in-tree reference consumer).
/// Within a version, fields are only ever added, never renamed or
/// repurposed; key order is fixed so byte-level diffs are meaningful
/// (the golden-file tests in tests/stats_test.cpp rely on this).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_HERD_STATSJSON_H
#define HERD_HERD_STATSJSON_H

#include "herd/Pipeline.h"

#include <string>

namespace herd {

class InterpProfiler;
class MetricsRegistry;

/// The schema identity this build emits.
inline constexpr const char *StatsSchemaName = "herd-stats";
inline constexpr int StatsSchemaVersion = 1;

/// Renders \p Result as one herd-stats JSON document (trailing newline
/// included).  \p Metrics and \p Prof are optional sections: when given,
/// the document carries a "metrics" object (counters/gauges/histograms
/// with exact values) and a "profile" object (the opcode table behind
/// `herd --profile`, machine-readable).
std::string renderStatsJson(const PipelineResult &Result,
                            const MetricsRegistry *Metrics = nullptr,
                            const InterpProfiler *Prof = nullptr);

} // namespace herd

#endif // HERD_HERD_STATSJSON_H
