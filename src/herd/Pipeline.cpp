//===- herd/Pipeline.cpp - The end-to-end detection pipeline --------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "herd/Pipeline.h"

#include "analysis/DetectorPlanner.h"
#include "detect/TraceFile.h"
#include "instr/Superinstr.h"
#include "ir/Verifier.h"
#include "support/Metrics.h"

#include <cassert>
#include <chrono>
#include <optional>

using namespace herd;

ToolConfig ToolConfig::base() {
  ToolConfig C;
  C.Instrument = false;
  return C;
}

ToolConfig ToolConfig::full() { return ToolConfig(); }

ToolConfig ToolConfig::noStatic() {
  ToolConfig C;
  C.StaticAnalysis = false;
  return C;
}

ToolConfig ToolConfig::noDominators() {
  ToolConfig C;
  C.StaticWeakerThan = false;
  C.LoopPeeling = false; // useless without the weaker-than check (Sec 8.2)
  return C;
}

ToolConfig ToolConfig::noPeeling() {
  ToolConfig C;
  C.LoopPeeling = false;
  return C;
}

ToolConfig ToolConfig::noCache() {
  ToolConfig C;
  C.UseCache = false;
  return C;
}

ToolConfig ToolConfig::fieldsMerged() {
  ToolConfig C;
  C.FieldsMerged = true;
  return C;
}

ToolConfig ToolConfig::noOwnership() {
  ToolConfig C;
  C.UseOwnership = false;
  return C;
}

namespace {

/// Renders a site reference for diagnostics: the symbolic label, plus
/// "(file:line)" when the frontend recorded a source line ("L7
/// (prog.mj:7)"); empty for an invalid site.
std::string siteRef(const Program &P, SiteId Site) {
  if (!Site.isValid() || Site.index() >= P.numSites())
    return std::string();
  const SourceSite &S = P.site(Site);
  std::string Out(P.Names.text(S.Label));
  if (S.Line != 0 && !P.SourceName.empty()) {
    Out += " (";
    Out += P.SourceName;
    Out += ':';
    Out += std::to_string(S.Line);
    Out += ')';
  }
  return Out;
}

/// The 1-based source line of \p Site, or 0 when unknown.
uint32_t siteLine(const Program &P, SiteId Site) {
  if (!Site.isValid() || Site.index() >= P.numSites())
    return 0;
  return P.site(Site).Line;
}

/// The symbolic label of \p Site, or empty when unknown.
std::string siteLabel(const Program &P, SiteId Site) {
  if (!Site.isValid() || Site.index() >= P.numSites())
    return std::string();
  return std::string(P.Names.text(P.site(Site).Label));
}

/// Appends the `--provenance=on` detail lines to a formatted race: where
/// the earlier access was, how the racing thread was spawned, where each
/// held lock was acquired, and the thread's recent access history.  Every
/// line is indented continuation text of the same report.
void appendProvenanceDetail(std::string &Out, const Program &P,
                            const ProvenanceStore &Prov,
                            const RaceRecord &Rec) {
  if (Rec.PriorSite.isValid()) {
    Out += "\n    earlier access at ";
    Out += siteRef(P, Rec.PriorSite);
  }
  ProvenanceStore::Spawn Sp = Prov.spawnOf(Rec.CurrentThread);
  if (Sp.Parent.isValid()) {
    Out += "\n    thread ";
    Out += std::to_string(Rec.CurrentThread.index());
    Out += " spawned by thread ";
    Out += std::to_string(Sp.Parent.index());
    if (Sp.Site.isValid()) {
      Out += " at ";
      Out += siteRef(P, Sp.Site);
    }
  }
  for (LockId L : Rec.CurrentLocks) {
    if (L.index() >= (1u << 30))
      continue; // dummy join locks have no acquisition statement
    ProvenanceStore::LockAcquire Acq = Prov.lockAcquire(L);
    if (!Acq.Site.isValid())
      continue;
    Out += "\n    lock #";
    Out += std::to_string(L.index());
    Out += " acquired by thread ";
    Out += std::to_string(Acq.Thread.index());
    Out += " at ";
    Out += siteRef(P, Acq.Site);
  }
  std::vector<ProvenanceStore::AccessEntry> Recent =
      Prov.recentAccesses(Rec.CurrentThread);
  if (!Recent.empty()) {
    Out += "\n    recent by thread ";
    Out += std::to_string(Rec.CurrentThread.index());
    Out += ':';
    // Newest last mirrors program order; cap keeps reports readable.
    size_t Shown = 0;
    size_t First = Recent.size() > 4 ? Recent.size() - 4 : 0;
    for (size_t I = First; I != Recent.size(); ++I) {
      const ProvenanceStore::AccessEntry &A = Recent[I];
      Out += Shown++ ? ", " : " ";
      Out += A.Access == AccessKind::Write ? "write" : "read";
      std::string Site = siteLabel(P, A.Site);
      if (!Site.empty()) {
        Out += " at ";
        Out += Site;
      }
    }
  }
}

/// Renders one race record using program metadata and, when available, the
/// final heap (for object class names).  Replay runs have no heap — the
/// trace carries only event ids — so \p TheHeap may be null, in which case
/// objects are reported by index alone.
std::string formatRace(const Program &P, const Heap *TheHeap,
                       const RaceRecord &Rec) {
  std::string Out = "race on ";
  ObjectId Obj = Rec.Location.object();
  if (TheHeap && Obj.index() < TheHeap->size()) {
    const HeapObject &H = TheHeap->object(Obj);
    if (H.IsArray) {
      Out += "array";
    } else if (H.IsClassStatics) {
      Out += "statics";
    } else if (H.Class.isValid()) {
      Out += P.Names.text(P.classDecl(H.Class).Name);
    } else {
      Out += "object";
    }
  } else {
    Out += "object";
  }
  Out += " #";
  Out += std::to_string(Obj.index());

  uint32_t FieldBits = uint32_t(Rec.Location.raw() & 0xFFFFFFFF);
  if (FieldBits < P.numFields()) {
    Out += " field ";
    Out += P.Names.text(P.field(FieldId(FieldBits)).Name);
  }

  Out += ": ";
  Out += Rec.CurrentAccess == AccessKind::Write ? "write" : "read";
  Out += " by thread ";
  Out += std::to_string(Rec.CurrentThread.index());
  if (Rec.CurrentSite.isValid()) {
    Out += " at ";
    Out += P.Names.text(P.site(Rec.CurrentSite).Label);
  }
  Out += " conflicts with earlier ";
  Out += Rec.PriorAccess == AccessKind::Write ? "write" : "read";
  if (Rec.PriorThreadKnown) {
    Out += " by thread ";
    Out += std::to_string(Rec.PriorThread.index());
  } else {
    Out += " (thread unknown: multiple earlier threads)";
  }
  // Dummy join locks (Section 2.3) are an implementation device; report
  // only program locks, but surface the join ordering when present.
  size_t RealLocks = 0;
  bool HasDummy = false;
  for (LockId L : Rec.PriorLocks) {
    if (L.index() >= (1u << 30))
      HasDummy = true;
    else
      ++RealLocks;
  }
  Out += " holding ";
  Out += std::to_string(RealLocks);
  Out += " lock(s)";
  if (HasDummy)
    Out += " (+join ordering)";
  return Out;
}

/// Renders one racy location the way formatRace renders its location part.
/// The epoch backend reports locations, not full race records, so its lines
/// carry no thread/site attribution.
std::string formatRacyLocation(const Program &P, const Heap *TheHeap,
                               LocationKey Location) {
  std::string Out = "race on ";
  ObjectId Obj = Location.object();
  if (TheHeap && Obj.index() < TheHeap->size()) {
    const HeapObject &H = TheHeap->object(Obj);
    if (H.IsArray) {
      Out += "array";
    } else if (H.IsClassStatics) {
      Out += "statics";
    } else if (H.Class.isValid()) {
      Out += P.Names.text(P.classDecl(H.Class).Name);
    } else {
      Out += "object";
    }
  } else {
    Out += "object";
  }
  Out += " #";
  Out += std::to_string(Obj.index());
  uint32_t FieldBits = uint32_t(Location.raw() & 0xFFFFFFFF);
  if (FieldBits < P.numFields()) {
    Out += " field ";
    Out += P.Names.text(P.field(FieldId(FieldBits)).Name);
  }
  return Out;
}

/// Stable identity of a deadlock cycle: the canonicalized lock sequence
/// with each edge's acquisition site (detect/RaceReport.h's mixer).
/// Threads are excluded — the same cycle witnessed by other threads is the
/// same bug.
uint64_t deadlockFingerprint(const DeadlockCycle &Cycle) {
  uint64_t H = fingerprintMix(0xD1);
  for (size_t I = 0; I != Cycle.Locks.size(); ++I) {
    SiteId S = I < Cycle.Sites.size() ? Cycle.Sites[I] : SiteId::invalid();
    H = fingerprintMix(H ^ ((uint64_t(Cycle.Locks[I].index()) << 32) |
                            uint64_t(S.index())));
  }
  return H;
}

/// Stable identity of a static allocation-site cycle.
uint64_t staticDeadlockFingerprint(const StaticLockCycle &Cycle) {
  uint64_t H = fingerprintMix(0xD2);
  for (AllocSiteId Site : Cycle.Sites)
    H = fingerprintMix(H ^ uint64_t(Site.index()));
  return H;
}

/// Runs the static half of the deadlock co-analysis over \p Input, reads
/// the dynamic cycles out of \p Deadlocks, and formats both into
/// \p Result.  Shared between live runs and trace replay.
void collectDeadlockResults(const Program &Input, DeadlockDetector &Deadlocks,
                            PipelineResult &Result) {
  // Static half of the co-analysis: whole-program candidates.
  PointsToAnalysis PT(Input);
  PT.run();
  SingleInstanceAnalysis SI(Input, PT);
  SI.run();
  LockOrderAnalysis LO(Input, PT, SI);
  LO.run();
  Result.StaticDeadlockCandidates = LO.findCycles();
  for (const StaticLockCycle &Cycle : Result.StaticDeadlockCandidates) {
    std::string Line = "static deadlock candidate: allocation-site cycle";
    for (AllocSiteId Site : Cycle.Sites) {
      Line += " -> site #";
      Line += std::to_string(Site.index());
      ClassId Cls = Input.allocSite(Site).Class;
      if (Cls.isValid()) {
        Line += " (";
        Line += Input.Names.text(Input.classDecl(Cls).Name);
        Line += ')';
      }
    }
    if (Cycle.Sites.size() == 1)
      Line += " [two instances of one site in opposite orders]";
    ReportEntry Entry;
    Entry.EntryKind = ReportEntry::Kind::DeadlockCandidate;
    Entry.Message = Line;
    Entry.Fingerprint = staticDeadlockFingerprint(Cycle);
    Result.Entries.push_back(std::move(Entry));
    Result.FormattedDeadlocks.push_back(std::move(Line));
  }

  Result.Deadlocks = Deadlocks.findPotentialDeadlocks();
  for (const DeadlockCycle &Cycle : Result.Deadlocks) {
    std::string Line = "potential deadlock: lock cycle";
    for (LockId L : Cycle.Locks) {
      Line += " -> object #";
      Line += std::to_string(L.index());
    }
    Line += " (threads";
    for (ThreadId T : Cycle.Threads) {
      Line += ' ';
      Line += std::to_string(T.index());
    }
    Line += ")";
    // Edge acquisition sites ride along when the event stream carried
    // them (live MiniJ runs and v1 traces recorded from them); traces
    // from site-less sources degrade to the bare cycle.
    bool AnySite = false;
    for (SiteId S : Cycle.Sites)
      AnySite = AnySite || S.isValid();
    if (AnySite) {
      Line += " acquired at";
      for (SiteId S : Cycle.Sites) {
        Line += ' ';
        std::string Ref = siteRef(Input, S);
        Line += Ref.empty() ? std::string("?") : Ref;
      }
    }
    ReportEntry Entry;
    Entry.EntryKind = ReportEntry::Kind::Deadlock;
    Entry.Message = Line;
    Entry.Fingerprint = deadlockFingerprint(Cycle);
    for (SiteId S : Cycle.Sites) {
      if (!S.isValid())
        continue;
      Entry.SiteLabel = siteLabel(Input, S);
      Entry.Line = siteLine(Input, S);
      break;
    }
    Result.Entries.push_back(std::move(Entry));
    Result.FormattedDeadlocks.push_back(std::move(Line));
  }
}

/// Builds the detection runtime \p Config asks for (serial RaceRuntime,
/// ShardedRuntime, or the epoch backend) into whichever of \p Serial /
/// \p Sharded / \p Epoch applies and returns the active one as a
/// RuntimeHooks sink.  \p Plan carries the capacity hints the caller
/// resolved for this run (empty = no pre-sizing).
RuntimeHooks *makeDetectionRuntime(const ToolConfig &Config,
                                   const DetectorPlan &Plan,
                                   std::unique_ptr<RaceRuntime> &Serial,
                                   std::unique_ptr<ShardedRuntime> &Sharded,
                                   std::unique_ptr<EpochDetector> &Epoch) {
  if (Config.Backend == ToolConfig::DetectorBackend::Epoch) {
    // Serial only (HerdOptions rejects epoch + --shards); the plan's
    // capacity hints pre-size the clock store and location table.
    Epoch = std::make_unique<EpochDetector>(Plan);
    return Epoch.get();
  }
  if (Config.Shards >= 1) {
    ShardedRuntimeOptions SOpts;
    SOpts.NumShards = Config.Shards;
    SOpts.UseCache = Config.UseCache;
    SOpts.CacheEntries = Config.CacheEntries;
    SOpts.UseOwnership = Config.UseOwnership;
    SOpts.FieldsMerged = Config.FieldsMerged;
    SOpts.ModelJoin = Config.ModelJoin;
    SOpts.HookFilter = Config.HookFilter;
    SOpts.Plan = Plan;
    SOpts.Metrics = Config.Metrics;
    Sharded = std::make_unique<ShardedRuntime>(SOpts);
    return Sharded.get();
  }
  RaceRuntimeOptions RTOpts;
  RTOpts.UseCache = Config.UseCache;
  RTOpts.CacheEntries = Config.CacheEntries;
  RTOpts.UseOwnership = Config.UseOwnership;
  RTOpts.FieldsMerged = Config.FieldsMerged;
  RTOpts.ModelJoin = Config.ModelJoin;
  RTOpts.HookFilter = Config.HookFilter;
  RTOpts.Plan = Plan;
  Serial = std::make_unique<RaceRuntime>(RTOpts);
  return Serial.get();
}

/// Resolves the plan the non-Auto modes can provide without analysis
/// results: Explicit sizes from the CLI; Off and (analysis-less) Auto are
/// empty.  runPipeline overrides Auto with planDetector when the static
/// phase ran.
DetectorPlan configuredPlan(const ToolConfig &Config) {
  if (Config.Plan == ToolConfig::PlanMode::Explicit)
    return DetectorPlan::sized(Config.PlanLocations);
  return DetectorPlan();
}

/// The shared report-formatting phase: renders the human lines (optionally
/// provenance-enriched) and builds the deduplicated ReportEntry list the
/// document renderers consume.  \p TheHeap may be null (replay runs).
void formatRaceResults(const Program &P, const Heap *TheHeap,
                       const EpochDetector *Epoch,
                       const ProvenanceStore *Prov, PipelineResult &Result) {
  if (Epoch) {
    for (LocationKey Loc : Epoch->reportedLocations())
      Result.FormattedRaces.push_back(formatRacyLocation(P, TheHeap, Loc));
    // Entries come from the first racing access per location, which
    // carries thread/site attribution the location set cannot.
    for (const EpochDetector::RacyAccess &RA : Epoch->racyAccesses()) {
      ReportEntry Entry;
      Entry.EntryKind = ReportEntry::Kind::RacyLocation;
      Entry.Message = formatRacyLocation(P, TheHeap, RA.Location);
      // Happens-before trips on the second access of a pair; the earlier
      // one is unknown, so it fingerprints as the invalid site (stable,
      // documented in docs/REPORTS.md).
      Entry.Fingerprint = raceFingerprint(RA.Location, RA.Site, RA.Access,
                                          SiteId::invalid(),
                                          AccessKind::Read);
      Entry.SiteLabel = siteLabel(P, RA.Site);
      Entry.Line = siteLine(P, RA.Site);
      Result.Entries.push_back(std::move(Entry));
    }
  }
  for (const RaceRecord &Rec : Result.Reports.records()) {
    std::string Line = formatRace(P, TheHeap, Rec);
    if (Prov)
      appendProvenanceDetail(Line, P, *Prov, Rec);
    Result.FormattedRaces.push_back(std::move(Line));
  }
  for (const RaceReporter::Group &G : Result.Reports.groups()) {
    const RaceRecord &Rec = Result.Reports.records()[G.FirstRecord];
    ReportEntry Entry;
    Entry.EntryKind = ReportEntry::Kind::Race;
    Entry.Message = formatRace(P, TheHeap, Rec);
    Entry.Fingerprint = G.Fingerprint;
    Entry.Occurrences = G.Count;
    Entry.SiteLabel = siteLabel(P, Rec.CurrentSite);
    Entry.Line = siteLine(P, Rec.CurrentSite);
    Entry.PriorSiteLabel = siteLabel(P, Rec.PriorSite);
    Entry.PriorLine = siteLine(P, Rec.PriorSite);
    Result.Entries.push_back(std::move(Entry));
  }
}

} // namespace

PipelineResult herd::runPipeline(const Program &Input,
                                 const ToolConfig &Config) {
  using Clock = std::chrono::steady_clock;
  PipelineResult Result;

  assert(verifyProgram(Input).empty() &&
         "pipeline input must be a verified program");

  // Phase 1+2: static analysis and instrumentation, on a private copy.
  Program P = Input;
  MetricsRegistry *Metrics = Config.Metrics;
  DetectorPlan Plan = configuredPlan(Config);
  Clock::time_point T0 = Clock::now();
  if (Config.Instrument) {
    std::unique_ptr<StaticRaceAnalysis> Races;
    if (Config.StaticAnalysis) {
      {
        Span AnalysisSpan(Metrics, "static-race");
        Races = std::make_unique<StaticRaceAnalysis>(P);
        Races->run(Metrics);
        Result.Static = Races->stats();
      }
      // The race set bounds what the runtime can see: turn it into
      // capacity hints so the detector pre-sizes instead of growing
      // through the cold pass (charged to analysis time, where it
      // belongs — it is the analysis paying for runtime efficiency).
      if (Config.Plan == ToolConfig::PlanMode::Auto) {
        Span PlanSpan(Metrics, "plan");
        Plan = planDetector(P, *Races);
      }
    }
    Span InstrSpan(Metrics, "instrument");
    InstrumenterOptions Opts;
    Opts.UseStaticRaceSet = Config.StaticAnalysis;
    Opts.StaticWeakerThan = Config.StaticWeakerThan;
    Opts.LoopPeeling = Config.LoopPeeling;
    Result.Instr = instrumentProgram(P, Opts, Races.get());
    assert(verifyProgram(P).empty() &&
           "instrumentation must preserve well-formedness");
  }
  // Superinstruction shadow code for the threaded fast path, built from
  // the program's final (post-instrumentation) form at plan time.  The
  // verified IR is never rewritten; the interpreter runs the shadow
  // blocks (docs/INTERPRETER.md).  Charged to analysis time: it is the
  // plan paying for runtime efficiency, like detector pre-sizing.
  std::unique_ptr<ThreadedCode> Shadow;
  Result.Dispatch = Config.Dispatch;
  if (Config.Dispatch == DispatchMode::Threaded) {
    Span FuseSpan(Metrics, "fuse");
    SuperinstrOptions FuseOpts;
    FuseOpts.Fuse = Config.Superinstructions;
    Shadow = std::make_unique<ThreadedCode>(buildThreadedCode(P, FuseOpts));
    Result.Fusion = Shadow->Stats;
  }
  Result.AnalysisSeconds =
      std::chrono::duration<double>(Clock::now() - T0).count();

  // Phase 3+4: execution with the runtime optimizer and detector.  The
  // detection runtime is either the serial RaceRuntime or, with
  // Config.Shards >= 1, the sharded batched runtime (docs/SHARDING.md) —
  // both produce the identical race-report set for the same schedule.
  std::unique_ptr<RaceRuntime> Serial;
  std::unique_ptr<ShardedRuntime> Sharded;
  std::unique_ptr<EpochDetector> Epoch;
  RuntimeHooks *Detect =
      makeDetectionRuntime(Config, Plan, Serial, Sharded, Epoch);
  DeadlockDetector Deadlocks;
  TraceWriter Writer;
  if (!Config.RecordTracePath.empty()) {
    Result.Trace = Writer.open(Config.RecordTracePath);
    if (!Result.Trace.Ok) {
      Result.Run.Error = "cannot record trace: " + Result.Trace.Error;
      return Result;
    }
  }
  // The interpreter gets whichever sinks this configuration wants: the
  // race detector (only when the program is instrumented — "Base" runs
  // produce no access events anyway but also skip sync tracking), the
  // deadlock detector, and the trace recorder.
  std::vector<RuntimeHooks *> SinkList;
  if (Config.Instrument)
    SinkList.push_back(Detect);
  // Provenance is a pure listener next to the detector: present only when
  // asked for (zero-cost-when-off), and a second sink by design — which
  // disables the devirtualized delivery lane below, never the race set.
  std::optional<ProvenanceStore> Prov;
  if (Config.Provenance && Config.Instrument) {
    Prov.emplace();
    SinkList.push_back(&*Prov);
  }
  if (Config.DetectDeadlocks)
    SinkList.push_back(&Deadlocks);
  if (Writer.isOpen())
    SinkList.push_back(&Writer);
  // FanoutHooks is only materialized when several sinks actually watch the
  // run; the common single-sink configuration passes the sink directly and
  // pays no forwarding loop.
  std::optional<FanoutHooks> Fanout;
  RuntimeHooks *Hooks = nullptr;
  if (SinkList.size() == 1) {
    Hooks = SinkList.front();
  } else if (SinkList.size() > 1) {
    Fanout.emplace(SinkList);
    Hooks = &*Fanout;
  }

  InterpOptions IOpts;
  IOpts.Seed = Config.Seed;
  IOpts.MaxQuantum = Config.MaxQuantum;
  IOpts.MaxInstructions = Config.MaxInstructions;
  IOpts.Profiler = Config.Profiler;
  IOpts.Dispatch = Config.Dispatch;
  IOpts.Fused = Shadow.get();
  // Devirtualized delivery (docs/HOOKPATH.md): when the detection runtime
  // is the *sole* sink — no recorder, no deadlock detector — and no
  // profiler wants to time hook calls, the interpreter delivers access
  // events straight to the concrete runtime (inline L0 filter included).
  // Any extra sink disables it so recorded traces keep every event.
  if (Config.HookFilter && !Config.Profiler && SinkList.size() == 1 &&
      Hooks == Detect) {
    IOpts.SerialSink = Serial.get();
    IOpts.ShardedSink = Sharded.get();
  }
  Interpreter Interp(P, Hooks, IOpts);

  Clock::time_point T1 = Clock::now();
  {
    Span ExecSpan(Metrics, "execute");
    Result.Run = Interp.run();
  }
  Result.ExecSeconds =
      std::chrono::duration<double>(Clock::now() - T1).count();

  {
    Span DrainSpan(Metrics, "detect-drain");
    if (Sharded) {
      Sharded->finish();
      Result.Stats = Sharded->stats();
      Result.Reports = Sharded->reporter();
      Result.ShardBreakdown = Sharded->shardStats();
    } else if (Serial) {
      Result.Stats = Serial->stats();
      Result.Reports = Serial->reporter();
    } else {
      Result.EpochBackend = true;
      Result.Epoch = Epoch->stats();
    }
  }
  {
    Span FormatSpan(Metrics, "format-reports");
    formatRaceResults(P, &Interp.heap(), Epoch.get(),
                      Prov ? &*Prov : nullptr, Result);
  }
  if (Prov) {
    Result.ProvenanceOn = true;
    Result.Provenance = std::move(*Prov);
  }
  if (Metrics) {
    Metrics->counter("run.instructions").add(Result.Run.InstructionsExecuted);
    Metrics->counter("run.access_events").add(Result.Run.AccessEvents);
    Metrics->counter("run.context_switches").add(Result.Run.ContextSwitches);
    Metrics->counter("run.races").add(Result.FormattedRaces.size());
  }

  if (Writer.isOpen()) {
    TraceResult Closed = Writer.close();
    if (Result.Trace.Ok && !Closed.Ok)
      Result.Trace = Closed;
    Result.TraceRecords = Writer.recordsWritten();
    Result.TraceBytes = Writer.bytesWritten();
  }

  if (Config.DetectDeadlocks)
    collectDeadlockResults(Input, Deadlocks, Result);
  return Result;
}

PipelineResult herd::replayTracePipeline(const Program &Input,
                                         const ToolConfig &Config,
                                         const std::string &TracePath) {
  using Clock = std::chrono::steady_clock;
  PipelineResult Result;

  // Build the same detection runtime a live run with this Config would
  // use; the trace replaces the interpreter as the event source, so the
  // compile-time phases are skipped entirely.  Auto planning needs those
  // phases, so replay only honours an Explicit plan (`--plan=N`).
  std::unique_ptr<RaceRuntime> Serial;
  std::unique_ptr<ShardedRuntime> Sharded;
  std::unique_ptr<EpochDetector> Epoch;
  RuntimeHooks *Detect = makeDetectionRuntime(Config, configuredPlan(Config),
                                              Serial, Sharded, Epoch);
  DeadlockDetector Deadlocks;
  std::vector<RuntimeHooks *> SinkList{Detect};
  // v1 traces carry sites on monitor-enter / thread-create records, so
  // replayed runs can capture the same provenance a live run would.
  std::optional<ProvenanceStore> Prov;
  if (Config.Provenance) {
    Prov.emplace();
    SinkList.push_back(&*Prov);
  }
  if (Config.DetectDeadlocks)
    SinkList.push_back(&Deadlocks);
  std::optional<FanoutHooks> Fanout;
  RuntimeHooks *Sink = SinkList.front();
  if (SinkList.size() > 1) {
    Fanout.emplace(SinkList);
    Sink = &*Fanout;
  }

  MetricsRegistry *Metrics = Config.Metrics;
  Result.Dispatch = Config.Dispatch; // no interpretation: fusion stays zero
  TraceReader Reader;
  Result.Trace = Reader.open(TracePath);
  if (Result.Trace.Ok) {
    Clock::time_point T0 = Clock::now();
    {
      Span ReplaySpan(Metrics, "replay");
      Result.Trace = Reader.replayInto(*Sink);
    }
    // Always close out the detectors — a sharded runtime must drain and
    // join its workers even when the trace turned out to be malformed.
    {
      Span DrainSpan(Metrics, "detect-drain");
      Sink->onRunEnd();
    }
    Result.ExecSeconds =
        std::chrono::duration<double>(Clock::now() - T0).count();
    Result.TraceRecords = Reader.recordsRead();
    Result.TraceBytes =
        tracefmt::HeaderBytes + Result.TraceRecords * tracefmt::RecordBytes;
  }
  Result.Run.Ok = Result.Trace.Ok;
  if (!Result.Trace.Ok) {
    Result.Run.Error = "trace replay failed: " + Result.Trace.Error;
    return Result;
  }
  Result.Run.AccessEvents = Result.TraceRecords;

  if (Sharded) {
    Result.Stats = Sharded->stats();
    Result.Reports = Sharded->reporter();
    Result.ShardBreakdown = Sharded->shardStats();
  } else if (Serial) {
    Result.Stats = Serial->stats();
    Result.Reports = Serial->reporter();
  } else {
    Result.EpochBackend = true;
    Result.Epoch = Epoch->stats();
  }
  // No heap exists in a replay run; formatRace degrades to object indices.
  {
    Span FormatSpan(Metrics, "format-reports");
    formatRaceResults(Input, nullptr, Epoch.get(), Prov ? &*Prov : nullptr,
                      Result);
  }
  if (Prov) {
    Result.ProvenanceOn = true;
    Result.Provenance = std::move(*Prov);
  }

  if (Config.DetectDeadlocks)
    collectDeadlockResults(Input, Deadlocks, Result);
  return Result;
}
