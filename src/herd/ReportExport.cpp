//===- herd/ReportExport.cpp - Exportable race report documents -----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "herd/ReportExport.h"

#include "support/Json.h"

#include <cstdio>

using namespace herd;

namespace {

/// 64-bit fingerprints as fixed-width hex strings: JSON numbers are
/// doubles in most consumers, which silently corrupt the high bits.
std::string hexFingerprint(uint64_t F) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)F);
  return std::string(Buf);
}

const char *entryKindName(ReportEntry::Kind K) {
  switch (K) {
  case ReportEntry::Kind::Race:
    return "race";
  case ReportEntry::Kind::RacyLocation:
    return "racy-location";
  case ReportEntry::Kind::Deadlock:
    return "deadlock";
  case ReportEntry::Kind::DeadlockCandidate:
    return "deadlock-candidate";
  }
  return "unknown";
}

const char *entryRuleId(ReportEntry::Kind K) {
  switch (K) {
  case ReportEntry::Kind::Race:
    return "herd/datarace";
  case ReportEntry::Kind::RacyLocation:
    return "herd/racy-location";
  case ReportEntry::Kind::Deadlock:
    return "herd/deadlock";
  case ReportEntry::Kind::DeadlockCandidate:
    return "herd/deadlock-candidate";
  }
  return "herd/unknown";
}

/// Emits `"site": {"label": ..., "line": ...}` or `"site": null`.
void writeSite(JsonWriter &W, const char *Key, const std::string &Label,
               uint32_t Line) {
  W.key(Key);
  if (Label.empty() && Line == 0) {
    W.null();
    return;
  }
  W.beginObject();
  W.member("label", Label);
  W.member("line", uint64_t(Line));
  W.endObject();
}

} // namespace

std::string herd::renderReportJson(const Program &P,
                                   const PipelineResult &Result) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", ReportSchemaName);
  W.member("version", ReportSchemaVersion);

  W.key("tool");
  W.beginObject();
  W.member("name", "herd");
  W.member("detector", Result.EpochBackend ? "epoch" : "herd");
  W.endObject();

  W.member("source", P.SourceName);

  W.key("summary");
  W.beginObject();
  uint64_t Races = 0, RacyLocations = 0, Deadlocks = 0, Candidates = 0;
  for (const ReportEntry &E : Result.Entries) {
    switch (E.EntryKind) {
    case ReportEntry::Kind::Race:
      ++Races;
      break;
    case ReportEntry::Kind::RacyLocation:
      ++RacyLocations;
      break;
    case ReportEntry::Kind::Deadlock:
      ++Deadlocks;
      break;
    case ReportEntry::Kind::DeadlockCandidate:
      ++Candidates;
      break;
    }
  }
  W.member("distinct_races", Races);
  W.member("racy_locations", RacyLocations);
  W.member("deadlock_cycles", Deadlocks);
  W.member("deadlock_candidates", Candidates);
  W.member("total_reported", Result.Reports.totalReported());
  W.member("dropped_records", Result.Reports.droppedRecords());
  W.member("reporter_capacity", uint64_t(Result.Reports.capacity()));
  W.endObject();

  W.key("results");
  W.beginArray();
  for (const ReportEntry &E : Result.Entries) {
    W.beginObject();
    W.member("kind", entryKindName(E.EntryKind));
    W.member("rule", entryRuleId(E.EntryKind));
    W.member("fingerprint", hexFingerprint(E.Fingerprint));
    W.member("occurrences", E.Occurrences);
    W.member("message", E.Message);
    writeSite(W, "site", E.SiteLabel, E.Line);
    writeSite(W, "prior_site", E.PriorSiteLabel, E.PriorLine);
    W.endObject();
  }
  W.endArray();

  W.key("provenance");
  W.beginObject();
  W.member("enabled", Result.ProvenanceOn);
  W.member("threads_tracked", uint64_t(Result.Provenance.threadsTracked()));
  W.member("locks_tracked", uint64_t(Result.Provenance.locksTracked()));
  W.member("accesses_observed", Result.Provenance.accessesObserved());
  W.endObject();

  W.endObject();
  Out += '\n';
  return Out;
}

std::string herd::renderReportSarif(const Program &P,
                                    const PipelineResult &Result) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  W.member("version", ReportSarifVersion);

  W.key("runs");
  W.beginArray();
  W.beginObject();

  W.key("tool");
  W.beginObject();
  W.key("driver");
  W.beginObject();
  W.member("name", "herd");
  W.member("informationUri", "docs/REPORTS.md");
  W.key("rules");
  W.beginArray();
  struct RuleDesc {
    const char *Id;
    const char *Text;
  };
  static const RuleDesc Rules[] = {
      {"herd/datarace",
       "Two threads access the same memory location without a common lock "
       "and at least one access is a write (lockset detection)."},
      {"herd/racy-location",
       "A memory location with two accesses unordered by happens-before, "
       "at least one a write (epoch detection)."},
      {"herd/deadlock",
       "A dynamic lock-order cycle: threads acquired these locks in "
       "opposite orders during the run."},
      {"herd/deadlock-candidate",
       "A static lock-order cycle over allocation sites: a whole-program "
       "deadlock candidate."},
  };
  for (const RuleDesc &R : Rules) {
    W.beginObject();
    W.member("id", R.Id);
    W.key("shortDescription");
    W.beginObject();
    W.member("text", R.Text);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject(); // driver
  W.endObject(); // tool

  W.key("results");
  W.beginArray();
  for (const ReportEntry &E : Result.Entries) {
    W.beginObject();
    W.member("ruleId", entryRuleId(E.EntryKind));
    W.member("level", "warning");
    W.key("message");
    W.beginObject();
    W.member("text", E.Message);
    W.endObject();
    W.key("partialFingerprints");
    W.beginObject();
    W.member("herdRace/v1", hexFingerprint(E.Fingerprint));
    W.endObject();
    W.member("occurrenceCount", E.Occurrences);
    // Physical locations need both an artifact and a line; workload and
    // replay runs without line info emit message-only results (valid
    // SARIF — locations are optional).
    if (E.Line != 0 && !P.SourceName.empty()) {
      W.key("locations");
      W.beginArray();
      W.beginObject();
      W.key("physicalLocation");
      W.beginObject();
      W.key("artifactLocation");
      W.beginObject();
      W.member("uri", P.SourceName);
      W.endObject();
      W.key("region");
      W.beginObject();
      W.member("startLine", uint64_t(E.Line));
      W.endObject();
      W.endObject(); // physicalLocation
      W.endObject(); // location
      W.endArray();
    }
    W.endObject();
  }
  W.endArray();

  W.endObject(); // run
  W.endArray();  // runs
  W.endObject();
  Out += '\n';
  return Out;
}
