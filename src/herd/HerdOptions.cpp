//===- herd/HerdOptions.cpp - herd CLI argument parsing -------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "herd/HerdOptions.h"

#include <cctype>
#include <cstdlib>

using namespace herd;

const char *herd::herdUsageText() {
  return
      "usage: herd <file.mj> [options]\n"
      "  --config=<name>   full | nostatic | nodominators | nopeeling |\n"
      "                    nocache | fieldsmerged | noownership | base\n"
      "  --seed=<n>        schedule seed (default 1)\n"
      "  --shards=<n>      run the sharded detection runtime with n shard\n"
      "                    workers (default: serial runtime)\n"
      "  --cache-size=<n>  entries per per-thread access cache; power of\n"
      "                    two (default 256, the paper's Section 4.3)\n"
      "  --plan=<mode>     detector capacity planning: auto (default;\n"
      "                    pre-size from the static race set) | off (grow\n"
      "                    on demand, for A/B) | <n> (size for n expected\n"
      "                    locations; the only mode --replay can honour)\n"
      "  --sweep=<n>       run n seeds and summarize the reports\n"
      "  --record=<file>   also stream the run's events to a trace file\n"
      "                    (docs/REPLAY.md)\n"
      "  --replay=<file>   re-detect a recorded trace instead of executing\n"
      "                    the program (the program is still needed for\n"
      "                    report formatting)\n"
      "  --detector=<name> detection backend: herd (default; the paper's\n"
      "                    lockset/trie pipeline) | epoch (FastTrack-style\n"
      "                    happens-before, O(1) common case, serial live or\n"
      "                    replay; docs/DETECTORS.md) | eraser | vectorclock\n"
      "                    | naive (comparison baselines, --replay only)\n"
      "  --deadlocks       also run the lock-order deadlock detector\n"
      "  --stats[=json]    print pipeline statistics; =json emits one\n"
      "                    machine-readable herd-stats document instead of\n"
      "                    the human output (docs/OBSERVABILITY.md)\n"
      "  --trace-json=<f>  write a Chrome trace_event JSON timeline of the\n"
      "                    run's phases and shards to f (open it in\n"
      "                    chrome://tracing or Perfetto)\n"
      "  --profile         sample the interpreter's dispatch loop and print\n"
      "                    a ranked per-opcode time table\n"
      "  --dispatch=<mode> interpreter dispatch strategy: threaded (default;\n"
      "                    computed-goto over superinstruction shadow code,\n"
      "                    docs/INTERPRETER.md) | switch (the reference\n"
      "                    interpreter); reports are identical either way\n"
      "  --hook-filter=<m> hook-path fast path: on (default; inline L0\n"
      "                    access filter, devirtualized delivery, batched\n"
      "                    submission, docs/HOOKPATH.md) | off (the legacy\n"
      "                    virtual hook path, for A/B measurement); reports\n"
      "                    and traces are byte-identical either way\n"
      "  --report=<fmt>    race-report rendering: human (default) | json\n"
      "                    (one versioned herd-report document on stdout) |\n"
      "                    sarif (a SARIF 2.1.0 document for code-scanning\n"
      "                    UIs; docs/REPORTS.md)\n"
      "  --provenance=<m>  capture diagnostic provenance and enrich the\n"
      "                    reports with spawn sites, lock-acquisition\n"
      "                    sites, and recent-access history: on | off\n"
      "                    (default; zero cost when off — docs/REPORTS.md);\n"
      "                    race sets are byte-identical either way\n"
      "  --dump-ir         print the lowered MiniJ IR and exit\n"
      "  --workload=<name> analyse a built-in benchmark replica instead\n"
      "                    of a file: mtrt | tsp | sor2 | elevator | hedc\n";
}

bool herd::pickToolConfig(const std::string &Name, ToolConfig &Out) {
  if (Name == "full")
    Out = ToolConfig::full();
  else if (Name == "nostatic")
    Out = ToolConfig::noStatic();
  else if (Name == "nodominators")
    Out = ToolConfig::noDominators();
  else if (Name == "nopeeling")
    Out = ToolConfig::noPeeling();
  else if (Name == "nocache")
    Out = ToolConfig::noCache();
  else if (Name == "fieldsmerged")
    Out = ToolConfig::fieldsMerged();
  else if (Name == "noownership")
    Out = ToolConfig::noOwnership();
  else if (Name == "base")
    Out = ToolConfig::base();
  else
    return false;
  return true;
}

namespace {

HerdParse fail(std::string Message, bool ShowUsage = false) {
  HerdParse P;
  P.St = HerdParse::Status::Error;
  P.Error = std::move(Message);
  P.ShowUsage = ShowUsage;
  return P;
}

} // namespace

HerdParse herd::parseHerdCommandLine(const std::vector<std::string> &Args) {
  HerdParse Result;
  HerdOptions &O = Result.Opts;

  // Deferred flags: presets must not clobber explicit --shards /
  // --cache-size / --plan no matter the flag order, so all apply after
  // the loop.
  uint32_t Shards = 0;    // 0 = serial runtime
  uint32_t CacheSize = 0; // 0 = keep the config's default
  std::string PlanArg;    // empty = keep the config's default (auto)
  bool HaveDispatch = false;
  DispatchMode Dispatch = DispatchMode::Threaded;
  bool HaveHookFilter = false;
  bool HookFilterOn = true;
  bool HaveProvenance = false;
  bool ProvenanceOn = false;

  for (const std::string &Arg : Args) {
    if (Arg.rfind("--config=", 0) == 0) {
      if (!pickToolConfig(Arg.substr(9), O.Config))
        return fail("herd: unknown config '" + Arg.substr(9) + "'");
    } else if (Arg.rfind("--seed=", 0) == 0) {
      // strtoull silently skips whitespace and wraps negatives; only a
      // plain digit string is a seed.
      char *End = nullptr;
      O.Seed = std::strtoull(Arg.c_str() + 7, &End, 10);
      if (!std::isdigit(uint8_t(Arg[7])) || *End != '\0')
        return fail("herd: --seed expects a non-negative number, got '" +
                    Arg.substr(7) + "'");
    } else if (Arg.rfind("--shards=", 0) == 0) {
      char *End = nullptr;
      Shards = uint32_t(std::strtoul(Arg.c_str() + 9, &End, 10));
      if (End == Arg.c_str() + 9 || *End != '\0')
        return fail("herd: --shards expects a number, got '" +
                    Arg.substr(9) + "'");
    } else if (Arg.rfind("--cache-size=", 0) == 0) {
      char *End = nullptr;
      unsigned long N = std::strtoul(Arg.c_str() + 13, &End, 10);
      if (End == Arg.c_str() + 13 || *End != '\0' || N == 0 ||
          N > (1u << 20) || (N & (N - 1)) != 0)
        return fail("herd: --cache-size expects a power of two in "
                    "[1, 2^20], got '" +
                    Arg.substr(13) + "'");
      CacheSize = uint32_t(N);
    } else if (Arg.rfind("--plan=", 0) == 0) {
      PlanArg = Arg.substr(7);
      if (PlanArg != "auto" && PlanArg != "off") {
        char *End = nullptr;
        unsigned long long N = std::strtoull(PlanArg.c_str(), &End, 10);
        if (PlanArg.empty() || End == PlanArg.c_str() || *End != '\0' ||
            N == 0)
          return fail("herd: --plan expects auto, off, or a positive "
                      "location count, got '" +
                      PlanArg + "'");
      }
    } else if (Arg.rfind("--sweep=", 0) == 0) {
      // atoi would fold '--sweep=5x' to 5 and '--sweep=-3' or garbage to
      // a dead sweep of 0 — every malformed count must be an error, not a
      // silently different run.
      char *End = nullptr;
      unsigned long N = std::strtoul(Arg.c_str() + 8, &End, 10);
      if (!std::isdigit(uint8_t(Arg[8])) || *End != '\0' || N == 0 ||
          N > 1'000'000)
        return fail("herd: --sweep expects a seed count in [1, 1000000], "
                    "got '" +
                    Arg.substr(8) + "'");
      O.Sweep = int(N);
    } else if (Arg.rfind("--workload=", 0) == 0) {
      O.WorkloadName = Arg.substr(11);
    } else if (Arg.rfind("--record=", 0) == 0) {
      O.RecordPath = Arg.substr(9);
      if (O.RecordPath.empty())
        return fail("herd: --record expects a file path");
    } else if (Arg.rfind("--replay=", 0) == 0) {
      O.ReplayPath = Arg.substr(9);
      if (O.ReplayPath.empty())
        return fail("herd: --replay expects a file path");
    } else if (Arg.rfind("--detector=", 0) == 0) {
      O.Detector = Arg.substr(11);
      // Reject unknown backends here, at parse time, with the accepted
      // list — nothing downstream may silently fall back to a default.
      if (O.Detector != "herd" && O.Detector != "epoch" &&
          O.Detector != "eraser" && O.Detector != "vectorclock" &&
          O.Detector != "naive")
        return fail("herd: unknown detector '" + O.Detector +
                    "' (accepted: herd, epoch, eraser, vectorclock, naive)");
    } else if (Arg.rfind("--trace-json=", 0) == 0) {
      O.TraceJsonPath = Arg.substr(13);
      if (O.TraceJsonPath.empty())
        return fail("herd: --trace-json expects a file path");
    } else if (Arg == "--deadlocks") {
      O.Deadlocks = true;
    } else if (Arg == "--stats" || Arg == "--stats=human") {
      O.Stats = true;
    } else if (Arg == "--stats=json") {
      O.StatsJson = true;
    } else if (Arg.rfind("--stats=", 0) == 0) {
      return fail("herd: --stats expects human or json, got '" +
                  Arg.substr(8) + "'");
    } else if (Arg.rfind("--dispatch=", 0) == 0) {
      std::string Mode = Arg.substr(11);
      HaveDispatch = true;
      if (Mode == "switch")
        Dispatch = DispatchMode::Switch;
      else if (Mode == "threaded")
        Dispatch = DispatchMode::Threaded;
      else
        return fail("herd: --dispatch expects switch or threaded, got '" +
                    Mode + "'");
    } else if (Arg.rfind("--hook-filter=", 0) == 0) {
      std::string Mode = Arg.substr(14);
      HaveHookFilter = true;
      if (Mode == "on")
        HookFilterOn = true;
      else if (Mode == "off")
        HookFilterOn = false;
      else
        return fail("herd: --hook-filter expects on or off, got '" + Mode +
                    "'");
    } else if (Arg.rfind("--report=", 0) == 0) {
      O.Report = Arg.substr(9);
      // Like --detector: unknown formats die here, at parse time, with
      // the accepted list — never a silent fallback to human output.
      if (O.Report != "human" && O.Report != "json" && O.Report != "sarif")
        return fail("herd: --report expects human, json, or sarif, got '" +
                    O.Report + "'");
    } else if (Arg.rfind("--provenance=", 0) == 0) {
      std::string Mode = Arg.substr(13);
      HaveProvenance = true;
      if (Mode == "on")
        ProvenanceOn = true;
      else if (Mode == "off")
        ProvenanceOn = false;
      else
        return fail("herd: --provenance expects on or off, got '" + Mode +
                    "'");
    } else if (Arg == "--profile") {
      O.Profile = true;
    } else if (Arg == "--dump-ir") {
      O.DumpIR = true;
    } else if (Arg == "--help" || Arg == "-h") {
      Result.St = HerdParse::Status::Help;
      return Result;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return fail("herd: unknown option '" + Arg + "'", /*ShowUsage=*/true);
    } else {
      O.Path = Arg;
    }
  }

  if (O.Path.empty() && O.WorkloadName.empty())
    return fail("", /*ShowUsage=*/true);
  if (!O.ReplayPath.empty() && (O.Sweep > 0 || !O.RecordPath.empty()))
    return fail("herd: --replay cannot be combined with --sweep/--record");
  if (!O.RecordPath.empty() && O.Sweep > 0)
    return fail("herd: --record cannot be combined with --sweep");
  // The epoch backend runs through the pipeline (live serial or replay);
  // the other baselines are trace consumers only.
  if (O.Detector != "herd" && O.Detector != "epoch" && O.ReplayPath.empty())
    return fail("herd: --detector requires --replay");
  if (O.Detector == "epoch" && Shards != 0)
    return fail("herd: --detector=epoch runs the serial happens-before "
                "backend and cannot be combined with --shards");
  // Observability is per-run: a sweep aggregates many runs, and the
  // baseline replays bypass the pipeline entirely.
  if (O.Sweep > 0 && (O.Profile || O.StatsJson || !O.TraceJsonPath.empty()))
    return fail("herd: --profile/--stats=json/--trace-json cannot be "
                "combined with --sweep");
  if (O.Profile && !O.ReplayPath.empty())
    return fail("herd: --profile requires a live run, not --replay");
  if (O.Detector != "herd" && O.Detector != "epoch" &&
      (O.StatsJson || !O.TraceJsonPath.empty()))
    return fail("herd: --stats=json/--trace-json only apply to the herd "
                "detector");
  // The report document is per-run and owns stdout, exactly like
  // --stats=json: no sweeps, no competing stdout consumers, and the
  // baseline replay detectors bypass the pipeline that builds it.
  if (O.Report != "human") {
    if (O.Sweep > 0)
      return fail("herd: --report=json/--report=sarif cannot be combined "
                  "with --sweep");
    if (O.Stats || O.StatsJson || O.Profile)
      return fail("herd: --report=json/--report=sarif own stdout and "
                  "cannot be combined with --stats/--profile");
    if (O.Detector != "herd" && O.Detector != "epoch")
      return fail("herd: --report only applies to the herd and epoch "
                  "detectors");
    if (O.DumpIR)
      return fail("herd: --report=json/--report=sarif own stdout and "
                  "cannot be combined with --dump-ir");
  }

  O.Config.Shards = Shards;
  if (O.Detector == "epoch")
    O.Config.Backend = ToolConfig::DetectorBackend::Epoch;
  O.Config.RecordTracePath = O.RecordPath;
  if (CacheSize != 0)
    O.Config.CacheEntries = CacheSize;
  if (!PlanArg.empty()) {
    if (PlanArg == "auto") {
      O.Config.Plan = ToolConfig::PlanMode::Auto;
    } else if (PlanArg == "off") {
      O.Config.Plan = ToolConfig::PlanMode::Off;
    } else {
      O.Config.Plan = ToolConfig::PlanMode::Explicit;
      O.Config.PlanLocations = std::strtoull(PlanArg.c_str(), nullptr, 10);
    }
  }
  if (HaveDispatch)
    O.Config.Dispatch = Dispatch;
  if (HaveHookFilter)
    O.Config.HookFilter = HookFilterOn;
  if (HaveProvenance)
    O.Config.Provenance = ProvenanceOn;
  O.Config.Seed = O.Seed;
  O.Config.DetectDeadlocks = O.Deadlocks;

  Result.St = HerdParse::Status::Run;
  return Result;
}
