//===- herd/StatsJson.cpp - Machine-readable run statistics ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "herd/StatsJson.h"

#include "runtime/InterpProfiler.h"
#include "support/Json.h"
#include "support/Metrics.h"

using namespace herd;

namespace {

void writeDetectorStats(JsonWriter &W, const DetectorStats &D) {
  W.beginObject();
  W.member("events_in", D.EventsIn);
  W.member("owned_filtered", D.OwnedFiltered);
  W.member("weaker_filtered", D.WeakerFiltered);
  W.member("races_reported", D.RacesReported);
  W.member("locations_tracked", uint64_t(D.LocationsTracked));
  W.member("locations_shared", uint64_t(D.LocationsShared));
  W.member("trie_nodes", uint64_t(D.TrieNodes));
  W.member("lockset_memo_hits", D.LocksetMemoHits);
  W.member("lockset_memo_misses", D.LocksetMemoMisses);
  W.member("lockset_memo_evictions", D.LocksetMemoEvictions);
  W.endObject();
}

void writeRuntimeStats(JsonWriter &W, const RaceRuntimeStats &S) {
  W.beginObject();
  W.member("events_seen", S.EventsSeen);
  W.member("cache_hits", S.CacheHits);
  W.member("cache_misses", S.CacheMisses);
  W.member("cache_evictions", S.CacheEvictions);
  W.key("hook");
  W.beginObject();
  W.member("filter_enabled", S.Hook.FilterEnabled);
  W.member("filter_hits", S.Hook.FilterHits);
  W.member("filter_misses", S.Hook.FilterMisses);
  W.member("epoch_bumps", S.Hook.EpochBumps);
  W.member("key_invalidations", S.Hook.KeyInvalidations);
  W.member("batch_flushes", S.Hook.BatchFlushes);
  W.member("batched_events", S.Hook.BatchedEvents);
  W.endObject();
  W.key("detector");
  writeDetectorStats(W, S.Detector);
  W.key("per_thread_cache");
  W.beginArray();
  for (const ThreadCacheStats &T : S.PerThreadCache) {
    W.beginObject();
    W.member("thread", T.Thread);
    W.member("read_hits", T.ReadHits);
    W.member("read_misses", T.ReadMisses);
    W.member("write_hits", T.WriteHits);
    W.member("write_misses", T.WriteMisses);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

void writeMetrics(JsonWriter &W, const MetricsRegistry &Reg) {
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const auto &[Name, Value] : Reg.counterValues())
    W.member(Name, Value);
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const auto &G : Reg.gaugeValues()) {
    W.key(G.Name);
    W.beginObject();
    W.member("value", G.Value);
    W.member("max", G.Max);
    W.endObject();
  }
  W.endObject();
  W.key("histograms");
  W.beginObject();
  for (const auto &H : Reg.histogramValues()) {
    W.key(H.Name);
    W.beginObject();
    W.member("count", H.Count);
    W.member("sum", H.Sum);
    W.member("min", H.Min);
    W.member("max", H.Max);
    W.key("log2_buckets");
    W.beginArray();
    for (const auto &[Bucket, N] : H.Buckets) {
      W.beginObject();
      W.member("bucket", Bucket);
      W.member("count", N);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();
  W.endObject();
}

void writeProfile(JsonWriter &W, const InterpProfiler &Prof) {
  W.beginObject();
  W.member("sample_every", Prof.sampleEvery());
  W.member("total_dispatches", Prof.totalDispatches());
  W.member("instrumented_dispatches", Prof.instrumentedDispatches());
  W.member("total_samples", Prof.totalSamples());
  W.member("sampled_nanos", Prof.totalSampledNanos());
  W.member("hook_nanos", Prof.totalHookNanos());
  W.key("opcodes");
  W.beginArray();
  for (const InterpProfiler::Row &R : Prof.rankedRows()) {
    W.beginObject();
    W.member("opcode", opcodeName(R.Op));
    W.member("dispatches", R.Dispatches);
    W.member("samples", R.Samples);
    W.member("sampled_nanos", R.SampledNanos);
    W.member("hook_nanos", R.HookNanos);
    W.member("estimated_nanos", R.EstimatedNanos);
    W.endObject();
  }
  W.endArray();
  W.key("pairs");
  W.beginArray();
  for (const InterpProfiler::PairRow &R : Prof.rankedPairs()) {
    W.beginObject();
    W.member("first", opcodeName(R.First));
    W.member("second", opcodeName(R.Second));
    W.member("count", R.Count);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

} // namespace

std::string herd::renderStatsJson(const PipelineResult &Result,
                                  const MetricsRegistry *Metrics,
                                  const InterpProfiler *Prof) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", StatsSchemaName);
  W.member("version", StatsSchemaVersion);

  W.key("run");
  W.beginObject();
  W.member("ok", Result.Run.Ok);
  W.member("error", Result.Run.Error);
  W.member("instructions", Result.Run.InstructionsExecuted);
  W.member("access_events", Result.Run.AccessEvents);
  W.member("context_switches", Result.Run.ContextSwitches);
  W.member("threads_created", Result.Run.ThreadsCreated);
  W.member("output_values", uint64_t(Result.Run.Output.size()));
  W.endObject();

  W.key("timings");
  W.beginObject();
  W.member("analysis_seconds", Result.AnalysisSeconds);
  W.member("exec_seconds", Result.ExecSeconds);
  W.endObject();

  W.key("static");
  W.beginObject();
  W.member("reachable_access_statements",
           uint64_t(Result.Static.ReachableAccessStatements));
  W.member("thread_local_filtered",
           uint64_t(Result.Static.ThreadLocalFiltered));
  W.member("thread_specific_filtered",
           uint64_t(Result.Static.ThreadSpecificFiltered));
  W.member("same_thread_filtered",
           uint64_t(Result.Static.SameThreadFiltered));
  W.member("common_sync_filtered",
           uint64_t(Result.Static.CommonSyncFiltered));
  W.member("race_set_size", uint64_t(Result.Static.RaceSetSize));
  W.member("may_race_pairs", uint64_t(Result.Static.MayRacePairs));
  W.endObject();

  W.key("instrumentation");
  W.beginObject();
  W.member("traces_inserted", uint64_t(Result.Instr.TracesInserted));
  W.member("traces_removed", uint64_t(Result.Instr.TracesRemoved));
  W.member("loops_peeled", uint64_t(Result.Instr.LoopsPeeled));
  W.endObject();

  W.key("dispatch");
  W.beginObject();
  W.member("mode", dispatchModeName(Result.Dispatch));
  W.key("fused_sites");
  W.beginObject();
  W.member("const_binop", Result.Fusion.ConstBinOpSites);
  W.member("const_putfield", Result.Fusion.ConstPutFieldSites);
  W.member("get_binop_put", Result.Fusion.GetBinPutSites);
  W.member("binop_branch", Result.Fusion.BinOpBranchSites);
  W.member("getfield_binop", Result.Fusion.GetFieldBinOpSites);
  W.member("binop_putfield", Result.Fusion.BinOpPutFieldSites);
  W.member("binop_move", Result.Fusion.BinOpMoveSites);
  W.member("total", Result.Fusion.sites());
  W.endObject();
  W.key("fused_exec");
  W.beginObject();
  W.member("const_binop", Result.Run.Fused.ConstBinOp);
  W.member("const_putfield", Result.Run.Fused.ConstPutField);
  W.member("get_binop_put", Result.Run.Fused.GetBinPut);
  W.member("binop_branch", Result.Run.Fused.BinOpBranch);
  W.member("getfield_binop", Result.Run.Fused.GetFieldBinOp);
  W.member("binop_putfield", Result.Run.Fused.BinOpPutField);
  W.member("binop_move", Result.Run.Fused.BinOpMove);
  W.member("total", Result.Run.Fused.total());
  W.endObject();
  W.key("batch_retirement");
  W.beginObject();
  W.member("planned_blocks", Result.Fusion.BatchBlocks);
  W.member("planned_steps", Result.Fusion.BatchSteps);
  W.member("hits", Result.Run.BlockRetireHits);
  W.member("retired_steps", Result.Run.BlockRetiredSteps);
  W.endObject();
  W.endObject();

  W.key("runtime");
  writeRuntimeStats(W, Result.Stats);

  W.key("shards");
  W.beginArray();
  for (const ShardStats &S : Result.ShardBreakdown) {
    W.beginObject();
    W.member("events_ingested", S.EventsIngested);
    W.member("batches_ingested", S.BatchesIngested);
    W.member("max_queue_depth_batches", uint64_t(S.MaxQueueDepthBatches));
    W.key("detector");
    writeDetectorStats(W, S.Detector);
    W.endObject();
  }
  W.endArray();

  W.key("races");
  W.beginArray();
  for (const std::string &Race : Result.FormattedRaces)
    W.value(Race);
  W.endArray();

  W.key("deadlocks");
  W.beginArray();
  for (const std::string &Line : Result.FormattedDeadlocks)
    W.value(Line);
  W.endArray();

  W.key("trace");
  W.beginObject();
  W.member("ok", Result.Trace.Ok);
  W.member("error", Result.Trace.Error);
  W.member("records", Result.TraceRecords);
  W.member("bytes", Result.TraceBytes);
  W.endObject();

  // Additive within schema v1: the bounded reporter's dedup/truncation
  // counters and the provenance capture summary (docs/REPORTS.md).
  W.key("report");
  W.beginObject();
  W.member("entries", uint64_t(Result.Entries.size()));
  W.member("total_reported", Result.Reports.totalReported());
  W.member("distinct_fingerprints", uint64_t(Result.Reports.groups().size()));
  W.member("dropped_records", Result.Reports.droppedRecords());
  W.member("reporter_capacity", uint64_t(Result.Reports.capacity()));
  W.member("provenance_enabled", Result.ProvenanceOn);
  W.member("provenance_threads",
           uint64_t(Result.Provenance.threadsTracked()));
  W.member("provenance_locks", uint64_t(Result.Provenance.locksTracked()));
  W.member("provenance_accesses", Result.Provenance.accessesObserved());
  W.endObject();

  if (Result.EpochBackend) {
    W.key("epoch");
    W.beginObject();
    W.member("events", Result.Epoch.Events);
    W.member("reads", Result.Epoch.Reads);
    W.member("writes", Result.Epoch.Writes);
    W.member("same_epoch_reads", Result.Epoch.SameEpochReads);
    W.member("same_epoch_writes", Result.Epoch.SameEpochWrites);
    W.member("read_inflations", Result.Epoch.ReadInflations);
    W.member("shared_collapses", Result.Epoch.SharedCollapses);
    W.member("races_reported", Result.Epoch.RacesReported);
    W.member("locations_tracked", Result.Epoch.LocationsTracked);
    W.member("threads_seen", Result.Epoch.ThreadsSeen);
    W.member("clock_rows_fresh", Result.Epoch.ClockRowsFresh);
    W.member("clock_rows_reused", Result.Epoch.ClockRowsReused);
    W.endObject();
  }

  if (Metrics) {
    W.key("metrics");
    writeMetrics(W, *Metrics);
  }
  if (Prof) {
    W.key("profile");
    writeProfile(W, *Prof);
  }

  W.endObject();
  Out += '\n';
  return Out;
}
