//===- analysis/PointsTo.h - May points-to analysis -------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-insensitive, whole-program may points-to analysis of
/// Section 5.3.  A distinct abstract object is created per allocation site;
/// the analysis computes, for each register, field and array, the set of
/// abstract objects it may point to along some path.
///
/// Reachability is computed in the same fixpoint: direct calls from
/// reachable methods make the callee reachable, and ThreadStart on a
/// register makes the run() methods of its points-to classes reachable
/// (the ICFG's interthread start edges, Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_ANALYSIS_POINTSTO_H
#define HERD_ANALYSIS_POINTSTO_H

#include "ir/Program.h"
#include "support/SortedIdSet.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace herd {

/// A set of abstract objects (allocation sites).
using ObjSet = SortedIdSet<AllocSiteId>;

/// Whole-program may points-to facts.
class PointsToAnalysis {
public:
  explicit PointsToAnalysis(const Program &P);

  /// Runs to fixpoint; must be called once before queries.
  void run();

  /// MayPT of register \p Reg in method \p M (flow-insensitive: one set per
  /// register over the whole method).
  const ObjSet &pointsTo(MethodId M, RegId Reg) const;

  const ObjSet &staticFieldPointsTo(FieldId Field) const;
  const ObjSet &fieldPointsTo(AllocSiteId Site, FieldId Field) const;
  const ObjSet &elementPointsTo(AllocSiteId Site) const;
  const ObjSet &returnPointsTo(MethodId M) const;

  /// Methods reachable from main, including started run() methods.
  bool isMethodReachable(MethodId M) const {
    return Reachable[M.index()] != 0;
  }

  /// run() methods that some ThreadStart may invoke: the thread-root nodes
  /// of the ICFG (besides main).
  const std::vector<MethodId> &startedRunMethods() const {
    return StartedRuns;
  }

  /// Thread abstract objects that may be started through each run method.
  const ObjSet &threadObjectsOf(MethodId RunMethod) const;

  /// Visits every non-empty (site, field) points-to set.  Used by the
  /// escape analysis to close over heap reachability.
  void forEachFieldPts(
      const std::function<void(AllocSiteId, FieldId, const ObjSet &)> &Fn)
      const;

private:
  bool applyInstr(MethodId M, const Instr &I);
  bool markReachable(MethodId M);

  const Program &P;
  std::vector<std::vector<ObjSet>> RegPts;      ///< [method][reg]
  std::vector<ObjSet> ReturnPts;                ///< [method]
  std::vector<ObjSet> StaticPts;                ///< [field]
  std::unordered_map<uint64_t, ObjSet> FieldPts; ///< (site, field) packed
  std::vector<ObjSet> ElemPts;                  ///< [alloc site]
  std::vector<uint8_t> Reachable;               ///< [method]
  std::vector<MethodId> StartedRuns;
  std::vector<ObjSet> RunThreadObjs;            ///< [method]
  static const ObjSet EmptySet;
};

} // namespace herd

#endif // HERD_ANALYSIS_POINTSTO_H
