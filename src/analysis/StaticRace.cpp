//===- analysis/StaticRace.cpp - Static datarace analysis -----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticRace.h"

#include "analysis/CFG.h"
#include "support/Metrics.h"

using namespace herd;

namespace {

/// One access statement prepared for pairing.
struct AccessStmt {
  InstrRef Ref;
  AccessKind Kind = AccessKind::Read;
  bool IsArray = false;
  bool IsStatic = false;
  FieldId Field;        ///< valid for field/static accesses
  const ObjSet *BasePts = nullptr; ///< may points-to of the base object
};

bool accMayConflict(const AccessStmt &X, const AccessStmt &Y) {
  // At least one write (race condition 1's "at least one write" half).
  if (X.Kind != AccessKind::Write && Y.Kind != AccessKind::Write)
    return false;
  if (X.IsArray != Y.IsArray)
    return false;
  if (X.IsArray)
    return X.BasePts->intersects(*Y.BasePts);
  // Field accesses conflict only on the same field (Equation 2's
  // field(x) = field(y)).
  if (X.Field != Y.Field)
    return false;
  if (X.IsStatic || Y.IsStatic) {
    // The same static field is one location; a static and an instance
    // access never share a field id in MiniJ.
    return X.IsStatic && Y.IsStatic;
  }
  return X.BasePts->intersects(*Y.BasePts);
}

} // namespace

StaticRaceAnalysis::StaticRaceAnalysis(const Program &P) : P(P) {}
StaticRaceAnalysis::~StaticRaceAnalysis() = default;

void StaticRaceAnalysis::run(MetricsRegistry *Metrics) {
  {
    Span S(Metrics, "points-to", "analysis");
    PT = std::make_unique<PointsToAnalysis>(P);
    PT->run();
  }
  {
    Span S(Metrics, "single-instance", "analysis");
    SI = std::make_unique<SingleInstanceAnalysis>(P, *PT);
    SI->run();
  }
  {
    Span S(Metrics, "thread-analysis", "analysis");
    Threads = std::make_unique<ThreadAnalysis>(P, *PT, *SI);
    Threads->run();
  }
  {
    Span S(Metrics, "sync-analysis", "analysis");
    Sync = std::make_unique<SyncAnalysis>(P, *PT, *SI);
    Sync->run();
  }
  {
    Span S(Metrics, "escape", "analysis");
    Esc = std::make_unique<EscapeAnalysis>(P, *PT);
    Esc->run();
  }
  Span PairSpan(Metrics, "race-pairs", "analysis");

  // Collect reachable access statements, applying the Section 5.4 filters.
  std::vector<AccessStmt> Accesses;
  for (size_t MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M{uint32_t(MI)};
    if (!PT->isMethodReachable(M))
      continue;
    CFG Cfg(P, M);
    const Method &Body = P.method(M);
    for (size_t BI = 0; BI != Body.Blocks.size(); ++BI) {
      BlockId Block{uint32_t(BI)};
      if (!Cfg.isReachable(Block))
        continue;
      const std::vector<Instr> &Instrs = Body.Blocks[BI].Instrs;
      for (size_t II = 0; II != Instrs.size(); ++II) {
        const Instr &I = Instrs[II];
        AccessStmt A;
        A.Ref = InstrRef{M, Block, uint32_t(II)};
        switch (I.Op) {
        case Opcode::GetField:
        case Opcode::PutField: {
          A.Kind = I.Op == Opcode::PutField ? AccessKind::Write
                                            : AccessKind::Read;
          A.Field = I.Field;
          A.BasePts = &PT->pointsTo(M, I.A);
          break;
        }
        case Opcode::GetStatic:
        case Opcode::PutStatic:
          A.Kind = I.Op == Opcode::PutStatic ? AccessKind::Write
                                             : AccessKind::Read;
          A.Field = I.Field;
          A.IsStatic = true;
          break;
        case Opcode::ALoad:
        case Opcode::AStore:
          A.Kind =
              I.Op == Opcode::AStore ? AccessKind::Write : AccessKind::Read;
          A.IsArray = true;
          A.BasePts = &PT->pointsTo(M, I.A);
          break;
        default:
          continue;
        }
        ++Stats.ReachableAccessStatements;

        // Thread-specific fields never race (Section 5.4).
        if (!A.IsArray && !A.IsStatic &&
            Esc->isThreadSpecificField(A.Field)) {
          ++Stats.ThreadSpecificFiltered;
          continue;
        }
        // Accesses whose every possible target is thread-local never race.
        if (A.BasePts) {
          bool AnyEscapes = A.BasePts->empty(); // no targets: keep (null PEI)
          for (AllocSiteId Site : *A.BasePts)
            AnyEscapes |= Esc->escapes(Site);
          if (!AnyEscapes && !A.BasePts->empty()) {
            ++Stats.ThreadLocalFiltered;
            continue;
          }
        }
        Accesses.push_back(A);
      }
    }
  }

  // Pair every conflicting access (Equation 1).  O(A²) in the number of
  // surviving access statements, which the filters keep small.
  for (size_t XI = 0; XI != Accesses.size(); ++XI) {
    for (size_t YI = XI; YI != Accesses.size(); ++YI) {
      const AccessStmt &X = Accesses[XI];
      const AccessStmt &Y = Accesses[YI];
      if (!accMayConflict(X, Y))
        continue;
      if (Threads->mustSameThread(X.Ref.Method, Y.Ref.Method)) {
        ++Stats.SameThreadFiltered;
        continue;
      }
      if (Sync->mustCommonSync(X.Ref, Y.Ref)) {
        ++Stats.CommonSyncFiltered;
        continue;
      }
      ++Stats.MayRacePairs;
      Pairs.emplace_back(X.Ref, Y.Ref);
      RaceSet.insert(X.Ref);
      RaceSet.insert(Y.Ref);
    }
  }
  Stats.RaceSetSize = RaceSet.size();
}

std::vector<InstrRef> StaticRaceAnalysis::mayRaceWith(
    const InstrRef &Ref) const {
  std::vector<InstrRef> Result;
  for (const auto &[A, B] : Pairs) {
    if (A == Ref)
      Result.push_back(B);
    else if (B == Ref)
      Result.push_back(A);
  }
  return Result;
}
