//===- analysis/SyncAnalysis.cpp - MustCommonSync -------------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/SyncAnalysis.h"

#include <deque>
#include <map>

using namespace herd;

const ObjSet SyncAnalysis::EmptySet;

SyncAnalysis::SyncAnalysis(const Program &P, const PointsToAnalysis &PT,
                           const SingleInstanceAnalysis &SI)
    : P(P), PT(PT), SI(SI) {
  Context.resize(P.numMethods());
  ContextTop.assign(P.numMethods(), 1);
}

const ObjSet &SyncAnalysis::mustSync(const InstrRef &Ref) const {
  auto It = PerInstr.find(Ref);
  return It == PerInstr.end() ? EmptySet : It->second;
}

void SyncAnalysis::run() {
  size_t NumMethods = P.numMethods();

  // Pass 1: per-instruction *local* must-sync sets — the union of the must
  // points-to of every enclosing monitor region (plus `this` for
  // synchronized methods).  Monitor stacks are consistent at joins (the
  // verifier guarantees it), so a BFS carrying the stack suffices.
  for (size_t MI = 0; MI != NumMethods; ++MI) {
    MethodId M{uint32_t(MI)};
    if (!PT.isMethodReachable(M))
      continue;
    const Method &Body = P.method(M);

    ObjSet MethodBase;
    if (Body.IsSynchronized)
      MethodBase = SI.mustPointsTo(M, RegId(0));

    using Stack = std::vector<ObjSet>;
    std::map<uint32_t, Stack> EntryStacks;
    std::deque<BlockId> Work;
    EntryStacks[0] = {};
    Work.push_back(BlockId(0));
    std::vector<uint8_t> Visited(Body.Blocks.size(), 0);
    Visited[0] = 1;

    while (!Work.empty()) {
      BlockId BId = Work.front();
      Work.pop_front();
      Stack Current = EntryStacks[BId.index()];
      const BasicBlock &Block = Body.block(BId);
      for (size_t II = 0; II != Block.Instrs.size(); ++II) {
        const Instr &I = Block.Instrs[II];
        if (I.Op == Opcode::MonitorEnter)
          Current.push_back(SI.mustPointsTo(M, I.A));
        else if (I.Op == Opcode::MonitorExit && !Current.empty())
          Current.pop_back();
        ObjSet Local = MethodBase;
        for (const ObjSet &Held : Current)
          Local.unionWith(Held);
        PerInstr[InstrRef{M, BId, uint32_t(II)}] = std::move(Local);
      }
      std::vector<BlockId> Succs;
      Block.appendSuccessors(Succs);
      for (BlockId Succ : Succs) {
        if (Visited[Succ.index()])
          continue;
        Visited[Succ.index()] = 1;
        EntryStacks[Succ.index()] = Current;
        Work.push_back(Succ);
      }
    }
  }

  // Pass 2: per-method contexts.  Roots (main and every started run) enter
  // with no locks guaranteed; other methods meet (intersect) the must-sync
  // sets of all their reachable call sites.  Decreasing from ⊤; terminates.
  ContextTop[P.MainMethod.index()] = 0;
  for (MethodId Run : PT.startedRunMethods())
    ContextTop[Run.index()] = 0;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t MI = 0; MI != NumMethods; ++MI) {
      MethodId M{uint32_t(MI)};
      if (!PT.isMethodReachable(M) || ContextTop[MI])
        continue;
      const Method &Body = P.method(M);
      for (size_t BI = 0; BI != Body.Blocks.size(); ++BI) {
        const BasicBlock &Block = Body.Blocks[BI];
        for (size_t II = 0; II != Block.Instrs.size(); ++II) {
          const Instr &I = Block.Instrs[II];
          if (I.Op != Opcode::Call)
            continue;
          InstrRef Site{M, BlockId(uint32_t(BI)), uint32_t(II)};
          auto LocalIt = PerInstr.find(Site);
          if (LocalIt == PerInstr.end())
            continue; // unreachable within the method
          ObjSet AtCall = Context[MI];
          AtCall.unionWith(LocalIt->second);
          uint32_t Callee = I.Callee.index();
          if (ContextTop[Callee]) {
            ContextTop[Callee] = 0;
            Context[Callee] = std::move(AtCall);
            Changed = true;
          } else if (Context[Callee].intersectWith(AtCall)) {
            Changed = true;
          }
        }
      }
    }
  }

  // Pass 3: fold each method's context into its statements' local sets.
  for (auto &[Ref, Local] : PerInstr) {
    uint32_t MI = Ref.Method.index();
    if (!ContextTop[MI])
      Local.unionWith(Context[MI]);
  }
}
