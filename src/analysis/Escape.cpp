//===- analysis/Escape.cpp - Escape + thread-specific analysis ------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Escape.h"

using namespace herd;

EscapeAnalysis::EscapeAnalysis(const Program &P, const PointsToAnalysis &PT)
    : P(P), PT(PT) {
  Escaping.assign(P.numAllocSites(), 0);
  TSMethod.assign(P.numMethods(), 0);
  TSField.assign(P.numFields(), 0);
}

size_t EscapeAnalysis::numEscaping() const {
  size_t Count = 0;
  for (uint8_t E : Escaping)
    Count += E;
  return Count;
}

void EscapeAnalysis::run() {
  // --- Escaping objects -------------------------------------------------
  // Seeds: anything a static field may point to, and every started thread
  // object (the thread and its creator both see it).
  std::vector<AllocSiteId> Work;
  auto MarkEscaping = [&](AllocSiteId Site) {
    if (Escaping[Site.index()])
      return;
    Escaping[Site.index()] = 1;
    Work.push_back(Site);
  };

  for (size_t FI = 0; FI != P.numFields(); ++FI)
    for (AllocSiteId Site :
         PT.staticFieldPointsTo(FieldId(uint32_t(FI))))
      MarkEscaping(Site);
  for (MethodId Run : PT.startedRunMethods())
    for (AllocSiteId Site : PT.threadObjectsOf(Run))
      MarkEscaping(Site);

  // Closure over heap reachability: fields and elements of escaping
  // objects escape.  (Iterating the full field map per step is fine at
  // MiniJ program sizes.)
  while (!Work.empty()) {
    Work.clear();
    size_t Before = numEscaping();
    PT.forEachFieldPts(
        [&](AllocSiteId Base, FieldId, const ObjSet &Targets) {
          if (!Escaping[Base.index()])
            return;
          for (AllocSiteId Target : Targets)
            MarkEscaping(Target);
        });
    for (size_t SI = 0; SI != P.numAllocSites(); ++SI)
      if (Escaping[SI])
        for (AllocSiteId Target :
             PT.elementPointsTo(AllocSiteId(uint32_t(SI))))
          MarkEscaping(Target);
    if (numEscaping() == Before)
      break;
  }

  // --- Thread-specific methods ------------------------------------------
  // Collect direct call sites per callee: (caller, passes caller's `this`).
  struct CallInfo {
    MethodId Caller;
    bool PassesThisThrough;
  };
  std::vector<std::vector<CallInfo>> Callers(P.numMethods());
  for (size_t MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M{uint32_t(MI)};
    if (!PT.isMethodReachable(M))
      continue;
    const Method &Caller = P.method(M);
    bool CallerIsInstance = !Caller.IsStatic;
    for (const BasicBlock &Block : Caller.Blocks)
      for (const Instr &I : Block.Instrs)
        if (I.Op == Opcode::Call) {
          bool Passes = CallerIsInstance && !I.Args.empty() &&
                        I.Args[0] == RegId(0);
          Callers[I.Callee.index()].push_back({M, Passes});
        }
  }

  // Thread classes: classes of started run methods.
  std::vector<uint8_t> IsThreadClass(P.numClasses(), 0);
  for (MethodId Run : PT.startedRunMethods()) {
    ClassId Cls = P.method(Run).Owner;
    if (Cls.isValid())
      IsThreadClass[Cls.index()] = 1;
    // A run() that is only ever invoked by thread start is the base case.
    if (Callers[Run.index()].empty())
      TSMethod[Run.index()] = 1;
  }

  // Grow: an instance method of a thread class whose callers are all
  // thread-specific methods of the same class passing `this` through.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t MI = 0; MI != P.numMethods(); ++MI) {
      MethodId M{uint32_t(MI)};
      if (TSMethod[MI] || !PT.isMethodReachable(M))
        continue;
      const Method &Body = P.method(M);
      if (Body.IsStatic || !Body.Owner.isValid() ||
          !IsThreadClass[Body.Owner.index()])
        continue;
      if (Callers[MI].empty())
        continue; // only reachable via start: handled above for run()
      bool AllTS = true;
      for (const CallInfo &CI : Callers[MI]) {
        if (!TSMethod[CI.Caller.index()] || !CI.PassesThisThrough ||
            P.method(CI.Caller).Owner != Body.Owner) {
          AllTS = false;
          break;
        }
      }
      if (AllTS) {
        TSMethod[MI] = 1;
        Changed = true;
      }
    }
  }

  // --- Thread-specific fields -------------------------------------------
  // A field of a thread class is thread-specific when every reachable
  // access goes through `this` (r0) inside a thread-specific method of the
  // owning class.
  std::vector<uint8_t> Candidate(P.numFields(), 0);
  for (size_t FI = 0; FI != P.numFields(); ++FI) {
    const FieldDecl &F = P.field(FieldId(uint32_t(FI)));
    Candidate[FI] =
        !F.IsStatic && F.Owner.isValid() && IsThreadClass[F.Owner.index()];
  }
  for (size_t MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M{uint32_t(MI)};
    if (!PT.isMethodReachable(M))
      continue;
    const Method &Body = P.method(M);
    for (const BasicBlock &Block : Body.Blocks)
      for (const Instr &I : Block.Instrs) {
        if (I.Op != Opcode::GetField && I.Op != Opcode::PutField)
          continue;
        if (!Candidate[I.Field.index()])
          continue;
        bool ViaThisInTS = TSMethod[MI] && I.A == RegId(0) &&
                           Body.Owner == P.field(I.Field).Owner;
        if (!ViaThisInTS)
          Candidate[I.Field.index()] = 0;
      }
  }
  TSField = Candidate;
}
