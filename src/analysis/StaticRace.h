//===- analysis/StaticRace.h - Static datarace analysis ---------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static datarace analysis of Section 5: computes the *static datarace
/// set*, the statements that may participate in a datarace.  A statement
/// outside the set can never race and needs no instrumentation (Figure 1's
/// first phase).
///
/// For access statements x, y (Equation 1):
///
///   IsMayRace(x, y) = AccMayConflict(x, y)           [Eq 2: may points-to]
///                   ∧ ¬MustSameThread(x, y)          [Eq 3: thread roots]
///                   ∧ ¬MustCommonSync(x, y)          [Eq 4: must locks]
///
/// augmented with the Section 5.4 filters: accesses to non-escaping
/// (thread-local) objects and to thread-specific fields are excluded before
/// pairing.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_ANALYSIS_STATICRACE_H
#define HERD_ANALYSIS_STATICRACE_H

#include "analysis/Escape.h"
#include "analysis/PointsTo.h"
#include "analysis/SingleInstance.h"
#include "analysis/SyncAnalysis.h"
#include "analysis/ThreadAnalysis.h"
#include "ir/InstrRef.h"
#include "ir/Program.h"

#include <memory>
#include <unordered_set>

namespace herd {

class MetricsRegistry;

/// Statistics from one static analysis run, reported by the Table 2
/// harness to show how much instrumentation the static phase removes.
struct StaticRaceStats {
  size_t ReachableAccessStatements = 0;
  size_t ThreadLocalFiltered = 0;   ///< removed by escape analysis
  size_t ThreadSpecificFiltered = 0;
  size_t SameThreadFiltered = 0;    ///< pairs pruned by Eq 3 (statements)
  size_t CommonSyncFiltered = 0;
  size_t RaceSetSize = 0;           ///< statements needing instrumentation
  size_t MayRacePairs = 0;
};

/// Runs the whole static pipeline (points-to, single-instance, thread,
/// sync, escape) and computes the static datarace set.
class StaticRaceAnalysis {
public:
  explicit StaticRaceAnalysis(const Program &P);
  ~StaticRaceAnalysis();

  /// With a registry, each constituent pass records an "analysis" span
  /// ("points-to", "single-instance", ..., "race-pairs") for
  /// `herd --trace-json`; a null registry records nothing.
  void run(MetricsRegistry *Metrics = nullptr);

  /// True when the access statement may participate in a race and must be
  /// instrumented.
  bool isInRaceSet(const InstrRef &Ref) const {
    return RaceSet.count(Ref) != 0;
  }

  const std::unordered_set<InstrRef> &raceSet() const { return RaceSet; }
  const StaticRaceStats &stats() const { return Stats; }

  /// For debugging and reports: the statements that may race with \p Ref
  /// (Section 2.6 mentions this as debugging aid).
  std::vector<InstrRef> mayRaceWith(const InstrRef &Ref) const;

  const PointsToAnalysis &pointsTo() const { return *PT; }
  const EscapeAnalysis &escape() const { return *Esc; }
  const SyncAnalysis &sync() const { return *Sync; }
  const SingleInstanceAnalysis &singleInstance() const { return *SI; }

private:
  const Program &P;
  std::unique_ptr<PointsToAnalysis> PT;
  std::unique_ptr<SingleInstanceAnalysis> SI;
  std::unique_ptr<ThreadAnalysis> Threads;
  std::unique_ptr<SyncAnalysis> Sync;
  std::unique_ptr<EscapeAnalysis> Esc;
  std::unordered_set<InstrRef> RaceSet;
  std::vector<std::pair<InstrRef, InstrRef>> Pairs;
  StaticRaceStats Stats;
};

} // namespace herd

#endif // HERD_ANALYSIS_STATICRACE_H
