//===- analysis/ThreadAnalysis.h - MustSameThread ---------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MustSameThread computation of Section 5.3, Equation 3.
///
/// ThStart(u) is the set of thread-root nodes (main, plus every started
/// run()) from which an *intrathread* ICFG path — i.e. a chain of ordinary
/// calls, never a start edge — reaches u's method.  MustThread(u) is the
/// intersection over those roots of the must points-to of the root's
/// `this`; main gets a synthetic main-thread abstract object.  Two
/// statements must execute on the same thread when their MustThread sets
/// intersect.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_ANALYSIS_THREADANALYSIS_H
#define HERD_ANALYSIS_THREADANALYSIS_H

#include "analysis/PointsTo.h"
#include "analysis/SingleInstance.h"
#include "ir/Program.h"

#include <vector>

namespace herd {

class ThreadAnalysis {
public:
  /// The synthetic abstract object for the initial (main) thread.
  static AllocSiteId mainThreadObject() { return AllocSiteId(0xFFFFFF00); }

  ThreadAnalysis(const Program &P, const PointsToAnalysis &PT,
                 const SingleInstanceAnalysis &SI);

  void run();

  /// MustThread of every statement in \p M (per-method granularity:
  /// ThStart depends only on the enclosing method).
  const ObjSet &mustThread(MethodId M) const {
    return MustThreadSets[M.index()];
  }

  /// Equation 3: statements in \p A and \p B are always executed by the
  /// same thread.
  bool mustSameThread(MethodId A, MethodId B) const {
    return MustThreadSets[A.index()].intersects(MustThreadSets[B.index()]);
  }

private:
  const Program &P;
  const PointsToAnalysis &PT;
  const SingleInstanceAnalysis &SI;
  std::vector<ObjSet> MustThreadSets; ///< [method]
};

} // namespace herd

#endif // HERD_ANALYSIS_THREADANALYSIS_H
