//===- analysis/PointsTo.cpp - May points-to analysis ---------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"

#include <cassert>

using namespace herd;

const ObjSet PointsToAnalysis::EmptySet;

namespace {

uint64_t packSiteField(AllocSiteId Site, FieldId Field) {
  return (uint64_t(Site.index()) << 32) | Field.index();
}

} // namespace

PointsToAnalysis::PointsToAnalysis(const Program &P) : P(P) {
  RegPts.resize(P.numMethods());
  for (size_t MI = 0; MI != P.numMethods(); ++MI)
    RegPts[MI].resize(P.method(MethodId(uint32_t(MI))).NumRegs);
  ReturnPts.resize(P.numMethods());
  StaticPts.resize(P.numFields());
  ElemPts.resize(P.numAllocSites());
  Reachable.assign(P.numMethods(), 0);
  RunThreadObjs.resize(P.numMethods());
}

const ObjSet &PointsToAnalysis::pointsTo(MethodId M, RegId Reg) const {
  if (!Reg.isValid() || Reg.index() >= RegPts[M.index()].size())
    return EmptySet;
  return RegPts[M.index()][Reg.index()];
}

const ObjSet &PointsToAnalysis::staticFieldPointsTo(FieldId Field) const {
  return StaticPts[Field.index()];
}

const ObjSet &PointsToAnalysis::fieldPointsTo(AllocSiteId Site,
                                              FieldId Field) const {
  auto It = FieldPts.find(packSiteField(Site, Field));
  return It == FieldPts.end() ? EmptySet : It->second;
}

const ObjSet &PointsToAnalysis::elementPointsTo(AllocSiteId Site) const {
  return ElemPts[Site.index()];
}

const ObjSet &PointsToAnalysis::returnPointsTo(MethodId M) const {
  return ReturnPts[M.index()];
}

const ObjSet &PointsToAnalysis::threadObjectsOf(MethodId RunMethod) const {
  return RunThreadObjs[RunMethod.index()];
}

void PointsToAnalysis::forEachFieldPts(
    const std::function<void(AllocSiteId, FieldId, const ObjSet &)> &Fn)
    const {
  for (const auto &[Key, Set] : FieldPts) {
    if (Set.empty())
      continue;
    Fn(AllocSiteId(uint32_t(Key >> 32)), FieldId(uint32_t(Key)), Set);
  }
}

bool PointsToAnalysis::markReachable(MethodId M) {
  if (Reachable[M.index()])
    return false;
  Reachable[M.index()] = 1;
  return true;
}

bool PointsToAnalysis::applyInstr(MethodId M, const Instr &I) {
  std::vector<ObjSet> &Regs = RegPts[M.index()];
  bool Changed = false;
  switch (I.Op) {
  case Opcode::New:
  case Opcode::NewArray:
    Changed |= Regs[I.Dst.index()].insert(I.AllocSite);
    break;
  case Opcode::Move:
    Changed |= Regs[I.Dst.index()].unionWith(Regs[I.A.index()]);
    break;
  case Opcode::GetField:
    for (AllocSiteId Site : Regs[I.A.index()])
      Changed |=
          Regs[I.Dst.index()].unionWith(fieldPointsTo(Site, I.Field));
    break;
  case Opcode::PutField:
    for (AllocSiteId Site : Regs[I.A.index()])
      Changed |= FieldPts[packSiteField(Site, I.Field)].unionWith(
          Regs[I.B.index()]);
    break;
  case Opcode::GetStatic:
    Changed |= Regs[I.Dst.index()].unionWith(StaticPts[I.Field.index()]);
    break;
  case Opcode::PutStatic:
    Changed |= StaticPts[I.Field.index()].unionWith(Regs[I.A.index()]);
    break;
  case Opcode::ALoad:
    for (AllocSiteId Site : Regs[I.A.index()])
      Changed |= Regs[I.Dst.index()].unionWith(ElemPts[Site.index()]);
    break;
  case Opcode::AStore:
    for (AllocSiteId Site : Regs[I.A.index()])
      Changed |= ElemPts[Site.index()].unionWith(Regs[I.C.index()]);
    break;
  case Opcode::Call: {
    Changed |= markReachable(I.Callee);
    std::vector<ObjSet> &CalleeRegs = RegPts[I.Callee.index()];
    for (size_t N = 0; N != I.Args.size(); ++N)
      Changed |= CalleeRegs[N].unionWith(Regs[I.Args[N].index()]);
    if (I.Dst.isValid())
      Changed |= Regs[I.Dst.index()].unionWith(ReturnPts[I.Callee.index()]);
    break;
  }
  case Opcode::Return:
    if (I.A.isValid())
      Changed |= ReturnPts[M.index()].unionWith(Regs[I.A.index()]);
    break;
  case Opcode::ThreadStart:
    // The ICFG's start edge: starting an object of class C transfers the
    // thread object into C::run's `this`.
    for (AllocSiteId Site : Regs[I.A.index()]) {
      ClassId Cls = P.allocSite(Site).Class;
      if (!Cls.isValid())
        continue;
      MethodId Run = P.classDecl(Cls).RunMethod;
      if (!Run.isValid())
        continue;
      if (markReachable(Run)) {
        Changed = true;
        StartedRuns.push_back(Run);
      }
      Changed |= RegPts[Run.index()][0].insert(Site);
      Changed |= RunThreadObjs[Run.index()].insert(Site);
    }
    break;
  default:
    break;
  }
  return Changed;
}

void PointsToAnalysis::run() {
  assert(P.MainMethod.isValid() && "points-to requires a main method");
  markReachable(P.MainMethod);
  // Chaotic iteration over all reachable instructions until fixpoint; the
  // program sizes here (thousands of instructions) do not warrant a
  // worklist with dependency tracking.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t MI = 0; MI != P.numMethods(); ++MI) {
      if (!Reachable[MI])
        continue;
      MethodId M{uint32_t(MI)};
      for (const BasicBlock &Block : P.method(M).Blocks)
        for (const Instr &I : Block.Instrs)
          Changed |= applyInstr(M, I);
    }
  }
}
