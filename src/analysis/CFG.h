//===- analysis/CFG.h - CFG utilities: RPO, dominators, loops ---*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-method control-flow analyses: predecessor/successor lists, reverse
/// post-order, the dominator tree (Cooper-Harvey-Kennedy), and natural-loop
/// discovery.  The instrumentation optimizer uses dominance for the static
/// weaker-than relation (Section 6.1 uses `dom`; the paper notes `pdom` is
/// nearly useless in Java because of PEIs) and loops for peeling
/// (Section 6.3).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_ANALYSIS_CFG_H
#define HERD_ANALYSIS_CFG_H

#include "ir/Program.h"

#include <vector>

namespace herd {

/// Control-flow facts for one method.
class CFG {
public:
  CFG(const Program &P, MethodId Method);

  size_t numBlocks() const { return Succs.size(); }

  const std::vector<BlockId> &successors(BlockId Block) const {
    return Succs[Block.index()];
  }
  const std::vector<BlockId> &predecessors(BlockId Block) const {
    return Preds[Block.index()];
  }

  /// Blocks in reverse post-order from the entry; unreachable blocks are
  /// excluded.
  const std::vector<BlockId> &reversePostOrder() const { return RPO; }

  bool isReachable(BlockId Block) const {
    return RPOIndex[Block.index()] >= 0;
  }

  /// Immediate dominator; the entry block's idom is itself.  Only valid for
  /// reachable blocks.
  BlockId immediateDominator(BlockId Block) const {
    return IDom[Block.index()];
  }

  /// Returns true if \p A dominates \p B (reflexive).
  bool dominates(BlockId A, BlockId B) const;

  /// A natural loop: the header plus all blocks that reach a back edge
  /// into it.
  struct Loop {
    BlockId Header;
    std::vector<BlockId> Blocks; ///< includes the header
    bool contains(BlockId B) const;
  };

  /// All natural loops, one per header (back edges to the same header are
  /// merged into one loop).
  const std::vector<Loop> &loops() const { return Loops; }

  /// Returns true if \p Block is inside any natural loop.  Used by the
  /// single-instance analysis (Section 5.3): a statement in a loop may
  /// execute more than once.
  bool isInLoop(BlockId Block) const;

private:
  void computeRPO();
  void computeDominators();
  void computeLoops();

  const Program &P;
  const Method &M;
  std::vector<std::vector<BlockId>> Succs;
  std::vector<std::vector<BlockId>> Preds;
  std::vector<BlockId> RPO;
  std::vector<int32_t> RPOIndex; ///< -1 for unreachable
  std::vector<BlockId> IDom;
  std::vector<Loop> Loops;
};

} // namespace herd

#endif // HERD_ANALYSIS_CFG_H
