//===- analysis/DetectorPlanner.h - Race set -> DetectorPlan ----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives a DetectorPlan from the static datarace analysis.  The race set
/// (Section 5) bounds which access statements are instrumented, and the
/// points-to and single-instance analyses bound how many runtime locations
/// each statement can touch — so the detector's location table, tries and
/// interner can be sized before the first event instead of growing through
/// the cold pass.  The plan is a hint, never a limit: an under-estimate
/// only re-enables on-demand growth (see detect/DetectorPlan.h).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_ANALYSIS_DETECTORPLANNER_H
#define HERD_ANALYSIS_DETECTORPLANNER_H

#include "analysis/StaticRace.h"
#include "detect/DetectorPlan.h"
#include "ir/Program.h"

namespace herd {

/// Tunables for the static-to-dynamic extrapolation.
struct DetectorPlannerOptions {
  /// Runtime instances assumed per non-single-instance allocation site.
  /// Sites proven single-instance contribute exactly 1; loop-allocated
  /// sites are unbounded statically, and 8 matches the mid-scale workload
  /// replicas without over-reserving on the small test programs.
  uint64_t InstanceFanOut = 8;

  /// Minimum trie nodes (and edge slots) assumed per shared location.
  /// Histories stay shallow when programs hold 0-2 locks (Section 4.2);
  /// every measured workload stays under 2 nodes per shared location.
  /// The planner scales this up from the SyncAnalysis nesting depth — see
  /// trieNodesPerLocationForDepth.
  uint64_t TrieNodesPerLocation = 2;

  /// Ceiling for the depth-scaled per-location trie budget.  A trie over
  /// a lockset of depth D can branch into at most 2^D distinct-prefix
  /// histories, but beyond ~6 held locks pre-reserving that much per
  /// location over-commits memory faster than it saves cold-pass growth.
  uint64_t MaxTrieNodesPerLocation = 64;
};

/// The per-location trie-node budget for a program whose deepest must-held
/// lockset (max over the race set of |SyncAnalysis::mustSync|) is
/// \p MaxMustSyncDepth: 2^(depth+1) — the +1 is the per-thread dummy join
/// lock (Section 2.3) every spawned thread adds on top of the analysed
/// locks — clamped to [TrieNodesPerLocation, MaxTrieNodesPerLocation].
/// Shallow programs keep the default 2; deeply nested ones get the full 64
/// (tests/plan_test.cpp pins the curve).
uint64_t trieNodesPerLocationForDepth(uint64_t MaxMustSyncDepth,
                                      const DetectorPlannerOptions &Opts = {});

/// Computes capacity hints for running \p P under the detector, from the
/// results of \p Races (which must have been run()).  Also pre-interns the
/// locksets the analysis proves will occur: the per-thread dummy join
/// locks (Section 2.3) every thread's lockset starts from.
DetectorPlan planDetector(const Program &P, const StaticRaceAnalysis &Races,
                          const DetectorPlannerOptions &Opts = {});

} // namespace herd

#endif // HERD_ANALYSIS_DETECTORPLANNER_H
