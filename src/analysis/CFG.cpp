//===- analysis/CFG.cpp - CFG utilities: RPO, dominators, loops -----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include <algorithm>
#include <cassert>

using namespace herd;

CFG::CFG(const Program &P, MethodId Method) : P(P), M(P.method(Method)) {
  size_t N = M.Blocks.size();
  Succs.resize(N);
  Preds.resize(N);
  for (size_t BI = 0; BI != N; ++BI) {
    M.Blocks[BI].appendSuccessors(Succs[BI]);
    for (BlockId Succ : Succs[BI])
      Preds[Succ.index()].push_back(BlockId(uint32_t(BI)));
  }
  computeRPO();
  computeDominators();
  computeLoops();
}

void CFG::computeRPO() {
  size_t N = Succs.size();
  RPOIndex.assign(N, -1);
  std::vector<BlockId> PostOrder;
  PostOrder.reserve(N);
  // Iterative DFS from the entry block.
  std::vector<uint8_t> Visited(N, 0);
  struct WorkItem {
    BlockId Block;
    size_t NextSucc;
  };
  std::vector<WorkItem> Stack;
  Stack.push_back({BlockId(0), 0});
  Visited[0] = 1;
  while (!Stack.empty()) {
    WorkItem &Item = Stack.back();
    const std::vector<BlockId> &S = Succs[Item.Block.index()];
    if (Item.NextSucc < S.size()) {
      BlockId Next = S[Item.NextSucc++];
      if (!Visited[Next.index()]) {
        Visited[Next.index()] = 1;
        Stack.push_back({Next, 0});
      }
      continue;
    }
    PostOrder.push_back(Item.Block);
    Stack.pop_back();
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (size_t I = 0; I != RPO.size(); ++I)
    RPOIndex[RPO[I].index()] = int32_t(I);
}

void CFG::computeDominators() {
  // Cooper-Harvey-Kennedy iterative algorithm over RPO.
  size_t N = Succs.size();
  IDom.assign(N, BlockId::invalid());
  if (RPO.empty())
    return;
  IDom[RPO[0].index()] = RPO[0];

  auto Intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (RPOIndex[A.index()] > RPOIndex[B.index()])
        A = IDom[A.index()];
      while (RPOIndex[B.index()] > RPOIndex[A.index()])
        B = IDom[B.index()];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < RPO.size(); ++I) {
      BlockId B = RPO[I];
      BlockId NewIDom = BlockId::invalid();
      for (BlockId Pred : Preds[B.index()]) {
        if (!isReachable(Pred) || !IDom[Pred.index()].isValid())
          continue;
        NewIDom = NewIDom.isValid() ? Intersect(NewIDom, Pred) : Pred;
      }
      assert(NewIDom.isValid() && "reachable block with no processed preds");
      if (IDom[B.index()] != NewIDom) {
        IDom[B.index()] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool CFG::dominates(BlockId A, BlockId B) const {
  assert(isReachable(A) && isReachable(B) && "dominance of unreachable block");
  // Walk B's dominator chain; RPO indices strictly decrease along it.
  while (true) {
    if (A == B)
      return true;
    BlockId Next = IDom[B.index()];
    if (Next == B)
      return false; // reached the entry
    B = Next;
  }
}

bool CFG::Loop::contains(BlockId B) const {
  return std::find(Blocks.begin(), Blocks.end(), B) != Blocks.end();
}

void CFG::computeLoops() {
  // A back edge T -> H exists when H dominates T; the natural loop is H
  // plus every block that can reach T without passing through H.
  std::vector<std::pair<BlockId, BlockId>> BackEdges;
  for (BlockId B : RPO)
    for (BlockId Succ : Succs[B.index()])
      if (isReachable(Succ) && dominates(Succ, B))
        BackEdges.emplace_back(B, Succ);

  // Group back edges by header.
  std::vector<uint8_t> InLoop(Succs.size());
  for (size_t I = 0; I != BackEdges.size(); ++I) {
    BlockId Header = BackEdges[I].second;
    // Skip if this header's loop was already built.
    bool Done = false;
    for (const Loop &L : Loops)
      if (L.Header == Header)
        Done = true;
    if (Done)
      continue;

    std::fill(InLoop.begin(), InLoop.end(), 0);
    InLoop[Header.index()] = 1;
    std::vector<BlockId> Work;
    for (const auto &[Tail, H] : BackEdges) {
      if (H != Header)
        continue;
      if (!InLoop[Tail.index()]) {
        InLoop[Tail.index()] = 1;
        Work.push_back(Tail);
      }
    }
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      for (BlockId Pred : Preds[B.index()]) {
        if (!isReachable(Pred) || InLoop[Pred.index()])
          continue;
        InLoop[Pred.index()] = 1;
        Work.push_back(Pred);
      }
    }
    Loop L;
    L.Header = Header;
    for (size_t BI = 0; BI != InLoop.size(); ++BI)
      if (InLoop[BI])
        L.Blocks.push_back(BlockId(uint32_t(BI)));
    Loops.push_back(std::move(L));
  }
}

bool CFG::isInLoop(BlockId Block) const {
  for (const Loop &L : Loops)
    if (L.contains(Block))
      return true;
  return false;
}
