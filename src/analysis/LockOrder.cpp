//===- analysis/LockOrder.cpp - Static lock-order analysis ----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/LockOrder.h"

#include <deque>
#include <functional>

using namespace herd;

LockOrderAnalysis::LockOrderAnalysis(const Program &P,
                                     const PointsToAnalysis &PT,
                                     const SingleInstanceAnalysis &SI)
    : P(P), PT(PT), SI(SI) {}

void LockOrderAnalysis::run() {
  size_t NumMethods = P.numMethods();

  // Per-method context: abstract locks that MAY be held when the method is
  // entered — the union over reachable call sites (over-approximation is
  // the correct polarity for candidate generation).  Thread roots enter
  // lock-free except for a synchronized run()'s own monitor, handled
  // locally.
  std::vector<ObjSet> Context(NumMethods);
  std::vector<uint8_t> Changed(NumMethods, 1);

  // Walk one method: at every MonitorEnter (and synchronized-method
  // entry), add edges from each held abstract lock to each acquired one,
  // and propagate held-sets into callees.  Returns true if any callee
  // context grew.
  auto WalkMethod = [&](MethodId M) {
    bool Grew = false;
    const Method &Body = P.method(M);

    ObjSet MethodBase = Context[M.index()];
    if (Body.IsSynchronized) {
      const ObjSet &Self = PT.pointsTo(M, RegId(0));
      for (AllocSiteId Held : MethodBase)
        for (AllocSiteId Acquired : Self)
          if (Held != Acquired || !SI.isSingleInstanceSite(Held))
            Edges.emplace(Held, Acquired);
      MethodBase.unionWith(Self);
    }

    // Monitor stacks are path-consistent (verifier); BFS with the stack of
    // may-held sets.
    using Stack = std::vector<ObjSet>;
    std::map<uint32_t, Stack> EntryStacks;
    std::deque<BlockId> Work;
    std::vector<uint8_t> Visited(Body.Blocks.size(), 0);
    EntryStacks[0] = {};
    Visited[0] = 1;
    Work.push_back(BlockId(0));

    while (!Work.empty()) {
      BlockId BId = Work.front();
      Work.pop_front();
      Stack Current = EntryStacks[BId.index()];
      for (const Instr &I : Body.block(BId).Instrs) {
        if (I.Op == Opcode::MonitorEnter) {
          ObjSet Held = MethodBase;
          for (const ObjSet &Level : Current)
            Held.unionWith(Level);
          const ObjSet &Acquired = PT.pointsTo(M, I.A);
          for (AllocSiteId H : Held)
            for (AllocSiteId A : Acquired)
              if (H != A || !SI.isSingleInstanceSite(H))
                Edges.emplace(H, A);
          Current.push_back(Acquired);
        } else if (I.Op == Opcode::MonitorExit) {
          if (!Current.empty())
            Current.pop_back();
        } else if (I.Op == Opcode::Call) {
          ObjSet Held = MethodBase;
          for (const ObjSet &Level : Current)
            Held.unionWith(Level);
          if (Context[I.Callee.index()].unionWith(Held)) {
            Changed[I.Callee.index()] = 1;
            Grew = true;
          }
        }
      }
      std::vector<BlockId> Succs;
      Body.block(BId).appendSuccessors(Succs);
      for (BlockId Succ : Succs) {
        if (Visited[Succ.index()])
          continue;
        Visited[Succ.index()] = 1;
        EntryStacks[Succ.index()] = Current;
        Work.push_back(Succ);
      }
    }
    return Grew;
  };

  // Iterate until contexts stabilize (contexts only grow; finite lattice).
  bool Any = true;
  while (Any) {
    Any = false;
    for (size_t MI = 0; MI != NumMethods; ++MI) {
      MethodId M{uint32_t(MI)};
      if (!PT.isMethodReachable(M) || !Changed[MI])
        continue;
      Changed[MI] = 0;
      Any |= WalkMethod(M);
      // Edges are accumulated idempotently, so re-walking is safe.
    }
  }
}

std::vector<StaticLockCycle>
LockOrderAnalysis::findCycles(size_t MaxLength) const {
  std::map<AllocSiteId, std::vector<AllocSiteId>> Adj;
  std::set<StaticLockCycle> Found;
  for (const auto &[From, To] : Edges) {
    if (From == To) {
      // Multi-instance self-edge: already filtered at insertion for
      // single-instance sites.
      Found.insert(StaticLockCycle{{From}});
      continue;
    }
    Adj[From].push_back(To);
  }

  std::function<void(AllocSiteId, std::vector<AllocSiteId> &)> Extend =
      [&](AllocSiteId Start, std::vector<AllocSiteId> &Path) {
        auto It = Adj.find(Path.back());
        if (It == Adj.end())
          return;
        for (AllocSiteId Next : It->second) {
          if (Next == Start && Path.size() >= 2) {
            Found.insert(StaticLockCycle{Path});
            continue;
          }
          if (Path.size() >= MaxLength)
            continue;
          if (Next < Start || Next == Start)
            continue; // canonical: the start is the smallest site
          bool Seen = false;
          for (AllocSiteId OnPath : Path)
            Seen |= OnPath == Next;
          if (Seen)
            continue;
          Path.push_back(Next);
          Extend(Start, Path);
          Path.pop_back();
        }
      };

  for (const auto &[Start, Out] : Adj) {
    (void)Out;
    std::vector<AllocSiteId> Path = {Start};
    Extend(Start, Path);
  }
  return std::vector<StaticLockCycle>(Found.begin(), Found.end());
}
