//===- analysis/SingleInstance.cpp - Must points-to support ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/SingleInstance.h"

#include "analysis/CFG.h"

using namespace herd;

SingleInstanceAnalysis::SingleInstanceAnalysis(const Program &P,
                                               const PointsToAnalysis &PT)
    : P(P), PT(PT) {
  MethodOnce.assign(P.numMethods(), 0);
  SiteOnce.assign(P.numAllocSites(), 0);
}

void SingleInstanceAnalysis::run() {
  size_t NumMethods = P.numMethods();

  // Gather, per callee: the reachable direct call sites and whether each
  // lies in a loop of its caller.  Also the direct-call counts of run
  // methods (a run that is also called directly is not single-start).
  struct CallSiteInfo {
    MethodId Caller;
    bool InLoop;
  };
  std::vector<std::vector<CallSiteInfo>> CallSites(NumMethods);
  std::vector<CFG> CFGs;
  CFGs.reserve(NumMethods);
  for (size_t MI = 0; MI != NumMethods; ++MI)
    CFGs.emplace_back(P, MethodId(uint32_t(MI)));

  for (size_t MI = 0; MI != NumMethods; ++MI) {
    MethodId M{uint32_t(MI)};
    if (!PT.isMethodReachable(M))
      continue;
    const Method &Body = P.method(M);
    for (size_t BI = 0; BI != Body.Blocks.size(); ++BI) {
      BlockId Block{uint32_t(BI)};
      if (!CFGs[MI].isReachable(Block))
        continue;
      bool InLoop = CFGs[MI].isInLoop(Block);
      for (const Instr &I : Body.Blocks[BI].Instrs)
        if (I.Op == Opcode::Call)
          CallSites[I.Callee.index()].push_back({M, InLoop});
    }
  }

  // Fixpoint from "false" upward; the conditions are monotone in the
  // caller's at-most-once bit, so the least fixpoint correctly rejects
  // recursion (a self-call site keeps the method at `false`).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t MI = 0; MI != NumMethods; ++MI) {
      MethodId M{uint32_t(MI)};
      if (MethodOnce[MI] || !PT.isMethodReachable(M))
        continue;
      bool Once = false;
      if (M == P.MainMethod) {
        Once = true;
      } else {
        bool IsStartedRun = !PT.threadObjectsOf(M).empty();
        if (IsStartedRun) {
          // At most one thread object, allocated at most once, and no
          // direct calls: each object is started at most once, so run
          // executes at most once.
          const ObjSet &Objs = PT.threadObjectsOf(M);
          Once = Objs.size() == 1 && CallSites[MI].empty() &&
                 SiteOnce[Objs.begin()->index()];
        } else if (CallSites[MI].size() == 1) {
          const CallSiteInfo &CS = CallSites[MI][0];
          Once = !CS.InLoop && MethodOnce[CS.Caller.index()];
        }
      }
      if (Once) {
        MethodOnce[MI] = 1;
        Changed = true;
      }
    }

    // Allocation sites: the `new` is single-instance when its method runs
    // at most once and the instruction is not inside a loop.
    for (size_t MI = 0; MI != NumMethods; ++MI) {
      if (!MethodOnce[MI])
        continue;
      MethodId M{uint32_t(MI)};
      const Method &Body = P.method(M);
      for (size_t BI = 0; BI != Body.Blocks.size(); ++BI) {
        BlockId Block{uint32_t(BI)};
        if (!CFGs[MI].isReachable(Block) || CFGs[MI].isInLoop(Block))
          continue;
        for (const Instr &I : Body.Blocks[BI].Instrs) {
          if ((I.Op == Opcode::New || I.Op == Opcode::NewArray) &&
              !SiteOnce[I.AllocSite.index()]) {
            SiteOnce[I.AllocSite.index()] = 1;
            Changed = true;
          }
        }
      }
    }
  }
}

ObjSet SingleInstanceAnalysis::mustPointsTo(MethodId M, RegId Reg) const {
  const ObjSet &May = PT.pointsTo(M, Reg);
  if (May.size() != 1)
    return ObjSet();
  AllocSiteId Site = *May.begin();
  if (!isSingleInstanceSite(Site))
    return ObjSet();
  return May;
}
