//===- analysis/DetectorPlanner.cpp - Race set -> DetectorPlan ------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DetectorPlanner.h"

#include "detect/RaceRuntime.h" // dummyLockOf: the canonical S_j id scheme

#include <unordered_map>
#include <unordered_set>

using namespace herd;

namespace {

/// Packs one static location target.  Mirrors the runtime's LocationKey
/// construction (support/Ids.h): instance fields are (site, field), array
/// elements are (site, one-per-array), statics are (class, field) — the
/// interpreter materializes statics as per-class pseudo-objects, so one
/// static field is always exactly one runtime location.
uint64_t packFieldTarget(AllocSiteId Site, FieldId Field) {
  return (uint64_t(Site.index()) << 32) | Field.index();
}
uint64_t packArrayTarget(AllocSiteId Site) {
  return (uint64_t(Site.index()) << 32) | 0xFFFFFFFEull;
}
uint64_t packStaticTarget(ClassId Class, FieldId Field) {
  // Distinct namespace from alloc-site targets: statics cannot collide
  // with instance targets, so tag them in the (otherwise unused) top bit.
  return (uint64_t(1) << 63) | (uint64_t(Class.index()) << 32) |
         Field.index();
}

} // namespace

uint64_t
herd::trieNodesPerLocationForDepth(uint64_t MaxMustSyncDepth,
                                   const DetectorPlannerOptions &Opts) {
  // +1: every spawned thread holds its dummy join lock S_j (Section 2.3)
  // on top of whatever the must-sync analysis proves, so runtime locksets
  // run one deeper than the static depth.
  uint64_t Nodes = MaxMustSyncDepth >= 62
                       ? UINT64_MAX
                       : (uint64_t(1) << (MaxMustSyncDepth + 1));
  if (Nodes < Opts.TrieNodesPerLocation)
    Nodes = Opts.TrieNodesPerLocation;
  if (Nodes > Opts.MaxTrieNodesPerLocation)
    Nodes = Opts.MaxTrieNodesPerLocation;
  return Nodes;
}

DetectorPlan herd::planDetector(const Program &P,
                                const StaticRaceAnalysis &Races,
                                const DetectorPlannerOptions &Opts) {
  DetectorPlan Plan;
  const PointsToAnalysis &PT = Races.pointsTo();
  const SingleInstanceAnalysis &SI = Races.singleInstance();

  // --- Locations: dedup race-set statements down to static targets, then
  // scale each target by its instance fan-out.  Two statements touching
  // the same (site, field) pair share the same runtime locations, so the
  // fan-out is charged per target, not per statement.
  std::unordered_map<uint64_t, uint64_t> Targets; // packed target -> fan-out
  auto addSiteTarget = [&](uint64_t Packed, AllocSiteId Site) {
    uint64_t FanOut =
        SI.isSingleInstanceSite(Site) ? 1 : Opts.InstanceFanOut;
    auto [It, Inserted] = Targets.try_emplace(Packed, FanOut);
    if (!Inserted && It->second < FanOut)
      It->second = FanOut;
  };

  for (const InstrRef &Ref : Races.raceSet()) {
    const Instr &I = Ref.get(P);
    switch (I.Op) {
    case Opcode::GetField:
    case Opcode::PutField:
      for (AllocSiteId Site : PT.pointsTo(Ref.Method, I.A))
        addSiteTarget(packFieldTarget(Site, I.Field), Site);
      break;
    case Opcode::ALoad:
    case Opcode::AStore:
      for (AllocSiteId Site : PT.pointsTo(Ref.Method, I.A))
        addSiteTarget(packArrayTarget(Site), Site);
      break;
    case Opcode::GetStatic:
    case Opcode::PutStatic:
      Targets.try_emplace(packStaticTarget(I.Class, I.Field), 1);
      break;
    default:
      break; // the race set holds only access statements
    }
  }
  for (const auto &[Packed, FanOut] : Targets) {
    (void)Packed;
    Plan.ExpectedLocations += FanOut;
  }
  // Instrumentation only covers the race set, so every forwarded location
  // can in principle become shared; sizing tries for all of them is what
  // makes the cold pass flat.
  Plan.ExpectedSharedLocations = Plan.ExpectedLocations;

  // --- Threads: thread objects reachable through some ThreadStart, scaled
  // like any other allocation site, plus the main thread.
  uint64_t Threads = 1;
  for (MethodId Run : PT.startedRunMethods())
    for (AllocSiteId Site : PT.threadObjectsOf(Run))
      Threads += SI.isSingleInstanceSite(Site) ? 1 : Opts.InstanceFanOut;
  Plan.ExpectedThreads = Threads;

  // --- Locksets: the runtime lockset is (dummy join locks) ∪ (real locks
  // from MustSync contexts).  Count the distinct must-held sets across the
  // race set as the real-lock variety, and assume each can combine with
  // each thread's dummy baseline (plus the empty set and transients).
  std::unordered_set<uint64_t> SyncShapes;
  uint64_t MaxMustSyncDepth = 0;
  const SyncAnalysis &Sync = Races.sync();
  for (const InstrRef &Ref : Races.raceSet()) {
    const ObjSet &Must = Sync.mustSync(Ref);
    if (Must.size() > MaxMustSyncDepth)
      MaxMustSyncDepth = Must.size();
    uint64_t H = 0xcbf29ce484222325ull;
    for (AllocSiteId Obj : Must) {
      H ^= Obj.index();
      H *= 0x100000001b3ull;
    }
    SyncShapes.insert(H);
  }
  Plan.ExpectedLocksets = (SyncShapes.size() + 2) * (Threads + 2);

  // --- Tries: the deeper the must-held locksets around the racing
  // accesses, the more distinct-lockset branches each location's history
  // trie can grow.  Scale the per-location budget by that nesting depth
  // instead of assuming every program is shallow.
  Plan.ExpectedTrieNodes =
      Plan.ExpectedSharedLocations *
      trieNodesPerLocationForDepth(MaxMustSyncDepth, Opts);
  Plan.ExpectedTrieEdges = Plan.ExpectedTrieNodes;

  // --- Pre-intern what is provably coming: every started thread begins
  // life holding exactly its dummy join lock S_j (Section 2.3), so those
  // singletons are the first locksets the hot path would otherwise intern
  // lazily.  Thread ids are assigned densely from 1 at spawn order.
  DetectorPlan Clamped = Plan.clamped();
  for (uint64_t T = 1; T <= Clamped.ExpectedThreads; ++T) {
    SortedIdSet<LockId> Dummy;
    Dummy.insert(RaceRuntime::dummyLockOf(ThreadId(uint32_t(T))));
    Plan.PreinternLocksets.push_back(std::move(Dummy));
  }
  return Plan;
}
