//===- analysis/SingleInstance.h - Must points-to support -------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-instance analysis underlying the conservative must points-to
/// of Section 5.3: a *single-instance statement* executes at most once per
/// program run; an object allocated at a single-instance `new` is a
/// *single-instance object*.  A register whose may points-to set is one
/// single-instance object *must* point to it — the only form of must
/// points-to the paper (and we) compute.
///
/// A method executes at most once when it is main, or it has exactly one
/// reachable call site, that site is not inside a loop, and the calling
/// method itself executes at most once.  A started run() executes at most
/// once when exactly one single-instance thread object can reach it and it
/// is never also called directly (each object can be started only once).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_ANALYSIS_SINGLEINSTANCE_H
#define HERD_ANALYSIS_SINGLEINSTANCE_H

#include "analysis/PointsTo.h"
#include "ir/Program.h"

#include <vector>

namespace herd {

class SingleInstanceAnalysis {
public:
  SingleInstanceAnalysis(const Program &P, const PointsToAnalysis &PT);

  /// Runs the fixpoint; call once before queries.
  void run();

  bool methodAtMostOnce(MethodId M) const {
    return MethodOnce[M.index()] != 0;
  }

  /// True when the allocation site's `new` executes at most once.
  bool isSingleInstanceSite(AllocSiteId Site) const {
    return SiteOnce[Site.index()] != 0;
  }

  /// MustPT(reg): the may points-to set when it is a singleton
  /// single-instance object; empty otherwise (Section 5.3).
  ObjSet mustPointsTo(MethodId M, RegId Reg) const;

private:
  const Program &P;
  const PointsToAnalysis &PT;
  std::vector<uint8_t> MethodOnce; ///< [method]
  std::vector<uint8_t> SiteOnce;   ///< [alloc site]
};

} // namespace herd

#endif // HERD_ANALYSIS_SINGLEINSTANCE_H
