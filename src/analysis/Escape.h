//===- analysis/Escape.h - Escape + thread-specific analysis ----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The escape analysis of Section 5.4 and its thread-specific extension.
///
/// *Thread-local* objects are never reachable from any thread other than
/// their creator; their accesses can never race.  We approximate: an
/// abstract object escapes when it is reachable (through fields or array
/// elements) from a static field or from a started thread object — the only
/// channels through which two MiniJ threads can share references.
///
/// *Thread-specific* fields handle the common Java pattern the plain
/// analysis misses: data hanging off a thread object T, initialized during
/// construction and thereafter touched only by T itself.  We implement the
/// field half of the paper's extension: a field of a thread class C is
/// thread-specific when every reachable access to it goes through the
/// `this` reference of a *thread-specific method* of C (run(), if never
/// called directly, plus methods of C called only from thread-specific
/// methods of C that pass `this` through).  Accesses to thread-specific
/// fields cannot race.  The object-reachability half ("objects reachable
/// only through thread-specific fields of a safe thread") is not
/// implemented; MiniJ has no constructors, so the unsafe-thread subtleties
/// it guards against cannot arise, and the field rule alone is sound.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_ANALYSIS_ESCAPE_H
#define HERD_ANALYSIS_ESCAPE_H

#include "analysis/PointsTo.h"
#include "ir/Program.h"

#include <vector>

namespace herd {

class EscapeAnalysis {
public:
  EscapeAnalysis(const Program &P, const PointsToAnalysis &PT);

  void run();

  /// True when objects from \p Site may be reachable by a non-creator
  /// thread.
  bool escapes(AllocSiteId Site) const { return Escaping[Site.index()] != 0; }

  /// True when every reachable access to \p Field goes through `this` of a
  /// thread-specific method (so the field cannot race).
  bool isThreadSpecificField(FieldId Field) const {
    return TSField[Field.index()] != 0;
  }

  /// True when \p M is a thread-specific method of its class.
  bool isThreadSpecificMethod(MethodId M) const {
    return TSMethod[M.index()] != 0;
  }

  size_t numEscaping() const;

private:
  const Program &P;
  const PointsToAnalysis &PT;
  std::vector<uint8_t> Escaping; ///< [alloc site]
  std::vector<uint8_t> TSMethod; ///< [method]
  std::vector<uint8_t> TSField;  ///< [field]
};

} // namespace herd

#endif // HERD_ANALYSIS_ESCAPE_H
