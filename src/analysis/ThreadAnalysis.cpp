//===- analysis/ThreadAnalysis.cpp - MustSameThread -----------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ThreadAnalysis.h"

#include <deque>

using namespace herd;

ThreadAnalysis::ThreadAnalysis(const Program &P, const PointsToAnalysis &PT,
                               const SingleInstanceAnalysis &SI)
    : P(P), PT(PT), SI(SI) {
  MustThreadSets.resize(P.numMethods());
}

void ThreadAnalysis::run() {
  size_t NumMethods = P.numMethods();

  // Direct (intrathread) call edges among reachable methods.
  std::vector<std::vector<MethodId>> Callees(NumMethods);
  for (size_t MI = 0; MI != NumMethods; ++MI) {
    MethodId M{uint32_t(MI)};
    if (!PT.isMethodReachable(M))
      continue;
    for (const BasicBlock &Block : P.method(M).Blocks)
      for (const Instr &I : Block.Instrs)
        if (I.Op == Opcode::Call)
          Callees[MI].push_back(I.Callee);
  }

  // Thread roots and the must points-to of each root's `this`.
  struct Root {
    MethodId Method;
    ObjSet MustThis;
  };
  std::vector<Root> Roots;
  {
    Root MainRoot;
    MainRoot.Method = P.MainMethod;
    MainRoot.MustThis.insert(mainThreadObject());
    Roots.push_back(std::move(MainRoot));
  }
  for (MethodId Run : PT.startedRunMethods()) {
    Root R;
    R.Method = Run;
    // run's `this` is r0; must points-to holds when a single
    // single-instance thread object reaches this run method.
    R.MustThis = SI.mustPointsTo(Run, RegId(0));
    Roots.push_back(std::move(R));
  }

  // For each root, the set of methods reachable via intrathread paths;
  // intersect the roots' MustThis sets into each reached method.
  std::vector<uint8_t> Seeded(NumMethods, 0);
  for (const Root &R : Roots) {
    std::vector<uint8_t> Visited(NumMethods, 0);
    std::deque<MethodId> Work;
    Work.push_back(R.Method);
    Visited[R.Method.index()] = 1;
    while (!Work.empty()) {
      MethodId M = Work.front();
      Work.pop_front();
      ObjSet &Dest = MustThreadSets[M.index()];
      if (!Seeded[M.index()]) {
        Seeded[M.index()] = 1;
        Dest = R.MustThis;
      } else {
        Dest.intersectWith(R.MustThis);
      }
      for (MethodId Callee : Callees[M.index()]) {
        if (Visited[Callee.index()])
          continue;
        Visited[Callee.index()] = 1;
        Work.push_back(Callee);
      }
    }
  }
}
