//===- analysis/LockOrder.h - Static lock-order analysis --------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static half of the deadlock co-analysis (the paper's Section 10
/// future work applies its static/dynamic recipe to deadlocks; the dynamic
/// half is detect/DeadlockDetector).  In the same spirit as the static
/// datarace analysis, this pass conservatively over-approximates: it
/// builds a lock-order graph over *abstract* lock objects (allocation
/// sites) using may points-to — an edge a → b means some execution may
/// acquire an object of site b while holding one of site a — and reports
/// the cycles.  Like IsMayRace, "may" is the right polarity here: missing
/// an edge could hide a deadlock, while a spurious edge only costs a
/// candidate for the dynamic detector to refute.
///
/// A self-edge on a *multi-instance* site is also a candidate (two objects
/// of one allocation site acquired in opposite orders — the dining
/// philosophers pattern, where all forks share one `new Fork()` site); a
/// self-edge on a single-instance site is reentrancy, not deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_ANALYSIS_LOCKORDER_H
#define HERD_ANALYSIS_LOCKORDER_H

#include "analysis/PointsTo.h"
#include "analysis/SingleInstance.h"
#include "ir/Program.h"

#include <map>
#include <set>
#include <vector>

namespace herd {

/// A static potential-deadlock candidate: a cycle of abstract lock sites.
struct StaticLockCycle {
  std::vector<AllocSiteId> Sites; ///< in cycle order; size 1 = self-cycle

  friend bool operator<(const StaticLockCycle &A, const StaticLockCycle &B) {
    return A.Sites < B.Sites;
  }
};

/// Computes the static lock-order graph and its cycles.
class LockOrderAnalysis {
public:
  LockOrderAnalysis(const Program &P, const PointsToAnalysis &PT,
                    const SingleInstanceAnalysis &SI);

  void run();

  /// All lock-order edges discovered (abstract from -> to).
  const std::set<std::pair<AllocSiteId, AllocSiteId>> &edges() const {
    return Edges;
  }

  /// Cycles up to \p MaxLength (including multi-instance self-cycles),
  /// canonicalized and sorted.
  std::vector<StaticLockCycle> findCycles(size_t MaxLength = 8) const;

private:
  const Program &P;
  const PointsToAnalysis &PT;
  const SingleInstanceAnalysis &SI;
  std::set<std::pair<AllocSiteId, AllocSiteId>> Edges;
};

} // namespace herd

#endif // HERD_ANALYSIS_LOCKORDER_H
