//===- analysis/SyncAnalysis.h - MustCommonSync -----------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MustSync computation of Section 5.3, Equation 4, at statement
/// granularity.
///
/// MustSync(s) is the set of abstract synchronization objects *always* held
/// when s executes: the intersection, over all reachable call chains, of
/// the must points-to sets of the enclosing synchronized regions.  The
/// paper expresses this as a dataflow over the interthread call graph whose
/// nodes are methods and synchronized blocks; we factor it equivalently
/// into (a) a per-method *context* — locks always held at every reachable
/// call site of the method (intersection meet; thread roots get the empty
/// context since start edges carry no locks) — and (b) the locally
/// enclosing monitor regions of the statement.  Only must (singleton,
/// single-instance) points-to facts may be used: a may approximation would
/// be unsound for the negated MustCommonSync conjunct (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_ANALYSIS_SYNCANALYSIS_H
#define HERD_ANALYSIS_SYNCANALYSIS_H

#include "analysis/PointsTo.h"
#include "analysis/SingleInstance.h"
#include "ir/InstrRef.h"
#include "ir/Program.h"

#include <unordered_map>
#include <vector>

namespace herd {

class SyncAnalysis {
public:
  SyncAnalysis(const Program &P, const PointsToAnalysis &PT,
               const SingleInstanceAnalysis &SI);

  void run();

  /// MustSync(s): abstract objects always locked when \p Ref executes.
  /// Only meaningful for reachable statements.
  const ObjSet &mustSync(const InstrRef &Ref) const;

  /// Equation 4: the two statements always hold a common lock.
  bool mustCommonSync(const InstrRef &A, const InstrRef &B) const {
    return mustSync(A).intersects(mustSync(B));
  }

private:
  ObjSet methodContext(MethodId M) const;

  const Program &P;
  const PointsToAnalysis &PT;
  const SingleInstanceAnalysis &SI;

  /// Locks always held on entry to each method (the ICG dataflow's SO_in of
  /// the method node); ⊤ is encoded as "not yet constrained".
  std::vector<ObjSet> Context;     ///< [method]
  std::vector<uint8_t> ContextTop; ///< [method] 1 = unconstrained (⊤)

  std::unordered_map<InstrRef, ObjSet> PerInstr;
  static const ObjSet EmptySet;
};

} // namespace herd

#endif // HERD_ANALYSIS_SYNCANALYSIS_H
