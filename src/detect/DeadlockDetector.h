//===- detect/DeadlockDetector.h - Lock-order deadlock detection -*- C++ -*-=//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 10 names deadlock detection as the next target for
/// the static/dynamic co-analysis approach.  This module implements the
/// dynamic half in the same spirit as the race detector: observe the
/// monitor event stream and report *potential* deadlocks — ones that did
/// not necessarily manifest in this schedule but could in another — using
/// a lock-order graph (the Goodlock family of algorithms).
///
/// An edge (a -> b, thread t, gate set G) is recorded whenever t acquires
/// b while already holding a; G is everything else t held.  A cycle among
/// edges from pairwise-distinct threads whose gate sets share no lock is a
/// potential deadlock: with no common gate serializing them, some schedule
/// interleaves the acquisitions into a wait cycle.  This mirrors the race
/// detector's lockset philosophy (Section 2.2): report the *feasible*
/// hazard in whatever schedule was observed.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_DEADLOCKDETECTOR_H
#define HERD_DETECT_DEADLOCKDETECTOR_H

#include "detect/AccessEvent.h"
#include "runtime/Hooks.h"

#include <map>
#include <set>
#include <vector>

namespace herd {

/// A reported potential deadlock: the locks on the cycle and the threads
/// whose acquisition orders close it.
struct DeadlockCycle {
  std::vector<LockId> Locks;     ///< in cycle order
  std::vector<ThreadId> Threads; ///< acquiring thread per edge
  std::vector<SiteId> Sites;     ///< acquisition site per edge (may be
                                 ///< invalid for site-less event streams)

  friend bool operator<(const DeadlockCycle &A, const DeadlockCycle &B) {
    return A.Locks < B.Locks;
  }
};

/// Observes monitor events and reports potential deadlocks at the end of
/// the run (or on demand).
class DeadlockDetector : public RuntimeHooks {
public:
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;

  /// Finds every simple cycle (up to length \p MaxLength) in the
  /// lock-order graph satisfying the distinct-thread and empty-gate
  /// conditions.  Deterministic: cycles are canonicalized and sorted.
  std::vector<DeadlockCycle> findPotentialDeadlocks(
      size_t MaxLength = 8) const;

  /// Number of distinct lock-order edges observed.
  size_t numEdges() const;

private:
  struct Edge {
    ThreadId Thread;
    LockSet Gate; ///< locks held besides From at acquisition of To
    SiteId AcquireSite; ///< the monitorenter statement (first observation
                        ///< of this (thread, gate) wins; diagnostics only)
  };

  /// (from, to) -> observations; multiple observations of the same pair
  /// are merged by keeping each distinct (thread, gate) once.
  std::map<std::pair<LockId, LockId>, std::vector<Edge>> Edges;
  std::map<ThreadId, std::vector<LockId>> Held; ///< per-thread lock stack
};

} // namespace herd

#endif // HERD_DETECT_DEADLOCKDETECTOR_H
