//===- detect/RaceReport.h - Race records and collection --------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Race reports.  Per Definition 1, the detector reports at least one
/// racing access event for every memory location involved in a race; each
/// report pairs the current access with what is known about a prior
/// conflicting access (its lockset, its site, and its thread when the t_⊥
/// space optimization has not erased it — Section 2.6).
///
/// Reports carry a stable *fingerprint* (docs/REPORTS.md): a 64-bit hash
/// of the normalized location kind (the field/array component, dropping
/// the run-specific object index) and the two access (site, kind) pairs in
/// canonical order.  Two reports of the same source-level bug — same field,
/// same pair of statements — fingerprint identically across runs, seeds,
/// shard counts and detector backends, which is what lets the reporter
/// dedup with occurrence counts and lets CI diff race sets structurally.
///
/// RaceReporter is bounded: at most Capacity full records are retained.
/// Past the cap, reports whose fingerprint is already known only bump that
/// fingerprint's occurrence count; genuinely new fingerprints are counted
/// in droppedRecords() so truncation is always visible, never silent.
/// The counting queries (distinct locations/objects) stay exact past the
/// cap — only full records are shed, never set membership — so the
/// Definition 1 coverage checks against the exact oracle hold at any cap.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_RACEREPORT_H
#define HERD_DETECT_RACEREPORT_H

#include "detect/AccessEvent.h"

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

namespace herd {

/// One reported race.
struct RaceRecord {
  LocationKey Location;

  // The access that triggered the report (reported at the moment it
  // occurs, so a debugger could suspend the program here — Section 2.6).
  ThreadId CurrentThread;
  AccessKind CurrentAccess = AccessKind::Read;
  RaceLockSet CurrentLocks;
  SiteId CurrentSite;

  // What is known about the earlier conflicting access.
  bool PriorThreadKnown = false;
  ThreadId PriorThread;           ///< valid iff PriorThreadKnown
  AccessKind PriorAccess = AccessKind::Read;
  RaceLockSet PriorLocks;
  SiteId PriorSite;               ///< invalid when the trie lost it

  /// Stable identity of this race (see raceFingerprint); filled in by
  /// RaceReporter::report.
  uint64_t Fingerprint = 0;
};

/// SplitMix64 finalizer — the mixing step of the fingerprint hash.
inline uint64_t fingerprintMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// The stable race fingerprint (docs/REPORTS.md): hashes the normalized
/// location kind — the field/array component of \p Location, dropping the
/// run-specific object index — together with both access (site, kind)
/// pairs.  The pairs are ordered canonically (smaller (site, kind) first)
/// so an A-vs-B report and the same bug observed B-vs-A collapse to one
/// fingerprint.  Invalid sites participate as the invalid index, so
/// site-less reports (workload replays of old traces) still fingerprint
/// deterministically.
inline uint64_t raceFingerprint(LocationKey Location, SiteId SiteA,
                                AccessKind KindA, SiteId SiteB,
                                AccessKind KindB) {
  uint64_t A = (uint64_t(SiteA.index()) << 1) | uint64_t(KindA);
  uint64_t B = (uint64_t(SiteB.index()) << 1) | uint64_t(KindB);
  if (B < A) {
    uint64_t T = A;
    A = B;
    B = T;
  }
  uint64_t H = fingerprintMix(uint64_t(uint32_t(Location.raw())));
  H = fingerprintMix(H ^ A);
  H = fingerprintMix(H ^ B);
  return H;
}

inline uint64_t raceFingerprint(const RaceRecord &R) {
  return raceFingerprint(R.Location, R.CurrentSite, R.CurrentAccess,
                         R.PriorSite, R.PriorAccess);
}

/// Collects race records, dedups them by fingerprint with occurrence
/// counts, and answers the counting queries used by the Table 3
/// experiments in amortized O(1): each retained record is folded into the
/// dedup/counting indexes exactly once, *lazily* on the first query after
/// it arrived, so the detector-facing report() stays a fingerprint hash
/// plus a vector append — the hot path on racy streams, where nearly
/// every event can produce a report (bench_hotpath's refhot stream).
///
/// Queries are const but fold pending records under the hood (mutable
/// indexes); like the detection runtimes themselves, the reporter is not
/// meant for concurrent use — queries happen after the drain barrier.
class RaceReporter {
public:
  /// Default cap on retained full records — far above any workload's
  /// report count, so behaviour below the cap is exactly the unbounded
  /// reporter's (records() keeps every report, duplicates included).
  static constexpr size_t DefaultCapacity = 1u << 16;

  /// One fingerprint's aggregate: its first retained record and how many
  /// times it was reported (duplicates included, capped reports included).
  struct Group {
    uint64_t Fingerprint = 0;
    uint32_t FirstRecord = 0; ///< index into records()
    uint64_t Count = 0;
  };

  explicit RaceReporter(size_t Capacity = DefaultCapacity)
      : Capacity(Capacity) {}

  void report(RaceRecord Record) {
    Record.Fingerprint = raceFingerprint(Record);
    ++TotalReported;
    if (Records.size() >= Capacity) {
      // Past the cap the indexes must be current to tell a known bug
      // (count bump) from a novel fingerprint (honest drop counter).
      fold();
      // The cap bounds record *retention*, not counting: the distinct
      // location/object sets stay exact (a known fingerprint does not
      // imply a known location — fingerprints drop the object index),
      // so reportedLocations() still matches the unbounded oracle.
      Locations.insert(Record.Location);
      Objects.insert(Record.Location.object());
      auto It = GroupIndex.find(Record.Fingerprint);
      if (It != GroupIndex.end())
        ++Groups[It->second].Count; // known bug, full record dropped
      else
        ++Dropped; // novel fingerprint lost to the cap: never silent
      return;
    }
    Records.push_back(std::move(Record));
  }

  const std::vector<RaceRecord> &records() const { return Records; }
  bool empty() const { return Records.empty(); }
  size_t size() const { return Records.size(); }

  void clear() {
    Records.clear();
    Groups.clear();
    GroupIndex.clear();
    Locations.clear();
    Objects.clear();
    Folded = 0;
    Dropped = 0;
    TotalReported = 0;
  }

  /// Distinct logical memory locations with at least one report.
  size_t countDistinctLocations() const {
    fold();
    return Locations.size();
  }

  /// Distinct *objects* with at least one report — the measure of Table 3
  /// ("here we count only the number of distinct objects mentioned").
  size_t countDistinctObjects() const {
    fold();
    return Objects.size();
  }

  /// The distinct locations reported, for set-equality tests against the
  /// exact oracle.
  const std::set<LocationKey> &reportedLocations() const {
    fold();
    return Locations;
  }

  /// Deduplicated fingerprint groups in first-seen order.
  const std::vector<Group> &groups() const {
    fold();
    return Groups;
  }

  /// Folds another reporter's findings into this one, preserving the
  /// bounded-retention semantics as if every one of its reports had been
  /// delivered here directly: records are retained up to this reporter's
  /// cap, occurrence counts carry over (including the other reporter's
  /// own past-cap bumps), the distinct location/object sets stay exact,
  /// and the drop/total counters add up.  The sharded runtime merges its
  /// per-shard reporters with this — per-shard caps must not truncate
  /// the merged location set on report-saturated streams.
  void merge(const RaceReporter &Other) {
    Other.fold();
    // How many of each fingerprint's occurrences the other reporter
    // retained as records (vs counted past its cap) — needed below to
    // carry the count excess without double-counting the records.
    std::unordered_map<uint64_t, uint64_t> Retained;
    for (const RaceRecord &Rec : Other.Records) {
      ++Retained[Rec.Fingerprint];
      if (Records.size() < Capacity) {
        Records.push_back(Rec);
      } else {
        fold();
        auto It = GroupIndex.find(Rec.Fingerprint);
        if (It != GroupIndex.end())
          ++Groups[It->second].Count;
        else
          ++Dropped;
      }
    }
    fold();
    for (const Group &G : Other.Groups) {
      uint64_t Kept = Retained[G.Fingerprint];
      if (G.Count <= Kept)
        continue; // every occurrence rode along with a record above
      uint64_t Excess = G.Count - Kept;
      auto It = GroupIndex.find(G.Fingerprint);
      if (It != GroupIndex.end())
        Groups[It->second].Count += Excess;
      else
        Dropped += Excess;
    }
    Locations.insert(Other.Locations.begin(), Other.Locations.end());
    Objects.insert(Other.Objects.begin(), Other.Objects.end());
    Dropped += Other.Dropped;
    TotalReported += Other.TotalReported;
  }

  /// Reports whose fingerprint was new after the cap was hit — the
  /// honest truncation counter surfaced in the report document.
  uint64_t droppedRecords() const { return Dropped; }

  /// Every report() call, retained or not, duplicates included.
  uint64_t totalReported() const { return TotalReported; }

  size_t capacity() const { return Capacity; }

private:
  /// Folds records [Folded, size()) into the dedup/counting indexes.
  void fold() const {
    for (; Folded != Records.size(); ++Folded) {
      const RaceRecord &Record = Records[Folded];
      auto It = GroupIndex.find(Record.Fingerprint);
      if (It != GroupIndex.end()) {
        ++Groups[It->second].Count;
      } else {
        GroupIndex.emplace(Record.Fingerprint, uint32_t(Groups.size()));
        Groups.push_back(Group{Record.Fingerprint, uint32_t(Folded), 1});
      }
      Locations.insert(Record.Location);
      Objects.insert(Record.Location.object());
    }
  }

  size_t Capacity;
  std::vector<RaceRecord> Records;
  mutable std::vector<Group> Groups;
  mutable std::unordered_map<uint64_t, uint32_t> GroupIndex;
  mutable std::set<LocationKey> Locations;
  mutable std::set<ObjectId> Objects;
  mutable size_t Folded = 0;
  uint64_t Dropped = 0;
  uint64_t TotalReported = 0;
};

} // namespace herd

#endif // HERD_DETECT_RACEREPORT_H
