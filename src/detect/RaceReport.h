//===- detect/RaceReport.h - Race records and collection --------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Race reports.  Per Definition 1, the detector reports at least one
/// racing access event for every memory location involved in a race; each
/// report pairs the current access with what is known about a prior
/// conflicting access (its lockset, and its thread when the t_⊥
/// space optimization has not erased it — Section 2.6).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_RACEREPORT_H
#define HERD_DETECT_RACEREPORT_H

#include "detect/AccessEvent.h"

#include <set>
#include <vector>

namespace herd {

/// One reported race.
struct RaceRecord {
  LocationKey Location;

  // The access that triggered the report (reported at the moment it
  // occurs, so a debugger could suspend the program here — Section 2.6).
  ThreadId CurrentThread;
  AccessKind CurrentAccess = AccessKind::Read;
  RaceLockSet CurrentLocks;
  SiteId CurrentSite;

  // What is known about the earlier conflicting access.
  bool PriorThreadKnown = false;
  ThreadId PriorThread;           ///< valid iff PriorThreadKnown
  AccessKind PriorAccess = AccessKind::Read;
  RaceLockSet PriorLocks;
};

/// Collects race records and answers the counting queries used by the
/// Table 3 experiments.
class RaceReporter {
public:
  void report(RaceRecord Record) { Records.push_back(std::move(Record)); }

  const std::vector<RaceRecord> &records() const { return Records; }
  bool empty() const { return Records.empty(); }
  size_t size() const { return Records.size(); }
  void clear() { Records.clear(); }

  /// Distinct logical memory locations with at least one report.
  size_t countDistinctLocations() const {
    std::set<LocationKey> Locs;
    for (const RaceRecord &R : Records)
      Locs.insert(R.Location);
    return Locs.size();
  }

  /// Distinct *objects* with at least one report — the measure of Table 3
  /// ("here we count only the number of distinct objects mentioned").
  size_t countDistinctObjects() const {
    std::set<ObjectId> Objects;
    for (const RaceRecord &R : Records)
      Objects.insert(R.Location.object());
    return Objects.size();
  }

  /// The distinct locations reported, for set-equality tests against the
  /// exact oracle.
  std::set<LocationKey> reportedLocations() const {
    std::set<LocationKey> Locs;
    for (const RaceRecord &R : Records)
      Locs.insert(R.Location);
    return Locs;
  }

private:
  std::vector<RaceRecord> Records;
};

} // namespace herd

#endif // HERD_DETECT_RACEREPORT_H
