//===- detect/Provenance.cpp - Diagnostic provenance capture --------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/Provenance.h"

using namespace herd;

ProvenanceStore::PerThread &ProvenanceStore::threadState(ThreadId Thread) {
  size_t Index = Thread.index();
  if (Index >= Threads.size())
    Threads.resize(Index + 1);
  return Threads[Index];
}

void ProvenanceStore::onThreadCreate(ThreadId Child, ThreadId Parent,
                                     ObjectId ThreadObj, SiteId Site) {
  (void)ThreadObj;
  PerThread &T = threadState(Child);
  T.SpawnInfo.Parent = Parent;
  T.SpawnInfo.Site = Site;
}

void ProvenanceStore::onMonitorEnter(ThreadId Thread, LockId Lock,
                                     bool Recursive, SiteId Site) {
  if (Recursive)
    return; // reentrant acquisitions keep the outermost site
  Locks[Lock.index()] = LockAcquire{Thread, Site};
}

void ProvenanceStore::onAccess(ThreadId Thread, LocationKey Location,
                               AccessKind Access, SiteId Site) {
  ++AccessesObserved;
  PerThread &T = threadState(Thread);
  T.Ring[T.Head] = AccessEntry{Location, Access, Site};
  T.Head = (T.Head + 1) % RingEntries;
  if (T.Count < RingEntries)
    ++T.Count;
}

ProvenanceStore::LockAcquire ProvenanceStore::lockAcquire(LockId Lock) const {
  auto It = Locks.find(Lock.index());
  if (It == Locks.end())
    return LockAcquire{};
  return It->second;
}

ProvenanceStore::Spawn ProvenanceStore::spawnOf(ThreadId Thread) const {
  size_t Index = Thread.index();
  if (Index >= Threads.size())
    return Spawn{};
  return Threads[Index].SpawnInfo;
}

std::vector<ProvenanceStore::AccessEntry>
ProvenanceStore::recentAccesses(ThreadId Thread) const {
  std::vector<AccessEntry> Out;
  size_t Index = Thread.index();
  if (Index >= Threads.size())
    return Out;
  const PerThread &T = Threads[Index];
  Out.reserve(T.Count);
  uint32_t Start = (T.Head + RingEntries - T.Count) % RingEntries;
  for (uint32_t I = 0; I != T.Count; ++I)
    Out.push_back(T.Ring[(Start + I) % RingEntries]);
  return Out;
}
