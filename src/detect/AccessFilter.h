//===- detect/AccessFilter.h - Inline L0 hook-path filter -------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hook-path L0 filter (docs/HOOKPATH.md): a per-thread, fixed-size
/// direct-mapped filter probed inline at the instrumentation site, in front
/// of the detection runtime's full onAccess path.  A hit proves the access
/// redundant by the same invariant AccessCache proves (Section 4.2) under a
/// strictly more conservative validity rule, so hits skip event creation
/// entirely:
///
///  * same thread — the filter is per-thread;
///  * same access kind — a slot stores the kind it was inserted with and a
///    probe must match it exactly (so every hit maps onto exactly one of
///    the thread's per-kind AccessCaches);
///  * same lockset, no intervening sync — a slot stores the thread's sync
///    epoch at insertion time and the epoch is bumped on *every* sync
///    operation the thread performs (monitor enter/exit, thread
///    create/exit/join), which over-approximates AccessCache's finer
///    per-lock eviction lists;
///  * no shared-transition or conflict displacement — the owning runtime
///    clears the key's slot whenever the detector-side machinery evicts it
///    (ownership shared-transition evictKey, cache conflict eviction).
///
/// Together these make every L0 hit a guaranteed AccessCache hit — the
/// differential oracle RaceRuntime/ShardedRuntime assert in debug builds
/// via AccessCache::provesRedundant.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_ACCESSFILTER_H
#define HERD_DETECT_ACCESSFILTER_H

#include "ir/Instr.h"
#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace herd {

/// One thread's L0 filter: direct-mapped (location, kind) -> last-seen
/// sync-epoch slots plus the thread's current sync epoch.
class AccessFilter {
public:
  static constexpr uint32_t DefaultEntries = 256;

  /// \p NumEntries must be a power of two.
  explicit AccessFilter(uint32_t NumEntries = DefaultEntries)
      : Slots(NumEntries), Shift(shiftFor(NumEntries)), Mask(NumEntries - 1) {
    assert(NumEntries != 0 && (NumEntries & (NumEntries - 1)) == 0 &&
           "filter size must be a power of two");
  }

  /// The inline probe: true iff the slot for \p Key holds \p Key with the
  /// same kind and was inserted in the current sync epoch.  Counts a hit or
  /// a miss; use holds() for the counter-free form.
  bool probe(LocationKey Key, AccessKind Kind) {
    if (holds(Key, Kind)) {
      ++HitCount;
      return true;
    }
    ++MissCount;
    return false;
  }

  /// Counter-free probe (tests and assertions).
  bool holds(LocationKey Key, AccessKind Kind) const {
    const Slot &S = Slots[indexOf(Key, Kind)];
    return S.Epoch == Epoch && S.KeyRaw == Key.raw() && S.Kind == Kind;
  }

  /// Records \p Key at the current epoch, displacing whatever occupied its
  /// slot.  Call only after the full delivery path processed the access (or
  /// proved it redundant via the detector-side cache), so a later hit is
  /// backed by detector state.
  void insert(LocationKey Key, AccessKind Kind) {
    Slot &S = Slots[indexOf(Key, Kind)];
    S.KeyRaw = Key.raw();
    S.Epoch = Epoch;
    S.Kind = Kind;
  }

  /// Invalidates every slot in O(1): called on each sync operation the
  /// owning thread performs.  Epoch 0 is reserved as "never valid" so
  /// zero-initialized slots cannot match.
  void bumpEpoch() {
    ++Epoch;
    ++EpochBumpCount;
  }

  /// Drops \p Key's slots (both kinds) if they currently hold \p Key:
  /// called when the detector-side machinery evicts the key (shared
  /// transition, cache conflict displacement).  Clearing both kinds is a
  /// safe over-approximation — a kind whose cache entry survived just
  /// re-seeds its slot on the next full-path delivery.
  void invalidateKey(LocationKey Key) {
    bool Dropped = false;
    for (AccessKind Kind : {AccessKind::Read, AccessKind::Write}) {
      Slot &S = Slots[indexOf(Key, Kind)];
      if (S.KeyRaw == Key.raw() && S.Epoch == Epoch) {
        S.Epoch = 0;
        Dropped = true;
      }
    }
    if (Dropped)
      ++KeyInvalidationCount;
  }

  uint32_t capacity() const { return uint32_t(Slots.size()); }

  uint64_t hits() const { return HitCount; }
  uint64_t misses() const { return MissCount; }
  uint64_t epochBumps() const { return EpochBumpCount; }
  uint64_t keyInvalidations() const { return KeyInvalidationCount; }

private:
  struct Slot {
    uint64_t KeyRaw = 0;
    uint64_t Epoch = 0; ///< sync epoch at insertion; 0 = never valid
    AccessKind Kind = AccessKind::Read;
  };

  static constexpr uint32_t shiftFor(uint32_t NumEntries) {
    uint32_t Shift = 64;
    while (NumEntries > 1) {
      NumEntries >>= 1;
      --Shift;
    }
    return Shift;
  }

  uint32_t indexOf(LocationKey Key, AccessKind Kind) const {
    // Same multiplicative high-bits hash as AccessCache (Section 4.3),
    // with the access kind folded into the low index bit so a location's
    // read and write entries occupy distinct slots — a hot field accessed
    // as load-then-store every iteration must not thrash one slot (the
    // caches are per-kind, so the backing invariant is per-kind too).
    if (Shift >= 64)
      return 0;
    uint32_t Index = uint32_t((Key.raw() * 0x9e3779b97f4a7c15ull) >> Shift);
    return (Index ^ uint32_t(Kind)) & Mask;
  }

  std::vector<Slot> Slots;
  uint32_t Shift;
  uint32_t Mask; ///< capacity - 1 (folding the kind bit stays in range)
  uint64_t Epoch = 1; ///< starts past the reserved "never valid" epoch 0
  uint64_t HitCount = 0;
  uint64_t MissCount = 0;
  uint64_t EpochBumpCount = 0;
  uint64_t KeyInvalidationCount = 0;
};

} // namespace herd

#endif // HERD_DETECT_ACCESSFILTER_H
