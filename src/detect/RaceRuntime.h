//===- detect/RaceRuntime.h - Hooks-to-detector glue ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RaceRuntime implements the interpreter's RuntimeHooks interface and
/// drives the detection pipeline of Figure 1's right half:
///
///   access event -> per-thread cache (Section 4) -> ownership filter and
///   trie detector (Sections 3 and 7).
///
/// It maintains each thread's lockset, models join ordering with per-thread
/// dummy locks S_j (Section 2.3), and wires the ownership-to-shared
/// transition to cache eviction (the Section 7.2 soundness fix).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_RACERUNTIME_H
#define HERD_DETECT_RACERUNTIME_H

#include "detect/AccessCache.h"
#include "detect/Detector.h"
#include "detect/DetectorStats.h"
#include "detect/RaceReport.h"
#include "runtime/Hooks.h"
#include "support/LockSetInterner.h"

#include <memory>
#include <vector>

namespace herd {

/// Configuration for the runtime half of the pipeline; each flag maps to an
/// ablation of the paper's experiments.
struct RaceRuntimeOptions {
  /// Per-thread read/write caches ("NoCache" disables; Table 2).
  bool UseCache = true;

  /// Ownership filter ("NoOwnership" disables; Table 3).
  bool UseOwnership = true;

  /// Object-granularity locations ("FieldsMerged"; Table 3).
  bool FieldsMerged = false;

  /// Model join ordering with dummy locks S_j (Section 2.3).  Disabling
  /// reproduces Eraser's behaviour on the mtrt join idiom (Section 8.3).
  bool ModelJoin = true;

  /// Entries per (thread, kind) access cache; must be a power of two
  /// (`herd --cache-size=N`).  The paper's experiments use 256.
  uint32_t CacheEntries = 256;

  /// Capacity hints from static analysis (`herd --plan=auto|off|N`).
  /// Applied to the detector and thread table at construction; an empty
  /// plan means on-demand growth exactly as before.
  DetectorPlan Plan;
};

/// The runtime detection pipeline.
class RaceRuntime : public RuntimeHooks {
public:
  explicit RaceRuntime(RaceRuntimeOptions Opts = {});
  ~RaceRuntime() override;

  void onThreadCreate(ThreadId Child, ThreadId Parent,
                      ObjectId ThreadObj) override;
  void onThreadExit(ThreadId Dying) override;
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;

  RaceReporter &reporter() { return Reporter; }
  const RaceReporter &reporter() const { return Reporter; }

  RaceRuntimeStats stats() const;

  /// The current lockset of \p Thread (dummy join locks included); exposed
  /// for tests.
  const LockSet &lockSetOf(ThreadId Thread) const;

  /// The dummy lock S_j modelling ordering with thread \p Thread.  Dummy
  /// lock ids live above any heap object's lock id.
  static LockId dummyLockOf(ThreadId Thread) {
    return LockId((1u << 30) + Thread.index());
  }

private:
  struct PerThread {
    explicit PerThread(uint32_t CacheEntries)
        : ReadCache(CacheEntries), WriteCache(CacheEntries) {}

    LockSet Locks;                    ///< held locks incl. dummy join locks
    std::vector<LockId> RealStack;    ///< releasable locks, outer to inner
    AccessCache ReadCache;
    AccessCache WriteCache;

    /// Interned id of Locks, refreshed lazily: locksets only change at
    /// monitor/thread events, so the per-access cost is a dirty-bit test
    /// instead of a SortedIdSet copy.
    LockSetId LocksId = LockSetInterner::emptySet();
    bool LocksDirty = false;
  };

  PerThread &threadState(ThreadId Thread);

  RaceRuntimeOptions Opts;
  RaceReporter Reporter;
  LockSetInterner Interner; ///< declared before Det, which resolves into it
  Detector Det;
  std::vector<std::unique_ptr<PerThread>> Threads;
  uint64_t EventsSeen = 0;
};

} // namespace herd

#endif // HERD_DETECT_RACERUNTIME_H
