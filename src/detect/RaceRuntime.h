//===- detect/RaceRuntime.h - Hooks-to-detector glue ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RaceRuntime implements the interpreter's RuntimeHooks interface and
/// drives the detection pipeline of Figure 1's right half:
///
///   access event -> per-thread cache (Section 4) -> ownership filter and
///   trie detector (Sections 3 and 7).
///
/// It maintains each thread's lockset, models join ordering with per-thread
/// dummy locks S_j (Section 2.3), and wires the ownership-to-shared
/// transition to cache eviction (the Section 7.2 soundness fix).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_RACERUNTIME_H
#define HERD_DETECT_RACERUNTIME_H

#include "detect/AccessCache.h"
#include "detect/AccessFilter.h"
#include "detect/Detector.h"
#include "detect/DetectorStats.h"
#include "detect/RaceReport.h"
#include "runtime/Hooks.h"
#include "support/LockSetInterner.h"

#include <cassert>
#include <memory>
#include <vector>

namespace herd {

/// Configuration for the runtime half of the pipeline; each flag maps to an
/// ablation of the paper's experiments.
struct RaceRuntimeOptions {
  /// Per-thread read/write caches ("NoCache" disables; Table 2).
  bool UseCache = true;

  /// Ownership filter ("NoOwnership" disables; Table 3).
  bool UseOwnership = true;

  /// Object-granularity locations ("FieldsMerged"; Table 3).
  bool FieldsMerged = false;

  /// Model join ordering with dummy locks S_j (Section 2.3).  Disabling
  /// reproduces Eraser's behaviour on the mtrt join idiom (Section 8.3).
  bool ModelJoin = true;

  /// Entries per (thread, kind) access cache; must be a power of two
  /// (`herd --cache-size=N`).  The paper's experiments use 256.
  uint32_t CacheEntries = 256;

  /// Enable the hook-path L0 filter consulted by onAccessFast
  /// (`herd --hook-filter=on|off`, docs/HOOKPATH.md).  Only effective
  /// together with UseCache: the filter's differential oracle is the
  /// detector-side cache, so without it the fast path stays off.
  bool HookFilter = false;

  /// Capacity hints from static analysis (`herd --plan=auto|off|N`).
  /// Applied to the detector and thread table at construction; an empty
  /// plan means on-demand growth exactly as before.
  DetectorPlan Plan;
};

/// The runtime detection pipeline.
class RaceRuntime : public RuntimeHooks {
public:
  explicit RaceRuntime(RaceRuntimeOptions Opts = {});
  ~RaceRuntime() override;

  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId ThreadObj,
                      SiteId Site = SiteId::invalid()) override;
  void onThreadExit(ThreadId Dying) override;
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;

  /// The devirtualized hook-path entry (docs/HOOKPATH.md): probes the
  /// thread's L0 filter inline and only falls through to the full onAccess
  /// path on a miss.  The interpreter calls this through a concrete
  /// RaceRuntime pointer when the single-detector fast path is active, so
  /// the probe inlines into the dispatch loop with no virtual hop.
  void onAccessFast(ThreadId Thread, LocationKey Location, AccessKind Access,
                    SiteId Site) {
    if (FilterOn) {
      // Thread state is fetched with an inline bounds-checked load rather
      // than the out-of-line threadState(): a null slot (first event from
      // this thread) falls through to onAccess, which creates it.
      size_t Index = Thread.index();
      PerThread *T = Index < Threads.size() ? Threads[Index].get() : nullptr;
      if (T) {
        LocationKey Key =
            Opts.FieldsMerged ? Location.withFieldsMerged() : Location;
        if (T->Filter.probe(Key, Access)) {
          // The differential oracle: an L0 hit must be backed by a resident
          // detector-side cache entry, i.e. the full path would have proven
          // the same access redundant (see docs/HOOKPATH.md).
          assert((Access == AccessKind::Read ? T->ReadCache : T->WriteCache)
                     .provesRedundant(Key) &&
                 "L0 filter hit not backed by the detector-side cache");
          return;
        }
      }
    }
    RaceRuntime::onAccess(Thread, Location, Access, Site);
  }

  /// The interpreter's per-quantum probe handle (docs/HOOKPATH.md): the
  /// running thread's L0 filter, hoisted into the dispatch loop so the
  /// per-access probe is one register-resident pointer instead of a walk
  /// through the runtime's thread table.  Null when the probe cannot be
  /// hoisted — filter off, or FieldsMerged, whose key transform the
  /// onAccessFast fallback performs.  Creates the thread's state on first
  /// use; the returned address is stable for the thread's lifetime (state
  /// is heap-allocated) and every invalidation channel mutates the
  /// pointed-to filter in place.
  AccessFilter *filterHandle(ThreadId Thread) {
    if (!FilterOn || Opts.FieldsMerged)
      return nullptr;
    return &threadState(Thread).Filter;
  }

  /// The differential oracle behind the interpreter-side inline probe
  /// (debug builds assert this on every hoisted L0 hit): the detector-side
  /// cache must prove the same access redundant.
  bool oracleHolds(ThreadId Thread, LocationKey Key,
                   AccessKind Access) const {
    size_t Index = Thread.index();
    if (Index >= Threads.size() || !Threads[Index])
      return false;
    const PerThread &T = *Threads[Index];
    return (Access == AccessKind::Read ? T.ReadCache : T.WriteCache)
        .provesRedundant(Key);
  }

  RaceReporter &reporter() { return Reporter; }
  const RaceReporter &reporter() const { return Reporter; }

  RaceRuntimeStats stats() const;

  /// The current lockset of \p Thread (dummy join locks included); exposed
  /// for tests.
  const LockSet &lockSetOf(ThreadId Thread) const;

  /// The dummy lock S_j modelling ordering with thread \p Thread.  Dummy
  /// lock ids live above any heap object's lock id.
  static LockId dummyLockOf(ThreadId Thread) {
    return LockId((1u << 30) + Thread.index());
  }

private:
  struct PerThread {
    explicit PerThread(uint32_t CacheEntries)
        : ReadCache(CacheEntries), WriteCache(CacheEntries) {}

    LockSet Locks;                    ///< held locks incl. dummy join locks
    std::vector<LockId> RealStack;    ///< releasable locks, outer to inner
    AccessCache ReadCache;
    AccessCache WriteCache;
    AccessFilter Filter;              ///< hook-path L0 filter (HookFilter)

    /// Interned id of Locks, refreshed lazily: locksets only change at
    /// monitor/thread events, so the per-access cost is a dirty-bit test
    /// instead of a SortedIdSet copy.
    LockSetId LocksId = LockSetInterner::emptySet();
    bool LocksDirty = false;
  };

  PerThread &threadState(ThreadId Thread);

  RaceRuntimeOptions Opts;
  bool FilterOn; ///< Opts.HookFilter gated on Opts.UseCache (the oracle)
  RaceReporter Reporter;
  LockSetInterner Interner; ///< declared before Det, which resolves into it
  Detector Det;
  std::vector<std::unique_ptr<PerThread>> Threads;
  uint64_t EventsSeen = 0;
};

} // namespace herd

#endif // HERD_DETECT_RACERUNTIME_H
