//===- detect/AccessTrie.h - Trie-based access history ----------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edge-labeled trie that stores the access history of one memory
/// location (Section 3.2).  Edges are labeled with lock identifiers; the
/// path from the root to a node spells the node's lockset in canonical
/// (ascending) order.  Nodes hold a thread-lattice value and an access
/// kind; internal nodes with no recorded access hold (t_⊤, READ).
///
/// Processing an event performs, in order:
///   1. the weakness check: is a stored access ⊑ the new one?  If so the
///      event is discarded (the common case);
///   2. the race check (Cases I-III of Section 3.2.1), reporting at most
///      one race per event;
///   3. the update: meet the event into the node for its exact lockset;
///   4. pruning of stored accesses that the new event is weaker than.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_ACCESSTRIE_H
#define HERD_DETECT_ACCESSTRIE_H

#include "detect/AccessEvent.h"

#include <memory>
#include <vector>

namespace herd {

/// Access history of one logical memory location.
class AccessTrie {
public:
  /// Result of feeding one event through the trie.
  struct Outcome {
    bool Filtered = false; ///< a stored weaker access already covers this
    bool Raced = false;    ///< Case II fired

    // Prior-access information when Raced (for the report): the earlier
    // access's lockset, kind, and its thread when known (t_⊥ erases it).
    bool PriorThreadKnown = false;
    ThreadId PriorThread;
    AccessKind PriorAccess = AccessKind::Read;
    LockSet PriorLocks;
  };

  AccessTrie();
  ~AccessTrie();
  AccessTrie(AccessTrie &&) noexcept;
  AccessTrie &operator=(AccessTrie &&) noexcept;

  /// Runs the weakness check, race check, update and pruning for one event.
  Outcome process(ThreadId Thread, const LockSet &Locks, AccessKind Access);

  /// Number of trie nodes currently allocated (the root counts as one);
  /// Section 8.2 reports this as the detector's space consumption.
  size_t nodeCount() const { return NumNodes; }

  /// Number of nodes carrying a recorded access (t != t_⊤).
  size_t storedAccessCount() const;

private:
  struct Node;

  bool findWeaker(const Node &N, const std::vector<LockId> &Locks,
                  size_t From, ThreadLattice Thread, AccessKind Access) const;

  const Node *findRace(const Node &N, const LockSet &Locks,
                       ThreadLattice Thread, AccessKind Access,
                       std::vector<LockId> &Path,
                       std::vector<LockId> &RacePath) const;

  Node *updateNode(const LockSet &Locks, ThreadLattice Thread,
                   AccessKind Access);

  void pruneStronger(Node &N, const std::vector<LockId> &Locks,
                     size_t Matched, ThreadLattice Thread, AccessKind Access,
                     const Node *Keep);

  std::unique_ptr<Node> Root;
  size_t NumNodes = 1;
};

} // namespace herd

#endif // HERD_DETECT_ACCESSTRIE_H
