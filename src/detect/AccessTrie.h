//===- detect/AccessTrie.h - Trie-based access history ----------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edge-labeled trie that stores the access history of one memory
/// location (Section 3.2).  Edges are labeled with lock identifiers; the
/// path from the root to a node spells the node's lockset in canonical
/// (ascending) order.  Nodes hold a thread-lattice value and an access
/// kind; internal nodes with no recorded access hold (t_⊤, READ).
///
/// Processing an event performs, in order:
///   1. the weakness check: is a stored access ⊑ the new one?  If so the
///      event is discarded (the common case);
///   2. the race check (Cases I-III of Section 3.2.1), reporting at most
///      one race per event;
///   3. the update: meet the event into the node for its exact lockset;
///   4. pruning of stored accesses that the new event is weaker than.
///
/// Storage: nodes live in an Arena<TrieNode> and a node's out-edges live
/// as one contiguous, label-sorted (Label, Child) array in a TrieEdgePool
/// of power-of-two blocks.  The layout is chosen for the weakness check,
/// which runs on every event: scanning a node's edge labels touches one
/// sequential block, and a child node is only dereferenced when its label
/// matches a held lock — a linked sibling list would pull every child's
/// cache line just to read its label.  Both pools recycle freed storage
/// through free lists, so the steady-state hot path allocates nothing,
/// and a whole Detector's tries share one TrieStore (hence one per shard
/// in the sharded runtime, keeping shards off the global allocator).  A
/// default-constructed trie owns a private store for standalone use.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_ACCESSTRIE_H
#define HERD_DETECT_ACCESSTRIE_H

#include "detect/AccessEvent.h"
#include "support/Arena.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace herd {

/// One out-edge of a trie node.
struct TrieEdge {
  LockId Label;
  uint32_t Child = 0xFFFFFFFF;
};

/// Bump-pointer pool of power-of-two TrieEdge blocks with per-class free
/// lists.  Blocks of capacity <= ChunkSize live inside fixed chunks and are
/// addressed by a 31-bit edge index; rarer, larger blocks are individually
/// allocated and addressed with the top bit set.  Block storage never
/// moves, so TrieEdge pointers stay valid across unrelated allocations.
class TrieEdgePool {
public:
  static constexpr uint32_t None = 0xFFFFFFFF;
  static constexpr uint32_t ChunkSize = 4096; ///< edges per chunk
  static constexpr uint8_t MaxInlineClass = 12; ///< 2^12 edges per block max

  /// Returns a block handle with capacity 2^Class edges.
  uint32_t allocate(uint8_t Class) {
    if (Class <= MaxInlineClass) {
      uint32_t &Head = FreeHeads[Class];
      if (Head != None) {
        uint32_t Block = Head;
        Head = at(Block)->Child; // free-list link lives in the first edge
        return Block;
      }
      uint32_t Cap = 1u << Class;
      // Align the bump pointer to the block size: power-of-two blocks then
      // never straddle a chunk boundary.
      Bump = (Bump + Cap - 1) & ~(Cap - 1);
      uint32_t Block = Bump;
      assert(Block < LargeBit && "edge pool address space exhausted");
      if (Block / ChunkSize >= Chunks.size())
        Chunks.push_back(std::make_unique<TrieEdge[]>(ChunkSize));
      Bump += Cap;
      return Block;
    }
    auto &Free = LargeFree[Class];
    if (!Free.empty()) {
      uint32_t Block = Free.back();
      Free.pop_back();
      return Block;
    }
    Large.push_back(std::make_unique<TrieEdge[]>(size_t(1) << Class));
    return LargeBit | uint32_t(Large.size() - 1);
  }

  /// Returns \p Block (allocated with \p Class) to the pool.
  void release(uint32_t Block, uint8_t Class) {
    if (Block & LargeBit) {
      LargeFree[Class].push_back(Block);
      return;
    }
    assert(Class <= MaxInlineClass);
    at(Block)->Child = FreeHeads[Class];
    FreeHeads[Class] = Block;
  }

  /// Pre-allocates chunk storage so at least \p Edges more inline edges can
  /// be bump-allocated without touching the global allocator.  Requests are
  /// clamped to the 31-bit inline address space.
  void reserveEdges(size_t Edges) {
    size_t Limit = size_t(LargeBit) - 1;
    if (Edges > Limit - Bump)
      Edges = Limit - Bump;
    size_t WantChunks = (size_t(Bump) + Edges + ChunkSize - 1) / ChunkSize;
    while (Chunks.size() < WantChunks)
      Chunks.push_back(std::make_unique<TrieEdge[]>(ChunkSize));
  }

  /// Inline edges backed by already-allocated chunk storage.
  size_t reservedEdges() const { return Chunks.size() * size_t(ChunkSize); }

  TrieEdge *at(uint32_t Block) {
    if (Block & LargeBit)
      return Large[Block & ~LargeBit].get();
    return &Chunks[Block / ChunkSize][Block % ChunkSize];
  }
  const TrieEdge *at(uint32_t Block) const {
    return const_cast<TrieEdgePool *>(this)->at(Block);
  }

private:
  static constexpr uint32_t LargeBit = 0x80000000;

  std::vector<std::unique_ptr<TrieEdge[]>> Chunks;
  uint32_t Bump = 0;
  std::array<uint32_t, MaxInlineClass + 1> FreeHeads = [] {
    std::array<uint32_t, MaxInlineClass + 1> A{};
    A.fill(None);
    return A;
  }();
  std::vector<std::unique_ptr<TrieEdge[]>> Large;
  std::array<std::vector<uint32_t>, 32> LargeFree;
};

/// One trie node: lattice state plus its out-edge array (label-sorted,
/// capacity 2^EdgeClass) in the owning store's edge pool.
struct TrieNode {
  ThreadLattice Thread = ThreadLattice::top();
  AccessKind Access = AccessKind::Read;
  uint8_t EdgeClass = 0;   ///< log2 capacity of Edges (valid iff allocated)
  uint32_t EdgeCount = 0;  ///< live out-edges
  uint32_t Edges = 0xFFFFFFFF; ///< TrieEdgePool block, or None

  /// Source site of the last event merged into this node — diagnostics
  /// only (the prior-access site in race reports); never consulted by the
  /// weakness/race checks, so detection is independent of it.  Events for
  /// one location arrive in a deterministic order in every execution mode
  /// (docs/SHARDING.md), so "last updater" is stable across modes.
  SiteId Site;

  bool hasInfo() const { return !Thread.isTop(); }
};

/// The node arena and edge pool shared by all tries of one Detector (one
/// instance per shard in the sharded runtime).
struct TrieStore {
  Arena<TrieNode> Nodes;
  TrieEdgePool Edges;
};

/// The node pool type, kept as a named alias for stats plumbing.
using TrieArena = Arena<TrieNode>;

/// Access history of one logical memory location.
class AccessTrie {
public:
  /// Result of feeding one event through the trie.
  struct Outcome {
    bool Filtered = false; ///< a stored weaker access already covers this
    bool Raced = false;    ///< Case II fired

    // Prior-access information when Raced (for the report): the earlier
    // access's lockset, kind, and its thread when known (t_⊥ erases it).
    bool PriorThreadKnown = false;
    ThreadId PriorThread;
    AccessKind PriorAccess = AccessKind::Read;
    RaceLockSet PriorLocks;
    SiteId PriorSite; ///< site of the last event merged into the hit node
  };

  /// Reusable traversal scratch.  The Detector keeps one per instance so
  /// the race-check path vectors never reallocate in steady state; the
  /// 3-argument process() overload uses a transient local one.
  struct Scratch {
    std::vector<LockId> Path;
    std::vector<LockId> RacePath;
  };

  /// Standalone trie owning a private store (tests, property checks).
  AccessTrie() = default;

  /// Trie whose nodes live in \p Shared; the store must outlive the trie.
  explicit AccessTrie(TrieStore &Shared) : Store(&Shared) {}

  ~AccessTrie();
  AccessTrie(AccessTrie &&Other) noexcept;
  AccessTrie &operator=(AccessTrie &&Other) noexcept;

  /// Runs the weakness check, race check, update and pruning for one event.
  Outcome process(ThreadId Thread, const LockSet &Locks, AccessKind Access);

  /// Same, but reusing caller-owned traversal scratch (the hot path).
  Outcome process(ThreadId Thread, const LockSet &Locks, AccessKind Access,
                  Scratch &S);

  /// Same, additionally recording \p Site as the event's source site so a
  /// later race against this access can name it (Outcome::PriorSite).
  Outcome process(ThreadId Thread, const LockSet &Locks, AccessKind Access,
                  SiteId Site, Scratch &S);

  /// Number of trie nodes currently allocated (the root counts as one);
  /// Section 8.2 reports this as the detector's space consumption.  The
  /// root is materialized lazily, so an untouched trie reports 1 without
  /// holding an arena slot.
  size_t nodeCount() const { return NumNodes ? NumNodes : 1; }

  /// Number of nodes carrying a recorded access (t != t_⊤).
  size_t storedAccessCount() const;

private:
  static constexpr uint32_t None = TrieArena::None;

  bool findWeaker(uint32_t N, const std::vector<LockId> &Locks, size_t From,
                  ThreadLattice Thread, AccessKind Access) const;

  uint32_t findRace(uint32_t N, const LockSet &Locks, ThreadLattice Thread,
                    AccessKind Access, std::vector<LockId> &Path,
                    std::vector<LockId> &RacePath) const;

  uint32_t getOrCreateChild(uint32_t Parent, LockId Label);

  uint32_t updateNode(const LockSet &Locks, ThreadLattice Thread,
                      AccessKind Access, SiteId Site);

  void pruneStronger(uint32_t N, const std::vector<LockId> &Locks,
                     size_t Matched, ThreadLattice Thread, AccessKind Access,
                     uint32_t Keep);

  void releaseSubtree();

  std::unique_ptr<TrieStore> Owned; ///< set iff default-constructed
  TrieStore *Store = nullptr;       ///< &*Owned, or the Detector's store
  uint32_t Root = None;             ///< materialized on first process()
  size_t NumNodes = 0;              ///< materialized nodes in this trie
};

} // namespace herd

#endif // HERD_DETECT_ACCESSTRIE_H
