//===- detect/TraceFile.h - Streaming trace file I/O ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming record/replay over the versioned trace format of
/// detect/TraceFormat.h (see docs/REPLAY.md):
///
///   - TraceWriter is a RuntimeHooks sink that streams every event to a
///     file as it happens — constant memory, so a recording run never
///     materializes the "prohibitively large" trace structure of Section 9
///     in RAM;
///   - TraceReader replays a trace file into any RuntimeHooks sink in
///     bounded-size chunks — the replay driver behind `herd --replay`,
///     which can feed the serial RaceRuntime, the ShardedRuntime at any
///     shard count, or any baseline detector, turning one recorded
///     execution into a differential oracle across every detector.
///
/// All failures (unopenable paths, short writes, bad headers, truncated or
/// corrupt records) surface as TraceResult diagnostics, never as crashes.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_TRACEFILE_H
#define HERD_DETECT_TRACEFILE_H

#include "detect/EventLog.h"
#include "detect/TraceFormat.h"
#include "runtime/Hooks.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace herd {

/// Streams runtime events to a trace file.  Events arriving while no file
/// is open (or after a write error) are dropped; the first error is
/// sticky and reported by close().
class TraceWriter : public RuntimeHooks {
public:
  TraceWriter() = default;
  ~TraceWriter() override;

  TraceWriter(const TraceWriter &) = delete;
  TraceWriter &operator=(const TraceWriter &) = delete;

  /// Creates/truncates \p Path and writes the header.
  TraceResult open(const std::string &Path);

  /// Flushes buffered records and closes the file; returns the first write
  /// error encountered anywhere in the stream.  Idempotent.
  TraceResult close();

  bool isOpen() const { return File != nullptr; }
  uint64_t recordsWritten() const { return Records; }

  /// Total bytes emitted, header included — the Section 9 trace-growth
  /// measure (recordsWritten() * logRecordBytes() + header).
  uint64_t bytesWritten() const { return Bytes; }

  /// Appends one pre-built record (used by writeTraceFile and tests; the
  /// hook overrides below route through this too).
  void write(const EventLog::Record &R);

  // RuntimeHooks:
  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId ThreadObj,
                      SiteId Site = SiteId::invalid()) override;
  void onThreadExit(ThreadId Dying) override;
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;
  void onRunEnd() override; ///< flushes the buffer (the file stays open)

private:
  void flushBuffer();

  std::FILE *File = nullptr;
  std::string Path;
  std::vector<uint8_t> Buffer; ///< pending encoded records
  uint64_t Records = 0;
  uint64_t Bytes = 0;
  bool WriteFailed = false;
  std::string FirstError;
};

/// Replays a trace file into a RuntimeHooks sink, reading in bounded
/// chunks (never the whole file at once).
class TraceReader {
public:
  TraceReader() = default;
  ~TraceReader();

  TraceReader(const TraceReader &) = delete;
  TraceReader &operator=(const TraceReader &) = delete;

  /// Opens \p Path and validates the header.
  TraceResult open(const std::string &Path);

  /// Streams every remaining record into \p Sink in recorded order,
  /// stopping with a diagnostic at the first malformed record.  onRunEnd is
  /// not invoked — the caller decides when the sink's run is over.
  TraceResult replayInto(RuntimeHooks &Sink);

  uint64_t recordsRead() const { return Records; }

  void close();

private:
  std::FILE *File = nullptr;
  std::string Path;
  uint64_t Records = 0;
};

/// Writes \p Log to \p Path in one call (streamed through TraceWriter).
TraceResult writeTraceFile(const std::string &Path, const EventLog &Log);

/// Reads the trace at \p Path into \p Out (cleared first).
TraceResult readTraceFile(const std::string &Path, EventLog &Out);

} // namespace herd

#endif // HERD_DETECT_TRACEFILE_H
