//===- detect/DetectorPlan.h - Analysis-driven capacity plan ----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capacity and layout hints flowing from static analysis into the
/// detection runtimes.  The paper's premise is that compile-time analysis
/// pays for runtime efficiency: Section 3.3's race set bounds which
/// statements are instrumented, so it also bounds how many locations,
/// trie nodes, and locksets the detector can ever see.  A DetectorPlan
/// carries those bounds so the runtime can pre-size its FlatTable /
/// Arena / TrieEdgePool / LockSetInterner before the first event, turning
/// cold-start first-touch growth (the ~2.1 allocs/event cold wall in
/// BENCH_hotpath.json) into a handful of up-front reservations.
///
/// Plans are hints, never limits: an empty or undersized plan only means
/// the structures grow on demand exactly as before.  Race reports are
/// bit-identical with or without a plan (pre-sizing changes when memory
/// is allocated, and pre-interning changes lockset id assignment, neither
/// of which the detection algorithm observes).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_DETECTORPLAN_H
#define HERD_DETECT_DETECTORPLAN_H

#include "support/Ids.h"
#include "support/SortedIdSet.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace herd {

/// Capacity hints for one detection run.  All counts are expectations, not
/// limits; zero means "no hint" for that structure.
struct DetectorPlan {
  /// Distinct logical memory locations the run is expected to touch
  /// (race-set targets scaled by instance/array fan-out).
  uint64_t ExpectedLocations = 0;

  /// Locations expected to reach the shared state (trie-owning).  At most
  /// ExpectedLocations; used to size trie storage.
  uint64_t ExpectedSharedLocations = 0;

  /// Trie nodes across all shared locations.  Nodes track distinct
  /// (location, lockset-prefix) pairs, so this scales with shared
  /// locations times typical lockset depth (0-2 per Section 4.2).
  uint64_t ExpectedTrieNodes = 0;

  /// Edge-pool slots across all tries (edge blocks are power-of-two
  /// sized, so this over-approximates live edges by design).
  uint64_t ExpectedTrieEdges = 0;

  /// Threads expected to start (SyncAnalysis thread-allocation sites).
  uint64_t ExpectedThreads = 0;

  /// Distinct locksets expected to be interned.
  uint64_t ExpectedLocksets = 0;

  /// Locksets the analysis proves can occur, pre-interned before the run
  /// so the first monitorenter on the hot path finds them resident (the
  /// common case per Section 4.2 is 0-2 locks).  Applied once per
  /// interner, not per shard.
  std::vector<SortedIdSet<LockId>> PreinternLocksets;

  /// True when the plan carries no hints at all (plan=off, or replay
  /// without analysis results).
  bool empty() const {
    return ExpectedLocations == 0 && ExpectedSharedLocations == 0 &&
           ExpectedTrieNodes == 0 && ExpectedTrieEdges == 0 &&
           ExpectedThreads == 0 && ExpectedLocksets == 0 &&
           PreinternLocksets.empty();
  }

  /// A copy with every field capped at a sane ceiling, so a hostile or
  /// buggy plan (e.g. `--plan=<huge>`) cannot commit unbounded memory
  /// up front.  The caps are far above every workload in this repo but
  /// keep worst-case reservation in the hundreds of MB, not exabytes.
  DetectorPlan clamped() const {
    DetectorPlan P = *this;
    P.ExpectedLocations = std::min(P.ExpectedLocations, MaxLocations);
    P.ExpectedSharedLocations =
        std::min(P.ExpectedSharedLocations, P.ExpectedLocations);
    P.ExpectedTrieNodes = std::min(P.ExpectedTrieNodes, MaxTrieStorage);
    P.ExpectedTrieEdges = std::min(P.ExpectedTrieEdges, MaxTrieStorage);
    P.ExpectedThreads = std::min(P.ExpectedThreads, MaxThreads);
    P.ExpectedLocksets = std::min(P.ExpectedLocksets, MaxLocksets);
    return P;
  }

  /// The explicit-size plan behind `--plan=N`: expect \p Locations
  /// locations, all shared, with trie storage derived from the paper's
  /// observation that histories stay shallow (about two nodes and two
  /// edge slots per shared location in every measured workload).
  static DetectorPlan sized(uint64_t Locations) {
    DetectorPlan P;
    P.ExpectedLocations = Locations;
    P.ExpectedSharedLocations = Locations;
    P.ExpectedTrieNodes = Locations * 2;
    P.ExpectedTrieEdges = Locations * 2;
    return P.clamped();
  }

  /// The slice of this plan that one of \p NumShards shard detectors
  /// should apply.  Location-scaled fields divide by the shard count with
  /// 5/4 headroom (location->shard hashing is uniform, not exact);
  /// interner-scoped fields are dropped because the sharded runtime's
  /// interner is shared and planned once at the pool level.
  DetectorPlan forShard(size_t Shard, size_t NumShards) const {
    (void)Shard; // shards are symmetric under uniform location hashing
    DetectorPlan P;
    if (NumShards == 0)
      return P;
    auto Slice = [NumShards](uint64_t Total) {
      return (Total / NumShards) * 5 / 4 + (Total ? 1 : 0);
    };
    P.ExpectedLocations = Slice(ExpectedLocations);
    P.ExpectedSharedLocations = Slice(ExpectedSharedLocations);
    P.ExpectedTrieNodes = Slice(ExpectedTrieNodes);
    P.ExpectedTrieEdges = Slice(ExpectedTrieEdges);
    P.ExpectedThreads = ExpectedThreads;
    return P;
  }

private:
  static constexpr uint64_t MaxLocations = uint64_t(1) << 22;
  static constexpr uint64_t MaxTrieStorage = uint64_t(1) << 24;
  static constexpr uint64_t MaxThreads = 4096;
  static constexpr uint64_t MaxLocksets = uint64_t(1) << 20;
};

} // namespace herd

#endif // HERD_DETECT_DETECTORPLAN_H
