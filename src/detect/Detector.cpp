//===- detect/Detector.cpp - Runtime datarace detector --------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/Detector.h"

using namespace herd;

void Detector::handleAccess(const AccessEvent &Event) {
  ++Stats.EventsIn;

  LocationKey Key =
      Opts.FieldsMerged ? Event.Location.withFieldsMerged() : Event.Location;

  auto [It, Inserted] = Table.try_emplace(Key);
  LocationState &State = It->second;
  if (Inserted)
    ++Stats.LocationsTracked;

  if (Opts.UseOwnership && !State.Shared) {
    if (Inserted || !State.Owner.isValid()) {
      // First access: the accessing thread becomes the owner (Section 7.1).
      State.Owner = Event.Thread;
      ++Stats.OwnedFiltered;
      return;
    }
    if (State.Owner == Event.Thread) {
      ++Stats.OwnedFiltered;
      return;
    }
    // A second thread touched the location: it becomes shared, and this
    // access and all subsequent ones flow to the trie.
    State.Shared = true;
    State.Owner = ThreadId::invalid();
    ++Stats.LocationsShared;
    if (OnShared)
      OnShared(Key);
  } else if (!State.Shared) {
    State.Shared = true;
    ++Stats.LocationsShared;
  }

  AccessTrie::Outcome Outcome =
      State.Trie.process(Event.Thread, Event.Locks, Event.Access);
  if (Outcome.Filtered) {
    ++Stats.WeakerFiltered;
    return;
  }
  if (!Outcome.Raced)
    return;

  ++Stats.RacesReported;
  RaceRecord Record;
  Record.Location = Key;
  Record.CurrentThread = Event.Thread;
  Record.CurrentAccess = Event.Access;
  Record.CurrentLocks = Event.Locks;
  Record.CurrentSite = Event.Site;
  Record.PriorThreadKnown = Outcome.PriorThreadKnown;
  Record.PriorThread = Outcome.PriorThread;
  Record.PriorAccess = Outcome.PriorAccess;
  Record.PriorLocks = Outcome.PriorLocks;
  Reporter.report(std::move(Record));
}

DetectorStats Detector::stats() const {
  Stats.TrieNodes = 0;
  for (const auto &[Key, State] : Table)
    if (State.Shared)
      Stats.TrieNodes += State.Trie.nodeCount();
  return Stats;
}
