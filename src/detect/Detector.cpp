//===- detect/Detector.cpp - Runtime datarace detector --------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/Detector.h"

using namespace herd;

void Detector::applyPlan(const DetectorPlan &Plan) {
  DetectorPlan P = Plan.clamped();
  if (P.empty())
    return;
  Table.reserve(P.ExpectedLocations);
  Tries.Nodes.reserve(P.ExpectedTrieNodes);
  Tries.Edges.reserveEdges(P.ExpectedTrieEdges);
  Interner->reserve(P.ExpectedLocksets);
  for (const LockSet &Set : P.PreinternLocksets)
    Interner->intern(Set);
}

void Detector::handleAccess(const AccessEvent &Event) {
  DetectorEvent E;
  E.Location = Event.Location;
  E.Thread = Event.Thread;
  E.Locks = Interner->intern(Event.Locks);
  E.Access = Event.Access;
  E.Site = Event.Site;
  handleEvent(E);
}

void Detector::handleEvent(const DetectorEvent &Event) {
  ++Stats.EventsIn;

  LocationKey Key =
      Opts.FieldsMerged ? Event.Location.withFieldsMerged() : Event.Location;

  auto [State, Inserted] = Table.tryEmplace(Key);
  if (Inserted) {
    ++Stats.LocationsTracked;
    State->Trie = AccessTrie(Tries);
  }

  if (Opts.UseOwnership && !State->Shared) {
    if (Inserted || !State->Owner.isValid()) {
      // First access: the accessing thread becomes the owner (Section 7.1).
      State->Owner = Event.Thread;
      ++Stats.OwnedFiltered;
      return;
    }
    if (State->Owner == Event.Thread) {
      ++Stats.OwnedFiltered;
      return;
    }
    // A second thread touched the location: it becomes shared, and this
    // access and all subsequent ones flow to the trie.
    State->Shared = true;
    State->Owner = ThreadId::invalid();
    ++Stats.LocationsShared;
    if (OnShared)
      OnShared(Key);
  } else if (!State->Shared) {
    State->Shared = true;
    ++Stats.LocationsShared;
  }

  const LockSet &Locks = Interner->resolve(Event.Locks);
  AccessTrie::Outcome Outcome =
      State->Trie.process(Event.Thread, Locks, Event.Access, Event.Site,
                          Scratch);
  if (Outcome.Filtered) {
    ++Stats.WeakerFiltered;
    return;
  }
  if (!Outcome.Raced)
    return;

  ++Stats.RacesReported;
  RaceRecord Record;
  Record.Location = Key;
  Record.CurrentThread = Event.Thread;
  Record.CurrentAccess = Event.Access;
  Record.CurrentLocks.assign(Locks);
  Record.CurrentSite = Event.Site;
  Record.PriorThreadKnown = Outcome.PriorThreadKnown;
  Record.PriorThread = Outcome.PriorThread;
  Record.PriorAccess = Outcome.PriorAccess;
  Record.PriorLocks = std::move(Outcome.PriorLocks);
  Record.PriorSite = Outcome.PriorSite;
  Reporter.report(std::move(Record));
}
