//===- detect/Provenance.h - Diagnostic provenance capture ------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProvenanceStore records *where* the synchronization structure around a
/// race came from, so reports can say more than bare lock and thread ids
/// (docs/REPORTS.md):
///
///   - per-thread bounded rings of recent access events (location, kind,
///     site) — the short history leading up to a racing access;
///   - the acquisition site of every currently-relevant lock, so each
///     lock in a reported lockset maps to the statement that took it;
///   - the spawn site of every thread (parent + ThreadStart statement).
///
/// It is a plain RuntimeHooks sink: when `--provenance=on` the pipeline
/// adds it next to the detector in the fanout list; when off it simply
/// does not exist (the PR-5 zero-cost-when-off discipline — no branch, no
/// null check, no memory).  It observes the same deterministic event
/// stream the detector does, never feeds anything back, and therefore
/// cannot perturb schedules or race sets — the on/off byte-identity the
/// differential tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_PROVENANCE_H
#define HERD_DETECT_PROVENANCE_H

#include "runtime/Hooks.h"

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace herd {

/// Bounded, allocation-light provenance capture (see file comment).
class ProvenanceStore : public RuntimeHooks {
public:
  /// Entries retained per thread's access-history ring.
  static constexpr size_t RingEntries = 32;

  /// One remembered access event.
  struct AccessEntry {
    LocationKey Location;
    AccessKind Access = AccessKind::Read;
    SiteId Site;
  };

  /// Last non-recursive acquisition of a lock.
  struct LockAcquire {
    ThreadId Thread;
    SiteId Site;
  };

  /// How a thread came to exist.
  struct Spawn {
    ThreadId Parent; ///< invalid for the main thread
    SiteId Site;     ///< the ThreadStart statement; invalid when unknown
  };

  // RuntimeHooks:
  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId ThreadObj,
                      SiteId Site = SiteId::invalid()) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;

  /// Where \p Lock was last acquired (non-recursively); Site is invalid
  /// when the lock was never seen (e.g. dummy join locks, which have no
  /// monitorenter event).
  LockAcquire lockAcquire(LockId Lock) const;

  /// How \p Thread was spawned; Parent is invalid for the main thread or
  /// threads never seen.
  Spawn spawnOf(ThreadId Thread) const;

  /// The last up-to-RingEntries accesses of \p Thread, oldest first.
  std::vector<AccessEntry> recentAccesses(ThreadId Thread) const;

  /// Threads with any recorded state (spawn or accesses).
  size_t threadsTracked() const { return Threads.size(); }

  /// Locks with a recorded acquisition site.
  size_t locksTracked() const { return Locks.size(); }

  /// Total access events observed (ring overwrites included).
  uint64_t accessesObserved() const { return AccessesObserved; }

private:
  struct PerThread {
    Spawn SpawnInfo;
    std::array<AccessEntry, RingEntries> Ring;
    uint32_t Head = 0;  ///< next slot to overwrite
    uint32_t Count = 0; ///< live entries, <= RingEntries
  };

  PerThread &threadState(ThreadId Thread);

  std::vector<PerThread> Threads;
  std::unordered_map<uint32_t, LockAcquire> Locks;
  uint64_t AccessesObserved = 0;
};

} // namespace herd

#endif // HERD_DETECT_PROVENANCE_H
