//===- detect/DetectorStats.h - Detection observability counters -*- C++ -*-=//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer of the detection runtime: counters for the
/// detector core (mirroring the measurements of Section 8.2), for the
/// hooks-to-detector glue (events, cache behaviour), and for the sharded
/// runtime (per-shard ingest and queue depths).  Everything here is plain
/// data so that tests can assert exact values and `herd --stats` / the
/// bench harness can print snapshots without touching detector internals.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_DETECTORSTATS_H
#define HERD_DETECT_DETECTORSTATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace herd {

/// Counters mirroring the measurements of Section 8.2.
struct DetectorStats {
  uint64_t EventsIn = 0;        ///< events delivered to the detector
  uint64_t OwnedFiltered = 0;   ///< dropped while the location was owned
  uint64_t WeakerFiltered = 0;  ///< dropped by the trie weakness check
  uint64_t RacesReported = 0;
  size_t LocationsTracked = 0;  ///< locations with any state
  size_t LocationsShared = 0;   ///< locations that reached the shared state

  /// Trie nodes currently allocated across all shared locations.
  size_t TrieNodes = 0;

  // Bounded subset/intersect memo of the LockSetInterner the detector
  // resolves against.  In the sharded runtime the interner is shared, so
  // aggregation copies these once instead of summing per shard.
  uint64_t LocksetMemoHits = 0;
  uint64_t LocksetMemoMisses = 0;
  uint64_t LocksetMemoEvictions = 0;
};

/// Per-thread access-cache counters (Section 4.3 reports hit rates per
/// benchmark; this exposes them per thread for `herd --stats`).
struct ThreadCacheStats {
  uint32_t Thread = 0; ///< the thread's dense index
  uint64_t ReadHits = 0;
  uint64_t ReadMisses = 0;
  uint64_t WriteHits = 0;
  uint64_t WriteMisses = 0;

  uint64_t hits() const { return ReadHits + WriteHits; }
  uint64_t lookups() const {
    return ReadHits + ReadMisses + WriteHits + WriteMisses;
  }
};

/// Hook-path fast-path counters (docs/HOOKPATH.md): the inline L0 filter
/// probed at the instrumentation site and the sharded runtime's per-thread
/// event batching.  With the filter enabled, every traced access is either
/// an L0 hit or reaches the runtime, so
///   InterpResult::AccessEvents == FilterHits + RaceRuntimeStats::EventsSeen
/// holds exactly (the coherence clause scripts/check_hook_gate.py checks).
struct HookPathStats {
  bool FilterEnabled = false;
  uint64_t FilterHits = 0;       ///< accesses filtered before event creation
  uint64_t FilterMisses = 0;     ///< probes that fell through to delivery
  uint64_t EpochBumps = 0;       ///< whole-filter invalidations at sync ops
  uint64_t KeyInvalidations = 0; ///< single-slot drops (shared/conflict)
  uint64_t BatchFlushes = 0;     ///< staged-batch flushes (sharded only)
  uint64_t BatchedEvents = 0;    ///< events that passed through staging
};

/// Aggregate counters for one run (serial or sharded).
struct RaceRuntimeStats {
  uint64_t EventsSeen = 0;   ///< accesses arriving from the program
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  DetectorStats Detector;
  HookPathStats Hook;
  std::vector<ThreadCacheStats> PerThreadCache; ///< one entry per thread seen
};

/// Per-shard counters of the sharded runtime.  Ingest counters are written
/// by the producer (the interpreter's hook thread); the Detector sub-stats
/// come from the shard's own trie detector and are read after a drain.
struct ShardStats {
  uint64_t EventsIngested = 0;      ///< events routed to this shard
  uint64_t BatchesIngested = 0;     ///< batches pushed to this shard's queue
  size_t MaxQueueDepthBatches = 0;  ///< high-water mark of the queue
  DetectorStats Detector;           ///< this shard's trie-detector counters
};

} // namespace herd

#endif // HERD_DETECT_DETECTORSTATS_H
