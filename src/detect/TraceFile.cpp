//===- detect/TraceFile.cpp - Streaming trace file I/O --------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/TraceFile.h"

#include <cerrno>
#include <cstring>

using namespace herd;
using namespace herd::tracefmt;

namespace {

/// Flush the producer-side buffer once it holds this many bytes; one
/// fwrite per ~1638 records keeps recording overhead off the hot path.
constexpr size_t FlushThresholdBytes = 64 * 1024;

std::string errnoMessage(const std::string &What, const std::string &Path) {
  return What + " '" + Path + "': " + std::strerror(errno);
}

} // namespace

//===----------------------------------------------------------------------===
// TraceWriter
//===----------------------------------------------------------------------===

TraceWriter::~TraceWriter() { close(); }

TraceResult TraceWriter::open(const std::string &ToPath) {
  if (File)
    return TraceResult::failure("trace writer is already open on '" + Path +
                                "'");
  File = std::fopen(ToPath.c_str(), "wb");
  if (!File)
    return TraceResult::failure(errnoMessage("cannot create trace", ToPath));
  Path = ToPath;
  Records = 0;
  Bytes = 0;
  WriteFailed = false;
  FirstError.clear();
  Buffer.clear();
  Buffer.reserve(FlushThresholdBytes + RecordBytes);
  putHeader(Buffer);
  return TraceResult::success();
}

void TraceWriter::flushBuffer() {
  if (!File || Buffer.empty())
    return;
  if (!WriteFailed &&
      std::fwrite(Buffer.data(), 1, Buffer.size(), File) != Buffer.size()) {
    WriteFailed = true;
    FirstError = errnoMessage("short write to trace", Path);
  }
  Bytes += Buffer.size();
  Buffer.clear();
}

void TraceWriter::write(const EventLog::Record &R) {
  if (!File)
    return;
  EventLog::encodeRecord(Buffer, R);
  ++Records;
  if (Buffer.size() >= FlushThresholdBytes)
    flushBuffer();
}

TraceResult TraceWriter::close() {
  if (!File)
    return WriteFailed ? TraceResult::failure(FirstError)
                       : TraceResult::success();
  flushBuffer();
  if (std::fclose(File) != 0 && !WriteFailed) {
    WriteFailed = true;
    FirstError = errnoMessage("cannot close trace", Path);
  }
  File = nullptr;
  return WriteFailed ? TraceResult::failure(FirstError)
                     : TraceResult::success();
}

void TraceWriter::onThreadCreate(ThreadId Child, ThreadId Parent,
                                 ObjectId ThreadObj, SiteId Site) {
  write(EventLog::Record::threadCreate(Child, Parent, ThreadObj, Site));
}

void TraceWriter::onThreadExit(ThreadId Dying) {
  write(EventLog::Record::threadExit(Dying));
}

void TraceWriter::onThreadJoin(ThreadId Joiner, ThreadId Joined) {
  write(EventLog::Record::threadJoin(Joiner, Joined));
}

void TraceWriter::onMonitorEnter(ThreadId Thread, LockId Lock,
                                 bool Recursive, SiteId Site) {
  write(EventLog::Record::monitorEnter(Thread, Lock, Recursive, Site));
}

void TraceWriter::onMonitorExit(ThreadId Thread, LockId Lock,
                                bool StillHeld) {
  write(EventLog::Record::monitorExit(Thread, Lock, StillHeld));
}

void TraceWriter::onAccess(ThreadId Thread, LocationKey Location,
                           AccessKind Access, SiteId Site) {
  write(EventLog::Record::access(Thread, Location, Access, Site));
}

void TraceWriter::onRunEnd() { flushBuffer(); }

//===----------------------------------------------------------------------===
// TraceReader
//===----------------------------------------------------------------------===

TraceReader::~TraceReader() { close(); }

void TraceReader::close() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

TraceResult TraceReader::open(const std::string &FromPath) {
  close();
  Records = 0;
  File = std::fopen(FromPath.c_str(), "rb");
  if (!File)
    return TraceResult::failure(errnoMessage("cannot open trace", FromPath));
  Path = FromPath;
  uint8_t Header[HeaderBytes];
  size_t Got = std::fread(Header, 1, HeaderBytes, File);
  if (TraceResult Res = checkHeader(Header, Got); !Res) {
    close();
    return TraceResult::failure("'" + FromPath + "': " + Res.Error);
  }
  return TraceResult::success();
}

TraceResult TraceReader::replayInto(RuntimeHooks &Sink) {
  if (!File)
    return TraceResult::failure("no trace is open");
  constexpr size_t ChunkRecords = 1024;
  std::vector<uint8_t> Chunk(ChunkRecords * RecordBytes);
  for (;;) {
    size_t Got = std::fread(Chunk.data(), 1, Chunk.size(), File);
    if (Got == 0)
      break;
    if (Got % RecordBytes != 0)
      return TraceResult::failure(
          "'" + Path + "': trace ends mid-record after record " +
          std::to_string(Records + Got / RecordBytes) +
          " (truncated file or trailing garbage)");
    for (size_t At = 0; At != Got; At += RecordBytes) {
      EventLog::Record R;
      if (TraceResult Res = EventLog::decodeRecord(Chunk.data() + At, R);
          !Res)
        return TraceResult::failure("'" + Path + "': record " +
                                    std::to_string(Records) + ": " +
                                    Res.Error);
      R.dispatch(Sink);
      ++Records;
    }
  }
  if (std::ferror(File))
    return TraceResult::failure(errnoMessage("read error on trace", Path));
  return TraceResult::success();
}

//===----------------------------------------------------------------------===
// Whole-file convenience
//===----------------------------------------------------------------------===

TraceResult herd::writeTraceFile(const std::string &Path,
                                 const EventLog &Log) {
  TraceWriter Writer;
  if (TraceResult Res = Writer.open(Path); !Res)
    return Res;
  for (const EventLog::Record &R : Log.records())
    Writer.write(R);
  return Writer.close();
}

TraceResult herd::readTraceFile(const std::string &Path, EventLog &Out) {
  Out.clear();
  TraceReader Reader;
  if (TraceResult Res = Reader.open(Path); !Res)
    return Res;
  TraceResult Res = Reader.replayInto(Out);
  if (!Res)
    Out.clear(); // whole-file reads are atomic: no partial log on failure
  return Res;
}
