//===- detect/AccessCache.cpp - Per-thread redundant-access cache ---------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/AccessCache.h"

using namespace herd;

void AccessCache::unlink(uint32_t Index) {
  Entry &E = Entries[Index];
  if (!E.ListLock.isValid())
    return;
  if (E.Prev != None)
    Entries[E.Prev].Next = E.Next;
  else {
    auto It = ListHead.find(E.ListLock);
    if (It != ListHead.end())
      It->second = E.Next; // possibly None: the head entry stays resident
  }
  if (E.Next != None)
    Entries[E.Next].Prev = E.Prev;
  E.Prev = E.Next = None;
  E.ListLock = LockId::invalid();
}

std::optional<LocationKey> AccessCache::insert(LocationKey Key,
                                               LockId InnermostLock) {
  uint32_t Index = indexOf(Key);
  Entry &E = Entries[Index];
  std::optional<LocationKey> Displaced;
  if (E.Valid) {
    // Conflict eviction: the doubly-linked list makes removal O(1)
    // (Section 4.2, last paragraph).
    ++Evictions;
    unlink(Index);
    if (E.Key != Key)
      Displaced = E.Key;
  }
  E.Key = Key;
  E.Valid = true;
  if (InnermostLock.isValid()) {
    E.ListLock = InnermostLock;
    // The map entry for a lock is created once and then kept resident with
    // a None head when its list empties (eviction tombstone, not erase):
    // after every lock has been seen once, inserts and evictions stop
    // touching the allocator — the cache's steady state is allocation-free.
    auto [It, Inserted] = ListHead.try_emplace(InnermostLock, Index);
    if (!Inserted) {
      if (It->second != None) {
        E.Next = It->second;
        Entries[It->second].Prev = Index;
      }
      It->second = Index;
    }
  }
  return Displaced;
}

void AccessCache::evictLock(LockId Lock) {
  auto It = ListHead.find(Lock);
  if (It == ListHead.end() || It->second == None)
    return;
  uint32_t Index = It->second;
  It->second = None;
  while (Index != None) {
    Entry &E = Entries[Index];
    uint32_t Next = E.Next;
    E.Valid = false;
    E.Prev = E.Next = None;
    E.ListLock = LockId::invalid();
    ++Evictions;
    Index = Next;
  }
}

void AccessCache::evictKey(LocationKey Key) {
  uint32_t Index = indexOf(Key);
  Entry &E = Entries[Index];
  if (!E.Valid || E.Key != Key)
    return;
  unlink(Index);
  E.Valid = false;
  ++Evictions;
}

bool AccessCache::checkListIntegrity() const {
  // Walk every per-lock list once, checking link consistency; count the
  // entries reached.
  size_t Linked = 0;
  for (const auto &[Lock, Head] : ListHead) {
    if (!Lock.isValid())
      return false;
    if (Head == None)
      continue; // resident tombstone: the lock's list is currently empty
    if (Head >= Entries.size())
      return false;
    if (Entries[Head].Prev != None)
      return false;
    size_t Steps = 0;
    for (uint32_t Index = Head; Index != None;) {
      if (++Steps > Entries.size())
        return false; // cycle
      const Entry &E = Entries[Index];
      if (!E.Valid || E.ListLock != Lock)
        return false; // ListHead points at an unlinked or foreign entry
      if (E.Next != None &&
          (E.Next >= Entries.size() || Entries[E.Next].Prev != Index))
        return false;
      ++Linked;
      Index = E.Next;
    }
  }
  // Every lock-tagged valid entry must be on its lock's list (counting
  // matches because an entry's single ListLock tag puts it on at most one
  // list), and unlinked entries must carry no stale list state.
  size_t Tagged = 0;
  for (const Entry &E : Entries) {
    if (E.Valid && E.ListLock.isValid()) {
      ++Tagged;
      if (ListHead.find(E.ListLock) == ListHead.end())
        return false;
    } else if (E.Prev != None || E.Next != None ||
               (!E.Valid && E.ListLock.isValid())) {
      return false;
    }
  }
  return Tagged == Linked;
}

void AccessCache::clear() {
  for (Entry &E : Entries) {
    E.Valid = false;
    E.Prev = E.Next = None;
    E.ListLock = LockId::invalid();
  }
  ListHead.clear();
}
