//===- detect/ShardedRuntime.h - Sharded batched detection ------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, batched detection runtime: the serial pipeline of
/// detect/RaceRuntime split across N location-hashed shards, each running
/// its trie detector on a real worker thread fed by a bounded batch queue
/// (see docs/SHARDING.md).
///
/// Division of labour:
///   - producer (the interpreter's hook thread): per-thread locksets and
///     dummy join locks, the per-thread read/write caches, field merging,
///     and the ownership filter — everything whose outcome the next event
///     depends on stays synchronous;
///   - shard workers: the access-history tries and race reporting — the
///     per-event cost the paper's measurements show dominates detection.
///
/// Because a location's entire event stream lands on one shard in program
/// order, each per-location trie evolves exactly as it does serially, so
/// the sharded runtime reports the identical race-record set for the same
/// schedule (tests/sharded_runtime_test.cpp enforces this differentially).
/// Drain barriers at thread joins and at the end of the run make report
/// merging deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_SHARDEDRUNTIME_H
#define HERD_DETECT_SHARDEDRUNTIME_H

#include "detect/AccessCache.h"
#include "detect/AccessFilter.h"
#include "detect/Detector.h"
#include "detect/DetectorStats.h"
#include "detect/EventBatch.h"
#include "detect/OwnershipFilter.h"
#include "detect/RaceReport.h"
#include "runtime/Hooks.h"
#include "support/LockSetInterner.h"

#include <cassert>
#include <memory>
#include <thread>
#include <vector>

namespace herd {

class MetricsRegistry;

/// Configuration of the sharded runtime.  The detection flags mirror
/// RaceRuntimeOptions so every ablation runs sharded as well.
struct ShardedRuntimeOptions {
  uint32_t NumShards = 4;      ///< shard (and worker-thread) count
  size_t BatchCapacity = EventBatch::DefaultCapacity;
  size_t QueueDepthBatches = 16; ///< backpressure bound per shard

  bool UseCache = true;
  bool UseOwnership = true;
  bool FieldsMerged = false;
  bool ModelJoin = true;

  /// Entries per (thread, kind) access cache; must be a power of two
  /// (`herd --cache-size=N`).  The paper's experiments use 256.
  uint32_t CacheEntries = 256;

  /// Enable the hook-path fast path (`herd --hook-filter=on|off`,
  /// docs/HOOKPATH.md): the per-thread L0 filter consulted by onAccessFast
  /// (effective only with UseCache, whose entries back the filter's hits)
  /// and per-thread staged event batches flushed at sync operations,
  /// quantum ends and run end.
  bool HookFilter = false;

  /// Capacity hints from static analysis (`herd --plan=auto|off|N`).
  /// Location-scaled fields are sliced per shard; the shared interner is
  /// planned once at pool level.
  DetectorPlan Plan;

  /// Observability sink (`herd --trace-json`): per-shard batch spans and
  /// queue-depth samples land here.  Null (the default) records nothing
  /// and keeps the ingest path free of clock reads.
  MetricsRegistry *Metrics = nullptr;
};

/// The shard engine: N trie detectors on worker threads behind bounded
/// batch queues.  Used by ShardedRuntime, and directly by the bench
/// harness to measure raw event throughput without interpreter overhead.
/// submit/flush/drain are producer-thread-only.
class ShardPool {
public:
  /// \p Locksets is the interner batched lockset ids resolve against; when
  /// null the pool owns a private one (standalone pools in tests/benches).
  /// Interning happens producer-side only; workers call resolve(), which
  /// is safe for ids published through the batch queues.  \p Plan pre-sizes
  /// each shard's detector (location-scaled fields sliced per shard) and
  /// the interner (reserved and pre-interned once, before workers start).
  /// \p Metrics, when set, receives one trace row per shard (tid = 1 +
  /// shard index, named "shard N"), a "batch" span for every batch a
  /// worker processes, and "shardN.queue_depth" counter samples at every
  /// producer push.
  ShardPool(uint32_t NumShards, size_t BatchCapacity, size_t QueueDepth,
            LockSetInterner *Locksets = nullptr,
            const DetectorPlan &Plan = {},
            MetricsRegistry *Metrics = nullptr);
  ~ShardPool();

  /// The shard a location's events are routed to: a hash of the location
  /// key, so the assignment is stable across runs and shard-count-only
  /// changes of configuration.  The key is mixed explicitly (the SplitMix64
  /// finalizer, the same family as AccessCache::indexOf's multiplicative
  /// hash) and the *high* bits feed the modulo: packed (object, field) keys
  /// stride by small constants, and a raw `key % NumShards` collapses onto
  /// a few shards whenever the stride shares a factor with the shard count
  /// (tests/sharded_runtime_test.cpp asserts the spread on strided keys).
  static uint32_t shardOf(LocationKey Key, uint32_t NumShards) {
    uint64_t X = Key.raw();
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ull;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebull;
    X ^= X >> 31;
    return uint32_t((X >> 32) % NumShards);
  }

  uint32_t numShards() const { return uint32_t(Shards.size()); }

  /// Routes one pre-interned event to its shard, batching; blocks only
  /// when the shard's queue is full (backpressure).  The hot path — and
  /// the only ingest entry point: callers holding an owning AccessEvent
  /// intern its lockset through interner() first, so EventBatch queues
  /// carry nothing but trivially-copyable records.
  void submit(const DetectorEvent &Event);

  /// The interner this pool's shard detectors resolve lockset ids against.
  LockSetInterner &interner() { return *Locksets; }

  /// Pushes every partially filled batch to its queue.
  void flush();

  /// Flush, then block until every shard has processed every event
  /// submitted so far.  On return the shard detectors and reporters are
  /// safe to read from the producer thread.
  void drain();

  /// Drain, then stop and join the workers.  Idempotent; submit must not
  /// be called afterwards.
  void finish();

  /// Race records from all shards, in shard order then per-shard program
  /// order — deterministic for a deterministic event stream.  Requires a
  /// preceding drain().
  std::vector<RaceRecord> mergedRecords() const;

  /// One shard's reporter, for semantic merging (RaceReporter::merge)
  /// that survives per-shard record caps.  Requires a preceding drain().
  const RaceReporter &shardReporter(uint32_t Shard) const;

  /// Per-shard counters.  Requires a preceding drain().
  ShardStats shardStats(uint32_t Shard) const;

  /// Sum of the shard detectors' counters.  Requires a preceding drain().
  DetectorStats aggregateDetectorStats() const;

private:
  struct Shard {
    BoundedBatchQueue Queue;
    RaceReporter Reporter;
    Detector Det;
    std::thread Worker;

    // Producer-side ingest counters and the open (partial) batch.
    EventBatch Open;
    uint64_t EventsIngested = 0;
    uint64_t BatchesIngested = 0;

    // Observability identity: the trace row this shard's spans land on
    // (1 + shard index; row 0 is the pipeline thread) and the cached
    // queue-depth counter name, so sampling never builds strings.
    uint32_t Tid = 0;
    std::string QueueDepthName;

    Shard(size_t QueueDepth, LockSetInterner &Interner)
        : Queue(QueueDepth),
          Det(Reporter,
              Detector::Options{/*UseOwnership=*/false,
                                /*FieldsMerged=*/false},
              &Interner) {}
  };

  void workerLoop(Shard &S);
  void pushOpen(Shard &S);

  std::unique_ptr<LockSetInterner> OwnedInterner; ///< set iff none shared
  LockSetInterner *Locksets = nullptr;            ///< never null
  MetricsRegistry *Metrics = nullptr;             ///< null = no recording
  std::vector<std::unique_ptr<Shard>> Shards;
  size_t BatchCapacity;
  bool Finished = false;
};

/// The sharded detection runtime: a drop-in alternative to RaceRuntime
/// behind the same RuntimeHooks interface.
class ShardedRuntime : public RuntimeHooks {
public:
  explicit ShardedRuntime(ShardedRuntimeOptions Opts = {});
  ~ShardedRuntime() override;

  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId ThreadObj,
                      SiteId Site = SiteId::invalid()) override;
  void onThreadExit(ThreadId Dying) override;
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;
  void onQuantumEnd(ThreadId Thread) override;
  void onRunEnd() override;

  /// The devirtualized hook-path entry (docs/HOOKPATH.md): probes the
  /// thread's L0 filter inline and only falls through to the full onAccess
  /// path on a miss.  The interpreter calls this through a concrete
  /// ShardedRuntime pointer when the single-detector fast path is active.
  void onAccessFast(ThreadId Thread, LocationKey Location, AccessKind Access,
                    SiteId Site) {
    if (FilterOn) {
      // Inline bounds-checked thread-state load (see RaceRuntime's twin):
      // a null slot falls through to onAccess, which creates it.
      size_t Index = Thread.index();
      PerThread *T = Index < Threads.size() ? Threads[Index].get() : nullptr;
      if (T) {
        LocationKey Key =
            Opts.FieldsMerged ? Location.withFieldsMerged() : Location;
        if (T->Filter.probe(Key, Access)) {
          // The differential oracle: an L0 hit must be backed by a resident
          // detector-side cache entry (see docs/HOOKPATH.md).
          assert((Access == AccessKind::Read ? T->ReadCache : T->WriteCache)
                     .provesRedundant(Key) &&
                 "L0 filter hit not backed by the detector-side cache");
          return;
        }
      }
    }
    ShardedRuntime::onAccess(Thread, Location, Access, Site);
  }

  /// The interpreter's per-quantum probe handle (see RaceRuntime's twin
  /// and docs/HOOKPATH.md): null when the inline probe cannot be hoisted
  /// (filter off, or FieldsMerged).
  AccessFilter *filterHandle(ThreadId Thread) {
    if (!FilterOn || Opts.FieldsMerged)
      return nullptr;
    return &threadState(Thread).Filter;
  }

  /// The differential oracle behind the interpreter-side inline probe
  /// (debug builds assert this on every hoisted L0 hit).
  bool oracleHolds(ThreadId Thread, LocationKey Key,
                   AccessKind Access) const {
    size_t Index = Thread.index();
    if (Index >= Threads.size() || !Threads[Index])
      return false;
    const PerThread &T = *Threads[Index];
    return (Access == AccessKind::Read ? T.ReadCache : T.WriteCache)
        .provesRedundant(Key);
  }

  /// Drains the shards and returns the merged reporter (shard order, then
  /// per-shard program order).
  const RaceReporter &reporter();

  /// Drains the shards and returns aggregate counters.  For the same
  /// program and schedule every field equals the serial RaceRuntime's
  /// (tests/stats_test.cpp asserts this).
  RaceRuntimeStats stats();

  /// Drains the shards and returns per-shard counters.
  std::vector<ShardStats> shardStats();

  /// Stops the shard workers after a final drain.  Called automatically by
  /// the destructor and onRunEnd.
  void finish();

private:
  struct PerThread {
    explicit PerThread(uint32_t CacheEntries)
        : ReadCache(CacheEntries), WriteCache(CacheEntries) {}

    LockSet Locks;                 ///< held locks incl. dummy join locks
    std::vector<LockId> RealStack; ///< releasable locks, outer to inner
    AccessCache ReadCache;
    AccessCache WriteCache;
    AccessFilter Filter;           ///< hook-path L0 filter (HookFilter)

    /// Interned id of Locks, refreshed lazily on the first access after a
    /// lockset change (see RaceRuntime::PerThread).
    LockSetId LocksId = LockSetInterner::emptySet();
    bool LocksDirty = false;
  };

  PerThread &threadState(ThreadId Thread);
  void drain();

  /// Staged-batch submission (HookFilter): appends to the staging batch,
  /// flushing first when the producing thread changed — per-shard event
  /// order stays exactly the unstaged order, so reports are byte-identical.
  void stage(const DetectorEvent &Event);
  void flushStaged();

  ShardedRuntimeOptions Opts;
  bool FastOn;   ///< Opts.HookFilter: staged batching + devirt lane
  bool FilterOn; ///< FastOn gated on Opts.UseCache (the filter's oracle)
  ShardPool Pool;
  OwnershipFilter Ownership;
  std::vector<std::unique_ptr<PerThread>> Threads;
  RaceReporter Merged;
  bool MergedValid = false;
  uint64_t EventsSeen = 0;
  uint64_t EventsToDetector = 0; ///< post-cache events (EventsIn serially)

  // The per-thread staging batch (docs/HOOKPATH.md).  One buffer suffices:
  // the interpreter produces events from one program thread at a time, so
  // tagging the buffer with its thread and flushing on a thread switch is
  // equivalent to one buffer per thread, without the footprint.
  EventBatch Staged;
  ThreadId StagedThread;
  uint64_t BatchFlushes = 0;
  uint64_t BatchedEvents = 0;
};

} // namespace herd

#endif // HERD_DETECT_SHARDEDRUNTIME_H
