//===- detect/ShardedRuntime.cpp - Sharded batched detection --------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/ShardedRuntime.h"

#include "detect/RaceRuntime.h"
#include "support/Compiler.h"
#include "support/Metrics.h"

#include <cassert>

using namespace herd;

//===----------------------------------------------------------------------===
// ShardPool
//===----------------------------------------------------------------------===

ShardPool::ShardPool(uint32_t NumShards, size_t BatchCapacity,
                     size_t QueueDepth, LockSetInterner *Locksets,
                     const DetectorPlan &Plan, MetricsRegistry *Metrics)
    : Locksets(Locksets), Metrics(Metrics),
      BatchCapacity(BatchCapacity == 0 ? 1 : BatchCapacity) {
  if (!this->Locksets) {
    OwnedInterner = std::make_unique<LockSetInterner>();
    this->Locksets = OwnedInterner.get();
  }
  if (NumShards == 0)
    NumShards = 1;
  if (QueueDepth == 0)
    QueueDepth = 1;
  // Interner-scoped hints apply once here, before any worker exists (intern
  // and reserve are producer-thread-only); the per-shard slice that each
  // detector applies below carries only location-scaled fields.
  DetectorPlan Clamped = Plan.clamped();
  this->Locksets->reserve(Clamped.ExpectedLocksets);
  for (const LockSet &Set : Clamped.PreinternLocksets)
    this->Locksets->intern(Set);
  Shards.reserve(NumShards);
  for (uint32_t I = 0; I != NumShards; ++I) {
    Shards.push_back(std::make_unique<Shard>(QueueDepth, *this->Locksets));
    Shards.back()->Det.applyPlan(Clamped.forShard(I, NumShards));
    Shards.back()->Open.Events.reserve(this->BatchCapacity);
    // Row 0 is the pipeline (producer) thread; shards get 1..N.
    Shards.back()->Tid = 1 + I;
    Shards.back()->QueueDepthName =
        "shard" + std::to_string(I) + ".queue_depth";
    if (Metrics)
      Metrics->nameThread(1 + I, "shard " + std::to_string(I));
  }
  for (auto &S : Shards)
    S->Worker = std::thread([this, Raw = S.get()] { workerLoop(*Raw); });
}

ShardPool::~ShardPool() { finish(); }

void ShardPool::workerLoop(Shard &S) {
  EventBatch Batch;
  while (S.Queue.pop(Batch)) {
    {
      // One span per processed batch on this shard's trace row; a null
      // registry makes the Span a no-op without branching here.
      Span BatchSpan(Metrics, "batch", "shard", S.Tid);
      for (const DetectorEvent &Event : Batch.Events)
        S.Det.handleEvent(Event);
    }
    // Hand the emptied buffer back through the queue so the producer can
    // reuse it: steady-state transport allocates nothing.
    S.Queue.completeOne(std::move(Batch));
    Batch = EventBatch();
  }
}

void ShardPool::pushOpen(Shard &S) {
  ++S.BatchesIngested;
  bool Pushed = S.Queue.push(std::move(S.Open));
  (void)Pushed;
  assert(Pushed && "shard queue stopped while ingesting");
  if (HERD_UNLIKELY(Metrics != nullptr))
    Metrics->recordCounterSample(S.QueueDepthName, S.Tid,
                                 int64_t(S.Queue.depth()));
  if (!S.Queue.takeSpare(S.Open)) {
    S.Open = EventBatch();
    S.Open.Events.reserve(BatchCapacity);
  }
}

void ShardPool::submit(const DetectorEvent &Event) {
  assert(!Finished && "submit after finish");
  Shard &S = *Shards[shardOf(Event.Location, numShards())];
  ++S.EventsIngested;
  S.Open.Events.push_back(Event);
  if (S.Open.Events.size() >= BatchCapacity)
    pushOpen(S);
}

void ShardPool::flush() {
  if (Finished)
    return; // the final drain already ran; queues are stopped
  for (auto &S : Shards) {
    if (S->Open.Events.empty())
      continue;
    pushOpen(*S);
  }
}

void ShardPool::drain() {
  if (Finished)
    return;
  flush();
  for (auto &S : Shards)
    S->Queue.waitIdle();
}

void ShardPool::finish() {
  if (Finished)
    return;
  drain();
  Finished = true;
  for (auto &S : Shards)
    S->Queue.stop();
  for (auto &S : Shards)
    if (S->Worker.joinable())
      S->Worker.join();
}

std::vector<RaceRecord> ShardPool::mergedRecords() const {
  std::vector<RaceRecord> Out;
  for (const auto &S : Shards)
    for (const RaceRecord &Rec : S->Reporter.records())
      Out.push_back(Rec);
  return Out;
}

const RaceReporter &ShardPool::shardReporter(uint32_t Shard) const {
  assert(Shard < Shards.size());
  return Shards[Shard]->Reporter;
}

ShardStats ShardPool::shardStats(uint32_t Shard) const {
  assert(Shard < Shards.size());
  const auto &S = *Shards[Shard];
  ShardStats Stats;
  Stats.EventsIngested = S.EventsIngested;
  Stats.BatchesIngested = S.BatchesIngested;
  Stats.MaxQueueDepthBatches = S.Queue.maxDepthSeen();
  Stats.Detector = S.Det.stats();
  return Stats;
}

DetectorStats ShardPool::aggregateDetectorStats() const {
  DetectorStats Sum;
  for (const auto &S : Shards) {
    DetectorStats D = S->Det.stats();
    Sum.EventsIn += D.EventsIn;
    Sum.OwnedFiltered += D.OwnedFiltered;
    Sum.WeakerFiltered += D.WeakerFiltered;
    Sum.RacesReported += D.RacesReported;
    Sum.LocationsTracked += D.LocationsTracked;
    Sum.LocationsShared += D.LocationsShared;
    Sum.TrieNodes += D.TrieNodes;
  }
  // The interner (and so its memo) is shared across shards: copy its
  // counters once rather than summing the same numbers N times.
  Sum.LocksetMemoHits = Locksets->memoHits();
  Sum.LocksetMemoMisses = Locksets->memoMisses();
  Sum.LocksetMemoEvictions = Locksets->memoEvictions();
  return Sum;
}

//===----------------------------------------------------------------------===
// ShardedRuntime
//===----------------------------------------------------------------------===

ShardedRuntime::ShardedRuntime(ShardedRuntimeOptions Opts)
    : Opts(Opts), FastOn(Opts.HookFilter),
      FilterOn(Opts.HookFilter && Opts.UseCache),
      Pool(Opts.NumShards, Opts.BatchCapacity, Opts.QueueDepthBatches,
           /*Locksets=*/nullptr, Opts.Plan, Opts.Metrics) {
  DetectorPlan Plan = Opts.Plan.clamped();
  Ownership.reserve(Plan.ExpectedLocations);
  if (Plan.ExpectedThreads)
    Threads.reserve(size_t(Plan.ExpectedThreads) + 1); // ids are 1-based
  if (FastOn)
    Staged.Events.reserve(Opts.BatchCapacity == 0 ? 1 : Opts.BatchCapacity);
  Ownership.setOnShared([this](LocationKey Key) {
    if (!this->Opts.UseCache)
      return;
    // Section 7.2: a location entering the shared state must leave every
    // thread's cache, otherwise a cache hit could suppress the first
    // post-sharing access.  Ownership runs on the producer thread, so this
    // eviction is synchronous with ingest exactly as in the serial runtime.
    // The L0 filter mirrors the caches, so it drops the key everywhere too.
    for (auto &T : Threads) {
      if (!T)
        continue;
      T->ReadCache.evictKey(Key);
      T->WriteCache.evictKey(Key);
      if (FilterOn)
        T->Filter.invalidateKey(Key);
    }
  });
}

ShardedRuntime::~ShardedRuntime() { finish(); }

ShardedRuntime::PerThread &ShardedRuntime::threadState(ThreadId Thread) {
  size_t Index = Thread.index();
  if (Index >= Threads.size())
    Threads.resize(Index + 1);
  if (!Threads[Index])
    Threads[Index] = std::make_unique<PerThread>(Opts.CacheEntries);
  return *Threads[Index];
}

void ShardedRuntime::onThreadCreate(ThreadId Child, ThreadId Parent,
                                    ObjectId ThreadObj, SiteId Site) {
  (void)Parent;
  (void)ThreadObj;
  (void)Site;
  PerThread &T = threadState(Child);
  if (Opts.ModelJoin) {
    T.Locks.insert(RaceRuntime::dummyLockOf(Child));
    T.LocksDirty = true;
    if (FilterOn)
      T.Filter.bumpEpoch();
  }
  if (FastOn)
    flushStaged(); // sync operations are batch flush points
}

void ShardedRuntime::onThreadExit(ThreadId Dying) {
  if (FastOn)
    flushStaged();
  if (!Opts.ModelJoin)
    return;
  PerThread &T = threadState(Dying);
  T.Locks.erase(RaceRuntime::dummyLockOf(Dying));
  T.LocksDirty = true;
  if (FilterOn)
    T.Filter.bumpEpoch();
}

void ShardedRuntime::onThreadJoin(ThreadId Joiner, ThreadId Joined) {
  if (Opts.ModelJoin) {
    PerThread &T = threadState(Joiner);
    T.Locks.insert(RaceRuntime::dummyLockOf(Joined));
    T.LocksDirty = true;
    if (FilterOn)
      T.Filter.bumpEpoch();
  }
  // Join points are drain barriers: every event from before the join is
  // fully processed before execution continues, which bounds queue skew
  // and makes mid-run statistics snapshots deterministic.  drain() flushes
  // the staging batch first.
  drain();
}

void ShardedRuntime::onMonitorEnter(ThreadId Thread, LockId Lock,
                                    bool Recursive, SiteId Site) {
  (void)Site;
  if (Recursive)
    return; // nested acquisitions are invisible to the detector (Sec 4.2)
  PerThread &T = threadState(Thread);
  T.Locks.insert(Lock);
  T.LocksDirty = true;
  T.RealStack.push_back(Lock);
  if (FilterOn)
    T.Filter.bumpEpoch();
  if (FastOn)
    flushStaged();
}

void ShardedRuntime::onMonitorExit(ThreadId Thread, LockId Lock,
                                   bool StillHeld) {
  if (StillHeld)
    return; // only the final monitorexit releases (Section 4.2)
  PerThread &T = threadState(Thread);
  T.Locks.erase(Lock);
  T.LocksDirty = true;
  assert(!T.RealStack.empty() && T.RealStack.back() == Lock &&
         "monitor releases must be LIFO (Java structured locking)");
  T.RealStack.pop_back();
  if (Opts.UseCache) {
    T.ReadCache.evictLock(Lock);
    T.WriteCache.evictLock(Lock);
  }
  if (FilterOn)
    T.Filter.bumpEpoch();
  if (FastOn)
    flushStaged();
}

void ShardedRuntime::onAccess(ThreadId Thread, LocationKey Location,
                              AccessKind Access, SiteId Site) {
  ++EventsSeen;
  MergedValid = false;
  PerThread &T = threadState(Thread);
  LocationKey Key =
      Opts.FieldsMerged ? Location.withFieldsMerged() : Location;

  AccessCache *Cache = nullptr;
  if (Opts.UseCache) {
    Cache = Access == AccessKind::Read ? &T.ReadCache : &T.WriteCache;
    if (Cache->lookup(Key)) {
      // Guaranteed redundant: a weaker access is already recorded.  Seed
      // the L0 filter so the next same-epoch repeat short-circuits at the
      // instrumentation site (the hit is backed by this cache entry).
      if (FilterOn)
        T.Filter.insert(Key, Access);
      return;
    }
  }

  ++EventsToDetector;
  // The ownership filter runs before the cache insert, mirroring the
  // serial runtime where the shared-transition eviction precedes it.
  if (!Opts.UseOwnership || Ownership.passes(Thread, Key)) {
    if (T.LocksDirty) {
      T.LocksId = Pool.interner().intern(T.Locks);
      T.LocksDirty = false;
    }
    DetectorEvent Event;
    Event.Location = Key;
    Event.Thread = Thread;
    Event.Locks = T.LocksId;
    Event.Access = Access;
    Event.Site = Site;
    if (FastOn)
      stage(Event);
    else
      Pool.submit(Event);
  }

  if (Cache) {
    LockId Innermost =
        T.RealStack.empty() ? LockId::invalid() : T.RealStack.back();
    std::optional<LocationKey> Displaced = Cache->insert(Key, Innermost);
    if (FilterOn) {
      // A conflict eviction removed another key's backing cache entry; the
      // L0 filter must not keep proving that key redundant.
      if (Displaced)
        T.Filter.invalidateKey(*Displaced);
      T.Filter.insert(Key, Access);
    }
  }
}

void ShardedRuntime::stage(const DetectorEvent &Event) {
  if (!Staged.Events.empty() && StagedThread != Event.Thread)
    flushStaged(); // thread switch: keep the global submit order exact
  StagedThread = Event.Thread;
  Staged.Events.push_back(Event);
  if (Staged.Events.size() >= (Opts.BatchCapacity == 0 ? 1
                                                       : Opts.BatchCapacity))
    flushStaged();
}

void ShardedRuntime::flushStaged() {
  if (Staged.Events.empty())
    return;
  for (const DetectorEvent &Event : Staged.Events)
    Pool.submit(Event);
  ++BatchFlushes;
  BatchedEvents += Staged.Events.size();
  Staged.Events.clear();
}

void ShardedRuntime::onQuantumEnd(ThreadId Thread) {
  (void)Thread;
  if (FastOn)
    flushStaged();
}

void ShardedRuntime::onRunEnd() { finish(); }

void ShardedRuntime::drain() {
  flushStaged();
  Pool.drain();
}

void ShardedRuntime::finish() {
  flushStaged();
  Pool.finish();
}

const RaceReporter &ShardedRuntime::reporter() {
  drain();
  if (!MergedValid) {
    // Semantic merge, not record re-reporting: per-shard reporters are
    // individually capped, and a records()-only merge would lose the
    // locations and occurrence counts a saturated shard shed past its
    // cap.  merge() carries the exact location/object sets, the group
    // counts, and the drop counters (shard order, so deterministic).
    Merged.clear();
    for (uint32_t I = 0; I != Pool.numShards(); ++I)
      Merged.merge(Pool.shardReporter(I));
    MergedValid = true;
  }
  return Merged;
}

RaceRuntimeStats ShardedRuntime::stats() {
  drain();
  RaceRuntimeStats S;
  S.EventsSeen = EventsSeen;
  S.Hook.FilterEnabled = FilterOn;
  S.Hook.BatchFlushes = BatchFlushes;
  S.Hook.BatchedEvents = BatchedEvents;
  for (size_t Index = 0; Index < Threads.size(); ++Index) {
    const auto &T = Threads[Index];
    if (!T)
      continue;
    S.CacheHits += T->ReadCache.hits() + T->WriteCache.hits();
    S.CacheMisses += T->ReadCache.misses() + T->WriteCache.misses();
    S.CacheEvictions += T->ReadCache.evictions() + T->WriteCache.evictions();
    S.Hook.FilterHits += T->Filter.hits();
    S.Hook.FilterMisses += T->Filter.misses();
    S.Hook.EpochBumps += T->Filter.epochBumps();
    S.Hook.KeyInvalidations += T->Filter.keyInvalidations();
    ThreadCacheStats TC;
    TC.Thread = uint32_t(Index);
    TC.ReadHits = T->ReadCache.hits();
    TC.ReadMisses = T->ReadCache.misses();
    TC.WriteHits = T->WriteCache.hits();
    TC.WriteMisses = T->WriteCache.misses();
    S.PerThreadCache.push_back(TC);
  }
  DetectorStats Agg = Pool.aggregateDetectorStats();
  S.Detector.EventsIn = EventsToDetector;
  S.Detector.WeakerFiltered = Agg.WeakerFiltered;
  S.Detector.RacesReported = Agg.RacesReported;
  S.Detector.TrieNodes = Agg.TrieNodes;
  S.Detector.LocksetMemoHits = Agg.LocksetMemoHits;
  S.Detector.LocksetMemoMisses = Agg.LocksetMemoMisses;
  S.Detector.LocksetMemoEvictions = Agg.LocksetMemoEvictions;
  if (Opts.UseOwnership) {
    // The shard detectors only ever see post-ownership events; the global
    // ownership picture lives in the producer-side filter.
    S.Detector.OwnedFiltered = Ownership.ownedFiltered();
    S.Detector.LocationsTracked = Ownership.locationsTracked();
    S.Detector.LocationsShared = Ownership.locationsShared();
  } else {
    S.Detector.OwnedFiltered = Agg.OwnedFiltered;
    S.Detector.LocationsTracked = Agg.LocationsTracked;
    S.Detector.LocationsShared = Agg.LocationsShared;
  }
  return S;
}

std::vector<ShardStats> ShardedRuntime::shardStats() {
  drain();
  std::vector<ShardStats> Out;
  for (uint32_t I = 0; I != Pool.numShards(); ++I)
    Out.push_back(Pool.shardStats(I));
  return Out;
}
