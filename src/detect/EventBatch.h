//===- detect/EventBatch.h - Batched event transport ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer of the sharded detection runtime: access events are
/// accumulated into fixed-capacity batches on the producer (the
/// interpreter's hook thread) and handed to shard workers through a
/// bounded single-producer / single-consumer queue.
///
/// Batching amortizes the queue synchronization over many events; the
/// bound applies backpressure so a slow shard cannot let the event backlog
/// grow without limit.  Batches carry DetectorEvents (trivially copyable,
/// interned lockset ids), the queue stores them in a fixed ring sized by
/// the bound, and consumed batch buffers are recycled back to the producer
/// through completeOne()/takeSpare() — so in steady state the whole
/// producer-to-worker path performs no allocation at all.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_EVENTBATCH_H
#define HERD_DETECT_EVENTBATCH_H

#include "detect/AccessEvent.h"

#include <condition_variable>
#include <mutex>
#include <vector>

namespace herd {

/// A batch of access events bound for one shard.  Events are stored in a
/// vector so that handing a batch to the queue is a pointer move, not an
/// element-wise copy.
struct EventBatch {
  static constexpr size_t DefaultCapacity = 128;

  std::vector<DetectorEvent> Events;

  bool empty() const { return Events.empty(); }
  size_t size() const { return Events.size(); }
};

/// A bounded blocking queue of event batches with in-flight accounting:
/// a batch stays "pending" from push until the consumer acknowledges it
/// with completeOne(), so waitIdle() means every submitted event has been
/// fully processed — the drain barrier the sharded runtime's determinism
/// guarantee rests on.
class BoundedBatchQueue {
public:
  explicit BoundedBatchQueue(size_t MaxBatches = 16)
      : Ring(MaxBatches == 0 ? 1 : MaxBatches) {}

  /// Producer: enqueues a batch, blocking while the queue is full.
  /// Returns false — without enqueueing — when the queue is (or becomes)
  /// stopped, so a producer blocked on backpressure can never deadlock
  /// against a stopped pool or a dead worker; the wait predicate must
  /// check Stopped for exactly that reason.
  [[nodiscard]] bool push(EventBatch &&Batch) {
    std::unique_lock<std::mutex> Lock(M);
    NotFull.wait(Lock, [&] { return Count < Ring.size() || Stopped; });
    if (Stopped)
      return false;
    Ring[(Head + Count) % Ring.size()] = std::move(Batch);
    ++Count;
    ++InFlight;
    if (Count > MaxDepth)
      MaxDepth = Count;
    NotEmpty.notify_one();
    return true;
  }

  /// Consumer: dequeues the next batch, blocking until one arrives.
  /// Returns false when the queue was stopped and fully emptied.
  bool pop(EventBatch &Out) {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return Count != 0 || Stopped; });
    if (Count == 0)
      return false;
    Out = std::move(Ring[Head]);
    Head = (Head + 1) % Ring.size();
    --Count;
    NotFull.notify_one();
    return true;
  }

  /// Consumer: acknowledges that the batch returned by the last pop() has
  /// been fully processed.  Pass the batch back to recycle its buffer: the
  /// producer reclaims it via takeSpare(), closing the allocation loop.
  void completeOne(EventBatch &&Spent) {
    std::lock_guard<std::mutex> Lock(M);
    Spent.Events.clear();
    Spares.push_back(std::move(Spent));
    if (--InFlight == 0)
      IdleCv.notify_all();
  }

  /// Consumer: acknowledge without recycling (keeps the old contract for
  /// callers that reuse their own batch buffer).
  void completeOne() {
    std::lock_guard<std::mutex> Lock(M);
    if (--InFlight == 0)
      IdleCv.notify_all();
  }

  /// Producer: reclaims a consumed batch buffer if one is available.  The
  /// returned batch is empty but keeps its capacity.
  bool takeSpare(EventBatch &Out) {
    std::lock_guard<std::mutex> Lock(M);
    if (Spares.empty())
      return false;
    Out = std::move(Spares.back());
    Spares.pop_back();
    return true;
  }

  /// Producer: blocks until every pushed batch has been processed.  The
  /// consumer's completeOne() runs under the same mutex, so the state its
  /// processing wrote happens-before this call returns.
  void waitIdle() {
    std::unique_lock<std::mutex> Lock(M);
    IdleCv.wait(Lock, [&] { return InFlight == 0; });
  }

  /// Producer: wakes the consumer so it can exit once the queue is empty,
  /// and any producer blocked on backpressure so its push can fail fast.
  void stop() {
    std::lock_guard<std::mutex> Lock(M);
    Stopped = true;
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  /// High-water mark of the queue, in batches.  Meaningful once idle.
  size_t maxDepthSeen() const {
    std::lock_guard<std::mutex> Lock(M);
    return MaxDepth;
  }

  /// Batches currently queued (pushed, not yet popped) — an instantaneous
  /// reading, already stale by the time the caller uses it; meant for
  /// observability sampling (per-shard queue-depth counter tracks).
  size_t depth() const {
    std::lock_guard<std::mutex> Lock(M);
    return Count;
  }

private:
  mutable std::mutex M;
  std::condition_variable NotFull, NotEmpty, IdleCv;
  std::vector<EventBatch> Ring; ///< fixed-size circular buffer
  std::vector<EventBatch> Spares; ///< consumed buffers awaiting reuse
  size_t Head = 0;  ///< index of the oldest queued batch
  size_t Count = 0; ///< queued (pushed, not yet popped) batches
  size_t InFlight = 0; ///< pushed but not yet completeOne()'d
  size_t MaxDepth = 0;
  bool Stopped = false;
};

} // namespace herd

#endif // HERD_DETECT_EVENTBATCH_H
