//===- detect/AccessTrie.cpp - Trie-based access history ------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/AccessTrie.h"

#include <algorithm>

using namespace herd;

AccessTrie::~AccessTrie() {
  // Tries on a shared store give their slots back so the arena's live()
  // count (the Detector's trie-node stat) stays exact even if a trie dies
  // before the store does.  A privately-owned store dies with the trie.
  if (!Owned && Store && Root != None)
    releaseSubtree();
}

AccessTrie::AccessTrie(AccessTrie &&Other) noexcept
    : Owned(std::move(Other.Owned)), Store(Other.Store), Root(Other.Root),
      NumNodes(Other.NumNodes) {
  if (Owned)
    Other.Store = nullptr;
  Other.Root = None;
  Other.NumNodes = 0;
}

AccessTrie &AccessTrie::operator=(AccessTrie &&Other) noexcept {
  if (this != &Other) {
    if (!Owned && Store && Root != None)
      releaseSubtree();
    Owned = std::move(Other.Owned);
    Store = Other.Store;
    Root = Other.Root;
    NumNodes = Other.NumNodes;
    if (Owned)
      Other.Store = nullptr;
    Other.Root = None;
    Other.NumNodes = 0;
  }
  return *this;
}

void AccessTrie::releaseSubtree() {
  std::vector<uint32_t> Stack = {Root};
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    TrieNode &Node = Store->Nodes[N];
    if (Node.Edges != TrieEdgePool::None) {
      const TrieEdge *E = Store->Edges.at(Node.Edges);
      for (uint32_t I = 0; I != Node.EdgeCount; ++I)
        Stack.push_back(E[I].Child);
      Store->Edges.release(Node.Edges, Node.EdgeClass);
    }
    Store->Nodes.release(N);
  }
  Root = None;
  NumNodes = 0;
}

bool AccessTrie::findWeaker(uint32_t NIdx, const std::vector<LockId> &Locks,
                            size_t From, ThreadLattice Thread,
                            AccessKind Access) const {
  const TrieNode &N = Store->Nodes[NIdx];
  // This node's lockset (its root path) is a subset of the event's lockset
  // by construction of the traversal, so Definition 2 reduces to the thread
  // and access-kind orders.
  if (N.hasInfo() && isWeakerOrEqual(N.Thread, Thread) &&
      isWeakerOrEqual(N.Access, Access))
    return true;
  if (N.EdgeCount == 0)
    return false;
  // Descend only along edges labeled with locks the event holds.  Edges
  // and the lockset are both sorted, so merge-walk them; the label scan
  // stays inside this node's contiguous edge block and a child is only
  // loaded when its label matches.
  const TrieEdge *E = Store->Edges.at(N.Edges);
  size_t LockIdx = From;
  for (uint32_t I = 0; I != N.EdgeCount; ++I) {
    LockId Label = E[I].Label;
    while (LockIdx < Locks.size() && Locks[LockIdx] < Label)
      ++LockIdx;
    if (LockIdx == Locks.size())
      break;
    if (Locks[LockIdx] == Label &&
        findWeaker(E[I].Child, Locks, LockIdx + 1, Thread, Access))
      return true;
  }
  return false;
}

uint32_t AccessTrie::findRace(uint32_t NIdx, const LockSet &Locks,
                              ThreadLattice Thread, AccessKind Access,
                              std::vector<LockId> &Path,
                              std::vector<LockId> &RacePath) const {
  const TrieNode &N = Store->Nodes[NIdx];
  // Case II: the stored accesses at this node involve a different thread
  // (meet goes to t_⊥) and at least one side wrote.  The traversal has
  // already established (by pruning in Case I) that no lock is shared.
  if (N.hasInfo() && meet(N.Thread, Thread).isBottom() &&
      meet(N.Access, Access) == AccessKind::Write) {
    RacePath = Path;
    return NIdx;
  }
  // Case III: recurse, except into children reached via a lock the event
  // holds (Case I: a shared lock protects the whole subtree).
  for (uint32_t I = 0; I != N.EdgeCount; ++I) {
    const TrieEdge &Edge = Store->Edges.at(N.Edges)[I];
    if (Locks.contains(Edge.Label))
      continue;
    Path.push_back(Edge.Label);
    uint32_t Hit = findRace(Edge.Child, Locks, Thread, Access, Path, RacePath);
    if (Hit != None)
      return Hit;
    Path.pop_back();
  }
  return None;
}

uint32_t AccessTrie::getOrCreateChild(uint32_t Parent, LockId Label) {
  TrieNode &P = Store->Nodes[Parent];
  TrieEdge *E =
      P.Edges == TrieEdgePool::None ? nullptr : Store->Edges.at(P.Edges);
  uint32_t I = 0;
  while (I != P.EdgeCount && E[I].Label < Label)
    ++I;
  if (I != P.EdgeCount && E[I].Label == Label)
    return E[I].Child;

  if (P.Edges == TrieEdgePool::None) {
    P.Edges = Store->Edges.allocate(0);
    P.EdgeClass = 0;
    E = Store->Edges.at(P.Edges);
  } else if (P.EdgeCount == (1u << P.EdgeClass)) {
    uint32_t Grown = Store->Edges.allocate(P.EdgeClass + 1);
    TrieEdge *NE = Store->Edges.at(Grown);
    std::copy(E, E + P.EdgeCount, NE);
    Store->Edges.release(P.Edges, P.EdgeClass);
    P.Edges = Grown;
    ++P.EdgeClass;
    E = NE;
  }
  uint32_t Fresh = Store->Nodes.allocate();
  std::move_backward(E + I, E + P.EdgeCount, E + P.EdgeCount + 1);
  E[I].Label = Label;
  E[I].Child = Fresh;
  ++P.EdgeCount;
  ++NumNodes;
  return Fresh;
}

uint32_t AccessTrie::updateNode(const LockSet &Locks, ThreadLattice Thread,
                                AccessKind Access, SiteId Site) {
  uint32_t NIdx = Root;
  for (LockId Lock : Locks)
    NIdx = getOrCreateChild(NIdx, Lock);
  TrieNode &N = Store->Nodes[NIdx];
  N.Thread = meet(N.Thread, Thread);
  N.Access = meet(N.Access, Access);
  N.Site = Site;
  return NIdx;
}

void AccessTrie::pruneStronger(uint32_t NIdx, const std::vector<LockId> &Locks,
                               size_t Matched, ThreadLattice Thread,
                               AccessKind Access, uint32_t Keep) {
  // A stored access q at node N is stronger than the new access p when
  // p.L ⊆ q.L (all of Locks matched on the path) and p.t ⊑ q.t ∧ p.a ⊑ q.a.
  {
    TrieNode &N = Store->Nodes[NIdx];
    if (NIdx != Keep && N.hasInfo() && Matched == Locks.size() &&
        isWeakerOrEqual(Thread, N.Thread) &&
        isWeakerOrEqual(Access, N.Access)) {
      N.Thread = ThreadLattice::top();
      N.Access = AccessKind::Read;
      N.Site = SiteId::invalid();
    }
  }
  // Visit children; after each visit, remove its edge if the child carries
  // no information and has no descendants (node and edge block return to
  // their free lists).  Recursion only mutates descendants' edge arrays,
  // never this node's block, so the edge pointer stays valid between the
  // removals we perform ourselves.
  TrieNode &N = Store->Nodes[NIdx];
  uint32_t I = 0;
  while (I < N.EdgeCount) {
    TrieEdge *E = Store->Edges.at(N.Edges);
    LockId Label = E[I].Label;
    size_t NextMatched = Matched;
    bool Descend = true;
    if (Matched < Locks.size()) {
      if (Label == Locks[Matched]) {
        NextMatched = Matched + 1;
      } else if (Locks[Matched] < Label) {
        // Canonical paths are ascending: once an edge label exceeds the next
        // required lock, no descendant's lockset can contain it.
        Descend = false;
      }
    }
    uint32_t ChildIdx = E[I].Child;
    if (Descend)
      pruneStronger(ChildIdx, Locks, NextMatched, Thread, Access, Keep);
    TrieNode &Child = Store->Nodes[ChildIdx];
    if (!Child.hasInfo() && Child.EdgeCount == 0) {
      if (Child.Edges != TrieEdgePool::None)
        Store->Edges.release(Child.Edges, Child.EdgeClass);
      Store->Nodes.release(ChildIdx);
      --NumNodes;
      E = Store->Edges.at(N.Edges);
      std::move(E + I + 1, E + N.EdgeCount, E + I);
      --N.EdgeCount;
    } else {
      ++I;
    }
  }
}

AccessTrie::Outcome AccessTrie::process(ThreadId Thread, const LockSet &Locks,
                                        AccessKind Access, SiteId Site,
                                        Scratch &S) {
  Outcome Result;
  ThreadLattice EventThread(Thread);

  if (!Store) {
    Owned = std::make_unique<TrieStore>();
    Store = Owned.get();
  }
  if (Root == None) {
    Root = Store->Nodes.allocate();
    NumNodes = 1;
  }

  // 1. Weakness check: the vast majority of events are filtered here.
  if (findWeaker(Root, Locks.items(), 0, EventThread, Access)) {
    Result.Filtered = true;
    return Result;
  }

  // 2. Race check (Cases I-III).
  S.Path.clear();
  S.RacePath.clear();
  uint32_t Hit = findRace(Root, Locks, EventThread, Access, S.Path, S.RacePath);
  if (Hit != None) {
    const TrieNode &HitNode = Store->Nodes[Hit];
    Result.Raced = true;
    Result.PriorThreadKnown = HitNode.Thread.isConcrete();
    if (Result.PriorThreadKnown)
      Result.PriorThread = HitNode.Thread.concrete();
    Result.PriorAccess = HitNode.Access;
    Result.PriorSite = HitNode.Site;
    for (LockId Lock : S.RacePath)
      Result.PriorLocks.insert(Lock);
  }

  // 3. Update the node for the event's exact lockset.
  uint32_t Updated = updateNode(Locks, EventThread, Access, Site);

  // 4. Remove stored accesses the new event is weaker than.
  pruneStronger(Root, Locks.items(), 0, EventThread, Access, Updated);

  return Result;
}

AccessTrie::Outcome AccessTrie::process(ThreadId Thread, const LockSet &Locks,
                                        AccessKind Access, Scratch &S) {
  return process(Thread, Locks, Access, SiteId::invalid(), S);
}

AccessTrie::Outcome AccessTrie::process(ThreadId Thread, const LockSet &Locks,
                                        AccessKind Access) {
  Scratch Local;
  return process(Thread, Locks, Access, SiteId::invalid(), Local);
}

size_t AccessTrie::storedAccessCount() const {
  if (Root == None)
    return 0;
  size_t Count = 0;
  std::vector<uint32_t> Stack = {Root};
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    const TrieNode &Node = Store->Nodes[N];
    if (Node.hasInfo())
      ++Count;
    for (uint32_t I = 0; I != Node.EdgeCount; ++I)
      Stack.push_back(Store->Edges.at(Node.Edges)[I].Child);
  }
  return Count;
}
