//===- detect/AccessTrie.cpp - Trie-based access history ------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/AccessTrie.h"

#include <algorithm>

using namespace herd;

/// A trie node.  Children are kept sorted by edge label so that a lockset's
/// canonical path visits labels in ascending order.
struct AccessTrie::Node {
  ThreadLattice Thread = ThreadLattice::top();
  AccessKind Access = AccessKind::Read;
  std::vector<std::pair<LockId, std::unique_ptr<Node>>> Children;

  bool hasInfo() const { return !Thread.isTop(); }

  Node *findChild(LockId Label) const {
    auto It = std::lower_bound(
        Children.begin(), Children.end(), Label,
        [](const auto &Entry, LockId L) { return Entry.first < L; });
    return (It != Children.end() && It->first == Label) ? It->second.get()
                                                        : nullptr;
  }

  Node *getOrCreateChild(LockId Label, size_t &NumNodes) {
    auto It = std::lower_bound(
        Children.begin(), Children.end(), Label,
        [](const auto &Entry, LockId L) { return Entry.first < L; });
    if (It != Children.end() && It->first == Label)
      return It->second.get();
    It = Children.emplace(It, Label, std::make_unique<Node>());
    ++NumNodes;
    return It->second.get();
  }
};

AccessTrie::AccessTrie() : Root(std::make_unique<Node>()) {}
AccessTrie::~AccessTrie() = default;
AccessTrie::AccessTrie(AccessTrie &&) noexcept = default;
AccessTrie &AccessTrie::operator=(AccessTrie &&) noexcept = default;

bool AccessTrie::findWeaker(const Node &N, const std::vector<LockId> &Locks,
                            size_t From, ThreadLattice Thread,
                            AccessKind Access) const {
  // This node's lockset (its root path) is a subset of the event's lockset
  // by construction of the traversal, so Definition 2 reduces to the thread
  // and access-kind orders.
  if (N.hasInfo() && isWeakerOrEqual(N.Thread, Thread) &&
      isWeakerOrEqual(N.Access, Access))
    return true;
  // Descend only along edges labeled with locks the event holds.  Children
  // and the lockset are both sorted, so merge-walk them.
  size_t LockIdx = From;
  for (const auto &[Label, Child] : N.Children) {
    while (LockIdx < Locks.size() && Locks[LockIdx] < Label)
      ++LockIdx;
    if (LockIdx == Locks.size())
      break;
    if (Locks[LockIdx] == Label &&
        findWeaker(*Child, Locks, LockIdx + 1, Thread, Access))
      return true;
  }
  return false;
}

const AccessTrie::Node *
AccessTrie::findRace(const Node &N, const LockSet &Locks,
                     ThreadLattice Thread, AccessKind Access,
                     std::vector<LockId> &Path,
                     std::vector<LockId> &RacePath) const {
  // Case II: the stored accesses at this node involve a different thread
  // (meet goes to t_⊥) and at least one side wrote.  The traversal has
  // already established (by pruning in Case I) that no lock is shared.
  if (N.hasInfo() && meet(N.Thread, Thread).isBottom() &&
      meet(N.Access, Access) == AccessKind::Write) {
    RacePath = Path;
    return &N;
  }
  // Case III: recurse, except into children reached via a lock the event
  // holds (Case I: a shared lock protects the whole subtree).
  for (const auto &[Label, Child] : N.Children) {
    if (Locks.contains(Label))
      continue;
    Path.push_back(Label);
    if (const Node *Hit = findRace(*Child, Locks, Thread, Access, Path,
                                   RacePath))
      return Hit;
    Path.pop_back();
  }
  return nullptr;
}

AccessTrie::Node *AccessTrie::updateNode(const LockSet &Locks,
                                         ThreadLattice Thread,
                                         AccessKind Access) {
  Node *N = Root.get();
  for (LockId Lock : Locks)
    N = N->getOrCreateChild(Lock, NumNodes);
  N->Thread = meet(N->Thread, Thread);
  N->Access = meet(N->Access, Access);
  return N;
}

void AccessTrie::pruneStronger(Node &N, const std::vector<LockId> &Locks,
                               size_t Matched, ThreadLattice Thread,
                               AccessKind Access, const Node *Keep) {
  // A stored access q at node N is stronger than the new access p when
  // p.L ⊆ q.L (all of Locks matched on the path) and p.t ⊑ q.t ∧ p.a ⊑ q.a.
  if (&N != Keep && N.hasInfo() && Matched == Locks.size() &&
      isWeakerOrEqual(Thread, N.Thread) && isWeakerOrEqual(Access, N.Access)) {
    N.Thread = ThreadLattice::top();
    N.Access = AccessKind::Read;
  }
  for (auto &[Label, Child] : N.Children) {
    size_t NextMatched = Matched;
    if (Matched < Locks.size()) {
      if (Label == Locks[Matched]) {
        NextMatched = Matched + 1;
      } else if (Locks[Matched] < Label) {
        // Canonical paths are ascending: once an edge label exceeds the next
        // required lock, no descendant's lockset can contain it.
        continue;
      }
    }
    pruneStronger(*Child, Locks, NextMatched, Thread, Access, Keep);
  }
  // Drop children that carry no information and have no descendants.
  auto NewEnd = std::remove_if(N.Children.begin(), N.Children.end(),
                               [this](const auto &Entry) {
                                 Node &C = *Entry.second;
                                 if (C.hasInfo() || !C.Children.empty())
                                   return false;
                                 --NumNodes;
                                 return true;
                               });
  N.Children.erase(NewEnd, N.Children.end());
}

AccessTrie::Outcome AccessTrie::process(ThreadId Thread, const LockSet &Locks,
                                        AccessKind Access) {
  Outcome Result;
  ThreadLattice EventThread(Thread);

  // 1. Weakness check: the vast majority of events are filtered here.
  if (findWeaker(*Root, Locks.items(), 0, EventThread, Access)) {
    Result.Filtered = true;
    return Result;
  }

  // 2. Race check (Cases I-III).
  std::vector<LockId> Path, RacePath;
  if (const Node *Hit =
          findRace(*Root, Locks, EventThread, Access, Path, RacePath)) {
    Result.Raced = true;
    Result.PriorThreadKnown = Hit->Thread.isConcrete();
    if (Result.PriorThreadKnown)
      Result.PriorThread = Hit->Thread.concrete();
    Result.PriorAccess = Hit->Access;
    for (LockId Lock : RacePath)
      Result.PriorLocks.insert(Lock);
  }

  // 3. Update the node for the event's exact lockset.
  Node *Updated = updateNode(Locks, EventThread, Access);

  // 4. Remove stored accesses the new event is weaker than.
  pruneStronger(*Root, Locks.items(), 0, EventThread, Access, Updated);

  return Result;
}

size_t AccessTrie::storedAccessCount() const {
  size_t Count = 0;
  // Iterative DFS to avoid a second recursive helper on Node (kept private).
  std::vector<const Node *> Stack = {Root.get()};
  while (!Stack.empty()) {
    const Node *N = Stack.back();
    Stack.pop_back();
    if (N->hasInfo())
      ++Count;
    for (const auto &[Label, Child] : N->Children)
      Stack.push_back(Child.get());
  }
  return Count;
}
