//===- detect/Detector.h - Runtime datarace detector ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime datarace detector (Section 3) combined with the ownership
/// model (Section 7): a table mapping each logical memory location to its
/// ownership state and, once shared, its access-history trie.
///
/// Ownership: the owner of a location is the first thread to access it; the
/// event stream is filtered to accesses of locations in the shared state,
/// which approximates the ordering constraints of thread start (Sections
/// 2.3 and 7.1).  When a location becomes shared, an optional callback lets
/// the cache layer forcibly evict it from every thread's cache — the sound
/// run-time fix of Section 7.2.
///
/// Hot-path layout: the location table is an open-addressed LocationTable
/// (one probe, no node allocations), all tries share one TrieStore
/// (per-Detector, hence per-shard), and events arrive as DetectorEvents
/// whose lockset is an interned LockSetId resolved against the runtime's
/// shared LockSetInterner.  Together these make the steady-state per-event
/// cost allocation-free; stats() is O(1) because the trie-node total is the
/// arena's live count and every other counter is maintained incrementally.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_DETECTOR_H
#define HERD_DETECT_DETECTOR_H

#include "detect/AccessEvent.h"
#include "detect/AccessTrie.h"
#include "detect/DetectorPlan.h"
#include "detect/DetectorStats.h"
#include "detect/RaceReport.h"
#include "support/FlatTable.h"
#include "support/LockSetInterner.h"

#include <functional>
#include <memory>

namespace herd {

/// The per-location detector.
class Detector {
public:
  struct Options {
    /// Apply the ownership filter (Section 7).  Disabled for the
    /// "NoOwnership" accuracy variant of Table 3.
    bool UseOwnership = true;

    /// Collapse all fields of an object into one location (the
    /// "FieldsMerged" accuracy variant of Table 3).
    bool FieldsMerged = false;
  };

  /// \p Locksets is the interner DetectorEvent lockset ids resolve against.
  /// When null (standalone detectors in tests and benches) the detector
  /// owns a private one, fed through handleAccess().  Runtimes pass their
  /// shared interner so producer-side ids resolve here.
  Detector(RaceReporter &Reporter, Options Opts,
           LockSetInterner *Locksets = nullptr)
      : Reporter(Reporter), Opts(Opts), Interner(Locksets) {
    if (!Interner) {
      OwnedInterner = std::make_unique<LockSetInterner>();
      Interner = OwnedInterner.get();
    }
  }

  /// Applies capacity hints before the run: pre-sizes the location table,
  /// trie arena, edge pool and interner, and pre-interns the plan's
  /// locksets.  Hints, not limits — an undersized plan only re-enables
  /// on-demand growth.  Must run before the first event to be useful.
  void applyPlan(const DetectorPlan &Plan);

  /// Processes one access event, interning its lockset.  The event's
  /// lockset must already include any dummy join locks (the caller
  /// maintains per-thread locksets).
  void handleAccess(const AccessEvent &Event);

  /// Processes one pre-interned event: the steady-state hot path (no
  /// lockset copy, no allocation).  \p Event.Locks must come from this
  /// detector's interner.
  void handleEvent(const DetectorEvent &Event);

  /// Invoked when a location transitions from owned to shared, before the
  /// triggering access is processed.  The cache layer uses this to evict
  /// the location from every thread's cache.
  void setOnShared(std::function<void(LocationKey)> Callback) {
    OnShared = std::move(Callback);
  }

  /// Returns the current statistics.  O(1): every counter, including the
  /// trie-node total (the arena's live count), is maintained incrementally.
  DetectorStats stats() const {
    DetectorStats S = Stats;
    S.TrieNodes = Tries.Nodes.live();
    S.LocksetMemoHits = Interner->memoHits();
    S.LocksetMemoMisses = Interner->memoMisses();
    S.LocksetMemoEvictions = Interner->memoEvictions();
    return S;
  }

  /// The interner this detector resolves lockset ids against.
  LockSetInterner &interner() { return *Interner; }
  const LockSetInterner &interner() const { return *Interner; }

private:
  struct LocationState {
    ThreadId Owner;      ///< first accessor; invalid once shared
    bool Shared = false;
    AccessTrie Trie;     ///< populated only once shared
  };

  RaceReporter &Reporter;
  Options Opts;
  std::function<void(LocationKey)> OnShared;
  std::unique_ptr<LockSetInterner> OwnedInterner;
  LockSetInterner *Interner; ///< never null
  TrieStore Tries;           ///< node arena + edge pool for Table's tries
  LocationTable<LocationState> Table;
  AccessTrie::Scratch Scratch; ///< reusable race-check path vectors
  DetectorStats Stats;
};

} // namespace herd

#endif // HERD_DETECT_DETECTOR_H
