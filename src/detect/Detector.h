//===- detect/Detector.h - Runtime datarace detector ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime datarace detector (Section 3) combined with the ownership
/// model (Section 7): a table mapping each logical memory location to its
/// ownership state and, once shared, its access-history trie.
///
/// Ownership: the owner of a location is the first thread to access it; the
/// event stream is filtered to accesses of locations in the shared state,
/// which approximates the ordering constraints of thread start (Sections
/// 2.3 and 7.1).  When a location becomes shared, an optional callback lets
/// the cache layer forcibly evict it from every thread's cache — the sound
/// run-time fix of Section 7.2.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_DETECTOR_H
#define HERD_DETECT_DETECTOR_H

#include "detect/AccessEvent.h"
#include "detect/AccessTrie.h"
#include "detect/DetectorStats.h"
#include "detect/RaceReport.h"

#include <functional>
#include <unordered_map>

namespace herd {

/// The per-location detector.
class Detector {
public:
  struct Options {
    /// Apply the ownership filter (Section 7).  Disabled for the
    /// "NoOwnership" accuracy variant of Table 3.
    bool UseOwnership = true;

    /// Collapse all fields of an object into one location (the
    /// "FieldsMerged" accuracy variant of Table 3).
    bool FieldsMerged = false;
  };

  Detector(RaceReporter &Reporter, Options Opts)
      : Reporter(Reporter), Opts(Opts) {}

  /// Processes one access event.  The event's lockset must already include
  /// any dummy join locks (the caller maintains per-thread locksets).
  void handleAccess(const AccessEvent &Event);

  /// Invoked when a location transitions from owned to shared, before the
  /// triggering access is processed.  The cache layer uses this to evict
  /// the location from every thread's cache.
  void setOnShared(std::function<void(LocationKey)> Callback) {
    OnShared = std::move(Callback);
  }

  /// Returns the current statistics (recomputes the trie-node total).
  DetectorStats stats() const;

private:
  struct LocationState {
    ThreadId Owner;      ///< first accessor; invalid once shared
    bool Shared = false;
    AccessTrie Trie;     ///< populated only once shared
  };

  RaceReporter &Reporter;
  Options Opts;
  std::function<void(LocationKey)> OnShared;
  std::unordered_map<LocationKey, LocationState> Table;
  mutable DetectorStats Stats;
};

} // namespace herd

#endif // HERD_DETECT_DETECTOR_H
