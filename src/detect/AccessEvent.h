//===- detect/AccessEvent.h - Events and the weaker-than relation -*- C++ -*-=//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The access-event model of Section 2.4 and the weaker-than relation of
/// Section 3.1.
///
/// An access event is the 5-tuple (m, t, L, a, s): memory location, thread,
/// lockset, access kind, and source site.  IsRace(e_i, e_j) holds when the
/// two events touch the same location from different threads with disjoint
/// locksets and at least one write.
///
/// The weaker-than partial order p ⊑ q (Definition 2) identifies stored
/// events that dominate new ones: p.m = q.m ∧ p.L ⊆ q.L ∧ p.t ⊑ q.t ∧
/// p.a ⊑ q.a.  Theorem 1 shows a weaker event races with every future event
/// the stronger one races with, so the stronger event can be discarded.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_ACCESSEVENT_H
#define HERD_DETECT_ACCESSEVENT_H

#include "ir/Instr.h"
#include "support/Ids.h"
#include "support/SmallSortedIdSet.h"
#include "support/SortedIdSet.h"

namespace herd {

/// A set of locks held during an access.
using LockSet = SortedIdSet<LockId>;

/// The lockset type carried by race records and trie outcomes.  Section 4.2
/// observes that programs hold 0-2 locks at a time, so an inline capacity of
/// 4 keeps race reporting allocation-free in practice even on adversarial
/// nesting (the cold-pass wall in BENCH_hotpath.json was almost entirely
/// lockset copies into RaceRecord/Outcome, ~2 allocs per racing event).
using RaceLockSet = SmallSortedIdSet<LockId, 4>;

/// The thread lattice used by the detector's stored state:
///   top ("no threads")  ⊒  concrete thread  ⊒  bottom ("≥2 threads").
/// A *new* event always carries a concrete thread; bottom appears only in
/// stored history after two distinct threads accessed a location with the
/// same lockset (the t_⊥ space optimization of Section 3.1).
class ThreadLattice {
public:
  constexpr ThreadLattice() = default; // top
  constexpr ThreadLattice(ThreadId Id) : Tag(Kind::Concrete), Id(Id) {}

  static constexpr ThreadLattice top() { return ThreadLattice(Kind::Top); }
  static constexpr ThreadLattice bottom() {
    return ThreadLattice(Kind::Bottom);
  }

  constexpr bool isTop() const { return Tag == Kind::Top; }
  constexpr bool isBottom() const { return Tag == Kind::Bottom; }
  constexpr bool isConcrete() const { return Tag == Kind::Concrete; }

  constexpr ThreadId concrete() const {
    assert(isConcrete() && "not a concrete thread");
    return Id;
  }

  /// The meet operator ⊓ of Section 3.2.1: x ⊓ x = x, x ⊓ top = x, and the
  /// meet of two distinct concrete threads is bottom.
  friend constexpr ThreadLattice meet(ThreadLattice A, ThreadLattice B) {
    if (A.isTop())
      return B;
    if (B.isTop())
      return A;
    if (A.isBottom() || B.isBottom())
      return bottom();
    return A.Id == B.Id ? A : bottom();
  }

  /// The partial order t_i ⊑ t_j ⟺ t_i = t_j ∨ t_i = t_⊥ (Section 3.1).
  /// Top is not related to anything but itself (it denotes "no access").
  friend constexpr bool isWeakerOrEqual(ThreadLattice A, ThreadLattice B) {
    if (A.isBottom())
      return true;
    if (A.isTop() || B.isTop())
      return A.Tag == B.Tag;
    if (B.isBottom())
      return false;
    return A.Id == B.Id;
  }

  friend constexpr bool operator==(ThreadLattice A, ThreadLattice B) {
    if (A.Tag != B.Tag)
      return false;
    return A.Tag != Kind::Concrete || A.Id == B.Id;
  }

private:
  enum class Kind : uint8_t { Top, Concrete, Bottom };

  constexpr explicit ThreadLattice(Kind Tag) : Tag(Tag) {}

  Kind Tag = Kind::Top;
  ThreadId Id;
};

/// An access event (m, t, L, a, s).
struct AccessEvent {
  LocationKey Location;
  ThreadId Thread;
  LockSet Locks;
  AccessKind Access = AccessKind::Read;
  SiteId Site;
};

/// The hot-path form of an access event: identical to AccessEvent except
/// the lockset is an interned LockSetId (4 bytes, trivially copyable)
/// instead of an owning SortedIdSet.  This is what flows through
/// EventBatch, the sharded runtime's queues, and Detector::handleEvent;
/// the id resolves against the runtime's LockSetInterner.
struct DetectorEvent {
  LocationKey Location;
  ThreadId Thread;
  LockSetId Locks;
  AccessKind Access = AccessKind::Read;
  SiteId Site;
};

/// IsRace(e_i, e_j) from Section 2.4: same location, different threads,
/// disjoint locksets, at least one write.
inline bool isRace(const AccessEvent &A, const AccessEvent &B) {
  return A.Location == B.Location && A.Thread != B.Thread &&
         !A.Locks.intersects(B.Locks) &&
         (A.Access == AccessKind::Write || B.Access == AccessKind::Write);
}

/// The dynamic weaker-than check p ⊑ q (Definition 2) between two events
/// with concrete threads.  The trie generalizes this to stored lattice
/// values; this form is used by tests and by the property checks.
inline bool isWeakerOrEqual(const AccessEvent &P, const AccessEvent &Q) {
  return P.Location == Q.Location && P.Locks.isSubsetOf(Q.Locks) &&
         isWeakerOrEqual(ThreadLattice(P.Thread), ThreadLattice(Q.Thread)) &&
         isWeakerOrEqual(P.Access, Q.Access);
}

} // namespace herd

#endif // HERD_DETECT_ACCESSEVENT_H
