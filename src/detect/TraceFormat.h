//===- detect/TraceFormat.h - Versioned binary trace format -----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk / on-wire encoding shared by the trace subsystem
/// (detect/EventLog in-memory logs, detect/TraceFile streaming I/O, and the
/// `herd --record` / `herd --replay` CLI modes); the full layout is
/// documented in docs/REPLAY.md.
///
/// A trace is a 16-byte header followed by fixed-size records:
///
///   [0, 8)   magic "HERDTRCE"
///   [8, 10)  format version, little-endian u16 (currently 1)
///   [10, 12) header size in bytes, little-endian u16 (16)
///   [12, 16) record size in bytes, little-endian u32 (40)
///
/// Every multi-byte field is little-endian regardless of host order, so a
/// recording process and an analysis process can be different programs on
/// different machines.  There is deliberately no record-count field: the
/// writer streams records as they happen and never seeks, and readers
/// recover the count from the byte length (a length that is not a whole
/// number of records is diagnosed as truncation/trailing garbage).
///
/// Versioning policy: readers reject any trace whose version, header size
/// or record size they do not know, instead of guessing; encoding changes
/// bump the version, and reserved record bytes must be zero in version 1 so
/// they remain available to future versions (and double as a corruption
/// check today).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_TRACEFORMAT_H
#define HERD_DETECT_TRACEFORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace herd {

/// The outcome of a trace I/O or decode operation.  Malformed input is a
/// diagnosable error, never undefined behaviour.
struct TraceResult {
  bool Ok = true;
  std::string Error; ///< non-empty when !Ok

  static TraceResult success() { return {}; }
  static TraceResult failure(std::string Message) {
    return {false, std::move(Message)};
  }

  explicit operator bool() const { return Ok; }
};

namespace tracefmt {

inline constexpr uint8_t Magic[8] = {'H', 'E', 'R', 'D', 'T', 'R', 'C', 'E'};
inline constexpr uint16_t Version = 1;
inline constexpr size_t HeaderBytes = 16;
inline constexpr size_t RecordBytes = 40;

/// Record layout (offsets within one 40-byte record).
inline constexpr size_t RecKind = 0;       ///< u8, EventLog::RecordKind
inline constexpr size_t RecFlags = 1;      ///< u8, per-kind flag bit
inline constexpr size_t RecReserved0 = 2;  ///< u16, must be zero
inline constexpr size_t RecThread = 4;     ///< u32, acting thread index
inline constexpr size_t RecOtherThread = 8;///< u32, parent / joined thread
inline constexpr size_t RecLock = 12;      ///< u32, lock index
inline constexpr size_t RecLocation = 16;  ///< u64, LocationKey::raw()
inline constexpr size_t RecSite = 24;      ///< u32, site index
inline constexpr size_t RecThreadObj = 28; ///< u32, thread object index
inline constexpr size_t RecReserved1 = 32; ///< u64, must be zero

inline void put16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(uint8_t(V));
  Out.push_back(uint8_t(V >> 8));
}

inline void put32(std::vector<uint8_t> &Out, uint32_t V) {
  put16(Out, uint16_t(V));
  put16(Out, uint16_t(V >> 16));
}

inline void put64(std::vector<uint8_t> &Out, uint64_t V) {
  put32(Out, uint32_t(V));
  put32(Out, uint32_t(V >> 32));
}

inline uint16_t get16(const uint8_t *In) {
  return uint16_t(In[0] | (uint16_t(In[1]) << 8));
}

inline uint32_t get32(const uint8_t *In) {
  return uint32_t(get16(In)) | (uint32_t(get16(In + 2)) << 16);
}

inline uint64_t get64(const uint8_t *In) {
  return uint64_t(get32(In)) | (uint64_t(get32(In + 4)) << 32);
}

/// Appends the version-1 header.
inline void putHeader(std::vector<uint8_t> &Out) {
  for (uint8_t C : Magic)
    Out.push_back(C);
  put16(Out, Version);
  put16(Out, uint16_t(HeaderBytes));
  put32(Out, uint32_t(RecordBytes));
}

/// Validates a header at \p Data (at least \p Size bytes available).
inline TraceResult checkHeader(const uint8_t *Data, size_t Size) {
  if (Size < HeaderBytes)
    return TraceResult::failure("trace is shorter than the " +
                                std::to_string(HeaderBytes) +
                                "-byte header (" + std::to_string(Size) +
                                " bytes)");
  for (size_t I = 0; I != sizeof(Magic); ++I)
    if (Data[I] != Magic[I])
      return TraceResult::failure("not a HERD trace (bad magic)");
  uint16_t V = get16(Data + 8);
  if (V != Version)
    return TraceResult::failure("unsupported trace version " +
                                std::to_string(V) + " (this build reads " +
                                std::to_string(Version) + ")");
  if (get16(Data + 10) != HeaderBytes)
    return TraceResult::failure("unexpected trace header size " +
                                std::to_string(get16(Data + 10)));
  if (get32(Data + 12) != RecordBytes)
    return TraceResult::failure("unexpected trace record size " +
                                std::to_string(get32(Data + 12)));
  return TraceResult::success();
}

} // namespace tracefmt

} // namespace herd

#endif // HERD_DETECT_TRACEFORMAT_H
