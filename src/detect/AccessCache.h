//===- detect/AccessCache.h - Per-thread redundant-access cache -*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime optimizer of Section 4: a direct-mapped cache of recent
/// accesses whose hits are guaranteed to be redundant (a weaker access has
/// already reached the detector).
///
/// One cache instance covers one (thread, access-kind) pair — separate
/// caches per thread make p.t = q.t trivially true, and separate caches for
/// reads and writes make p.a = q.a true (Section 4.2).  The lockset subset
/// condition p.Locks ⊆ q.Locks is maintained by eviction: whenever the
/// thread releases a lock l, every entry inserted while l was held is
/// evicted.  Java's structured ("last in, first out") locking means it
/// suffices to link each entry onto the list of the innermost *releasable*
/// lock held at insertion time and flush that list when the lock is
/// released.  (Dummy join locks are never released while the cache is live,
/// so they are excluded from the tagging — see detect/RaceRuntime.)
///
/// The entry count is configurable per instance (power of two; the paper's
/// Section 4.3 experiments sweep cache sizes the same way) and defaults to
/// the paper's 256.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_ACCESSCACHE_H
#define HERD_DETECT_ACCESSCACHE_H

#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace herd {

/// A direct-mapped cache indexed by memory location, with per-lock
/// doubly-linked eviction lists threaded through the entries.
class AccessCache {
public:
  static constexpr uint32_t DefaultEntries = 256;

  /// \p NumEntries must be a power of two.
  explicit AccessCache(uint32_t NumEntries = DefaultEntries)
      : Entries(NumEntries), Shift(shiftFor(NumEntries)) {
    assert(NumEntries != 0 && (NumEntries & (NumEntries - 1)) == 0 &&
           "cache size must be a power of two");
  }

  /// Returns true when \p Key is present (a guaranteed-redundant access).
  bool lookup(LocationKey Key) {
    if (provesRedundant(Key)) {
      ++Hits;
      return true;
    }
    ++Misses;
    return false;
  }

  /// The cache's redundancy invariant as a side-effect-free predicate: a
  /// resident entry proves that an access to \p Key by this cache's thread
  /// with this cache's access kind is weaker-or-equal to an event the
  /// detector has already processed (Section 4.2) — same thread and kind by
  /// cache identity, lockset-subset by the per-lock eviction lists, and no
  /// intervening shared-transition by evictKey.  Unlike lookup(), no
  /// counters move, so layered filters (the hook-path L0 filter) can use it
  /// as their differential oracle without perturbing stats.
  bool provesRedundant(LocationKey Key) const {
    const Entry &E = Entries[indexOf(Key)];
    return E.Valid && E.Key == Key;
  }

  /// Inserts \p Key, replacing whatever occupied its slot.  \p InnermostLock
  /// is the most recently acquired releasable lock currently held (invalid
  /// when none): the entry will be evicted when that lock is released.
  /// Returns the key a conflict eviction displaced, if any, so layered
  /// filters can drop their own entry for it and stay a subset of this
  /// cache.
  std::optional<LocationKey> insert(LocationKey Key, LockId InnermostLock);

  /// Evicts every entry inserted under \p Lock (called on the final, i.e.
  /// non-nested, monitorexit of \p Lock).
  void evictLock(LockId Lock);

  /// Evicts \p Key if present (called when the location transitions to the
  /// shared ownership state, Section 7.2).
  void evictKey(LocationKey Key);

  void clear();

  /// Structural invariant check over the eviction lists, for tests: every
  /// non-empty list head refers to a valid, linked entry; Prev/Next are
  /// mutually consistent and cycle-free; every entry tagged with a lock is
  /// reachable from exactly that lock's head; invalid entries carry no list
  /// state.  (Emptied lists keep their map entry with a None head so the
  /// steady state never touches the allocator.)
  bool checkListIntegrity() const;

  uint32_t capacity() const { return uint32_t(Entries.size()); }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t evictions() const { return Evictions; }

private:
  static constexpr uint32_t None = 0xFFFFFFFF;

  struct Entry {
    LocationKey Key;
    bool Valid = false;
    LockId ListLock;          ///< which lock's eviction list holds this entry
    uint32_t Prev = None;     ///< neighbours on that list (entry indices)
    uint32_t Next = None;
  };

  static uint32_t shiftFor(uint32_t NumEntries) {
    uint32_t Shift = 64;
    while (NumEntries > 1) {
      NumEntries >>= 1;
      --Shift;
    }
    return Shift;
  }

  uint32_t indexOf(LocationKey Key) const {
    // Multiplicative hash, taking high bits — the same shape as the paper's
    // "multiply by a constant, take the upper bits" function (Section 4.3).
    // Shift keeps exactly log2(capacity) high bits; a one-entry cache would
    // shift by 64, which C++ leaves undefined, hence the guard.
    if (Shift >= 64)
      return 0;
    return uint32_t((Key.raw() * 0x9e3779b97f4a7c15ull) >> Shift);
  }

  void unlink(uint32_t Index);

  std::vector<Entry> Entries;
  uint32_t Shift;
  std::unordered_map<LockId, uint32_t> ListHead; ///< lock -> first entry
                                                 ///< (None when emptied)
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace herd

#endif // HERD_DETECT_ACCESSCACHE_H
