//===- detect/EventLog.h - Post-mortem event logging ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-mortem detection (Section 1): "our approach could be easily
/// modified to perform post-mortem datarace detection by creating a log of
/// access events during program execution and performing the final
/// datarace detection phase off-line."
///
/// EventLog is a RuntimeHooks sink that records the full event stream (a
/// compact tagged record per event); replayInto() later feeds any other
/// RuntimeHooks implementation — the trie detector for offline race
/// detection, the sharded runtime at any shard count, or the baseline
/// detectors for differential comparison — without re-running the program.
/// Logs round-trip through the versioned byte format of
/// detect/TraceFormat.h (serialize / deserialize), and detect/TraceFile.h
/// streams the same format to and from disk, so a recording process and an
/// analysis process can be different programs.
///
/// Section 9 notes the classic post-mortem pitfall: "the size of the trace
/// structure can grow prohibitively large"; logRecordBytes() makes that
/// cost measurable (the Table 2 harness's event counts multiply directly;
/// bench/bench_trace_replay.cpp measures the growth on the workloads).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_EVENTLOG_H
#define HERD_DETECT_EVENTLOG_H

#include "detect/TraceFormat.h"
#include "runtime/Hooks.h"

#include <cstdint>
#include <vector>

namespace herd {

/// Records every runtime event in order.
class EventLog : public RuntimeHooks {
public:
  enum class RecordKind : uint8_t {
    ThreadCreate,
    ThreadExit,
    ThreadJoin,
    MonitorEnter,
    MonitorExit,
    Access,
  };

  /// One log record; fields are interpreted per RecordKind.
  struct Record {
    RecordKind Kind;
    uint8_t Flags = 0;   ///< recursive / still-held / access kind
    ThreadId Thread;     ///< acting thread (or child for ThreadCreate)
    ThreadId OtherThread;///< parent / joined thread
    LockId Lock;
    LocationKey Location;
    SiteId Site;
    ObjectId ThreadObj;

    // Builders: the single place the hook-to-record mapping lives, shared
    // by EventLog and the streaming TraceWriter.
    static Record threadCreate(ThreadId Child, ThreadId Parent,
                               ObjectId ThreadObj,
                               SiteId Site = SiteId::invalid());
    static Record threadExit(ThreadId Dying);
    static Record threadJoin(ThreadId Joiner, ThreadId Joined);
    static Record monitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                               SiteId Site = SiteId::invalid());
    static Record monitorExit(ThreadId Thread, LockId Lock, bool StillHeld);
    static Record access(ThreadId Thread, LocationKey Location,
                         AccessKind Access, SiteId Site);

    /// Delivers this record to \p Sink as the hook call it was recorded
    /// from — the inverse of the builders above.
    void dispatch(RuntimeHooks &Sink) const;
  };

  // RuntimeHooks:
  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId ThreadObj,
                      SiteId Site = SiteId::invalid()) override;
  void onThreadExit(ThreadId Dying) override;
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                      SiteId Site = SiteId::invalid()) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;

  /// Replays the whole log into \p Sink in recorded order (onRunEnd is not
  /// invoked; callers decide when the sink's run is over).
  void replayInto(RuntimeHooks &Sink) const;

  const std::vector<Record> &records() const { return Records; }
  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }
  void clear() { Records.clear(); }

  /// Bytes one record occupies in the serialized form.
  static constexpr size_t logRecordBytes() { return tracefmt::RecordBytes; }

  /// Encodes one record (exactly logRecordBytes() bytes) onto \p Out.
  static void encodeRecord(std::vector<uint8_t> &Out, const Record &R);

  /// Decodes one record from exactly logRecordBytes() bytes at \p Bytes.
  /// Fails on an unknown record kind or nonzero reserved bytes.
  static TraceResult decodeRecord(const uint8_t *Bytes, Record &Out);

  /// Serializes to a portable little-endian byte buffer in the versioned
  /// trace format (16-byte header + records; detect/TraceFormat.h).
  std::vector<uint8_t> serialize() const;

  /// Restores a log from a serialized trace.  Every read is bounds-checked:
  /// a bad header, a truncated record, trailing garbage, an unknown record
  /// kind or nonzero reserved bytes all yield a diagnostic error (and an
  /// empty \p Out), never an out-of-bounds access or silent truncation.
  static TraceResult deserialize(const std::vector<uint8_t> &Bytes,
                                 EventLog &Out);

private:
  std::vector<Record> Records;
};

} // namespace herd

#endif // HERD_DETECT_EVENTLOG_H
