//===- detect/EventLog.h - Post-mortem event logging ------------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-mortem detection (Section 1): "our approach could be easily
/// modified to perform post-mortem datarace detection by creating a log of
/// access events during program execution and performing the final
/// datarace detection phase off-line."
///
/// EventLog is a RuntimeHooks sink that records the full event stream (a
/// compact tagged record per event); replayInto() later feeds any other
/// RuntimeHooks implementation — the trie detector for offline race
/// detection, or several detectors for comparison — without re-running the
/// program.  Logs can round-trip through a byte buffer (serialize /
/// deserialize) so a recording process and an analysis process can be
/// different programs.
///
/// Section 9 notes the classic post-mortem pitfall: "the size of the trace
/// structure can grow prohibitively large"; logRecordBytes() makes that
/// cost measurable (the Table 2 harness's event counts multiply directly).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_EVENTLOG_H
#define HERD_DETECT_EVENTLOG_H

#include "runtime/Hooks.h"

#include <cstdint>
#include <vector>

namespace herd {

/// Records every runtime event in order.
class EventLog : public RuntimeHooks {
public:
  enum class RecordKind : uint8_t {
    ThreadCreate,
    ThreadExit,
    ThreadJoin,
    MonitorEnter,
    MonitorExit,
    Access,
  };

  /// One log record; fields are interpreted per RecordKind.
  struct Record {
    RecordKind Kind;
    uint8_t Flags = 0;   ///< recursive / still-held / access kind
    ThreadId Thread;     ///< acting thread (or child for ThreadCreate)
    ThreadId OtherThread;///< parent / joined thread
    LockId Lock;
    LocationKey Location;
    SiteId Site;
    ObjectId ThreadObj;
  };

  // RuntimeHooks:
  void onThreadCreate(ThreadId Child, ThreadId Parent,
                      ObjectId ThreadObj) override;
  void onThreadExit(ThreadId Dying) override;
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override;
  void onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive) override;
  void onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) override;
  void onAccess(ThreadId Thread, LocationKey Location, AccessKind Access,
                SiteId Site) override;

  /// Replays the whole log into \p Sink in recorded order.
  void replayInto(RuntimeHooks &Sink) const;

  const std::vector<Record> &records() const { return Records; }
  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }
  void clear() { Records.clear(); }

  /// Bytes one record occupies in the serialized form.
  static constexpr size_t logRecordBytes() { return 40; }

  /// Serializes to a portable little-endian byte buffer.
  std::vector<uint8_t> serialize() const;

  /// Restores a log from serialize() output; returns false on a malformed
  /// buffer (truncation or an unknown record kind).
  static bool deserialize(const std::vector<uint8_t> &Bytes, EventLog &Out);

private:
  std::vector<Record> Records;
};

} // namespace herd

#endif // HERD_DETECT_EVENTLOG_H
