//===- detect/RaceRuntime.cpp - Hooks-to-detector glue --------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/RaceRuntime.h"

#include <cassert>

using namespace herd;

RaceRuntime::RaceRuntime(RaceRuntimeOptions Opts)
    : Opts(Opts), FilterOn(Opts.HookFilter && Opts.UseCache),
      // Field merging is applied here (before the cache) so that the cache
      // and the detector index the same keys; the detector's own option
      // stays off to avoid re-merging.
      Det(Reporter, Detector::Options{Opts.UseOwnership, /*FieldsMerged=*/false},
          &Interner) {
  Det.applyPlan(Opts.Plan);
  if (uint64_t N = Opts.Plan.clamped().ExpectedThreads)
    Threads.reserve(size_t(N) + 1); // +1: thread ids are 1-based, slot 0 main
  Det.setOnShared([this](LocationKey Key) {
    if (!this->Opts.UseCache)
      return;
    // Section 7.2: a location entering the shared state must leave every
    // thread's cache, otherwise a cache hit could suppress the first
    // post-sharing access.  The L0 filter mirrors the caches, so it must
    // drop the key everywhere too (docs/HOOKPATH.md).
    for (auto &T : Threads) {
      if (!T)
        continue;
      T->ReadCache.evictKey(Key);
      T->WriteCache.evictKey(Key);
      if (FilterOn)
        T->Filter.invalidateKey(Key);
    }
  });
}

RaceRuntime::~RaceRuntime() = default;

RaceRuntime::PerThread &RaceRuntime::threadState(ThreadId Thread) {
  size_t Index = Thread.index();
  if (Index >= Threads.size())
    Threads.resize(Index + 1);
  if (!Threads[Index])
    Threads[Index] = std::make_unique<PerThread>(Opts.CacheEntries);
  return *Threads[Index];
}

const LockSet &RaceRuntime::lockSetOf(ThreadId Thread) const {
  static const LockSet Empty;
  size_t Index = Thread.index();
  if (Index >= Threads.size() || !Threads[Index])
    return Empty;
  return Threads[Index]->Locks;
}

void RaceRuntime::onThreadCreate(ThreadId Child, ThreadId Parent,
                                 ObjectId ThreadObj, SiteId Site) {
  (void)Parent;
  (void)ThreadObj;
  (void)Site;
  PerThread &T = threadState(Child);
  if (Opts.ModelJoin) {
    // A dummy mon-enter(S_child) at the start of the child's execution
    // (Section 2.3).  The dummy lock is not releasable during the thread's
    // life, so it is not tagged for cache eviction (see AccessCache docs).
    T.Locks.insert(dummyLockOf(Child));
    T.LocksDirty = true;
    if (FilterOn)
      T.Filter.bumpEpoch();
  }
}

void RaceRuntime::onThreadExit(ThreadId Dying) {
  if (!Opts.ModelJoin)
    return;
  // The dummy mon-exit(S_dying) at the end of the thread's execution.
  PerThread &T = threadState(Dying);
  T.Locks.erase(dummyLockOf(Dying));
  T.LocksDirty = true;
  if (FilterOn)
    T.Filter.bumpEpoch();
}

void RaceRuntime::onThreadJoin(ThreadId Joiner, ThreadId Joined) {
  if (!Opts.ModelJoin)
    return;
  // A dummy mon-enter(S_joined) after the join completes: everything the
  // joiner does from now on is ordered after the joined thread, which held
  // S_joined for its entire execution.  The dummy lock is held forever.
  PerThread &T = threadState(Joiner);
  T.Locks.insert(dummyLockOf(Joined));
  T.LocksDirty = true;
  if (FilterOn)
    T.Filter.bumpEpoch();
}

void RaceRuntime::onMonitorEnter(ThreadId Thread, LockId Lock,
                                 bool Recursive, SiteId Site) {
  (void)Site;
  if (Recursive)
    return; // nested acquisitions are invisible to the detector (Sec 4.2)
  PerThread &T = threadState(Thread);
  T.Locks.insert(Lock);
  T.LocksDirty = true;
  T.RealStack.push_back(Lock);
  if (FilterOn)
    T.Filter.bumpEpoch();
}

void RaceRuntime::onMonitorExit(ThreadId Thread, LockId Lock,
                                bool StillHeld) {
  if (StillHeld)
    return; // only the final monitorexit releases (Section 4.2)
  PerThread &T = threadState(Thread);
  T.Locks.erase(Lock);
  T.LocksDirty = true;
  assert(!T.RealStack.empty() && T.RealStack.back() == Lock &&
         "monitor releases must be LIFO (Java structured locking)");
  T.RealStack.pop_back();
  if (Opts.UseCache) {
    T.ReadCache.evictLock(Lock);
    T.WriteCache.evictLock(Lock);
  }
  if (FilterOn)
    T.Filter.bumpEpoch();
}

void RaceRuntime::onAccess(ThreadId Thread, LocationKey Location,
                           AccessKind Access, SiteId Site) {
  ++EventsSeen;
  PerThread &T = threadState(Thread);
  LocationKey Key =
      Opts.FieldsMerged ? Location.withFieldsMerged() : Location;

  AccessCache *Cache = nullptr;
  if (Opts.UseCache) {
    Cache = Access == AccessKind::Read ? &T.ReadCache : &T.WriteCache;
    if (Cache->lookup(Key)) {
      // Guaranteed redundant: a weaker access is already recorded.  Seed
      // the L0 filter so the next same-epoch repeat short-circuits at the
      // instrumentation site (the hit is backed by this cache entry).
      if (FilterOn)
        T.Filter.insert(Key, Access);
      return;
    }
  }

  if (T.LocksDirty) {
    T.LocksId = Interner.intern(T.Locks);
    T.LocksDirty = false;
  }

  DetectorEvent Event;
  Event.Location = Key;
  Event.Thread = Thread;
  Event.Locks = T.LocksId;
  Event.Access = Access;
  Event.Site = Site;
  Det.handleEvent(Event);

  if (Cache) {
    LockId Innermost =
        T.RealStack.empty() ? LockId::invalid() : T.RealStack.back();
    std::optional<LocationKey> Displaced = Cache->insert(Key, Innermost);
    if (FilterOn) {
      // A conflict eviction removed another key's backing cache entry; the
      // L0 filter must not keep proving that key redundant.
      if (Displaced)
        T.Filter.invalidateKey(*Displaced);
      T.Filter.insert(Key, Access);
    }
  }
}

RaceRuntimeStats RaceRuntime::stats() const {
  RaceRuntimeStats S;
  S.EventsSeen = EventsSeen;
  S.Hook.FilterEnabled = FilterOn;
  for (size_t Index = 0; Index < Threads.size(); ++Index) {
    const auto &T = Threads[Index];
    if (!T)
      continue;
    S.CacheHits += T->ReadCache.hits() + T->WriteCache.hits();
    S.CacheMisses += T->ReadCache.misses() + T->WriteCache.misses();
    S.CacheEvictions += T->ReadCache.evictions() + T->WriteCache.evictions();
    S.Hook.FilterHits += T->Filter.hits();
    S.Hook.FilterMisses += T->Filter.misses();
    S.Hook.EpochBumps += T->Filter.epochBumps();
    S.Hook.KeyInvalidations += T->Filter.keyInvalidations();
    ThreadCacheStats TC;
    TC.Thread = uint32_t(Index);
    TC.ReadHits = T->ReadCache.hits();
    TC.ReadMisses = T->ReadCache.misses();
    TC.WriteHits = T->WriteCache.hits();
    TC.WriteMisses = T->WriteCache.misses();
    S.PerThreadCache.push_back(TC);
  }
  S.Detector = Det.stats();
  return S;
}
