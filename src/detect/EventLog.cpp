//===- detect/EventLog.cpp - Post-mortem event logging --------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/EventLog.h"

#include "support/Compiler.h"

using namespace herd;
using namespace herd::tracefmt;

//===----------------------------------------------------------------------===
// Record builders and dispatch
//===----------------------------------------------------------------------===

EventLog::Record EventLog::Record::threadCreate(ThreadId Child,
                                                ThreadId Parent,
                                                ObjectId ThreadObj,
                                                SiteId Site) {
  Record R;
  R.Kind = RecordKind::ThreadCreate;
  R.Thread = Child;
  R.OtherThread = Parent;
  R.ThreadObj = ThreadObj;
  R.Site = Site;
  return R;
}

EventLog::Record EventLog::Record::threadExit(ThreadId Dying) {
  Record R;
  R.Kind = RecordKind::ThreadExit;
  R.Thread = Dying;
  return R;
}

EventLog::Record EventLog::Record::threadJoin(ThreadId Joiner,
                                              ThreadId Joined) {
  Record R;
  R.Kind = RecordKind::ThreadJoin;
  R.Thread = Joiner;
  R.OtherThread = Joined;
  return R;
}

EventLog::Record EventLog::Record::monitorEnter(ThreadId Thread, LockId Lock,
                                                bool Recursive, SiteId Site) {
  Record R;
  R.Kind = RecordKind::MonitorEnter;
  R.Thread = Thread;
  R.Lock = Lock;
  R.Flags = Recursive ? 1 : 0;
  R.Site = Site;
  return R;
}

EventLog::Record EventLog::Record::monitorExit(ThreadId Thread, LockId Lock,
                                               bool StillHeld) {
  Record R;
  R.Kind = RecordKind::MonitorExit;
  R.Thread = Thread;
  R.Lock = Lock;
  R.Flags = StillHeld ? 1 : 0;
  return R;
}

EventLog::Record EventLog::Record::access(ThreadId Thread,
                                          LocationKey Location,
                                          AccessKind Access, SiteId Site) {
  Record R;
  R.Kind = RecordKind::Access;
  R.Thread = Thread;
  R.Location = Location;
  R.Flags = Access == AccessKind::Write ? 1 : 0;
  R.Site = Site;
  return R;
}

void EventLog::Record::dispatch(RuntimeHooks &Sink) const {
  switch (Kind) {
  case RecordKind::ThreadCreate:
    Sink.onThreadCreate(Thread, OtherThread, ThreadObj, Site);
    break;
  case RecordKind::ThreadExit:
    Sink.onThreadExit(Thread);
    break;
  case RecordKind::ThreadJoin:
    Sink.onThreadJoin(Thread, OtherThread);
    break;
  case RecordKind::MonitorEnter:
    Sink.onMonitorEnter(Thread, Lock, Flags != 0, Site);
    break;
  case RecordKind::MonitorExit:
    Sink.onMonitorExit(Thread, Lock, Flags != 0);
    break;
  case RecordKind::Access:
    Sink.onAccess(Thread, Location,
                  Flags ? AccessKind::Write : AccessKind::Read, Site);
    break;
  }
}

//===----------------------------------------------------------------------===
// Hook recording and replay
//===----------------------------------------------------------------------===

void EventLog::onThreadCreate(ThreadId Child, ThreadId Parent,
                              ObjectId ThreadObj, SiteId Site) {
  Records.push_back(Record::threadCreate(Child, Parent, ThreadObj, Site));
}

void EventLog::onThreadExit(ThreadId Dying) {
  Records.push_back(Record::threadExit(Dying));
}

void EventLog::onThreadJoin(ThreadId Joiner, ThreadId Joined) {
  Records.push_back(Record::threadJoin(Joiner, Joined));
}

void EventLog::onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive,
                              SiteId Site) {
  Records.push_back(Record::monitorEnter(Thread, Lock, Recursive, Site));
}

void EventLog::onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) {
  Records.push_back(Record::monitorExit(Thread, Lock, StillHeld));
}

void EventLog::onAccess(ThreadId Thread, LocationKey Location,
                        AccessKind Access, SiteId Site) {
  Records.push_back(Record::access(Thread, Location, Access, Site));
}

void EventLog::replayInto(RuntimeHooks &Sink) const {
  for (const Record &R : Records)
    R.dispatch(Sink);
}

//===----------------------------------------------------------------------===
// Serialization (the versioned format of detect/TraceFormat.h)
//===----------------------------------------------------------------------===

void EventLog::encodeRecord(std::vector<uint8_t> &Out, const Record &R) {
  Out.push_back(uint8_t(R.Kind));
  Out.push_back(R.Flags);
  put16(Out, 0); // RecReserved0
  put32(Out, R.Thread.index());
  put32(Out, R.OtherThread.index());
  put32(Out, R.Lock.index());
  put64(Out, R.Location.raw());
  put32(Out, R.Site.index());
  put32(Out, R.ThreadObj.index());
  put64(Out, 0); // RecReserved1: keeps the record at RecordBytes and gives
                 // future versions room without a format break
}

TraceResult EventLog::decodeRecord(const uint8_t *Bytes, Record &Out) {
  uint8_t Kind = Bytes[RecKind];
  if (Kind > uint8_t(RecordKind::Access))
    return TraceResult::failure("unknown record kind " +
                                std::to_string(Kind));
  if (get16(Bytes + RecReserved0) != 0 || get64(Bytes + RecReserved1) != 0)
    return TraceResult::failure("nonzero reserved record bytes (corrupt "
                                "trace or future format)");
  Out.Kind = RecordKind(Kind);
  Out.Flags = Bytes[RecFlags];
  Out.Thread = ThreadId(get32(Bytes + RecThread));
  Out.OtherThread = ThreadId(get32(Bytes + RecOtherThread));
  Out.Lock = LockId(get32(Bytes + RecLock));
  Out.Location = LocationKey::fromRaw(get64(Bytes + RecLocation));
  Out.Site = SiteId(get32(Bytes + RecSite));
  Out.ThreadObj = ObjectId(get32(Bytes + RecThreadObj));
  return TraceResult::success();
}

std::vector<uint8_t> EventLog::serialize() const {
  std::vector<uint8_t> Out;
  Out.reserve(HeaderBytes + Records.size() * RecordBytes);
  putHeader(Out);
  for (const Record &R : Records)
    encodeRecord(Out, R);
  return Out;
}

TraceResult EventLog::deserialize(const std::vector<uint8_t> &Bytes,
                                  EventLog &Out) {
  Out.clear();
  if (TraceResult Header = checkHeader(Bytes.data(), Bytes.size()); !Header)
    return Header;
  size_t Body = Bytes.size() - HeaderBytes;
  if (Body % RecordBytes != 0)
    return TraceResult::failure(
        "trace body of " + std::to_string(Body) +
        " bytes is not a whole number of " + std::to_string(RecordBytes) +
        "-byte records (truncated record or trailing garbage)");
  size_t Count = Body / RecordBytes;
  Out.Records.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    Record R;
    if (TraceResult Res =
            decodeRecord(Bytes.data() + HeaderBytes + I * RecordBytes, R);
        !Res) {
      Out.clear();
      return TraceResult::failure("record " + std::to_string(I) + ": " +
                                  Res.Error);
    }
    Out.Records.push_back(R);
  }
  return TraceResult::success();
}
