//===- detect/EventLog.cpp - Post-mortem event logging --------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/EventLog.h"

#include "support/Compiler.h"

using namespace herd;

void EventLog::onThreadCreate(ThreadId Child, ThreadId Parent,
                              ObjectId ThreadObj) {
  Record R;
  R.Kind = RecordKind::ThreadCreate;
  R.Thread = Child;
  R.OtherThread = Parent;
  R.ThreadObj = ThreadObj;
  Records.push_back(R);
}

void EventLog::onThreadExit(ThreadId Dying) {
  Record R;
  R.Kind = RecordKind::ThreadExit;
  R.Thread = Dying;
  Records.push_back(R);
}

void EventLog::onThreadJoin(ThreadId Joiner, ThreadId Joined) {
  Record R;
  R.Kind = RecordKind::ThreadJoin;
  R.Thread = Joiner;
  R.OtherThread = Joined;
  Records.push_back(R);
}

void EventLog::onMonitorEnter(ThreadId Thread, LockId Lock, bool Recursive) {
  Record R;
  R.Kind = RecordKind::MonitorEnter;
  R.Thread = Thread;
  R.Lock = Lock;
  R.Flags = Recursive ? 1 : 0;
  Records.push_back(R);
}

void EventLog::onMonitorExit(ThreadId Thread, LockId Lock, bool StillHeld) {
  Record R;
  R.Kind = RecordKind::MonitorExit;
  R.Thread = Thread;
  R.Lock = Lock;
  R.Flags = StillHeld ? 1 : 0;
  Records.push_back(R);
}

void EventLog::onAccess(ThreadId Thread, LocationKey Location,
                        AccessKind Access, SiteId Site) {
  Record R;
  R.Kind = RecordKind::Access;
  R.Thread = Thread;
  R.Location = Location;
  R.Flags = Access == AccessKind::Write ? 1 : 0;
  R.Site = Site;
  Records.push_back(R);
}

void EventLog::replayInto(RuntimeHooks &Sink) const {
  for (const Record &R : Records) {
    switch (R.Kind) {
    case RecordKind::ThreadCreate:
      Sink.onThreadCreate(R.Thread, R.OtherThread, R.ThreadObj);
      break;
    case RecordKind::ThreadExit:
      Sink.onThreadExit(R.Thread);
      break;
    case RecordKind::ThreadJoin:
      Sink.onThreadJoin(R.Thread, R.OtherThread);
      break;
    case RecordKind::MonitorEnter:
      Sink.onMonitorEnter(R.Thread, R.Lock, R.Flags != 0);
      break;
    case RecordKind::MonitorExit:
      Sink.onMonitorExit(R.Thread, R.Lock, R.Flags != 0);
      break;
    case RecordKind::Access:
      Sink.onAccess(R.Thread, R.Location,
                    R.Flags ? AccessKind::Write : AccessKind::Read, R.Site);
      break;
    }
  }
}

namespace {

void put32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(uint8_t(V));
  Out.push_back(uint8_t(V >> 8));
  Out.push_back(uint8_t(V >> 16));
  Out.push_back(uint8_t(V >> 24));
}

void put64(std::vector<uint8_t> &Out, uint64_t V) {
  put32(Out, uint32_t(V));
  put32(Out, uint32_t(V >> 32));
}

uint32_t get32(const std::vector<uint8_t> &In, size_t At) {
  return uint32_t(In[At]) | (uint32_t(In[At + 1]) << 8) |
         (uint32_t(In[At + 2]) << 16) | (uint32_t(In[At + 3]) << 24);
}

uint64_t get64(const std::vector<uint8_t> &In, size_t At) {
  return uint64_t(get32(In, At)) | (uint64_t(get32(In, At + 4)) << 32);
}

} // namespace

std::vector<uint8_t> EventLog::serialize() const {
  std::vector<uint8_t> Out;
  Out.reserve(8 + Records.size() * logRecordBytes());
  put64(Out, Records.size());
  for (const Record &R : Records) {
    Out.push_back(uint8_t(R.Kind));
    Out.push_back(R.Flags);
    Out.push_back(0);
    Out.push_back(0);
    put32(Out, R.Thread.index());
    put32(Out, R.OtherThread.index());
    put32(Out, R.Lock.index());
    put64(Out, R.Location.raw());
    put32(Out, R.Site.index());
    put32(Out, R.ThreadObj.index());
    put64(Out, 0); // reserved padding to logRecordBytes()
  }
  return Out;
}

bool EventLog::deserialize(const std::vector<uint8_t> &Bytes, EventLog &Out) {
  Out.clear();
  if (Bytes.size() < 8)
    return false;
  uint64_t Count = get64(Bytes, 0);
  if (Bytes.size() != 8 + Count * logRecordBytes())
    return false;
  size_t At = 8;
  for (uint64_t I = 0; I != Count; ++I) {
    Record R;
    uint8_t Kind = Bytes[At];
    if (Kind > uint8_t(RecordKind::Access))
      return false;
    R.Kind = RecordKind(Kind);
    R.Flags = Bytes[At + 1];
    R.Thread = ThreadId(get32(Bytes, At + 4));
    R.OtherThread = ThreadId(get32(Bytes, At + 8));
    R.Lock = LockId(get32(Bytes, At + 12));
    // LocationKey has no raw constructor; rebuild via the packed halves.
    uint64_t Raw = get64(Bytes, At + 16);
    R.Location = LocationKey::fromRaw(Raw);
    R.Site = SiteId(get32(Bytes, At + 24));
    R.ThreadObj = ObjectId(get32(Bytes, At + 28));
    Out.Records.push_back(R);
    At += logRecordBytes();
  }
  return true;
}
