//===- detect/OwnershipFilter.h - Producer-side ownership model -*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ownership model of Section 7 as a standalone filter, for runtimes
/// that split ownership from trie detection.  The sharded runtime runs
/// this on the producer (hook) thread so that the owned-to-shared
/// transition — and the cache eviction it must trigger (the Section 7.2
/// soundness fix) — happens synchronously with event ingest, while the
/// trie work proceeds asynchronously on the shard workers.
///
/// The semantics mirror Detector::handleAccess exactly: the first thread
/// to touch a location owns it and its accesses are filtered; the second
/// thread's access makes the location shared, fires the onShared callback,
/// and is itself forwarded (as are all later accesses).  The sharded-vs-
/// serial differential tests pin this equivalence on whole programs.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_DETECT_OWNERSHIPFILTER_H
#define HERD_DETECT_OWNERSHIPFILTER_H

#include "support/FlatTable.h"
#include "support/Ids.h"

#include <functional>

namespace herd {

/// Tracks per-location ownership state ahead of the shard queues.
class OwnershipFilter {
public:
  /// Invoked when a location transitions from owned to shared, before the
  /// triggering access is forwarded (so the cache layer can evict it from
  /// every thread's cache first).
  void setOnShared(std::function<void(LocationKey)> Callback) {
    OnShared = std::move(Callback);
  }

  /// Returns true when the access must flow on to the detector; false when
  /// the location is (still) owned by \p Thread and the event is dropped.
  bool passes(ThreadId Thread, LocationKey Key) {
    auto [SlotPtr, Inserted] = Table.tryEmplace(Key);
    State &S = *SlotPtr;
    if (Inserted)
      ++LocationsTracked;
    if (S.Shared)
      return true;
    if (Inserted || !S.Owner.isValid()) {
      S.Owner = Thread;
      ++OwnedFiltered;
      return false;
    }
    if (S.Owner == Thread) {
      ++OwnedFiltered;
      return false;
    }
    S.Shared = true;
    S.Owner = ThreadId::invalid();
    ++LocationsShared;
    if (OnShared)
      OnShared(Key);
    return true;
  }

  /// Pre-sizes the location table for \p Expected locations (DetectorPlan
  /// plumbing: the filter sees every instrumented location, so it shares
  /// the detector's ExpectedLocations hint).
  void reserve(size_t Expected) { Table.reserve(Expected); }

  uint64_t ownedFiltered() const { return OwnedFiltered; }
  size_t locationsTracked() const { return LocationsTracked; }
  size_t locationsShared() const { return LocationsShared; }

private:
  struct State {
    ThreadId Owner; ///< first accessor; invalid once shared
    bool Shared = false;
  };

  std::function<void(LocationKey)> OnShared;
  LocationTable<State> Table; ///< open-addressed, insert-only (FlatTable.h)
  uint64_t OwnedFiltered = 0;
  size_t LocationsTracked = 0;
  size_t LocationsShared = 0;
};

} // namespace herd

#endif // HERD_DETECT_OWNERSHIPFILTER_H
