//===- detect/DeadlockDetector.cpp - Lock-order deadlock detection --------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "detect/DeadlockDetector.h"

#include <algorithm>
#include <functional>

using namespace herd;

void DeadlockDetector::onMonitorEnter(ThreadId Thread, LockId Lock,
                                      bool Recursive, SiteId Site) {
  if (Recursive)
    return;
  std::vector<LockId> &Stack = Held[Thread];
  for (LockId From : Stack) {
    Edge E;
    E.Thread = Thread;
    E.AcquireSite = Site;
    for (LockId Other : Stack)
      if (Other != From)
        E.Gate.insert(Other);
    auto &Obs = Edges[{From, Lock}];
    bool Seen = false;
    for (const Edge &Existing : Obs)
      if (Existing.Thread == E.Thread && Existing.Gate == E.Gate) {
        Seen = true;
        break;
      }
    if (!Seen)
      Obs.push_back(std::move(E));
  }
  Stack.push_back(Lock);
}

void DeadlockDetector::onMonitorExit(ThreadId Thread, LockId Lock,
                                     bool StillHeld) {
  if (StillHeld)
    return;
  std::vector<LockId> &Stack = Held[Thread];
  auto It = std::find(Stack.begin(), Stack.end(), Lock);
  if (It != Stack.end())
    Stack.erase(It);
}

size_t DeadlockDetector::numEdges() const {
  size_t Count = 0;
  for (const auto &[Pair, Obs] : Edges)
    Count += Obs.size();
  return Count;
}

namespace {

/// One candidate assignment of observations along a lock cycle.
struct PathState {
  std::vector<LockId> Locks;
  std::vector<ThreadId> Threads;
  std::vector<SiteId> Sites;
  std::vector<LockSet> Gates;
};

/// Edges from distinct threads with pairwise-disjoint gate sets can
/// interleave into a wait cycle; a shared gate lock serializes the two
/// acquisition sequences and rules the deadlock out (Goodlock).
bool validAddition(const PathState &Path, ThreadId Thread,
                   const LockSet &Gate) {
  for (ThreadId Existing : Path.Threads)
    if (Existing == Thread)
      return false;
  for (const LockSet &ExistingGate : Path.Gates)
    if (ExistingGate.intersects(Gate))
      return false;
  return true;
}

} // namespace

std::vector<DeadlockCycle>
DeadlockDetector::findPotentialDeadlocks(size_t MaxLength) const {
  // Adjacency index: from -> [(to, observations*)].
  std::map<LockId, std::vector<std::pair<LockId, const std::vector<Edge> *>>>
      Adj;
  for (const auto &[Pair, Obs] : Edges)
    Adj[Pair.first].emplace_back(Pair.second, &Obs);

  std::set<DeadlockCycle> Found;

  // DFS over simple lock paths starting from each lock; a cycle closes
  // when an edge returns to the start.  To report each cycle once, only
  // cycles whose smallest lock is the start are kept.
  std::function<void(LockId, PathState &)> Extend = [&](LockId Start,
                                                        PathState &Path) {
    LockId Current = Path.Locks.back();
    auto It = Adj.find(Current);
    if (It == Adj.end())
      return;
    for (const auto &[Next, Obs] : It->second) {
      if (Next == Start && Path.Locks.size() >= 2) {
        for (const Edge &E : *Obs) {
          if (!validAddition(Path, E.Thread, E.Gate))
            continue;
          DeadlockCycle Cycle;
          Cycle.Locks = Path.Locks;
          Cycle.Threads = Path.Threads;
          Cycle.Threads.push_back(E.Thread);
          Cycle.Sites = Path.Sites;
          Cycle.Sites.push_back(E.AcquireSite);
          Found.insert(std::move(Cycle));
        }
        continue;
      }
      if (Path.Locks.size() >= MaxLength)
        continue;
      if (Next < Start || Next == Start)
        continue; // canonical form: start is the smallest lock
      if (std::find(Path.Locks.begin(), Path.Locks.end(), Next) !=
          Path.Locks.end())
        continue;
      for (const Edge &E : *Obs) {
        if (!validAddition(Path, E.Thread, E.Gate))
          continue;
        Path.Locks.push_back(Next);
        Path.Threads.push_back(E.Thread);
        Path.Sites.push_back(E.AcquireSite);
        Path.Gates.push_back(E.Gate);
        Extend(Start, Path);
        Path.Locks.pop_back();
        Path.Threads.pop_back();
        Path.Sites.pop_back();
        Path.Gates.pop_back();
      }
    }
  };

  for (const auto &[Start, Out] : Adj) {
    (void)Out;
    PathState Path;
    Path.Locks.push_back(Start);
    Extend(Start, Path);
  }

  return std::vector<DeadlockCycle>(Found.begin(), Found.end());
}
