//===- instr/Instrumenter.h - Optimized instrumentation ---------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation phase of Figure 1 with the compile-time
/// optimizations of Section 6:
///
///   1. insert a trace(o, f, L, a) pseudo-instruction after every memory
///      access in the static datarace set (or after every access when the
///      static phase is disabled — the "NoStatic" ablation);
///   2. peel the first iteration of innermost loops containing traces, so
///      first-iteration events are produced once outside the loop body
///      (Section 6.3 — PEIs prevent ordinary hoisting);
///   3. delete traces that are statically weaker-than-covered
///      (Section 6.1): an availability dataflow over facts
///      (base value, field, access strength, monitor-nesting prefix) whose
///      kill points are calls, thread start/join (Defn 3/4), base-register
///      redefinitions (value numbering) and monitor exits (the outer()
///      condition).
///
//===----------------------------------------------------------------------===//

#ifndef HERD_INSTR_INSTRUMENTER_H
#define HERD_INSTR_INSTRUMENTER_H

#include "analysis/StaticRace.h"
#include "ir/Program.h"

namespace herd {

/// Ablation switches mirroring Table 2's configurations.
struct InstrumenterOptions {
  /// Use the static datarace set to skip provably race-free statements
  /// (off = "NoStatic": every access is instrumented).
  bool UseStaticRaceSet = true;

  /// Apply the static weaker-than elimination (off = "NoDominators").
  bool StaticWeakerThan = true;

  /// Apply loop peeling before elimination (off = "NoPeeling"; also
  /// implied off when StaticWeakerThan is off, as in the paper).
  bool LoopPeeling = true;

  /// Safety cap on peels per method (each peel clones the loop body).
  uint32_t MaxPeelsPerMethod = 16;
};

struct InstrumenterStats {
  size_t TracesInserted = 0;
  size_t TracesRemoved = 0; ///< by the static weaker-than elimination
  size_t LoopsPeeled = 0;
};

/// Instruments \p P in place.  When UseStaticRaceSet is set, \p Races must
/// be a completed StaticRaceAnalysis of the *uninstrumented* program.
InstrumenterStats instrumentProgram(Program &P,
                                    const InstrumenterOptions &Opts,
                                    const StaticRaceAnalysis *Races);

/// Exposed for unit testing: peels the first iteration of every innermost
/// loop of \p M that contains a Trace; returns the number of peels.
size_t peelTraceLoops(Program &P, MethodId M, uint32_t MaxPeels);

/// Exposed for unit testing: removes statically redundant traces from
/// \p M; returns the number removed.
size_t eliminateRedundantTraces(Program &P, MethodId M);

} // namespace herd

#endif // HERD_INSTR_INSTRUMENTER_H
