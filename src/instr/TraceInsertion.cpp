//===- instr/TraceInsertion.cpp - Trace pseudo-instruction insertion ------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "instr/Instrumenter.h"

using namespace herd;

namespace herd {
namespace detail {

/// Builds the Trace instruction observing access \p I, or returns false
/// when \p I is not a memory access.
bool makeTraceFor(const Instr &I, Instr &Out) {
  Out = Instr();
  Out.Op = Opcode::Trace;
  Out.Site = I.Site;
  switch (I.Op) {
  case Opcode::GetField:
  case Opcode::PutField:
    Out.TraceWhat = TraceWhatKind::Field;
    Out.A = I.A;
    Out.Field = I.Field;
    Out.Access =
        I.Op == Opcode::PutField ? AccessKind::Write : AccessKind::Read;
    return true;
  case Opcode::GetStatic:
  case Opcode::PutStatic:
    Out.TraceWhat = TraceWhatKind::Static;
    Out.Class = I.Class;
    Out.Field = I.Field;
    Out.Access =
        I.Op == Opcode::PutStatic ? AccessKind::Write : AccessKind::Read;
    return true;
  case Opcode::ALoad:
  case Opcode::AStore:
    Out.TraceWhat = TraceWhatKind::Array;
    Out.A = I.A;
    Out.Access =
        I.Op == Opcode::AStore ? AccessKind::Write : AccessKind::Read;
    return true;
  default:
    return false;
  }
}

/// Inserts traces into every method of \p P.  When \p Races is non-null,
/// only accesses in its static datarace set are instrumented.
size_t insertTraces(Program &P, const StaticRaceAnalysis *Races) {
  size_t Inserted = 0;
  for (size_t MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M{uint32_t(MI)};
    Method &Body = P.method(M);
    for (size_t BI = 0; BI != Body.Blocks.size(); ++BI) {
      BlockId Block{uint32_t(BI)};
      std::vector<Instr> &Old = Body.Blocks[BI].Instrs;
      std::vector<Instr> New;
      New.reserve(Old.size() * 2);
      for (size_t II = 0; II != Old.size(); ++II) {
        New.push_back(Old[II]);
        Instr Trace;
        if (!makeTraceFor(Old[II], Trace))
          continue;
        if (Races &&
            !Races->isInRaceSet(InstrRef{M, Block, uint32_t(II)}))
          continue;
        New.push_back(std::move(Trace));
        ++Inserted;
      }
      Old = std::move(New);
    }
  }
  return Inserted;
}

} // namespace detail
} // namespace herd
