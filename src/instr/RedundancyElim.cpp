//===- instr/RedundancyElim.cpp - Static weaker-than elimination ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static weaker-than elimination of Section 6.1.  A trace S_j can be
/// deleted when some S_i is statically weaker: on every path to S_j, S_i
/// already produced an event with the same memory location (same base
/// value and field), equal-or-weaker access kind, a subset lockset (S_i at
/// the same or shallower monitor nesting — the outer() condition), the
/// same thread (trivial intraprocedurally), and no start()/join() between
/// them (Definition 3) nor any method invocation (Definition 4's Exec).
///
/// Implemented as an all-paths availability dataflow whose facts are
/// (base register, location descriptor, access strength, monitor-nesting
/// prefix at generation).  Facts are killed by calls and thread operations,
/// by redefinition of the base register (our conservative value numbering:
/// a register names one value until redefined), and by monitor exits that
/// close regions the fact was generated under.  The all-paths intersection
/// subsumes the dominance test the paper uses; meeting over the peeled
/// first-iteration copy and the loop back edge is exactly what makes
/// in-loop traces removable after peeling (Section 6.3).
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "instr/Instrumenter.h"

#include <algorithm>
#include <set>
#include <vector>

using namespace herd;

namespace {

/// An available-trace fact.
struct Fact {
  TraceWhatKind What = TraceWhatKind::Field;
  RegId Base;    ///< base object register (invalid for static traces)
  FieldId Field; ///< field (invalid for array traces)
  ClassId Class; ///< for static traces
  AccessKind Access = AccessKind::Read;
  std::vector<uint32_t> MonStack; ///< region ids open at generation

  friend bool operator<(const Fact &A, const Fact &B) {
    auto Key = [](const Fact &F) {
      return std::make_tuple(uint32_t(F.What), F.Base.index(),
                             F.Field.index(), F.Class.index(),
                             uint32_t(F.Access));
    };
    if (Key(A) != Key(B))
      return Key(A) < Key(B);
    return A.MonStack < B.MonStack;
  }
  friend bool operator==(const Fact &A, const Fact &B) {
    return !(A < B) && !(B < A);
  }
};

using FactSet = std::set<Fact>;

bool sameLocation(const Fact &F, const Instr &Trace) {
  if (F.What != Trace.TraceWhat)
    return false;
  switch (Trace.TraceWhat) {
  case TraceWhatKind::Field:
    return F.Base == Trace.A && F.Field == Trace.Field;
  case TraceWhatKind::Array:
    return F.Base == Trace.A;
  case TraceWhatKind::Static:
    return F.Class == Trace.Class && F.Field == Trace.Field;
  }
  return false;
}

/// True when some available fact makes \p Trace redundant at a point whose
/// open regions are \p MonStack.
bool isCovered(const FactSet &Facts, const Instr &Trace,
               const std::vector<uint32_t> &MonStack) {
  for (const Fact &F : Facts) {
    if (!sameLocation(F, Trace))
      continue;
    if (!isWeakerOrEqual(F.Access, Trace.Access))
      continue;
    // outer(): the fact's nesting is a prefix of the current nesting, so
    // its lockset is a subset of the current one.
    if (F.MonStack.size() > MonStack.size())
      continue;
    if (!std::equal(F.MonStack.begin(), F.MonStack.end(), MonStack.begin()))
      continue;
    return true;
  }
  return false;
}

/// Applies one instruction's effect to the fact set and monitor stack.
/// When \p RedundantOut is non-null, records whether a Trace was covered
/// *before* its own fact is generated.
void transfer(const Instr &I, FactSet &Facts,
              std::vector<uint32_t> &MonStack, bool *RedundantOut) {
  if (RedundantOut)
    *RedundantOut = false;
  switch (I.Op) {
  case Opcode::Trace: {
    if (RedundantOut)
      *RedundantOut = isCovered(Facts, I, MonStack);
    Fact F;
    F.What = I.TraceWhat;
    F.Base = I.TraceWhat == TraceWhatKind::Static ? RegId::invalid() : I.A;
    F.Field = I.TraceWhat == TraceWhatKind::Array ? FieldId::invalid()
                                                  : I.Field;
    F.Class = I.TraceWhat == TraceWhatKind::Static ? I.Class
                                                   : ClassId::invalid();
    F.Access = I.Access;
    F.MonStack = MonStack;
    Facts.insert(std::move(F));
    return;
  }
  case Opcode::MonitorEnter:
    MonStack.push_back(I.SyncRegion);
    return;
  case Opcode::MonitorExit: {
    if (!MonStack.empty())
      MonStack.pop_back();
    // Facts generated under the closed region lose their lockset-subset
    // guarantee.
    for (auto It = Facts.begin(); It != Facts.end();) {
      if (It->MonStack.size() > MonStack.size())
        It = Facts.erase(It);
      else
        ++It;
    }
    return;
  }
  default:
    break;
  }
  if (I.killsStaticWeakerFacts()) {
    // Definition 3/4: method invocations and thread start/join invalidate
    // everything (the callee may start threads; the lockset reasoning is
    // intraprocedural).
    Facts.clear();
    return;
  }
  if (I.definesValue()) {
    // The base register names a new value: kill facts built on it.
    for (auto It = Facts.begin(); It != Facts.end();) {
      if (It->Base == I.Dst)
        It = Facts.erase(It);
      else
        ++It;
    }
  }
}

} // namespace

size_t herd::eliminateRedundantTraces(Program &P, MethodId MId) {
  Method &M = P.method(MId);
  CFG Cfg(P, MId);
  size_t NumBlocks = M.Blocks.size();

  // Monitor stacks at block entry are path-independent (verified), so the
  // per-block entry stack can be taken from any predecessor.
  std::vector<FactSet> Out(NumBlocks);
  std::vector<std::vector<uint32_t>> EntryStack(NumBlocks);
  std::vector<uint8_t> Visited(NumBlocks, 0);

  // Iterate to fixpoint over reverse post-order.  IN = ∩ over visited
  // predecessors (optimistic ⊤ for unvisited ones).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Cfg.reversePostOrder()) {
      FactSet In;
      bool First = true;
      for (BlockId Pred : Cfg.predecessors(B)) {
        if (!Visited[Pred.index()])
          continue;
        if (First) {
          In = Out[Pred.index()];
          First = false;
        } else {
          FactSet Inter;
          std::set_intersection(In.begin(), In.end(),
                                Out[Pred.index()].begin(),
                                Out[Pred.index()].end(),
                                std::inserter(Inter, Inter.begin()));
          In = std::move(Inter);
        }
      }
      // Entry block (or no visited preds yet): nothing available.
      if (B == BlockId(0))
        In.clear();

      std::vector<uint32_t> Stack = EntryStack[B.index()];
      FactSet Cur = In;
      for (const Instr &I : M.block(B).Instrs)
        transfer(I, Cur, Stack, nullptr);

      if (!Visited[B.index()] || Cur != Out[B.index()]) {
        Visited[B.index()] = 1;
        Out[B.index()] = std::move(Cur);
        Changed = true;
      }
      for (BlockId Succ : Cfg.successors(B))
        if (EntryStack[Succ.index()].empty())
          EntryStack[Succ.index()] = Stack;
    }
  }

  // Final pass: delete traces covered at their program point.
  size_t Removed = 0;
  for (BlockId B : Cfg.reversePostOrder()) {
    FactSet In;
    bool First = true;
    for (BlockId Pred : Cfg.predecessors(B)) {
      if (!Visited[Pred.index()])
        continue;
      if (First) {
        In = Out[Pred.index()];
        First = false;
      } else {
        FactSet Inter;
        std::set_intersection(In.begin(), In.end(), Out[Pred.index()].begin(),
                              Out[Pred.index()].end(),
                              std::inserter(Inter, Inter.begin()));
        In = std::move(Inter);
      }
    }
    if (B == BlockId(0))
      In.clear();

    std::vector<uint32_t> Stack = EntryStack[B.index()];
    std::vector<Instr> Kept;
    std::vector<Instr> &Instrs = M.block(B).Instrs;
    Kept.reserve(Instrs.size());
    for (const Instr &I : Instrs) {
      bool Redundant = false;
      transfer(I, In, Stack, &Redundant);
      if (I.Op == Opcode::Trace && Redundant) {
        ++Removed;
        continue;
      }
      Kept.push_back(I);
    }
    Instrs = std::move(Kept);
  }
  return Removed;
}
