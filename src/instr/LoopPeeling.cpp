//===- instr/LoopPeeling.cpp - First-iteration loop peeling ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop peeling transformation of Section 6.3.  Given a natural loop
/// with header h, we clone every loop block; edges into h from outside the
/// loop are retargeted to the clone of h, and the clone's back edges fall
/// into the *original* header.  The cloned blocks therefore execute exactly
/// the first iteration (guarded by the cloned loop condition — the paper's
/// S20 `if`), after which control continues in the untouched original loop.
/// The static weaker-than elimination can then delete the in-loop traces
/// that the peeled copy makes redundant, which ordinary loop-invariant code
/// motion cannot do because the loop bodies contain PEIs.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "instr/Instrumenter.h"

#include <set>
#include <unordered_map>

using namespace herd;

namespace {

bool loopContainsTrace(const Method &M, const CFG::Loop &L) {
  for (BlockId B : L.Blocks)
    for (const Instr &I : M.block(B).Instrs)
      if (I.Op == Opcode::Trace)
        return true;
  return false;
}

bool isInnermost(const CFG &Cfg, const CFG::Loop &L) {
  for (const CFG::Loop &Other : Cfg.loops()) {
    if (Other.Header == L.Header)
      continue;
    // `Other` nested inside L makes L non-innermost.
    if (L.contains(Other.Header) && Other.Blocks.size() < L.Blocks.size())
      return false;
  }
  return true;
}

/// Peels one loop; returns false when the loop shape is unsupported (the
/// entry block as header).
bool peelLoop(Method &M, const CFG::Loop &L) {
  if (L.Header == BlockId(0))
    return false;

  // Clone every loop block.
  std::unordered_map<uint32_t, BlockId> CloneOf;
  for (BlockId B : L.Blocks) {
    BlockId Clone{uint32_t(M.Blocks.size())};
    M.Blocks.push_back(M.block(B)); // copy instructions
    CloneOf.emplace(B.index(), Clone);
  }

  auto RetargetInClone = [&](BlockId &Target) {
    // Back edge to the header continues in the original loop (second
    // iteration onwards); other intra-loop edges stay within the clone.
    if (Target == L.Header)
      return;
    auto It = CloneOf.find(Target.index());
    if (It != CloneOf.end())
      Target = It->second;
  };
  for (BlockId B : L.Blocks) {
    std::vector<Instr> &Instrs = M.block(CloneOf.at(B.index())).Instrs;
    if (Instrs.empty())
      continue;
    Instr &Term = Instrs.back();
    if (Term.Op == Opcode::Jump) {
      RetargetInClone(Term.Target);
    } else if (Term.Op == Opcode::Branch) {
      RetargetInClone(Term.Target);
      RetargetInClone(Term.AltTarget);
    }
  }

  // Entry edges: every edge into the header from outside the loop now
  // enters the peeled copy.  (Only original blocks are scanned; the clones
  // were just created and their edges are already correct.)
  BlockId HeaderClone = CloneOf.at(L.Header.index());
  size_t NumOriginal = M.Blocks.size() - L.Blocks.size();
  for (size_t BI = 0; BI != NumOriginal; ++BI) {
    if (L.contains(BlockId(uint32_t(BI))))
      continue;
    std::vector<Instr> &Instrs = M.Blocks[BI].Instrs;
    if (Instrs.empty())
      continue;
    Instr &Term = Instrs.back();
    if (Term.Op == Opcode::Jump && Term.Target == L.Header)
      Term.Target = HeaderClone;
    if (Term.Op == Opcode::Branch) {
      if (Term.Target == L.Header)
        Term.Target = HeaderClone;
      if (Term.AltTarget == L.Header)
        Term.AltTarget = HeaderClone;
    }
  }
  return true;
}

} // namespace

size_t herd::peelTraceLoops(Program &P, MethodId MId, uint32_t MaxPeels) {
  size_t Peeled = 0;
  // Re-derive the CFG after each peel (cloning appends blocks; original
  // block ids are stable, so peeled headers can be remembered by id).  A
  // peeled copy is acyclic — its back edge enters the original header — so
  // each header is peeled at most once.
  std::set<uint32_t> PeeledHeaders;
  for (uint32_t Round = 0; Round != MaxPeels; ++Round) {
    Method &M = P.method(MId);
    CFG Cfg(P, MId);
    const CFG::Loop *Candidate = nullptr;
    for (const CFG::Loop &L : Cfg.loops()) {
      if (PeeledHeaders.count(L.Header.index()))
        continue;
      if (!isInnermost(Cfg, L) || !loopContainsTrace(M, L))
        continue;
      Candidate = &L;
      break;
    }
    if (!Candidate)
      break;
    CFG::Loop L = *Candidate; // copy: peeling invalidates the CFG
    PeeledHeaders.insert(L.Header.index());
    if (!peelLoop(M, L))
      continue;
    ++Peeled;
  }
  return Peeled;
}
