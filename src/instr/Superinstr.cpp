//===- instr/Superinstr.cpp - Superinstruction peephole pass --------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "instr/Superinstr.h"

using namespace herd;

namespace {

/// True when \p Def's result register feeds \p Use as a BinOp operand.
bool feedsBinOp(const Instr &Def, const Instr &Use) {
  return Use.A == Def.Dst || Use.B == Def.Dst;
}

/// True for the PEI arithmetic (division by zero): these never fuse, so
/// the exception boundary stays a dispatch boundary.
bool isPeiBinOp(const Instr &I) {
  return I.BinKind == BinOpKind::Div || I.BinKind == BinOpKind::Mod;
}

/// True when the instruction after \p Idx in \p Instrs is the Trace that
/// instruments the access at \p Idx (instrumentation inserts traces
/// immediately after the access they observe).
bool accessIsInstrumented(const std::vector<Instr> &Instrs, size_t Idx) {
  return Idx + 1 < Instrs.size() && Instrs[Idx + 1].Op == Opcode::Trace;
}

/// Tries to match a fusible sequence headed at \p Idx; returns the fused
/// opcode and sets \p Len, or Opcode::Trace (sentinel: never a valid head
/// rewrite) when nothing matches.
Opcode matchAt(const std::vector<Instr> &Instrs, size_t Idx, uint32_t &Len) {
  const Instr &A = Instrs[Idx];

  // GetField, BinOp, PutField — the read-modify-write triple.
  if (A.Op == Opcode::GetField && Idx + 2 < Instrs.size()) {
    const Instr &B = Instrs[Idx + 1];
    const Instr &C = Instrs[Idx + 2];
    if (B.Op == Opcode::BinOp && !isPeiBinOp(B) && feedsBinOp(A, B) &&
        C.Op == Opcode::PutField && C.B == B.Dst &&
        !accessIsInstrumented(Instrs, Idx + 2)) {
      Len = 3;
      return OpFusedGetBinPut;
    }
  }

  // GetField, BinOp — field read feeding arithmetic with no PutField
  // tail (checked after the 3-length triple so the greedy matcher always
  // prefers the longer sequence).  An instrumented GetField can never
  // match: its following instruction is the Trace, not a BinOp.
  if (A.Op == Opcode::GetField && Idx + 1 < Instrs.size()) {
    const Instr &B = Instrs[Idx + 1];
    if (B.Op == Opcode::BinOp && !isPeiBinOp(B) && feedsBinOp(A, B)) {
      Len = 2;
      return OpFusedGetFieldBinOp;
    }
  }

  if (A.Op == Opcode::Const && Idx + 1 < Instrs.size()) {
    const Instr &B = Instrs[Idx + 1];
    // Const, BinOp — loop/index arithmetic.
    if (B.Op == Opcode::BinOp && !isPeiBinOp(B) && feedsBinOp(A, B)) {
      Len = 2;
      return OpFusedConstBinOp;
    }
    // Const, PutField — constant stores.
    if (B.Op == Opcode::PutField && B.B == A.Dst &&
        !accessIsInstrumented(Instrs, Idx + 1)) {
      Len = 2;
      return OpFusedConstPutField;
    }
  }

  if (A.Op == Opcode::BinOp && !isPeiBinOp(A) && Idx + 1 < Instrs.size()) {
    const Instr &B = Instrs[Idx + 1];
    // BinOp, Branch — the compare-and-branch back-edge of every counted
    // loop; the dominant pair in all replica histograms.
    if (B.Op == Opcode::Branch && B.A == A.Dst) {
      Len = 2;
      return OpFusedBinOpBranch;
    }
    // BinOp, PutField — computed stores (`o.f = a + b`).
    if (B.Op == Opcode::PutField && B.B == A.Dst &&
        !accessIsInstrumented(Instrs, Idx + 1)) {
      Len = 2;
      return OpFusedBinOpPutField;
    }
    // BinOp, Move — arithmetic result copied to a named local.
    if (B.Op == Opcode::Move && B.A == A.Dst) {
      Len = 2;
      return OpFusedBinOpMove;
    }
  }

  return Opcode::Trace;
}

/// True for a heap access whose following Trace (if any) marks it as
/// instrumented — instrumented accesses retire per step so the hook event
/// lands at exactly the per-step accounting point.
bool isHeapAccess(Opcode Op) {
  switch (Op) {
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::GetStatic:
  case Opcode::PutStatic:
  case Opcode::ALoad:
  case Opcode::AStore:
    return true;
  default:
    return false;
  }
}

/// True when one dynamic execution of \p Op always advances the pc by one
/// and can only Continue or Fault — never block, yield, finish, or
/// transfer control.  Only such instructions may join a retirement batch:
/// a fault refunds the unexecuted tail, and nothing else about the
/// scheduler's view of the slice can differ from per-step accounting.
bool isBatchable(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
  case Opcode::Move:
  case Opcode::BinOp: // Div/Mod fault via the refund path
  case Opcode::New:
  case Opcode::NewArray:
  case Opcode::ArrayLen:
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::GetStatic:
  case Opcode::PutStatic:
  case Opcode::ALoad:
  case Opcode::AStore:
  case Opcode::Print:
    return true;
  default:
    // Call/Branch/Jump/Return transfer control; monitors, thread ops and
    // Yield can end the slice; Trace is instrumentation and stays a
    // per-step unit with the access it observes.
    return false;
  }
}

/// True when every constituent of the fused opcode is batchable.
/// FusedBinOpBranch carries a control transfer in its tail, so it can
/// never join a batch; every other superinstruction's constituents are
/// straight-line and uninstrumented by the fusion rules.
bool fusedIsBatchable(Opcode Op) { return Op != OpFusedBinOpBranch; }

/// Length of the block's batchable prefix (see ThreadedCode::BatchLens).
/// Prefixes shorter than \p MinLen are reported as 0: derived accounting
/// already retires per-step runs at the hot path's floor cost, so a
/// short batch cannot recoup its block-entry test
/// (SuperinstrOptions::MinBatchLen).
uint32_t batchablePrefixLen(const std::vector<Instr> &Instrs,
                            uint32_t MinLen) {
  size_t N = 0;
  while (N < Instrs.size()) {
    const Instr &I = Instrs[N];
    if (isFusedOpcode(I.Op)) {
      if (!fusedIsBatchable(I.Op))
        break;
      N += fusedLength(I.Op);
      continue;
    }
    if (!isBatchable(I.Op))
      break;
    if (isHeapAccess(I.Op) && accessIsInstrumented(Instrs, N))
      break;
    ++N;
  }
  return N >= MinLen && N >= 2 ? uint32_t(N) : 0;
}

} // namespace

ThreadedCode herd::buildThreadedCode(const Program &P,
                                     const SuperinstrOptions &Opts) {
  ThreadedCode TC;
  TC.MethodBlocks.resize(P.numMethods());
  TC.BatchLens.resize(P.numMethods());
  for (size_t M = 0; M != P.numMethods(); ++M) {
    TC.MethodBlocks[M] = P.method(MethodId(uint32_t(M))).Blocks;
    if (Opts.Fuse) {
      for (BasicBlock &Block : TC.MethodBlocks[M]) {
        std::vector<Instr> &Instrs = Block.Instrs;
        // The terminator can never head a sequence, and matchAt never
        // looks past the block, so patterns cannot straddle a control
        // edge.
        for (size_t Idx = 0; Idx + 1 < Instrs.size();) {
          uint32_t Len = 0;
          Opcode Fused = matchAt(Instrs, Idx, Len);
          if (Fused == Opcode::Trace) {
            ++Idx;
            continue;
          }
          Instrs[Idx].Op = Fused;
          if (Fused == OpFusedConstBinOp)
            ++TC.Stats.ConstBinOpSites;
          else if (Fused == OpFusedConstPutField)
            ++TC.Stats.ConstPutFieldSites;
          else if (Fused == OpFusedGetBinPut)
            ++TC.Stats.GetBinPutSites;
          else if (Fused == OpFusedBinOpBranch)
            ++TC.Stats.BinOpBranchSites;
          else if (Fused == OpFusedGetFieldBinOp)
            ++TC.Stats.GetFieldBinOpSites;
          else if (Fused == OpFusedBinOpPutField)
            ++TC.Stats.BinOpPutFieldSites;
          else
            ++TC.Stats.BinOpMoveSites;
          // Constituents can never also head another sequence:
          // overlapping superinstructions would execute shared
          // constituents twice.
          Idx += Len;
        }
      }
    }
    // Batch planning runs over the FUSED shadow so fused heads count all
    // their constituents and a batch never ends mid-sequence.
    std::vector<uint32_t> &Lens = TC.BatchLens[M];
    Lens.assign(TC.MethodBlocks[M].size(), 0);
    if (Opts.Batch) {
      for (size_t B = 0; B != TC.MethodBlocks[M].size(); ++B) {
        Lens[B] = batchablePrefixLen(TC.MethodBlocks[M][B].Instrs,
                                     Opts.MinBatchLen);
        if (Lens[B] > 0) {
          ++TC.Stats.BatchBlocks;
          TC.Stats.BatchSteps += Lens[B];
        }
      }
    }
  }
  return TC;
}
