//===- instr/Superinstr.cpp - Superinstruction peephole pass --------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "instr/Superinstr.h"

using namespace herd;

namespace {

/// True when \p Def's result register feeds \p Use as a BinOp operand.
bool feedsBinOp(const Instr &Def, const Instr &Use) {
  return Use.A == Def.Dst || Use.B == Def.Dst;
}

/// True for the PEI arithmetic (division by zero): these never fuse, so
/// the exception boundary stays a dispatch boundary.
bool isPeiBinOp(const Instr &I) {
  return I.BinKind == BinOpKind::Div || I.BinKind == BinOpKind::Mod;
}

/// True when the instruction after \p Idx in \p Instrs is the Trace that
/// instruments the access at \p Idx (instrumentation inserts traces
/// immediately after the access they observe).
bool accessIsInstrumented(const std::vector<Instr> &Instrs, size_t Idx) {
  return Idx + 1 < Instrs.size() && Instrs[Idx + 1].Op == Opcode::Trace;
}

/// Tries to match a fusible sequence headed at \p Idx; returns the fused
/// opcode and sets \p Len, or Opcode::Trace (sentinel: never a valid head
/// rewrite) when nothing matches.
Opcode matchAt(const std::vector<Instr> &Instrs, size_t Idx, uint32_t &Len) {
  const Instr &A = Instrs[Idx];

  // GetField, BinOp, PutField — the read-modify-write triple.
  if (A.Op == Opcode::GetField && Idx + 2 < Instrs.size()) {
    const Instr &B = Instrs[Idx + 1];
    const Instr &C = Instrs[Idx + 2];
    if (B.Op == Opcode::BinOp && !isPeiBinOp(B) && feedsBinOp(A, B) &&
        C.Op == Opcode::PutField && C.B == B.Dst &&
        !accessIsInstrumented(Instrs, Idx + 2)) {
      Len = 3;
      return OpFusedGetBinPut;
    }
  }

  if (A.Op == Opcode::Const && Idx + 1 < Instrs.size()) {
    const Instr &B = Instrs[Idx + 1];
    // Const, BinOp — loop/index arithmetic.
    if (B.Op == Opcode::BinOp && !isPeiBinOp(B) && feedsBinOp(A, B)) {
      Len = 2;
      return OpFusedConstBinOp;
    }
    // Const, PutField — constant stores.
    if (B.Op == Opcode::PutField && B.B == A.Dst &&
        !accessIsInstrumented(Instrs, Idx + 1)) {
      Len = 2;
      return OpFusedConstPutField;
    }
  }

  return Opcode::Trace;
}

} // namespace

ThreadedCode herd::buildThreadedCode(const Program &P,
                                     const SuperinstrOptions &Opts) {
  ThreadedCode TC;
  TC.MethodBlocks.resize(P.numMethods());
  for (size_t M = 0; M != P.numMethods(); ++M) {
    TC.MethodBlocks[M] = P.method(MethodId(uint32_t(M))).Blocks;
    if (!Opts.Fuse)
      continue;
    for (BasicBlock &Block : TC.MethodBlocks[M]) {
      std::vector<Instr> &Instrs = Block.Instrs;
      // The terminator can never head a sequence, and matchAt never looks
      // past the block, so patterns cannot straddle a control edge.
      for (size_t Idx = 0; Idx + 1 < Instrs.size();) {
        uint32_t Len = 0;
        Opcode Fused = matchAt(Instrs, Idx, Len);
        if (Fused == Opcode::Trace) {
          ++Idx;
          continue;
        }
        Instrs[Idx].Op = Fused;
        if (Fused == OpFusedConstBinOp)
          ++TC.Stats.ConstBinOpSites;
        else if (Fused == OpFusedConstPutField)
          ++TC.Stats.ConstPutFieldSites;
        else
          ++TC.Stats.GetBinPutSites;
        // Constituents can never also head another sequence: overlapping
        // superinstructions would execute shared constituents twice.
        Idx += Len;
      }
    }
  }
  return TC;
}
