//===- instr/Instrumenter.cpp - Optimized instrumentation driver ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "instr/Instrumenter.h"

using namespace herd;

namespace herd {
namespace detail {
// Defined in TraceInsertion.cpp.
size_t insertTraces(Program &P, const StaticRaceAnalysis *Races);
} // namespace detail
} // namespace herd

InstrumenterStats herd::instrumentProgram(Program &P,
                                          const InstrumenterOptions &Opts,
                                          const StaticRaceAnalysis *Races) {
  InstrumenterStats Stats;

  // Phase 1: insert trace pseudo-instructions (Figure 1's instrumentation
  // phase), restricted by the static datarace set when available.
  Stats.TracesInserted =
      detail::insertTraces(P, Opts.UseStaticRaceSet ? Races : nullptr);

  if (!Opts.StaticWeakerThan)
    return Stats; // "NoDominators": peeling alone is useless (Section 8.2)

  // Phase 2: peel first iterations so in-loop traces become removable.
  if (Opts.LoopPeeling)
    for (size_t MI = 0; MI != P.numMethods(); ++MI)
      Stats.LoopsPeeled +=
          peelTraceLoops(P, MethodId{uint32_t(MI)}, Opts.MaxPeelsPerMethod);

  // Phase 3: delete statically weaker-than-covered traces.
  for (size_t MI = 0; MI != P.numMethods(); ++MI)
    Stats.TracesRemoved += eliminateRedundantTraces(P, MethodId{uint32_t(MI)});

  return Stats;
}
