//===- instr/Superinstr.h - Superinstruction peephole pass ------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plan-time peephole pass that builds superinstruction shadow code
/// (runtime/ThreadedCode.h) for the threaded interpreter.
///
/// The pass scans each basic block of the instrumented program for the
/// hot sequences the `--profile` adjacent-pair histograms surface and
/// rewrites the head instruction's opcode in a shadow copy of the block:
///
///   Const, BinOp                  -> FusedConstBinOp      (len 2)
///   Const, PutField               -> FusedConstPutField   (len 2)
///   GetField, BinOp, PutField     -> FusedGetBinPut       (len 3)
///   BinOp, Branch                 -> FusedBinOpBranch     (len 2)
///   GetField, BinOp               -> FusedGetFieldBinOp   (len 2)
///   BinOp, PutField               -> FusedBinOpPutField   (len 2)
///   BinOp, Move                   -> FusedBinOpMove       (len 2)
///
/// The greedy matcher tries longer patterns first at each head (the
/// GetField triple before the GetField pair) and never lets sequences
/// overlap, so each constituent executes exactly once.
///
/// Fusion rules (pinned by tests/instr_test.cpp):
///
///  * Straight-line only: patterns never span blocks, and MiniJ jumps
///    target blocks, never intra-block positions, so no fused constituent
///    can be a branch target.
///  * Dataflow-fed: the Const/GetField result must feed the next
///    constituent (BinOp operand / PutField stored value), so a
///    superinstruction is a real dependent sequence, not two unrelated
///    neighbors.
///  * Exception boundary: Div/Mod BinOps (the PEI arithmetic) never fuse.
///    Heap-access constituents are PEIs by nature and MAY fuse: the
///    threaded interpreter executes constituents sequentially with full
///    per-instruction accounting, so a mid-sequence fault leaves exactly
///    the state the unfused code would.
///  * Instrumented-access boundary: a sequence whose trailing heap access
///    is followed by a Trace instruction is left unfused.  The Trace is
///    the instrumentation for that access (Section 6.1 inserts traces
///    AFTER the access); keeping the access unfused keeps the
///    instrumented pair intact as the unit every event-order invariant
///    was written against.
///
/// The pass also plans *batched quantum retirement*: for every shadow
/// block it records the length of the leading straight-line run the
/// threaded loop may retire against the scheduler quantum as one unit,
/// skipping the per-step quantum test until the prefix ends
/// (ThreadedCode::BatchLens).  Instructions that can end a
/// slice or transfer control, Trace instructions, and accesses a Trace
/// instruments are never part of a batch, so per-step accounting — and
/// with it the byte-identical schedule — is preserved exactly where it
/// is observable.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_INSTR_SUPERINSTR_H
#define HERD_INSTR_SUPERINSTR_H

#include "ir/Program.h"
#include "runtime/ThreadedCode.h"

namespace herd {

/// Options for shadow-code construction.
struct SuperinstrOptions {
  /// When false, the shadow copy is built without any fusion (threaded
  /// dispatch over verbatim code) — the A/B ablation lever.
  bool Fuse = true;

  /// When false, every block's batchable-prefix length is left at zero,
  /// so the threaded loop accounts the scheduler quantum per step even
  /// for straight-line code — the batch-retirement ablation lever.
  bool Batch = true;

  /// Minimum batchable-prefix length worth planning; shorter prefixes
  /// are reported as zero.  The threaded loop's derived accounting
  /// already retires a per-step run at one compare + one decrement per
  /// instruction, so entering a batch only pays for itself when the
  /// prefix is long enough to amortize the block-entry batch test;
  /// short-block loops must fail that test on its first compare.
  /// Measured crossover on the hotpath suite sits around a dozen steps.
  uint32_t MinBatchLen = 12;
};

/// Builds threaded-dispatch shadow code for \p P (which must already be
/// in its final, post-instrumentation form).  The returned object must
/// outlive every Interpreter run that uses it.
ThreadedCode buildThreadedCode(const Program &P,
                               const SuperinstrOptions &Opts = {});

} // namespace herd

#endif // HERD_INSTR_SUPERINSTR_H
