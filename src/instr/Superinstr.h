//===- instr/Superinstr.h - Superinstruction peephole pass ------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plan-time peephole pass that builds superinstruction shadow code
/// (runtime/ThreadedCode.h) for the threaded interpreter.
///
/// The pass scans each basic block of the instrumented program for the
/// three hot sequences the `--profile` histograms surface and rewrites the
/// head instruction's opcode in a shadow copy of the block:
///
///   Const, BinOp                  -> FusedConstBinOp      (len 2)
///   Const, PutField               -> FusedConstPutField   (len 2)
///   GetField, BinOp, PutField     -> FusedGetBinPut       (len 3)
///
/// Fusion rules (pinned by tests/instr_test.cpp):
///
///  * Straight-line only: patterns never span blocks, and MiniJ jumps
///    target blocks, never intra-block positions, so no fused constituent
///    can be a branch target.
///  * Dataflow-fed: the Const/GetField result must feed the next
///    constituent (BinOp operand / PutField stored value), so a
///    superinstruction is a real dependent sequence, not two unrelated
///    neighbors.
///  * Exception boundary: Div/Mod BinOps (the PEI arithmetic) never fuse.
///    Heap-access constituents are PEIs by nature and MAY fuse: the
///    threaded interpreter executes constituents sequentially with full
///    per-instruction accounting, so a mid-sequence fault leaves exactly
///    the state the unfused code would.
///  * Instrumented-access boundary: a sequence whose trailing heap access
///    is followed by a Trace instruction is left unfused.  The Trace is
///    the instrumentation for that access (Section 6.1 inserts traces
///    AFTER the access); keeping the access unfused keeps the
///    instrumented pair intact as the unit every event-order invariant
///    was written against.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_INSTR_SUPERINSTR_H
#define HERD_INSTR_SUPERINSTR_H

#include "ir/Program.h"
#include "runtime/ThreadedCode.h"

namespace herd {

/// Options for shadow-code construction.
struct SuperinstrOptions {
  /// When false, the shadow copy is built without any fusion (threaded
  /// dispatch over verbatim code) — the A/B ablation lever.
  bool Fuse = true;
};

/// Builds threaded-dispatch shadow code for \p P (which must already be
/// in its final, post-instrumentation form).  The returned object must
/// outlive every Interpreter run that uses it.
ThreadedCode buildThreadedCode(const Program &P,
                               const SuperinstrOptions &Opts = {});

} // namespace herd

#endif // HERD_INSTR_SUPERINSTR_H
