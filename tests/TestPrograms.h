//===- tests/TestPrograms.h - Shared MiniJ test programs --------*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small MiniJ programs shared by the analysis, instrumentation and
/// pipeline tests.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_TESTS_TESTPROGRAMS_H
#define HERD_TESTS_TESTPROGRAMS_H

#include "ir/IRBuilder.h"
#include "ir/Program.h"

namespace herd {
namespace testprogs {

/// Two worker threads increment `Shared.count` NumIters times each; main
/// joins and prints the total.  With \p Locked the increment runs inside
/// synchronized(shared).
struct CounterProgram {
  Program P;
  ClassId SharedCls;
  FieldId Count;
  MethodId Run;
};

inline CounterProgram buildCounter(bool Locked, int64_t NumIters) {
  CounterProgram Out;
  IRBuilder B(Out.P);
  Out.SharedCls = B.makeClass("Shared");
  Out.Count = B.makeField(Out.SharedCls, "count");
  ClassId Worker = B.makeClass("Worker");
  FieldId Target = B.makeField(Worker, "target");

  Out.Run = B.startMethod(Worker, "run", 1);
  {
    RegId Obj = B.emitGetField(B.thisReg(), Target);
    RegId N = B.emitConst(NumIters);
    B.forLoop(0, N, 1, [&](RegId) {
      auto Increment = [&] {
        B.site("INC");
        RegId Cur = B.emitGetField(Obj, Out.Count);
        RegId One = B.emitConst(1);
        B.emitPutField(Obj, Out.Count, B.emitBinOp(BinOpKind::Add, Cur, One));
      };
      if (Locked)
        B.sync(Obj, Increment);
      else
        Increment();
    });
    B.emitReturn();
  }

  B.startMain();
  RegId SharedObj = B.emitNew(Out.SharedCls);
  RegId W1 = B.emitNew(Worker);
  RegId W2 = B.emitNew(Worker);
  B.emitPutField(W1, Target, SharedObj);
  B.emitPutField(W2, Target, SharedObj);
  B.emitThreadStart(W1);
  B.emitThreadStart(W2);
  B.emitThreadJoin(W1);
  B.emitThreadJoin(W2);
  B.emitPrint(B.emitGetField(SharedObj, Out.Count));
  B.emitReturn();
  return Out;
}

/// The paper's Figure 2 program (see Section 2.2).  \p SamePQ makes the
/// two synchronized blocks use the same lock object.  Tests that need
/// precise instruction references locate them by their site labels.
inline Program buildFigure2(bool SamePQ, FieldId *FOut = nullptr,
                            FieldId *GOut = nullptr) {
  Program P;
  IRBuilder B(P);
  ClassId Data = B.makeClass("Data");
  FieldId F = B.makeField(Data, "f");
  FieldId G = B.makeField(Data, "g");
  if (FOut)
    *FOut = F;
  if (GOut)
    *GOut = G;
  ClassId LockCls = B.makeClass("LockObj");

  ClassId Child1 = B.makeClass("Child1");
  FieldId C1A = B.makeField(Child1, "a");
  FieldId C1B = B.makeField(Child1, "b");
  FieldId C1P = B.makeField(Child1, "p");
  MethodId Foo = B.startMethod(Child1, "foo", 1, /*IsStatic=*/false,
                               /*IsSynchronized=*/true);
  {
    B.site("T11");
    RegId A = B.emitGetField(B.thisReg(), C1A);
    B.emitPutField(A, F, B.emitConst(50));
    RegId Pl = B.emitGetField(B.thisReg(), C1P);
    B.sync(Pl, [&] {
      B.site("T14");
      RegId Bo = B.emitGetField(B.thisReg(), C1B);
      RegId Read = B.emitGetField(Bo, F);
      B.emitPutField(Bo, G, Read);
    });
    B.emitReturn();
  }
  B.startMethod(Child1, "run", 1);
  B.emitCallVoid(Foo, {B.thisReg()});
  B.emitReturn();

  ClassId Child2 = B.makeClass("Child2");
  FieldId C2D = B.makeField(Child2, "d");
  FieldId C2Q = B.makeField(Child2, "q");
  B.startMethod(Child2, "run", 1);
  {
    RegId Q = B.emitGetField(B.thisReg(), C2Q);
    B.sync(Q, [&] {
      B.site("T21");
      RegId D = B.emitGetField(B.thisReg(), C2D);
      B.emitPutField(D, F, B.emitConst(10));
    });
    B.emitReturn();
  }

  B.startMain();
  RegId X = B.emitNew(Data);
  B.site("T01");
  B.emitPutField(X, F, B.emitConst(100));
  B.site("");
  RegId T1 = B.emitNew(Child1);
  RegId T2 = B.emitNew(Child2);
  RegId PLock = B.emitNew(LockCls);
  RegId QLock = SamePQ ? PLock : B.emitNew(LockCls);
  B.emitPutField(T1, C1A, X);
  B.emitPutField(T1, C1B, X);
  B.emitPutField(T1, C1P, PLock);
  B.emitPutField(T2, C2D, X);
  B.emitPutField(T2, C2Q, QLock);
  B.emitThreadStart(T1);
  B.emitThreadStart(T2);
  B.emitReturn();
  return P;
}

/// A single-threaded program with a loop of array writes plus a PEI, the
/// shape of Figure 3 (loop peeling's motivating example).
inline Program buildFig3Loop(int64_t Iters) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId N = B.emitConst(Iters);
  B.forLoop(0, N, 1, [&](RegId I) {
    B.site("S12");
    // a.f = i  — the PutField is itself a PEI (null check), like S11/S12.
    B.emitPutField(Obj, F, I);
  });
  B.emitPrint(B.emitGetField(Obj, F));
  B.emitReturn();
  return P;
}

} // namespace testprogs
} // namespace herd

#endif // HERD_TESTS_TESTPROGRAMS_H
