//===- tests/trace_test.cpp - Trace subsystem differential tests ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests for the versioned trace subsystem (docs/REPLAY.md):
/// a run recorded with ToolConfig::RecordTracePath and re-detected with
/// replayTracePipeline must reproduce the live race-record set exactly —
/// for the serial runtime, the sharded runtime at several shard counts,
/// and the baseline detectors — and every malformed trace must be
/// rejected with a diagnostic, never undefined behaviour.
///
//===----------------------------------------------------------------------===//

#include "FuzzPrograms.h"
#include "TestPrograms.h"
#include "baselines/EraserDetector.h"
#include "baselines/VectorClockDetector.h"
#include "detect/TraceFile.h"
#include "herd/Pipeline.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace herd;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

std::vector<uint8_t> readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeAll(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out.good()) << Path;
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            std::streamsize(Bytes.size()));
}

/// Canonical, order-independent encoding of a race record (the same shape
/// the sharded-runtime differential oracle uses).
std::string encode(const RaceRecord &Rec) {
  std::ostringstream Out;
  Out << Rec.Location.raw() << '|' << Rec.CurrentThread.index() << '|'
      << int(Rec.CurrentAccess) << '|' << Rec.CurrentSite.index() << '|';
  for (LockId L : Rec.CurrentLocks)
    Out << L.index() << ',';
  Out << '|' << Rec.PriorThreadKnown << '|'
      << (Rec.PriorThreadKnown ? Rec.PriorThread.index() : 0) << '|'
      << int(Rec.PriorAccess) << '|';
  for (LockId L : Rec.PriorLocks)
    Out << L.index() << ',';
  return Out.str();
}

std::multiset<std::string> canonicalRecords(const RaceReporter &Reporter) {
  std::multiset<std::string> Out;
  for (const RaceRecord &Rec : Reporter.records())
    Out.insert(encode(Rec));
  return Out;
}

struct NamedProgram {
  std::string Name;
  Program P;
};

std::vector<NamedProgram> tracePrograms() {
  std::vector<NamedProgram> Out;
  Out.push_back({"figure2", testprogs::buildFigure2(/*SamePQ=*/false)});
  Out.push_back({"counter_unlocked",
                 testprogs::buildCounter(/*Locked=*/false, 40).P});
  Out.push_back({"fuzz_5", fuzzprogs::generateProgram(5)});
  return Out;
}

//===----------------------------------------------------------------------===
// The record/replay differential oracle.
//===----------------------------------------------------------------------===

TEST(TracePipelineTest, ReplayMatchesLiveAcrossRuntimesAndSeeds) {
  // One recorded execution re-detected through every runtime shape must
  // yield the identical race-record set: the trace captures events above
  // the detection stack, so the detector configuration is a free variable
  // of replay.
  for (const NamedProgram &Prog : tracePrograms()) {
    for (uint64_t Seed : {1ull, 2ull, 3ull}) {
      std::string Path =
          tempPath("herd_" + Prog.Name + "_s" + std::to_string(Seed) +
                   ".trace");
      ToolConfig Cfg = ToolConfig::full();
      Cfg.Seed = Seed;
      Cfg.RecordTracePath = Path;
      PipelineResult Live = runPipeline(Prog.P, Cfg);
      ASSERT_TRUE(Live.Run.Ok)
          << Prog.Name << " seed " << Seed << ": " << Live.Run.Error;
      ASSERT_TRUE(Live.Trace.Ok) << Live.Trace.Error;
      ASSERT_GT(Live.TraceRecords, 0u);
      ASSERT_EQ(Live.TraceBytes, tracefmt::HeaderBytes +
                                     Live.TraceRecords *
                                         tracefmt::RecordBytes);
      std::multiset<std::string> Want = canonicalRecords(Live.Reports);

      // Serial replay (Shards == 0) and sharded replay at several counts.
      for (uint32_t Shards : {0u, 1u, 3u, 4u, 8u}) {
        ToolConfig RCfg = ToolConfig::full();
        RCfg.Shards = Shards;
        PipelineResult Replayed = replayTracePipeline(Prog.P, RCfg, Path);
        ASSERT_TRUE(Replayed.Trace.Ok)
            << Prog.Name << " seed " << Seed << " shards " << Shards << ": "
            << Replayed.Trace.Error;
        ASSERT_TRUE(Replayed.Run.Ok);
        EXPECT_EQ(Replayed.TraceRecords, Live.TraceRecords);
        EXPECT_EQ(Want, canonicalRecords(Replayed.Reports))
            << Prog.Name << " seed " << Seed << " shards " << Shards;
      }
      std::remove(Path.c_str());
    }
  }
}

TEST(TracePipelineTest, RecordingDoesNotPerturbDetection) {
  // The trace writer is a passive fanout sink: a recorded run must report
  // exactly what the same run without recording reports.
  std::string Path = tempPath("herd_perturb.trace");
  for (const NamedProgram &Prog : tracePrograms()) {
    ToolConfig Plain = ToolConfig::full();
    Plain.Seed = 7;
    PipelineResult Bare = runPipeline(Prog.P, Plain);
    ASSERT_TRUE(Bare.Run.Ok) << Bare.Run.Error;

    ToolConfig Rec = Plain;
    Rec.RecordTracePath = Path;
    PipelineResult Recorded = runPipeline(Prog.P, Rec);
    ASSERT_TRUE(Recorded.Run.Ok) << Recorded.Run.Error;
    ASSERT_TRUE(Recorded.Trace.Ok) << Recorded.Trace.Error;

    EXPECT_EQ(Bare.Run.InstructionsExecuted,
              Recorded.Run.InstructionsExecuted)
        << Prog.Name;
    EXPECT_EQ(canonicalRecords(Bare.Reports),
              canonicalRecords(Recorded.Reports))
        << Prog.Name;
  }
  std::remove(Path.c_str());
}

TEST(TraceBaselineTest, BaselineReplayMatchesLiveBaseline) {
  // The same trace must also drive the comparison detectors to their live
  // verdicts: record with a full event stream, replay into a fresh
  // instance, compare reported locations.
  Program P = testprogs::buildCounter(/*Locked=*/false, 25).P;
  for (uint64_t Seed : {1ull, 2ull, 3ull}) {
    std::string Path =
        tempPath("herd_baseline_s" + std::to_string(Seed) + ".trace");
    EraserDetector LiveEraser;
    VectorClockDetector LiveVC;
    TraceWriter Writer;
    ASSERT_TRUE(Writer.open(Path).Ok);
    FanoutHooks Fanout{&LiveEraser, &LiveVC, &Writer};
    InterpOptions Opts;
    Opts.Seed = Seed;
    Opts.TraceEveryAccess = true;
    Interpreter Interp(P, &Fanout, Opts);
    ASSERT_TRUE(Interp.run().Ok);
    ASSERT_TRUE(Writer.close().Ok);

    EraserDetector ReplayEraser;
    VectorClockDetector ReplayVC;
    {
      TraceReader Reader;
      ASSERT_TRUE(Reader.open(Path).Ok);
      ASSERT_TRUE(Reader.replayInto(ReplayEraser).Ok);
    }
    {
      TraceReader Reader;
      ASSERT_TRUE(Reader.open(Path).Ok);
      ASSERT_TRUE(Reader.replayInto(ReplayVC).Ok);
    }
    EXPECT_EQ(ReplayEraser.reportedLocations(),
              LiveEraser.reportedLocations())
        << "seed " << Seed;
    EXPECT_EQ(ReplayVC.reportedLocations(), LiveVC.reportedLocations())
        << "seed " << Seed;
    EXPECT_FALSE(LiveEraser.reportedLocations().empty())
        << "need a racy recording for the comparison to mean anything";
    std::remove(Path.c_str());
  }
}

//===----------------------------------------------------------------------===
// Streaming writer/reader vs the in-memory log.
//===----------------------------------------------------------------------===

TEST(TraceFileTest, WriterStreamsExactlySerializeBytes) {
  // The streaming writer and EventLog::serialize are two encoders of one
  // format; their output must be byte-identical.
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  std::string Path = tempPath("herd_stream.trace");

  EventLog Log;
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(Path).Ok);
  FanoutHooks Fanout{&Log, &Writer};
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(P, &Fanout, Opts);
  ASSERT_TRUE(Interp.run().Ok);
  ASSERT_TRUE(Writer.close().Ok);

  std::vector<uint8_t> FromFile = readAll(Path);
  EXPECT_EQ(FromFile, Log.serialize());
  EXPECT_EQ(Writer.bytesWritten(), FromFile.size());
  EXPECT_EQ(Writer.recordsWritten(), Log.size());
  std::remove(Path.c_str());
}

TEST(TraceFileTest, WriteReadRoundTrip) {
  Program P = testprogs::buildCounter(/*Locked=*/true, 10).P;
  EventLog Log;
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(P, &Log, Opts);
  ASSERT_TRUE(Interp.run().Ok);
  ASSERT_GT(Log.size(), 0u);

  std::string Path = tempPath("herd_roundtrip.trace");
  ASSERT_TRUE(writeTraceFile(Path, Log).Ok);
  EventLog Restored;
  ASSERT_TRUE(readTraceFile(Path, Restored).Ok);
  EXPECT_EQ(Restored.serialize(), Log.serialize());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===
// Corruption: every malformed input is a diagnosed error.
//===----------------------------------------------------------------------===

TEST(TraceFileTest, CorruptTracesAreRejectedWithDiagnostics) {
  // One healthy trace, many mutilations.  Each must come back !Ok with a
  // non-empty message (and, under sanitizers, no report).
  EventLog Log;
  Log.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId(0));
  Log.onMonitorEnter(ThreadId(0), LockId(1), false);
  Log.onAccess(ThreadId(0), LocationKey::forField(ObjectId(2), FieldId(1)),
               AccessKind::Write, SiteId(3));
  Log.onMonitorExit(ThreadId(0), LockId(1), false);
  std::vector<uint8_t> Good = Log.serialize();
  std::string Path = tempPath("herd_corrupt.trace");

  auto expectRejected = [&](std::vector<uint8_t> Bytes, const char *What) {
    writeAll(Path, Bytes);
    EventLog Out;
    TraceResult TR = readTraceFile(Path, Out);
    EXPECT_FALSE(TR.Ok) << What;
    EXPECT_FALSE(TR.Error.empty()) << What;
    EXPECT_EQ(Out.size(), 0u) << What;
  };

  // Header damage.
  expectRejected({}, "empty file");
  expectRejected({Good.begin(), Good.begin() + 7}, "short header");
  {
    std::vector<uint8_t> B = Good;
    B[0] = 'X';
    expectRejected(B, "bad magic");
  }
  {
    std::vector<uint8_t> B = Good;
    B[8] = 99; // version field
    expectRejected(B, "unsupported version");
  }
  {
    std::vector<uint8_t> B = Good;
    B[10] = 17; // header-size field
    expectRejected(B, "bad header size");
  }
  {
    std::vector<uint8_t> B = Good;
    B[12] = 39; // record-size field
    expectRejected(B, "bad record size");
  }

  // Body damage.
  expectRejected({Good.begin(), Good.end() - 1}, "mid-record truncation");
  {
    std::vector<uint8_t> B = Good;
    B.push_back(0); // one stray byte after the last record
    expectRejected(B, "trailing garbage");
  }
  {
    std::vector<uint8_t> B = Good;
    B[tracefmt::HeaderBytes + tracefmt::RecKind] = 0xEE;
    expectRejected(B, "unknown record kind");
  }
  {
    std::vector<uint8_t> B = Good;
    B[tracefmt::HeaderBytes + tracefmt::RecReserved0] = 1;
    expectRejected(B, "nonzero reserved u16");
  }
  {
    std::vector<uint8_t> B = Good;
    B[tracefmt::HeaderBytes + tracefmt::RecordBytes + tracefmt::RecReserved1 +
      7] = 0x80;
    expectRejected(B, "nonzero reserved u64 in a later record");
  }

  // The untouched original still reads back fine.
  writeAll(Path, Good);
  EventLog Out;
  EXPECT_TRUE(readTraceFile(Path, Out).Ok);
  EXPECT_EQ(Out.serialize(), Good);
  std::remove(Path.c_str());
}

TEST(TracePipelineTest, ReplayErrorsSurfaceDiagnostics) {
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);

  // Nonexistent file.
  PipelineResult Missing = replayTracePipeline(
      P, ToolConfig::full(), tempPath("herd_does_not_exist.trace"));
  EXPECT_FALSE(Missing.Trace.Ok);
  EXPECT_FALSE(Missing.Run.Ok);
  EXPECT_FALSE(Missing.Trace.Error.empty());

  // Corrupt file, through the sharded runtime: workers must still shut
  // down cleanly when the replay aborts partway.
  std::string Path = tempPath("herd_replay_corrupt.trace");
  EventLog Log;
  Log.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId(0));
  Log.onAccess(ThreadId(0), LocationKey::forField(ObjectId(1), FieldId(0)),
               AccessKind::Write, SiteId(0));
  std::vector<uint8_t> Bytes = Log.serialize();
  Bytes.resize(Bytes.size() - 3); // cut into the final record
  writeAll(Path, Bytes);

  ToolConfig Cfg = ToolConfig::full();
  Cfg.Shards = 3;
  PipelineResult Corrupt = replayTracePipeline(P, Cfg, Path);
  EXPECT_FALSE(Corrupt.Trace.Ok);
  EXPECT_FALSE(Corrupt.Run.Ok);
  EXPECT_NE(Corrupt.Run.Error.find("trace"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(TraceFileTest, WriterReportsUnopenablePath) {
  TraceWriter Writer;
  TraceResult TR = Writer.open("/nonexistent-dir/trace.bin");
  EXPECT_FALSE(TR.Ok);
  EXPECT_FALSE(TR.Error.empty());
  EXPECT_FALSE(Writer.isOpen());
}

} // namespace
