//===- tests/lock_order_test.cpp - Static lock-order analysis tests -------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the static lock-order analysis, including the co-analysis
/// workflow: the static pass names candidate cycles from the whole
/// program; the dynamic detector confirms the ones a real schedule can
/// realize — the same static-filters-then-dynamic-confirms structure the
/// paper uses for races.
///
//===----------------------------------------------------------------------===//

#include "analysis/LockOrder.h"
#include "detect/DeadlockDetector.h"
#include "frontend/Frontend.h"
#include "ir/IRBuilder.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

std::vector<StaticLockCycle> analyze(const Program &P) {
  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  LockOrderAnalysis LO(P, PT, SI);
  LO.run();
  return LO.findCycles();
}

/// Two workers; worker A locks (first, second) and worker B locks
/// (second, first) — or the consistent order when Inverted is false.
Program buildTwoLockProgram(bool Inverted) {
  Program P;
  IRBuilder B(P);
  ClassId LockCls = B.makeClass("L");
  ClassId LockCls2 = B.makeClass("L2"); // distinct sites via classes
  ClassId WA = B.makeClass("WA");
  FieldId AF = B.makeField(WA, "first");
  FieldId AS = B.makeField(WA, "second");
  ClassId WB = B.makeClass("WB");
  FieldId BF = B.makeField(WB, "first");
  FieldId BS = B.makeField(WB, "second");

  B.startMethod(WA, "run", 1);
  {
    RegId F = B.emitGetField(B.thisReg(), AF);
    RegId S = B.emitGetField(B.thisReg(), AS);
    B.sync(F, [&] { B.sync(S, [&] { B.emitYield(); }); });
    B.emitReturn();
  }
  B.startMethod(WB, "run", 1);
  {
    RegId F = B.emitGetField(B.thisReg(), BF);
    RegId S = B.emitGetField(B.thisReg(), BS);
    B.sync(F, [&] { B.sync(S, [&] { B.emitYield(); }); });
    B.emitReturn();
  }
  B.startMain();
  RegId L1 = B.emitNew(LockCls);
  RegId L2 = B.emitNew(LockCls2);
  RegId A = B.emitNew(WA);
  RegId Bo = B.emitNew(WB);
  B.emitPutField(A, AF, L1);
  B.emitPutField(A, AS, L2);
  B.emitPutField(Bo, BF, Inverted ? L2 : L1);
  B.emitPutField(Bo, BS, Inverted ? L1 : L2);
  B.emitThreadStart(A);
  B.emitThreadStart(Bo);
  B.emitThreadJoin(A);
  B.emitThreadJoin(Bo);
  B.emitReturn();
  return P;
}

TEST(LockOrderTest, InvertedOrderFoundConsistentOrderSilent) {
  auto CyclesInverted = analyze(buildTwoLockProgram(true));
  ASSERT_EQ(CyclesInverted.size(), 1u);
  EXPECT_EQ(CyclesInverted[0].Sites.size(), 2u);

  auto CyclesConsistent = analyze(buildTwoLockProgram(false));
  EXPECT_TRUE(CyclesConsistent.empty());
}

TEST(LockOrderTest, SingleInstanceSelfNestIsNotACandidate) {
  // Nested synchronized on the SAME single-instance object is reentrancy.
  Program P;
  IRBuilder B(P);
  ClassId LockCls = B.makeClass("L");
  B.startMain();
  RegId L = B.emitNew(LockCls);
  B.sync(L, [&] { B.sync(L, [&] { B.emitYield(); }); });
  B.emitReturn();
  EXPECT_TRUE(analyze(P).empty());
}

TEST(LockOrderTest, MultiInstanceSelfNestIsACandidate) {
  // The dining-philosophers pattern: all forks come from one allocation
  // site, and a fork is acquired while holding another fork.
  Program P;
  IRBuilder B(P);
  ClassId Fork = B.makeClass("Fork");
  ClassId Phil = B.makeClass("Phil");
  FieldId Left = B.makeField(Phil, "left");
  FieldId Right = B.makeField(Phil, "right");
  B.startMethod(Phil, "run", 1);
  {
    RegId L = B.emitGetField(B.thisReg(), Left);
    RegId R = B.emitGetField(B.thisReg(), Right);
    B.sync(L, [&] { B.sync(R, [&] { B.emitYield(); }); });
    B.emitReturn();
  }
  B.startMain();
  RegId N = B.emitConst(3);
  RegId Forks = B.emitNewArray(N);
  B.forLoop(0, N, 1, [&](RegId I) {
    B.emitAStore(Forks, I, B.emitNew(Fork)); // ONE allocation site
  });
  B.forLoop(0, N, 1, [&](RegId I) {
    RegId Ph = B.emitNew(Phil);
    RegId IPlus = B.emitBinOp(BinOpKind::Add, I, B.emitConst(1));
    RegId NextIdx = B.emitBinOp(BinOpKind::Mod, IPlus, N);
    B.emitPutField(Ph, Left, B.emitALoad(Forks, I));
    B.emitPutField(Ph, Right, B.emitALoad(Forks, NextIdx));
    B.emitThreadStart(Ph);
  });
  B.emitReturn();

  auto Cycles = analyze(P);
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Sites.size(), 1u); // self-cycle on the fork site
}

TEST(LockOrderTest, LocksHeldAcrossCallsPropagate) {
  // The inner acquisition happens in a callee: the context propagation
  // must carry the outer lock into it.  Main takes L1 then (through the
  // call) L2; the worker takes L2 then L1 directly.
  Program P;
  IRBuilder B(P);
  ClassId L1C = B.makeClass("L1");
  ClassId L2C = B.makeClass("L2");
  ClassId Box = B.makeClass("Box");
  FieldId Inner = B.makeField(Box, "inner");
  MethodId Callee = B.startMethod(Box, "lockInner", 1);
  {
    RegId L = B.emitGetField(B.thisReg(), Inner);
    B.sync(L, [&] { B.emitYield(); });
    B.emitReturn();
  }
  ClassId WC = B.makeClass("W");
  FieldId WFirst = B.makeField(WC, "first");
  FieldId WSecond = B.makeField(WC, "second");
  B.startMethod(WC, "run", 1);
  {
    RegId F = B.emitGetField(B.thisReg(), WFirst);
    RegId S = B.emitGetField(B.thisReg(), WSecond);
    B.sync(F, [&] { B.sync(S, [&] { B.emitYield(); }); });
    B.emitReturn();
  }
  B.startMain();
  RegId L1 = B.emitNew(L1C);
  RegId L2 = B.emitNew(L2C);
  RegId BoxObj = B.emitNew(Box);
  B.emitPutField(BoxObj, Inner, L2);
  RegId W = B.emitNew(WC);
  B.emitPutField(W, WFirst, L2); // worker: L2 then L1
  B.emitPutField(W, WSecond, L1);
  B.emitThreadStart(W);
  B.sync(L1, [&] { B.emitCallVoid(Callee, {BoxObj}); }); // L1 -> L2
  B.emitReturn();

  auto Cycles = analyze(P);
  ASSERT_EQ(Cycles.size(), 1u) << "cycle through a callee acquisition";
  EXPECT_EQ(Cycles[0].Sites.size(), 2u);
}

TEST(LockOrderTest, CoAnalysisStaticCandidatesCoverDynamicFindings) {
  // The co-analysis contract: anything the dynamic detector can observe
  // must be among the static candidates (static may over-approximates).
  Program P = buildTwoLockProgram(true);
  auto StaticCycles = analyze(P);
  ASSERT_FALSE(StaticCycles.empty());

  DeadlockDetector Dynamic;
  Interpreter Interp(P, &Dynamic, InterpOptions{});
  InterpResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  auto DynamicCycles = Dynamic.findPotentialDeadlocks();
  ASSERT_EQ(DynamicCycles.size(), 1u);
  // Both halves agree on the cycle length here; in general the static set
  // is a superset (may-aliasing can add candidates).
  EXPECT_EQ(StaticCycles[0].Sites.size(), DynamicCycles[0].Locks.size());
}

TEST(LockOrderTest, SynchronizedMethodsParticipate) {
  // synchronized method body acquiring another lock forms an edge from
  // the receiver's site.
  CompileResult C = compileMiniJ(R"(
    class Inner { var pad: int; }
    class Outer {
      var other: Inner;
      synchronized def work() {
        synchronized (other) { yield; }
      }
      def run() { this.work(); }
    }
    class Flipper {
      var outer: Outer;
      var inner: Inner;
      def run() {
        synchronized (inner) {
          synchronized (outer) { yield; }
        }
      }
    }
    def main() {
      var o: Outer = new Outer();
      var i: Inner = new Inner();
      o.other = i;
      var f: Flipper = new Flipper();
      f.outer = o;
      f.inner = i;
      start o;
      start f;
      join o;
      join f;
    }
  )");
  ASSERT_TRUE(C.Ok) << (C.Diags.empty() ? "?" : C.Diags[0].str());
  auto Cycles = analyze(C.P);
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Sites.size(), 2u);
}

} // namespace
