//===- tests/report_test.cpp - Race diagnostics and report export ---------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the actionable-diagnostics layer (docs/REPORTS.md):
///
///   - the stable race fingerprint as a pure function (symmetry, site and
///     kind sensitivity, object-index normalization);
///   - the bounded RaceReporter (duplicate retention below the cap,
///     count-bump vs dropped-record accounting at the cap, O(1) counting
///     queries, clear());
///   - fingerprint-set stability differentials: the same execution must
///     fingerprint identically across dispatch modes, shard counts, the
///     hook-filter fast path, and record→replay;
///   - provenance on/off byte-identity of the race *set* for all three
///     backend families (lockset trie, epoch happens-before, and the
///     vector-clock replay baseline) — the store only listens;
///   - the JSON / SARIF renderers as pure functions of a PipelineResult.
///
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "baselines/VectorClockDetector.h"
#include "detect/RaceReport.h"
#include "detect/TraceFile.h"
#include "herd/Pipeline.h"
#include "herd/ReportExport.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace herd;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

/// Sorted fingerprint multiset of every retained record — the structural
/// race-set identity the differentials compare.
std::vector<uint64_t> fingerprints(const RaceReporter &Reporter) {
  std::vector<uint64_t> Out;
  for (const RaceRecord &Rec : Reporter.records())
    Out.push_back(Rec.Fingerprint);
  std::sort(Out.begin(), Out.end());
  return Out;
}

RaceRecord makeRecord(LocationKey Location, uint32_t CurSite,
                      AccessKind CurKind, uint32_t PriorSite,
                      AccessKind PriorKind) {
  RaceRecord R;
  R.Location = Location;
  R.CurrentThread = ThreadId(1);
  R.CurrentAccess = CurKind;
  R.CurrentSite = SiteId(CurSite);
  R.PriorThreadKnown = true;
  R.PriorThread = ThreadId(2);
  R.PriorAccess = PriorKind;
  R.PriorSite = SiteId(PriorSite);
  return R;
}

//===----------------------------------------------------------------------===
// The fingerprint as a pure function.
//===----------------------------------------------------------------------===

TEST(FingerprintTest, SymmetricUnderAccessOrder) {
  // A-vs-B and B-vs-A observations of the same bug must collapse: the
  // (site, kind) pairs are ordered canonically before hashing.
  LocationKey L = LocationKey::forField(ObjectId(3), FieldId(7));
  EXPECT_EQ(raceFingerprint(L, SiteId(11), AccessKind::Write, SiteId(29),
                            AccessKind::Read),
            raceFingerprint(L, SiteId(29), AccessKind::Read, SiteId(11),
                            AccessKind::Write));
}

TEST(FingerprintTest, SensitiveToSitesAndKinds) {
  LocationKey L = LocationKey::forField(ObjectId(3), FieldId(7));
  uint64_t Base = raceFingerprint(L, SiteId(11), AccessKind::Write,
                                  SiteId(29), AccessKind::Read);
  EXPECT_NE(Base, raceFingerprint(L, SiteId(12), AccessKind::Write,
                                  SiteId(29), AccessKind::Read))
      << "changing a site must change the fingerprint";
  EXPECT_NE(Base, raceFingerprint(L, SiteId(11), AccessKind::Read,
                                  SiteId(29), AccessKind::Read))
      << "changing an access kind must change the fingerprint";
  LocationKey OtherField = LocationKey::forField(ObjectId(3), FieldId(8));
  EXPECT_NE(Base, raceFingerprint(OtherField, SiteId(11), AccessKind::Write,
                                  SiteId(29), AccessKind::Read))
      << "changing the field must change the fingerprint";
}

TEST(FingerprintTest, NormalizesObjectIndexAway) {
  // The object index is a run-specific allocation counter; the same
  // source-level bug on two different instances must fingerprint the
  // same (the low-32-bit field component is all that participates).
  LocationKey A = LocationKey::forField(ObjectId(3), FieldId(7));
  LocationKey B = LocationKey::forField(ObjectId(900), FieldId(7));
  EXPECT_EQ(raceFingerprint(A, SiteId(11), AccessKind::Write, SiteId(29),
                            AccessKind::Read),
            raceFingerprint(B, SiteId(11), AccessKind::Write, SiteId(29),
                            AccessKind::Read));
  // Arrays keep their distinct field marker.
  EXPECT_NE(raceFingerprint(LocationKey::forArray(ObjectId(3)), SiteId(11),
                            AccessKind::Write, SiteId(29), AccessKind::Read),
            raceFingerprint(A, SiteId(11), AccessKind::Write, SiteId(29),
                            AccessKind::Read));
}

TEST(FingerprintTest, InvalidSitesAreDeterministic) {
  // Site-less reports (old traces, the epoch backend's unknown earlier
  // access) still fingerprint deterministically.
  LocationKey L = LocationKey::forField(ObjectId(1), FieldId(2));
  uint64_t F1 = raceFingerprint(L, SiteId::invalid(), AccessKind::Write,
                                SiteId::invalid(), AccessKind::Read);
  uint64_t F2 = raceFingerprint(L, SiteId::invalid(), AccessKind::Write,
                                SiteId::invalid(), AccessKind::Read);
  EXPECT_EQ(F1, F2);
  EXPECT_NE(F1, 0u);
}

//===----------------------------------------------------------------------===
// The bounded reporter.
//===----------------------------------------------------------------------===

TEST(RaceReporterTest, BelowCapKeepsDuplicatesAndGroups) {
  RaceReporter Reporter(8);
  LocationKey L = LocationKey::forField(ObjectId(1), FieldId(5));
  RaceRecord R = makeRecord(L, 10, AccessKind::Write, 20, AccessKind::Read);
  Reporter.report(R);
  Reporter.report(R); // duplicate: retained below the cap
  Reporter.report(
      makeRecord(L, 11, AccessKind::Write, 20, AccessKind::Read));

  EXPECT_EQ(Reporter.size(), 3u) << "below the cap every record is kept";
  ASSERT_EQ(Reporter.groups().size(), 2u);
  EXPECT_EQ(Reporter.groups()[0].Count, 2u);
  EXPECT_EQ(Reporter.groups()[0].FirstRecord, 0u);
  EXPECT_EQ(Reporter.groups()[1].Count, 1u);
  EXPECT_EQ(Reporter.groups()[1].FirstRecord, 2u);
  EXPECT_EQ(Reporter.totalReported(), 3u);
  EXPECT_EQ(Reporter.droppedRecords(), 0u);
  EXPECT_EQ(Reporter.records()[0].Fingerprint,
            Reporter.groups()[0].Fingerprint);
}

TEST(RaceReporterTest, AtCapBumpsKnownAndCountsNovel) {
  RaceReporter Reporter(2);
  LocationKey L = LocationKey::forField(ObjectId(1), FieldId(5));
  RaceRecord A = makeRecord(L, 10, AccessKind::Write, 20, AccessKind::Read);
  RaceRecord B = makeRecord(L, 11, AccessKind::Write, 20, AccessKind::Read);
  RaceRecord C = makeRecord(L, 12, AccessKind::Write, 20, AccessKind::Read);
  Reporter.report(A);
  Reporter.report(B);
  ASSERT_EQ(Reporter.size(), 2u);

  // Known fingerprint past the cap: the count bumps, nothing is dropped.
  Reporter.report(A);
  EXPECT_EQ(Reporter.size(), 2u);
  EXPECT_EQ(Reporter.groups()[0].Count, 2u);
  EXPECT_EQ(Reporter.droppedRecords(), 0u);

  // Novel fingerprint past the cap: counted as dropped, never silent.
  Reporter.report(C);
  EXPECT_EQ(Reporter.size(), 2u);
  EXPECT_EQ(Reporter.groups().size(), 2u);
  EXPECT_EQ(Reporter.droppedRecords(), 1u);
  EXPECT_EQ(Reporter.totalReported(), 4u);

  // The counting queries stay exact past the cap: a dropped record on a
  // never-seen location (same field, new object — same fingerprint as A
  // after object normalization, so not even counted as dropped) must
  // still reach the distinct location/object sets.
  LocationKey L2 = LocationKey::forField(ObjectId(9), FieldId(5));
  Reporter.report(
      makeRecord(L2, 10, AccessKind::Write, 20, AccessKind::Read));
  EXPECT_EQ(Reporter.size(), 2u);
  EXPECT_EQ(Reporter.droppedRecords(), 1u);
  EXPECT_EQ(Reporter.countDistinctLocations(), 2u);
  EXPECT_EQ(Reporter.countDistinctObjects(), 2u);
  EXPECT_EQ(Reporter.reportedLocations().count(L2), 1u);
}

TEST(RaceReporterTest, MergePreservesCountsAndSetsPastTheCap) {
  LocationKey L1 = LocationKey::forField(ObjectId(1), FieldId(5));
  LocationKey L2 = LocationKey::forField(ObjectId(2), FieldId(6));
  LocationKey L3 = LocationKey::forArray(ObjectId(3));
  RaceRecord A = makeRecord(L1, 10, AccessKind::Write, 20, AccessKind::Read);
  RaceRecord B = makeRecord(L2, 11, AccessKind::Write, 20, AccessKind::Read);
  RaceRecord C = makeRecord(L3, 12, AccessKind::Write, 20, AccessKind::Read);

  // A saturated source: cap 1, so B is past-cap (novel -> dropped, its
  // location only in the sets) and a repeat of A only bumps its count.
  RaceReporter Src(1);
  Src.report(A);
  Src.report(B);
  Src.report(A);
  ASSERT_EQ(Src.size(), 1u);
  ASSERT_EQ(Src.droppedRecords(), 1u);

  // A roomy destination: everything Src ever saw survives the merge
  // semantically — A's retained record with its past-cap count bump,
  // B's drop, the exact location/object sets, the totals.
  RaceReporter Dst(8);
  Dst.report(C);
  Dst.merge(Src);
  EXPECT_EQ(Dst.size(), 2u); // C + A's retained record
  EXPECT_EQ(Dst.totalReported(), 4u);
  EXPECT_EQ(Dst.countDistinctLocations(), 3u);
  EXPECT_EQ(Dst.reportedLocations().count(L2), 1u);
  EXPECT_EQ(Dst.droppedRecords(), 1u);
  bool FoundA = false;
  for (const RaceReporter::Group &G : Dst.groups())
    if (G.Fingerprint == raceFingerprint(A)) {
      FoundA = true;
      EXPECT_EQ(G.Count, 2u);
    }
  EXPECT_TRUE(FoundA);

  // A destination already at its own cap behaves exactly as if Src's
  // stream had been delivered directly: A and B are novel there, so
  // every one of their occurrences lands in droppedRecords() — but the
  // location/object sets stay exact even then.
  RaceReporter Full(1);
  Full.report(C);
  Full.merge(Src);
  EXPECT_EQ(Full.size(), 1u);
  EXPECT_EQ(Full.totalReported(), 4u);
  EXPECT_EQ(Full.countDistinctLocations(), 3u);
  EXPECT_EQ(Full.droppedRecords(), 3u); // A, A again, and Src's own drop
}

TEST(RaceReporterTest, CountingQueriesAndClear) {
  RaceReporter Reporter;
  Reporter.report(makeRecord(LocationKey::forField(ObjectId(1), FieldId(5)),
                             10, AccessKind::Write, 20, AccessKind::Read));
  Reporter.report(makeRecord(LocationKey::forField(ObjectId(1), FieldId(6)),
                             10, AccessKind::Write, 20, AccessKind::Read));
  Reporter.report(makeRecord(LocationKey::forField(ObjectId(2), FieldId(5)),
                             10, AccessKind::Write, 20, AccessKind::Read));
  EXPECT_EQ(Reporter.countDistinctLocations(), 3u);
  EXPECT_EQ(Reporter.countDistinctObjects(), 2u);

  Reporter.clear();
  EXPECT_TRUE(Reporter.empty());
  EXPECT_TRUE(Reporter.groups().empty());
  EXPECT_EQ(Reporter.totalReported(), 0u);
  EXPECT_EQ(Reporter.droppedRecords(), 0u);
  EXPECT_EQ(Reporter.countDistinctLocations(), 0u);
  EXPECT_EQ(Reporter.countDistinctObjects(), 0u);
}

//===----------------------------------------------------------------------===
// Fingerprint stability across pipeline configurations.
//===----------------------------------------------------------------------===

TEST(FingerprintDifferentialTest, StableAcrossDispatchShardsAndHookFilter) {
  // Dispatch mode, shard count and the hook-filter fast path all promise
  // byte-identical reports; the fingerprint multiset is the structural
  // form of that promise.  Record→replay rides the same oracle: the
  // trace carries sites, so replayed records fingerprint identically.
  struct Case {
    std::string Name;
    Program P;
    ToolConfig Cfg;
  };
  std::vector<Case> Cases;
  Cases.push_back({"figure2", testprogs::buildFigure2(/*SamePQ=*/false),
                   ToolConfig::full()});
  // Peeling can suppress the counter race (Section 7.2), so this case
  // runs the noPeeling ablation — every schedule reports.
  Cases.push_back({"counter_unlocked", testprogs::buildCounter(false, 30).P,
                   ToolConfig::noPeeling()});

  for (const Case &C : Cases) {
    std::string Path = tempPath("herd_report_" + C.Name + ".trace");
    ToolConfig Base = C.Cfg;
    Base.Seed = 7;
    Base.Dispatch = DispatchMode::Threaded;
    Base.RecordTracePath = Path;
    PipelineResult Want = runPipeline(C.P, Base);
    ASSERT_TRUE(Want.Run.Ok) << C.Name << ": " << Want.Run.Error;
    ASSERT_TRUE(Want.Trace.Ok) << Want.Trace.Error;
    ASSERT_FALSE(Want.Reports.empty())
        << C.Name << ": need a racy run for the differential to bite";
    std::vector<uint64_t> WantPrints = fingerprints(Want.Reports);

    auto expectSame = [&](const char *What, const PipelineResult &Got) {
      ASSERT_TRUE(Got.Run.Ok) << C.Name << " " << What << ": "
                              << Got.Run.Error;
      EXPECT_EQ(WantPrints, fingerprints(Got.Reports))
          << C.Name << " " << What;
    };

    ToolConfig Switch = C.Cfg;
    Switch.Seed = 7;
    Switch.Dispatch = DispatchMode::Switch;
    expectSame("switch-dispatch", runPipeline(C.P, Switch));

    ToolConfig Sharded = C.Cfg;
    Sharded.Seed = 7;
    Sharded.Shards = 2;
    expectSame("shards=2", runPipeline(C.P, Sharded));

    ToolConfig NoFilter = C.Cfg;
    NoFilter.Seed = 7;
    NoFilter.HookFilter = false;
    expectSame("hook-filter=off", runPipeline(C.P, NoFilter));

    ToolConfig Replay = C.Cfg;
    PipelineResult Replayed = replayTracePipeline(C.P, Replay, Path);
    ASSERT_TRUE(Replayed.Trace.Ok) << Replayed.Trace.Error;
    expectSame("replay", Replayed);

    std::remove(Path.c_str());
  }
}

TEST(FingerprintDifferentialTest, GroupCountsSumToTotal) {
  // The dedup invariant on a real run: group counts add up to every
  // report() call that was retained or count-bumped.
  PipelineResult R = runPipeline(testprogs::buildCounter(false, 30).P,
                                 ToolConfig::noPeeling());
  ASSERT_TRUE(R.Run.Ok);
  ASSERT_FALSE(R.Reports.empty());
  uint64_t Sum = 0;
  for (const RaceReporter::Group &G : R.Reports.groups()) {
    EXPECT_EQ(R.Reports.records()[G.FirstRecord].Fingerprint, G.Fingerprint);
    Sum += G.Count;
  }
  EXPECT_EQ(Sum + R.Reports.droppedRecords(), R.Reports.totalReported());
}

//===----------------------------------------------------------------------===
// Provenance on/off byte-identity of the race set, per backend.
//===----------------------------------------------------------------------===

TEST(ProvenanceDifferentialTest, HerdRaceSetIdenticalOnOff) {
  // The ProvenanceStore is a pure listener: with it on, the schedule, the
  // race records and the deduplicated entries must be byte-identical;
  // only the human lines gain indented detail.
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  for (uint32_t Shards : {0u, 2u}) {
    ToolConfig Off = ToolConfig::full();
    Off.Seed = 5;
    Off.Shards = Shards;
    PipelineResult ROff = runPipeline(P, Off);
    ASSERT_TRUE(ROff.Run.Ok) << ROff.Run.Error;
    ASSERT_FALSE(ROff.Reports.empty());
    EXPECT_FALSE(ROff.ProvenanceOn);

    ToolConfig On = Off;
    On.Provenance = true;
    PipelineResult ROn = runPipeline(P, On);
    ASSERT_TRUE(ROn.Run.Ok) << ROn.Run.Error;
    EXPECT_TRUE(ROn.ProvenanceOn);
    EXPECT_GT(ROn.Provenance.accessesObserved(), 0u);

    EXPECT_EQ(ROff.Run.InstructionsExecuted, ROn.Run.InstructionsExecuted)
        << "shards=" << Shards << ": provenance must not perturb the run";
    EXPECT_EQ(fingerprints(ROff.Reports), fingerprints(ROn.Reports))
        << "shards=" << Shards;
    ASSERT_EQ(ROff.Entries.size(), ROn.Entries.size()) << "shards=" << Shards;
    for (size_t I = 0; I != ROff.Entries.size(); ++I) {
      EXPECT_EQ(ROff.Entries[I].Message, ROn.Entries[I].Message);
      EXPECT_EQ(ROff.Entries[I].Fingerprint, ROn.Entries[I].Fingerprint);
      EXPECT_EQ(ROff.Entries[I].Occurrences, ROn.Entries[I].Occurrences);
    }
    // The human lines are a superset: same first line, enrichment after.
    ASSERT_EQ(ROff.FormattedRaces.size(), ROn.FormattedRaces.size());
    bool Enriched = false;
    for (size_t I = 0; I != ROff.FormattedRaces.size(); ++I) {
      EXPECT_EQ(ROn.FormattedRaces[I].compare(0, ROff.FormattedRaces[I].size(),
                                              ROff.FormattedRaces[I]),
                0)
          << "enriched line must extend, not rewrite, the plain line";
      if (ROn.FormattedRaces[I].size() > ROff.FormattedRaces[I].size())
        Enriched = true;
    }
    if (Shards == 0) {
      EXPECT_TRUE(Enriched) << "provenance=on should add detail somewhere";
    }
  }
}

TEST(ProvenanceDifferentialTest, EpochRaceSetIdenticalOnOff) {
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  ToolConfig Off = ToolConfig::full();
  Off.Seed = 5;
  Off.Backend = ToolConfig::DetectorBackend::Epoch;
  PipelineResult ROff = runPipeline(P, Off);
  ASSERT_TRUE(ROff.Run.Ok) << ROff.Run.Error;
  ASSERT_TRUE(ROff.EpochBackend);
  ASSERT_FALSE(ROff.FormattedRaces.empty());

  ToolConfig On = Off;
  On.Provenance = true;
  PipelineResult ROn = runPipeline(P, On);
  ASSERT_TRUE(ROn.Run.Ok) << ROn.Run.Error;
  EXPECT_TRUE(ROn.ProvenanceOn);

  EXPECT_EQ(ROff.Run.InstructionsExecuted, ROn.Run.InstructionsExecuted);
  EXPECT_EQ(ROff.FormattedRaces, ROn.FormattedRaces)
      << "epoch racy-location lines carry no provenance detail; the sets "
         "must match exactly";
  ASSERT_EQ(ROff.Entries.size(), ROn.Entries.size());
  for (size_t I = 0; I != ROff.Entries.size(); ++I)
    EXPECT_EQ(ROff.Entries[I].Fingerprint, ROn.Entries[I].Fingerprint);
}

TEST(ProvenanceDifferentialTest, VectorClockReplayIdenticalWithStore) {
  // Third backend family: a vector-clock baseline consuming a recorded
  // trace with and without a ProvenanceStore fanned out next to it.
  Program P = testprogs::buildCounter(/*Locked=*/false, 25).P;
  std::string Path = tempPath("herd_report_vc.trace");
  {
    TraceWriter Writer;
    ASSERT_TRUE(Writer.open(Path).Ok);
    InterpOptions Opts;
    Opts.Seed = 3;
    Opts.TraceEveryAccess = true;
    Interpreter Interp(P, &Writer, Opts);
    ASSERT_TRUE(Interp.run().Ok);
    ASSERT_TRUE(Writer.close().Ok);
  }

  VectorClockDetector Alone;
  {
    TraceReader Reader;
    ASSERT_TRUE(Reader.open(Path).Ok);
    ASSERT_TRUE(Reader.replayInto(Alone).Ok);
  }

  VectorClockDetector WithStore;
  ProvenanceStore Prov;
  {
    FanoutHooks Fanout{&WithStore, &Prov};
    TraceReader Reader;
    ASSERT_TRUE(Reader.open(Path).Ok);
    ASSERT_TRUE(Reader.replayInto(Fanout).Ok);
  }

  EXPECT_FALSE(Alone.reportedLocations().empty())
      << "need a racy trace for the comparison to mean anything";
  EXPECT_EQ(Alone.reportedLocations(), WithStore.reportedLocations());
  EXPECT_GT(Prov.accessesObserved(), 0u);
  std::remove(Path.c_str());
}

TEST(ProvenanceDifferentialTest, ReplayPipelineCarriesProvenance) {
  // v1 traces record sites on every record, so provenance works offline:
  // a replayed run with --provenance=on enriches from the trace alone.
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  std::string Path = tempPath("herd_report_replay_prov.trace");
  ToolConfig Rec = ToolConfig::full();
  Rec.Seed = 5;
  Rec.RecordTracePath = Path;
  PipelineResult Live = runPipeline(P, Rec);
  ASSERT_TRUE(Live.Run.Ok);
  ASSERT_TRUE(Live.Trace.Ok) << Live.Trace.Error;

  ToolConfig Off = ToolConfig::full();
  PipelineResult ROff = replayTracePipeline(P, Off, Path);
  ASSERT_TRUE(ROff.Trace.Ok) << ROff.Trace.Error;

  ToolConfig On = Off;
  On.Provenance = true;
  PipelineResult ROn = replayTracePipeline(P, On, Path);
  ASSERT_TRUE(ROn.Trace.Ok) << ROn.Trace.Error;
  EXPECT_TRUE(ROn.ProvenanceOn);
  EXPECT_GT(ROn.Provenance.accessesObserved(), 0u);
  EXPECT_EQ(fingerprints(ROff.Reports), fingerprints(ROn.Reports));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===
// The report renderers.
//===----------------------------------------------------------------------===

TEST(ReportExportTest, JsonDocumentShapeAndContent) {
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  ToolConfig Cfg = ToolConfig::full();
  Cfg.Seed = 5;
  PipelineResult R = runPipeline(P, Cfg);
  ASSERT_TRUE(R.Run.Ok);
  ASSERT_FALSE(R.Entries.empty());

  std::string Doc = renderReportJson(P, R);
  EXPECT_NE(Doc.find("\"schema\":\"herd-report\""), std::string::npos);
  EXPECT_NE(Doc.find("\"version\":1"), std::string::npos);
  EXPECT_NE(Doc.find("\"detector\":\"herd\""), std::string::npos);
  EXPECT_NE(Doc.find("\"rule\":\"herd/datarace\""), std::string::npos);
  EXPECT_NE(Doc.find("\"dropped_records\":0"), std::string::npos);
  EXPECT_EQ(Doc.back(), '\n');

  // Fingerprints travel as 16-digit hex strings (doubles corrupt them).
  char Hex[40];
  std::snprintf(Hex, sizeof(Hex), "\"fingerprint\":\"%016llx\"",
                (unsigned long long)R.Entries[0].Fingerprint);
  EXPECT_NE(Doc.find(Hex), std::string::npos) << Doc;

  // The document is a pure function of the result.
  EXPECT_EQ(Doc, renderReportJson(P, R));
}

TEST(ReportExportTest, SarifDocumentShapeAndContent) {
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  ToolConfig Cfg = ToolConfig::full();
  Cfg.Seed = 5;
  PipelineResult R = runPipeline(P, Cfg);
  ASSERT_TRUE(R.Run.Ok);
  ASSERT_FALSE(R.Entries.empty());

  std::string Doc = renderReportSarif(P, R);
  EXPECT_NE(Doc.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(Doc.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(Doc.find("\"name\":\"herd\""), std::string::npos);
  EXPECT_NE(Doc.find("\"ruleId\":\"herd/datarace\""), std::string::npos);
  EXPECT_NE(Doc.find("\"partialFingerprints\""), std::string::npos);
  EXPECT_NE(Doc.find("\"herdRace/v1\""), std::string::npos);
  EXPECT_NE(Doc.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_EQ(Doc, renderReportSarif(P, R));
}

TEST(ReportExportTest, CleanRunRendersEmptyResults) {
  Program P = testprogs::buildCounter(/*Locked=*/true, 20).P;
  PipelineResult R = runPipeline(P, ToolConfig::full());
  ASSERT_TRUE(R.Run.Ok);
  ASSERT_TRUE(R.Reports.empty());

  std::string Json = renderReportJson(P, R);
  EXPECT_NE(Json.find("\"distinct_races\":0"), std::string::npos);
  EXPECT_NE(Json.find("\"results\":[]"), std::string::npos);
  std::string Sarif = renderReportSarif(P, R);
  EXPECT_NE(Sarif.find("\"results\":[]"), std::string::npos);
}

TEST(ReportExportTest, EpochEntriesUseRacyLocationRule) {
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  ToolConfig Cfg = ToolConfig::full();
  Cfg.Backend = ToolConfig::DetectorBackend::Epoch;
  PipelineResult R = runPipeline(P, Cfg);
  ASSERT_TRUE(R.Run.Ok);
  ASSERT_FALSE(R.Entries.empty());
  for (const ReportEntry &E : R.Entries)
    EXPECT_EQ(E.EntryKind, ReportEntry::Kind::RacyLocation);

  std::string Json = renderReportJson(P, R);
  EXPECT_NE(Json.find("\"detector\":\"epoch\""), std::string::npos);
  EXPECT_NE(Json.find("\"rule\":\"herd/racy-location\""), std::string::npos);
  std::string Sarif = renderReportSarif(P, R);
  EXPECT_NE(Sarif.find("\"ruleId\":\"herd/racy-location\""),
            std::string::npos);
}

TEST(ReportExportTest, EntriesMatchReporterGroups) {
  // Entries are the groups, one-to-one, in first-seen order, with the
  // occurrence counts carried over.
  Program P = testprogs::buildCounter(/*Locked=*/false, 30).P;
  PipelineResult R = runPipeline(P, ToolConfig::noPeeling());
  ASSERT_TRUE(R.Run.Ok);
  ASSERT_FALSE(R.Reports.empty());
  size_t RaceEntries = 0;
  for (const ReportEntry &E : R.Entries)
    if (E.EntryKind == ReportEntry::Kind::Race)
      ++RaceEntries;
  ASSERT_EQ(RaceEntries, R.Reports.groups().size());
  size_t I = 0;
  for (const ReportEntry &E : R.Entries) {
    if (E.EntryKind != ReportEntry::Kind::Race)
      continue;
    EXPECT_EQ(E.Fingerprint, R.Reports.groups()[I].Fingerprint);
    EXPECT_EQ(E.Occurrences, R.Reports.groups()[I].Count);
    ++I;
  }
}

} // namespace
