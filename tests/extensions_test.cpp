//===- tests/extensions_test.cpp - EventLog and deadlock extension --------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the two extensions beyond the core reproduction:
///   - EventLog: post-mortem detection (record, replay, serialize) —
///     Section 1 says the approach "could be easily modified to perform
///     post-mortem datarace detection"; this proves it;
///   - DeadlockDetector: the Section 10 future-work item, implemented as a
///     Goodlock-style lock-order-graph analysis over the same hook stream.
///
//===----------------------------------------------------------------------===//

#include "detect/DeadlockDetector.h"
#include "detect/EventLog.h"
#include "detect/RaceRuntime.h"
#include "ir/IRBuilder.h"
#include "runtime/Interpreter.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace herd;
using namespace herd::testprogs;

namespace {

//===----------------------------------------------------------------------===
// EventLog: post-mortem detection.
//===----------------------------------------------------------------------===

TEST(EventLogTest, RecordsEveryEventInOrder) {
  EventLog Log;
  Log.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  Log.onMonitorEnter(ThreadId(0), LockId(5), false);
  Log.onAccess(ThreadId(0), LocationKey::forField(ObjectId(1), FieldId(0)),
               AccessKind::Write, SiteId(3));
  Log.onMonitorExit(ThreadId(0), LockId(5), false);
  Log.onThreadExit(ThreadId(0));
  ASSERT_EQ(Log.size(), 5u);
  EXPECT_EQ(Log.records()[0].Kind, EventLog::RecordKind::ThreadCreate);
  EXPECT_EQ(Log.records()[2].Kind, EventLog::RecordKind::Access);
  EXPECT_EQ(Log.records()[2].Site, SiteId(3));
}

TEST(EventLogTest, PostMortemDetectionEqualsOnline) {
  // Record a racy execution, then replay the log into a fresh detector:
  // the offline reports must match the online ones exactly.
  CounterProgram CP = buildCounter(/*Locked=*/false, 20);

  RaceRuntime Online;
  EventLog Log;
  FanoutHooks Fanout{&Online, &Log};
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(CP.P, &Fanout, Opts);
  ASSERT_TRUE(Interp.run().Ok);

  RaceRuntime Offline;
  Log.replayInto(Offline);
  EXPECT_EQ(Offline.reporter().reportedLocations(),
            Online.reporter().reportedLocations());
  EXPECT_EQ(Offline.reporter().size(), Online.reporter().size());
}

TEST(EventLogTest, SerializeRoundTrips) {
  CounterProgram CP = buildCounter(/*Locked=*/true, 5);
  EventLog Log;
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(CP.P, &Log, Opts);
  ASSERT_TRUE(Interp.run().Ok);
  ASSERT_GT(Log.size(), 0u);

  std::vector<uint8_t> Bytes = Log.serialize();
  EXPECT_EQ(Bytes.size(),
            tracefmt::HeaderBytes + Log.size() * EventLog::logRecordBytes());

  EventLog Restored;
  ASSERT_TRUE(EventLog::deserialize(Bytes, Restored).Ok);
  ASSERT_EQ(Restored.size(), Log.size());

  // The restored log drives a detector identically.
  RaceRuntime A, B;
  Log.replayInto(A);
  Restored.replayInto(B);
  EXPECT_EQ(A.reporter().reportedLocations(),
            B.reporter().reportedLocations());
}

TEST(EventLogTest, DeserializeRejectsCorruptInput) {
  EventLog Log;
  Log.onThreadExit(ThreadId(1));
  std::vector<uint8_t> Bytes = Log.serialize();

  EventLog Out;
  std::vector<uint8_t> Truncated(Bytes.begin(), Bytes.end() - 1);
  EXPECT_FALSE(EventLog::deserialize(Truncated, Out).Ok);

  std::vector<uint8_t> BadKind = Bytes;
  BadKind[tracefmt::HeaderBytes] = 0xFF; // first record's kind byte
  EXPECT_FALSE(EventLog::deserialize(BadKind, Out).Ok);

  EXPECT_FALSE(EventLog::deserialize({1, 2, 3}, Out).Ok);
  EXPECT_TRUE(EventLog::deserialize(Bytes, Out).Ok);
}

//===----------------------------------------------------------------------===
// Deadlock detection.
//===----------------------------------------------------------------------===

void acquire(DeadlockDetector &D, ThreadId T,
             std::initializer_list<uint32_t> Locks) {
  for (uint32_t L : Locks)
    D.onMonitorEnter(T, LockId(L), false);
  for (auto It = std::rbegin(Locks); It != std::rend(Locks); ++It)
    D.onMonitorExit(T, LockId(*It), false);
}

TEST(DeadlockTest, ClassicABBAReported) {
  DeadlockDetector D;
  acquire(D, ThreadId(1), {1, 2}); // T1: a then b
  acquire(D, ThreadId(2), {2, 1}); // T2: b then a
  auto Cycles = D.findPotentialDeadlocks();
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Locks,
            (std::vector<LockId>{LockId(1), LockId(2)}));
}

TEST(DeadlockTest, ConsistentOrderIsSilent) {
  DeadlockDetector D;
  acquire(D, ThreadId(1), {1, 2});
  acquire(D, ThreadId(2), {1, 2});
  EXPECT_TRUE(D.findPotentialDeadlocks().empty());
}

TEST(DeadlockTest, SameThreadInversionIsSilent) {
  // One thread taking both orders at different times cannot deadlock with
  // itself.
  DeadlockDetector D;
  acquire(D, ThreadId(1), {1, 2});
  acquire(D, ThreadId(1), {2, 1});
  EXPECT_TRUE(D.findPotentialDeadlocks().empty());
}

TEST(DeadlockTest, GateLockSuppressesTheReport) {
  // Both inversions happen under a common outer lock g: the acquisitions
  // are serialized and the interleaving that deadlocks is impossible.
  DeadlockDetector D;
  acquire(D, ThreadId(1), {9, 1, 2});
  acquire(D, ThreadId(2), {9, 2, 1});
  EXPECT_TRUE(D.findPotentialDeadlocks().empty());
}

TEST(DeadlockTest, DifferentGatesDoNotSuppress) {
  DeadlockDetector D;
  acquire(D, ThreadId(1), {8, 1, 2});
  acquire(D, ThreadId(2), {9, 2, 1});
  EXPECT_EQ(D.findPotentialDeadlocks().size(), 1u);
}

TEST(DeadlockTest, ThreeCycleDetected) {
  DeadlockDetector D;
  acquire(D, ThreadId(1), {1, 2});
  acquire(D, ThreadId(2), {2, 3});
  acquire(D, ThreadId(3), {3, 1});
  auto Cycles = D.findPotentialDeadlocks();
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Locks.size(), 3u);
}

TEST(DeadlockTest, RecursiveAcquisitionIgnored) {
  DeadlockDetector D;
  D.onMonitorEnter(ThreadId(1), LockId(1), false);
  D.onMonitorEnter(ThreadId(1), LockId(1), true); // reentrant
  D.onMonitorEnter(ThreadId(1), LockId(2), false);
  D.onMonitorExit(ThreadId(1), LockId(2), false);
  D.onMonitorExit(ThreadId(1), LockId(1), true);
  D.onMonitorExit(ThreadId(1), LockId(1), false);
  acquire(D, ThreadId(2), {2, 1});
  EXPECT_EQ(D.findPotentialDeadlocks().size(), 1u);
  EXPECT_EQ(D.numEdges(), 2u);
}

TEST(DeadlockTest, EndToEndOnAnInterpretedProgram) {
  // The interpreter_test deadlock program, but observed by the deadlock
  // detector on a schedule where the deadlock does NOT manifest: the
  // potential is still reported (the feasible-hazard philosophy).
  Program P;
  IRBuilder B(P);
  ClassId LockCls = B.makeClass("L");
  ClassId Worker = B.makeClass("W");
  FieldId FA = B.makeField(Worker, "a");
  FieldId FB = B.makeField(Worker, "b");
  B.startMethod(Worker, "run", 1);
  {
    RegId A = B.emitGetField(B.thisReg(), FA);
    RegId Bo = B.emitGetField(B.thisReg(), FB);
    B.sync(A, [&] { B.sync(Bo, [&] { B.emitYield(); }); });
    B.emitReturn();
  }
  B.startMain();
  RegId A = B.emitNew(LockCls);
  RegId Bo = B.emitNew(LockCls);
  RegId W = B.emitNew(Worker);
  B.emitPutField(W, FA, A);
  B.emitPutField(W, FB, Bo);
  B.emitThreadStart(W);
  B.emitThreadJoin(W);
  // Main takes the opposite order AFTER the join: never deadlocks in any
  // schedule of this program, but the lock-order inversion is real and a
  // later refactor could expose it.
  B.sync(Bo, [&] { B.sync(A, [&] { B.emitYield(); }); });
  B.emitReturn();

  DeadlockDetector D;
  Interpreter Interp(P, &D, InterpOptions{});
  ASSERT_TRUE(Interp.run().Ok);
  EXPECT_EQ(D.findPotentialDeadlocks().size(), 1u);
}

} // namespace
