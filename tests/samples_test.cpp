//===- tests/samples_test.cpp - Shipped MiniJ sample programs -------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Keeps the MiniJ programs shipped in examples/programs/ compiling and
/// behaving: figure2.mj reports the paper's race, histogram.mj pinpoints
/// its missing lock, and dining_philosophers.mj trips the deadlock
/// detector (and only it).
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "herd/Pipeline.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace herd;

namespace {

std::string readSample(const std::string &Name) {
  std::string Path = std::string(HERD_SAMPLES_DIR) + "/" + Name;
  std::ifstream File(Path);
  EXPECT_TRUE(File.good()) << "missing sample " << Path;
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  return Buffer.str();
}

CompileResult compileSample(const std::string &Name) {
  CompileResult R = compileMiniJ(readSample(Name));
  EXPECT_TRUE(R.Ok) << Name << ": "
                    << (R.Diags.empty() ? "?" : R.Diags[0].str());
  return R;
}

TEST(SamplesTest, Figure2ReportsTheRaceOnF) {
  CompileResult C = compileSample("figure2.mj");
  ASSERT_TRUE(C.Ok);
  PipelineResult R = runPipeline(C.P, ToolConfig::full());
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  EXPECT_EQ(R.Reports.countDistinctLocations(), 1u);
  ASSERT_FALSE(R.FormattedRaces.empty());
  EXPECT_NE(R.FormattedRaces[0].find("field f"), std::string::npos);
}

TEST(SamplesTest, HistogramPinpointsTheTotalCounter) {
  CompileResult C = compileSample("histogram.mj");
  ASSERT_TRUE(C.Ok);
  bool Reported = false;
  for (uint64_t Seed : {1u, 3u, 9u}) {
    ToolConfig Config = ToolConfig::noPeeling();
    Config.Seed = Seed;
    PipelineResult R = runPipeline(C.P, Config);
    ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
    for (const std::string &Line : R.FormattedRaces) {
      EXPECT_NE(Line.find("total"), std::string::npos)
          << "only the total counter should race: " << Line;
      Reported = true;
    }
    // The per-bucket counts are properly locked: the shared counts array
    // must never appear.
    for (const std::string &Line : R.FormattedRaces)
      EXPECT_EQ(Line.find("counts"), std::string::npos);
  }
  EXPECT_TRUE(Reported);
}

TEST(SamplesTest, DiningPhilosophersTripsOnlyTheDeadlockDetector) {
  CompileResult C = compileSample("dining_philosophers.mj");
  ASSERT_TRUE(C.Ok);
  ToolConfig Config = ToolConfig::full();
  Config.DetectDeadlocks = true;
  // Pick a schedule where the program terminates (the deadlock detector
  // reports the *potential* regardless).
  PipelineResult R = runPipeline(C.P, Config);
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  EXPECT_TRUE(R.Reports.empty()) << R.FormattedRaces[0];
  ASSERT_EQ(R.Deadlocks.size(), 1u);
  EXPECT_EQ(R.Deadlocks[0].Locks.size(), 5u); // the five forks
}

TEST(SamplesTest, TspInMiniJFindsTheBoundRace) {
  CompileResult C = compileSample("tsp.mj");
  ASSERT_TRUE(C.Ok);
  ToolConfig Config = ToolConfig::noPeeling();
  PipelineResult R = runPipeline(C.P, Config);
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  bool BoundRace = false;
  for (const std::string &Line : R.FormattedRaces)
    BoundRace |= Line.find("MinTourLen") != std::string::npos;
  EXPECT_TRUE(BoundRace);
  // The branch-and-bound result itself must be a sane tour length.
  ASSERT_FALSE(R.Run.Output.empty());
  EXPECT_GT(R.Run.Output[0], 0);
  EXPECT_LT(R.Run.Output[0], 1000000);
}

TEST(SamplesTest, AllSamplesRunUnderEveryConfiguration) {
  for (const char *Name :
       {"figure2.mj", "histogram.mj", "dining_philosophers.mj", "tsp.mj"}) {
    CompileResult C = compileSample(Name);
    ASSERT_TRUE(C.Ok);
    for (ToolConfig Config :
         {ToolConfig::base(), ToolConfig::full(), ToolConfig::noStatic(),
          ToolConfig::noCache(), ToolConfig::noOwnership()}) {
      PipelineResult R = runPipeline(C.P, Config);
      EXPECT_TRUE(R.Run.Ok) << Name << ": " << R.Run.Error;
    }
  }
}

} // namespace
